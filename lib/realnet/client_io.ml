(* The client library over real sockets (§3.6.2): send the request, wait
   for the matching reply with retransmit-and-backoff, then connect a TCP
   socket to each candidate's service port and hand the list to the
   caller. *)

type connected_server = { host : string; socket : Unix.file_descr }

let request_servers ?(option = Smart_proto.Wizard_msg.Accept_partial)
    ?(timeout = 2.0) ?(retries = 2)
    ?(backoff = Smart_util.Backoff.default) ?rng ?metrics book
    ~wizard_host ~wanted ~requirement () =
  let rng =
    match rng with
    | Some rng -> rng
    | None -> Smart_util.Prng.create ~seed:(Unix.getpid () + int_of_float (Unix.gettimeofday () *. 1e3))
  in
  let client = Smart_core.Client.create ?metrics ~rng () in
  let request =
    Smart_core.Client.make_request client ~wanted ~option ~requirement
  in
  match
    Addr_book.resolve book ~host:wizard_host ~port:Smart_proto.Ports.wizard
  with
  | None -> Error (Smart_core.Client.Malformed "unknown wizard host")
  | Some wizard_addr ->
    let socket = Udp_io.bind_port 0 in
    Fun.protect
      ~finally:(fun () -> Udp_io.stop socket)
      (fun () ->
        let data = Smart_proto.Wizard_msg.encode_request request in
        (* the per-attempt receive window grows with the shared backoff
           policy: same retry shape as the simulated client, real clock *)
        let boff = Smart_util.Backoff.create ~rng backoff in
        let sends = ref 0 in
        let finish result =
          Smart_core.Client.note_attempts client !sends;
          result
        in
        let rec attempt n =
          if n < 0 then finish (Error Smart_core.Client.Timeout)
          else begin
            incr sends;
            if !sends > 1 then Smart_core.Client.note_retry client;
            ignore (Udp_io.send socket ~to_:wizard_addr data);
            let window =
              Float.min timeout (Smart_util.Backoff.next boff)
            in
            wait n (Unix.gettimeofday () +. window)
          end
        and wait n deadline =
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then attempt (n - 1)
          else
            match Udp_io.recv_timeout socket ~timeout:remaining with
            | None -> attempt (n - 1)
            | Some (_, reply)
              when Smart_core.Client.is_duplicate_reply client reply ->
              (* late answer to an earlier, completed request *)
              wait n deadline
            | Some (_, reply) ->
              (match Smart_core.Client.check_reply client request reply with
              | Ok servers -> finish (Ok servers)
              | Error (Smart_core.Client.Wrong_seq _) ->
                (* stale reply from an earlier attempt: keep waiting *)
                wait n deadline
              | Error _ as e -> finish e)
        in
        attempt retries)

(* One metrics scrape: magic datagram out, rendered dump back.  [port]
   picks the daemon — wizard request port, transmitter pull port or probe
   echo port all answer. *)
let scrape_metrics ?(timeout = 2.0) ?(format = Smart_proto.Metrics_msg.Text)
    book ~host ~port () =
  match Addr_book.resolve book ~host ~port with
  | None -> Error (Printf.sprintf "unknown host %s" host)
  | Some addr ->
    let socket = Udp_io.bind_port 0 in
    Fun.protect
      ~finally:(fun () -> Udp_io.stop socket)
      (fun () ->
        if
          not
            (Udp_io.send socket ~to_:addr
               (Smart_proto.Metrics_msg.encode_request format))
        then Error "send failed"
        else
          match Udp_io.recv_timeout socket ~timeout with
          | Some (_, dump) -> Ok dump
          | None -> Error "scrape timed out")

(* One flight-recorder scrape, the trace-plane twin of
   [scrape_metrics]: SMART-TRACE magic out, span dump back. *)
let scrape_trace ?(timeout = 2.0) ?(format = Smart_proto.Trace_msg.Text)
    book ~host ~port () =
  match Addr_book.resolve book ~host ~port with
  | None -> Error (Printf.sprintf "unknown host %s" host)
  | Some addr ->
    let socket = Udp_io.bind_port 0 in
    Fun.protect
      ~finally:(fun () -> Udp_io.stop socket)
      (fun () ->
        if
          not
            (Udp_io.send socket ~to_:addr
               (Smart_proto.Trace_msg.encode_request format))
        then Error "send failed"
        else
          match Udp_io.recv_timeout socket ~timeout with
          | Some (_, dump) -> Ok dump
          | None -> Error "scrape timed out")

(* Connect one TCP socket to a candidate's service port.  The optional
   [connect_timeout] bounds the handshake with a non-blocking connect:
   a black-holed candidate (dropped SYNs) costs seconds, not the
   kernel's minutes-long default. *)
let connect_service ?connect_timeout book ~host =
  match Addr_book.resolve book ~host ~port:Smart_proto.Ports.service with
  | None -> None
  | Some sockaddr ->
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let close_quietly () =
      try Unix.close socket with Unix.Unix_error (_, _, _) -> ()
    in
    let fail () =
      close_quietly ();
      None
    in
    (* every exit that does not hand the socket to the caller closes it,
       including exceptions the handlers below don't expect (Thread
       interrupts, allocation failures): a skipped candidate must never
       leak its half-connected descriptor *)
    (match
       (match connect_timeout with
       | None ->
         (try
            Unix.connect socket sockaddr;
            Some { host; socket }
          with Unix.Unix_error (_, _, _) -> fail ())
       | Some timeout ->
         (try
            Unix.set_nonblock socket;
            (try Unix.connect socket sockaddr
             with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
            (* writability signals the handshake's end; SO_ERROR says how
               it went *)
            (match Unix.select [] [ socket ] [] timeout with
            | _, _ :: _, _ ->
              (match Unix.getsockopt_error socket with
              | None ->
                Unix.clear_nonblock socket;
                Some { host; socket }
              | Some _ -> fail ())
            | _ -> fail ())
          with Unix.Unix_error (_, _, _) -> fail ()))
     with
    | result -> result
    | exception e ->
      close_quietly ();
      raise e)

(* The full §3.6.2 flow: ask the wizard, then return one connected socket
   per candidate.  A candidate that refuses or times out is skipped —
   counted in [client.connect_failed_total] — and the partial socket
   list is returned, so one dead server never sinks the whole request. *)
let request_sockets ?option ?timeout ?retries ?backoff ?connect_timeout ?rng
    ?metrics book ~wizard_host ~wanted ~requirement () =
  match
    request_servers ?option ?timeout ?retries ?backoff ?rng ?metrics book
      ~wizard_host ~wanted ~requirement ()
  with
  | Error _ as e -> e
  | Ok servers ->
    let connect_failed =
      match metrics with
      | None -> None
      | Some m ->
        Some
          (Smart_util.Metrics.counter m
             ~help:"candidate service connections refused or timed out"
             "client.connect_failed_total")
    in
    (* accumulate under an exception guard: if a later candidate's
       connect raises, the sockets already opened are closed instead of
       leaked *)
    let connected = ref [] in
    (try
       List.iter
         (fun host ->
           match connect_service ?connect_timeout book ~host with
           | Some c -> connected := c :: !connected
           | None ->
             (match connect_failed with
             | Some c -> Smart_util.Metrics.Counter.incr c
             | None -> ()))
         servers
     with e ->
       List.iter
         (fun { socket; _ } ->
           try Unix.close socket with Unix.Unix_error (_, _, _) -> ())
         !connected;
       raise e);
    Ok (List.rev !connected)

let close_all connected =
  List.iter
    (fun { socket; _ } ->
      try Unix.close socket with Unix.Unix_error (_, _, _) -> ())
    connected

(* ------------------------------------------------------------------ *)
(* Pooled service connections (DESIGN.md §15)                          *)
(* ------------------------------------------------------------------ *)

(* The realnet face of {!Smart_core.Session}: the sans-IO pool decides
   reuse, reference counts and LRU eviction; this wrapper owns the real
   descriptors, dialing on a pool miss and closing whatever the pool
   evicts.  Thread-safe — demo and daemon threads share one pool. *)
type pool = {
  pool_book : Addr_book.t;
  core : Smart_core.Session.pool;
  fds : (string, Unix.file_descr) Hashtbl.t;
  pool_mutex : Mutex.t;
  pool_connect_timeout : float option;
}

type pooled = { server : connected_server; handle : Smart_core.Session.conn }

let create_pool ?metrics ?capacity ?keepalive_interval ?keepalive_limit
    ?connect_timeout book =
  let fds = Hashtbl.create 16 in
  let close_host host =
    match Hashtbl.find_opt fds host with
    | Some fd ->
      Hashtbl.remove fds host;
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    | None -> ()
  in
  let core =
    Smart_core.Session.pool ?metrics ?capacity ?keepalive_interval
      ?keepalive_limit
      ~on_evict:(fun c -> close_host (Smart_core.Session.conn_host c))
      ~clock:Unix.gettimeofday ()
  in
  {
    pool_book = book;
    core;
    fds;
    pool_mutex = Mutex.create ();
    pool_connect_timeout = connect_timeout;
  }

let locked p f =
  Mutex.lock p.pool_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.pool_mutex) f

(* Reuse the pooled socket to [host] or dial a fresh one.  The core pool
   does the bookkeeping (reuse and eviction metrics under [session.*]);
   a dial failure closes the pool entry so the next acquire retries. *)
let pool_acquire p ~host =
  locked p (fun () ->
      let c = Smart_core.Session.acquire p.core ~host in
      let dial () =
        match
          connect_service ?connect_timeout:p.pool_connect_timeout p.pool_book
            ~host
        with
        | Some server ->
          Smart_core.Session.established p.core c;
          Hashtbl.replace p.fds host server.socket;
          Some { server; handle = c }
        | None ->
          Smart_core.Session.release p.core c;
          Smart_core.Session.close p.core c;
          None
      in
      match Smart_core.Session.conn_state c with
      | Smart_core.Session.Connecting -> dial ()
      | Smart_core.Session.Established -> (
        match Hashtbl.find_opt p.fds host with
        | Some fd -> Some { server = { host; socket = fd }; handle = c }
        | None -> dial () (* entry survived but its socket is gone: redial *))
      | Smart_core.Session.Draining | Smart_core.Session.Closed ->
        Smart_core.Session.release p.core c;
        None)

(* Hand the connection back; it stays pooled (and open) for the next
   acquire unless the pool has meanwhile decided otherwise. *)
let pool_release p pooled =
  locked p (fun () ->
      Smart_core.Session.release p.core pooled.handle;
      if
        Smart_core.Session.conn_state pooled.handle = Smart_core.Session.Closed
      then
        match Hashtbl.find_opt p.fds pooled.server.host with
        | Some fd when fd == pooled.server.socket ->
          Hashtbl.remove p.fds pooled.server.host;
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        | Some _ | None -> ())

(* The acquired socket turned out dead (read error, peer reset): close
   it and drop the pool entry so the next acquire dials fresh. *)
let pool_discard p pooled =
  locked p (fun () ->
      Smart_core.Session.release p.core pooled.handle;
      Smart_core.Session.close p.core pooled.handle;
      (match Hashtbl.find_opt p.fds pooled.server.host with
      | Some fd when fd == pooled.server.socket ->
        Hashtbl.remove p.fds pooled.server.host
      | Some _ | None -> ());
      try Unix.close pooled.server.socket
      with Unix.Unix_error (_, _, _) -> ())

let pool_open_count p = locked p (fun () -> Hashtbl.length p.fds)

let pool_close p =
  locked p (fun () ->
      let hosts = Hashtbl.fold (fun host _ acc -> host :: acc) p.fds [] in
      List.iter
        (fun host ->
          match Hashtbl.find_opt p.fds host with
          | Some fd ->
            Hashtbl.remove p.fds host;
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
          | None -> ())
        (List.sort String.compare hosts))

(* ------------------------------------------------------------------ *)
(* massd over real sockets                                              *)
(* ------------------------------------------------------------------ *)

type download_stats = {
  total_bytes : int;
  elapsed : float;
  throughput : float;             (* bytes per second *)
  per_server : (string * int) list;  (* blocks fetched per server *)
}

let read_exact fd buf n =
  let rec go off =
    if off >= n then true
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> false
      | read -> go (off + read)
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

(* The §5.3.2 massive download on real sockets: every connected server
   streams one block at a time (`GET <bytes>`); a server that finishes
   self-schedules the next block from the shared queue, so fast servers
   carry more of the file. *)
let download ~connected ~data_kb ~blk_kb =
  if connected = [] then invalid_arg "Client_io.download: no servers";
  if data_kb <= 0 || blk_kb <= 0 then
    invalid_arg "Client_io.download: bad sizes";
  let total_bytes = data_kb * 1024 in
  let block_bytes = blk_kb * 1024 in
  let total_blocks = (data_kb + blk_kb - 1) / blk_kb in
  let queue = ref 0 in
  let fetched = Hashtbl.create 8 in
  let mutex = Mutex.create () in
  let next_block () =
    Mutex.lock mutex;
    let result =
      if !queue >= total_blocks then None
      else begin
        let index = !queue in
        incr queue;
        let bytes =
          if index = total_blocks - 1 then
            max 1 (total_bytes - ((total_blocks - 1) * block_bytes))
          else block_bytes
        in
        Some bytes
      end
    in
    Mutex.unlock mutex;
    result
  in
  let note host =
    Mutex.lock mutex;
    Hashtbl.replace fetched host
      (1 + Option.value ~default:0 (Hashtbl.find_opt fetched host));
    Mutex.unlock mutex
  in
  let worker { host; socket } =
    let buf = Bytes.create 65536 in
    let rec go () =
      match next_block () with
      | None -> ()
      | Some bytes ->
        Service.write_line socket (Printf.sprintf "GET %d" bytes);
        let rec recv remaining =
          if remaining <= 0 then true
          else begin
            let want = min remaining (Bytes.length buf) in
            if read_exact socket buf want then recv (remaining - want)
            else false
          end
        in
        if recv bytes then begin
          note host;
          go ()
        end
    in
    go ()
  in
  let started = Unix.gettimeofday () in
  let threads = List.map (fun c -> Thread.create worker c) connected in
  List.iter Thread.join threads;
  let elapsed = Float.max 1e-9 (Unix.gettimeofday () -. started) in
  {
    total_bytes;
    elapsed;
    throughput = float_of_int total_bytes /. elapsed;
    per_server =
      List.map
        (fun { host; _ } ->
          (host, Option.value ~default:0 (Hashtbl.find_opt fetched host)))
        connected;
  }
