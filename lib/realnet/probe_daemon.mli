(** Real-socket server probe daemon: periodic /proc sampling reported to
    the system monitor, plus the UDP echo responder the network monitor
    measures against. *)

type config = {
  host : string;          (** logical name this server reports as *)
  ip : string;
  monitor_host : string;
  interval : float;
  proc : Proc_reader.t;
  iface : string option;  (** [None]: first non-loopback interface *)
}

type t

val create : Addr_book.t -> config -> t

(** One immediate sample-and-report (also used by the daemon loop). *)
val tick_once : t -> unit

val start : t -> unit

val stop : t -> unit

val reports_sent : t -> int

val last_error : t -> string option

(** The daemon's registry (the [probe.*] instruments); also served over
    UDP to [Smart_proto.Metrics_msg] scrapes on the echo port. *)
val metrics : t -> Smart_util.Metrics.t

(** The daemon's flight recorder (256 most recent spans, wall clock);
    also served over UDP to [Smart_proto.Trace_msg] scrapes on the echo
    port. *)
val tracelog : t -> Smart_util.Tracelog.t
