(** Execute sans-IO component outputs on real sockets: [Udp] becomes a
    datagram, [Stream] a one-shot TCP connection (frames are
    self-delimiting, so connection boundaries do not matter). *)

(** Connect, write everything, close; [false] on any socket error. *)
val send_stream : Unix.sockaddr -> string -> bool

(** Perform a batch of outputs, resolving hosts through the book and
    sending datagrams from [udp].  Unresolvable UDP destinations are
    dropped.  A [Stream] that fails (unresolvable, connection refused,
    write error) invokes [on_stream_failure] with the undelivered frame
    bytes — the transmitter's hook for queueing a resend; each fully
    written stream invokes [on_stream_ok]. *)
val outputs :
  ?on_stream_failure:(data:string -> unit) ->
  ?on_stream_ok:(unit -> unit) ->
  Addr_book.t ->
  udp:Udp_io.t ->
  Smart_core.Output.t list ->
  unit
