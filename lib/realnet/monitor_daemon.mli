(** Real-socket monitor machine: system monitor (UDP), security monitor
    (log contents), network monitor (UDP echo probing of the servers'
    probe daemons) and the transmitter. *)

type config = {
  host : string;
  wizard_host : string;
  mode : Smart_core.Transmitter.mode;
  probe_interval : float;
  transmit_interval : float;
  netmon_targets : string list;
  security_log : string;  (** log contents, "" for none *)
}

type t

val create : Addr_book.t -> config -> t

(** Socket-based (delay, bandwidth) probe against one target's echo
    responder: the one-way-UDP-stream formula over real sockets. *)
val socket_prober :
  ?timeout:float -> t -> target:string -> Smart_core.Netmon.probe_result option

(** Probe every configured target sequentially and publish the record. *)
val refresh_netmon : t -> Smart_proto.Records.net_record

val start : t -> unit

val stop : t -> unit

val db : t -> Smart_core.Status_db.t

val sysmon : t -> Smart_core.Sysmon.t

(** The machine-wide registry shared by the four components; also served
    over UDP to [Smart_proto.Metrics_msg] scrapes on the transmitter's
    pull port. *)
val metrics : t -> Smart_util.Metrics.t

(** The machine-wide flight recorder shared by the four components (256
    most recent spans, wall clock); also served over UDP to
    [Smart_proto.Trace_msg] scrapes on the transmitter's pull port. *)
val tracelog : t -> Smart_util.Tracelog.t
