(* Real-socket wizard machine: the receiver's TCP accept loop feeds the
   frame decoder; the wizard's UDP loop answers user requests directly to
   the requesting sockaddr. *)

type config = {
  host : string;  (* logical name of the wizard machine *)
  mode : Smart_core.Wizard.mode;
  staleness_threshold : float;  (* receiver silence before degraded replies *)
  admission : Smart_core.Wizard.admission option;
      (* per-client token buckets on the request port; None = ungated *)
}

type t = {
  config : config;
  book : Addr_book.t;
  db : Smart_core.Status_db.t;
  metrics : Smart_util.Metrics.t;
  tracelog : Smart_util.Tracelog.t;
  receiver : Smart_core.Receiver.t;
  wizard : Smart_core.Wizard.t;
  listen_socket : Unix.file_descr;
  request_socket : Udp_io.t;
  out_socket : Udp_io.t;
  mutable running : bool;
  mutable threads : Thread.t list;
  mutex : Mutex.t;  (* guards receiver/wizard/db across threads *)
  pending_addrs : (int, Unix.sockaddr) Hashtbl.t;  (* seq -> requester *)
}

(* The wizard component addresses replies symbolically; this marker routes
   them back to the requesting sockaddr. *)
let reply_marker = "@reply"

let create book (config : config) =
  let db = Smart_core.Status_db.create () in
  let metrics = Smart_util.Metrics.create () in
  (* flight recorder: a small ring of recent spans on the wall clock,
     dumped on demand by SMART-TRACE scrapes *)
  let tracelog =
    Smart_util.Tracelog.create ~capacity:256 ~clock:Unix.gettimeofday ()
  in
  let receiver =
    Smart_core.Receiver.create ~metrics ~trace:tracelog
      ~order:Smart_proto.Endian.Little db
  in
  let wizard = Smart_core.Wizard.create ~metrics ~trace:tracelog
      ~clock:Unix.gettimeofday
      ~staleness_threshold:config.staleness_threshold
      ?admission:config.admission
      { Smart_core.Wizard.mode = config.mode; groups = None }
      db in
  Smart_core.Receiver.set_update_hook receiver
    (Some (fun _ -> Smart_core.Wizard.note_update wizard));
  let shift = Addr_book.port_shift book ~host:config.host in
  let listen_socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_socket Unix.SO_REUSEADDR true;
  Unix.bind listen_socket
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Smart_proto.Ports.receiver + shift));
  Unix.listen listen_socket 16;
  {
    config;
    book;
    db;
    metrics;
    tracelog;
    receiver;
    wizard;
    listen_socket;
    request_socket = Udp_io.bind_port (Smart_proto.Ports.wizard + shift);
    out_socket = Udp_io.bind_port 0;
    running = false;
    threads = [];
    mutex = Mutex.create ();
    pending_addrs = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let sockaddr_tag = function
  | Unix.ADDR_INET (addr, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
  | Unix.ADDR_UNIX path -> path

(* Drain one transmitter connection into the receiver. *)
let serve_connection t client peer =
  let tag = sockaddr_tag peer in
  let buf = Bytes.create 65536 in
  let rec go () =
    match Unix.read client buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      locked t (fun () ->
          ignore
            (Smart_core.Receiver.handle_stream t.receiver ~from:tag
               (Bytes.sub_string buf 0 n)));
      go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ();
  locked t (fun () -> Smart_core.Receiver.forget_source t.receiver ~from:tag);
  (try Unix.close client with Unix.Unix_error (_, _, _) -> ())

(* Replies addressed to the marker are routed to the sockaddr remembered
   for their sequence number (deferred distributed-mode replies included);
   everything else (pull requests) resolves through the address book. *)
let dispatch t outputs =
  List.iter
    (fun output ->
      match output with
      | Smart_core.Output.Udp { dst; data }
        when String.equal dst.Smart_core.Output.host reply_marker ->
        (match Smart_proto.Wizard_msg.decode_reply data with
        | Ok reply ->
          (match
             Hashtbl.find_opt t.pending_addrs reply.Smart_proto.Wizard_msg.seq
           with
          | Some requester ->
            Hashtbl.remove t.pending_addrs reply.Smart_proto.Wizard_msg.seq;
            ignore (Udp_io.send t.out_socket ~to_:requester data)
          | None -> ())
        | Error _ -> ())
      | Smart_core.Output.Udp _ | Smart_core.Output.Stream _ ->
        Perform.outputs t.book ~udp:t.out_socket [ output ])
    outputs

let start t =
  if t.running then invalid_arg "Wizard_daemon.start: already running";
  t.running <- true;
  (* receiver accept loop *)
  let accept_loop () =
    while t.running do
      match Unix.accept t.listen_socket with
      | client, peer ->
        ignore (Thread.create (fun () -> serve_connection t client peer) ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.EINTR), _, _)
        ->
        ()
    done
  in
  (* request loop *)
  Udp_io.start t.request_socket (fun ~from data ->
      match Smart_proto.Metrics_msg.decode_request data with
      | Some format ->
        ignore
          (Udp_io.send t.request_socket ~to_:from
             (Smart_proto.Metrics_msg.encode_reply format t.metrics))
      | None ->
      match Smart_proto.Trace_msg.decode_request data with
      | Some format ->
        ignore
          (Udp_io.send t.request_socket ~to_:from
             (Smart_proto.Trace_msg.encode_reply format t.tracelog))
      | None ->
      if not (String.equal data "") then begin
        (match Smart_proto.Wizard_msg.decode_request data with
        | Ok request ->
          Hashtbl.replace t.pending_addrs request.Smart_proto.Wizard_msg.seq
            from
        | Error _ -> ());
        let outputs =
          locked t (fun () ->
              Smart_core.Wizard.handle_request t.wizard
                ~now:(Unix.gettimeofday ())
                ~from:{ Smart_core.Output.host = reply_marker; port = 0 }
                data)
        in
        dispatch t outputs
      end);
  (* distributed-mode pending flush *)
  let tick_loop () =
    while t.running do
      let outputs =
        locked t (fun () ->
            Smart_core.Wizard.tick t.wizard ~now:(Unix.gettimeofday ()))
      in
      dispatch t outputs;
      Thread.delay 0.05
    done
  in
  t.threads <- [ Thread.create accept_loop (); Thread.create tick_loop () ]

let stop t =
  t.running <- false;
  (* unblock accept *)
  (try
     let port =
       match Unix.getsockname t.listen_socket with
       | Unix.ADDR_INET (_, p) -> p
       | Unix.ADDR_UNIX _ -> 0
     in
     if port > 0 then begin
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
        with Unix.Unix_error (_, _, _) -> ());
       Unix.close s
     end
   with Unix.Unix_error (_, _, _) -> ());
  List.iter Thread.join t.threads;
  t.threads <- [];
  (try Unix.close t.listen_socket with Unix.Unix_error (_, _, _) -> ());
  Udp_io.stop t.request_socket;
  Udp_io.stop t.out_socket

let db t = t.db

let wizard t = t.wizard

let metrics t = t.metrics

let tracelog t = t.tracelog
