(** The client library over real sockets (§3.6.2): request, validated
    reply with retry, then one connected TCP socket per candidate. *)

type connected_server = { host : string; socket : Unix.file_descr }

(** Ask the wizard for candidate host names.  [metrics] receives the
    [client.*] instruments (see OBSERVABILITY.md).  The request is
    retransmitted up to [retries] extra times, each receive window drawn
    from [backoff] (the same truncated-exponential policy the simulated
    client uses) and capped by [timeout]; late replies to completed
    requests are dropped by sequence number. *)
val request_servers :
  ?option:Smart_proto.Wizard_msg.option_flag ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:Smart_util.Backoff.policy ->
  ?rng:Smart_util.Prng.t ->
  ?metrics:Smart_util.Metrics.t ->
  Addr_book.t ->
  wizard_host:string ->
  wanted:int ->
  requirement:string ->
  unit ->
  (string list, Smart_core.Client.error) result

(** Scrape one daemon's metrics registry: sends the
    [Smart_proto.Metrics_msg] magic to [host]:[port] (the wizard request
    port, a transmitter pull port or a probe echo port) and returns the
    rendered dump.  [Error] carries a human-readable reason (resolution,
    send failure or timeout). *)
val scrape_metrics :
  ?timeout:float ->
  ?format:Smart_proto.Metrics_msg.format ->
  Addr_book.t ->
  host:string ->
  port:int ->
  unit ->
  (string, string) result

(** Scrape one daemon's flight recorder: sends the
    [Smart_proto.Trace_msg] magic to [host]:[port] (same ports as
    {!scrape_metrics}) and returns the span dump — recent spans as text
    or Chrome trace-event JSON. *)
val scrape_trace :
  ?timeout:float ->
  ?format:Smart_proto.Trace_msg.format ->
  Addr_book.t ->
  host:string ->
  port:int ->
  unit ->
  (string, string) result

(** TCP-connect to one candidate's service port.  [connect_timeout]
    bounds the handshake (non-blocking connect + select), so a
    black-holed candidate costs seconds instead of the kernel default. *)
val connect_service :
  ?connect_timeout:float -> Addr_book.t -> host:string -> connected_server option

(** The full flow: ask, then connect each candidate.  A candidate that
    refuses or times out is skipped and counted in
    [client.connect_failed_total] (when [metrics] is given); the partial
    socket list is returned. *)
val request_sockets :
  ?option:Smart_proto.Wizard_msg.option_flag ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:Smart_util.Backoff.policy ->
  ?connect_timeout:float ->
  ?rng:Smart_util.Prng.t ->
  ?metrics:Smart_util.Metrics.t ->
  Addr_book.t ->
  wizard_host:string ->
  wanted:int ->
  requirement:string ->
  unit ->
  (connected_server list, Smart_core.Client.error) result

val close_all : connected_server list -> unit

(** {1 Pooled service connections (DESIGN.md §15)}

    The realnet face of {!Smart_core.Session}: the sans-IO pool decides
    reuse, reference counting and LRU eviction (metered under the
    [session.*] namespace); this wrapper owns the real descriptors —
    dialing on a pool miss, closing whatever the pool evicts.  All
    operations are thread-safe. *)

type pool

(** One acquired connection: the socket plus the pool's handle on it. *)
type pooled = { server : connected_server; handle : Smart_core.Session.conn }

(** [create_pool ?metrics ?capacity ?keepalive_interval ?keepalive_limit
    ?connect_timeout book] builds a pool dialing through [book].
    Defaults as in {!Smart_core.Session.pool}; the wall clock is
    injected. *)
val create_pool :
  ?metrics:Smart_util.Metrics.t ->
  ?capacity:int ->
  ?keepalive_interval:float ->
  ?keepalive_limit:int ->
  ?connect_timeout:float ->
  Addr_book.t ->
  pool

(** Reuse the pooled socket to [host] or dial a fresh one
    ([session.pool_reused_total] / [session.pool_opened_total]); [None]
    when the host is unknown or refuses.  Pair with {!pool_release} (or
    {!pool_discard} if the socket turns out dead). *)
val pool_acquire : pool -> host:string -> pooled option

(** Hand the connection back; it stays open and pooled for the next
    acquire. *)
val pool_release : pool -> pooled -> unit

(** The socket proved dead (read error, peer reset): close it and drop
    the entry so the next acquire dials fresh. *)
val pool_discard : pool -> pooled -> unit

(** Sockets currently held open by the pool. *)
val pool_open_count : pool -> int

(** Close every pooled socket (the pool remains usable). *)
val pool_close : pool -> unit

(** Read exactly [n] bytes into the buffer; [false] on EOF or error. *)
val read_exact : Unix.file_descr -> Bytes.t -> int -> bool

type download_stats = {
  total_bytes : int;
  elapsed : float;
  throughput : float;                (** bytes per second *)
  per_server : (string * int) list;  (** blocks fetched per server *)
}

(** The §5.3.2 massive download over real sockets: [data_kb] kilobytes
    in [blk_kb]-kilobyte blocks, self-scheduled across the connected
    servers (one thread each, `GET` protocol of [Service]). *)
val download :
  connected:connected_server list ->
  data_kb:int ->
  blk_kb:int ->
  download_stats
