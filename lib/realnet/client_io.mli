(** The client library over real sockets (§3.6.2): request, validated
    reply with retry, then one connected TCP socket per candidate. *)

type connected_server = { host : string; socket : Unix.file_descr }

(** Ask the wizard for candidate host names.  [metrics] receives the
    [client.*] instruments (see OBSERVABILITY.md). *)
val request_servers :
  ?option:Smart_proto.Wizard_msg.option_flag ->
  ?timeout:float ->
  ?retries:int ->
  ?rng:Smart_util.Prng.t ->
  ?metrics:Smart_util.Metrics.t ->
  Addr_book.t ->
  wizard_host:string ->
  wanted:int ->
  requirement:string ->
  unit ->
  (string list, Smart_core.Client.error) result

(** Scrape one daemon's metrics registry: sends the
    [Smart_proto.Metrics_msg] magic to [host]:[port] (the wizard request
    port, a transmitter pull port or a probe echo port) and returns the
    rendered dump.  [Error] carries a human-readable reason (resolution,
    send failure or timeout). *)
val scrape_metrics :
  ?timeout:float ->
  ?format:Smart_proto.Metrics_msg.format ->
  Addr_book.t ->
  host:string ->
  port:int ->
  unit ->
  (string, string) result

(** Scrape one daemon's flight recorder: sends the
    [Smart_proto.Trace_msg] magic to [host]:[port] (same ports as
    {!scrape_metrics}) and returns the span dump — recent spans as text
    or Chrome trace-event JSON. *)
val scrape_trace :
  ?timeout:float ->
  ?format:Smart_proto.Trace_msg.format ->
  Addr_book.t ->
  host:string ->
  port:int ->
  unit ->
  (string, string) result

(** TCP-connect to one candidate's service port. *)
val connect_service : Addr_book.t -> host:string -> connected_server option

(** The full flow: ask, then connect each candidate (refusals are
    skipped). *)
val request_sockets :
  ?option:Smart_proto.Wizard_msg.option_flag ->
  ?timeout:float ->
  ?retries:int ->
  ?rng:Smart_util.Prng.t ->
  ?metrics:Smart_util.Metrics.t ->
  Addr_book.t ->
  wizard_host:string ->
  wanted:int ->
  requirement:string ->
  unit ->
  (connected_server list, Smart_core.Client.error) result

val close_all : connected_server list -> unit

(** Read exactly [n] bytes into the buffer; [false] on EOF or error. *)
val read_exact : Unix.file_descr -> Bytes.t -> int -> bool

type download_stats = {
  total_bytes : int;
  elapsed : float;
  throughput : float;                (** bytes per second *)
  per_server : (string * int) list;  (** blocks fetched per server *)
}

(** The §5.3.2 massive download over real sockets: [data_kb] kilobytes
    in [blk_kb]-kilobyte blocks, self-scheduled across the connected
    servers (one thread each, `GET` protocol of [Service]). *)
val download :
  connected:connected_server list ->
  data_kb:int ->
  blk_kb:int ->
  download_stats
