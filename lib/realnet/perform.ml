(* Execute sans-IO component outputs on real sockets.

   [Udp] outputs become single datagrams; [Stream] outputs become a
   one-shot TCP connection (connect, send, close) — frames are
   self-delimiting, so the receiver reassembles regardless of connection
   boundaries. *)

let send_stream sockaddr data =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close socket with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      try
        Unix.connect socket sockaddr;
        let rec write off =
          if off < String.length data then begin
            let n =
              Unix.write_substring socket data off (String.length data - off)
            in
            write (off + n)
          end
        in
        write 0;
        true
      with Unix.Unix_error (_, _, _) -> false)

let outputs ?on_stream_failure ?on_stream_ok book ~(udp : Udp_io.t) outs =
  let stream_failed data =
    match on_stream_failure with None -> () | Some f -> f ~data
  in
  let stream_ok () =
    match on_stream_ok with None -> () | Some f -> f ()
  in
  List.iter
    (fun output ->
      let resolve_and_send dst data ~stream =
        match
          Addr_book.resolve book ~host:dst.Smart_core.Output.host
            ~port:dst.Smart_core.Output.port
        with
        | None -> if stream then stream_failed data
        | Some sockaddr ->
          if stream then
            if send_stream sockaddr data then stream_ok ()
            else stream_failed data
          else ignore (Udp_io.send udp ~to_:sockaddr data)
      in
      match output with
      | Smart_core.Output.Udp { dst; data } ->
        resolve_and_send dst data ~stream:false
      | Smart_core.Output.Stream { dst; data } ->
        resolve_and_send dst data ~stream:true)
    outs
