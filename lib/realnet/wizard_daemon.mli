(** Real-socket wizard machine: TCP receiver accept loop plus the UDP
    request loop, replying directly to each requester's sockaddr. *)

type config = {
  host : string;
  mode : Smart_core.Wizard.mode;
  staleness_threshold : float;
      (** receiver silence (wall-clock seconds) before replies carry the
          degraded flag; [infinity] never degrades *)
  admission : Smart_core.Wizard.admission option;
      (** arm {!Smart_core.Wizard.admission}: per-client token buckets
          gate the request port, shedding sustained overload fairly
          (delayed requests are released by the daemon's tick loop);
          [None] leaves the port ungated *)
}

type t

val create : Addr_book.t -> config -> t

val start : t -> unit

val stop : t -> unit

val db : t -> Smart_core.Status_db.t

val wizard : t -> Smart_core.Wizard.t

(** The machine-wide registry shared by receiver and wizard; also served
    over UDP to [Smart_proto.Metrics_msg] scrapes on the wizard's request
    port. *)
val metrics : t -> Smart_util.Metrics.t

(** The machine-wide flight recorder shared by receiver and wizard (256
    most recent spans, wall clock); also served over UDP to
    [Smart_proto.Trace_msg] scrapes on the wizard's request port. *)
val tracelog : t -> Smart_util.Tracelog.t
