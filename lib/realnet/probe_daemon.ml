(* Real-socket server probe daemon: samples the host's /proc at a fixed
   interval and reports to the system monitor.  Also answers the network
   monitor's UDP echo probes on the probe port, which is how (delay,
   bandwidth) is measured without raw ICMP sockets. *)

type config = {
  host : string;           (* logical name this server reports as *)
  ip : string;
  monitor_host : string;   (* where the system monitor runs *)
  interval : float;
  proc : Proc_reader.t;
  iface : string option;   (* None: auto-detect first non-loopback *)
}

type t = {
  config : config;
  metrics : Smart_util.Metrics.t;
  tracelog : Smart_util.Tracelog.t;
  probe : Smart_core.Probe.t;
  udp : Udp_io.t;          (* source socket for reports *)
  echo : Udp_io.t;         (* netmon echo responder *)
  book : Addr_book.t;
  mutable running : bool;
  mutable thread : Thread.t option;
  mutable reports_sent : int;
  mutable last_error : string option;
}

let create book (config : config) =
  let bogomips =
    Option.value ~default:1000.0 (Proc_reader.bogomips config.proc)
  in
  let iface =
    match config.iface with
    | Some iface -> iface
    | None ->
      Option.value ~default:"eth0" (Proc_reader.default_iface config.proc)
  in
  let metrics = Smart_util.Metrics.create () in
  (* flight recorder: a small ring of recent spans on the wall clock,
     dumped on demand by SMART-TRACE scrapes *)
  let tracelog =
    Smart_util.Tracelog.create ~capacity:256 ~clock:Unix.gettimeofday ()
  in
  let probe =
    Smart_core.Probe.create ~metrics ~trace:tracelog
      {
        Smart_core.Probe.host = config.host;
        ip = config.ip;
        bogomips;
        monitor =
          {
            Smart_core.Output.host = config.monitor_host;
            port = Smart_proto.Ports.sysmon;
          };
        iface;
        transport = Smart_core.Probe.Udp;
      }
  in
  let shift = Addr_book.port_shift book ~host:config.host in
  let udp = Udp_io.bind_port 0 in
  let echo = Udp_io.bind_port (Smart_proto.Ports.probe + shift) in
  {
    config;
    metrics;
    tracelog;
    probe;
    udp;
    echo;
    book;
    running = false;
    thread = None;
    reports_sent = 0;
    last_error = None;
  }

let tick_once t =
  match Proc_reader.snapshot t.config.proc with
  | Error e -> t.last_error <- Some e
  | Ok snapshot ->
    (match
       Smart_core.Probe.tick t.probe ~now:(Unix.gettimeofday ()) ~snapshot
     with
    | Error e -> t.last_error <- Some e
    | Ok (_report, outputs) ->
      Perform.outputs t.book ~udp:t.udp outputs;
      t.reports_sent <- t.reports_sent + 1)

let start t =
  if t.running then invalid_arg "Probe_daemon.start: already running";
  t.running <- true;
  (* echo responder: bounce every datagram back to its sender (metrics
     scrapes answered with the registry dump instead) *)
  Udp_io.start t.echo (fun ~from data ->
      match Smart_proto.Metrics_msg.decode_request data with
      | Some format ->
        ignore
          (Udp_io.send t.echo ~to_:from
             (Smart_proto.Metrics_msg.encode_reply format t.metrics))
      | None ->
      match Smart_proto.Trace_msg.decode_request data with
      | Some format ->
        ignore
          (Udp_io.send t.echo ~to_:from
             (Smart_proto.Trace_msg.encode_reply format t.tracelog))
      | None -> ignore (Udp_io.send t.echo ~to_:from data));
  let loop () =
    while t.running do
      tick_once t;
      Thread.delay t.config.interval
    done
  in
  t.thread <- Some (Thread.create loop ())

let stop t =
  t.running <- false;
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None;
  Udp_io.stop t.echo;
  Udp_io.stop t.udp

let reports_sent t = t.reports_sent

let last_error t = t.last_error

let metrics t = t.metrics

let tracelog t = t.tracelog
