(* Reads the real /proc of the host the probe daemon runs on.  The file
   locations are configurable so tests can point the probe at synthetic
   fixtures; the parsers are shared with the simulator (Smart_host.Procfs
   accepts both 2.4 and modern formats). *)

type t = {
  loadavg_path : string;
  stat_path : string;
  meminfo_path : string;
  netdev_path : string;
  cpuinfo_path : string;
}

let default =
  {
    loadavg_path = "/proc/loadavg";
    stat_path = "/proc/stat";
    meminfo_path = "/proc/meminfo";
    netdev_path = "/proc/net/dev";
    cpuinfo_path = "/proc/cpuinfo";
  }

let read_file path =
  try
    let ic = open_in_bin path in
    let len = 65536 in
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create len in
    let rec go () =
      let n = input ic chunk 0 len in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      end
    in
    (try go () with End_of_file -> ());
    close_in ic;
    Some (Buffer.contents buf)
  with Sys_error _ -> None

let snapshot t : (Smart_host.Procfs.snapshot, string) result =
  match
    ( read_file t.loadavg_path,
      read_file t.stat_path,
      read_file t.meminfo_path,
      read_file t.netdev_path )
  with
  | Some loadavg_text, Some stat_text, Some meminfo_text, Some netdev_text ->
    Ok
      {
        Smart_host.Procfs.loadavg_text;
        stat_text;
        meminfo_text;
        netdev_text;
      }
  | _ -> Error "proc_reader: missing /proc file"

(* Parse "bogomips : 4771.02" from /proc/cpuinfo (first CPU). *)
let bogomips t =
  match read_file t.cpuinfo_path with
  | None -> None
  | Some text ->
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           let lower = String.lowercase_ascii line in
           if
             String.length lower >= 8
             && String.equal (String.sub lower 0 8) "bogomips"
           then
             match String.index_opt line ':' with
             | Some i ->
               float_of_string_opt
                 (String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)))
             | None -> None
           else None)

(* First non-loopback interface in /proc/net/dev, for the probe default. *)
let default_iface t =
  match read_file t.netdev_path with
  | None -> None
  | Some text ->
    (match Smart_host.Procfs.parse_net_dev text with
    | Error _ -> None
    | Ok stats ->
      (match
         List.find_opt
           (fun s -> not (String.equal s.Smart_host.Procfs.iface "lo"))
           stats
       with
      | Some s -> Some s.Smart_host.Procfs.iface
      | None ->
        (match stats with s :: _ -> Some s.Smart_host.Procfs.iface | [] -> None)))
