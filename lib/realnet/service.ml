(* The per-server TCP service the client library connects the returned
   sockets to.  A tiny line-oriented protocol sufficient for the examples
   and integration tests:

     ECHO <text>\n   -> <text>\n
     WHO\n           -> <server name>\n
     GET <bytes>\n   -> exactly <bytes> bytes of payload (the massd
                        file-server role)
     BYE\n           -> connection closed                              *)

type t = {
  name : string;
  socket : Unix.file_descr;
  mutable running : bool;
  mutable thread : Thread.t option;
  mutable connections : int;
}

let create book ~name =
  let shift = Addr_book.port_shift book ~host:name in
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Smart_proto.Ports.service + shift));
  Unix.listen socket 16;
  { name; socket; running = false; thread = None; connections = 0 }

let read_line_opt fd =
  let buf = Buffer.create 64 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | _ ->
      if Bytes.get byte 0 = '\n' then Some (Buffer.contents buf)
      else begin
        Buffer.add_char buf (Bytes.get byte 0);
        go ()
      end
    | exception Unix.Unix_error (_, _, _) -> None
  in
  go ()

let write_line fd line =
  let data = line ^ "\n" in
  try ignore (Unix.write_substring fd data 0 (String.length data))
  with Unix.Unix_error (_, _, _) -> ()

(* Stream exactly [n] payload bytes to the client. *)
let send_blob fd n =
  let chunk = Bytes.make 8192 'd' in
  let rec go remaining =
    if remaining > 0 then begin
      let len = min remaining (Bytes.length chunk) in
      match Unix.write fd chunk 0 len with
      | written when written > 0 -> go (remaining - written)
      | _ -> ()
      | exception Unix.Unix_error (_, _, _) -> ()
    end
  in
  go n

let serve t client =
  let rec go () =
    match read_line_opt client with
    | None -> ()
    | Some line ->
      if String.length line >= 5 && String.equal (String.sub line 0 5) "ECHO "
      then begin
        write_line client (String.sub line 5 (String.length line - 5));
        go ()
      end
      else if String.equal line "WHO" then begin
        write_line client t.name;
        go ()
      end
      else if
        String.length line >= 4 && String.equal (String.sub line 0 4) "GET "
      then begin
        (match int_of_string_opt (String.trim (String.sub line 4 (String.length line - 4))) with
        | Some n when n >= 0 && n <= 1_000_000_000 -> send_blob client n
        | Some _ | None -> write_line client "ERR bad size");
        go ()
      end
      else if String.equal line "BYE" then ()
      else begin
        write_line client "ERR unknown command";
        go ()
      end
  in
  go ();
  try Unix.close client with Unix.Unix_error (_, _, _) -> ()

let start t =
  if t.running then invalid_arg "Service.start: already running";
  t.running <- true;
  let loop () =
    while t.running do
      match Unix.accept t.socket with
      | client, _ ->
        t.connections <- t.connections + 1;
        ignore (Thread.create (fun () -> serve t client) ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.EINTR), _, _)
        ->
        ()
    done
  in
  t.thread <- Some (Thread.create loop ())

let stop t =
  t.running <- false;
  (try
     match Unix.getsockname t.socket with
     | Unix.ADDR_INET (_, port) ->
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
        with Unix.Unix_error (_, _, _) -> ());
       Unix.close s
     | Unix.ADDR_UNIX _ -> ()
   with Unix.Unix_error (_, _, _) -> ());
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None;
  try Unix.close t.socket with Unix.Unix_error (_, _, _) -> ()

let connections t = t.connections
