(* Real-socket monitor machine: system monitor (UDP), security monitor
   (log file), network monitor (UDP echo probing of the servers' probe
   daemons), and the transmitter (periodic TCP push, or pull-driven in
   distributed mode). *)

type config = {
  host : string;              (* logical name of the monitor machine *)
  wizard_host : string;
  mode : Smart_core.Transmitter.mode;
  probe_interval : float;     (* expected probe reporting period *)
  transmit_interval : float;
  netmon_targets : string list;
  security_log : string;      (* contents, "" for none *)
}

type t = {
  config : config;
  book : Addr_book.t;
  db : Smart_core.Status_db.t;
  metrics : Smart_util.Metrics.t;
  tracelog : Smart_util.Tracelog.t;
  sysmon : Smart_core.Sysmon.t;
  secmon : Smart_core.Secmon.t;
  netmon : Smart_core.Netmon.t;
  transmitter : Smart_core.Transmitter.t;
  sys_socket : Udp_io.t;
  pull_socket : Udp_io.t;
  out_socket : Udp_io.t;
  mutable running : bool;
  mutable threads : Thread.t list;
}

let create book (config : config) =
  let db = Smart_core.Status_db.create () in
  let metrics = Smart_util.Metrics.create () in
  (* flight recorder: a small ring of recent spans on the wall clock,
     dumped on demand by SMART-TRACE scrapes *)
  let tracelog =
    Smart_util.Tracelog.create ~capacity:256 ~clock:Unix.gettimeofday ()
  in
  let sysmon =
    Smart_core.Sysmon.create
      ~config:
        {
          Smart_core.Sysmon.default_config with
          probe_interval = config.probe_interval;
          missed_intervals = 3;
        }
      ~metrics ~trace:tracelog db
  in
  let secmon = Smart_core.Secmon.create ~metrics ~trace:tracelog db in
  if not (String.equal config.security_log "") then
    ignore (Smart_core.Secmon.refresh_from_log secmon config.security_log);
  let netmon =
    Smart_core.Netmon.create ~metrics ~trace:tracelog
      {
        Smart_core.Netmon.monitor_name = config.host;
        targets = config.netmon_targets;
      }
      db
  in
  let transmitter =
    Smart_core.Transmitter.create ~metrics ~trace:tracelog
      ~monitor_name:config.host
      {
        Smart_core.Transmitter.mode = config.mode;
        order = Smart_proto.Endian.Little;
        receiver =
          {
            Smart_core.Output.host = config.wizard_host;
            port = Smart_proto.Ports.receiver;
          };
      }
      db
  in
  let shift = Addr_book.port_shift book ~host:config.host in
  {
    config;
    book;
    db;
    metrics;
    tracelog;
    sysmon;
    secmon;
    netmon;
    transmitter;
    sys_socket = Udp_io.bind_port (Smart_proto.Ports.sysmon + shift);
    pull_socket = Udp_io.bind_port (Smart_proto.Ports.transmitter + shift);
    out_socket = Udp_io.bind_port 0;
    running = false;
    threads = [];
  }

(* RTT of one [size]-byte datagram against a probe daemon's echo
   responder; [None] on timeout. *)
let echo_rtt t ~target ~size ~timeout =
  match Addr_book.resolve t.book ~host:target ~port:Smart_proto.Ports.probe with
  | None -> None
  | Some to_ ->
    let socket = Udp_io.bind_port 0 in
    Fun.protect
      ~finally:(fun () -> Udp_io.stop socket)
      (fun () ->
        let payload = String.make size 'p' in
        let sent_at = Unix.gettimeofday () in
        if not (Udp_io.send socket ~to_ payload) then None
        else
          match Udp_io.recv_timeout socket ~timeout with
          | Some (_, _) -> Some (Unix.gettimeofday () -. sent_at)
          | None -> None)

(* The one-way-UDP-stream estimate over real sockets: two echo probes of
   different sizes, B = (S2-S1)/(T2-T1). *)
let socket_prober ?(timeout = 2.0) t ~target =
  let delay = echo_rtt t ~target ~size:64 ~timeout in
  let t1 = echo_rtt t ~target ~size:1600 ~timeout in
  let t2 = echo_rtt t ~target ~size:2900 ~timeout in
  match (delay, t1, t2) with
  | Some d, Some t1, Some t2 when t2 > t1 ->
    Some
      {
        Smart_core.Netmon.delay = d /. 2.0;
        bandwidth = float_of_int (2900 - 1600) /. (t2 -. t1);
      }
  | Some d, _, _ ->
    (* bandwidth indistinguishable (fast local path): report delay only
       with a conservative bandwidth floor *)
    Some { Smart_core.Netmon.delay = d /. 2.0; bandwidth = 0.0 }
  | _ -> None

let refresh_netmon t =
  Smart_core.Netmon.probe_all t.netmon ~now:(Unix.gettimeofday ())
    ~prober:(fun ~target -> socket_prober t ~target)

(* Execute transmitter outputs with the resilience hooks wired: a failed
   TCP push lands in the transmitter's bounded resend queue (and arms its
   backoff), a successful one resets it. *)
let perform_transmits t outputs =
  Perform.outputs t.book ~udp:t.out_socket outputs
    ~on_stream_failure:(fun ~data ->
      Smart_core.Transmitter.note_send_failure t.transmitter
        ~now:(Unix.gettimeofday ()) ~data)
    ~on_stream_ok:(fun () ->
      Smart_core.Transmitter.note_send_ok t.transmitter)

let start t =
  if t.running then invalid_arg "Monitor_daemon.start: already running";
  t.running <- true;
  Udp_io.start t.sys_socket (fun ~from:_ data ->
      if not (String.equal data "") then
        ignore
          (Smart_core.Sysmon.handle_report t.sysmon
             ~now:(Unix.gettimeofday ()) data));
  Udp_io.start t.pull_socket (fun ~from data ->
      match Smart_proto.Metrics_msg.decode_request data with
      | Some format ->
        ignore
          (Udp_io.send t.pull_socket ~to_:from
             (Smart_proto.Metrics_msg.encode_reply format t.metrics))
      | None ->
      match Smart_proto.Trace_msg.decode_request data with
      | Some format ->
        ignore
          (Udp_io.send t.pull_socket ~to_:from
             (Smart_proto.Trace_msg.encode_reply format t.tracelog))
      | None ->
        let outputs = Smart_core.Transmitter.handle_pull t.transmitter ~data in
        perform_transmits t outputs);
  let transmit_loop () =
    while t.running do
      let now = Unix.gettimeofday () in
      ignore (Smart_core.Sysmon.sweep t.sysmon ~now);
      perform_transmits t (Smart_core.Transmitter.tick t.transmitter ~now);
      Thread.delay t.config.transmit_interval
    done
  in
  t.threads <- [ Thread.create transmit_loop () ]

let stop t =
  t.running <- false;
  List.iter Thread.join t.threads;
  t.threads <- [];
  Udp_io.stop t.sys_socket;
  Udp_io.stop t.pull_socket;
  Udp_io.stop t.out_socket

let db t = t.db

let sysmon t = t.sysmon

let metrics t = t.metrics

let tracelog t = t.tracelog
