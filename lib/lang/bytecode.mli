(** Flat register bytecode for the requirement language and its
    allocation-free interpreter over a columnar status snapshot.

    {!Compile} translates a parsed {!Ast.program} into a {!program};
    {!run} evaluates it against one server (one dense column index) of a
    {!columns} snapshot, writing every result into the preallocated
    {!state} — the steady-state path performs no allocation; only faults
    (which reproduce {!Eval}'s messages byte-for-byte) allocate their
    message.  [Eval] remains the reference semantics; the QCheck
    differential property in the test suite pins the two against each
    other. *)

type f64_matrix =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

type f64_column =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type i8_column =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Structure-of-arrays status snapshot: [sys.{field, server}] holds the
    22 server-side variables ({!sys_fields} order), the net/sec columns
    carry the monitor and security planes with presence flags.  Units
    are the requirement language's: delay in milliseconds, bandwidth in
    Mbps. *)
type columns = {
  n : int;
  sys : f64_matrix;
  net_delay : f64_column;
  net_bw : f64_column;
  has_net : i8_column;
  sec_level : f64_column;
  has_sec : i8_column;
}

(** The server-side variables in column order ([Vars.server_side]). *)
val sys_fields : string array

val sys_field_count : int

val col_net_delay : int

val col_net_bw : int

val col_sec_level : int

(** Column id of a server-side or monitor-side variable. *)
val column_of_var : string -> int option

(** Fresh (uninitialised) columns for [n] servers. *)
val create_columns : int -> columns

(** Number of user-side parameters (10). *)
val uparam_count : int

(** Slot of a user-side parameter in [Vars.user_side] order: preferred
    hosts are slots [0..4], denied hosts [5..9]. *)
val uparam_slot : string -> int

(** Slots below this bound are user_preferred_host parameters. *)
val preferred_slots : int

type program = {
  code : int array;
  stmt_start : int array;
  stmt_stop : int array;
  stmt_reg : int array;
  stmt_line : int array;
  stmt_logical : bool array;
  stmt_order_by : bool array;
  consts : float array;
  pool : string array;
  fns : (float -> float) array;
  nregs : int;
  ntemps : int;
  nulog : int;
  has_uparams : bool;
  has_order_by : bool;
}

(** Preallocated evaluation state for one program, reused across servers
    and requests.  Register/statement tags: [-1] number, [>= 0] address
    (pool index); statement tags add [-2] fault (message in [serr]).
    [ulog_*] log every user-parameter assignment in execution order
    (the preferred/denied host lists). *)
type state = {
  rtag : int array;
  rval : float array;
  tval_tag : int array;
  tval : float array;
  tinit : bool array;
  uval_tag : int array;
  uval : float array;
  uset : bool array;
  ulog_slot : int array;
  ulog_tag : int array;
  ulog_val : float array;
  mutable ulog_len : int;
  stag : int array;
  sval : float array;
  serr : string array;
  mutable ok : bool;
  mutable order_found : bool;
  mutable order_val : float;
}

val make_state : program -> state

val nstmts : program -> int

(** Evaluate the program against server [server] of [columns], filling
    [state].  Raises [Invalid_argument] if the index is out of range or
    an opcode is corrupt; language-level faults are recorded per
    statement, never raised.  Alongside the per-statement results, a run
    leaves the qualification verdict in [state.ok] and the [order_by]
    key (the last such assignment that produced a number) in
    [state.order_found] / [state.order_val].  [stop_unqualified]
    (default false) abandons the remaining statements as soon as a
    logical statement comes out false — the selection scan's mode; the
    per-statement results past that point are then stale, but [ok] is
    already decided.

    The interpreter runs unchecked on operand indices: only programs
    that passed {!validate} (which {!Compile.program} applies) are in
    contract. *)
val run :
  ?stop_unqualified:bool -> program -> state -> columns -> server:int -> unit

(** Did the server qualify (every logical statement truthy, faulted
    logical statements counting as false)?  Reads [state.ok]. *)
val qualified : program -> state -> bool

(** Statement-major plan for the dominant requirement shape: a
    conjunction of fused column-vs-constant compares plus at most one
    [order_by = <column>], with no user parameters.  Evaluating such a
    program column-at-a-time over every server beats the interpreter's
    server-at-a-time loop by a wide margin. *)
type sweep

(** The sweep plan of a program, or [None] when any statement falls
    outside the shape (the caller then uses {!run}). *)
val sweep_of : program -> sweep option

(** Evaluate the plan over all servers at once: [qualified.[s]] ends
    ['\001'] iff server [s] qualifies, and [order.(s)] gets the
    order_by key ([neg_infinity] where its column has no data).  Both
    buffers must hold at least [n] slots.  Agrees with {!run} +
    {!qualified} / [order_found]/[order_val] on every server. *)
val run_sweep : sweep -> columns -> qualified:Bytes.t -> order:float array -> unit

(** Check every operand of every instruction against the program's
    declared sizes; raises [Invalid_argument] on the first violation.
    The interpreter's unsafe accesses rely on this having passed. *)
val validate : program -> unit

(** Where {!verify} found its first violation: statement index and
    program counter ([-1]/[-1] for whole-program judgments such as the
    uparam-log size) plus a human-readable reason. *)
type verify_error = { stmt : int; pc : int; reason : string }

val verify_error_to_string : verify_error -> string

(** Full static verification: the {!validate} bounds walk plus an
    abstract interpretation of every statement slice (register
    init-before-use, numeric soundness of every arithmetic operand —
    the judgment that makes {!Compile}'s NUMCHK elision safe — result
    register coverage on non-faulting paths, dead code after an
    unconditional FAULT carrying no obligations) and the sweep-plan
    precondition (a {!sweep_of}-admitted program performs no temp reads
    and no user-parameter traffic).  {!Compile.program} runs this behind
    its [?verify] debug flag; smartlint's "bytecode" rule runs it over
    the checked-in fixture programs. *)
val verify : program -> (unit, verify_error) result

(** Reconstruct the reference evaluator's outcome from a finished run
    (diagnostics and differential tests; allocates freely). *)
val to_outcome : program -> state -> Eval.outcome
