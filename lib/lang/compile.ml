(* Ast -> Bytecode translation.

   Emission order is evaluation order, so the reference evaluator's
   side-effect and fault sequencing carries over directly:

   - [Eval] checks "is this a number?" on the left operand *before*
     evaluating the right one, so every arithmetic operand is followed
     by a NUMCHK at its own evaluation point;
   - statically-detectable faults (assignment to a server-side variable
     or builtin, unknown function, read of a never-assigned temp) become
     FAULT ops *at the position where Eval would raise* — code before
     them still runs, code after them is dead;
   - a temp gets its fixed slot when its first assignment site is
     compiled (after the right-hand side, mirroring Eval's store
     happening after evaluation), so a read compiled earlier than every
     assignment is statically unresolvable, exactly like Eval's
     runtime miss;
   - the bare-identifier-names-a-host rule ([user_preferred_host1 = x])
     depends on whether [x] is bound as a temp *at runtime*; when an
     assignment site precedes, UVAR decides per server, otherwise the
     identifier is a plain address constant.

   Registers are scratch within one statement (the counter resets per
   statement; results are read out before the next statement runs), so
   [nregs] is the widest statement's need, not the program's. *)

type emitter = {
  mutable code : int array;
  mutable len : int;
  consts_tbl : (int64, int) Hashtbl.t;  (* keyed by bits: -0.0 /= 0.0, nan ok *)
  mutable consts_rev : float list;
  mutable nconsts : int;
  pool_tbl : (string, int) Hashtbl.t;
  mutable pool_rev : string list;
  mutable npool : int;
  fns_tbl : (string, int) Hashtbl.t;
  mutable fns_rev : (float -> float) list;
  mutable nfns : int;
  temps : (string, int) Hashtbl.t;
  mutable ntemps : int;
  mutable reg : int;
  mutable nregs : int;
  mutable nulog : int;
  mutable has_uparams : bool;
}

let create_emitter () =
  {
    code = Array.make 64 0;
    len = 0;
    consts_tbl = Hashtbl.create 16;
    consts_rev = [];
    nconsts = 0;
    pool_tbl = Hashtbl.create 16;
    pool_rev = [];
    npool = 0;
    fns_tbl = Hashtbl.create 8;
    fns_rev = [];
    nfns = 0;
    temps = Hashtbl.create 8;
    ntemps = 0;
    reg = 0;
    nregs = 0;
    nulog = 0;
    has_uparams = false;
  }

let emit e v =
  if e.len >= Array.length e.code then begin
    let fresh = Array.make (2 * Array.length e.code) 0 in
    Array.blit e.code 0 fresh 0 e.len;
    e.code <- fresh
  end;
  e.code.(e.len) <- v;
  e.len <- e.len + 1

let emit2 e a b = emit e a; emit e b

let emit3 e a b c = emit e a; emit e b; emit e c

let emit4 e a b c d = emit e a; emit e b; emit e c; emit e d

let const_idx e f =
  let bits = Int64.bits_of_float f in
  match Hashtbl.find_opt e.consts_tbl bits with
  | Some i -> i
  | None ->
    let i = e.nconsts in
    Hashtbl.replace e.consts_tbl bits i;
    e.consts_rev <- f :: e.consts_rev;
    e.nconsts <- i + 1;
    i

let pool_idx e s =
  match Hashtbl.find_opt e.pool_tbl s with
  | Some i -> i
  | None ->
    let i = e.npool in
    Hashtbl.replace e.pool_tbl s i;
    e.pool_rev <- s :: e.pool_rev;
    e.npool <- i + 1;
    i

let fn_idx e name f =
  match Hashtbl.find_opt e.fns_tbl name with
  | Some i -> i
  | None ->
    let i = e.nfns in
    Hashtbl.replace e.fns_tbl name i;
    e.fns_rev <- f :: e.fns_rev;
    e.nfns <- i + 1;
    i

let alloc_reg e =
  let r = e.reg in
  e.reg <- r + 1;
  if e.reg > e.nregs then e.nregs <- e.reg;
  r

(* Fault messages are built with [^] rather than [Printf.sprintf]: the
   compiler runs per request on the wizard's cold path and sprintf was a
   third of its profile.  Spellings must stay byte-identical to Eval's. *)
let undefined_variable e name = pool_idx e ("undefined variable " ^ name)

(* Compile-time type of the value a register will hold: most operators
   only produce numbers, so the NUMCHK guarding each arithmetic operand
   can be elided when the operand is statically numeric.  [`Other]
   covers addresses and the dynamically-typed loads (temps, user
   parameters); their NUMCHK stays and reproduces Eval's fault. *)
type static = Snum | Sother

let numchk e (r, static) = if static <> Snum then emit2 e 3 r

let rec compile_expr e (expr : Ast.expr) : int * static =
  match expr with
  | Ast.Number f ->
    let r = alloc_reg e in
    emit3 e 0 r (const_idx e f);
    (r, Snum)
  | Ast.Netaddr a ->
    let r = alloc_reg e in
    emit3 e 1 r (pool_idx e a);
    (r, Sother)
  | Ast.Paren inner -> compile_expr e inner
  | Ast.Var name -> compile_var e name
  | Ast.Assign (name, rhs) -> compile_assign e name rhs
  | Ast.Neg inner ->
    let a = compile_expr e inner in
    numchk e a;
    let r = alloc_reg e in
    emit3 e 9 r (fst a);
    (r, Snum)
  | Ast.Call (fname, arg) ->
    (match Builtins.find fname with
    | None ->
      (* Eval faults before evaluating the argument *)
      emit2 e 19 (pool_idx e ("unknown function " ^ fname));
      (alloc_reg e, Snum)
    | Some f ->
      let a = compile_expr e arg in
      numchk e a;
      let r = alloc_reg e in
      emit e 10;
      emit4 e r (fn_idx e fname f) (pool_idx e fname) (fst a);
      (r, Snum))
  | Ast.Arith (op, a, b) ->
    let ra = compile_expr e a in
    numchk e ra;
    let rb = compile_expr e b in
    numchk e rb;
    let r = alloc_reg e in
    let opcode =
      match op with
      | Ast.Add -> 4
      | Ast.Sub -> 5
      | Ast.Mul -> 6
      | Ast.Div -> 7
      | Ast.Pow -> 8
    in
    emit4 e opcode r (fst ra) (fst rb);
    (r, Snum)
  | Ast.Cmp (op, a, b) ->
    let ra, _ = compile_expr e a in
    let rb, _ = compile_expr e b in
    let r = alloc_reg e in
    let sub =
      match op with
      | Ast.Lt -> 0
      | Ast.Le -> 1
      | Ast.Gt -> 2
      | Ast.Ge -> 3
      | Ast.Eq -> 4
      | Ast.Ne -> 5
    in
    emit e 11;
    emit4 e r sub ra rb;
    (r, Snum)
  | Ast.Logic (op, a, b) ->
    let ra, _ = compile_expr e a in
    let rb, _ = compile_expr e b in
    let r = alloc_reg e in
    emit4 e (match op with Ast.And -> 12 | Ast.Or -> 13) r ra rb;
    (r, Snum)

and compile_var e name : int * static =
  let r = alloc_reg e in
  if Vars.is_user_side name then begin
    emit4 e 16 r (Bytecode.uparam_slot name)
      (pool_idx e ("user parameter " ^ name ^ " not set"));
    (r, Sother)
  end
  else begin
    match Bytecode.column_of_var name with
    | Some col ->
      emit4 e 2 r col (undefined_variable e name);
      (r, Snum)
    | None ->
      (match Hashtbl.find_opt e.temps name with
      | Some t ->
        emit4 e 14 r t (undefined_variable e name);
        (r, Sother)
      | None ->
        (* no assignment site precedes: Eval would miss at runtime *)
        emit2 e 19 (undefined_variable e name);
        (r, Snum))
  end

and compile_assign e name rhs : int * static =
  if Vars.is_server_side name then begin
    emit2 e 19
      (pool_idx e ("cannot assign to server-side variable " ^ name));
    (alloc_reg e, Snum)
  end
  else if Builtins.is_builtin name then begin
    emit2 e 19
      (pool_idx e ("cannot assign to built-in function " ^ name));
    (alloc_reg e, Snum)
  end
  else if Vars.is_user_side name then begin
    let u = Bytecode.uparam_slot name in
    let r =
      (* address context: a bare identifier names a host — unless it is
         bound as a temp at runtime (Eval checks the temp table
         dynamically; UVAR reproduces that when a site precedes) *)
      match rhs with
      | Ast.Var candidate
        when (not (Vars.is_server_side candidate))
             && not (Vars.is_user_side candidate) -> (
        match Hashtbl.find_opt e.temps candidate with
        | None ->
          let r = alloc_reg e in
          emit3 e 1 r (pool_idx e candidate);
          (r, Sother)
        | Some t ->
          let r = alloc_reg e in
          emit4 e 18 r t (pool_idx e candidate);
          (r, Sother))
      | _ -> compile_expr e rhs
    in
    emit3 e 17 u (fst r);
    e.nulog <- e.nulog + 1;
    e.has_uparams <- true;
    r
  end
  else begin
    let r = compile_expr e rhs in
    let t =
      match Hashtbl.find_opt e.temps name with
      | Some t -> t
      | None ->
        let t = e.ntemps in
        Hashtbl.replace e.temps name t;
        e.ntemps <- t + 1;
        t
    in
    emit3 e 15 t (fst r);
    r
  end

(* Statement-level superinstruction: the overwhelmingly common shape
   [column CMP number] (either operand order) collapses to one CMPC op —
   a column read, a constant compare, one dispatch.  Operand order flips
   the comparison ([0.2 < x] is [x > 0.2]); the fault point is the
   column read in both cases, which is where Eval faults too (a number
   literal cannot fault). *)
let swap_sub = function 0 -> 2 | 1 -> 3 | 2 -> 0 | 3 -> 1 | s -> s

let sub_of = function
  | Ast.Lt -> 0
  | Ast.Le -> 1
  | Ast.Gt -> 2
  | Ast.Ge -> 3
  | Ast.Eq -> 4
  | Ast.Ne -> 5

let fuse_stmt e (expr : Ast.expr) =
  let cmpc op name f ~swapped =
    match Bytecode.column_of_var name with
    | None -> None
    | Some col ->
      let sub = if swapped then swap_sub (sub_of op) else sub_of op in
      let r = alloc_reg e in
      emit e 20;
      emit e r;
      emit e sub;
      emit e col;
      emit e (undefined_variable e name);
      emit e (const_idx e f);
      Some (r, Snum)
  in
  match expr with
  | Ast.Cmp (op, Ast.Var name, Ast.Number f) -> cmpc op name f ~swapped:false
  | Ast.Cmp (op, Ast.Number f, Ast.Var name) -> cmpc op name f ~swapped:true
  | _ -> None

let compile_stmt e (expr : Ast.expr) =
  match fuse_stmt e expr with Some r -> r | None -> compile_expr e expr

let is_order_by (st : Ast.statement) =
  match st.Ast.expr with
  | Ast.Assign (name, _) -> String.equal name "order_by"
  | Ast.Number _ | Ast.Netaddr _ | Ast.Var _ | Ast.Arith _ | Ast.Cmp _
  | Ast.Logic _ | Ast.Call _ | Ast.Neg _ | Ast.Paren _ ->
    false

let program (ast : Ast.program) : Bytecode.program =
  let e = create_emitter () in
  let stmts =
    List.map
      (fun (st : Ast.statement) ->
        e.reg <- 0;
        let start = e.len in
        let r, _ = compile_stmt e st.Ast.expr in
        (start, e.len, r, st.Ast.line, Ast.is_logical st.Ast.expr,
         is_order_by st))
      ast
  in
  let n = List.length stmts in
  let stmt_start = Array.make (max n 1) 0
  and stmt_stop = Array.make (max n 1) 0
  and stmt_reg = Array.make (max n 1) 0
  and stmt_line = Array.make (max n 1) 0
  and stmt_logical = Array.make (max n 1) false
  and stmt_order_by = Array.make (max n 1) false in
  List.iteri
    (fun i (start, stop, r, line, logical, ob) ->
      stmt_start.(i) <- start;
      stmt_stop.(i) <- stop;
      stmt_reg.(i) <- r;
      stmt_line.(i) <- line;
      stmt_logical.(i) <- logical;
      stmt_order_by.(i) <- ob)
    stmts;
  {
    Bytecode.code = Array.sub e.code 0 e.len;
    stmt_start = Array.sub stmt_start 0 n;
    stmt_stop = Array.sub stmt_stop 0 n;
    stmt_reg = Array.sub stmt_reg 0 n;
    stmt_line = Array.sub stmt_line 0 n;
    stmt_logical = Array.sub stmt_logical 0 n;
    stmt_order_by = Array.sub stmt_order_by 0 n;
    consts = Array.of_list (List.rev e.consts_rev);
    pool = Array.of_list (List.rev e.pool_rev);
    fns = Array.of_list (List.rev e.fns_rev);
    nregs = e.nregs;
    ntemps = e.ntemps;
    nulog = e.nulog;
    has_uparams = e.has_uparams;
    has_order_by =
      List.exists (fun (_, _, _, _, _, ob) -> ob) stmts;
  }

let program ?(verify = false) ast =
  let p = program ast in
  (* earn the interpreter's unsafe operand accesses *)
  Bytecode.validate p;
  (* debug mode: the full dataflow verification on top (init-before-use,
     NUMCHK-elision soundness, sweep preconditions) — any error here is a
     compiler bug, so surface it loudly *)
  if verify then begin
    match Bytecode.verify p with
    | Ok () -> ()
    | Error e ->
      invalid_arg ("Compile.program: " ^ Bytecode.verify_error_to_string e)
  end;
  p
