(* Variable-name taxonomy of the requirement language.

   22 server-side variables are bound from the server status reports
   (Appendix B.1), the monitor_* variables from the network monitor's
   (delay, bandwidth) records and the security database, and 10 user-side
   variables carry the preferred/denied host lists (Appendix B.2).

   Units: loads are plain numbers; CPU fields are fractions in [0,1];
   memory is in megabytes; disk counters are requests/blocks per second;
   network interface counters bytes or packets per second;
   monitor_network_delay is in milliseconds and monitor_network_bw in
   Mbps (the units of the §5.3 experiments). *)

let server_side =
  [
    "host_system_load1";
    "host_system_load5";
    "host_system_load15";
    "host_cpu_user";
    "host_cpu_nice";
    "host_cpu_system";
    "host_cpu_free";
    "host_cpu_bogomips";
    "host_memory_total";
    "host_memory_used";
    "host_memory_free";
    "host_memory_buffers";
    "host_memory_cached";
    "host_disk_allreq";
    "host_disk_rreq";
    "host_disk_rblocks";
    "host_disk_wreq";
    "host_disk_wblocks";
    "host_network_rbytesps";
    "host_network_rpacketsps";
    "host_network_tbytesps";
    "host_network_tpacketsps";
  ]

(* Bound from the network monitor and security databases rather than the
   per-host probe reports. *)
let monitor_side =
  [ "monitor_network_delay"; "monitor_network_bw"; "host_security_level" ]

let user_preferred_prefix = "user_preferred_host"

let user_denied_prefix = "user_denied_host"

let user_side =
  List.init 5 (fun i -> Printf.sprintf "%s%d" user_preferred_prefix (i + 1))
  @ List.init 5 (fun i -> Printf.sprintf "%s%d" user_denied_prefix (i + 1))

(* Membership is asked for every variable occurrence the lexer, compiler
   and evaluator see; hashed sets beat rescanning the lists. *)
let set_of names =
  let tbl = Hashtbl.create (2 * List.length names) in
  List.iter (fun n -> Hashtbl.replace tbl n ()) names;
  tbl

let server_side_set = set_of (server_side @ monitor_side)

let user_side_set = set_of user_side

let is_server_side name = Hashtbl.mem server_side_set name

let is_user_side name = Hashtbl.mem user_side_set name

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_preferred_param name = starts_with ~prefix:user_preferred_prefix name

let is_denied_param name = starts_with ~prefix:user_denied_prefix name
