(** Translation of a parsed requirement {!Ast.program} into the flat
    register {!Bytecode.program}.

    Compilation is total: statically-detectable faults (assignment to a
    server-side variable or builtin, unknown function, read of a
    never-assigned temp) compile to FAULT instructions at the exact
    position where the reference evaluator would raise, so the bytecode
    reproduces {!Eval}'s per-statement fault behaviour rather than
    rejecting the program. *)

(** Compile a program.  Every output passes {!Bytecode.validate} (the
    operand-bounds walk the interpreter's unsafe accesses rely on);
    [~verify:true] additionally runs the full {!Bytecode.verify}
    dataflow pass and raises [Invalid_argument] on any violation — a
    debug mode for flushing out compiler bugs, off by default because
    the compiler sits on the wizard's cache-miss path. *)
val program : ?verify:bool -> Ast.program -> Bytecode.program

(** Is a statement an [order_by = ...] ranking assignment? *)
val is_order_by : Ast.statement -> bool
