(** Translation of a parsed requirement {!Ast.program} into the flat
    register {!Bytecode.program}.

    Compilation is total: statically-detectable faults (assignment to a
    server-side variable or builtin, unknown function, read of a
    never-assigned temp) compile to FAULT instructions at the exact
    position where the reference evaluator would raise, so the bytecode
    reproduces {!Eval}'s per-statement fault behaviour rather than
    rejecting the program. *)

val program : Ast.program -> Bytecode.program

(** Is a statement an [order_by = ...] ranking assignment? *)
val is_order_by : Ast.statement -> bool
