(* Runtime values.  The thesis's language is numeric, with network
   addresses as the one string-like type (used for the user-side
   preferred/denied host parameters). *)

type t = Num of float | Addr of string

let truthy = function
  | Num f -> f <> 0.0
  | Addr s -> not (String.equal s "")

let of_bool b = Num (if b then 1.0 else 0.0)

let pp ppf = function
  | Num f -> Fmt.float ppf f
  | Addr s -> Fmt.string ppf s

let equal a b =
  match (a, b) with
  | Num x, Num y -> x = y
  | Addr x, Addr y -> String.equal x y
  | Num _, Addr _ | Addr _, Num _ -> false
