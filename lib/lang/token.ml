(* Token alphabet of the requirement meta-language (Fig 4.1).

   Deviations from the thesis's flex rules, kept deliberately small:
   - host names containing '-' must also contain a '.' (or be written as
     IPs); bare identifiers follow [a-zA-Z][a-zA-Z_0-9]* exactly as in
     the thesis, so '-' between identifiers is always subtraction. *)

type t =
  | Number of float
  | Netaddr of string  (* dotted IP or dotted host name *)
  | Ident of string    (* VAR / UPARAM / PARAM / BLTIN, resolved later *)
  | And                (* && *)
  | Or                 (* || *)
  | Gt                 (* >  *)
  | Ge                 (* >= *)
  | Lt                 (* <  *)
  | Le                 (* <= *)
  | Eq                 (* == *)
  | Ne                 (* != *)
  | Assign             (* =  *)
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | Lparen
  | Rparen
  | Newline
  | Eof

let pp ppf = function
  | Number f -> Fmt.pf ppf "NUMBER(%g)" f
  | Netaddr s -> Fmt.pf ppf "NETADDR(%s)" s
  | Ident s -> Fmt.pf ppf "IDENT(%s)" s
  | And -> Fmt.string ppf "&&"
  | Or -> Fmt.string ppf "||"
  | Gt -> Fmt.string ppf ">"
  | Ge -> Fmt.string ppf ">="
  | Lt -> Fmt.string ppf "<"
  | Le -> Fmt.string ppf "<="
  | Eq -> Fmt.string ppf "=="
  | Ne -> Fmt.string ppf "!="
  | Assign -> Fmt.string ppf "="
  | Plus -> Fmt.string ppf "+"
  | Minus -> Fmt.string ppf "-"
  | Star -> Fmt.string ppf "*"
  | Slash -> Fmt.string ppf "/"
  | Caret -> Fmt.string ppf "^"
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Newline -> Fmt.string ppf "\\n"
  | Eof -> Fmt.string ppf "<eof>"

(* Structural equality with explicit per-payload comparators (Number
   carries a float, so polymorphic [=] is off the table). *)
let equal (a : t) (b : t) =
  match (a, b) with
  | Number x, Number y -> Float.equal x y
  | Netaddr x, Netaddr y -> String.equal x y
  | Ident x, Ident y -> String.equal x y
  | And, And | Or, Or | Gt, Gt | Ge, Ge | Lt, Lt | Le, Le | Eq, Eq | Ne, Ne
  | Assign, Assign | Plus, Plus | Minus, Minus | Star, Star | Slash, Slash
  | Caret, Caret | Lparen, Lparen | Rparen, Rparen | Newline, Newline
  | Eof, Eof ->
    true
  | ( ( Number _ | Netaddr _ | Ident _ | And | Or | Gt | Ge | Lt | Le | Eq | Ne
      | Assign | Plus | Minus | Star | Slash | Caret | Lparen | Rparen
      | Newline | Eof ),
      _ ) ->
    false

type located = { token : t; line : int; col : int }
