(* Hand-written lexer implementing the flex rules of Fig 4.1:

     #.*                                    comments, ignored
     [ \t]                                  whitespace, ignored
     [0-9]+(\.[0-9]+)?                      NUMBER
     [0-9]+\.[0-9]+\.[0-9]+\.[0-9]+         NETADDR (dotted IP)
     [a-zA-Z][a-zA-Z_0-9]*\.[\.a-zA-Z_0-9-]* NETADDR (dotted host name)
     [a-zA-Z][a-zA-Z_0-9]*                  IDENT
     && || > >= < <= == != = + - * / ^ ( )  operators
     \n                                     end of statement *)

type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Fmt.pf ppf "lexical error at %d:%d: %s" e.line e.col e.message

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

(* The primitives below index the source directly rather than going
   through a [char option] — lexing runs on the wizard's cold request
   path, and one [Some] box per character-peek dominated its profile. *)

let at_end st = st.pos >= String.length st.src

(* Lookahead test for two-character operators. *)
let peek2_is st c =
  st.pos + 1 < String.length st.src && Char.equal c st.src.[st.pos + 1]

let advance st =
  (if (not (at_end st)) && st.src.[st.pos] = '\n' then begin
     st.line <- st.line + 1;
     st.col <- 1
   end
   else st.col <- st.col + 1);
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

(* A token beginning with a digit: plain number, decimal number, or a
   dotted-quad network address.  Dots are counted during the scan, so
   classification needs no second pass. *)
let lex_numeric st ~line ~col =
  let src = st.src in
  let n = String.length src in
  let start = st.pos in
  let dots = ref 0 in
  let scanning = ref true in
  while !scanning && st.pos < n do
    match src.[st.pos] with
    | '0' .. '9' -> st.pos <- st.pos + 1
    | '.' ->
      incr dots;
      st.pos <- st.pos + 1
    | _ -> scanning := false
  done;
  st.col <- st.col + (st.pos - start);
  let body = String.sub src start (st.pos - start) in
  let dots = !dots in
  if dots = 0 then Ok { Token.token = Token.Number (float_of_string body); line; col }
  else if dots = 1 then
    match float_of_string_opt body with
    | Some f -> Ok { Token.token = Token.Number f; line; col }
    | None -> Error { line; col; message = "malformed number " ^ body }
  else if dots = 3 then begin
    (* dotted quad: each component must be numeric and non-empty *)
    let parts = String.split_on_char '.' body in
    if
      List.for_all
        (fun p -> (not (String.equal p "")) && String.for_all is_digit p)
        parts
    then
      Ok { Token.token = Token.Netaddr body; line; col }
    else Error { line; col; message = "malformed address " ^ body }
  end
  else Error { line; col; message = "malformed numeric token " ^ body }

(* Reserved words of the language: the server/monitor/user-side variable
   names, the builtin functions, and the [order_by] ranking temp. *)
let is_reserved name =
  Vars.is_server_side name || Vars.is_user_side name
  || Builtins.is_builtin name
  || String.equal name "order_by"

(* A token beginning with a letter: identifier, or a dotted host name
   (which may contain '-' after the first label).  Identifiers whose
   lowercase form is a reserved word are case-folded to it
   (HOST_CPU_FREE and host_cpu_free are the same variable); other
   identifiers — user temps, bare host names — stay case-sensitive. *)
let lex_word st ~line ~col =
  let src = st.src in
  let n = String.length src in
  let start = st.pos in
  let dotted = ref false in
  let dashed = ref false in
  let upper = ref false in
  let scanning = ref true in
  while !scanning && st.pos < n do
    match src.[st.pos] with
    | 'a' .. 'z' | '0' .. '9' | '_' -> st.pos <- st.pos + 1
    | 'A' .. 'Z' ->
      upper := true;
      st.pos <- st.pos + 1
    | '.' ->
      dotted := true;
      st.pos <- st.pos + 1
    | '-' ->
      dashed := true;
      st.pos <- st.pos + 1
    | _ -> scanning := false
  done;
  st.col <- st.col + (st.pos - start);
  let body = String.sub src start (st.pos - start) in
  if !dotted then Ok { Token.token = Token.Netaddr body; line; col }
  else if !dashed then
    Error
      {
        line;
        col;
        message =
          Printf.sprintf
            "'%s': host names with '-' must be dotted or written as IPs"
            body;
      }
  else if not !upper then
    (* all-lowercase (the overwhelmingly common case): already canonical *)
    Ok { Token.token = Token.Ident body; line; col }
  else
    let folded = String.lowercase_ascii body in
    let canonical = if is_reserved folded then folded else body in
    Ok { Token.token = Token.Ident canonical; line; col }

let simple st ~line ~col tok =
  advance st;
  Ok { Token.token = tok; line; col }

let double st ~line ~col tok =
  advance st;
  advance st;
  Ok { Token.token = tok; line; col }

let rec next st =
  let line = st.line and col = st.col in
  if at_end st then Ok { Token.token = Token.Eof; line; col }
  else
    match st.src.[st.pos] with
    | '#' ->
      (* comment to end of line; the newline itself is significant *)
      let n = String.length st.src in
      let start = st.pos in
      while st.pos < n && st.src.[st.pos] <> '\n' do
        st.pos <- st.pos + 1
      done;
      st.col <- st.col + (st.pos - start);
      next st
    | ' ' | '\t' | '\r' -> advance st; next st
    | '\n' -> simple st ~line ~col Token.Newline
    | c when is_digit c -> lex_numeric st ~line ~col
    | c when is_alpha c -> lex_word st ~line ~col
    | '&' ->
      if peek2_is st '&' then double st ~line ~col Token.And
      else Error { line; col; message = "expected &&" }
    | '|' ->
      if peek2_is st '|' then double st ~line ~col Token.Or
      else Error { line; col; message = "expected ||" }
    | '>' ->
      if peek2_is st '=' then double st ~line ~col Token.Ge
      else simple st ~line ~col Token.Gt
    | '<' ->
      if peek2_is st '=' then double st ~line ~col Token.Le
      else simple st ~line ~col Token.Lt
    | '=' ->
      if peek2_is st '=' then double st ~line ~col Token.Eq
      else simple st ~line ~col Token.Assign
    | '!' ->
      if peek2_is st '=' then double st ~line ~col Token.Ne
      else Error { line; col; message = "expected !=" }
    | '+' -> simple st ~line ~col Token.Plus
    | '-' -> simple st ~line ~col Token.Minus
    | '*' -> simple st ~line ~col Token.Star
    | '/' -> simple st ~line ~col Token.Slash
    | '^' -> simple st ~line ~col Token.Caret
    | '(' -> simple st ~line ~col Token.Lparen
    | ')' -> simple st ~line ~col Token.Rparen
    | c ->
      Error { line; col; message = Printf.sprintf "unexpected character %C" c }

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    match next st with
    | Error e -> Error e
    | Ok ({ Token.token = Token.Eof; _ } as t) -> Ok (List.rev (t :: acc))
    | Ok t -> go (t :: acc)
  in
  go []
