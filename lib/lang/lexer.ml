(* Hand-written lexer implementing the flex rules of Fig 4.1:

     #.*                                    comments, ignored
     [ \t]                                  whitespace, ignored
     [0-9]+(\.[0-9]+)?                      NUMBER
     [0-9]+\.[0-9]+\.[0-9]+\.[0-9]+         NETADDR (dotted IP)
     [a-zA-Z][a-zA-Z_0-9]*\.[\.a-zA-Z_0-9-]* NETADDR (dotted host name)
     [a-zA-Z][a-zA-Z_0-9]*                  IDENT
     && || > >= < <= == != = + - * / ^ ( )  operators
     \n                                     end of statement *)

type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Fmt.pf ppf "lexical error at %d:%d: %s" e.line e.col e.message

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

(* Lookahead test for two-character operators. *)
let peek2_is st c =
  match peek2 st with Some d -> Char.equal c d | None -> false

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_alpha c || is_digit c || c = '_'
let is_hostname_char c = is_ident_char c || c = '.' || c = '-'

let take_while st pred =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when pred c -> advance st; go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

(* A token beginning with a digit: plain number, decimal number, or a
   dotted-quad network address. *)
let lex_numeric st ~line ~col =
  let body = take_while st (fun c -> is_digit c || c = '.') in
  let dots = String.fold_left (fun n c -> if c = '.' then n + 1 else n) 0 body in
  if dots = 0 then Ok { Token.token = Token.Number (float_of_string body); line; col }
  else if dots = 1 then
    match float_of_string_opt body with
    | Some f -> Ok { Token.token = Token.Number f; line; col }
    | None -> Error { line; col; message = "malformed number " ^ body }
  else if dots = 3 then begin
    (* dotted quad: each component must be numeric and non-empty *)
    let parts = String.split_on_char '.' body in
    if
      List.for_all
        (fun p -> (not (String.equal p "")) && String.for_all is_digit p)
        parts
    then
      Ok { Token.token = Token.Netaddr body; line; col }
    else Error { line; col; message = "malformed address " ^ body }
  end
  else Error { line; col; message = "malformed numeric token " ^ body }

(* A token beginning with a letter: identifier, or a dotted host name
   (which may contain '-' after the first label). *)
let lex_word st ~line ~col =
  let body = take_while st is_hostname_char in
  if String.contains body '.' then
    Ok { Token.token = Token.Netaddr body; line; col }
  else if String.contains body '-' then
    Error
      {
        line;
        col;
        message =
          Printf.sprintf
            "'%s': host names with '-' must be dotted or written as IPs"
            body;
      }
  else Ok { Token.token = Token.Ident body; line; col }

let simple st ~line ~col tok =
  advance st;
  Ok { Token.token = tok; line; col }

let double st ~line ~col tok =
  advance st;
  advance st;
  Ok { Token.token = tok; line; col }

let rec next st =
  let line = st.line and col = st.col in
  match peek st with
  | None -> Ok { Token.token = Token.Eof; line; col }
  | Some '#' ->
    (* comment to end of line; the newline itself is significant *)
    let rec skip () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ -> advance st; skip ()
    in
    skip ();
    next st
  | Some (' ' | '\t' | '\r') -> advance st; next st
  | Some '\n' -> simple st ~line ~col Token.Newline
  | Some c when is_digit c -> lex_numeric st ~line ~col
  | Some c when is_alpha c -> lex_word st ~line ~col
  | Some '&' ->
    if peek2_is st '&' then double st ~line ~col Token.And
    else Error { line; col; message = "expected &&" }
  | Some '|' ->
    if peek2_is st '|' then double st ~line ~col Token.Or
    else Error { line; col; message = "expected ||" }
  | Some '>' ->
    if peek2_is st '=' then double st ~line ~col Token.Ge
    else simple st ~line ~col Token.Gt
  | Some '<' ->
    if peek2_is st '=' then double st ~line ~col Token.Le
    else simple st ~line ~col Token.Lt
  | Some '=' ->
    if peek2_is st '=' then double st ~line ~col Token.Eq
    else simple st ~line ~col Token.Assign
  | Some '!' ->
    if peek2_is st '=' then double st ~line ~col Token.Ne
    else Error { line; col; message = "expected !=" }
  | Some '+' -> simple st ~line ~col Token.Plus
  | Some '-' -> simple st ~line ~col Token.Minus
  | Some '*' -> simple st ~line ~col Token.Star
  | Some '/' -> simple st ~line ~col Token.Slash
  | Some '^' -> simple st ~line ~col Token.Caret
  | Some '(' -> simple st ~line ~col Token.Lparen
  | Some ')' -> simple st ~line ~col Token.Rparen
  | Some c ->
    Error { line; col; message = Printf.sprintf "unexpected character %C" c }

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    match next st with
    | Error e -> Error e
    | Ok ({ Token.token = Token.Eof; _ } as t) -> Ok (List.rev (t :: acc))
    | Ok t -> go (t :: acc)
  in
  go []
