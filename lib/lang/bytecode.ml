(* Flat register bytecode for the requirement language, and its
   allocation-free interpreter.

   [Eval] stays the reference semantics; [Compile] translates a parsed
   [Ast.program] into a [program] whose inner loop evaluates one server
   per call against a columnar status snapshot ([columns]) without
   allocating: registers are a pair of parallel arrays (a float value
   plus an integer tag: [-1] for numbers, a string-pool index for
   addresses), temps and user parameters live in fixed preallocated
   slots, and statement results land in per-statement arrays.  Only the
   fault path (which must reproduce [Eval]'s formatted messages exactly)
   allocates.

   The string pool is deduplicated by content, so address equality in
   CMP is integer equality on pool indices.

   Opcode table (operands are consecutive ints in [code]):

     0  CONST  dst cidx        dst := consts.(cidx)
     1  ADDR   dst pidx        dst := Addr pool.(pidx)
     2  LOAD   dst col pmsg    dst := column col of the current server;
                               faults pool.(pmsg) when a monitor/security
                               column has no data for the server
     3  NUMCHK r               fault if r holds an address
     4  ADD    dst a b         dst := a + b   (operands pre-NUMCHKed)
     5  SUB    dst a b         dst := a - b
     6  MUL    dst a b         dst := a * b
     7  DIV    dst a b         dst := a / b; faults on b = 0
     8  POW    dst a b         dst := a ** b; faults on NaN
     9  NEG    dst a           dst := -a
    10  CALL   dst fn pname a  dst := fns.(fn) a; faults on NaN
    11  CMP    dst sub a b     comparison, sub in 0..5 = < <= > >= == !=
    12  AND    dst a b         truthy a && truthy b (both evaluated)
    13  OR     dst a b         truthy a || truthy b
    14  LOADT  dst t pmsg      dst := temp t; faults pool.(pmsg) if unset
    15  STORET t src           temp t := src
    16  GETU   dst u pmsg      dst := uparam u; faults pool.(pmsg) if unset
    17  SETU   u src           uparam u := src, appended to the log
    18  UVAR   dst t pidx      dst := temp t if set, else Addr pool.(pidx)
                               (the bare-identifier-names-a-host rule)
    19  FAULT  pmsg            unconditional fault (statically detected)
    20  CMPC   dst sub col pmsg cidx
                               fused [column CMP constant], the dominant
                               statement shape: one dispatch instead of
                               LOAD + CONST + CMP

   Faults abort only the current statement's slice, exactly like the
   reference evaluator: side effects already performed stick. *)

(* ------------------------------------------------------------------ *)
(* Columnar status snapshot                                            *)
(* ------------------------------------------------------------------ *)

type f64_matrix =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

type f64_column =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type i8_column =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Structure-of-arrays view of the status plane: one row per field, one
   element per server (dense index = scan order).  Monitor and security
   fields carry a presence column since not every server has them. *)
type columns = {
  n : int;
  sys : f64_matrix;          (* sys.{field, server}, fields as in [sys_fields] *)
  net_delay : f64_column;    (* milliseconds, the unit of monitor_network_delay *)
  net_bw : f64_column;       (* Mbps, the unit of monitor_network_bw *)
  has_net : i8_column;
  sec_level : f64_column;
  has_sec : i8_column;
}

(* The 22 server-side variables in [Vars.server_side] order; a variable's
   position is its column id. *)
let sys_fields = Array.of_list Vars.server_side

let sys_field_count = Array.length sys_fields

let col_net_delay = sys_field_count

let col_net_bw = sys_field_count + 1

let col_sec_level = sys_field_count + 2

let column_of_var =
  let tbl = Hashtbl.create 32 in
  Array.iteri (fun i name -> Hashtbl.replace tbl name i) sys_fields;
  Hashtbl.replace tbl "monitor_network_delay" col_net_delay;
  Hashtbl.replace tbl "monitor_network_bw" col_net_bw;
  Hashtbl.replace tbl "host_security_level" col_sec_level;
  fun name -> Hashtbl.find_opt tbl name

let create_columns n =
  {
    n;
    sys = Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout
        sys_field_count n;
    net_delay = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n;
    net_bw = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n;
    has_net = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n;
    sec_level = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n;
    has_sec = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n;
  }

(* ------------------------------------------------------------------ *)
(* Programs and interpreter state                                      *)
(* ------------------------------------------------------------------ *)

let uparam_count = List.length Vars.user_side

(* Index of a user-side parameter in [Vars.user_side]: preferred hosts
   occupy slots 0..4, denied hosts 5..9. *)
let uparam_slot name =
  let rec go i = function
    | [] -> invalid_arg ("Bytecode.uparam_slot: " ^ name)
    | n :: rest -> if String.equal n name then i else go (i + 1) rest
  in
  go 0 Vars.user_side

let preferred_slots = 5

type program = {
  code : int array;
  stmt_start : int array;     (* code slice of statement s *)
  stmt_stop : int array;
  stmt_reg : int array;       (* register holding statement s's value *)
  stmt_line : int array;
  stmt_logical : bool array;
  stmt_order_by : bool array; (* statement is an [order_by = ...] assign *)
  consts : float array;
  pool : string array;        (* deduplicated strings: addresses, messages *)
  fns : (float -> float) array;
  nregs : int;
  ntemps : int;
  nulog : int;                (* SETU sites = max uparam log entries per run *)
  has_uparams : bool;
  has_order_by : bool;
}

(* Mutable evaluation state sized for one program, reset per server.
   Tags: -1 = number, >= 0 = address (pool index); statement tags add
   -2 = fault (message in [serr]). *)
type state = {
  rtag : int array;
  rval : float array;
  tval_tag : int array;
  tval : float array;
  tinit : bool array;
  uval_tag : int array;
  uval : float array;
  uset : bool array;
  ulog_slot : int array;      (* uparam log: every SETU in execution order *)
  ulog_tag : int array;
  ulog_val : float array;
  mutable ulog_len : int;
  stag : int array;
  sval : float array;
  serr : string array;
  mutable ok : bool;          (* all logical statements truthy so far *)
  mutable order_found : bool; (* last numeric [order_by] result, if any *)
  mutable order_val : float;
}

let no_error = ""

let nstmts p = Array.length p.stmt_start

let make_state p =
  let zeros n = Array.make (max n 1) 0 in
  let fzeros n = Array.make (max n 1) 0.0 in
  {
    rtag = Array.make (max p.nregs 1) (-1);
    rval = fzeros p.nregs;
    tval_tag = zeros p.ntemps;
    tval = fzeros p.ntemps;
    tinit = Array.make (max p.ntemps 1) false;
    uval_tag = zeros uparam_count;
    uval = fzeros uparam_count;
    uset = Array.make uparam_count false;
    ulog_slot = zeros p.nulog;
    ulog_tag = zeros p.nulog;
    ulog_val = fzeros p.nulog;
    ulog_len = 0;
    stag = zeros (nstmts p);
    sval = fzeros (nstmts p);
    serr = Array.make (max (nstmts p) 1) no_error;
    ok = true;
    order_found = false;
    order_val = 0.0;
  }

exception Fault of string

(* Fault constructors, matching Eval's messages byte-for-byte. *)
let fault_static msg = raise (Fault msg)

let fault_addr_numeric a =
  raise (Fault (Printf.sprintf "address %s used in numeric context" a))

let fault_div = "division by 0"

let fault_pow x y =
  raise (Fault (Printf.sprintf "%g ^ %g is undefined" x y))

let fault_call name v =
  raise (Fault (Printf.sprintf "%s(%g) is undefined" name v))

let fault_addr_order = "addresses cannot be ordered"

let fault_mixed_order = "cannot order a number against an address"

let truthy pool tag v =
  if tag >= 0 then String.length (Array.unsafe_get pool tag) > 0
  else v <> 0.0

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

(* Value of column [col] for [server], with the monitor/security
   presence faults.  Bigarray bounds were validated once in [run]
   ([0 <= server < c.n], every column id static), so the reads use the
   unsafe accessors; this module is the single allowlisted home of
   Bigarray.*unsafe_* and of the Array.unsafe accessors on validated
   operands (see the smartlint rule). *)
let read_col (c : columns) ~server col pool pmsg =
  if col < sys_field_count then Bigarray.Array2.unsafe_get c.sys col server
  else if col = col_net_delay then begin
    if Bigarray.Array1.unsafe_get c.has_net server = 0 then
      fault_static (Array.unsafe_get pool pmsg : string);
    Bigarray.Array1.unsafe_get c.net_delay server
  end
  else if col = col_net_bw then begin
    if Bigarray.Array1.unsafe_get c.has_net server = 0 then
      fault_static (Array.unsafe_get pool pmsg : string);
    Bigarray.Array1.unsafe_get c.net_bw server
  end
  else begin
    if Bigarray.Array1.unsafe_get c.has_sec server = 0 then
      fault_static (Array.unsafe_get pool pmsg : string);
    Bigarray.Array1.unsafe_get c.sec_level server
  end

let cmp_holds sub (x : float) (y : float) =
  match sub with
  | 0 -> x < y
  | 1 -> x <= y
  | 2 -> x > y
  | 3 -> x >= y
  | 4 -> x = y
  | _ -> x <> y

(* One statement slice over one server, tail-recursively so the program
   counter lives in a register.  Operand indices were validated by
   [Compile.program] (see [validate]), hence the unsafe accessors; a
   hand-built [program] that lies about its bounds is out of contract. *)
let rec exec p st (c : columns) ~server code pc stop =
  if pc < stop then begin
    let rtag = st.rtag and rval = st.rval in
    let arg k = Array.unsafe_get code (pc + k) in
    match Array.unsafe_get code pc with
    | 0 (* CONST *) ->
      let dst = arg 1 in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst (Array.unsafe_get p.consts (arg 2));
      exec p st c ~server code (pc + 3) stop
    | 1 (* ADDR *) ->
      Array.unsafe_set rtag (arg 1) (arg 2);
      exec p st c ~server code (pc + 3) stop
    | 2 (* LOAD *) ->
      let dst = arg 1 in
      let v = read_col c ~server (arg 2) p.pool (arg 3) in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst v;
      exec p st c ~server code (pc + 4) stop
    | 3 (* NUMCHK *) ->
      let r = arg 1 in
      let tag = Array.unsafe_get rtag r in
      if tag >= 0 then fault_addr_numeric p.pool.(tag);
      exec p st c ~server code (pc + 2) stop
    | 4 (* ADD *) ->
      let dst = arg 1 in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst
        (Array.unsafe_get rval (arg 2) +. Array.unsafe_get rval (arg 3));
      exec p st c ~server code (pc + 4) stop
    | 5 (* SUB *) ->
      let dst = arg 1 in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst
        (Array.unsafe_get rval (arg 2) -. Array.unsafe_get rval (arg 3));
      exec p st c ~server code (pc + 4) stop
    | 6 (* MUL *) ->
      let dst = arg 1 in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst
        (Array.unsafe_get rval (arg 2) *. Array.unsafe_get rval (arg 3));
      exec p st c ~server code (pc + 4) stop
    | 7 (* DIV *) ->
      let dst = arg 1 in
      let y = Array.unsafe_get rval (arg 3) in
      if y = 0.0 then fault_static fault_div;
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst (Array.unsafe_get rval (arg 2) /. y);
      exec p st c ~server code (pc + 4) stop
    | 8 (* POW *) ->
      let dst = arg 1 in
      let x = Array.unsafe_get rval (arg 2)
      and y = Array.unsafe_get rval (arg 3) in
      let r = x ** y in
      if Float.is_nan r then fault_pow x y;
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst r;
      exec p st c ~server code (pc + 4) stop
    | 9 (* NEG *) ->
      let dst = arg 1 in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst (-.Array.unsafe_get rval (arg 2));
      exec p st c ~server code (pc + 3) stop
    | 10 (* CALL *) ->
      let dst = arg 1 in
      let v = Array.unsafe_get rval (arg 4) in
      let r = (Array.unsafe_get p.fns (arg 2)) v in
      if Float.is_nan r then fault_call p.pool.(arg 3) v;
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst r;
      exec p st c ~server code (pc + 5) stop
    | 11 (* CMP *) ->
      let dst = arg 1 in
      let sub = arg 2 in
      let a = arg 3 and b = arg 4 in
      let ta = Array.unsafe_get rtag a and tb = Array.unsafe_get rtag b in
      let r =
        if ta < 0 && tb < 0 then
          if cmp_holds sub (Array.unsafe_get rval a) (Array.unsafe_get rval b)
          then 1.0
          else 0.0
        else if ta >= 0 && tb >= 0 then
          (* pool indices are deduplicated, so index equality is string
             equality *)
          match sub with
          | 4 -> if ta = tb then 1.0 else 0.0
          | 5 -> if ta <> tb then 1.0 else 0.0
          | _ -> fault_static fault_addr_order
        else
          match sub with
          | 4 -> 0.0
          | 5 -> 1.0
          | _ -> fault_static fault_mixed_order
      in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst r;
      exec p st c ~server code (pc + 5) stop
    | 12 (* AND *) ->
      let dst = arg 1 in
      let a = arg 2 and b = arg 3 in
      let x = truthy p.pool (Array.unsafe_get rtag a) (Array.unsafe_get rval a) in
      let y = truthy p.pool (Array.unsafe_get rtag b) (Array.unsafe_get rval b) in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst (if x && y then 1.0 else 0.0);
      exec p st c ~server code (pc + 4) stop
    | 13 (* OR *) ->
      let dst = arg 1 in
      let a = arg 2 and b = arg 3 in
      let x = truthy p.pool (Array.unsafe_get rtag a) (Array.unsafe_get rval a) in
      let y = truthy p.pool (Array.unsafe_get rtag b) (Array.unsafe_get rval b) in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst (if x || y then 1.0 else 0.0);
      exec p st c ~server code (pc + 4) stop
    | 14 (* LOADT *) ->
      let dst = arg 1 in
      let t = arg 2 in
      if not (Array.unsafe_get st.tinit t) then fault_static p.pool.(arg 3);
      Array.unsafe_set rtag dst (Array.unsafe_get st.tval_tag t);
      Array.unsafe_set rval dst (Array.unsafe_get st.tval t);
      exec p st c ~server code (pc + 4) stop
    | 15 (* STORET *) ->
      let t = arg 1 in
      let src = arg 2 in
      Array.unsafe_set st.tval_tag t (Array.unsafe_get rtag src);
      Array.unsafe_set st.tval t (Array.unsafe_get rval src);
      Array.unsafe_set st.tinit t true;
      exec p st c ~server code (pc + 3) stop
    | 16 (* GETU *) ->
      let dst = arg 1 in
      let u = arg 2 in
      if not (Array.unsafe_get st.uset u) then fault_static p.pool.(arg 3);
      Array.unsafe_set rtag dst (Array.unsafe_get st.uval_tag u);
      Array.unsafe_set rval dst (Array.unsafe_get st.uval u);
      exec p st c ~server code (pc + 4) stop
    | 17 (* SETU *) ->
      let u = arg 1 in
      let src = arg 2 in
      let tag = Array.unsafe_get rtag src and v = Array.unsafe_get rval src in
      Array.unsafe_set st.uval_tag u tag;
      Array.unsafe_set st.uval u v;
      Array.unsafe_set st.uset u true;
      let k = st.ulog_len in
      Array.unsafe_set st.ulog_slot k u;
      Array.unsafe_set st.ulog_tag k tag;
      Array.unsafe_set st.ulog_val k v;
      st.ulog_len <- k + 1;
      exec p st c ~server code (pc + 3) stop
    | 18 (* UVAR *) ->
      let dst = arg 1 in
      let t = arg 2 in
      if Array.unsafe_get st.tinit t then begin
        Array.unsafe_set rtag dst (Array.unsafe_get st.tval_tag t);
        Array.unsafe_set rval dst (Array.unsafe_get st.tval t)
      end
      else Array.unsafe_set rtag dst (arg 3);
      exec p st c ~server code (pc + 4) stop
    | 19 (* FAULT *) -> fault_static p.pool.(arg 1)
    | 20 (* CMPC *) ->
      let dst = arg 1 in
      let v = read_col c ~server (arg 3) p.pool (arg 4) in
      let y = Array.unsafe_get p.consts (arg 5) in
      Array.unsafe_set rtag dst (-1);
      Array.unsafe_set rval dst (if cmp_holds (arg 2) v y then 1.0 else 0.0);
      exec p st c ~server code (pc + 6) stop
    | op -> invalid_arg (Printf.sprintf "Bytecode.run: bad opcode %d" op)
  end

(* [stop_unqualified] lets the selection scan abandon a server at its
   first false logical statement: per-server state is torn down at the
   next [run] anyway and the caller only reads [qualified], which is
   already decided.  Full runs (the differential/diagnostic paths)
   execute every statement like the reference evaluator. *)
let run ?(stop_unqualified = false) p st (c : columns) ~server =
  if server < 0 || server >= c.n then
    invalid_arg "Bytecode.run: server index out of range";
  if p.ntemps > 0 then Array.fill st.tinit 0 p.ntemps false;
  if p.has_uparams then Array.fill st.uset 0 uparam_count false;
  st.ulog_len <- 0;
  st.ok <- true;
  st.order_found <- false;
  let code = p.code in
  let n = nstmts p in
  let pool = p.pool in
  let rec go s =
    if s < n then begin
      (match
         exec p st c ~server code
           (Array.unsafe_get p.stmt_start s)
           (Array.unsafe_get p.stmt_stop s)
       with
      | () ->
        let r = Array.unsafe_get p.stmt_reg s in
        let tag = Array.unsafe_get st.rtag r in
        let v = Array.unsafe_get st.rval r in
        Array.unsafe_set st.stag s tag;
        Array.unsafe_set st.sval s v;
        if Array.unsafe_get p.stmt_logical s && not (truthy pool tag v) then
          st.ok <- false;
        if Array.unsafe_get p.stmt_order_by s && tag = -1 then begin
          st.order_found <- true;
          st.order_val <- v
        end
      | exception Fault m ->
        Array.unsafe_set st.stag s (-2);
        st.serr.(s) <- m;
        if Array.unsafe_get p.stmt_logical s then st.ok <- false);
      if not (stop_unqualified && not st.ok) then go (s + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Reading the results of a run                                        *)
(* ------------------------------------------------------------------ *)

(* Server qualifies iff every logical statement was truthy; a faulted
   logical statement is false (Eval's rule).  Computed on the fly by
   [run]. *)
let qualified _p st = st.ok

(* ------------------------------------------------------------------ *)
(* Statement-major sweep plan                                          *)
(* ------------------------------------------------------------------ *)

(* The dominant requirement shape — a conjunction of column-vs-constant
   compares plus at most one [order_by = <column>] — admits a much
   better evaluation order than server-at-a-time: sweep each compare
   down its whole column, clearing a per-server qualification byte, then
   read the order column directly.  No register file, no per-statement
   dispatch, no per-server teardown.

   The plan is only equivalent when nothing else observes evaluation:
   no user parameters (their log feeds the blacklist scan) and no other
   statement kinds.  [sweep_of] returns [None] for everything else and
   the caller falls back to [run]. *)
type sweep = {
  sw_sub : int array;      (* comparison sub-opcode per compare *)
  sw_col : int array;      (* column id per compare *)
  sw_const : float array;  (* right-hand constant per compare *)
  sw_ncmp : int;
  sw_order_col : int;      (* order_by column, -1 when absent *)
}

let sweep_of p =
  if p.nulog > 0 || p.has_uparams then None
  else begin
    let n = nstmts p in
    let sub = Array.make (max n 1) 0 in
    let col = Array.make (max n 1) 0 in
    let konst = Array.make (max n 1) 0.0 in
    let ncmp = ref 0 in
    let order_col = ref (-1) in
    let orders = ref 0 in
    let simple = ref true in
    for s = 0 to n - 1 do
      let start = p.stmt_start.(s) in
      let len = p.stmt_stop.(s) - start in
      if p.stmt_logical.(s) && len = 6 && p.code.(start) = 20 then begin
        (* CMPC dst sub col pmsg cidx *)
        sub.(!ncmp) <- p.code.(start + 2);
        col.(!ncmp) <- p.code.(start + 3);
        konst.(!ncmp) <- p.consts.(p.code.(start + 5));
        incr ncmp
      end
      else if
        p.stmt_order_by.(s)
        && (not p.stmt_logical.(s))
        && len = 7
        && p.code.(start) = 2 (* LOAD *)
        && p.code.(start + 4) = 15 (* STORET *)
      then begin
        order_col := p.code.(start + 2);
        incr orders
      end
      else simple := false
    done;
    (* two order_by statements fall back: the interpreter keeps the last
       one that produced a number, which a single-column plan cannot *)
    if !simple && !orders <= 1 then
      Some
        {
          sw_sub = sub;
          sw_col = col;
          sw_const = konst;
          sw_ncmp = !ncmp;
          sw_order_col = !order_col;
        }
    else None
  end

(* One pass per compare down the whole column: [qualified] ends '\001'
   for servers every logical statement accepted ('\000' otherwise, with
   absent monitor/security data counting as a failed compare — the
   fault-means-false rule), and [order] receives the order_by key per
   server, [neg_infinity] where its column has no data (the "order key
   not found" value).  Both buffers must hold at least [c.n] slots;
   entries past the qualification bound are untouched. *)
let run_sweep sw (c : columns) ~(qualified : Bytes.t) ~(order : float array) =
  let n = c.n in
  Bytes.fill qualified 0 n '\001';
  for k = 0 to sw.sw_ncmp - 1 do
    let sub = Array.unsafe_get sw.sw_sub k in
    let col = Array.unsafe_get sw.sw_col k in
    let y = Array.unsafe_get sw.sw_const k in
    if col < sys_field_count then
      for s = 0 to n - 1 do
        if not (cmp_holds sub (Bigarray.Array2.unsafe_get c.sys col s) y)
        then Bytes.unsafe_set qualified s '\000'
      done
    else if col = col_sec_level then
      for s = 0 to n - 1 do
        if
          Bigarray.Array1.unsafe_get c.has_sec s = 0
          || not (cmp_holds sub (Bigarray.Array1.unsafe_get c.sec_level s) y)
        then Bytes.unsafe_set qualified s '\000'
      done
    else begin
      let data = if col = col_net_delay then c.net_delay else c.net_bw in
      for s = 0 to n - 1 do
        if
          Bigarray.Array1.unsafe_get c.has_net s = 0
          || not (cmp_holds sub (Bigarray.Array1.unsafe_get data s) y)
        then Bytes.unsafe_set qualified s '\000'
      done
    end
  done;
  let col = sw.sw_order_col in
  if col >= 0 then
    if col < sys_field_count then
      for s = 0 to n - 1 do
        Array.unsafe_set order s (Bigarray.Array2.unsafe_get c.sys col s)
      done
    else if col = col_sec_level then
      for s = 0 to n - 1 do
        Array.unsafe_set order s
          (if Bigarray.Array1.unsafe_get c.has_sec s = 0 then neg_infinity
           else Bigarray.Array1.unsafe_get c.sec_level s)
      done
    else begin
      let data = if col = col_net_delay then c.net_delay else c.net_bw in
      for s = 0 to n - 1 do
        Array.unsafe_set order s
          (if Bigarray.Array1.unsafe_get c.has_net s = 0 then neg_infinity
           else Bigarray.Array1.unsafe_get data s)
      done
    end

(* ------------------------------------------------------------------ *)
(* Static validation & dataflow verification                           *)
(* ------------------------------------------------------------------ *)

type verify_error = { stmt : int; pc : int; reason : string }

let verify_error_to_string e =
  if e.stmt < 0 then Printf.sprintf "program: %s" e.reason
  else Printf.sprintf "statement %d, pc %d: %s" e.stmt e.pc e.reason

exception Verify of verify_error

let vfail ~stmt ~pc fmt =
  Printf.ksprintf (fun reason -> raise (Verify { stmt; pc; reason })) fmt

(* Structural pass: every operand of every instruction in range for the
   program's declared sizes, comparison sub-opcodes in 0..5, statement
   arrays consistent, the uparam log sized for every SETU site and
   [has_uparams] admitting them (the flag gates the per-run [uset]
   reset, so understating it would leak parameters across servers).
   The interpreter trusts operands unconditionally (see [exec]); this
   walk, run once at compile time, is what earns that trust. *)
let structural p =
  let code = p.code in
  let setus = ref 0 in
  let check ~stmt ~pc =
    let reg r =
      if r < 0 || r >= p.nregs then vfail ~stmt ~pc "register %d out of range" r
    in
    let cidx i =
      if i < 0 || i >= Array.length p.consts then
        vfail ~stmt ~pc "constant index %d out of range" i
    in
    let pidx i =
      if i < 0 || i >= Array.length p.pool then
        vfail ~stmt ~pc "pool index %d out of range" i
    in
    let temp t =
      if t < 0 || t >= p.ntemps then vfail ~stmt ~pc "temp %d out of range" t
    in
    let upar u =
      if u < 0 || u >= uparam_count then
        vfail ~stmt ~pc "uparam %d out of range" u
    in
    let col c =
      if c < 0 || c > col_sec_level then
        vfail ~stmt ~pc "column %d out of range" c
    in
    let fn f =
      if f < 0 || f >= Array.length p.fns then
        vfail ~stmt ~pc "function index %d out of range" f
    in
    let sub s =
      if s < 0 || s > 5 then vfail ~stmt ~pc "comparison sub-opcode %d" s
    in
    (reg, cidx, pidx, temp, upar, col, fn, sub)
  in
  let rec walk ~stmt pc stop =
    if pc >= stop then ()
    else begin
      let reg, cidx, pidx, temp, upar, col, fn, sub = check ~stmt ~pc in
      let need n =
        if pc + n > stop then vfail ~stmt ~pc "truncated instruction"
      in
      match code.(pc) with
      | 0 -> need 3; reg code.(pc + 1); cidx code.(pc + 2); walk ~stmt (pc + 3) stop
      | 1 -> need 3; reg code.(pc + 1); pidx code.(pc + 2); walk ~stmt (pc + 3) stop
      | 2 ->
        need 4; reg code.(pc + 1); col code.(pc + 2); pidx code.(pc + 3);
        walk ~stmt (pc + 4) stop
      | 3 -> need 2; reg code.(pc + 1); walk ~stmt (pc + 2) stop
      | 4 | 5 | 6 | 7 | 8 ->
        need 4; reg code.(pc + 1); reg code.(pc + 2); reg code.(pc + 3);
        walk ~stmt (pc + 4) stop
      | 9 -> need 3; reg code.(pc + 1); reg code.(pc + 2); walk ~stmt (pc + 3) stop
      | 10 ->
        need 5; reg code.(pc + 1); fn code.(pc + 2); pidx code.(pc + 3);
        reg code.(pc + 4);
        walk ~stmt (pc + 5) stop
      | 11 ->
        need 5; reg code.(pc + 1); sub code.(pc + 2); reg code.(pc + 3);
        reg code.(pc + 4);
        walk ~stmt (pc + 5) stop
      | 12 | 13 ->
        need 4; reg code.(pc + 1); reg code.(pc + 2); reg code.(pc + 3);
        walk ~stmt (pc + 4) stop
      | 14 ->
        need 4; reg code.(pc + 1); temp code.(pc + 2); pidx code.(pc + 3);
        walk ~stmt (pc + 4) stop
      | 15 ->
        need 3; temp code.(pc + 1); reg code.(pc + 2); walk ~stmt (pc + 3) stop
      | 16 ->
        need 4; reg code.(pc + 1); upar code.(pc + 2); pidx code.(pc + 3);
        walk ~stmt (pc + 4) stop
      | 17 ->
        need 3; upar code.(pc + 1); reg code.(pc + 2); incr setus;
        walk ~stmt (pc + 3) stop
      | 18 ->
        need 4; reg code.(pc + 1); temp code.(pc + 2); pidx code.(pc + 3);
        walk ~stmt (pc + 4) stop
      | 19 -> need 2; pidx code.(pc + 1); walk ~stmt (pc + 2) stop
      | 20 ->
        need 6; reg code.(pc + 1); sub code.(pc + 2); col code.(pc + 3);
        pidx code.(pc + 4); cidx code.(pc + 5);
        walk ~stmt (pc + 6) stop
      | op -> vfail ~stmt ~pc "bad opcode %d" op
    end
  in
  let n = nstmts p in
  if
    Array.length p.stmt_stop <> n
    || Array.length p.stmt_reg <> n
    || Array.length p.stmt_line <> n
    || Array.length p.stmt_logical <> n
    || Array.length p.stmt_order_by <> n
  then vfail ~stmt:(-1) ~pc:(-1) "ragged statement arrays";
  for s = 0 to n - 1 do
    let start = p.stmt_start.(s) and stop = p.stmt_stop.(s) in
    if start < 0 || stop < start || stop > Array.length code then
      vfail ~stmt:s ~pc:start "bad statement slice [%d, %d)" start stop;
    let reg, _, _, _, _, _, _, _ = check ~stmt:s ~pc:start in
    reg p.stmt_reg.(s);
    walk ~stmt:s start stop
  done;
  if !setus > p.nulog then
    vfail ~stmt:(-1) ~pc:(-1) "uparam log holds %d entries but code has %d SETU sites"
      p.nulog !setus;
  if !setus > 0 && not p.has_uparams then
    vfail ~stmt:(-1) ~pc:(-1)
      "has_uparams is false but code contains SETU: the per-run uset reset \
       would be skipped and parameters would leak across servers"

(* The interpreter trusts every operand to be in bounds (see [exec]);
   this pass, run once at compile time, is what earns that trust. *)
let validate p =
  match structural p with
  | () -> ()
  | exception Verify e ->
    invalid_arg ("Bytecode.validate: " ^ verify_error_to_string e)

(* Abstract value a register may hold at a program point.  [Bot] is
   never-written; [Any] covers the dynamically-typed loads (temps, user
   parameters, UVAR), whose tag is only known at run time. *)
type abs = Bot | Vnum | Vaddr | Any

(* Dataflow pass over one statement slice.  Slices are straight-line
   (the bytecode has no branches), so "on every path" is a single
   left-to-right scan with one twist: an unconditional FAULT ends every
   path through the slice, making the instructions after it dead — they
   stay bounds-checked by [structural] but carry no dataflow
   obligations, and the statement's result register need not be written
   (the fault-means-false rule supplies the statement's outcome).

   Judgments checked on live code:
   - init-before-use: no instruction reads a register never written
     earlier in the same slice (registers are per-statement scratch;
     values do not flow across statements);
   - numeric soundness: the arithmetic operands (ADD/SUB/MUL/DIV/POW/
     NEG/CALL) are abstractly numeric — produced by a number-producing
     opcode or refined through a NUMCHK.  This is exactly the check
     that makes [Compile]'s static NUMCHK elision safe;
   - result coverage: a slice no path of which faults leaves its
     declared result register written. *)
let dataflow p =
  let code = p.code in
  let tags = Array.make (max p.nregs 1) Bot in
  let scan ~stmt start stop =
    Array.fill tags 0 (Array.length tags) Bot;
    let read ~pc r =
      if tags.(r) = Bot then
        vfail ~stmt ~pc "register %d read before initialization" r
    in
    let readnum ~pc r =
      read ~pc r;
      match tags.(r) with
      | Vnum -> ()
      | Vaddr ->
        vfail ~stmt ~pc
          "register %d holds an address in a numeric operand (missing NUMCHK)"
          r
      | Any ->
        vfail ~stmt ~pc
          "register %d may hold an address in a numeric operand (missing \
           NUMCHK)"
          r
      | Bot -> assert false
    in
    let def r v = tags.(r) <- v in
    let rec go pc =
      if pc >= stop then false
      else
        let arg k = code.(pc + k) in
        match code.(pc) with
        | 0 (* CONST *) -> def (arg 1) Vnum; go (pc + 3)
        | 1 (* ADDR *) -> def (arg 1) Vaddr; go (pc + 3)
        | 2 (* LOAD *) -> def (arg 1) Vnum; go (pc + 4)
        | 3 (* NUMCHK *) ->
          read ~pc (arg 1);
          def (arg 1) Vnum;
          go (pc + 2)
        | (4 | 5 | 6 | 7 | 8) (* arith *) ->
          readnum ~pc (arg 2); readnum ~pc (arg 3);
          def (arg 1) Vnum;
          go (pc + 4)
        | 9 (* NEG *) -> readnum ~pc (arg 2); def (arg 1) Vnum; go (pc + 3)
        | 10 (* CALL *) -> readnum ~pc (arg 4); def (arg 1) Vnum; go (pc + 5)
        | 11 (* CMP *) ->
          read ~pc (arg 3); read ~pc (arg 4);
          def (arg 1) Vnum;
          go (pc + 5)
        | (12 | 13) (* AND/OR *) ->
          read ~pc (arg 2); read ~pc (arg 3);
          def (arg 1) Vnum;
          go (pc + 4)
        | 14 (* LOADT *) -> def (arg 1) Any; go (pc + 4)
        | 15 (* STORET *) -> read ~pc (arg 2); go (pc + 3)
        | 16 (* GETU *) -> def (arg 1) Any; go (pc + 4)
        | 17 (* SETU *) -> read ~pc (arg 2); go (pc + 3)
        | 18 (* UVAR *) -> def (arg 1) Any; go (pc + 4)
        | 19 (* FAULT *) -> true (* every path ends here: the rest is dead *)
        | 20 (* CMPC *) -> def (arg 1) Vnum; go (pc + 6)
        | op -> vfail ~stmt ~pc "bad opcode %d" op
    in
    let faults = go start in
    if not faults && tags.(p.stmt_reg.(stmt)) = Bot then
      vfail ~stmt ~pc:stop
        "result register %d never written on the non-faulting path"
        p.stmt_reg.(stmt)
  in
  for s = 0 to nstmts p - 1 do
    scan ~stmt:s p.stmt_start.(s) p.stmt_stop.(s)
  done

(* Sweep-plan precondition: [run_sweep] observes nothing but the CMPC
   compares and the order column, so a program that [sweep_of] admits
   must carry no temp *reads* (LOADT/UVAR) and no user-parameter traffic
   (GETU/SETU — the SETU log feeds the blacklist scan) — their effects
   would be silently dropped by the plan.  Write-only STORETs are fine:
   the admitted [order_by = <column>] shape stores a temp nothing
   observes. *)
let sweep_preconditions p =
  match sweep_of p with
  | None -> ()
  | Some _ ->
    let rec scan pc =
      if pc < Array.length p.code then begin
        let op = p.code.(pc) in
        if op = 14 || op = 16 || op = 17 || op = 18 then
          vfail ~stmt:(-1) ~pc
            "sweep plan admitted a program with temp reads or \
             user-parameter traffic (opcode %d)"
            op;
        let width =
          match op with
          | 3 | 19 -> 2
          | 0 | 1 | 9 | 15 | 17 -> 3
          | 2 | 4 | 5 | 6 | 7 | 8 | 12 | 13 | 14 | 16 | 18 -> 4
          | 10 | 11 -> 5
          | 20 -> 6
          | op -> vfail ~stmt:(-1) ~pc "bad opcode %d" op
        in
        scan (pc + width)
      end
    in
    scan 0

(* Full verification: the structural bounds pass plus the per-slice
   abstract interpretation and the sweep precondition.  [Compile]
   applies {!validate} on every program and this full pass behind its
   [?verify] debug flag; the smartlint "bytecode" rule runs it over the
   checked-in fixture programs. *)
let verify p =
  match
    structural p;
    dataflow p;
    sweep_preconditions p
  with
  | () -> Ok ()
  | exception Verify e -> Error e

(* Reconstruct the reference evaluator's outcome from a finished run —
   the diagnostic/differential-test path, free to allocate. *)
let to_outcome p st : Eval.outcome =
  let statements =
    List.init (nstmts p) (fun s ->
        let value =
          match st.stag.(s) with
          | -2 -> Error st.serr.(s)
          | -1 -> Ok (Value.Num st.sval.(s))
          | tag -> Ok (Value.Addr p.pool.(tag))
        in
        { Eval.line = p.stmt_line.(s); logical = p.stmt_logical.(s); value })
  in
  let faults =
    List.filter_map
      (fun (s : Eval.statement_result) ->
        match s.Eval.value with
        | Error message -> Some { Eval.line = s.Eval.line; message }
        | Ok _ -> None)
      statements
  in
  let uparams =
    List.init st.ulog_len (fun k ->
        let name = List.nth Vars.user_side st.ulog_slot.(k) in
        let v =
          if st.ulog_tag.(k) >= 0 then Value.Addr p.pool.(st.ulog_tag.(k))
          else Value.Num st.ulog_val.(k)
        in
        (name, v))
  in
  { Eval.qualified = qualified p st; statements; uparams; faults }
