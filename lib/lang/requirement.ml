(* Front door of the requirement language: compile once, evaluate per
   server, and extract the user-side host lists the wizard consumes. *)

type compile_error = { line : int; col : int; message : string }

let pp_compile_error ppf e =
  Fmt.pf ppf "requirement error at %d:%d: %s" e.line e.col e.message

(* Key under which a compiled program may be cached.  Lexing skips
   whitespace, so sources differing only in surrounding blank space
   compile identically; trimming lets them share one cache slot.  The
   key stays O(n) in the source length and allocates at most once. *)
let cache_key src = String.trim src

let compile src : (Ast.program, compile_error) result =
  match Parser.parse src with
  | Ok program -> Ok program
  | Error e ->
    Error
      { line = e.Parser.line; col = e.Parser.col; message = e.Parser.message }

let evaluate program ~lookup = Eval.run ~lookup program

(* Host strings mentioned by the user-side parameters.  Evaluation is run
   once with empty server bindings: the preferred/denied assignments are
   non-logical, so they do not depend on any particular server. *)
let host_lists (outcome : Eval.outcome) =
  let extract pred =
    List.filter_map
      (fun (name, v) ->
        if pred name then
          match v with
          | Value.Addr host -> Some host
          | Value.Num _ -> None
        else None)
      outcome.Eval.uparams
  in
  ( extract Vars.is_preferred_param,  (* preferred, in order *)
    extract Vars.is_denied_param )

(* The variable names a program reads that are neither server-side,
   user-side, built-in, nor locally assigned: candidates for typos.  Used
   by the client library to warn before a request is sent. *)
let unbound_variables (program : Ast.program) =
  let assigned = Hashtbl.create 8 in
  let unknown = ref [] in
  let note name =
    if
      (not (Vars.is_server_side name))
      && (not (Vars.is_user_side name))
      && (not (Builtins.is_builtin name))
      && (not (Hashtbl.mem assigned name))
      && not (List.mem name !unknown)
    then unknown := name :: !unknown
  in
  let rec scan (e : Ast.expr) =
    match e with
    | Ast.Number _ | Ast.Netaddr _ -> ()
    | Ast.Var name -> note name
    | Ast.Assign (name, rhs) ->
      (* a bare identifier assigned to a user param is a host name *)
      (match rhs with
      | Ast.Var _ when Vars.is_user_side name -> ()
      | _ -> scan rhs);
      Hashtbl.replace assigned name ()
    | Ast.Arith (_, a, b) | Ast.Cmp (_, a, b) | Ast.Logic (_, a, b) ->
      scan a;
      scan b
    | Ast.Call (_, a) | Ast.Neg a | Ast.Paren a -> scan a
  in
  List.iter (fun (st : Ast.statement) -> scan st.Ast.expr) program;
  List.rev !unknown
