(* Front door of the requirement language: compile once, evaluate per
   server, and extract the user-side host lists the wizard consumes. *)

type compile_error = { line : int; col : int; message : string }

let pp_compile_error ppf e =
  Fmt.pf ppf "requirement error at %d:%d: %s" e.line e.col e.message

(* Number rendering for the canonical form.  The grammar only admits
   [digits] or [digits.digits] — no sign, no exponent, no hex — so the
   canonical spelling must re-lex under those rules (the federation root
   forwards canonical source to shard wizards, where it is tokenized
   again; [canonical] must be a fixpoint).  The shortest fixed-point
   decimal with that shape is found by widening the fractional precision
   until the float round-trips.  Values are never negative or NaN (the
   lexer cannot produce them); a literal long enough to overflow renders
   as 1 followed by 309 zeros, the smallest such spelling of infinity. *)
let render_number f =
  if f = infinity then "1" ^ String.make 309 '0'
  else begin
    let rec fit p =
      let s = Printf.sprintf "%.*f" p f in
      (* %.*f never switches to exponent notation, and 17 significant
         digits always round-trip a double, so this terminates: by
         p = 350 even the smallest subnormal has all of them *)
      if p > 350 || float_of_string s = f then s else fit (p + 1)
    in
    fit 0
  end

(* Key under which a compiled program may be cached: the token stream
   rendered back to a canonical spelling.  Whitespace runs collapse to
   one space, blank lines and comments vanish, numbers print as the
   shortest re-lexable decimal, and reserved words are already
   case-folded by the lexer — so trivially-different spellings of the
   same requirement share one cache entry.  Statement structure (the
   newlines) is preserved, and two sources with equal keys select
   identically: they differ at most in source line numbers, which only
   reach fault diagnostics.  A source that does not lex falls back to
   trimming (it will not compile either, and the error is cached under
   that key).

   The rendering is idempotent — canonicalizing a canonical form changes
   nothing — so every wizard in a federation tree derives the same key
   whether it sees the user's spelling or a canonical form forwarded by
   the root. *)
let render_token = function
  | Token.Number f -> render_number f
  | Token.Netaddr s | Token.Ident s -> s
  | Token.And -> "&&"
  | Token.Or -> "||"
  | Token.Gt -> ">"
  | Token.Ge -> ">="
  | Token.Lt -> "<"
  | Token.Le -> "<="
  | Token.Eq -> "=="
  | Token.Ne -> "!="
  | Token.Assign -> "="
  | Token.Plus -> "+"
  | Token.Minus -> "-"
  | Token.Star -> "*"
  | Token.Slash -> "/"
  | Token.Caret -> "^"
  | Token.Lparen -> "("
  | Token.Rparen -> ")"
  | Token.Newline | Token.Eof -> ""

let cache_key src =
  match Lexer.tokenize src with
  | Error _ -> String.trim src
  | Ok tokens ->
    let buf = Buffer.create (String.length src) in
    let line_has_content = ref false in
    List.iter
      (fun { Token.token; _ } ->
        match token with
        | Token.Eof -> ()
        | Token.Newline ->
          if !line_has_content then begin
            Buffer.add_char buf '\n';
            line_has_content := false
          end
        | tok ->
          if !line_has_content then Buffer.add_char buf ' ';
          Buffer.add_string buf (render_token tok);
          line_has_content := true)
      tokens;
    let s = Buffer.contents buf in
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

(* The canonical requirement source — the same string [cache_key]
   returns.  Exposed under its own name for the federation path: the
   root canonicalizes once and forwards this form in subqueries, so the
   compile caches of root and every regional wizard share one key per
   distinct requirement regardless of the user's spelling. *)
let canonical = cache_key

let compile src : (Ast.program, compile_error) result =
  match Parser.parse src with
  | Ok program -> Ok program
  | Error e ->
    Error
      { line = e.Parser.line; col = e.Parser.col; message = e.Parser.message }

(* The wizard's hot-path form: parsed, compiled to bytecode, with a
   preallocated interpreter state that selection reuses across servers
   and requests (the wizard caches [fast] values in its compile LRU). *)
type fast = {
  prog : Bytecode.program;
  state : Bytecode.state;
  sweep : Bytecode.sweep option;
}

let compile_fast src : (fast, compile_error) result =
  match compile src with
  | Error e -> Error e
  | Ok ast ->
    let prog = Compile.program ast in
    Ok
      {
        prog;
        state = Bytecode.make_state prog;
        sweep = Bytecode.sweep_of prog;
      }

let evaluate program ~lookup = Eval.run ~lookup program

(* Host strings mentioned by the user-side parameters.  Evaluation is run
   once with empty server bindings: the preferred/denied assignments are
   non-logical, so they do not depend on any particular server. *)
let host_lists (outcome : Eval.outcome) =
  let extract pred =
    List.filter_map
      (fun (name, v) ->
        if pred name then
          match v with
          | Value.Addr host -> Some host
          | Value.Num _ -> None
        else None)
      outcome.Eval.uparams
  in
  ( extract Vars.is_preferred_param,  (* preferred, in order *)
    extract Vars.is_denied_param )

(* The variable names a program reads that are neither server-side,
   user-side, built-in, nor locally assigned: candidates for typos.  Used
   by the client library to warn before a request is sent. *)
let unbound_variables (program : Ast.program) =
  let assigned = Hashtbl.create 8 in
  let unknown = ref [] in
  let note name =
    if
      (not (Vars.is_server_side name))
      && (not (Vars.is_user_side name))
      && (not (Builtins.is_builtin name))
      && (not (Hashtbl.mem assigned name))
      && not (List.mem name !unknown)
    then unknown := name :: !unknown
  in
  let rec scan (e : Ast.expr) =
    match e with
    | Ast.Number _ | Ast.Netaddr _ -> ()
    | Ast.Var name -> note name
    | Ast.Assign (name, rhs) ->
      (* a bare identifier assigned to a user param is a host name *)
      (match rhs with
      | Ast.Var _ when Vars.is_user_side name -> ()
      | _ -> scan rhs);
      Hashtbl.replace assigned name ()
    | Ast.Arith (_, a, b) | Ast.Cmp (_, a, b) | Ast.Logic (_, a, b) ->
      scan a;
      scan b
    | Ast.Call (_, a) | Ast.Neg a | Ast.Paren a -> scan a
  in
  List.iter (fun (st : Ast.statement) -> scan st.Ast.expr) program;
  List.rev !unknown
