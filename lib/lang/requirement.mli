(** Compile-and-evaluate front door of the requirement meta-language. *)

type compile_error = { line : int; col : int; message : string }

val pp_compile_error : Format.formatter -> compile_error -> unit

(** Canonical key for caching compiled programs by source text: the
    token stream rendered back out (whitespace runs collapsed, comments
    and blank lines dropped, reserved words case-folded, numbers as the
    shortest re-lexable decimal), so trivially different spellings of
    one requirement share a cache entry.  Two sources with the same key
    select identically — they can differ only in the source line numbers
    reported by fault diagnostics. *)
val cache_key : string -> string

(** The canonical requirement source — the string {!cache_key} returns,
    under its own name.  Canonicalization is idempotent and the result
    re-lexes to the same token stream, so a federation root can forward
    the canonical form to regional wizards and every compile cache in
    the tree derives the same key ([cache_key (canonical s) = cache_key
    s]) no matter which spelling it received. *)
val canonical : string -> string

(** Lex and parse a requirement text. *)
val compile : string -> (Ast.program, compile_error) result

(** A requirement in the wizard's hot-path form: bytecode plus the
    preallocated interpreter state selection reuses across servers, and
    the statement-major {!Bytecode.sweep} plan when the program fits
    that shape. *)
type fast = {
  prog : Bytecode.program;
  state : Bytecode.state;
  sweep : Bytecode.sweep option;
}

(** Parse and compile to bytecode in one step. *)
val compile_fast : string -> (fast, compile_error) result

(** Evaluate against one server's variable bindings. *)
val evaluate : Ast.program -> lookup:Eval.binding -> Eval.outcome

(** [(preferred, denied)] host strings collected from the user-side
    parameters of an evaluation outcome. *)
val host_lists : Eval.outcome -> string list * string list

(** Free variables that no binding can supply — typo candidates. *)
val unbound_variables : Ast.program -> string list
