(** Compile-and-evaluate front door of the requirement meta-language. *)

type compile_error = { line : int; col : int; message : string }

val pp_compile_error : Format.formatter -> compile_error -> unit

(** Cheap canonical key for caching compiled programs by source text:
    two sources with the same key compile to the same program. *)
val cache_key : string -> string

(** Lex and parse a requirement text. *)
val compile : string -> (Ast.program, compile_error) result

(** Evaluate against one server's variable bindings. *)
val evaluate : Ast.program -> lookup:Eval.binding -> Eval.outcome

(** [(preferred, denied)] host strings collected from the user-side
    parameters of an evaluation outcome. *)
val host_lists : Eval.outcome -> string list * string list

(** Free variables that no binding can supply — typo candidates. *)
val unbound_variables : Ast.program -> string list
