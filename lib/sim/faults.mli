(** Deterministic fault-injection plane.

    A plan is a schedule of (virtual time, action) pairs; {!install}
    arms one engine event per entry and hands each action to the
    driver's [apply] callback when its time comes.  Same seed, same
    plan, same run: chaos stays byte-for-byte reproducible.

    Actions are symbolic (host and link names); carrying them out —
    failing machines, dropping link traffic, corrupting stream bytes,
    silencing a monitor's processes — is the driver's job. *)

type action =
  | Crash_node of string  (** host dies: probes and daemons go silent *)
  | Restart_node of string
  | Partition_link of string * string
      (** the direct link between two named nodes drops everything *)
  | Heal_link of string * string
  | Partition_host of string  (** every channel touching the host *)
  | Heal_host of string
  | Corrupt_frames of float
      (** set the per-message stream corruption probability *)
  | Monitor_outage of string
      (** the monitor machinery hosted on a machine stops handling and
          transmitting (the process, not the network) *)
  | Monitor_restore of string

(** Stable identifier of the action's kind ("crash_node", ...), used in
    metric names ([faults.<kind>_total]) and trace instants
    ([fault.<kind>]). *)
val action_kind : action -> string

val pp_action : Format.formatter -> action -> unit

type event = { at : float; action : action }

type plan = event list

(** Stable sort by time (ties keep list order). *)
val sort_plan : plan -> plan

type t

(** Schedule every event of the plan on the engine.  Each injection
    bumps [faults.injected_total] and the per-kind counter, records a
    [fault.<kind>] trace instant, then calls [apply].  Events in the
    engine's past raise {!Engine.Time_reversal}. *)
val install :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  engine:Engine.t ->
  apply:(action -> unit) ->
  plan ->
  t

(** Actions injected so far. *)
val injected : t -> int

(** Actions still scheduled. *)
val pending : t -> int

(** Seeded chaos plan: [episodes] fault/repair pairs (cycling through
    node crash, host partition and monitor outage) spread over
    [0.1*duration, 0.8*duration], each repaired after a uniform
    [min_repair, max_repair] delay; [corruption] switches a constant
    frame-corruption rate on at time 0.  Deterministic in [rng]. *)
val random_plan :
  ?episodes:int ->
  ?min_repair:float ->
  ?max_repair:float ->
  ?corruption:float ->
  rng:Smart_util.Prng.t ->
  hosts:string list ->
  monitors:string list ->
  duration:float ->
  unit ->
  plan
