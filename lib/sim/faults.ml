(* Deterministic fault-injection plane.

   A fault plan is a schedule of (virtual time, action) pairs; installing
   it arms one engine event per entry, so same-seed chaos runs replay the
   identical fault sequence and stay byte-for-byte reproducible.

   The plane is substrate-neutral: actions name hosts and links
   symbolically and an [apply] callback supplied by the driver (the
   simulation driver in practice) carries them out.  This module only
   owns the schedule, the accounting (one metrics counter per action
   kind, a trace instant per injection) and the seeded plan generator. *)

module Metrics = Smart_util.Metrics

type action =
  | Crash_node of string      (* host process dies; its traffic stops *)
  | Restart_node of string
  | Partition_link of string * string  (* direct link drops everything *)
  | Heal_link of string * string
  | Partition_host of string  (* every channel touching the host *)
  | Heal_host of string
  | Corrupt_frames of float   (* per-message stream corruption probability *)
  | Monitor_outage of string  (* the monitor machinery on a host stops *)
  | Monitor_restore of string

let action_kind = function
  | Crash_node _ -> "crash_node"
  | Restart_node _ -> "restart_node"
  | Partition_link _ -> "partition_link"
  | Heal_link _ -> "heal_link"
  | Partition_host _ -> "partition_host"
  | Heal_host _ -> "heal_host"
  | Corrupt_frames _ -> "corrupt_frames"
  | Monitor_outage _ -> "monitor_outage"
  | Monitor_restore _ -> "monitor_restore"

let pp_action ppf = function
  | Crash_node h -> Fmt.pf ppf "crash_node %s" h
  | Restart_node h -> Fmt.pf ppf "restart_node %s" h
  | Partition_link (a, b) -> Fmt.pf ppf "partition_link %s<->%s" a b
  | Heal_link (a, b) -> Fmt.pf ppf "heal_link %s<->%s" a b
  | Partition_host h -> Fmt.pf ppf "partition_host %s" h
  | Heal_host h -> Fmt.pf ppf "heal_host %s" h
  | Corrupt_frames rate -> Fmt.pf ppf "corrupt_frames %.4f" rate
  | Monitor_outage h -> Fmt.pf ppf "monitor_outage %s" h
  | Monitor_restore h -> Fmt.pf ppf "monitor_restore %s" h

type event = { at : float; action : action }

type plan = event list

(* Plans compare by time, ties by scheduling (list) order: sort must be
   stable so a crash queued before its restart stays before it. *)
let sort_plan plan =
  List.stable_sort (fun a b -> Float.compare a.at b.at) plan

type t = {
  engine : Engine.t;
  trace : Smart_util.Tracelog.t;
  injected_total : Metrics.Counter.t;
  by_kind : (string * Metrics.Counter.t) list;
  mutable injected : int;
  mutable pending : int;
}

let counter_name kind = "faults." ^ kind ^ "_total"

let all_kinds =
  [
    "crash_node"; "restart_node"; "partition_link"; "heal_link";
    "partition_host"; "heal_host"; "corrupt_frames"; "monitor_outage";
    "monitor_restore";
  ]

let install ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) ~engine ~apply plan =
  let t =
    {
      engine;
      trace;
      injected_total =
        Metrics.counter metrics ~help:"fault actions injected"
          "faults.injected_total";
      by_kind =
        List.map
          (fun kind ->
            ( kind,
              Metrics.counter metrics
                ~help:("fault actions injected: " ^ kind)
                (counter_name kind) ))
          all_kinds;
      injected = 0;
      pending = 0;
    }
  in
  List.iter
    (fun { at; action } ->
      t.pending <- t.pending + 1;
      ignore
        (Engine.schedule_at engine ~time:at (fun () ->
             t.pending <- t.pending - 1;
             t.injected <- t.injected + 1;
             Metrics.Counter.incr t.injected_total;
             (match List.assoc_opt (action_kind action) t.by_kind with
             | Some c -> Metrics.Counter.incr c
             | None -> ());
             Smart_util.Tracelog.instant t.trace
               ("fault." ^ action_kind action);
             apply action)))
    (sort_plan plan);
  t

let injected t = t.injected

let pending t = t.pending

(* Seeded chaos generator: [episodes] fault/repair pairs spread over
   [0.1*duration, 0.8*duration], each repaired after a uniform draw from
   [min_repair, max_repair].  Kinds cycle deterministically through
   crash, host partition and monitor outage so every mechanism gets
   exercised; an optional constant frame-corruption rate switches on at
   time 0.  All randomness comes from [rng]. *)
let random_plan ?(episodes = 4) ?(min_repair = 1.0) ?(max_repair = 4.0)
    ?corruption ~rng ~hosts ~monitors ~duration () =
  if hosts = [] then invalid_arg "Faults.random_plan: no hosts";
  if duration <= 0.0 then invalid_arg "Faults.random_plan: bad duration";
  let hosts = Array.of_list hosts in
  let monitors = Array.of_list monitors in
  let base =
    match corruption with
    | None -> []
    | Some rate -> [ { at = 0.0; action = Corrupt_frames rate } ]
  in
  let episodes =
    List.concat
      (List.init episodes (fun i ->
           let at =
             Smart_util.Prng.range rng ~lo:(0.1 *. duration)
               ~hi:(0.8 *. duration)
           in
           let repair =
             at +. Smart_util.Prng.range rng ~lo:min_repair ~hi:max_repair
           in
           match i mod 3 with
           | 0 ->
             let h = Smart_util.Prng.pick rng hosts in
             [
               { at; action = Crash_node h };
               { at = repair; action = Restart_node h };
             ]
           | 1 ->
             let h = Smart_util.Prng.pick rng hosts in
             [
               { at; action = Partition_host h };
               { at = repair; action = Heal_host h };
             ]
           | _ ->
             if Array.length monitors = 0 then []
             else begin
               let m = Smart_util.Prng.pick rng monitors in
               [
                 { at; action = Monitor_outage m };
                 { at = repair; action = Monitor_restore m };
               ]
             end))
  in
  sort_plan (base @ episodes)
