(** Thesis testbed fixtures.

    [icpp2005] builds the 11-machine cluster of Table 5.1 / Fig 5.1;
    [paths] builds the wide-area measurement topology of Table 3.2. *)

(** Machine specs of Table 5.1, with Fig 5.2-calibrated matmul rates. *)
val specs : Machine.spec list

(** Raises [Invalid_argument] for unknown names. *)
val spec_of_name : string -> Machine.spec

(** Names in Table 5.1 order. *)
val machine_names : string list

(** 100 Mbps switched-Ethernet link. *)
val lan_conf : Smart_net.Link.conf

(** The 11-machine testbed; [trace] is attached to the cluster's engine
    so packet/flow events are recorded. *)
val icpp2005 : ?seed:int -> ?trace:Smart_sim.Trace.t -> unit -> Cluster.t

type rtt_path = {
  label : string;
  src : int;
  dst : int;
  description : string;
  ping_rtt : float;  (** thesis ping figure, seconds *)
}

type paths_fixture = {
  cluster : Cluster.t;
  sagit : int;
  suna : int;
  paths : rtt_path list;
}

(** Measurement topology for Figs 3.3-3.6; [sagit_mtu] selects the probe
    host's interface MTU (1500 by default) and [sagit_virtual] removes
    its interface-initialisation cost (the Speed_init ablation). *)
val paths :
  ?seed:int -> ?sagit_mtu:int -> ?sagit_virtual:bool -> unit -> paths_fixture
