(* Fixtures reproducing the thesis testbeds.

   [icpp2005] is the 11-machine cluster of Table 5.1 / Fig 5.1: six
   network segments of 100 Mbps Ethernet, the remote host sagit reaching
   the lab through the gateway dalmatian.

   The per-machine [matmul_rate] values encode the Fig 5.2 benchmark
   shape: for the thesis's matrix program the P3-866 and P4-2.4GHz hosts
   out-perform the P4-1.6..1.8GHz hosts (cache behaviour), which is what
   makes bogomips alone a misleading selector and the requirement
   language useful. *)

let mb = 1024 * 1024

let mk ~name ~ip ~cpu_model ~cpu_mhz ~bogomips ~ram_mb ~os ~matmul_rate =
  {
    Machine.name;
    ip;
    cpu_model;
    cpu_mhz;
    bogomips;
    ram_bytes = ram_mb * mb;
    os;
    matmul_rate;
    disk_rate = 8000.0;
  }

(* Table 5.1 with Fig 5.2-calibrated matmul rates (ops/second for the
   thesis's vector-multiplication implementation). *)
let specs =
  [
    mk ~name:"sagit" ~ip:"137.132.81.2" ~cpu_model:"P3 866MHz" ~cpu_mhz:866.0
      ~bogomips:1730.15 ~ram_mb:128 ~os:"Debian Linux 3.0r2"
      ~matmul_rate:24.0e6;
    mk ~name:"dalmatian" ~ip:"192.168.0.254" ~cpu_model:"P4 2.4GHz"
      ~cpu_mhz:2400.0 ~bogomips:4771.02 ~ram_mb:512 ~os:"Redhat Linux 8.0"
      ~matmul_rate:30.0e6;
    mk ~name:"mimas" ~ip:"192.168.1.2" ~cpu_model:"P4 1.7GHz" ~cpu_mhz:1700.0
      ~bogomips:3394.76 ~ram_mb:192 ~os:"Redhat Linux 9.0"
      ~matmul_rate:17.5e6;
    mk ~name:"telesto" ~ip:"192.168.1.3" ~cpu_model:"P4 1.6GHz" ~cpu_mhz:1600.0
      ~bogomips:3185.04 ~ram_mb:128 ~os:"Redhat Linux 7.3"
      ~matmul_rate:16.0e6;
    mk ~name:"lhost" ~ip:"192.168.2.2" ~cpu_model:"P3 866MHz" ~cpu_mhz:866.0
      ~bogomips:1730.15 ~ram_mb:128 ~os:"Redhat Linux 9.0"
      ~matmul_rate:23.5e6;
    mk ~name:"helene" ~ip:"192.168.2.3" ~cpu_model:"P4 1.7GHz" ~cpu_mhz:1700.0
      ~bogomips:3394.76 ~ram_mb:256 ~os:"Redhat Linux 9.0"
      ~matmul_rate:17.8e6;
    mk ~name:"phoebe" ~ip:"192.168.3.2" ~cpu_model:"P4 1.7GHz" ~cpu_mhz:1700.0
      ~bogomips:3394.76 ~ram_mb:256 ~os:"Redhat Linux 9.0"
      ~matmul_rate:17.6e6;
    mk ~name:"calypso" ~ip:"192.168.3.3" ~cpu_model:"P4 1.7GHz" ~cpu_mhz:1700.0
      ~bogomips:3394.76 ~ram_mb:256 ~os:"Redhat Linux 9.0"
      ~matmul_rate:17.4e6;
    mk ~name:"dione" ~ip:"192.168.4.2" ~cpu_model:"P4 2.4GHz" ~cpu_mhz:2400.0
      ~bogomips:4771.02 ~ram_mb:512 ~os:"Redhat Linux 7.3"
      ~matmul_rate:29.5e6;
    mk ~name:"titan-x" ~ip:"192.168.4.3" ~cpu_model:"P4 1.7GHz" ~cpu_mhz:1700.0
      ~bogomips:3394.76 ~ram_mb:256 ~os:"Redhat Linux 7.3"
      ~matmul_rate:17.3e6;
    mk ~name:"pandora-x" ~ip:"192.168.5.2" ~cpu_model:"P4 1.8GHz"
      ~cpu_mhz:1800.0 ~bogomips:3591.37 ~ram_mb:256 ~os:"Redhat Linux 9.0"
      ~matmul_rate:19.0e6;
  ]

let spec_of_name name =
  match List.find_opt (fun s -> String.equal s.Machine.name name) specs with
  | Some s -> s
  | None -> invalid_arg ("Testbed.spec_of_name: unknown machine " ^ name)

let lan_conf =
  {
    Smart_net.Link.capacity = 100e6 /. 8.0;
    prop_delay = 20e-6;
    jitter = 3e-6;
    loss = 0.0;
  }

(* Fig 5.1: sagit — dalmatian (gateway) — lab backbone — 5 segments. *)
let icpp2005 ?(seed = 42) ?trace () =
  let c = Cluster.create ~seed ?trace () in
  let add name = Cluster.add_machine c (spec_of_name name) in
  let sagit = add "sagit" in
  let dalmatian = add "dalmatian" in
  let backbone = Cluster.add_switch c ~name:"lab-bb" ~ip:"192.168.0.1" in
  let seg i = Cluster.add_switch c ~name:(Printf.sprintf "seg%d-sw" i)
      ~ip:(Printf.sprintf "192.168.%d.1" i)
  in
  let segments = Array.init 5 (fun i -> seg (i + 1)) in
  ignore (Cluster.link c ~a:sagit ~b:dalmatian lan_conf);
  ignore (Cluster.link c ~a:dalmatian ~b:backbone lan_conf);
  Array.iter (fun sw -> ignore (Cluster.link c ~a:backbone ~b:sw lan_conf))
    segments;
  let attach seg_idx name =
    let id = add name in
    ignore (Cluster.link c ~a:segments.(seg_idx) ~b:id lan_conf);
    id
  in
  ignore (attach 0 "mimas");
  ignore (attach 0 "telesto");
  ignore (attach 1 "lhost");
  ignore (attach 1 "helene");
  ignore (attach 2 "phoebe");
  ignore (attach 2 "calypso");
  ignore (attach 3 "dione");
  ignore (attach 3 "titan-x");
  ignore (attach 4 "pandora-x");
  c

let machine_names = List.map (fun s -> s.Machine.name) specs

(* ------------------------------------------------------------------ *)
(* Wide-area paths of Table 3.2 for the RTT experiments (Fig 3.3-3.6)  *)
(* ------------------------------------------------------------------ *)

type rtt_path = {
  label : string;
  src : int;
  dst : int;
  description : string;
  ping_rtt : float;  (* thesis's ping figure, seconds *)
}

type paths_fixture = {
  cluster : Cluster.t;
  sagit : int;
  suna : int;
  paths : rtt_path list;
}

let wan_conf ~capacity_mbps ~prop ~jitter =
  {
    Smart_net.Link.capacity = capacity_mbps *. 1e6 /. 8.0;
    prop_delay = prop;
    jitter;
    loss = 0.0;
  }

let host name ip =
  mk ~name ~ip ~cpu_model:"P3 866MHz" ~cpu_mhz:866.0 ~bogomips:1730.15
    ~ram_mb:128 ~os:"Debian Linux 3.0r2" ~matmul_rate:24.0e6

(* Builds the measurement topology.  [sagit_mtu] lets the Fig 3.4/3.5
   experiments lower the interface MTU to 1000/500 bytes;
   [sagit_virtual] removes the interface-initialisation cost (the
   Speed_init ablation and observation 1 of §3.3.2).  The cmui path
   carries bursty cross traffic so its knee is "shadowed" by delay
   variation, reproducing observation 4 of §3.3.2. *)
let paths ?(seed = 7) ?(sagit_mtu = 1500) ?(sagit_virtual = false) () =
  let c = Cluster.create ~seed () in
  let nic mtu = { Smart_net.Topology.default_nic with mtu } in
  let sagit =
    Cluster.add_machine c
      ~nic:{ (nic sagit_mtu) with Smart_net.Topology.virtual_if = sagit_virtual }
      (host "sagit" "137.132.81.2")
  in
  let suna = Cluster.add_machine c (host "suna" "137.132.81.3") in
  let ubin = Cluster.add_machine c (host "ubin" "137.132.81.4") in
  let tokxp = Cluster.add_machine c (host "tokxp" "203.178.140.2") in
  let jpfreebsd = Cluster.add_machine c (host "jpfreebsd" "203.178.140.3") in
  let cmui = Cluster.add_machine c (host "cmui" "128.2.220.137") in
  let helene = Cluster.add_machine c (host "helene" "192.168.2.3") in
  let atlas = Cluster.add_machine c (host "atlas" "192.168.2.4") in
  let campus_sw = Cluster.add_switch c ~name:"campus-sw" ~ip:"137.132.81.1" in
  let lab_sw = Cluster.add_switch c ~name:"lab-sw" ~ip:"192.168.2.1" in
  let singaren = Cluster.add_switch c ~name:"singaren" ~ip:"202.3.135.17" in
  let apan_jp = Cluster.add_switch c ~name:"apan-jp" ~ip:"203.178.140.1" in
  let abilene = Cluster.add_switch c ~name:"abilene" ~ip:"198.32.8.50" in
  let campus = wan_conf ~capacity_mbps:100.0 ~prop:30e-6 ~jitter:4e-6 in
  (* campus segment: sagit, suna, ubin on one switch *)
  ignore (Cluster.link c ~a:sagit ~b:campus_sw campus);
  ignore (Cluster.link c ~a:suna ~b:campus_sw campus);
  ignore (Cluster.link c ~a:ubin ~b:campus_sw campus);
  (* lab segment: helene, atlas on the same switch *)
  ignore (Cluster.link c ~a:helene ~b:lab_sw campus);
  ignore (Cluster.link c ~a:atlas ~b:lab_sw campus);
  ignore (Cluster.link c ~a:campus_sw ~b:lab_sw campus);
  (* Singapore -> Japan: 126 ms ping RTT, moderate jitter *)
  ignore
    (Cluster.link c ~a:campus_sw ~b:singaren
       (wan_conf ~capacity_mbps:622.0 ~prop:1.0e-3 ~jitter:80e-6));
  ignore
    (Cluster.link c ~a:singaren ~b:apan_jp
       (wan_conf ~capacity_mbps:155.0 ~prop:61.5e-3 ~jitter:400e-6));
  ignore (Cluster.link c ~a:tokxp ~b:apan_jp campus);
  ignore (Cluster.link c ~a:jpfreebsd ~b:apan_jp
            (wan_conf ~capacity_mbps:100.0 ~prop:120e-6 ~jitter:10e-6));
  (* Singapore -> CMU: 238 ms ping RTT, high jitter, bursty cross load *)
  let cmu_chan_fwd, cmu_chan_rev =
    Cluster.link c ~a:singaren ~b:abilene
      (wan_conf ~capacity_mbps:622.0 ~prop:105e-3 ~jitter:2.5e-3)
  in
  ignore
    (Cluster.link c ~a:cmui ~b:abilene
       (wan_conf ~capacity_mbps:100.0 ~prop:12e-3 ~jitter:1.2e-3));
  let rng = Cluster.rng c in
  ignore
    (Smart_net.Cross_traffic.bursty ~engine:(Cluster.engine c)
       ~rng:(Smart_util.Prng.split rng) ~chan:cmu_chan_fwd
       ~on_load:(45e6 /. 8.0) ~off_load:(8e6 /. 8.0) ());
  ignore
    (Smart_net.Cross_traffic.bursty ~engine:(Cluster.engine c)
       ~rng:(Smart_util.Prng.split rng) ~chan:cmu_chan_rev
       ~on_load:(45e6 /. 8.0) ~off_load:(8e6 /. 8.0) ());
  let paths =
    [
      { label = "a"; src = sagit; dst = tokxp;
        description = "NUS campus to APAN Japan"; ping_rtt = 126e-3 };
      { label = "b"; src = sagit; dst = cmui;
        description = "NUS campus to CMU USA"; ping_rtt = 238e-3 };
      { label = "c"; src = sagit; dst = ubin;
        description = "local network segment"; ping_rtt = 0.262e-3 };
      { label = "d"; src = tokxp; dst = jpfreebsd;
        description = "APAN Japan to ftp server in Japan"; ping_rtt = 0.552e-3 };
      { label = "e"; src = helene; dst = atlas;
        description = "the same switch"; ping_rtt = 0.196e-3 };
      { label = "f"; src = sagit; dst = sagit;
        description = "test on loopback interface"; ping_rtt = 0.041e-3 };
    ]
  in
  { cluster = c; sagit; suna; paths }
