(* /proc text synthesis and parsing.

   The simulated probe reads the same text formats a real probe reads
   from a Linux /proc, so the parsing code path is identical in
   simulation and on a live host.  Rendering follows Linux 2.4 (the
   thesis's kernels); parsers additionally accept the modern formats so
   the realnet probe daemon works on current kernels. *)

type loadavg = { l1 : float; l5 : float; l15 : float }

type cpu_jiffies = { user : float; nice : float; system : float; idle : float }

type disk_io = {
  rreq : float;
  rblocks : float;
  wreq : float;
  wblocks : float;
}

let zero_disk_io = { rreq = 0.0; rblocks = 0.0; wreq = 0.0; wblocks = 0.0 }

let allreq d = d.rreq +. d.wreq

type meminfo = {
  total : int;
  used : int;
  free : int;
  shared_mem : int;
  buffers : int;
  cached : int;
}

type netdev_stat = {
  iface : string;
  rbytes : float;
  rpackets : float;
  tbytes : float;
  tpackets : float;
}

(* ------------------------------------------------------------------ *)
(* Rendering from a simulated machine                                  *)
(* ------------------------------------------------------------------ *)

let render_loadavg (m : Machine.t) =
  let runnable = int_of_float (Float.round (Machine.cpu_demand m)) in
  Printf.sprintf "%.2f %.2f %.2f %d/%d %d\n" m.Machine.load1 m.Machine.load5
    m.Machine.load15 (max 1 runnable)
    (60 + (3 * List.length m.Machine.workloads))
    (1000 + List.length m.Machine.workloads)

let render_stat (m : Machine.t) =
  let j v = Printf.sprintf "%.0f" v in
  String.concat ""
    [
      Printf.sprintf "cpu  %s %s %s %s\n" (j m.Machine.jiffies_user)
        (j m.Machine.jiffies_nice) (j m.Machine.jiffies_system)
        (j m.Machine.jiffies_idle);
      (* Linux 2.4 disk_io line: (major,disk):(allreq,rreq,rblk,wreq,wblk) *)
      Printf.sprintf "disk_io: (3,0):(%.0f,%.0f,%.0f,%.0f,%.0f)\n"
        (m.Machine.disk_rreq +. m.Machine.disk_wreq)
        m.Machine.disk_rreq m.Machine.disk_rblocks m.Machine.disk_wreq
        m.Machine.disk_wblocks;
      "ctxt 0\nbtime 0\n";
    ]

let render_meminfo (m : Machine.t) =
  let total = m.Machine.spec.Machine.ram_bytes in
  let used = Machine.mem_used m in
  let free = total - used in
  Printf.sprintf
    "        total:    used:    free:  shared: buffers:  cached:\n\
     Mem:  %d %d %d %d %d %d\n\
     Swap: 0 0 0\n"
    total used free 0 m.Machine.mem_buffers m.Machine.mem_cached

let render_net_dev (m : Machine.t) =
  let e = m.Machine.eth in
  String.concat ""
    [
      "Inter-|   Receive                                                |  \
       Transmit\n";
      " face |bytes    packets errs drop fifo frame compressed \
       multicast|bytes    packets errs drop fifo colls carrier compressed\n";
      Printf.sprintf
        "    lo:%8.0f %7.0f    0    0    0     0          0         0 \
         %8.0f %7.0f    0    0    0     0       0          0\n"
        0.0 0.0 0.0 0.0;
      Printf.sprintf
        "  eth0:%8.0f %7.0f    0    0    0     0          0         0 \
         %8.0f %7.0f    0    0    0     0       0          0\n"
        e.Machine.rbytes e.Machine.rpackets e.Machine.tbytes
        e.Machine.tpackets;
    ]

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let lines s = String.split_on_char '\n' s

let words s =
  String.split_on_char ' ' s
  |> List.filter (fun w -> not (String.equal w ""))

let float_field name s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: bad number %S" name s)

let ( let* ) r f = Result.bind r f

let parse_loadavg text =
  match lines text with
  | first :: _ ->
    (match words first with
    | a :: b :: c :: _ ->
      let* l1 = float_field "loadavg" a in
      let* l5 = float_field "loadavg" b in
      let* l15 = float_field "loadavg" c in
      Ok { l1; l5; l15 }
    | _ -> Error "loadavg: too few fields")
  | [] -> Error "loadavg: empty"

(* Parse "(3,0):(12,5,40,7,56)" into disk_io. *)
let parse_disk_tuple s =
  match String.index_opt s ':' with
  | None -> Error "disk_io: missing colon"
  | Some i ->
    let body = String.sub s (i + 1) (String.length s - i - 1) in
    let body =
      String.trim body |> fun b ->
      if String.length b >= 2 && b.[0] = '(' && b.[String.length b - 1] = ')'
      then String.sub b 1 (String.length b - 2)
      else b
    in
    (match String.split_on_char ',' body with
    | [ _all; r; rb; w; wb ] ->
      let* rreq = float_field "disk_io" r in
      let* rblocks = float_field "disk_io" rb in
      let* wreq = float_field "disk_io" w in
      let* wblocks = float_field "disk_io" wb in
      Ok { rreq; rblocks; wreq; wblocks }
    | _ -> Error "disk_io: expected 5 fields")

let parse_stat text =
  let ls = lines text in
  let cpu_line =
    List.find_opt
      (fun l ->
        String.length l > 4 && String.equal (String.sub l 0 4) "cpu ")
      ls
  in
  let* cpu =
    match cpu_line with
    | None -> Error "stat: no cpu line"
    | Some l ->
      (match words l with
      | _cpu :: u :: n :: s :: i :: _ ->
        let* user = float_field "stat.user" u in
        let* nice = float_field "stat.nice" n in
        let* system = float_field "stat.system" s in
        let* idle = float_field "stat.idle" i in
        Ok { user; nice; system; idle }
      | _ -> Error "stat: short cpu line")
  in
  let disk =
    List.find_opt
      (fun l -> String.length l > 8 && String.equal (String.sub l 0 8) "disk_io:")
      ls
  in
  match disk with
  | None -> Ok (cpu, zero_disk_io)
  | Some l ->
    (match words l with
    | _tag :: tuple :: _ ->
      (match parse_disk_tuple tuple with
      | Ok d -> Ok (cpu, d)
      | Error _ -> Ok (cpu, zero_disk_io))
    | _ -> Ok (cpu, zero_disk_io))

let parse_meminfo text =
  let ls = lines text in
  let mem24 =
    List.find_opt
      (fun l -> String.length l > 4 && String.equal (String.sub l 0 4) "Mem:")
      ls
  in
  match mem24 with
  | Some l ->
    (match words l with
    | _tag :: t :: u :: f :: s :: b :: c :: _ ->
      let* total = float_field "meminfo" t in
      let* used = float_field "meminfo" u in
      let* free = float_field "meminfo" f in
      let* shared_mem = float_field "meminfo" s in
      let* buffers = float_field "meminfo" b in
      let* cached = float_field "meminfo" c in
      Ok
        {
          total = int_of_float total;
          used = int_of_float used;
          free = int_of_float free;
          shared_mem = int_of_float shared_mem;
          buffers = int_of_float buffers;
          cached = int_of_float cached;
        }
    | _ -> Error "meminfo: short Mem: line")
  | None ->
    (* modern "MemTotal:  xxx kB" format *)
    let field name =
      List.find_map
        (fun l ->
          let n = String.length name in
          if String.length l > n && String.equal (String.sub l 0 n) name then
            match words l with
            | _ :: v :: _ -> float_of_string_opt v
            | _ -> None
          else None)
        ls
    in
    (match (field "MemTotal:", field "MemFree:") with
    | Some total_kb, Some free_kb ->
      let buffers = Option.value ~default:0.0 (field "Buffers:") in
      let cached = Option.value ~default:0.0 (field "Cached:") in
      let to_b kb = int_of_float (kb *. 1024.0) in
      let total = to_b total_kb and free = to_b free_kb in
      Ok
        {
          total;
          used = total - free;
          free;
          shared_mem = 0;
          buffers = to_b buffers;
          cached = to_b cached;
        }
    | _ -> Error "meminfo: unrecognised format")

let parse_net_dev text =
  let parse_line l =
    match String.index_opt l ':' with
    | None -> None
    | Some i ->
      let iface = String.trim (String.sub l 0 i) in
      let rest = String.sub l (i + 1) (String.length l - i - 1) in
      (match words rest with
      | rb :: rp :: _e1 :: _e2 :: _e3 :: _e4 :: _e5 :: _e6 :: tb :: tp :: _ ->
        (match
           ( float_of_string_opt rb,
             float_of_string_opt rp,
             float_of_string_opt tb,
             float_of_string_opt tp )
         with
        | Some rbytes, Some rpackets, Some tbytes, Some tpackets ->
          Some { iface; rbytes; rpackets; tbytes; tpackets }
        | _ -> None)
      | _ -> None)
  in
  let stats = List.filter_map parse_line (lines text) in
  if stats = [] then Error "net_dev: no interface lines" else Ok stats

(* A complete sampling of one machine's /proc, as the probe consumes it. *)
type snapshot = {
  loadavg_text : string;
  stat_text : string;
  meminfo_text : string;
  netdev_text : string;
}

let snapshot_of_machine (m : Machine.t) ~now =
  Machine.sync m ~now;
  {
    loadavg_text = render_loadavg m;
    stat_text = render_stat m;
    meminfo_text = render_meminfo m;
    netdev_text = render_net_dev m;
  }
