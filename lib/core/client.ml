(* The client library's protocol half (§3.6.2): build a request with a
   random sequence number, validate the reply against it, and apply the
   option semantics.  Driver code (simulated or Unix) performs the send,
   the receive, and the final TCP connections to the candidates. *)

module Metrics = Smart_util.Metrics

type error =
  | Timeout
  | Wrong_seq of { expected : int; got : int }
  | Not_enough of { wanted : int; got : int }
  | Malformed of string
  | Admission_rejected
  | Migration_failed of string

let pp_error ppf = function
  | Timeout -> Fmt.string ppf "request timed out"
  | Wrong_seq { expected; got } ->
    Fmt.pf ppf "reply sequence mismatch (expected %d, got %d)" expected got
  | Not_enough { wanted; got } ->
    Fmt.pf ppf "only %d of %d servers available" got wanted
  | Malformed m -> Fmt.pf ppf "malformed reply: %s" m
  | Admission_rejected ->
    Fmt.string ppf "request shed by wizard admission control (back off)"
  | Migration_failed m -> Fmt.pf ppf "session migration failed: %s" m

(* Completed sequence numbers remembered for duplicate suppression: a
   retransmitted request can harvest two replies, and the late one must
   not be fed to a later request's validation.  Bounded FIFO. *)
let completed_capacity = 64

type t = {
  rng : Smart_util.Prng.t;
  trace : Smart_util.Tracelog.t;
  mutable open_spans : (int * Smart_util.Tracelog.span) list;
      (* seq -> request span, finished when the reply is checked;
         typically at most one outstanding request *)
  completed : int Queue.t;  (* eviction order for [completed_set] *)
  completed_set : (int, unit) Hashtbl.t;
  requests_total : Metrics.Counter.t;
  replies_ok_total : Metrics.Counter.t;
  reply_errors_total : Metrics.Counter.t;
  retries_total : Metrics.Counter.t;
  duplicate_replies_total : Metrics.Counter.t;
  attempts_histogram : Metrics.Histogram.t;
}

let create ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) ~rng () =
  {
    rng;
    trace;
    open_spans = [];
    completed = Queue.create ();
    completed_set = Hashtbl.create completed_capacity;
    requests_total =
      Metrics.counter metrics ~help:"requests built" "client.requests_total";
    replies_ok_total =
      Metrics.counter metrics ~help:"replies accepted" "client.replies_ok_total";
    reply_errors_total =
      Metrics.counter metrics
        ~help:"replies rejected (sequence, count or decode)"
        "client.reply_errors_total";
    retries_total =
      Metrics.counter metrics
        ~help:"request retransmits after a per-attempt timeout"
        "client.retries_total";
    duplicate_replies_total =
      Metrics.counter metrics
        ~help:"late replies to already-completed requests, dropped"
        "client.duplicate_replies_total";
    attempts_histogram =
      Metrics.histogram metrics
        ~help:"send attempts per completed request (1 = no retransmit)"
        "client.request_attempts";
  }

let make_request t ~wanted ~option ~requirement =
  if wanted <= 0 then invalid_arg "Client.make_request: wanted must be positive";
  if wanted > Smart_proto.Ports.max_reply_servers then
    invalid_arg
      (Printf.sprintf "Client.make_request: at most %d servers per request"
         Smart_proto.Ports.max_reply_servers);
  Metrics.Counter.incr t.requests_total;
  let seq = Smart_util.Prng.int t.rng ~bound:0x3FFFFFFF in
  (* The client.request span is the root of the request's trace; its
     context rides in the datagram and the span stays open until
     [check_reply] sees the matching sequence number. *)
  let span = Smart_util.Tracelog.start t.trace "client.request" in
  if Smart_util.Tracelog.enabled t.trace then
    t.open_spans <- (seq, span) :: t.open_spans;
  {
    Smart_proto.Wizard_msg.seq;
    server_num = wanted;
    option;
    requirement;
    trace = Smart_util.Tracelog.ctx_of span;
  }

(* The driver reports a retransmit of the outstanding request (same
   sequence number, fresh send after a per-attempt timeout). *)
let note_retry t =
  Metrics.Counter.incr t.retries_total;
  Smart_util.Tracelog.instant t.trace "client.retry"

(* The driver reports how many sends a completed request took; feeds the
   attempts histogram behind the bench's retry_p95. *)
let note_attempts t n =
  if n > 0 then Metrics.Histogram.observe t.attempts_histogram (float_of_int n)

let mark_completed t ~seq =
  if not (Hashtbl.mem t.completed_set seq) then begin
    Queue.add seq t.completed;
    Hashtbl.replace t.completed_set seq ();
    while Queue.length t.completed > completed_capacity do
      let old = Queue.pop t.completed in
      Hashtbl.remove t.completed_set old
    done
  end

(* A retransmitted request can harvest several replies; the driver asks
   here before validating one, and drops the duplicates this flags. *)
let is_duplicate_reply t data =
  match Smart_proto.Wizard_msg.decode_reply data with
  | Error _ -> false  (* let [check_reply] report the malformation *)
  | Ok reply ->
    let dup = Hashtbl.mem t.completed_set reply.Smart_proto.Wizard_msg.seq in
    if dup then Metrics.Counter.incr t.duplicate_replies_total;
    dup

(* Validate a reply datagram against the outstanding request and apply
   the option field: [Strict] fails unless the full count came back,
   [Accept_partial] takes a non-empty subset. *)
let check_reply t (request : Smart_proto.Wizard_msg.request) data =
  let result =
    match Smart_proto.Wizard_msg.decode_reply data with
    | Error m -> Error (Malformed m)
    | Ok reply ->
      if reply.Smart_proto.Wizard_msg.seq <> request.Smart_proto.Wizard_msg.seq
      then
        Error
          (Wrong_seq
             {
               expected = request.Smart_proto.Wizard_msg.seq;
               got = reply.Smart_proto.Wizard_msg.seq;
             })
      else if reply.Smart_proto.Wizard_msg.rejected then
        (* admission control shed the request: distinct from a timeout
           (the wizard is alive, just overloaded) and from an empty
           candidate list (nothing qualified) — callers back off *)
        Error Admission_rejected
      else begin
        let servers = reply.Smart_proto.Wizard_msg.servers in
        let got = List.length servers in
        let wanted = request.Smart_proto.Wizard_msg.server_num in
        match request.Smart_proto.Wizard_msg.option with
        | Smart_proto.Wizard_msg.Strict ->
          if got >= wanted then Ok servers
          else Error (Not_enough { wanted; got })
        | Smart_proto.Wizard_msg.Accept_partial ->
          if got = 0 then Error (Not_enough { wanted; got }) else Ok servers
      end
  in
  (match result with
  | Ok _ ->
    Metrics.Counter.incr t.replies_ok_total;
    mark_completed t ~seq:request.Smart_proto.Wizard_msg.seq
  | Error _ -> Metrics.Counter.incr t.reply_errors_total);
  let seq = request.Smart_proto.Wizard_msg.seq in
  (match List.assoc_opt seq t.open_spans with
  | Some span ->
    Smart_util.Tracelog.finish t.trace span;
    t.open_spans <- List.remove_assoc seq t.open_spans
  | None -> ());
  result

(* Pre-flight check: warn about variables no binding can ever supply. *)
let lint_requirement requirement =
  match Smart_lang.Requirement.compile requirement with
  | Error e -> Error (Fmt.str "%a" Smart_lang.Requirement.pp_compile_error e)
  | Ok program -> Ok (Smart_lang.Requirement.unbound_variables program)
