(* The transmitter (§3.5.1): snapshots the monitor-side databases into
   three [type,size,data] frames and ships them to the receiver over a
   reliable stream.

   Centralized mode pushes on every tick; distributed mode stays passive
   and answers explicit pull requests from the wizard. *)

module Metrics = Smart_util.Metrics

type mode = Centralized | Distributed

let pull_request_magic = "SMART-PULL"

type config = {
  mode : mode;
  order : Smart_proto.Endian.order;  (* must match the receiver's *)
  receiver : Output.address;
}

type t = {
  config : config;
  db : Status_db.t;
  monitor_name : string;
  trace : Smart_util.Tracelog.t;
  pushes_total : Metrics.Counter.t;
  bytes_total : Metrics.Counter.t;
  frames_total : Metrics.Counter.t;
  pulls_total : Metrics.Counter.t;
}

let create ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) ~monitor_name config db =
  {
    config;
    db;
    monitor_name;
    trace;
    pushes_total =
      Metrics.counter metrics ~help:"database snapshots shipped"
        "transmitter.pushes_total";
    bytes_total =
      Metrics.counter metrics ~help:"encoded frame bytes shipped"
        "transmitter.bytes_total";
    frames_total =
      Metrics.counter metrics ~help:"frames shipped (three per push)"
        "transmitter.frames_total";
    pulls_total =
      Metrics.counter metrics ~help:"distributed-mode pull requests honoured"
        "transmitter.pulls_total";
  }

let snapshot_frames ?(trace = Smart_util.Tracelog.root) t =
  let order = t.config.order in
  let sys_data =
    String.concat ""
      (List.map
         (Smart_proto.Records.encode_sys order)
         (Status_db.sys_records t.db))
  in
  let net_data =
    match Status_db.find_net t.db ~monitor:t.monitor_name with
    | Some record -> Smart_proto.Records.encode_net order record
    | None ->
      Smart_proto.Records.encode_net order
        { Smart_proto.Records.monitor = t.monitor_name; entries = [] }
  in
  let sec_data =
    Smart_proto.Records.encode_sec order (Status_db.sec_record t.db)
  in
  [
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Sys_db; data = sys_data;
      trace };
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Net_db; data = net_data;
      trace };
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Sec_db; data = sec_data;
      trace };
  ]

(* The push span is parented on the database's last writer (typically a
   [sysmon.ingest] span), and its own context rides in the frames — this
   is the hop that carries the report pipeline's trace from the monitor
   machine to the wizard machine. *)
let push t =
  let span =
    Smart_util.Tracelog.start t.trace
      ~parent:(Status_db.last_trace t.db) "transmitter.push"
  in
  let frames =
    snapshot_frames ~trace:(Smart_util.Tracelog.ctx_of span) t
  in
  let encoded =
    String.concat "" (List.map (Smart_proto.Frame.encode t.config.order) frames)
  in
  Metrics.Counter.incr t.pushes_total;
  Metrics.Counter.incr t.frames_total ~by:(List.length frames);
  Metrics.Counter.incr t.bytes_total ~by:(String.length encoded);
  Smart_util.Tracelog.finish t.trace span;
  [
    Output.stream ~host:t.config.receiver.Output.host
      ~port:t.config.receiver.Output.port encoded;
  ]

(* Centralized-mode periodic tick. *)
let tick t =
  match t.config.mode with Centralized -> push t | Distributed -> []

(* Distributed-mode pull request (a datagram on the transmitter port). *)
let handle_pull t ~data =
  match t.config.mode with
  | Distributed when String.equal data pull_request_magic ->
    Metrics.Counter.incr t.pulls_total;
    push t
  | Distributed -> []
  | Centralized -> []

let pushes t = Metrics.Counter.value t.pushes_total

let bytes_sent t = Metrics.Counter.value t.bytes_total
