(* The transmitter (§3.5.1): snapshots the monitor-side databases into
   three [type,size,data] frames and ships them to the receiver over a
   reliable stream.

   Centralized mode pushes on every tick; distributed mode stays passive
   and answers explicit pull requests from the wizard.

   Delivery failures (the driver could not reach the receiver) feed a
   bounded resend queue with exponential backoff: the failed payload is
   kept, ticks go quiet until the retry time, then the queue drains
   ahead of fresh pushes.  A success resets the backoff. *)

module Metrics = Smart_util.Metrics

type mode = Centralized | Distributed

let pull_request_magic = "SMART-PULL"

let default_resend_capacity = 8

type config = {
  mode : mode;
  order : Smart_proto.Endian.order;  (* must match the receiver's *)
  receiver : Output.address;
}

type t = {
  config : config;
  db : Status_db.t;
  monitor_name : string;
  summary : (unit -> Smart_proto.Digest.t) option;
      (* digest uplink: ship one Digest_db frame per push instead of the
         three database snapshots (a regional wizard feeding the
         federation root) *)
  sketches : (unit -> (string * Smart_util.Sketch.t) list) option;
      (* mergeable quantile sketches riding the same uplink as one
         Sketch_db frame per push when non-empty *)
  sketch_source : string;
      (* shard/monitor name stamped into the Sketch_db payload *)
  crc : bool;  (* append CRC-32 trailers to emitted frames *)
  trace : Smart_util.Tracelog.t;
  resend : string Queue.t;  (* encoded stream payloads awaiting resend *)
  resend_capacity : int;
  backoff : Smart_util.Backoff.t;
  mutable retry_at : float option;  (* quiet until then after a failure *)
  pushes_total : Metrics.Counter.t;
  bytes_total : Metrics.Counter.t;
  frames_total : Metrics.Counter.t;
  pulls_total : Metrics.Counter.t;
  send_failures_total : Metrics.Counter.t;
  resends_total : Metrics.Counter.t;
  resend_dropped_total : Metrics.Counter.t;
  resend_queue_gauge : Metrics.Gauge.t;
  digest_pushes_total : Metrics.Counter.t;
  sketch_pushes_total : Metrics.Counter.t;
}

let create ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) ?(crc = false)
    ?(resend_capacity = default_resend_capacity)
    ?(backoff = Smart_util.Backoff.default) ?rng ?summary ?sketches
    ?(sketch_source = "") ~monitor_name config db =
  if resend_capacity < 0 then
    invalid_arg "Transmitter.create: negative resend_capacity";
  {
    config;
    db;
    monitor_name;
    summary;
    sketches;
    sketch_source;
    crc;
    trace;
    resend = Queue.create ();
    resend_capacity;
    backoff = Smart_util.Backoff.create ?rng backoff;
    retry_at = None;
    pushes_total =
      Metrics.counter metrics ~help:"database snapshots shipped"
        "transmitter.pushes_total";
    bytes_total =
      Metrics.counter metrics ~help:"encoded frame bytes shipped"
        "transmitter.bytes_total";
    frames_total =
      Metrics.counter metrics ~help:"frames shipped (three per push)"
        "transmitter.frames_total";
    pulls_total =
      Metrics.counter metrics ~help:"distributed-mode pull requests honoured"
        "transmitter.pulls_total";
    send_failures_total =
      Metrics.counter metrics ~help:"stream deliveries reported failed"
        "transmitter.send_failures_total";
    resends_total =
      Metrics.counter metrics ~help:"queued payloads re-sent after backoff"
        "transmitter.resends_total";
    resend_dropped_total =
      Metrics.counter metrics
        ~help:"queued payloads dropped by the resend bound (oldest first)"
        "transmitter.resend_dropped_total";
    resend_queue_gauge =
      Metrics.gauge metrics ~help:"payloads waiting in the resend queue"
        "transmitter.resend_queue";
    digest_pushes_total =
      Metrics.counter metrics
        ~help:"pushes that shipped a federation digest instead of snapshots"
        "transmitter.digest_pushes_total";
    sketch_pushes_total =
      Metrics.counter metrics
        ~help:"pushes that also shipped a quantile-sketch batch"
        "transmitter.sketch_pushes_total";
  }

let snapshot_db_frames ~trace t =
  let order = t.config.order in
  let sys_data =
    String.concat ""
      (List.map
         (Smart_proto.Records.encode_sys order)
         (Status_db.sys_records t.db))
  in
  let net_data =
    match Status_db.find_net t.db ~monitor:t.monitor_name with
    | Some record -> Smart_proto.Records.encode_net order record
    | None ->
      Smart_proto.Records.encode_net order
        { Smart_proto.Records.monitor = t.monitor_name; entries = [] }
  in
  let sec_data =
    Smart_proto.Records.encode_sec order (Status_db.sec_record t.db)
  in
  [
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Sys_db; data = sys_data;
      trace };
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Net_db; data = net_data;
      trace };
    { Smart_proto.Frame.payload_type = Smart_proto.Frame.Sec_db; data = sec_data;
      trace };
  ]

(* Sketch batch frame, when the uplink carries one and it is non-empty.
   It rides behind whatever frames the push already ships, through the
   same resend/backoff machinery. *)
let sketch_frames ~trace t =
  match t.sketches with
  | None -> []
  | Some sketches ->
    (match sketches () with
    | [] -> []
    | entries ->
      Metrics.Counter.incr t.sketch_pushes_total;
      [
        {
          Smart_proto.Frame.payload_type = Smart_proto.Frame.Sketch_db;
          data =
            Smart_proto.Sketch_msg.encode t.config.order
              { Smart_proto.Sketch_msg.shard = t.sketch_source; entries };
          trace;
        };
      ])

let snapshot_frames ?(trace = Smart_util.Tracelog.root) t =
  (match t.summary with
  | Some summary ->
    (* digest uplink: the shard's whole status plane compressed into one
       frame; the resend/backoff machinery below treats it like any
       other payload *)
    Metrics.Counter.incr t.digest_pushes_total;
    [
      {
        Smart_proto.Frame.payload_type = Smart_proto.Frame.Digest_db;
        data = Smart_proto.Digest.encode t.config.order (summary ());
        trace;
      };
    ]
  | None -> snapshot_db_frames ~trace t)
  @ sketch_frames ~trace t

(* The push span is parented on the database's last writer (typically a
   [sysmon.ingest] span), and its own context rides in the frames — this
   is the hop that carries the report pipeline's trace from the monitor
   machine to the wizard machine. *)
let push t =
  let span =
    Smart_util.Tracelog.start t.trace
      ~parent:(Status_db.last_trace t.db) "transmitter.push"
  in
  let frames =
    snapshot_frames ~trace:(Smart_util.Tracelog.ctx_of span) t
  in
  let encoded =
    String.concat ""
      (List.map (Smart_proto.Frame.encode ~crc:t.crc t.config.order) frames)
  in
  Metrics.Counter.incr t.pushes_total;
  Metrics.Counter.incr t.frames_total ~by:(List.length frames);
  Metrics.Counter.incr t.bytes_total ~by:(String.length encoded);
  Smart_util.Tracelog.finish t.trace span;
  [
    Output.stream ~host:t.config.receiver.Output.host
      ~port:t.config.receiver.Output.port encoded;
  ]

(* The driver reports a stream delivery it could not complete.  The
   payload joins the bounded resend queue (oldest entries fall out — a
   newer snapshot supersedes them anyway) and the next attempt waits out
   an exponential backoff. *)
let note_send_failure t ~now ~data =
  Metrics.Counter.incr t.send_failures_total;
  Smart_util.Tracelog.instant t.trace "transmitter.send_failure";
  Queue.add data t.resend;
  while Queue.length t.resend > t.resend_capacity do
    ignore (Queue.pop t.resend);
    Metrics.Counter.incr t.resend_dropped_total
  done;
  Metrics.Gauge.set t.resend_queue_gauge
    (float_of_int (Queue.length t.resend));
  t.retry_at <- Some (now +. Smart_util.Backoff.next t.backoff)

(* The driver reports a completed stream delivery: the receiver is
   reachable again, so the backoff resets. *)
let note_send_ok t =
  Smart_util.Backoff.reset t.backoff;
  t.retry_at <- None

let backing_off t ~now =
  match t.retry_at with Some at -> now < at | None -> false

(* Drain the resend queue into stream outputs (one attempt each; a
   failure re-queues through [note_send_failure]). *)
let drain_resend t =
  let outputs = ref [] in
  while not (Queue.is_empty t.resend) do
    let data = Queue.pop t.resend in
    Metrics.Counter.incr t.resends_total;
    outputs :=
      Output.stream ~host:t.config.receiver.Output.host
        ~port:t.config.receiver.Output.port data
      :: !outputs
  done;
  Metrics.Gauge.set t.resend_queue_gauge 0.0;
  List.rev !outputs

(* Periodic tick: quiet while backing off after a failure; otherwise
   queued resends first, then (centralized mode) a fresh push. *)
let tick t ~now =
  if backing_off t ~now then []
  else begin
    t.retry_at <- None;
    let resends = drain_resend t in
    match t.config.mode with
    | Centralized -> resends @ push t
    | Distributed -> resends
  end

(* Distributed-mode pull request (a datagram on the transmitter port). *)
let handle_pull t ~data =
  match t.config.mode with
  | Distributed when String.equal data pull_request_magic ->
    Metrics.Counter.incr t.pulls_total;
    push t
  | Distributed -> []
  | Centralized -> []

let pushes t = Metrics.Counter.value t.pushes_total

let bytes_sent t = Metrics.Counter.value t.bytes_total

let send_failures t = Metrics.Counter.value t.send_failures_total

let resends t = Metrics.Counter.value t.resends_total

let digest_pushes t = Metrics.Counter.value t.digest_pushes_total

let resend_queue_length t = Queue.length t.resend
