(* The federation root (DESIGN.md §13): the top of the aggregation tree.
   Clients speak the ordinary wizard protocol to it; behind the scenes it
   fans each request out to the regional (shard) wizards as subqueries,
   merges their ranked candidate lists into exactly the flat ranking, and
   answers once every targeted shard replied or the fan-out deadline
   passed.

   Digest-based routing: shard transmitters ship column-range digests up
   the tree; when a requirement's top-level comparisons are provably
   unsatisfiable against a shard's digest (no server of that shard can
   qualify), the subquery to that shard is skipped.  The analysis is
   conservative — anything it cannot prove keeps the shard in the
   fan-out — and exactly as fresh as the last digest: a skip can miss
   servers that arrived within one digest-uplink interval, the same
   staleness class as the receiver mirror itself. *)

module Metrics = Smart_util.Metrics

type shard = { name : string; addr : Output.address }

type config = {
  shards : shard list;
  fanout_timeout : float;
  routing : bool;
}

(* One client request in flight: the subqueries still awaited and the
   shard replies already collected.  The queue preserves arrival order,
   so deadline sweeps release requests deterministically. *)
type pending = {
  seq : int;  (* root-chosen subquery id, the pending-table key *)
  client : Output.address;
  client_seq : int;
  wanted : int;
  mutable awaiting : int;
  mutable got : (string * Smart_proto.Fed_msg.reply) list;
  deadline : float;
  started : float;
  span : Smart_util.Tracelog.span;
  parent : Smart_util.Tracelog.ctx;
  fanout_span : Smart_util.Tracelog.span;
  mutable done_ : bool;
}

type t = {
  config : config;
  clock : unit -> float;
  trace : Smart_util.Tracelog.t;
  compile_cache :
    (Smart_lang.Ast.program, Smart_lang.Requirement.compile_error) result
    Smart_util.Lru.t;
  digests : (string, Smart_proto.Digest.t) Hashtbl.t;
  sketches : (string, (string * Smart_util.Sketch.t) list) Hashtbl.t;
      (* latest sketch batch per shard, keyed by shard name *)
  pending : (int, pending) Hashtbl.t;  (* subquery seq -> request *)
  order : pending Queue.t;  (* arrival order, for deadline sweeps *)
  mutable next_seq : int;
  requests_total : Metrics.Counter.t;
  subqueries_total : Metrics.Counter.t;
  fanouts_total : Metrics.Counter.t;
  routed_total : Metrics.Counter.t;
  shards_skipped_total : Metrics.Counter.t;
  shard_replies_total : Metrics.Counter.t;
  timeouts_total : Metrics.Counter.t;
  merges_total : Metrics.Counter.t;
  compile_errors_total : Metrics.Counter.t;
  degraded_replies_total : Metrics.Counter.t;
  pending_gauge : Metrics.Gauge.t;
  request_latency : Metrics.Histogram.t;
  sketch_updates_total : Metrics.Counter.t;
  fed_p50_gauge : Metrics.Gauge.t;
  fed_p95_gauge : Metrics.Gauge.t;
  fed_p99_gauge : Metrics.Gauge.t;
  mutable last_result : string list option;
}

(* The shard-side metric whose sketch the root aggregates into the
   deployment-wide latency gauges. *)
let latency_metric = "wizard.request_latency_seconds"


let default_compile_cache_capacity = 128

let create ?(metrics = Metrics.create ()) ?(clock = fun () -> 0.)
    ?(trace = Smart_util.Tracelog.disabled)
    ?(compile_cache_capacity = default_compile_cache_capacity) config =
  if config.fanout_timeout <= 0.0 then
    invalid_arg "Fed_root.create: fanout_timeout must be positive";
  if config.shards = [] then invalid_arg "Fed_root.create: no shards";
  {
    config;
    clock;
    trace;
    compile_cache = Smart_util.Lru.create ~capacity:compile_cache_capacity;
    digests = Hashtbl.create 8;
    sketches = Hashtbl.create 8;
    pending = Hashtbl.create 16;
    order = Queue.create ();
    next_seq = 1;
    requests_total =
      Metrics.counter metrics ~help:"client requests decoded at the root"
        "federation.requests_total";
    subqueries_total =
      Metrics.counter metrics ~help:"subqueries sent to shard wizards"
        "federation.subqueries_total";
    fanouts_total =
      Metrics.counter metrics
        ~help:"requests fanned out to every shard (no routing cut)"
        "federation.fanouts_total";
    routed_total =
      Metrics.counter metrics
        ~help:"requests whose fan-out was narrowed by digest routing"
        "federation.routed_total";
    shards_skipped_total =
      Metrics.counter metrics
        ~help:"subqueries skipped because a digest proved them empty"
        "federation.shards_skipped_total";
    shard_replies_total =
      Metrics.counter metrics ~help:"shard replies received and matched"
        "federation.shard_replies_total";
    timeouts_total =
      Metrics.counter metrics
        ~help:"requests answered at the fan-out deadline with partial replies"
        "federation.timeouts_total";
    merges_total =
      Metrics.counter metrics ~help:"cross-shard merges performed"
        "federation.merges_total";
    compile_errors_total =
      Metrics.counter metrics
        ~help:"requests whose requirement failed to compile at the root"
        "federation.compile_errors_total";
    degraded_replies_total =
      Metrics.counter metrics
        ~help:"root replies flagged degraded (shard stale or fan-out partial)"
        "federation.degraded_replies_total";
    pending_gauge =
      Metrics.gauge metrics ~help:"client requests awaiting shard replies"
        "federation.pending";
    request_latency =
      Metrics.histogram metrics
        ~help:"root request wall time, seconds (decode to merged reply)"
        "federation.request_latency_seconds";
    sketch_updates_total =
      Metrics.counter metrics
        ~help:"shard sketch batches folded into the root's store"
        "federation.sketch_updates_total";
    fed_p50_gauge =
      Metrics.gauge metrics
        ~help:"deployment-wide request-latency p50, merged shard sketches"
        "federation.fed_latency_p50_s";
    fed_p95_gauge =
      Metrics.gauge metrics
        ~help:"deployment-wide request-latency p95, merged shard sketches"
        "federation.fed_latency_p95_s";
    fed_p99_gauge =
      Metrics.gauge metrics
        ~help:"deployment-wide request-latency p99, merged shard sketches"
        "federation.fed_latency_p99_s";
    last_result = None;
  }

(* Shard digests arrive through the root receiver's digest hook. *)
let note_digest t (d : Smart_proto.Digest.t) =
  Hashtbl.replace t.digests d.Smart_proto.Digest.shard d

let digest_count t = Hashtbl.length t.digests

(* ------------------------------------------------------------------ *)
(* Sketch plane                                                         *)
(* ------------------------------------------------------------------ *)

(* Deployment-wide view of one metric: the merge of every shard's
   latest sketch under that name.  Shards are folded in sorted-name
   order — merge is commutative so the result is order-independent,
   but the fold order being fixed keeps even the PRNG-state combination
   reproducible. *)
let merged_sketch t name =
  let shards =
    List.sort String.compare
      (Hashtbl.fold (fun shard _ acc -> shard :: acc) t.sketches [])
  in
  List.fold_left
    (fun acc shard ->
      match Hashtbl.find_opt t.sketches shard with
      | None -> acc
      | Some entries ->
        (match List.assoc_opt name entries with
        | None -> acc
        | Some sk ->
          (match acc with
          | None -> Some (Smart_util.Sketch.copy sk)
          | Some m -> Some (Smart_util.Sketch.merge m sk))))
    None shards

(* Shard sketch batches arrive through the root receiver's sketch hook.
   Every update refreshes the deployment-wide latency gauges from the
   merged view, so a SMART-METRICS scrape of the root always reads
   current federation quantiles. *)
let note_sketches t (batch : Smart_proto.Sketch_msg.t) =
  Hashtbl.replace t.sketches batch.Smart_proto.Sketch_msg.shard
    batch.Smart_proto.Sketch_msg.entries;
  Metrics.Counter.incr t.sketch_updates_total;
  (match merged_sketch t latency_metric with
  | Some m when Smart_util.Sketch.count m > 0 ->
    Metrics.Gauge.set t.fed_p50_gauge (Smart_util.Sketch.quantile m 0.5);
    Metrics.Gauge.set t.fed_p95_gauge (Smart_util.Sketch.quantile m 0.95);
    Metrics.Gauge.set t.fed_p99_gauge (Smart_util.Sketch.quantile m 0.99)
  | Some _ | None -> ());
  Smart_util.Tracelog.instant t.trace "federation.sketch_merge"

let sketch_shard_count t = Hashtbl.length t.sketches

(* ------------------------------------------------------------------ *)
(* Digest routing                                                       *)
(* ------------------------------------------------------------------ *)

(* Interval satisfiability of [x op c] for x in [lo, hi]. *)
let interval_sat op ~lo ~hi c =
  match (op : Smart_lang.Ast.cmp_op) with
  | Smart_lang.Ast.Lt -> lo < c
  | Smart_lang.Ast.Le -> lo <= c
  | Smart_lang.Ast.Gt -> hi > c
  | Smart_lang.Ast.Ge -> hi >= c
  | Smart_lang.Ast.Eq -> lo <= c && c <= hi
  | Smart_lang.Ast.Ne -> not (lo = c && hi = c)

let flip op =
  match (op : Smart_lang.Ast.cmp_op) with
  | Smart_lang.Ast.Lt -> Smart_lang.Ast.Gt
  | Smart_lang.Ast.Le -> Smart_lang.Ast.Ge
  | Smart_lang.Ast.Gt -> Smart_lang.Ast.Lt
  | Smart_lang.Ast.Ge -> Smart_lang.Ast.Le
  | Smart_lang.Ast.Eq -> Smart_lang.Ast.Eq
  | Smart_lang.Ast.Ne -> Smart_lang.Ast.Ne

let rec unparen (e : Smart_lang.Ast.expr) =
  match e with Smart_lang.Ast.Paren e -> unparen e | e -> e

(* The digest's range summary for a status variable, if it carries one. *)
let stat_of_var (d : Smart_proto.Digest.t) var =
  match Smart_lang.Bytecode.column_of_var var with
  | None -> None
  | Some col ->
    if col < Smart_lang.Bytecode.sys_field_count then
      Some d.Smart_proto.Digest.sys.(col)
    else if col = Smart_lang.Bytecode.col_net_delay then
      Some d.Smart_proto.Digest.net_delay
    else if col = Smart_lang.Bytecode.col_net_bw then
      Some d.Smart_proto.Digest.net_bw
    else if col = Smart_lang.Bytecode.col_sec_level then
      Some d.Smart_proto.Digest.sec_level
    else None

(* Can some server of the digested shard satisfy [var op c]?  A row
   without the column faults the comparison (and so cannot qualify), so
   the answer is the interval test over the rows that carry it — and
   [false] outright when none do. *)
let constraint_sat d var op c =
  match stat_of_var d var with
  | None -> true  (* not a status variable: no range to test *)
  | Some (stat : Smart_proto.Digest.stat) ->
    stat.Smart_proto.Digest.present > 0
    && interval_sat op ~lo:stat.Smart_proto.Digest.lo
         ~hi:stat.Smart_proto.Digest.hi c

(* Test every analyzable top-level conjunct of one statement.  Only
   [var op constant] comparisons (either operand order, parentheses
   unwrapped) yield constraints; everything else contributes nothing —
   the analysis must never prove more than the evaluator would. *)
let rec conjuncts_sat d (e : Smart_lang.Ast.expr) =
  match unparen e with
  | Smart_lang.Ast.Logic (Smart_lang.Ast.And, a, b) ->
    conjuncts_sat d a && conjuncts_sat d b
  | Smart_lang.Ast.Cmp (op, a, b) ->
    (match (unparen a, unparen b) with
    | Smart_lang.Ast.Var v, Smart_lang.Ast.Number c -> constraint_sat d v op c
    | Smart_lang.Ast.Number c, Smart_lang.Ast.Var v ->
      constraint_sat d v (flip op) c
    | _ -> true)
  | _ -> true

(* A shard can be skipped only when its digest proves some required
   (logical) statement unsatisfiable for every server it holds.  Empty
   shards (zero servers) are skippable for any compilable requirement:
   they have nothing to contribute. *)
let shard_satisfiable d (program : Smart_lang.Ast.program) =
  d.Smart_proto.Digest.servers > 0
  && List.for_all
       (fun (s : Smart_lang.Ast.statement) ->
         (not (Smart_lang.Ast.is_logical s.Smart_lang.Ast.expr))
         || conjuncts_sat d s.Smart_lang.Ast.expr)
       program

(* ------------------------------------------------------------------ *)
(* Request path                                                         *)
(* ------------------------------------------------------------------ *)

let compile t source =
  let key = Smart_lang.Requirement.cache_key source in
  match Smart_util.Lru.find t.compile_cache key with
  | Some result -> result
  | None ->
    let result = Smart_lang.Requirement.compile source in
    Smart_util.Lru.add t.compile_cache key result;
    result

let reply_now t ~parent ~at ~client ~client_seq ~servers ~degraded =
  let span = Smart_util.Tracelog.start t.trace ?at ~parent "federation.reply" in
  if degraded then Metrics.Counter.incr t.degraded_replies_total;
  let reply =
    { Smart_proto.Wizard_msg.seq = client_seq; servers; degraded;
      rejected = false }
  in
  Smart_util.Tracelog.finish t.trace ?at span;
  [
    Output.udp ~host:client.Output.host ~port:client.Output.port
      (Smart_proto.Wizard_msg.encode_reply reply);
  ]

(* Merge the collected shard replies and answer the client.  [partial]
   marks a deadline release; the reply is degraded when the fan-out was
   partial or any shard answered degraded. *)
let finalize t p ~partial =
  p.done_ <- true;
  let finished = t.clock () in
  let at =
    if Smart_util.Tracelog.enabled t.trace then Some finished else None
  in
  Smart_util.Tracelog.finish t.trace ?at p.fanout_span;
  let merge_span =
    Smart_util.Tracelog.start t.trace ?at ~parent:p.parent "federation.merge"
  in
  Metrics.Counter.incr t.merges_total;
  let servers =
    Selection.merge_candidates ~wanted:p.wanted
      (List.map
         (fun (name, (r : Smart_proto.Fed_msg.reply)) ->
           (name, r.Smart_proto.Fed_msg.candidates))
         p.got)
  in
  Smart_util.Tracelog.finish t.trace ?at merge_span;
  let degraded =
    partial
    || List.exists
         (fun (_, (r : Smart_proto.Fed_msg.reply)) ->
           r.Smart_proto.Fed_msg.degraded)
         p.got
  in
  t.last_result <- Some servers;
  let outputs =
    reply_now t ~parent:p.parent ~at ~client:p.client ~client_seq:p.client_seq
      ~servers ~degraded
  in
  Smart_util.Tracelog.finish t.trace ?at p.span;
  Metrics.Histogram.observe t.request_latency (finished -. p.started);
  outputs

(* A client request: compile, route, fan out.  Subqueries carry the
   canonical requirement text, so every shard's compile cache derives
   the same key no matter how the client spelled the requirement. *)
let handle_request t ~now ~from data =
  match Smart_proto.Wizard_msg.decode_request data with
  | Error _ -> []  (* garbage datagram: drop silently *)
  | Ok request ->
    Metrics.Counter.incr t.requests_total;
    let started = t.clock () in
    let span =
      Smart_util.Tracelog.start t.trace ~at:started
        ~parent:request.Smart_proto.Wizard_msg.trace "federation.request"
    in
    let parent = Smart_util.Tracelog.ctx_of span in
    let at =
      if Smart_util.Tracelog.enabled t.trace then Some started else None
    in
    let source = request.Smart_proto.Wizard_msg.requirement in
    (match compile t source with
    | Error _ ->
      Metrics.Counter.incr t.compile_errors_total;
      let outputs =
        reply_now t ~parent ~at ~client:from
          ~client_seq:request.Smart_proto.Wizard_msg.seq ~servers:[]
          ~degraded:false
      in
      Smart_util.Tracelog.finish t.trace ?at span;
      Metrics.Histogram.observe t.request_latency (t.clock () -. started);
      outputs
    | Ok program ->
      let targets =
        if not t.config.routing then t.config.shards
        else
          List.filter
            (fun s ->
              match Hashtbl.find_opt t.digests s.name with
              | None -> true  (* no digest yet: nothing to prove, include *)
              | Some d -> shard_satisfiable d program)
            t.config.shards
      in
      let skipped = List.length t.config.shards - List.length targets in
      if skipped > 0 then begin
        Metrics.Counter.incr t.routed_total;
        Metrics.Counter.incr t.shards_skipped_total ~by:skipped
      end
      else Metrics.Counter.incr t.fanouts_total;
      if targets = [] then begin
        (* every shard provably empty for this requirement *)
        let outputs =
          reply_now t ~parent ~at ~client:from
            ~client_seq:request.Smart_proto.Wizard_msg.seq ~servers:[]
            ~degraded:false
        in
        Smart_util.Tracelog.finish t.trace ?at span;
        Metrics.Histogram.observe t.request_latency (t.clock () -. started);
        outputs
      end
      else begin
        let canonical = Smart_lang.Requirement.canonical source in
        let seq = t.next_seq in
        t.next_seq <- t.next_seq + 1;
        let fanout_span =
          Smart_util.Tracelog.start t.trace ?at ~parent "federation.fanout"
        in
        let fanout_ctx = Smart_util.Tracelog.ctx_of fanout_span in
        let p =
          {
            seq;
            client = from;
            client_seq = request.Smart_proto.Wizard_msg.seq;
            wanted = request.Smart_proto.Wizard_msg.server_num;
            awaiting = List.length targets;
            got = [];
            deadline = now +. t.config.fanout_timeout;
            started;
            span;
            parent;
            fanout_span;
            done_ = false;
          }
        in
        Hashtbl.replace t.pending seq p;
        Queue.add p t.order;
        Metrics.Gauge.set t.pending_gauge
          (float_of_int (Hashtbl.length t.pending));
        Metrics.Counter.incr t.subqueries_total ~by:(List.length targets);
        let query =
          {
            Smart_proto.Fed_msg.seq;
            wanted = request.Smart_proto.Wizard_msg.server_num;
            requirement = canonical;
            trace = fanout_ctx;
          }
        in
        let encoded = Smart_proto.Fed_msg.encode_query query in
        List.map
          (fun s ->
            Output.udp ~host:s.addr.Output.host ~port:s.addr.Output.port
              encoded)
          targets
      end)

(* A shard's subquery reply.  The last awaited reply releases the
   request; stragglers after a deadline release (or duplicates) are
   dropped by the [done_] check. *)
let handle_reply t data =
  match Smart_proto.Fed_msg.decode_reply data with
  | Error _ -> []
  | Ok reply ->
    (match Hashtbl.find_opt t.pending reply.Smart_proto.Fed_msg.seq with
    | None -> []
    | Some p when p.done_ -> []
    | Some p ->
      Metrics.Counter.incr t.shard_replies_total;
      p.got <- (reply.Smart_proto.Fed_msg.shard, reply) :: p.got;
      p.awaiting <- p.awaiting - 1;
      if p.awaiting > 0 then []
      else begin
        Hashtbl.remove t.pending reply.Smart_proto.Fed_msg.seq;
        Metrics.Gauge.set t.pending_gauge
          (float_of_int (Hashtbl.length t.pending));
        finalize t p ~partial:false
      end)

(* Deadline sweep: release requests whose fan-out window closed with
   replies still missing.  The arrival-order queue makes the release
   order deterministic; finished requests just fall off its head. *)
let tick t ~now =
  let outputs = ref [] in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.order with
    | Some p when p.done_ -> ignore (Queue.pop t.order)
    | Some p when now >= p.deadline ->
      ignore (Queue.pop t.order);
      Metrics.Counter.incr t.timeouts_total;
      Hashtbl.remove t.pending p.seq;
      Metrics.Gauge.set t.pending_gauge
        (float_of_int (Hashtbl.length t.pending));
      outputs := !outputs @ finalize t p ~partial:true
    | Some _ | None -> continue := false
  done;
  !outputs

let pending_count t = Hashtbl.length t.pending

let requests_handled t = Metrics.Counter.value t.requests_total

let subqueries_sent t = Metrics.Counter.value t.subqueries_total

let shards_skipped t = Metrics.Counter.value t.shards_skipped_total

let shard_replies t = Metrics.Counter.value t.shard_replies_total

let timeouts t = Metrics.Counter.value t.timeouts_total

let compile_errors t = Metrics.Counter.value t.compile_errors_total

let degraded_replies t = Metrics.Counter.value t.degraded_replies_total

let request_latency_summary t = Metrics.histogram_summary t.request_latency

let last_result t = t.last_result
