(** The session plane (DESIGN.md §15): client-side socket state machine
    for long-lived use of the smart socket — a bounded per-peer
    connection pool, keep-alive bookkeeping on the injected clock, and
    mid-session migration when a held server's status falls below the
    session's requirement.

    Sans-IO: this module owns states, metrics ([session.*], see
    OBSERVABILITY.md) and trace spans; drivers (the simulation session
    workload, the realnet {!Smart_realnet.Client_io} pool) perform the
    actual connects, transfers and probes and report outcomes back.
    Everything is deterministic — iteration over the pool is sorted, the
    clock is injected, no randomness is drawn. *)

(** {1 The connection pool} *)

(** Per-peer lifecycle.  [Draining] refuses new binds and closes once
    its in-flight work resolves. *)
type conn_state = Connecting | Established | Draining | Closed

val pp_conn_state : Format.formatter -> conn_state -> unit

(** One pooled connection: at most one per peer host. *)
type conn

type pool

val default_capacity : int
(** 16 pooled connections. *)

val default_keepalive_interval : float
(** 5 s of quiet before a probe is due. *)

val default_keepalive_limit : int
(** 3 consecutive missed probes declare the peer dead. *)

(** [pool ?metrics ?trace ?capacity ?keepalive_interval ?keepalive_limit
    ?on_evict ~clock ()] builds a pool.  [capacity] bounds the table — a
    bind finding it full first evicts the least recently used idle entry
    (deterministically: LRU stamp, ties by host); when every entry is
    busy the pool overflows rather than failing, visible in the
    [session.pool_size] gauge.  [on_evict] is called with each entry the
    pool decides to forget (LRU eviction), so a realnet driver can close
    the underlying socket.  [clock] is the engine's virtual clock in
    simulation, [Unix.gettimeofday] in realnet.  Raises
    [Invalid_argument] on non-positive parameters. *)
val pool :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  ?capacity:int ->
  ?keepalive_interval:float ->
  ?keepalive_limit:int ->
  ?on_evict:(conn -> unit) ->
  clock:(unit -> float) ->
  unit ->
  pool

val conn_host : conn -> string

val conn_state : conn -> conn_state

(** Work items issued on this connection and not yet resolved. *)
val in_flight : conn -> int

(** Entries currently pooled (may exceed capacity while all are busy). *)
val pool_size : pool -> int

(** The driver finished the handshake: [Connecting] -> [Established].
    No-op in any other state. *)
val established : pool -> conn -> unit

(** Close immediately and forget the entry, in-flight work and all —
    crash handling.  Work counters on the forgotten record still
    resolve; they just no longer affect the pool. *)
val close : pool -> conn -> unit

(** Stop new binds and close once idle — graceful handover.  An entry
    that is already idle closes immediately. *)
val drain : pool -> conn -> unit

(** {1 Sessions} *)

(** [Selecting] = asking the wizard; [Migrating] = replacement being
    established while the old server is still held. *)
type session_state = Idle | Selecting | Active | Migrating | Failed

val pp_session_state : Format.formatter -> session_state -> unit

type session

(** A fresh [Idle] session named [name] (bumps the [session.sessions]
    gauge). *)
val session : pool -> name:string -> session

val session_state : session -> session_state

val session_name : session -> string

(** The connection the session is bound to, when [Active]/[Migrating]. *)
val session_conn : session -> conn option

(** Completed migrations of this session. *)
val session_migrations : session -> int

(** Work items this session completed. *)
val session_completed : session -> int

(** The session is asking the wizard for a server.  Raises
    [Invalid_argument] when already bound. *)
val selecting : session -> unit

(** Low-level pool entry point for drivers that manage their own
    transport state per connection (the realnet socket pool): the same
    reuse-or-open and reference accounting {!bind} performs, without a
    session.  Pair with {!release}. *)
val acquire : pool -> host:string -> conn

(** Drop one {!acquire} (or session) reference; an idle fully-drained
    entry stays pooled for reuse. *)
val release : pool -> conn -> unit

(** [bind pool s ~host ~origin] binds the wizard's pick: reuses the
    pooled connection to [host] when one is live
    ([session.pool_reused_total]) or opens a fresh [Connecting] one
    ([session.pool_opened_total], evicting an idle LRU entry if the pool
    is full).  [origin] is the context of the [client.request] span that
    selected the server; migration spans parent on it.  Session becomes
    [Active].  Raises [Invalid_argument] unless [Idle]/[Selecting]. *)
val bind :
  pool -> session -> host:string -> origin:Smart_util.Tracelog.ctx -> conn

(** {1 Work accounting}

    The driver owns the work items; the pool tracks their counts, so a
    drained connection knows when it is empty and the chaos test can
    assert zero loss. *)

(** A work item went out on [conn] ([session.work_issued_total]). *)
val work_started : pool -> session -> conn -> unit

(** The item completed ([session.work_completed_total]); a draining
    connection whose last item this was closes. *)
val work_done : pool -> session -> conn -> unit

(** The item did not complete on this connection (crash, partition,
    drain cut-over); the driver requeues it for re-issue after migration
    ([session.work_requeued_total]) — requeued, never lost. *)
val work_requeued : pool -> session -> conn -> unit

(** [count] items were abandoned outright ([session.work_lost_total]) —
    the failure budget the chaos acceptance test pins at zero. *)
val work_lost : pool -> count:int -> unit

(** {1 Migration}

    When the session's watcher sees the held server no longer satisfy
    the requirement (status generation moved and re-selection excludes
    it, or the connection died), the driver re-asks the wizard and hands
    over here. *)

(** Start a migration: [Active] -> [Migrating], opens the
    [session.migrate] span parented on the binding's origin context.
    Raises [Invalid_argument] unless [Active]. *)
val begin_migration : pool -> session -> unit

(** The replacement is bound: observes
    [session.migration_latency_seconds] (start to here), bumps
    [session.migrations_total], closes the span, binds [host] (pool
    reuse as in {!bind}) and drains the old connection — its in-flight
    work resolves before it closes.  Returns the new connection.
    Raises [Invalid_argument] unless [Migrating]. *)
val complete_migration :
  pool -> session -> host:string -> origin:Smart_util.Tracelog.ctx -> conn

(** No replacement could be bound (wizard unreachable, admission shed
    the re-ask, nothing qualified): back to [Active] on the held server,
    [session.migration_failures_total] bumped and a
    [session.migrate_failed] instant recorded; the driver backs off
    ({!Smart_util.Backoff}) before retrying. *)
val abandon_migration : pool -> session -> reason:string -> unit

(** Graceful end: release the connection back to the pool (idle entries
    stay pooled for reuse), close any open migration span, back to
    [Idle], [session.sessions] gauge decremented. *)
val retire : pool -> session -> unit

(** {1 Keep-alive}

    The driver probes; the pool decides who is due and keeps the miss
    counts. *)

(** Established entries quiet for at least the keep-alive interval,
    sorted by host — the deterministic probe order. *)
val keepalive_due : pool -> now:float -> conn list

(** A probe went out ([session.keepalive_probes_total]). *)
val keepalive_sent : pool -> conn -> unit

(** The probe was answered: miss count resets, activity stamped. *)
val keepalive_ok : pool -> conn -> unit

(** The probe went unanswered; at the limit the peer is declared dead,
    the entry closed ([session.keepalive_failures_total]) — sessions
    bound to it observe [Closed] and migrate. *)
val keepalive_miss : pool -> conn -> unit
