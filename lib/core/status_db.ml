(* The status databases of Fig 3.10 — the in-memory equivalent of the
   System V shared memory segments.  One instance lives on the monitor
   machine (written by the three monitors, read by the transmitter) and
   one on the wizard machine (written by the receiver, read by the
   wizard).

   The store is versioned and indexed so readers never rescan:

   - a monotonic [generation] counter is bumped by every mutating write
     (and by sweeps only when they actually removed something), letting
     readers memoize derived views and invalidate them precisely;
   - a peer -> (monitor, entry) secondary index is maintained
     incrementally by [update_net], making [net_entry_for] an O(1)
     lookup instead of a scan over every monitor's entry list;
   - the sorted [sys_records] list is computed once per generation and
     reused (physically equal) until the next write;
   - a columnar snapshot ([columns]) of the whole status plane — the
     structure-of-arrays the wizard's bytecode interpreter scans — is
     maintained incrementally: an in-place system update dirties only
     its own row, and a full rebuild happens only on membership, network
     or security changes. *)

type column_view = {
  cols : Smart_lang.Bytecode.columns;
  hosts : string array;  (* dense row -> host name, scan (sorted) order *)
  ips : string array;    (* dense row -> IP *)
}

(* What the last [columns] call did, for the wizard's rebuild counter
   and the bench's refresh accounting. *)
type refresh = Cached | Refreshed of int | Rebuilt

type t = {
  sys : (string, Smart_proto.Records.sys_record) Hashtbl.t;  (* by host *)
  net : (string, Smart_proto.Records.net_record) Hashtbl.t;  (* by monitor *)
  sec : (string, int) Hashtbl.t;                             (* host -> level *)
  peer_index :
    (string, (string * Smart_proto.Records.net_entry) list) Hashtbl.t;
      (* target peer -> entries about it, tagged by reporting monitor *)
  mutable generation : int;
  mutable sys_cache : (int * Smart_proto.Records.sys_record list) option;
      (* (generation, sorted records) of the last [sys_records] call *)
  mutable last_trace : Smart_util.Tracelog.ctx;
      (* context of the ingest that last wrote the system table; the
         transmitter parents its push spans here so the monitor-side
         trace stays causally connected to the frames it sends *)
  (* --- columnar snapshot state --- *)
  mutable cview : column_view option;
  mutable cgen : int;  (* generation [cview] matches; -1 = never built *)
  crow : (string, int) Hashtbl.t;  (* host -> dense row of [cview] *)
  cdirty : (string, unit) Hashtbl.t;  (* hosts updated in place since *)
  mutable cstructural : bool;
      (* membership / network / security changed: next [columns] call
         must rebuild rather than refresh rows *)
  mutable clast : refresh;
}

let create () =
  {
    sys = Hashtbl.create 32;
    net = Hashtbl.create 8;
    sec = Hashtbl.create 32;
    peer_index = Hashtbl.create 64;
    generation = 0;
    sys_cache = None;
    last_trace = Smart_util.Tracelog.root;
    cview = None;
    cgen = -1;
    crow = Hashtbl.create 32;
    cdirty = Hashtbl.create 16;
    cstructural = true;
    clast = Rebuilt;
  }

let set_last_trace t ctx = t.last_trace <- ctx

let last_trace t = t.last_trace

let generation t = t.generation

let bump t = t.generation <- t.generation + 1

(* Columnar-snapshot bookkeeping: an in-place update of a known host
   dirties one row; anything else (new host, removal, network or
   security write) forces a rebuild. *)
let note_sys_write t ~host =
  if Hashtbl.mem t.sys host then begin
    if not t.cstructural then Hashtbl.replace t.cdirty host ()
  end
  else t.cstructural <- true

let note_structural t = t.cstructural <- true

let update_sys t (record : Smart_proto.Records.sys_record) =
  let host =
    record.Smart_proto.Records.report.Smart_proto.Report.host
  in
  note_sys_write t ~host;
  Hashtbl.replace t.sys host record;
  bump t

(* Batched write for the receiver's frame application: one snapshot of n
   records costs one generation, so readers memoizing on the generation
   rebuild once per frame, not once per record. *)
let update_sys_many t records =
  match records with
  | [] -> ()
  | records ->
    List.iter
      (fun (r : Smart_proto.Records.sys_record) ->
        let host =
          r.Smart_proto.Records.report.Smart_proto.Report.host
        in
        note_sys_write t ~host;
        Hashtbl.replace t.sys host r)
      records;
    bump t

let find_sys t ~host = Hashtbl.find_opt t.sys host

let sys_records t =
  match t.sys_cache with
  | Some (g, records) when g = t.generation -> records
  | _ ->
    let records =
      Hashtbl.fold (fun _ r acc -> r :: acc) t.sys []
      |> List.sort (fun a b ->
             String.compare a.Smart_proto.Records.report.Smart_proto.Report.host
               b.Smart_proto.Records.report.Smart_proto.Report.host)
    in
    t.sys_cache <- Some (t.generation, records);
    records

(* Drop servers whose probe has stopped reporting (§3.2.2): records older
   than [max_age] (3 probe intervals by default in the drivers).  The
   generation moves only when a record was actually removed, so an idle
   periodic sweep does not invalidate readers' memoized views. *)
let sweep_sys_expired t ~now ~max_age =
  let stale =
    Hashtbl.fold
      (fun host r acc ->
        if now -. r.Smart_proto.Records.updated_at > max_age then host :: acc
        else acc)
      t.sys []
    |> List.sort String.compare
  in
  List.iter (Hashtbl.remove t.sys) stale;
  if stale <> [] then begin
    note_structural t;
    bump t
  end;
  stale

let sweep_sys t ~now ~max_age = List.length (sweep_sys_expired t ~now ~max_age)

(* Remove every peer-index contribution of [monitor]'s previous record. *)
let unindex_net t ~monitor (record : Smart_proto.Records.net_record) =
  List.iter
    (fun (e : Smart_proto.Records.net_entry) ->
      match Hashtbl.find_opt t.peer_index e.Smart_proto.Records.peer with
      | None -> ()
      | Some entries ->
        (match
           List.filter (fun (m, _) -> not (String.equal m monitor)) entries
         with
        | [] -> Hashtbl.remove t.peer_index e.Smart_proto.Records.peer
        | rest -> Hashtbl.replace t.peer_index e.Smart_proto.Records.peer rest))
    record.Smart_proto.Records.entries

let index_net t ~monitor (record : Smart_proto.Records.net_record) =
  List.iter
    (fun (e : Smart_proto.Records.net_entry) ->
      let previous =
        Option.value ~default:[]
          (Hashtbl.find_opt t.peer_index e.Smart_proto.Records.peer)
      in
      Hashtbl.replace t.peer_index e.Smart_proto.Records.peer
        ((monitor, e) :: previous))
    record.Smart_proto.Records.entries

let update_net t (record : Smart_proto.Records.net_record) =
  let monitor = record.Smart_proto.Records.monitor in
  (match Hashtbl.find_opt t.net monitor with
  | Some old -> unindex_net t ~monitor old
  | None -> ());
  Hashtbl.replace t.net monitor record;
  index_net t ~monitor record;
  note_structural t;
  bump t

let find_net t ~monitor = Hashtbl.find_opt t.net monitor

let net_records t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.net []
  |> List.sort (fun a b ->
         String.compare a.Smart_proto.Records.monitor b.Smart_proto.Records.monitor)

(* Network metrics toward a given target host.  When several monitors
   report the same peer the winner is deterministic regardless of
   insertion or hashtable order: freshest [measured_at] first, lowest
   monitor name on ties. *)
let net_entry_for t ~target =
  match Hashtbl.find_opt t.peer_index target with
  | None -> None
  | Some entries ->
    let better (m1, (e1 : Smart_proto.Records.net_entry)) (m2, e2) =
      if e1.Smart_proto.Records.measured_at > e2.Smart_proto.Records.measured_at
      then (m1, e1)
      else if
        e1.Smart_proto.Records.measured_at < e2.Smart_proto.Records.measured_at
      then (m2, e2)
      else if String.compare m1 m2 <= 0 then (m1, e1)
      else (m2, e2)
    in
    (match entries with
    | [] -> None
    | first :: rest -> Some (snd (List.fold_left better first rest)))

let replace_sec t (record : Smart_proto.Records.sec_record) =
  Hashtbl.reset t.sec;
  List.iter
    (fun e ->
      Hashtbl.replace t.sec e.Smart_proto.Records.host
        e.Smart_proto.Records.level)
    record.Smart_proto.Records.entries;
  note_structural t;
  bump t

let security_level t ~host = Hashtbl.find_opt t.sec host

let sec_record t =
  {
    Smart_proto.Records.entries =
      Hashtbl.fold
        (fun host level acc ->
          { Smart_proto.Records.host; level } :: acc)
        t.sec []
      |> List.sort (fun a b ->
             String.compare a.Smart_proto.Records.host b.Smart_proto.Records.host);
  }

(* ------------------------------------------------------------------ *)
(* Columnar snapshot                                                    *)
(* ------------------------------------------------------------------ *)

module B = Smart_lang.Bytecode

(* The 22 system-field readers in column order, resolved once: the
   column contents agree with the reference evaluator's binding by
   construction ([Report.reader] is [Report.variable] by name). *)
let sys_readers =
  Array.map
    (fun name ->
      match Smart_proto.Report.reader name with
      | Some f -> f
      | None -> assert false (* sys_fields ⊆ Report.variable's domain *))
    B.sys_fields

let fill_sys_row (cols : B.columns) ~row (report : Smart_proto.Report.t) =
  for field = 0 to Array.length sys_readers - 1 do
    Bigarray.Array2.set cols.B.sys field row (sys_readers.(field) report)
  done

let fill_net_row (cols : B.columns) ~row entry =
  match entry with
  | Some (e : Smart_proto.Records.net_entry) ->
    Bigarray.Array1.set cols.B.net_delay row
      (Smart_util.Units.s_to_ms e.Smart_proto.Records.delay);
    Bigarray.Array1.set cols.B.net_bw row
      (Smart_util.Units.bytes_per_sec_to_mbps e.Smart_proto.Records.bandwidth);
    Bigarray.Array1.set cols.B.has_net row 1
  | None ->
    Bigarray.Array1.set cols.B.net_delay row 0.0;
    Bigarray.Array1.set cols.B.net_bw row 0.0;
    Bigarray.Array1.set cols.B.has_net row 0

let fill_sec_row (cols : B.columns) ~row level =
  match level with
  | Some l ->
    Bigarray.Array1.set cols.B.sec_level row (float_of_int l);
    Bigarray.Array1.set cols.B.has_sec row 1
  | None ->
    Bigarray.Array1.set cols.B.sec_level row 0.0;
    Bigarray.Array1.set cols.B.has_sec row 0

let rebuild_columns t ~net_for =
  let records = sys_records t in
  let n = List.length records in
  let cols = B.create_columns n in
  let hosts = Array.make n "" and ips = Array.make n "" in
  Hashtbl.reset t.crow;
  List.iteri
    (fun row (r : Smart_proto.Records.sys_record) ->
      let report = r.Smart_proto.Records.report in
      let host = report.Smart_proto.Report.host in
      hosts.(row) <- host;
      ips.(row) <- report.Smart_proto.Report.ip;
      Hashtbl.replace t.crow host row;
      fill_sys_row cols ~row report;
      fill_net_row cols ~row (net_for host);
      fill_sec_row cols ~row (security_level t ~host))
    records;
  let view = { cols; hosts; ips } in
  t.cview <- Some view;
  t.clast <- Rebuilt;
  Hashtbl.reset t.cdirty;
  t.cstructural <- false;
  t.cgen <- t.generation;
  view

(* The columnar snapshot at the current generation.  Three speeds:
   unchanged data returns the memoized view untouched; in-place system
   updates refresh just the dirty rows; membership/network/security
   changes rebuild from scratch.  [net_for] resolves the network metrics
   toward a host (the wizard's group-aware lookup) and is only consulted
   on rebuilds — its answers must only change when the generation does,
   which holds because it reads this same database. *)
let columns t ~net_for =
  match t.cview with
  | Some view when t.cgen = t.generation ->
    t.clast <- Cached;
    view
  | Some view
    when (not t.cstructural)
         && Hashtbl.length t.sys = Array.length view.hosts
         && Hashtbl.fold (fun h () acc -> acc && Hashtbl.mem t.crow h)
              t.cdirty true ->
    (* deterministic row-refresh order, and no Hashtbl.iter while the
       loop writes other tables *)
    let dirty =
      List.sort String.compare
        (Hashtbl.fold (fun h () acc -> h :: acc) t.cdirty [])
    in
    List.iter
      (fun host ->
        match Hashtbl.find_opt t.sys host with
        | Some (r : Smart_proto.Records.sys_record) ->
          fill_sys_row view.cols ~row:(Hashtbl.find t.crow host)
            r.Smart_proto.Records.report
        | None -> ())
      dirty;
    t.clast <- Refreshed (List.length dirty);
    Hashtbl.reset t.cdirty;
    t.cgen <- t.generation;
    view
  | Some _ | None -> rebuild_columns t ~net_for

let columns_fresh t = t.cgen = t.generation && t.cview <> None

(* Shard digest for the federation uplink: column ranges folded straight
   off the columnar snapshot with imperative lo/hi/count loops (a digest
   per transmit interval must not allocate 22n stat records).  System
   columns always carry a value for present rows; net/sec are gated on
   their presence flags, matching what [run]/[run_sweep] can read. *)
let summary t ~shard ~net_for =
  let view = columns t ~net_for in
  let cols = view.cols in
  let n = cols.B.n in
  let nsys = B.sys_field_count in
  let sys =
    Array.init nsys (fun f ->
        if n = 0 then Smart_proto.Digest.empty_stat
        else begin
          let lo = ref infinity and hi = ref neg_infinity in
          for row = 0 to n - 1 do
            let v = Bigarray.Array2.get cols.B.sys f row in
            if v < !lo then lo := v;
            if v > !hi then hi := v
          done;
          { Smart_proto.Digest.present = n; lo = !lo; hi = !hi }
        end)
  in
  let gated flags column =
    let present = ref 0 and lo = ref infinity and hi = ref neg_infinity in
    for row = 0 to n - 1 do
      if Bigarray.Array1.get flags row <> 0 then begin
        incr present;
        let v = Bigarray.Array1.get column row in
        if v < !lo then lo := v;
        if v > !hi then hi := v
      end
    done;
    if !present = 0 then Smart_proto.Digest.empty_stat
    else { Smart_proto.Digest.present = !present; lo = !lo; hi = !hi }
  in
  {
    Smart_proto.Digest.shard;
    generation = t.generation;
    servers = n;
    sys;
    net_delay = gated cols.B.has_net cols.B.net_delay;
    net_bw = gated cols.B.has_net cols.B.net_bw;
    sec_level = gated cols.B.has_sec cols.B.sec_level;
  }

let last_refresh t = t.clast

let sys_count t = Hashtbl.length t.sys

let remove_sys t ~host =
  if Hashtbl.mem t.sys host then begin
    Hashtbl.remove t.sys host;
    note_structural t;
    bump t
  end
