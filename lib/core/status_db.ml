(* The status databases of Fig 3.10 — the in-memory equivalent of the
   System V shared memory segments.  One instance lives on the monitor
   machine (written by the three monitors, read by the transmitter) and
   one on the wizard machine (written by the receiver, read by the
   wizard).

   The store is versioned and indexed so readers never rescan:

   - a monotonic [generation] counter is bumped by every mutating write
     (and by sweeps only when they actually removed something), letting
     readers memoize derived views and invalidate them precisely;
   - a peer -> (monitor, entry) secondary index is maintained
     incrementally by [update_net], making [net_entry_for] an O(1)
     lookup instead of a scan over every monitor's entry list;
   - the sorted [sys_records] list is computed once per generation and
     reused (physically equal) until the next write. *)

type t = {
  sys : (string, Smart_proto.Records.sys_record) Hashtbl.t;  (* by host *)
  net : (string, Smart_proto.Records.net_record) Hashtbl.t;  (* by monitor *)
  sec : (string, int) Hashtbl.t;                             (* host -> level *)
  peer_index :
    (string, (string * Smart_proto.Records.net_entry) list) Hashtbl.t;
      (* target peer -> entries about it, tagged by reporting monitor *)
  mutable generation : int;
  mutable sys_cache : (int * Smart_proto.Records.sys_record list) option;
      (* (generation, sorted records) of the last [sys_records] call *)
  mutable last_trace : Smart_util.Tracelog.ctx;
      (* context of the ingest that last wrote the system table; the
         transmitter parents its push spans here so the monitor-side
         trace stays causally connected to the frames it sends *)
}

let create () =
  {
    sys = Hashtbl.create 32;
    net = Hashtbl.create 8;
    sec = Hashtbl.create 32;
    peer_index = Hashtbl.create 64;
    generation = 0;
    sys_cache = None;
    last_trace = Smart_util.Tracelog.root;
  }

let set_last_trace t ctx = t.last_trace <- ctx

let last_trace t = t.last_trace

let generation t = t.generation

let bump t = t.generation <- t.generation + 1

let update_sys t (record : Smart_proto.Records.sys_record) =
  Hashtbl.replace t.sys record.Smart_proto.Records.report.Smart_proto.Report.host
    record;
  bump t

(* Batched write for the receiver's frame application: one snapshot of n
   records costs one generation, so readers memoizing on the generation
   rebuild once per frame, not once per record. *)
let update_sys_many t records =
  match records with
  | [] -> ()
  | records ->
    List.iter
      (fun (r : Smart_proto.Records.sys_record) ->
        Hashtbl.replace t.sys r.Smart_proto.Records.report.Smart_proto.Report.host
          r)
      records;
    bump t

let find_sys t ~host = Hashtbl.find_opt t.sys host

let sys_records t =
  match t.sys_cache with
  | Some (g, records) when g = t.generation -> records
  | _ ->
    let records =
      Hashtbl.fold (fun _ r acc -> r :: acc) t.sys []
      |> List.sort (fun a b ->
             String.compare a.Smart_proto.Records.report.Smart_proto.Report.host
               b.Smart_proto.Records.report.Smart_proto.Report.host)
    in
    t.sys_cache <- Some (t.generation, records);
    records

(* Drop servers whose probe has stopped reporting (§3.2.2): records older
   than [max_age] (3 probe intervals by default in the drivers).  The
   generation moves only when a record was actually removed, so an idle
   periodic sweep does not invalidate readers' memoized views. *)
let sweep_sys_expired t ~now ~max_age =
  let stale =
    Hashtbl.fold
      (fun host r acc ->
        if now -. r.Smart_proto.Records.updated_at > max_age then host :: acc
        else acc)
      t.sys []
    |> List.sort String.compare
  in
  List.iter (Hashtbl.remove t.sys) stale;
  if stale <> [] then bump t;
  stale

let sweep_sys t ~now ~max_age = List.length (sweep_sys_expired t ~now ~max_age)

(* Remove every peer-index contribution of [monitor]'s previous record. *)
let unindex_net t ~monitor (record : Smart_proto.Records.net_record) =
  List.iter
    (fun (e : Smart_proto.Records.net_entry) ->
      match Hashtbl.find_opt t.peer_index e.Smart_proto.Records.peer with
      | None -> ()
      | Some entries ->
        (match
           List.filter (fun (m, _) -> not (String.equal m monitor)) entries
         with
        | [] -> Hashtbl.remove t.peer_index e.Smart_proto.Records.peer
        | rest -> Hashtbl.replace t.peer_index e.Smart_proto.Records.peer rest))
    record.Smart_proto.Records.entries

let index_net t ~monitor (record : Smart_proto.Records.net_record) =
  List.iter
    (fun (e : Smart_proto.Records.net_entry) ->
      let previous =
        Option.value ~default:[]
          (Hashtbl.find_opt t.peer_index e.Smart_proto.Records.peer)
      in
      Hashtbl.replace t.peer_index e.Smart_proto.Records.peer
        ((monitor, e) :: previous))
    record.Smart_proto.Records.entries

let update_net t (record : Smart_proto.Records.net_record) =
  let monitor = record.Smart_proto.Records.monitor in
  (match Hashtbl.find_opt t.net monitor with
  | Some old -> unindex_net t ~monitor old
  | None -> ());
  Hashtbl.replace t.net monitor record;
  index_net t ~monitor record;
  bump t

let find_net t ~monitor = Hashtbl.find_opt t.net monitor

let net_records t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.net []
  |> List.sort (fun a b ->
         String.compare a.Smart_proto.Records.monitor b.Smart_proto.Records.monitor)

(* Network metrics toward a given target host.  When several monitors
   report the same peer the winner is deterministic regardless of
   insertion or hashtable order: freshest [measured_at] first, lowest
   monitor name on ties. *)
let net_entry_for t ~target =
  match Hashtbl.find_opt t.peer_index target with
  | None -> None
  | Some entries ->
    let better (m1, (e1 : Smart_proto.Records.net_entry)) (m2, e2) =
      if e1.Smart_proto.Records.measured_at > e2.Smart_proto.Records.measured_at
      then (m1, e1)
      else if
        e1.Smart_proto.Records.measured_at < e2.Smart_proto.Records.measured_at
      then (m2, e2)
      else if String.compare m1 m2 <= 0 then (m1, e1)
      else (m2, e2)
    in
    (match entries with
    | [] -> None
    | first :: rest -> Some (snd (List.fold_left better first rest)))

let replace_sec t (record : Smart_proto.Records.sec_record) =
  Hashtbl.reset t.sec;
  List.iter
    (fun e ->
      Hashtbl.replace t.sec e.Smart_proto.Records.host
        e.Smart_proto.Records.level)
    record.Smart_proto.Records.entries;
  bump t

let security_level t ~host = Hashtbl.find_opt t.sec host

let sec_record t =
  {
    Smart_proto.Records.entries =
      Hashtbl.fold
        (fun host level acc ->
          { Smart_proto.Records.host; level } :: acc)
        t.sec []
      |> List.sort (fun a b ->
             String.compare a.Smart_proto.Records.host b.Smart_proto.Records.host);
  }

let sys_count t = Hashtbl.length t.sys

let remove_sys t ~host =
  if Hashtbl.mem t.sys host then begin
    Hashtbl.remove t.sys host;
    bump t
  end
