(** Simulation driver: deploys probes, monitors, transmitters, receiver
    and wizard onto a simulated cluster and routes component outputs over
    the packet plane.  Supports single-group (Fig 3.1) and multi-group
    (Fig 3.8) layouts. *)

type t

type config = {
  mode : Transmitter.mode;
  probe_interval : float;
  probe_transport : Probe.transport;
  transmit_interval : float;
  order : Smart_proto.Endian.order;
  security_log : string;  (** "" for no security data *)
  wizard_compile_cache : int;
      (** wizard requirement compile-cache capacity; 0 disables *)
  frame_crc : bool;
      (** CRC-32 trailers on transmitter frames, letting the receiver
          detect (and resync past) injected stream corruption *)
  wizard_staleness : float;
      (** receiver silence before the wizard flags replies degraded *)
  fed_fanout_timeout : float;
      (** federation root: seconds a request waits for shard replies
          before answering degraded with what arrived *)
  fed_routing : bool;
      (** federation root: skip shards whose digest proves the
          requirement unsatisfiable *)
  adaptive_probes : bool;
      (** arm {!Probe.adaptive}: probes self-schedule on their effective
          report interval instead of the fixed [probe_interval] cadence *)
  adaptive_quarantine : bool;
      (** arm {!Sysmon.flap_policy}: quarantine thresholds track the
          fleet's flap-score distribution *)
  adaptive_staleness : bool;
      (** arm {!Wizard.staleness_policy}: degraded mode tracks the
          observed inter-update gap distribution *)
  wizard_admission : Wizard.admission option;
      (** arm {!Wizard.admission}: per-client token buckets gate the
          request port (DESIGN.md §15); [None] leaves it ungated *)
}

(** Centralized, 2 s probe and transmit intervals, UDP reports,
    little-endian records, no frame CRC, no staleness degradation,
    1 s federation fan-out timeout with digest routing on, all three
    adaptive control loops off, admission control off. *)
val default_config : config

(** [deploy cluster ~monitor ~wizard_host ~servers] installs a
    single-group stack: probes on every host of [servers], monitors +
    transmitter on [monitor], receiver + wizard on [wizard_host].  The
    network monitor probes the servers directly. *)
val deploy :
  ?config:config ->
  Smart_host.Cluster.t ->
  monitor:string ->
  wizard_host:string ->
  servers:string list ->
  t

(** Multi-group deployment: one [(monitor_host, servers)] per group; the
    first group is the wizard's local group.  Network monitors probe
    their peer monitors (the Table 3.4 mesh) and the wizard binds
    monitor_network_* per group. *)
val deploy_groups :
  ?config:config ->
  Smart_host.Cluster.t ->
  wizard_host:string ->
  groups:(string * string list) list ->
  t

(** One regional shard of a federated deployment (exposed for tests and
    the federation bench). *)
type fed_shard = {
  shard_host : string;  (** runs the shard mirror + regional wizard *)
  shard_db : Status_db.t;  (** the mirror subqueries are answered from *)
  shard_receiver : Receiver.t;
  shard_wizard : Wizard.t;
  uplink : Transmitter.t;
      (** digest + sketch uplink to the root: every push ships the
          shard's column ranges, plus the shard wizard's latency sketch
          under {!Fed_root.latency_metric} once it has observations *)
}

type federation = { root : Fed_root.t; fed_shards : fed_shard list }

(** Federated deployment (DESIGN.md §13): an aggregation tree.  Each
    shard [(shard_host, groups)] is a complete {!deploy_groups}-style
    stack whose transmitters feed a mirror on [shard_host], where a
    regional wizard answers root subqueries on the federation port
    ({!Smart_proto.Ports.fed}); a digest uplink on [shard_host] ships
    the shard's column ranges to [root_host] every transmit interval.
    [root_host] runs the {!Fed_root}, listening for clients on the
    ordinary wizard port — {!request} drives a federated deployment
    unchanged.  Groups always run centralized (a passive transmitter
    would never be pulled); [fed_fanout_timeout] and [fed_routing] in
    [config] shape the root. *)
val deploy_federation :
  ?config:config ->
  Smart_host.Cluster.t ->
  root_host:string ->
  shards:(string * (string * string list) list) list ->
  t

(** The federation state of a {!deploy_federation} deployment; [None]
    for flat deployments. *)
val federation : t -> federation option

(** Run the simulation for [duration] virtual seconds (default 6) so the
    databases fill. *)
val settle : ?duration:float -> t -> unit

(** Sequential (delay, bandwidth) probing round of every group's network
    monitor, then an immediate push to the wizard side.  Advances
    virtual time.  Returns the first (local) group's record. *)
val refresh_netmon : ?trials:int -> t -> Smart_proto.Records.net_record

(** All groups' mesh records as mirrored on the wizard side. *)
val all_netmon_records : t -> Smart_proto.Records.net_record list

(** One smart-socket request from host [client]; returns the candidate
    host list or the client-side error.  The datagram is retransmitted
    (same sequence number) on per-attempt timeouts drawn from [backoff],
    up to [attempts] sends within the overall [timeout]; late duplicate
    replies are suppressed by the client library.  Runs entirely on
    virtual time. *)
val request :
  ?option:Smart_proto.Wizard_msg.option_flag ->
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:Smart_util.Backoff.policy ->
  t ->
  client:string ->
  wanted:int ->
  requirement:string ->
  (string list, Client.error) result

(** Callback-style twin of {!request} for code already running inside an
    engine callback ({!request} re-enters the engine and must not be
    called there).  Sends now, retransmits on engine timers, and calls
    the callback exactly once with the result.  Returns the request's
    trace context — the [client.request] span that {!Session.bind}
    takes as the binding's origin. *)
val async_request :
  ?option:Smart_proto.Wizard_msg.option_flag ->
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:Smart_util.Backoff.policy ->
  t ->
  client:string ->
  wanted:int ->
  requirement:string ->
  ((string list, Client.error) result -> unit) ->
  Smart_util.Tracelog.ctx

(** What {!run_sessions} observed, summed over all sessions. *)
type session_report = {
  sessions : int;
  survived : int;
      (** sessions bound to a live server at the end with nothing lost *)
  migrations : int;  (** completed mid-session migrations *)
  work_issued : int;  (** work items put on a connection, re-issues included *)
  work_completed : int;
  work_requeued : int;
      (** items pulled off a failed connection and re-issued later *)
  work_lost : int;  (** items never completed — the chaos gate pins this at 0 *)
}

(** Drive long-lived sessions (DESIGN.md §15) against the deployment:
    [clients] lists [(client_host, sessions_on_it)].  Every session asks
    the wizard for a server satisfying [requirement], binds it through a
    shared {!Session.pool}, and issues one synthetic work item per
    [work_interval] (each occupying the connection for [work_duration])
    until [duration] virtual seconds have passed, then drains.  A
    watcher per session checks every [check_interval]: a dead connection
    (crashed or partitioned server, keep-alive verdict), or — in flat
    deployments — a status-generation change under which
    {!Selection.select} no longer qualifies the held host, triggers a
    mid-session migration ({!Session.begin_migration} …
    {!Session.complete_migration}); in-flight items caught on the old
    connection are requeued and re-issued, never lost.  Admission
    rejections and failed migrations back off on [backoff].  Runs the
    engine (don't call from inside a callback) until everything drains
    or [drain_timeout] expires past the end. *)
val run_sessions :
  ?wanted:int ->
  ?option:Smart_proto.Wizard_msg.option_flag ->
  ?work_interval:float ->
  ?work_duration:float ->
  ?check_interval:float ->
  ?keepalive_interval:float ->
  ?request_timeout:float ->
  ?backoff:Smart_util.Backoff.policy ->
  ?drain_timeout:float ->
  t ->
  clients:(string * int) list ->
  requirement:string ->
  duration:float ->
  session_report

(** One [SMART-METRICS] scrape from host [client] over the packet plane:
    the wizard port (or the federation root's client port) answers the
    magic datagram with the deployment registry rendered in [format]
    (default [Text]).  In a federated deployment the dump includes the
    [federation.fed_latency_p{50,95,99}_s] gauges kept fresh from merged
    shard sketches — deployment-wide quantiles in one scrape.  Runs on
    virtual time. *)
val scrape_metrics :
  ?format:Smart_proto.Metrics_msg.format ->
  ?timeout:float ->
  t ->
  client:string ->
  (string, string) result

(** Silence a machine's probe (host failure). *)
val fail_machine : t -> host:string -> unit

val revive_machine : t -> host:string -> unit

(** Partition (or heal) every channel touching [host]. *)
val set_host_partitioned : t -> host:string -> bool -> unit

(** Partition (or heal) the channels directly connecting two adjacent
    nodes; no-op when they are not adjacent. *)
val set_link_partitioned : t -> a:string -> b:string -> bool -> unit

(** Inject (or lift, [host] matching a group's monitor) a monitor
    outage: the group's monitors and transmitter stop handling and
    ticking, as if the processes were stopped — the machine and its
    network stay up. *)
val set_monitor_down : t -> host:string -> bool -> unit

(** Per-message probability of corrupting one byte of a stream payload
    in flight (metered by [faults.corrupted_messages_total]).  Raises
    [Invalid_argument] outside [0, 1]. *)
val set_frame_corruption : t -> float -> unit

(** Carry out one fault action immediately (the effector behind
    {!install_faults}). *)
val apply_fault : t -> Smart_sim.Faults.action -> unit

(** Arm a {!Smart_sim.Faults.plan} on the deployment's engine: each
    event fires at its virtual time and is applied through
    {!apply_fault}, so same-seed chaos runs replay identically. *)
val install_faults : t -> Smart_sim.Faults.plan -> Smart_sim.Faults.t

(** [(messages, payload bytes)] sent so far by a component tag:
    "probe", "transmitter", "wizard", "client". *)
val traffic_stats : t -> string -> int * int

val db_wizard : t -> Status_db.t

(** The first (local) group's monitor-side database. *)
val db_monitor : t -> Status_db.t

val wizard_component : t -> Wizard.t

val receiver_component : t -> Receiver.t

(** The first (local) group's transmitter. *)
val transmitter_component : t -> Transmitter.t

val sysmon_component : t -> Sysmon.t

val group_count : t -> int

val cluster : t -> Smart_host.Cluster.t

(** The deployment-wide metrics registry: every component of every group
    (and the client library used by [request]) registers its instruments
    here, so same-named metrics aggregate across instances.  Snapshot it
    for deterministic end-to-end assertions (see OBSERVABILITY.md). *)
val metrics : t -> Smart_util.Metrics.t

(** The deployment-wide span recorder: every component of every group
    (and the client library used by [request]) records its spans here,
    stamped with the engine's virtual clock.  Always enabled — for a
    given seed the recorded spans, and hence {!trace_json}, are
    byte-for-byte deterministic. *)
val tracelog : t -> Smart_util.Tracelog.t

(** Chrome trace-event JSON of the whole deployment (load in Perfetto or
    chrome://tracing).  When the cluster was built with an attached
    {!Smart_sim.Trace.t}, its packet/timer events are merged in as
    instant events. *)
val trace_json : t -> string
