(** Simulation driver: deploys probes, monitors, transmitters, receiver
    and wizard onto a simulated cluster and routes component outputs over
    the packet plane.  Supports single-group (Fig 3.1) and multi-group
    (Fig 3.8) layouts. *)

type t

type config = {
  mode : Transmitter.mode;
  probe_interval : float;
  probe_transport : Probe.transport;
  transmit_interval : float;
  order : Smart_proto.Endian.order;
  security_log : string;  (** "" for no security data *)
  wizard_compile_cache : int;
      (** wizard requirement compile-cache capacity; 0 disables *)
}

(** Centralized, 2 s probe and transmit intervals, UDP reports,
    little-endian records. *)
val default_config : config

(** [deploy cluster ~monitor ~wizard_host ~servers] installs a
    single-group stack: probes on every host of [servers], monitors +
    transmitter on [monitor], receiver + wizard on [wizard_host].  The
    network monitor probes the servers directly. *)
val deploy :
  ?config:config ->
  Smart_host.Cluster.t ->
  monitor:string ->
  wizard_host:string ->
  servers:string list ->
  t

(** Multi-group deployment: one [(monitor_host, servers)] per group; the
    first group is the wizard's local group.  Network monitors probe
    their peer monitors (the Table 3.4 mesh) and the wizard binds
    monitor_network_* per group. *)
val deploy_groups :
  ?config:config ->
  Smart_host.Cluster.t ->
  wizard_host:string ->
  groups:(string * string list) list ->
  t

(** Run the simulation for [duration] virtual seconds (default 6) so the
    databases fill. *)
val settle : ?duration:float -> t -> unit

(** Sequential (delay, bandwidth) probing round of every group's network
    monitor, then an immediate push to the wizard side.  Advances
    virtual time.  Returns the first (local) group's record. *)
val refresh_netmon : ?trials:int -> t -> Smart_proto.Records.net_record

(** All groups' mesh records as mirrored on the wizard side. *)
val all_netmon_records : t -> Smart_proto.Records.net_record list

(** One smart-socket request from host [client]; returns the candidate
    host list or the client-side error. *)
val request :
  ?option:Smart_proto.Wizard_msg.option_flag ->
  ?timeout:float ->
  t ->
  client:string ->
  wanted:int ->
  requirement:string ->
  (string list, Client.error) result

(** Silence a machine's probe (host failure). *)
val fail_machine : t -> host:string -> unit

val revive_machine : t -> host:string -> unit

(** [(messages, payload bytes)] sent so far by a component tag:
    "probe", "transmitter", "wizard", "client". *)
val traffic_stats : t -> string -> int * int

val db_wizard : t -> Status_db.t

(** The first (local) group's monitor-side database. *)
val db_monitor : t -> Status_db.t

val wizard_component : t -> Wizard.t

val sysmon_component : t -> Sysmon.t

val group_count : t -> int

val cluster : t -> Smart_host.Cluster.t

(** The deployment-wide metrics registry: every component of every group
    (and the client library used by [request]) registers its instruments
    here, so same-named metrics aggregate across instances.  Snapshot it
    for deterministic end-to-end assertions (see OBSERVABILITY.md). *)
val metrics : t -> Smart_util.Metrics.t

(** The deployment-wide span recorder: every component of every group
    (and the client library used by [request]) records its spans here,
    stamped with the engine's virtual clock.  Always enabled — for a
    given seed the recorded spans, and hence {!trace_json}, are
    byte-for-byte deterministic. *)
val tracelog : t -> Smart_util.Tracelog.t

(** Chrome trace-event JSON of the whole deployment (load in Perfetto or
    chrome://tracing).  When the cluster was built with an attached
    {!Smart_sim.Trace.t}, its packet/timer events are merged in as
    instant events. *)
val trace_json : t -> string
