(** The federation root (DESIGN.md §13): the top of the aggregation
    tree.  Clients speak the ordinary wizard protocol to it; it fans
    each request out to the regional (shard) wizards as
    {!Smart_proto.Fed_msg} subqueries, merges the ranked shard replies
    with {!Selection.merge_candidates} into exactly the ranking a flat
    wizard over the union database would produce, and answers once every
    targeted shard replied or the fan-out deadline passed (a partial
    merge is flagged degraded).

    Digest routing: shard transmitters ship {!Smart_proto.Digest} column
    ranges up the tree; a shard whose digest proves a requirement's
    top-level comparisons unsatisfiable for every server it holds is
    skipped.  The analysis is conservative — anything it cannot prove
    keeps the shard in the fan-out — and exactly as fresh as the last
    digest received. *)

type t

(** One regional wizard: its digest/reply identity and the address of
    its federation port. *)
type shard = { name : string; addr : Output.address }

type config = {
  shards : shard list;  (** the regional wizards, non-empty *)
  fanout_timeout : float;
      (** seconds a request waits for shard replies before answering
          with whatever arrived (degraded) *)
  routing : bool;  (** skip shards whose digest proves them empty *)
}

(** Compiled requirements kept in the root's analysis cache (128). *)
val default_compile_cache_capacity : int

(** [create ?metrics ?clock ?trace ?compile_cache_capacity config]
    builds a root.  [metrics] receives the [federation.*] instruments
    (see OBSERVABILITY.md); by default a private registry is used.
    [clock] feeds [federation.request_latency_seconds] (the engine's
    virtual clock in simulation).  [trace] records a
    [federation.request] span per request with [federation.fanout]
    (whose context rides in the subqueries, parenting the shard-side
    [wizard.subquery] spans), [federation.merge] and [federation.reply]
    children.  Raises [Invalid_argument] on an empty shard list or a
    non-positive [fanout_timeout]. *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?clock:(unit -> float) ->
  ?trace:Smart_util.Tracelog.t ->
  ?compile_cache_capacity:int ->
  config ->
  t

(** Record a shard digest (wire the root receiver's
    {!Receiver.set_digest_hook} here).  The latest digest per shard name
    wins. *)
val note_digest : t -> Smart_proto.Digest.t -> unit

(** Shards a digest has been received from. *)
val digest_count : t -> int

(** The shard metric name whose merged sketch feeds the
    [federation.fed_latency_p{50,95,99}_s] gauges:
    ["wizard.request_latency_seconds"]. *)
val latency_metric : string

(** Record a shard's sketch batch (wire the root receiver's
    {!Receiver.set_sketch_hook} here).  The latest batch per shard name
    wins; every update re-merges {!latency_metric} across shards and
    refreshes the [federation.fed_latency_p{50,95,99}_s] gauges, so a
    [SMART-METRICS] scrape of the root always reads current
    deployment-wide quantiles.  Counted in
    [federation.sketch_updates_total]; traced as a
    [federation.sketch_merge] instant. *)
val note_sketches : t -> Smart_proto.Sketch_msg.t -> unit

(** Deployment-wide view of one metric: the {!Smart_util.Sketch.merge}
    of every shard's latest sketch under [name], folded in sorted
    shard-name order (merge is commutative, so the order only fixes the
    PRNG-state combination).  [None] when no shard has shipped one.
    The merged quantile is within the merged sketch's
    {!Smart_util.Sketch.err_weight} rank error of the exact percentile
    over the union of all shards' observations. *)
val merged_sketch : t -> string -> Smart_util.Sketch.t option

(** Shards a sketch batch has been received from. *)
val sketch_shard_count : t -> int

(** Handle a client request datagram ({!Smart_proto.Wizard_msg.request})
    from [from] at driver time [now]: returns the subquery datagrams for
    the targeted shards, or the immediate (empty) reply when the
    requirement does not compile or every shard is provably empty.
    Subqueries carry {!Smart_lang.Requirement.canonical} requirement
    text, so each shard's compile cache derives the same key no matter
    how the client spelled the requirement. *)
val handle_request :
  t -> now:float -> from:Output.address -> string -> Output.t list

(** Handle a shard's subquery reply datagram
    ({!Smart_proto.Fed_msg.reply}).  The last awaited reply releases the
    client's merged answer; unmatched, duplicate and post-deadline
    replies are dropped. *)
val handle_reply : t -> string -> Output.t list

(** Deadline sweep at driver time [now]: answer requests whose fan-out
    window closed with replies still missing (merged from what arrived,
    flagged degraded, counted in [federation.timeouts_total]). *)
val tick : t -> now:float -> Output.t list

(** Client requests currently awaiting shard replies. *)
val pending_count : t -> int

(** Client requests decoded over the root's lifetime. *)
val requests_handled : t -> int

(** Subqueries sent to shard wizards. *)
val subqueries_sent : t -> int

(** Subqueries skipped because a digest proved the shard empty for the
    requirement. *)
val shards_skipped : t -> int

(** Shard replies received and matched to a pending request. *)
val shard_replies : t -> int

(** Requests answered at the deadline with partial replies. *)
val timeouts : t -> int

(** Requests whose requirement failed to compile at the root. *)
val compile_errors : t -> int

(** Root replies flagged degraded (partial fan-out or a degraded
    shard). *)
val degraded_replies : t -> int

(** The [federation.request_latency_seconds] histogram in one read. *)
val request_latency_summary : t -> Smart_util.Metrics.histogram_summary

(** Server list of the most recent merged reply. *)
val last_result : t -> string list option
