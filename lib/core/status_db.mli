(** The three status databases (system / network / security) shared
    between monitors, transmitter, receiver and wizard — the in-memory
    stand-in for the thesis's System V shared memory segments.

    The store is versioned: every mutating write bumps a monotonic
    generation counter (sweeps bump it only when something was actually
    removed), so readers can memoize derived views and rebuild them only
    when the data really changed.  Network entries are additionally kept
    in a peer-keyed secondary index, making per-target lookups O(1). *)

type t

(** The columnar snapshot the wizard's bytecode interpreter scans: the
    structure-of-arrays status plane plus the dense-row -> host/IP maps
    (rows are scan order, i.e. sorted by host). *)
type column_view = {
  cols : Smart_lang.Bytecode.columns;
  hosts : string array;
  ips : string array;
}

(** What the last {!columns} call did: served the memoized view, wrote
    [n] dirty rows in place, or rebuilt from scratch. *)
type refresh = Cached | Refreshed of int | Rebuilt

val create : unit -> t

(** Monotonic write counter.  Equal generations guarantee identical
    contents; readers key caches on it. *)
val generation : t -> int

val update_sys : t -> Smart_proto.Records.sys_record -> unit

(** Store a whole snapshot of system records under a single generation
    bump (the receiver's per-frame write). *)
val update_sys_many : t -> Smart_proto.Records.sys_record list -> unit

val find_sys : t -> host:string -> Smart_proto.Records.sys_record option

(** All system records, sorted by host name (the wizard's scan order).
    Cached per generation: repeated calls on an unchanged database
    return the same (physically equal) list. *)
val sys_records : t -> Smart_proto.Records.sys_record list

(** Remove records older than [max_age]; returns how many were dropped. *)
val sweep_sys : t -> now:float -> max_age:float -> int

(** Like {!sweep_sys} but returns the dropped host names (sorted), so
    callers tracking per-host failure history — the sysmon's flap
    quarantine — know exactly who went quiet. *)
val sweep_sys_expired : t -> now:float -> max_age:float -> string list

val update_net : t -> Smart_proto.Records.net_record -> unit

val find_net : t -> monitor:string -> Smart_proto.Records.net_record option

val net_records : t -> Smart_proto.Records.net_record list

(** Metrics toward [target], resolved through the peer index.  When
    several monitors report the same peer, the freshest [measured_at]
    wins, then the lowest monitor name — deterministic regardless of
    insertion order. *)
val net_entry_for : t -> target:string -> Smart_proto.Records.net_entry option

(** Replace the whole security table. *)
val replace_sec : t -> Smart_proto.Records.sec_record -> unit

val security_level : t -> host:string -> int option

val sec_record : t -> Smart_proto.Records.sec_record

val sys_count : t -> int

(** Drop one server record (used by the receiver's mirror semantics).
    Bumps the generation only if the host was present. *)
val remove_sys : t -> host:string -> unit

(** The columnar snapshot at the current generation, memoized.  In-place
    system updates refresh only their own rows; membership, network or
    security changes trigger a full rebuild.  [net_for] resolves the
    network metrics toward a server host (consulted on rebuilds only; it
    must be a pure function of this database's contents, which the
    wizard's group-aware lookup is). *)
val columns :
  t ->
  net_for:(string -> Smart_proto.Records.net_entry option) ->
  column_view

(** Would {!columns} return the memoized view untouched?  Lets the
    caller skip tracing a snapshot phase that will do no work. *)
val columns_fresh : t -> bool

(** Shard digest of the current columnar snapshot — what a regional
    wizard's transmitter ships up the aggregation tree instead of raw
    records.  [shard] names this wizard in the digest; [net_for]
    resolves network metrics exactly as in {!columns} (the digest is
    derived from that same memoized view, so building it costs one
    column sweep, not a rebuild).  System column ranges cover every row;
    net/sec ranges only rows whose presence flags are set.  The result's
    [generation] equals {!generation}, letting the root detect stale
    digests. *)
val summary :
  t ->
  shard:string ->
  net_for:(string -> Smart_proto.Records.net_entry option) ->
  Smart_proto.Digest.t

(** What the most recent {!columns} call did. *)
val last_refresh : t -> refresh

(** Trace context of the last writer ({!Smart_util.Tracelog.root}
    initially).  The system monitor stamps its ingest span here; the
    transmitter parents its push spans on it so monitor-side traces stay
    connected to the frames that carry the data away. *)
val set_last_trace : t -> Smart_util.Tracelog.ctx -> unit

val last_trace : t -> Smart_util.Tracelog.ctx
