(* Simulation driver: deploys the seven components onto a
   [Smart_host.Cluster], wiring component outputs to the packet plane and
   packet-plane listeners back into component handlers.

   Layout mirrors Fig 3.1 for a single server group and Fig 3.8 for
   several: each group runs its probes, the three monitors and a
   transmitter on its monitor machine; the receiver and the wizard run on
   the wizard machine.  In multi-group deployments the network monitors
   probe their peer monitors (one sequential mesh, Table 3.4) and the
   wizard binds monitor_network_* per group. *)

type component_stats = { mutable messages : int; mutable bytes : int }

type group = {
  monitor_host : string;
  monitor_node : int;
  servers : string list;
  db : Status_db.t;
  sysmon : Sysmon.t;
  netmon : Netmon.t;
  secmon : Secmon.t;
  transmitter : Transmitter.t;
  down : bool ref;
      (* monitor-process outage (fault injection): the group's monitors
         and transmitter stop handling and ticking while set *)
}

(* One regional shard of a federated deployment: the mirror its groups'
   transmitters feed, the wizard answering root subqueries from it, and
   the transmitter shipping its digest up the tree. *)
type fed_shard = {
  shard_host : string;
  shard_db : Status_db.t;
  shard_receiver : Receiver.t;
  shard_wizard : Wizard.t;
  uplink : Transmitter.t;
}

type federation = { root : Fed_root.t; fed_shards : fed_shard list }

type t = {
  cluster : Smart_host.Cluster.t;
  mode : Transmitter.mode;
  groups : group list;
  wizard_node : int;
  db_wizard : Status_db.t;
  receiver : Receiver.t;
  wizard : Wizard.t;
  fed : federation option;
  client_rng : Smart_util.Prng.t;
  metrics : Smart_util.Metrics.t;
      (* one registry for the whole deployment: same-named instruments
         from different instances (e.g. every probe) aggregate *)
  tracelog : Smart_util.Tracelog.t;
      (* one span recorder for the whole deployment, stamped with the
         engine's virtual clock: cross-component traces land in a single
         ring and the export is deterministic for a given seed *)
  traffic : (string, component_stats) Hashtbl.t;
  mutable next_client_port : int;
  mutable corrupt_rate : float;
      (* per-message probability of flipping one byte of a stream
         payload in flight (fault injection) *)
  corrupt_rng : Smart_util.Prng.t;
  corrupted_total : Smart_util.Metrics.Counter.t;
}

let stats_for t tag =
  match Hashtbl.find_opt t.traffic tag with
  | Some s -> s
  | None ->
    let s = { messages = 0; bytes = 0 } in
    Hashtbl.replace t.traffic tag s;
    s

(* Fault injection: with probability [corrupt_rate], XOR one byte of a
   stream payload in flight.  0x5A never maps a byte to itself, so a
   drawn corruption always damages the message. *)
let maybe_corrupt t data =
  if
    t.corrupt_rate > 0.0
    && String.length data > 0
    && Smart_util.Prng.float t.corrupt_rng ~bound:1.0 < t.corrupt_rate
  then begin
    Smart_util.Metrics.Counter.incr t.corrupted_total;
    let pos = Smart_util.Prng.int t.corrupt_rng ~bound:(String.length data) in
    let b = Bytes.of_string data in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5A));
    Bytes.to_string b
  end
  else data

(* Execute component outputs on the packet plane, attributing the bytes
   to [tag] for the Table 5.2 accounting.  Stream outputs also travel as
   datagrams here: the simulated LAN is loss-free and the receiver's
   frame decoder reassembles per-source, so reliability is preserved.
   Stream payloads pass through the fault plane's corruption filter. *)
let perform t ~tag ~src_node ?(sport = 0) outputs =
  let stack = Smart_host.Cluster.stack t.cluster in
  List.iter
    (fun output ->
      let dst_addr, data =
        match output with
        | Output.Udp { dst; data } -> (dst, data)
        | Output.Stream { dst; data } -> (dst, maybe_corrupt t data)
      in
      match Smart_host.Cluster.resolve t.cluster dst_addr.Output.host with
      | None -> ()  (* unresolvable host: datagram vanishes *)
      | Some dst ->
        let s = stats_for t tag in
        s.messages <- s.messages + 1;
        s.bytes <- s.bytes + String.length data;
        ignore
          (Smart_net.Netstack.send_udp stack ~src:src_node ~dst ~sport
             ~dport:dst_addr.Output.port ~size:(String.length data)
             ~payload:data))
    outputs

let node_name t id =
  (Smart_net.Topology.node (Smart_host.Cluster.topology t.cluster) id)
    .Smart_net.Topology.name

let now t = Smart_host.Cluster.now t.cluster

(* A stream delivery is doomed when the destination is unresolvable, its
   machine has failed, or the routed path crosses a partitioned channel.
   The driver plays the role of the TCP connection here: these are the
   conditions under which a real connect/send would error out
   synchronously, so they are reported to the transmitter instead of
   launching bytes that can only vanish. *)
let stream_blocked cluster ~src_node ~host =
  match Smart_host.Cluster.resolve cluster host with
  | None -> true
  | Some dst ->
    (match Smart_host.Cluster.machine_opt cluster dst with
    | Some m when Smart_host.Machine.failed m -> true
    | Some _ | None ->
      let topo = Smart_host.Cluster.topology cluster in
      List.exists Smart_net.Link.partitioned
        (Smart_net.Topology.path topo ~src:src_node ~dst))

type config = {
  mode : Transmitter.mode;
  probe_interval : float;
  probe_transport : Probe.transport;
  transmit_interval : float;
  order : Smart_proto.Endian.order;
  security_log : string;
  wizard_compile_cache : int;
  frame_crc : bool;
      (* CRC-32 trailers on transmitter frames; required for the
         receiver to detect injected stream corruption *)
  wizard_staleness : float;
      (* receiver silence before wizard replies are flagged degraded *)
  fed_fanout_timeout : float;
      (* federation root: seconds to wait for shard replies *)
  fed_routing : bool;
      (* federation root: skip shards whose digest proves them empty *)
  adaptive_probes : bool;
      (* probes self-schedule on Probe.report_interval (DESIGN.md §14) *)
  adaptive_quarantine : bool;
      (* sysmons tune the flap threshold from flap-score sketches *)
  adaptive_staleness : bool;
      (* wizards derive degraded mode from inter-update gap sketches *)
  wizard_admission : Wizard.admission option;
      (* per-client token-bucket admission control on the request port
         (DESIGN.md §15); None leaves the port ungated *)
}

let default_config =
  {
    mode = Transmitter.Centralized;
    probe_interval = 2.0;
    probe_transport = Probe.Udp;
    transmit_interval = 2.0;
    order = Smart_proto.Endian.Little;
    security_log = "";
    wizard_compile_cache = Wizard.default_compile_cache_capacity;
    frame_crc = false;
    wizard_staleness = Wizard.default_staleness_threshold;
    fed_fanout_timeout = 1.0;
    fed_routing = true;
    adaptive_probes = false;
    adaptive_quarantine = false;
    adaptive_staleness = false;
    wizard_admission = None;
  }

(* Wire one group's probes, monitors and transmitter. *)
let setup_group t_ref config cluster ~metrics ~trace ~wizard_host
    ~monitor_host ~servers ~netmon_targets =
  let engine = Smart_host.Cluster.engine cluster in
  let stack = Smart_host.Cluster.stack cluster in
  let rng = Smart_host.Cluster.rng cluster in
  let resolve = Smart_host.Cluster.resolve_exn cluster in
  let monitor_node = resolve monitor_host in
  let db = Status_db.create () in
  let flap_policy =
    if config.adaptive_quarantine then Some Sysmon.default_flap_policy
    else None
  in
  let probe_adaptive =
    if config.adaptive_probes then
      Some (Probe.default_adaptive ~base_interval:config.probe_interval)
    else None
  in
  (* with adaptive probes armed the monitor must tolerate the slowest
     cadence a probe may legitimately adopt, or healthy slow probes get
     expired and quarantined hosts can never build a clean streak *)
  let sysmon_interval =
    match probe_adaptive with
    | Some a -> a.Probe.base_interval *. a.Probe.max_factor
    | None -> config.probe_interval
  in
  let sysmon =
    Sysmon.create
      ~config:
        {
          Sysmon.default_config with
          probe_interval = sysmon_interval;
          missed_intervals = 3;
        }
      ?flap_policy ~metrics ~trace db
  in
  let netmon =
    Netmon.create ~metrics ~trace
      { Netmon.monitor_name = monitor_host; targets = netmon_targets }
      db
  in
  let secmon = Secmon.create ~metrics ~trace db in
  if not (String.equal config.security_log "") then
    ignore (Secmon.refresh_from_log secmon config.security_log);
  let transmitter =
    Transmitter.create ~metrics ~trace ~crc:config.frame_crc
      ~monitor_name:monitor_host
      {
        Transmitter.mode = config.mode;
        order = config.order;
        receiver =
          { Output.host = wizard_host; port = Smart_proto.Ports.receiver };
      }
      db
  in
  let the () = match !t_ref with Some t -> t | None -> assert false in
  let down = ref false in
  (* machine failure silences only the host's probe (the seed's
     fail_machine contract); the monitor processes stop when an outage
     is injected — Crash_node of a monitor host sets both *)
  let alive () = not !down in
  (* Route transmitter outputs, reporting doomed stream deliveries back
     to the transmitter (bounded resend queue + backoff) instead of
     sending them into a black hole. *)
  let send_transmitter ~now outputs =
    List.iter
      (fun output ->
        match output with
        | Output.Stream { dst; data }
          when stream_blocked cluster ~src_node:monitor_node
                 ~host:dst.Output.host ->
          Transmitter.note_send_failure transmitter ~now ~data
        | Output.Stream _ | Output.Udp _ ->
          (match output with
          | Output.Stream _ -> Transmitter.note_send_ok transmitter
          | Output.Udp _ -> ());
          perform (the ()) ~tag:"transmitter" ~src_node:monitor_node [ output ])
      outputs
  in
  Smart_net.Netstack.listen_udp stack ~node:monitor_node
    ~port:Smart_proto.Ports.sysmon (fun ~now pkt ->
      if alive () then
        ignore (Sysmon.handle_report sysmon ~now pkt.Smart_net.Packet.payload));
  Smart_net.Netstack.listen_udp stack ~node:monitor_node
    ~port:Smart_proto.Ports.transmitter (fun ~now pkt ->
      if alive () then
        send_transmitter ~now
          (Transmitter.handle_pull transmitter
             ~data:pkt.Smart_net.Packet.payload));
  (* probes on every server of the group *)
  List.iter
    (fun server ->
      let node = resolve server in
      let machine = Smart_host.Cluster.machine cluster node in
      let spec = Smart_host.Machine.spec machine in
      let probe =
        Probe.create ~metrics ~trace ?adaptive:probe_adaptive
          {
            Probe.host = spec.Smart_host.Machine.name;
            ip = spec.Smart_host.Machine.ip;
            bogomips = spec.Smart_host.Machine.bogomips;
            monitor =
              { Output.host = monitor_host; port = Smart_proto.Ports.sysmon };
            iface = "eth0";
            transport = config.probe_transport;
          }
      in
      let tick_probe now =
        if not (Smart_host.Machine.failed machine) then begin
          let snapshot = Smart_host.Procfs.snapshot_of_machine machine ~now in
          match Probe.tick probe ~now ~snapshot with
          | Ok (_report, outputs) ->
            perform (the ()) ~tag:"probe" ~src_node:node
              ~sport:Smart_proto.Ports.probe outputs
          | Error _ -> ()
        end
      in
      if config.adaptive_probes then begin
        (* self-scheduling cadence: each tick sleeps the probe's current
           effective interval (same jitter budget as the fixed
           schedule), so interval adaptations take effect on the very
           next report.  The loop keeps running while the machine is
           failed — only the tick body is skipped — so a revived probe
           resumes by itself. *)
        let jitter_rng = Smart_util.Prng.split rng in
        let rec loop () =
          let now = Smart_sim.Engine.now engine in
          tick_probe now;
          let interval =
            match Probe.report_interval probe with
            | Some i -> i
            | None -> config.probe_interval
          in
          let jitter =
            Smart_util.Prng.float jitter_rng
              ~bound:(config.probe_interval /. 20.0)
          in
          ignore
            (Smart_sim.Engine.schedule_after engine ~delay:(interval +. jitter)
               (fun () -> loop ()))
        in
        ignore (Smart_sim.Engine.schedule_after engine ~delay:0.01 loop)
      end
      else
        ignore
          (Smart_sim.Engine.every engine ~period:config.probe_interval
             ~jitter:(config.probe_interval /. 20.0)
             ~rng:(Smart_util.Prng.split rng)
             ~start:(Smart_sim.Engine.now engine +. 0.01)
             tick_probe))
    servers;
  (* periodic sweep and transmit *)
  ignore
    (Smart_sim.Engine.every engine ~period:config.probe_interval
       ~start:(Smart_sim.Engine.now engine +. config.probe_interval)
       (fun now -> if alive () then ignore (Sysmon.sweep sysmon ~now)));
  ignore
    (Smart_sim.Engine.every engine ~period:config.transmit_interval
       ~start:(Smart_sim.Engine.now engine +. 0.2)
       (fun now ->
         if alive () then
           send_transmitter ~now (Transmitter.tick transmitter ~now)));
  { monitor_host; monitor_node; servers; db; sysmon; netmon; secmon;
    transmitter; down }

(* [deploy_groups cluster ~wizard_host ~groups] installs the stack for
   several server groups: [(monitor_host, servers); ...].  The first
   group is the wizard's local group. *)
let deploy_groups ?(config = default_config) cluster ~wizard_host ~groups =
  if groups = [] then invalid_arg "Simdriver.deploy_groups: no groups";
  let engine = Smart_host.Cluster.engine cluster in
  let stack = Smart_host.Cluster.stack cluster in
  let resolve = Smart_host.Cluster.resolve_exn cluster in
  let wizard_node = resolve wizard_host in
  let metrics = Smart_util.Metrics.create () in
  (* deployment-wide flight recorder on the virtual clock; always on:
     recording is a ring write per span, far below the noise floor of a
     simulated run, and every export stays seed-deterministic *)
  let tracelog =
    Smart_util.Tracelog.create ~capacity:65536
      ~clock:(fun () -> Smart_sim.Engine.now engine)
      ()
  in
  let multi_group = List.length groups > 1 in
  let monitor_hosts = List.map fst groups in
  let t_ref = ref None in
  let the () = match !t_ref with Some t -> t | None -> assert false in
  let group_states =
    List.map
      (fun (monitor_host, servers) ->
        (* flat deployments probe their servers directly; meshes probe
           the peer monitors (§3.3.3) *)
        let netmon_targets =
          if multi_group then
            List.filter
              (fun m -> not (String.equal m monitor_host))
              monitor_hosts
          else servers
        in
        setup_group t_ref config cluster ~metrics ~trace:tracelog
          ~wizard_host ~monitor_host ~servers ~netmon_targets)
      groups
  in
  let db_wizard = Status_db.create () in
  let receiver =
    Receiver.create ~metrics ~trace:tracelog ~order:config.order db_wizard
  in
  let wizard_mode =
    match config.mode with
    | Transmitter.Centralized -> Wizard.Centralized
    | Transmitter.Distributed ->
      Wizard.Distributed
        {
          transmitters =
            List.map
              (fun m ->
                { Output.host = m; port = Smart_proto.Ports.transmitter })
              monitor_hosts;
          freshness_timeout = 2.0;
        }
  in
  let wizard_groups =
    if not multi_group then None
    else begin
      let table = Hashtbl.create 32 in
      List.iter
        (fun (monitor_host, servers) ->
          List.iter (fun s -> Hashtbl.replace table s monitor_host) servers)
        groups;
      Some
        {
          Wizard.local_monitor = List.hd monitor_hosts;
          group_of = (fun host -> Hashtbl.find_opt table host);
          local_entry = Wizard.default_local_entry;
        }
    end
  in
  let staleness_policy =
    if config.adaptive_staleness then Some Wizard.default_staleness_policy
    else None
  in
  let wizard =
    (* virtual clock: request latencies land in the histogram in
       simulated seconds, and the run stays deterministic *)
    Wizard.create ~compile_cache_capacity:config.wizard_compile_cache ~metrics
      ~trace:tracelog
      ~clock:(fun () -> Smart_sim.Engine.now engine)
      ~staleness_threshold:config.wizard_staleness ?staleness_policy
      ?admission:config.wizard_admission
      { Wizard.mode = wizard_mode; groups = wizard_groups }
      db_wizard
  in
  Receiver.set_update_hook receiver (Some (fun _ -> Wizard.note_update wizard));
  let wizard_alive () =
    match Smart_host.Cluster.machine_opt cluster wizard_node with
    | Some m -> not (Smart_host.Machine.failed m)
    | None -> true
  in
  Smart_net.Netstack.listen_udp stack ~node:wizard_node
    ~port:Smart_proto.Ports.receiver (fun ~now:_ pkt ->
      if wizard_alive () then begin
        let t = the () in
        let from = node_name t pkt.Smart_net.Packet.src in
        ignore
          (Receiver.handle_stream receiver ~from pkt.Smart_net.Packet.payload)
      end);
  Smart_net.Netstack.listen_udp stack ~node:wizard_node
    ~port:Smart_proto.Ports.wizard (fun ~now pkt ->
      if wizard_alive () then begin
      let t = the () in
      let sport =
        match pkt.Smart_net.Packet.proto with
        | Smart_net.Packet.Udp { sport; _ } -> sport
        | Smart_net.Packet.Icmp _ -> 0
      in
      let from =
        { Output.host = node_name t pkt.Smart_net.Packet.src; port = sport }
      in
      let outputs =
        (* the wizard port doubles as the scrape endpoint, exactly like
           the realnet daemons (OBSERVABILITY.md) *)
        match
          Smart_proto.Metrics_msg.decode_request pkt.Smart_net.Packet.payload
        with
        | Some format ->
          [
            Output.udp ~host:from.Output.host ~port:from.Output.port
              (Smart_proto.Metrics_msg.encode_reply format t.metrics);
          ]
        | None ->
          Wizard.handle_request wizard ~now ~from pkt.Smart_net.Packet.payload
      in
      perform t ~tag:"wizard" ~src_node:wizard_node
        ~sport:Smart_proto.Ports.wizard outputs
      end);
  ignore
    (Smart_sim.Engine.every engine ~period:0.05
       ~start:(Smart_sim.Engine.now engine +. 0.05)
       (fun now ->
         if wizard_alive () then begin
           let t = the () in
           let outputs = Wizard.tick wizard ~now in
           perform t ~tag:"wizard" ~src_node:wizard_node
             ~sport:Smart_proto.Ports.wizard outputs
         end));
  let t =
    {
      cluster;
      mode = config.mode;
      groups = group_states;
      wizard_node;
      db_wizard;
      receiver;
      wizard;
      fed = None;
      client_rng = Smart_util.Prng.split (Smart_host.Cluster.rng cluster);
      metrics;
      tracelog;
      traffic = Hashtbl.create 8;
      next_client_port = 45000;
      corrupt_rate = 0.0;
      corrupt_rng = Smart_util.Prng.split (Smart_host.Cluster.rng cluster);
      corrupted_total =
        Smart_util.Metrics.counter metrics
          ~help:"stream payloads corrupted in flight by fault injection"
          "faults.corrupted_messages_total";
    }
  in
  t_ref := Some t;
  t

(* Single-group deployment (Fig 3.1): monitors + transmitter on
   [monitor], receiver + wizard on [wizard_host], probes on [servers]. *)
let deploy ?config cluster ~monitor ~wizard_host ~servers =
  deploy_groups ?config cluster ~wizard_host ~groups:[ (monitor, servers) ]

(* Federated deployment (DESIGN.md §13): every shard is a complete
   Fig 3.1 stack — its groups' monitors and transmitters feed a mirror
   on the shard host, where a regional wizard answers root subqueries on
   the federation port — plus a digest uplink shipping the shard's
   column ranges to the root host every transmit interval.  The root
   host runs a receiver (digests only) and the {!Fed_root}, which
   listens for clients on the ordinary wizard port, so {!request}
   drives a federated deployment unchanged.

   Groups always run centralized here: the regional wizard answers
   subqueries immediately from its mirror, so passive (pull-driven)
   transmitters would never be pulled. *)
let deploy_federation ?(config = default_config) cluster ~root_host ~shards =
  if shards = [] then invalid_arg "Simdriver.deploy_federation: no shards";
  let config = { config with mode = Transmitter.Centralized } in
  let engine = Smart_host.Cluster.engine cluster in
  let stack = Smart_host.Cluster.stack cluster in
  let resolve = Smart_host.Cluster.resolve_exn cluster in
  let root_node = resolve root_host in
  let metrics = Smart_util.Metrics.create () in
  let tracelog =
    Smart_util.Tracelog.create ~capacity:65536
      ~clock:(fun () -> Smart_sim.Engine.now engine)
      ()
  in
  let vclock () = Smart_sim.Engine.now engine in
  let t_ref = ref None in
  let the () = match !t_ref with Some t -> t | None -> assert false in
  let sport_of pkt =
    match pkt.Smart_net.Packet.proto with
    | Smart_net.Packet.Udp { sport; _ } -> sport
    | Smart_net.Packet.Icmp _ -> 0
  in
  let alive node () =
    match Smart_host.Cluster.machine_opt cluster node with
    | Some m -> not (Smart_host.Machine.failed m)
    | None -> true
  in
  let build_shard (shard_host, groups) =
    if groups = [] then
      invalid_arg "Simdriver.deploy_federation: shard with no groups";
    let monitor_hosts = List.map fst groups in
    let multi_group = List.length groups > 1 in
    let group_states =
      List.map
        (fun (monitor_host, servers) ->
          let netmon_targets =
            if multi_group then
              List.filter
                (fun m -> not (String.equal m monitor_host))
                monitor_hosts
            else servers
          in
          setup_group t_ref config cluster ~metrics ~trace:tracelog
            ~wizard_host:shard_host ~monitor_host ~servers ~netmon_targets)
        groups
    in
    let shard_db = Status_db.create () in
    let shard_receiver =
      Receiver.create ~metrics ~trace:tracelog ~order:config.order shard_db
    in
    let wizard_groups =
      if not multi_group then None
      else begin
        let table = Hashtbl.create 32 in
        List.iter
          (fun (monitor_host, servers) ->
            List.iter (fun s -> Hashtbl.replace table s monitor_host) servers)
          groups;
        Some
          {
            Wizard.local_monitor = List.hd monitor_hosts;
            group_of = (fun host -> Hashtbl.find_opt table host);
            local_entry = Wizard.default_local_entry;
          }
      end
    in
    let staleness_policy =
      if config.adaptive_staleness then Some Wizard.default_staleness_policy
      else None
    in
    let shard_wizard =
      Wizard.create ~compile_cache_capacity:config.wizard_compile_cache
        ~metrics ~trace:tracelog ~clock:vclock
        ~staleness_threshold:config.wizard_staleness ?staleness_policy
        ?admission:config.wizard_admission ~shard_name:shard_host
        { Wizard.mode = Wizard.Centralized; groups = wizard_groups }
        shard_db
    in
    Receiver.set_update_hook shard_receiver
      (Some (fun _ -> Wizard.note_update shard_wizard));
    let shard_node = resolve shard_host in
    let shard_alive = alive shard_node in
    Smart_net.Netstack.listen_udp stack ~node:shard_node
      ~port:Smart_proto.Ports.receiver (fun ~now:_ pkt ->
        if shard_alive () then begin
          let t = the () in
          let from = node_name t pkt.Smart_net.Packet.src in
          ignore
            (Receiver.handle_stream shard_receiver ~from
               pkt.Smart_net.Packet.payload)
        end);
    Smart_net.Netstack.listen_udp stack ~node:shard_node
      ~port:Smart_proto.Ports.fed (fun ~now:_ pkt ->
        if shard_alive () then begin
          let t = the () in
          let from =
            {
              Output.host = node_name t pkt.Smart_net.Packet.src;
              port = sport_of pkt;
            }
          in
          let outputs =
            Wizard.handle_subquery shard_wizard ~from
              pkt.Smart_net.Packet.payload
          in
          perform t ~tag:"fed_shard" ~src_node:shard_node
            ~sport:Smart_proto.Ports.fed outputs
        end);
    (* digest uplink: one Digest_db frame per transmit interval, built
       with the shard wizard's own network bindings so the advertised
       ranges cover exactly the values subqueries compare.  The same
       pushes carry the shard wizard's latency sketch once it has
       observations, so the root can serve deployment-wide quantiles. *)
    let uplink =
      Transmitter.create ~metrics ~trace:tracelog ~crc:config.frame_crc
        ~summary:(fun () ->
          Status_db.summary shard_db ~shard:shard_host ~net_for:(fun host ->
              Wizard.net_entry_for shard_wizard ~host))
        ~sketches:(fun () ->
          let sketch = Wizard.latency_sketch shard_wizard in
          if Smart_util.Sketch.count sketch = 0 then []
          else [ (Fed_root.latency_metric, sketch) ])
        ~sketch_source:shard_host ~monitor_name:shard_host
        {
          Transmitter.mode = Transmitter.Centralized;
          order = config.order;
          receiver =
            { Output.host = root_host; port = Smart_proto.Ports.receiver };
        }
        shard_db
    in
    let send_uplink ~now outputs =
      List.iter
        (fun output ->
          match output with
          | Output.Stream { dst; data }
            when stream_blocked cluster ~src_node:shard_node
                   ~host:dst.Output.host ->
            Transmitter.note_send_failure uplink ~now ~data
          | Output.Stream _ | Output.Udp _ ->
            (match output with
            | Output.Stream _ -> Transmitter.note_send_ok uplink
            | Output.Udp _ -> ());
            perform (the ()) ~tag:"fed_uplink" ~src_node:shard_node [ output ])
        outputs
    in
    ignore
      (Smart_sim.Engine.every engine ~period:config.transmit_interval
         ~start:(Smart_sim.Engine.now engine +. 0.3)
         (fun now ->
           if shard_alive () then send_uplink ~now (Transmitter.tick uplink ~now)));
    ({ shard_host; shard_db; shard_receiver; shard_wizard; uplink },
     group_states)
  in
  let built = List.map build_shard shards in
  let fed_shards = List.map fst built in
  let all_groups = List.concat_map snd built in
  let db_root = Status_db.create () in
  let root_receiver =
    Receiver.create ~metrics ~trace:tracelog ~order:config.order db_root
  in
  let root =
    Fed_root.create ~metrics ~clock:vclock ~trace:tracelog
      {
        Fed_root.shards =
          List.map
            (fun s ->
              {
                Fed_root.name = s.shard_host;
                addr =
                  { Output.host = s.shard_host; port = Smart_proto.Ports.fed };
              })
            fed_shards;
        fanout_timeout = config.fed_fanout_timeout;
        routing = config.fed_routing;
      }
  in
  Receiver.set_digest_hook root_receiver (Some (Fed_root.note_digest root));
  Receiver.set_sketch_hook root_receiver (Some (Fed_root.note_sketches root));
  let root_alive = alive root_node in
  Smart_net.Netstack.listen_udp stack ~node:root_node
    ~port:Smart_proto.Ports.receiver (fun ~now:_ pkt ->
      if root_alive () then begin
        let t = the () in
        let from = node_name t pkt.Smart_net.Packet.src in
        ignore
          (Receiver.handle_stream root_receiver ~from
             pkt.Smart_net.Packet.payload)
      end);
  (* clients on the ordinary wizard port; subqueries leave from the
     federation port so shard replies come back there.  The port doubles
     as the scrape endpoint: a SMART-METRICS datagram is answered with
     the deployment registry — including the
     federation.fed_latency_p{50,95,99}_s gauges the root keeps fresh
     from merged shard sketches. *)
  Smart_net.Netstack.listen_udp stack ~node:root_node
    ~port:Smart_proto.Ports.wizard (fun ~now pkt ->
      if root_alive () then begin
        let t = the () in
        let from =
          {
            Output.host = node_name t pkt.Smart_net.Packet.src;
            port = sport_of pkt;
          }
        in
        match
          Smart_proto.Metrics_msg.decode_request pkt.Smart_net.Packet.payload
        with
        | Some format ->
          perform t ~tag:"fed_root" ~src_node:root_node
            ~sport:Smart_proto.Ports.wizard
            [
              Output.udp ~host:from.Output.host ~port:from.Output.port
                (Smart_proto.Metrics_msg.encode_reply format t.metrics);
            ]
        | None ->
          let outputs =
            Fed_root.handle_request root ~now ~from pkt.Smart_net.Packet.payload
          in
          perform t ~tag:"fed_root" ~src_node:root_node
            ~sport:Smart_proto.Ports.fed outputs
      end);
  Smart_net.Netstack.listen_udp stack ~node:root_node
    ~port:Smart_proto.Ports.fed (fun ~now:_ pkt ->
      if root_alive () then begin
        let t = the () in
        let outputs = Fed_root.handle_reply root pkt.Smart_net.Packet.payload in
        perform t ~tag:"fed_root" ~src_node:root_node
          ~sport:Smart_proto.Ports.wizard outputs
      end);
  ignore
    (Smart_sim.Engine.every engine ~period:0.05
       ~start:(Smart_sim.Engine.now engine +. 0.05)
       (fun now ->
         if root_alive () then begin
           let t = the () in
           let outputs = Fed_root.tick root ~now in
           perform t ~tag:"fed_root" ~src_node:root_node
             ~sport:Smart_proto.Ports.wizard outputs
         end));
  let t =
    {
      cluster;
      mode = config.mode;
      groups = all_groups;
      wizard_node = root_node;
      db_wizard = db_root;
      receiver = root_receiver;
      wizard = (List.hd fed_shards).shard_wizard;
      fed = Some { root; fed_shards };
      client_rng = Smart_util.Prng.split (Smart_host.Cluster.rng cluster);
      metrics;
      tracelog;
      traffic = Hashtbl.create 8;
      next_client_port = 45000;
      corrupt_rate = 0.0;
      corrupt_rng = Smart_util.Prng.split (Smart_host.Cluster.rng cluster);
      corrupted_total =
        Smart_util.Metrics.counter metrics
          ~help:"stream payloads corrupted in flight by fault injection"
          "faults.corrupted_messages_total";
    }
  in
  t_ref := Some t;
  t

let federation t = t.fed

(* Let the deployment warm up: probes report, databases fill. *)
let settle ?(duration = 6.0) t =
  let engine = Smart_host.Cluster.engine t.cluster in
  Smart_sim.Engine.run engine
    ~until:(Smart_sim.Engine.now engine +. duration)

let measure_path ?(trials = 4) t ~src_node ~target =
  let stack = Smart_host.Cluster.stack t.cluster in
  match Smart_host.Cluster.resolve t.cluster target with
  | None -> None
  | Some dst when dst = src_node ->
    Some { Netmon.delay = 0.0; bandwidth = 4e9 /. 8.0 }
  | Some dst ->
    let delay = Smart_measure.Rtt_probe.ping ~count:3 stack ~src:src_node ~dst () in
    let bw = Smart_measure.Udp_stream.measure ~trials stack ~src:src_node ~dst () in
    (match (delay, bw) with
    | Some d, Some b ->
      Some
        { Netmon.delay = d /. 2.0; bandwidth = b.Smart_measure.Udp_stream.avg_bw }
    | _ -> None)

(* Sequentially refresh every group's network monitor using the one-way
   UDP stream method over the packet plane — one probe at a time across
   the whole mesh, as §3.3.3 prescribes.  Advances virtual time. *)
let refresh_netmon ?trials t =
  let records =
    List.map
      (fun g ->
        let record =
          Netmon.probe_all g.netmon ~now:(now t)
            ~prober:(fun ~target ->
              measure_path ?trials t ~src_node:g.monitor_node ~target)
        in
        (* push so the wizard side immediately observes fresh metrics *)
        let outputs = Transmitter.push g.transmitter in
        perform t ~tag:"transmitter" ~src_node:g.monitor_node outputs;
        record)
      t.groups
  in
  (* let the final pushes reach the wizard machine before returning *)
  settle ~duration:0.2 t;
  match records with
  | r :: _ -> r
  | [] -> assert false

let all_netmon_records t =
  List.filter_map
    (fun g -> Status_db.find_net t.db_wizard ~monitor:g.monitor_host)
    t.groups

(* One smart-socket request from [client] (a host name); drives the
   simulation until the reply arrives or [timeout] virtual seconds pass.

   The request is retransmitted (same sequence number) whenever a
   per-attempt timeout drawn from the shared backoff policy expires with
   no reply, up to [attempts] sends; late answers to a request that
   already completed are dropped by the client library's duplicate
   suppression.  All of it runs on virtual time, so retry schedules are
   deterministic for a given seed. *)
let request ?(option = Smart_proto.Wizard_msg.Accept_partial) ?(timeout = 5.0)
    ?(attempts = 5) ?(backoff = Smart_util.Backoff.default) t ~client ~wanted
    ~requirement =
  if attempts <= 0 then invalid_arg "Simdriver.request: attempts must be positive";
  let engine = Smart_host.Cluster.engine t.cluster in
  let stack = Smart_host.Cluster.stack t.cluster in
  let client_node = Smart_host.Cluster.resolve_exn t.cluster client in
  let client_lib =
    Client.create ~metrics:t.metrics ~trace:t.tracelog ~rng:t.client_rng ()
  in
  let req = Client.make_request client_lib ~wanted ~option ~requirement in
  let reply_port = t.next_client_port in
  t.next_client_port <- t.next_client_port + 1;
  let reply = ref None in
  Smart_net.Netstack.listen_udp stack ~node:client_node ~port:reply_port
    (fun ~now:_ pkt ->
      let data = pkt.Smart_net.Packet.payload in
      if not (Client.is_duplicate_reply client_lib data) then
        reply := Some data);
  let data = Smart_proto.Wizard_msg.encode_request req in
  let send () =
    let s = stats_for t "client" in
    s.messages <- s.messages + 1;
    s.bytes <- s.bytes + String.length data;
    ignore
      (Smart_net.Netstack.send_udp stack ~src:client_node ~dst:t.wizard_node
         ~sport:reply_port ~dport:Smart_proto.Ports.wizard
         ~size:(String.length data) ~payload:data)
  in
  let boff =
    Smart_util.Backoff.create ~rng:(Smart_util.Prng.split t.client_rng) backoff
  in
  let deadline = Smart_sim.Engine.now engine +. timeout in
  let used = ref 0 in
  let rec attempt () =
    incr used;
    if !used > 1 then Client.note_retry client_lib;
    send ();
    let wait = Smart_util.Backoff.next boff in
    let attempt_deadline =
      Float.min deadline (Smart_sim.Engine.now engine +. wait)
    in
    ignore
      (Smart_measure.Runner.run_until engine ~deadline:attempt_deadline
         (fun () -> !reply <> None));
    if !reply = None && !used < attempts
       && Smart_sim.Engine.now engine < deadline
    then attempt ()
  in
  attempt ();
  (* past the last retransmit, wait out the remaining overall budget *)
  if !reply = None then
    ignore
      (Smart_measure.Runner.run_until engine ~deadline (fun () ->
           !reply <> None));
  Smart_net.Netstack.unlisten_udp stack ~node:client_node ~port:reply_port;
  Client.note_attempts client_lib !used;
  match !reply with
  | None -> Error Client.Timeout
  | Some data -> Client.check_reply client_lib req data

(* Callback-style twin of [request] for code that already lives inside
   an engine callback (the session plane's workload): [request] drives
   the engine itself via [Runner.run_until] and so must never be called
   re-entrantly.  This variant only enqueues work — the send goes out
   now, retransmits ride engine timers, and [on_result] fires exactly
   once from the reply listener or the timeout timer.  Returns the
   request's trace context (the [client.request] span the wizard's and
   any later migration spans parent on). *)
let async_request ?(option = Smart_proto.Wizard_msg.Accept_partial)
    ?(timeout = 5.0) ?(attempts = 5) ?(backoff = Smart_util.Backoff.default) t
    ~client ~wanted ~requirement on_result =
  if attempts <= 0 then
    invalid_arg "Simdriver.async_request: attempts must be positive";
  let engine = Smart_host.Cluster.engine t.cluster in
  let stack = Smart_host.Cluster.stack t.cluster in
  let client_node = Smart_host.Cluster.resolve_exn t.cluster client in
  let client_lib =
    Client.create ~metrics:t.metrics ~trace:t.tracelog ~rng:t.client_rng ()
  in
  let req = Client.make_request client_lib ~wanted ~option ~requirement in
  let reply_port = t.next_client_port in
  t.next_client_port <- t.next_client_port + 1;
  let completed = ref false in
  let used = ref 0 in
  let finish result =
    if not !completed then begin
      completed := true;
      Client.note_attempts client_lib !used;
      (* unlisten from a fresh timer, not from inside the listener
         dispatch that may be delivering to this very port *)
      ignore
        (Smart_sim.Engine.schedule_after engine ~delay:1e-9 (fun () ->
             Smart_net.Netstack.unlisten_udp stack ~node:client_node
               ~port:reply_port));
      on_result result
    end
  in
  Smart_net.Netstack.listen_udp stack ~node:client_node ~port:reply_port
    (fun ~now:_ pkt ->
      let data = pkt.Smart_net.Packet.payload in
      if (not !completed) && not (Client.is_duplicate_reply client_lib data)
      then finish (Client.check_reply client_lib req data));
  let data = Smart_proto.Wizard_msg.encode_request req in
  let send () =
    let s = stats_for t "client" in
    s.messages <- s.messages + 1;
    s.bytes <- s.bytes + String.length data;
    ignore
      (Smart_net.Netstack.send_udp stack ~src:client_node ~dst:t.wizard_node
         ~sport:reply_port ~dport:Smart_proto.Ports.wizard
         ~size:(String.length data) ~payload:data)
  in
  let boff =
    Smart_util.Backoff.create ~rng:(Smart_util.Prng.split t.client_rng) backoff
  in
  let deadline = Smart_sim.Engine.now engine +. timeout in
  let rec attempt () =
    if not !completed then begin
      let now = Smart_sim.Engine.now engine in
      if now >= deadline then finish (Error Client.Timeout)
      else if !used >= attempts then
        (* past the last retransmit: wait out the remaining budget *)
        ignore
          (Smart_sim.Engine.schedule_after engine ~delay:(deadline -. now)
             (fun () -> if not !completed then finish (Error Client.Timeout)))
      else begin
        incr used;
        if !used > 1 then Client.note_retry client_lib;
        send ();
        let wait = Smart_util.Backoff.next boff in
        let delay = Float.min wait (deadline -. now) +. 1e-9 in
        ignore (Smart_sim.Engine.schedule_after engine ~delay attempt)
      end
    end
  in
  attempt ();
  req.Smart_proto.Wizard_msg.trace

(* ------------------------------------------------------------------ *)
(* The session workload (DESIGN.md §15)                                *)
(* ------------------------------------------------------------------ *)

type session_report = {
  sessions : int;
  survived : int;  (* bound to a live server at the end, nothing lost *)
  migrations : int;
  work_issued : int;  (* re-issues included *)
  work_completed : int;
  work_requeued : int;
  work_lost : int;  (* the chaos acceptance gate pins this at zero *)
}

(* One long-lived-session driver.  [pending] holds work items not
   currently on the wire: fresh ones minted while the connection is down
   plus in-flight ones requeued off a failed connection — they are
   re-issued once the session is bound to a healthy server again, which
   is how migration loses nothing. *)
type sess_driver = {
  sd_sess : Session.session;
  sd_client : string;
  sd_client_node : int;
  mutable sd_pending : int;
  mutable sd_outstanding : int;
  mutable sd_issued : int;
  mutable sd_requeued : int;
  mutable sd_lost : int;
  mutable sd_bound_gen : int;  (* wizard db generation at bind time *)
  mutable sd_cooldown_until : float;  (* no re-ask before this *)
  sd_boff : Smart_util.Backoff.t;
}

(* Drive [clients] (a [(host, sessions_on_it)] list) of long-lived
   sessions against the deployment for [duration] virtual seconds, then
   drain.  Each session binds a server picked by the wizard through a
   shared {!Session.pool}, issues one synthetic work item per
   [work_interval] (each occupying its connection for [work_duration]),
   and watches its held server every [check_interval]: a dead connection
   (crash, partition, keep-alive verdict) or — in flat deployments — a
   database generation change under which re-selection excludes the host
   triggers a mid-session migration.  Admission rejections and failed
   migrations back off on [backoff].  Runs the engine to completion and
   reports; with a generous [drain_timeout] every requeued item
   completes and [work_lost] is zero. *)
let run_sessions ?(wanted = 1) ?(option = Smart_proto.Wizard_msg.Accept_partial)
    ?(work_interval = 1.0) ?(work_duration = 0.4) ?(check_interval = 0.5)
    ?(keepalive_interval = 2.0) ?(request_timeout = 4.0)
    ?(backoff = Smart_util.Backoff.default) ?(drain_timeout = 30.0) t ~clients
    ~requirement ~duration =
  if clients = [] then invalid_arg "Simdriver.run_sessions: no clients";
  let engine = Smart_host.Cluster.engine t.cluster in
  let vclock () = Smart_sim.Engine.now engine in
  let pool =
    Session.pool ~metrics:t.metrics ~trace:t.tracelog ~keepalive_interval
      ~clock:vclock ()
  in
  let program =
    match Smart_lang.Requirement.compile requirement with
    | Ok p -> Some p
    | Error _ -> None
  in
  let start_at = vclock () in
  let end_at = start_at +. duration in
  let hard_deadline = end_at +. drain_timeout in
  let finalized = ref false in
  let host_alive host =
    match Smart_host.Cluster.resolve t.cluster host with
    | None -> false
    | Some node ->
      (match Smart_host.Cluster.machine_opt t.cluster node with
      | Some m -> not (Smart_host.Machine.failed m)
      | None -> true)
  in
  let reachable d host =
    host_alive host
    && not (stream_blocked t.cluster ~src_node:d.sd_client_node ~host)
  in
  let conn_ok d c =
    (match Session.conn_state c with
    | Session.Closed | Session.Draining -> false
    | Session.Connecting | Session.Established -> true)
    && reachable d (Session.conn_host c)
  in
  (* Is the held server still what the wizard would pick?  Re-evaluate
     the session's requirement against a one-host snapshot of the
     wizard's live database — the exact views selection would use.  Only
     meaningful in flat deployments (a federation root holds digests,
     not records), so federated runs rely on the dead-connection path. *)
  let still_qualified host =
    match (program, t.fed) with
    | None, _ | _, Some _ -> true
    | Some prog, None ->
      (match Status_db.find_sys t.db_wizard ~host with
      | None -> false
      | Some record ->
        let view =
          {
            Selection.record;
            net = Wizard.net_entry_for t.wizard ~host;
            security_level = Status_db.security_level t.db_wizard ~host;
          }
        in
        let r =
          Selection.select ~requirement:prog
            ~servers:(Selection.snapshot [ view ])
            ~wanted:1
        in
        r.Selection.selected <> [])
  in
  let drivers =
    List.concat_map
      (fun (client_host, count) ->
        let client_node = Smart_host.Cluster.resolve_exn t.cluster client_host in
        List.init count (fun i ->
            {
              sd_sess =
                Session.session pool
                  ~name:(Printf.sprintf "%s#%d" client_host i);
              sd_client = client_host;
              sd_client_node = client_node;
              sd_pending = 0;
              sd_outstanding = 0;
              sd_issued = 0;
              sd_requeued = 0;
              sd_lost = 0;
              sd_bound_gen = -1;
              sd_cooldown_until = 0.0;
              sd_boff =
                Smart_util.Backoff.create
                  ~rng:(Smart_util.Prng.split t.client_rng)
                  backoff;
            }))
      clients
  in
  let rec start_item d c =
    d.sd_issued <- d.sd_issued + 1;
    d.sd_outstanding <- d.sd_outstanding + 1;
    Session.work_started pool d.sd_sess c;
    ignore
      (Smart_sim.Engine.schedule_after engine ~delay:work_duration (fun () ->
           d.sd_outstanding <- d.sd_outstanding - 1;
           if
             Session.conn_state c <> Session.Closed
             && reachable d (Session.conn_host c)
           then Session.work_done pool d.sd_sess c
           else begin
             (* the server died under the item: requeue, never lose *)
             Session.work_requeued pool d.sd_sess c;
             d.sd_requeued <- d.sd_requeued + 1;
             d.sd_pending <- d.sd_pending + 1;
             flush_pending d
           end))
  and flush_pending d =
    if (not !finalized) && Session.session_state d.sd_sess = Session.Active
    then
      match Session.session_conn d.sd_sess with
      | Some c when conn_ok d c ->
        let n = d.sd_pending in
        d.sd_pending <- 0;
        for _ = 1 to n do
          start_item d c
        done
      | Some _ | None -> ()
  in
  (* Ask the wizard and bind (or hand over to) the pick.  On any error —
     timeout, admission shed, empty reply — back off before the next
     ask; a migration that cannot find a *different* live server is
     abandoned and retried by the watcher after the cooldown. *)
  let rec select_and_bind d ~migrating =
    let current =
      match Session.session_conn d.sd_sess with
      | Some c -> Some (Session.conn_host c)
      | None -> None
    in
    let give_up reason =
      d.sd_cooldown_until <- vclock () +. Smart_util.Backoff.next d.sd_boff;
      if migrating then
        Session.abandon_migration pool d.sd_sess ~reason
      else begin
        (* initial bind failed: retry once the cooldown passes *)
        ignore
          (Smart_sim.Engine.schedule_after engine
             ~delay:(Float.max 0.01 (d.sd_cooldown_until -. vclock ()))
             (fun () ->
               if
                 (not !finalized)
                 && Session.session_state d.sd_sess = Session.Selecting
               then select_and_bind d ~migrating:false))
      end
    in
    let origin = ref Smart_util.Tracelog.root in
    origin :=
      async_request ~option ~timeout:request_timeout ~backoff t
        ~client:d.sd_client ~wanted ~requirement (fun result ->
          if not !finalized then
            match result with
            | Ok hosts ->
              (* is the held connection still usable?  While it is, a
                 sole candidate identical to the held host means the
                 wizard still ranks it first and the migration is
                 abandoned; once it is dead, rebinding the same host is
                 a real handover — the server recovered and the re-ask
                 confirmed it is (again) the best pick *)
              let current_usable =
                match Session.session_conn d.sd_sess with
                | Some c -> conn_ok d c
                | None -> false
              in
              let choice =
                match
                  List.find_opt
                    (fun h ->
                      (match current with
                      | Some cur -> not (String.equal h cur)
                      | None -> true)
                      && reachable d h)
                    hosts
                with
                | Some h -> Some h
                | None -> (
                  match hosts with
                  | h :: _ when not migrating -> Some h
                  | h :: _ when (not current_usable) && reachable d h ->
                    Some h
                  | _ -> None)
              in
              (match choice with
              | None -> give_up "no replacement candidate"
              | Some host ->
                let c =
                  if migrating then
                    Session.complete_migration pool d.sd_sess ~host
                      ~origin:!origin
                  else Session.bind pool d.sd_sess ~host ~origin:!origin
                in
                (* the simulated LAN connects instantly *)
                Session.established pool c;
                d.sd_bound_gen <- Status_db.generation t.db_wizard;
                Smart_util.Backoff.reset d.sd_boff;
                d.sd_cooldown_until <- 0.0;
                flush_pending d)
            | Error e ->
              give_up (Fmt.str "%a" Client.pp_error e))
  in
  (* per-session start, staggered so request bursts stay spread *)
  List.iteri
    (fun i d ->
      ignore
        (Smart_sim.Engine.schedule_after engine
           ~delay:(0.01 +. (0.03 *. float_of_int i))
           (fun () ->
             Session.selecting d.sd_sess;
             select_and_bind d ~migrating:false)))
    drivers;
  (* work pump: one fresh item per interval per session while the run
     lasts; items born under a dead connection queue for re-issue *)
  ignore
    (Smart_sim.Engine.every engine ~period:work_interval
       ~start:(start_at +. work_interval) (fun now ->
         if (not !finalized) && now < end_at then
           List.iter
             (fun d ->
               d.sd_pending <- d.sd_pending + 1;
               flush_pending d)
             drivers));
  (* watcher: migrate away from dead or no-longer-qualified servers *)
  ignore
    (Smart_sim.Engine.every engine ~period:check_interval
       ~start:(start_at +. check_interval) (fun now ->
         if not !finalized then
           List.iter
             (fun d ->
               if
                 Session.session_state d.sd_sess = Session.Active
                 && now >= d.sd_cooldown_until
               then
                 match Session.session_conn d.sd_sess with
                 | None -> ()
                 | Some c ->
                   let host = Session.conn_host c in
                   let dead =
                     Session.conn_state c = Session.Closed
                     || not (reachable d host)
                   in
                   let stale =
                     (not dead)
                     && Status_db.generation t.db_wizard <> d.sd_bound_gen
                     && not (still_qualified host)
                   in
                   if dead || stale then begin
                     (* a dead entry is discarded from the pool before
                        the re-ask, so the replacement bind dials fresh
                        even when it lands on the same (recovered)
                        host *)
                     if dead then Session.close pool c;
                     Session.begin_migration pool d.sd_sess;
                     select_and_bind d ~migrating:true
                   end)
             drivers))
    ;
  (* keep-alive pump: probe quiet connections, answered by liveness of
     the peer (vantage: the first client host) *)
  let vantage = List.hd drivers in
  ignore
    (Smart_sim.Engine.every engine ~period:(keepalive_interval /. 2.0)
       ~start:(start_at +. (keepalive_interval /. 2.0)) (fun now ->
         if not !finalized then
           List.iter
             (fun c ->
               Session.keepalive_sent pool c;
               if reachable vantage (Session.conn_host c) then
                 Session.keepalive_ok pool c
               else Session.keepalive_miss pool c)
             (Session.keepalive_due pool ~now)));
  (* drain: poll past [end_at] until every item resolved or the hard
     deadline expires; whatever is left is lost (the chaos gate) *)
  let rec drain_check () =
    if not !finalized then begin
      let now = vclock () in
      let idle =
        List.for_all
          (fun d -> d.sd_pending = 0 && d.sd_outstanding = 0)
          drivers
      in
      if (now >= end_at && idle) || now >= hard_deadline then begin
        finalized := true;
        List.iter
          (fun d ->
            d.sd_lost <- d.sd_pending + d.sd_outstanding;
            if d.sd_lost > 0 then Session.work_lost pool ~count:d.sd_lost)
          drivers
      end
      else
        ignore (Smart_sim.Engine.schedule_after engine ~delay:0.25 drain_check)
    end
  in
  ignore
    (Smart_sim.Engine.schedule_after engine ~delay:(end_at -. start_at)
       drain_check);
  ignore
    (Smart_measure.Runner.run_until engine ~deadline:(hard_deadline +. 1.0)
       (fun () -> !finalized));
  let survived =
    List.length
      (List.filter
         (fun d ->
           d.sd_lost = 0
           &&
           match Session.session_conn d.sd_sess with
           | Some c ->
             Session.conn_state c <> Session.Closed
             && host_alive (Session.conn_host c)
           | None -> false)
         drivers)
  in
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 drivers in
  let report =
    {
      sessions = List.length drivers;
      survived;
      migrations = sum (fun d -> Session.session_migrations d.sd_sess);
      work_issued = sum (fun d -> d.sd_issued);
      work_completed = sum (fun d -> Session.session_completed d.sd_sess);
      work_requeued = sum (fun d -> d.sd_requeued);
      work_lost = sum (fun d -> d.sd_lost);
    }
  in
  List.iter (fun d -> Session.retire pool d.sd_sess) drivers;
  report

(* One SMART-METRICS scrape over the packet plane: magic datagram from
   [client] to the wizard (or federation root) port, rendered registry
   dump back.  Drives the simulation until the reply lands or [timeout]
   virtual seconds pass. *)
let scrape_metrics ?(format = Smart_proto.Metrics_msg.Text) ?(timeout = 2.0) t
    ~client =
  let engine = Smart_host.Cluster.engine t.cluster in
  let stack = Smart_host.Cluster.stack t.cluster in
  let client_node = Smart_host.Cluster.resolve_exn t.cluster client in
  let reply_port = t.next_client_port in
  t.next_client_port <- t.next_client_port + 1;
  let reply = ref None in
  Smart_net.Netstack.listen_udp stack ~node:client_node ~port:reply_port
    (fun ~now:_ pkt -> reply := Some pkt.Smart_net.Packet.payload);
  let data = Smart_proto.Metrics_msg.encode_request format in
  let s = stats_for t "client" in
  s.messages <- s.messages + 1;
  s.bytes <- s.bytes + String.length data;
  ignore
    (Smart_net.Netstack.send_udp stack ~src:client_node ~dst:t.wizard_node
       ~sport:reply_port ~dport:Smart_proto.Ports.wizard
       ~size:(String.length data) ~payload:data);
  ignore
    (Smart_measure.Runner.run_until engine
       ~deadline:(Smart_sim.Engine.now engine +. timeout)
       (fun () -> !reply <> None));
  Smart_net.Netstack.unlisten_udp stack ~node:client_node ~port:reply_port;
  match !reply with
  | Some dump -> Ok dump
  | None -> Error "scrape timed out"

(* Failure injection: a failed machine's probe goes silent, and the
   monitor expires it after three missed intervals. *)
let fail_machine t ~host =
  let node = Smart_host.Cluster.resolve_exn t.cluster host in
  Smart_host.Machine.set_failed (Smart_host.Cluster.machine t.cluster node) true

let revive_machine t ~host =
  let node = Smart_host.Cluster.resolve_exn t.cluster host in
  Smart_host.Machine.set_failed
    (Smart_host.Cluster.machine t.cluster node)
    false

(* Partition every channel touching [host] (both directions through its
   access link), or heal them. *)
let set_host_partitioned t ~host on =
  match Smart_host.Cluster.resolve t.cluster host with
  | None -> ()
  | Some node ->
    Smart_net.Topology.iter_channels
      (Smart_host.Cluster.topology t.cluster)
      (fun l ->
        if l.Smart_net.Link.src = node || l.Smart_net.Link.dst = node then
          Smart_net.Link.set_partitioned l on)

(* Partition the channels directly connecting [a] and [b] (no-op when
   they are not adjacent in the topology). *)
let set_link_partitioned t ~a ~b on =
  match
    (Smart_host.Cluster.resolve t.cluster a, Smart_host.Cluster.resolve t.cluster b)
  with
  | Some na, Some nb ->
    Smart_net.Topology.iter_channels
      (Smart_host.Cluster.topology t.cluster)
      (fun l ->
        if
          (l.Smart_net.Link.src = na && l.Smart_net.Link.dst = nb)
          || (l.Smart_net.Link.src = nb && l.Smart_net.Link.dst = na)
        then Smart_net.Link.set_partitioned l on)
  | _ -> ()

let set_monitor_down t ~host on =
  List.iter
    (fun g -> if String.equal g.monitor_host host then g.down := on)
    t.groups

let set_frame_corruption t rate =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Simdriver.set_frame_corruption: rate out of [0,1]";
  t.corrupt_rate <- rate

(* Carry out one fault-plane action (see Smart_sim.Faults).  Crashing a
   monitor host also stops its monitor processes — fail_machine alone
   only silences the probe. *)
let apply_fault t = function
  | Smart_sim.Faults.Crash_node host ->
    fail_machine t ~host;
    set_monitor_down t ~host true
  | Smart_sim.Faults.Restart_node host ->
    revive_machine t ~host;
    set_monitor_down t ~host false
  | Smart_sim.Faults.Partition_link (a, b) -> set_link_partitioned t ~a ~b true
  | Smart_sim.Faults.Heal_link (a, b) -> set_link_partitioned t ~a ~b false
  | Smart_sim.Faults.Partition_host host -> set_host_partitioned t ~host true
  | Smart_sim.Faults.Heal_host host -> set_host_partitioned t ~host false
  | Smart_sim.Faults.Corrupt_frames rate -> set_frame_corruption t rate
  | Smart_sim.Faults.Monitor_outage host -> set_monitor_down t ~host true
  | Smart_sim.Faults.Monitor_restore host -> set_monitor_down t ~host false

(* Arm a fault plan on the deployment's engine; the schedule and every
   effect run on virtual time, so same-seed chaos runs are identical. *)
let install_faults t plan =
  Smart_sim.Faults.install ~metrics:t.metrics ~trace:t.tracelog
    ~engine:(Smart_host.Cluster.engine t.cluster)
    ~apply:(fun action -> apply_fault t action)
    plan

let traffic_stats t tag =
  match Hashtbl.find_opt t.traffic tag with
  | Some s -> (s.messages, s.bytes)
  | None -> (0, 0)

let db_wizard t = t.db_wizard

let db_monitor t = (List.hd t.groups).db

let wizard_component t = t.wizard

let receiver_component t = t.receiver

let transmitter_component t = (List.hd t.groups).transmitter

let sysmon_component t = (List.hd t.groups).sysmon

let group_count t = List.length t.groups

let cluster t = t.cluster

let metrics t = t.metrics

let tracelog t = t.tracelog

(* Chrome trace-event export of the whole deployment, with the engine's
   own event trace (packet sends, timer fires, ...) merged in as instant
   events so spans can be read against the packet plane's activity. *)
let trace_json t =
  let instants =
    match Smart_host.Cluster.trace t.cluster with
    | None -> []
    | Some trace ->
      List.map
        (fun (e : Smart_sim.Trace.entry) ->
          (e.Smart_sim.Trace.time, e.Smart_sim.Trace.category,
           e.Smart_sim.Trace.message))
        (Smart_sim.Trace.entries trace)
  in
  Smart_util.Tracelog.to_chrome_json ~instants t.tracelog
