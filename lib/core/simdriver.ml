(* Simulation driver: deploys the seven components onto a
   [Smart_host.Cluster], wiring component outputs to the packet plane and
   packet-plane listeners back into component handlers.

   Layout mirrors Fig 3.1 for a single server group and Fig 3.8 for
   several: each group runs its probes, the three monitors and a
   transmitter on its monitor machine; the receiver and the wizard run on
   the wizard machine.  In multi-group deployments the network monitors
   probe their peer monitors (one sequential mesh, Table 3.4) and the
   wizard binds monitor_network_* per group. *)

type component_stats = { mutable messages : int; mutable bytes : int }

type group = {
  monitor_host : string;
  monitor_node : int;
  servers : string list;
  db : Status_db.t;
  sysmon : Sysmon.t;
  netmon : Netmon.t;
  secmon : Secmon.t;
  transmitter : Transmitter.t;
}

type t = {
  cluster : Smart_host.Cluster.t;
  mode : Transmitter.mode;
  groups : group list;
  wizard_node : int;
  db_wizard : Status_db.t;
  receiver : Receiver.t;
  wizard : Wizard.t;
  client_rng : Smart_util.Prng.t;
  metrics : Smart_util.Metrics.t;
      (* one registry for the whole deployment: same-named instruments
         from different instances (e.g. every probe) aggregate *)
  tracelog : Smart_util.Tracelog.t;
      (* one span recorder for the whole deployment, stamped with the
         engine's virtual clock: cross-component traces land in a single
         ring and the export is deterministic for a given seed *)
  traffic : (string, component_stats) Hashtbl.t;
  mutable next_client_port : int;
}

let stats_for t tag =
  match Hashtbl.find_opt t.traffic tag with
  | Some s -> s
  | None ->
    let s = { messages = 0; bytes = 0 } in
    Hashtbl.replace t.traffic tag s;
    s

(* Execute component outputs on the packet plane, attributing the bytes
   to [tag] for the Table 5.2 accounting.  Stream outputs also travel as
   datagrams here: the simulated LAN is loss-free and the receiver's
   frame decoder reassembles per-source, so reliability is preserved. *)
let perform t ~tag ~src_node ?(sport = 0) outputs =
  let stack = Smart_host.Cluster.stack t.cluster in
  List.iter
    (fun output ->
      let dst_addr, data =
        match output with
        | Output.Udp { dst; data } -> (dst, data)
        | Output.Stream { dst; data } -> (dst, data)
      in
      match Smart_host.Cluster.resolve t.cluster dst_addr.Output.host with
      | None -> ()  (* unresolvable host: datagram vanishes *)
      | Some dst ->
        let s = stats_for t tag in
        s.messages <- s.messages + 1;
        s.bytes <- s.bytes + String.length data;
        ignore
          (Smart_net.Netstack.send_udp stack ~src:src_node ~dst ~sport
             ~dport:dst_addr.Output.port ~size:(String.length data)
             ~payload:data))
    outputs

let node_name t id =
  (Smart_net.Topology.node (Smart_host.Cluster.topology t.cluster) id)
    .Smart_net.Topology.name

let now t = Smart_host.Cluster.now t.cluster

type config = {
  mode : Transmitter.mode;
  probe_interval : float;
  probe_transport : Probe.transport;
  transmit_interval : float;
  order : Smart_proto.Endian.order;
  security_log : string;
  wizard_compile_cache : int;
}

let default_config =
  {
    mode = Transmitter.Centralized;
    probe_interval = 2.0;
    probe_transport = Probe.Udp;
    transmit_interval = 2.0;
    order = Smart_proto.Endian.Little;
    security_log = "";
    wizard_compile_cache = Wizard.default_compile_cache_capacity;
  }

(* Wire one group's probes, monitors and transmitter. *)
let setup_group t_ref config cluster ~metrics ~trace ~wizard_host
    ~monitor_host ~servers ~netmon_targets =
  let engine = Smart_host.Cluster.engine cluster in
  let stack = Smart_host.Cluster.stack cluster in
  let rng = Smart_host.Cluster.rng cluster in
  let resolve = Smart_host.Cluster.resolve_exn cluster in
  let monitor_node = resolve monitor_host in
  let db = Status_db.create () in
  let sysmon =
    Sysmon.create
      ~config:
        { Sysmon.probe_interval = config.probe_interval; missed_intervals = 3 }
      ~metrics ~trace db
  in
  let netmon =
    Netmon.create ~metrics ~trace
      { Netmon.monitor_name = monitor_host; targets = netmon_targets }
      db
  in
  let secmon = Secmon.create ~metrics ~trace db in
  if not (String.equal config.security_log "") then
    ignore (Secmon.refresh_from_log secmon config.security_log);
  let transmitter =
    Transmitter.create ~metrics ~trace ~monitor_name:monitor_host
      {
        Transmitter.mode = config.mode;
        order = config.order;
        receiver =
          { Output.host = wizard_host; port = Smart_proto.Ports.receiver };
      }
      db
  in
  let the () = match !t_ref with Some t -> t | None -> assert false in
  Smart_net.Netstack.listen_udp stack ~node:monitor_node
    ~port:Smart_proto.Ports.sysmon (fun ~now pkt ->
      ignore (Sysmon.handle_report sysmon ~now pkt.Smart_net.Packet.payload));
  Smart_net.Netstack.listen_udp stack ~node:monitor_node
    ~port:Smart_proto.Ports.transmitter (fun ~now:_ pkt ->
      let outputs =
        Transmitter.handle_pull transmitter ~data:pkt.Smart_net.Packet.payload
      in
      perform (the ()) ~tag:"transmitter" ~src_node:monitor_node outputs);
  (* probes on every server of the group *)
  List.iter
    (fun server ->
      let node = resolve server in
      let machine = Smart_host.Cluster.machine cluster node in
      let spec = Smart_host.Machine.spec machine in
      let probe =
        Probe.create ~metrics ~trace
          {
            Probe.host = spec.Smart_host.Machine.name;
            ip = spec.Smart_host.Machine.ip;
            bogomips = spec.Smart_host.Machine.bogomips;
            monitor =
              { Output.host = monitor_host; port = Smart_proto.Ports.sysmon };
            iface = "eth0";
            transport = config.probe_transport;
          }
      in
      ignore
        (Smart_sim.Engine.every engine ~period:config.probe_interval
           ~jitter:(config.probe_interval /. 20.0)
           ~rng:(Smart_util.Prng.split rng)
           ~start:(Smart_sim.Engine.now engine +. 0.01)
           (fun now ->
             if not (Smart_host.Machine.failed machine) then begin
               let snapshot = Smart_host.Procfs.snapshot_of_machine machine ~now in
               match Probe.tick probe ~now ~snapshot with
               | Ok (_report, outputs) ->
                 perform (the ()) ~tag:"probe" ~src_node:node
                   ~sport:Smart_proto.Ports.probe outputs
               | Error _ -> ()
             end)))
    servers;
  (* periodic sweep and transmit *)
  ignore
    (Smart_sim.Engine.every engine ~period:config.probe_interval
       ~start:(Smart_sim.Engine.now engine +. config.probe_interval)
       (fun now -> ignore (Sysmon.sweep sysmon ~now)));
  ignore
    (Smart_sim.Engine.every engine ~period:config.transmit_interval
       ~start:(Smart_sim.Engine.now engine +. 0.2)
       (fun _now ->
         let outputs = Transmitter.tick transmitter in
         perform (the ()) ~tag:"transmitter" ~src_node:monitor_node outputs));
  { monitor_host; monitor_node; servers; db; sysmon; netmon; secmon;
    transmitter }

(* [deploy_groups cluster ~wizard_host ~groups] installs the stack for
   several server groups: [(monitor_host, servers); ...].  The first
   group is the wizard's local group. *)
let deploy_groups ?(config = default_config) cluster ~wizard_host ~groups =
  if groups = [] then invalid_arg "Simdriver.deploy_groups: no groups";
  let engine = Smart_host.Cluster.engine cluster in
  let stack = Smart_host.Cluster.stack cluster in
  let resolve = Smart_host.Cluster.resolve_exn cluster in
  let wizard_node = resolve wizard_host in
  let metrics = Smart_util.Metrics.create () in
  (* deployment-wide flight recorder on the virtual clock; always on:
     recording is a ring write per span, far below the noise floor of a
     simulated run, and every export stays seed-deterministic *)
  let tracelog =
    Smart_util.Tracelog.create ~capacity:65536
      ~clock:(fun () -> Smart_sim.Engine.now engine)
      ()
  in
  let multi_group = List.length groups > 1 in
  let monitor_hosts = List.map fst groups in
  let t_ref = ref None in
  let the () = match !t_ref with Some t -> t | None -> assert false in
  let group_states =
    List.map
      (fun (monitor_host, servers) ->
        (* flat deployments probe their servers directly; meshes probe
           the peer monitors (§3.3.3) *)
        let netmon_targets =
          if multi_group then
            List.filter
              (fun m -> not (String.equal m monitor_host))
              monitor_hosts
          else servers
        in
        setup_group t_ref config cluster ~metrics ~trace:tracelog
          ~wizard_host ~monitor_host ~servers ~netmon_targets)
      groups
  in
  let db_wizard = Status_db.create () in
  let receiver =
    Receiver.create ~metrics ~trace:tracelog ~order:config.order db_wizard
  in
  let wizard_mode =
    match config.mode with
    | Transmitter.Centralized -> Wizard.Centralized
    | Transmitter.Distributed ->
      Wizard.Distributed
        {
          transmitters =
            List.map
              (fun m ->
                { Output.host = m; port = Smart_proto.Ports.transmitter })
              monitor_hosts;
          freshness_timeout = 2.0;
        }
  in
  let wizard_groups =
    if not multi_group then None
    else begin
      let table = Hashtbl.create 32 in
      List.iter
        (fun (monitor_host, servers) ->
          List.iter (fun s -> Hashtbl.replace table s monitor_host) servers)
        groups;
      Some
        {
          Wizard.local_monitor = List.hd monitor_hosts;
          group_of = (fun host -> Hashtbl.find_opt table host);
          local_entry = Wizard.default_local_entry;
        }
    end
  in
  let wizard =
    (* virtual clock: request latencies land in the histogram in
       simulated seconds, and the run stays deterministic *)
    Wizard.create ~compile_cache_capacity:config.wizard_compile_cache ~metrics
      ~trace:tracelog
      ~clock:(fun () -> Smart_sim.Engine.now engine)
      { Wizard.mode = wizard_mode; groups = wizard_groups }
      db_wizard
  in
  Receiver.set_update_hook receiver (Some (fun _ -> Wizard.note_update wizard));
  Smart_net.Netstack.listen_udp stack ~node:wizard_node
    ~port:Smart_proto.Ports.receiver (fun ~now:_ pkt ->
      let t = the () in
      let from = node_name t pkt.Smart_net.Packet.src in
      ignore (Receiver.handle_stream receiver ~from pkt.Smart_net.Packet.payload));
  Smart_net.Netstack.listen_udp stack ~node:wizard_node
    ~port:Smart_proto.Ports.wizard (fun ~now pkt ->
      let t = the () in
      let sport =
        match pkt.Smart_net.Packet.proto with
        | Smart_net.Packet.Udp { sport; _ } -> sport
        | Smart_net.Packet.Icmp _ -> 0
      in
      let from =
        { Output.host = node_name t pkt.Smart_net.Packet.src; port = sport }
      in
      let outputs =
        Wizard.handle_request wizard ~now ~from pkt.Smart_net.Packet.payload
      in
      perform t ~tag:"wizard" ~src_node:wizard_node
        ~sport:Smart_proto.Ports.wizard outputs);
  ignore
    (Smart_sim.Engine.every engine ~period:0.05
       ~start:(Smart_sim.Engine.now engine +. 0.05)
       (fun now ->
         let t = the () in
         let outputs = Wizard.tick wizard ~now in
         perform t ~tag:"wizard" ~src_node:wizard_node
           ~sport:Smart_proto.Ports.wizard outputs));
  let t =
    {
      cluster;
      mode = config.mode;
      groups = group_states;
      wizard_node;
      db_wizard;
      receiver;
      wizard;
      client_rng = Smart_util.Prng.split (Smart_host.Cluster.rng cluster);
      metrics;
      tracelog;
      traffic = Hashtbl.create 8;
      next_client_port = 45000;
    }
  in
  t_ref := Some t;
  t

(* Single-group deployment (Fig 3.1): monitors + transmitter on
   [monitor], receiver + wizard on [wizard_host], probes on [servers]. *)
let deploy ?config cluster ~monitor ~wizard_host ~servers =
  deploy_groups ?config cluster ~wizard_host ~groups:[ (monitor, servers) ]

(* Let the deployment warm up: probes report, databases fill. *)
let settle ?(duration = 6.0) t =
  let engine = Smart_host.Cluster.engine t.cluster in
  Smart_sim.Engine.run engine
    ~until:(Smart_sim.Engine.now engine +. duration)

let measure_path ?(trials = 4) t ~src_node ~target =
  let stack = Smart_host.Cluster.stack t.cluster in
  match Smart_host.Cluster.resolve t.cluster target with
  | None -> None
  | Some dst when dst = src_node ->
    Some { Netmon.delay = 0.0; bandwidth = 4e9 /. 8.0 }
  | Some dst ->
    let delay = Smart_measure.Rtt_probe.ping ~count:3 stack ~src:src_node ~dst () in
    let bw = Smart_measure.Udp_stream.measure ~trials stack ~src:src_node ~dst () in
    (match (delay, bw) with
    | Some d, Some b ->
      Some
        { Netmon.delay = d /. 2.0; bandwidth = b.Smart_measure.Udp_stream.avg_bw }
    | _ -> None)

(* Sequentially refresh every group's network monitor using the one-way
   UDP stream method over the packet plane — one probe at a time across
   the whole mesh, as §3.3.3 prescribes.  Advances virtual time. *)
let refresh_netmon ?trials t =
  let records =
    List.map
      (fun g ->
        let record =
          Netmon.probe_all g.netmon ~now:(now t)
            ~prober:(fun ~target ->
              measure_path ?trials t ~src_node:g.monitor_node ~target)
        in
        (* push so the wizard side immediately observes fresh metrics *)
        let outputs = Transmitter.push g.transmitter in
        perform t ~tag:"transmitter" ~src_node:g.monitor_node outputs;
        record)
      t.groups
  in
  (* let the final pushes reach the wizard machine before returning *)
  settle ~duration:0.2 t;
  match records with
  | r :: _ -> r
  | [] -> assert false

let all_netmon_records t =
  List.filter_map
    (fun g -> Status_db.find_net t.db_wizard ~monitor:g.monitor_host)
    t.groups

(* One smart-socket request from [client] (a host name); drives the
   simulation until the reply arrives or [timeout] virtual seconds pass. *)
let request ?(option = Smart_proto.Wizard_msg.Accept_partial) ?(timeout = 5.0)
    t ~client ~wanted ~requirement =
  let engine = Smart_host.Cluster.engine t.cluster in
  let stack = Smart_host.Cluster.stack t.cluster in
  let client_node = Smart_host.Cluster.resolve_exn t.cluster client in
  let client_lib =
    Client.create ~metrics:t.metrics ~trace:t.tracelog ~rng:t.client_rng ()
  in
  let req = Client.make_request client_lib ~wanted ~option ~requirement in
  let reply_port = t.next_client_port in
  t.next_client_port <- t.next_client_port + 1;
  let reply = ref None in
  Smart_net.Netstack.listen_udp stack ~node:client_node ~port:reply_port
    (fun ~now:_ pkt -> reply := Some pkt.Smart_net.Packet.payload);
  let data = Smart_proto.Wizard_msg.encode_request req in
  let s = stats_for t "client" in
  s.messages <- s.messages + 1;
  s.bytes <- s.bytes + String.length data;
  ignore
    (Smart_net.Netstack.send_udp stack ~src:client_node ~dst:t.wizard_node
       ~sport:reply_port ~dport:Smart_proto.Ports.wizard
       ~size:(String.length data) ~payload:data);
  let deadline = Smart_sim.Engine.now engine +. timeout in
  ignore
    (Smart_measure.Runner.run_until engine ~deadline (fun () -> !reply <> None));
  Smart_net.Netstack.unlisten_udp stack ~node:client_node ~port:reply_port;
  match !reply with
  | None -> Error Client.Timeout
  | Some data -> Client.check_reply client_lib req data

(* Failure injection: a failed machine's probe goes silent, and the
   monitor expires it after three missed intervals. *)
let fail_machine t ~host =
  let node = Smart_host.Cluster.resolve_exn t.cluster host in
  Smart_host.Machine.set_failed (Smart_host.Cluster.machine t.cluster node) true

let revive_machine t ~host =
  let node = Smart_host.Cluster.resolve_exn t.cluster host in
  Smart_host.Machine.set_failed
    (Smart_host.Cluster.machine t.cluster node)
    false

let traffic_stats t tag =
  match Hashtbl.find_opt t.traffic tag with
  | Some s -> (s.messages, s.bytes)
  | None -> (0, 0)

let db_wizard t = t.db_wizard

let db_monitor t = (List.hd t.groups).db

let wizard_component t = t.wizard

let sysmon_component t = (List.hd t.groups).sysmon

let group_count t = List.length t.groups

let cluster t = t.cluster

let metrics t = t.metrics

let tracelog t = t.tracelog

(* Chrome trace-event export of the whole deployment, with the engine's
   own event trace (packet sends, timer fires, ...) merged in as instant
   events so spans can be read against the packet plane's activity. *)
let trace_json t =
  let instants =
    match Smart_host.Cluster.trace t.cluster with
    | None -> []
    | Some trace ->
      List.map
        (fun (e : Smart_sim.Trace.entry) ->
          (e.Smart_sim.Trace.time, e.Smart_sim.Trace.category,
           e.Smart_sim.Trace.message))
        (Smart_sim.Trace.entries trace)
  in
  Smart_util.Tracelog.to_chrome_json ~instants t.tracelog
