(** The transmitter (§3.5.1): ships database snapshots to the receiver as
    [type,size,data] frames; active in centralized mode, pull-driven in
    distributed mode. *)

(** [Centralized] pushes on every tick; [Distributed] stays passive and
    answers the wizard's pull requests. *)
type mode = Centralized | Distributed

(** Datagram body that triggers a distributed-mode push. *)
val pull_request_magic : string

(** Payloads the resend queue holds before dropping the oldest (8). *)
val default_resend_capacity : int

type config = {
  mode : mode;  (** push-on-tick vs pull-driven *)
  order : Smart_proto.Endian.order;  (** must match the receiver's *)
  receiver : Output.address;  (** where the frames are streamed to *)
}

type t

(** [create ?metrics ?trace ~monitor_name config db] builds a
    transmitter snapshotting [db].  [monitor_name] selects which network
    record the Net_db frame carries.  [metrics] receives the
    [transmitter.*] instruments (see OBSERVABILITY.md); by default a
    private registry is used.  [trace] records a [transmitter.push] span
    per push, parented on {!Status_db.last_trace} and embedded in the
    emitted frames; defaults to {!Smart_util.Tracelog.disabled}.

    [crc] (default off) appends a CRC-32 trailer to every emitted frame
    so the receiver can detect and resynchronise past stream corruption.
    [resend_capacity] bounds the failure resend queue (oldest payloads
    drop first — a newer snapshot supersedes them); [backoff] and [rng]
    shape the retry delays after {!note_send_failure} ([rng] jitters
    them; omitted, delays are the deterministic nominal schedule).

    [summary] switches the transmitter into digest-uplink mode: every
    push ships one [Digest_db] frame holding [summary ()] instead of the
    three database snapshots — how a regional wizard feeds the
    federation root column ranges rather than raw records.  All delivery
    machinery (resend queue, backoff, pull handling) applies unchanged;
    digest pushes are additionally counted in
    [transmitter.digest_pushes_total].

    [sketches] attaches a quantile-sketch uplink: every push whose
    callback returns a non-empty batch also ships one [Sketch_db] frame
    holding it, stamped with [sketch_source] (the shard name; default
    [""]) and counted in [transmitter.sketch_pushes_total] — how a
    shard feeds the root the mergeable latency distributions that
    digests cannot carry. *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  ?crc:bool ->
  ?resend_capacity:int ->
  ?backoff:Smart_util.Backoff.policy ->
  ?rng:Smart_util.Prng.t ->
  ?summary:(unit -> Smart_proto.Digest.t) ->
  ?sketches:(unit -> (string * Smart_util.Sketch.t) list) ->
  ?sketch_source:string ->
  monitor_name:string ->
  config ->
  Status_db.t ->
  t

(** The frames of the current database state — the three snapshot frames,
    or a single [Digest_db] frame in digest-uplink mode, plus a
    [Sketch_db] frame when a sketch uplink is attached and non-empty —
    carrying [trace] (default {!Smart_util.Tracelog.root}, i.e.
    untraced) as their context. *)
val snapshot_frames :
  ?trace:Smart_util.Tracelog.ctx -> t -> Smart_proto.Frame.frame list

(** Unconditional push (both modes). *)
val push : t -> Output.t list

(** Periodic tick at driver time [now]: quiet while backing off after a
    reported failure; otherwise drains the resend queue (both modes) and
    pushes a fresh snapshot (centralized mode only). *)
val tick : t -> now:float -> Output.t list

(** The driver reports a stream delivery that failed: the payload joins
    the bounded resend queue, [transmitter.send_failures_total] ticks,
    and subsequent {!tick}s stay quiet until an exponential-backoff
    delay from [now] has passed. *)
val note_send_failure : t -> now:float -> data:string -> unit

(** The driver reports a completed stream delivery; resets the backoff. *)
val note_send_ok : t -> unit

(** Whether {!tick} would currently stay quiet. *)
val backing_off : t -> now:float -> bool

(** Pull request handler: pushes in distributed mode when the magic
    matches, no-op otherwise. *)
val handle_pull : t -> data:string -> Output.t list

(** Snapshots shipped over the transmitter's lifetime. *)
val pushes : t -> int

(** Total encoded frame bytes shipped. *)
val bytes_sent : t -> int

(** Stream deliveries the driver reported failed. *)
val send_failures : t -> int

(** Queued payloads re-sent after backoff. *)
val resends : t -> int

(** Pushes that shipped a federation digest (digest-uplink mode). *)
val digest_pushes : t -> int

(** Payloads currently waiting in the resend queue. *)
val resend_queue_length : t -> int
