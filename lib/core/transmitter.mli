(** The transmitter (§3.5.1): ships database snapshots to the receiver as
    [type,size,data] frames; active in centralized mode, pull-driven in
    distributed mode. *)

(** [Centralized] pushes on every tick; [Distributed] stays passive and
    answers the wizard's pull requests. *)
type mode = Centralized | Distributed

(** Datagram body that triggers a distributed-mode push. *)
val pull_request_magic : string

type config = {
  mode : mode;  (** push-on-tick vs pull-driven *)
  order : Smart_proto.Endian.order;  (** must match the receiver's *)
  receiver : Output.address;  (** where the frames are streamed to *)
}

type t

(** [create ?metrics ?trace ~monitor_name config db] builds a
    transmitter snapshotting [db].  [monitor_name] selects which network
    record the Net_db frame carries.  [metrics] receives the
    [transmitter.*] instruments (see OBSERVABILITY.md); by default a
    private registry is used.  [trace] records a [transmitter.push] span
    per push, parented on {!Status_db.last_trace} and embedded in the
    emitted frames; defaults to {!Smart_util.Tracelog.disabled}. *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  monitor_name:string ->
  config ->
  Status_db.t ->
  t

(** The three frames of the current database state, carrying [trace]
    (default {!Smart_util.Tracelog.root}, i.e. untraced) as their
    context. *)
val snapshot_frames :
  ?trace:Smart_util.Tracelog.ctx -> t -> Smart_proto.Frame.frame list

(** Unconditional push (both modes). *)
val push : t -> Output.t list

(** Periodic tick: pushes in centralized mode, no-op in distributed. *)
val tick : t -> Output.t list

(** Pull request handler: pushes in distributed mode when the magic
    matches, no-op otherwise. *)
val handle_pull : t -> data:string -> Output.t list

(** Snapshots shipped over the transmitter's lifetime. *)
val pushes : t -> int

(** Total encoded frame bytes shipped. *)
val bytes_sent : t -> int
