(** The receiver (§3.5.2): reassembles transmitter frames from reliable
    streams and mirrors them into the wizard-side databases. *)

type t

(** [create ?metrics ?trace ~order db] builds a receiver mirroring into
    [db].  [order] must match the transmitters' byte order.  [metrics]
    receives the [receiver.*] instruments (see OBSERVABILITY.md); by
    default a private registry is used.  [trace] records a
    [receiver.frame] span per applied frame (parented on the context the
    frame carries) with a [receiver.commit] child around the Sys_db
    batch write; defaults to {!Smart_util.Tracelog.disabled}. *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  order:Smart_proto.Endian.order ->
  Status_db.t ->
  t

(** Notification hook fired after every successfully applied frame (used
    by the distributed-mode wizard to detect fresh data). *)
val set_update_hook : t -> (Smart_proto.Frame.payload_type -> unit) option -> unit

(** Hook receiving every decoded [Digest_db] payload — the federation
    root's intake of shard summaries.  Digests never touch the mirror
    database; they are counted in [federation.digests_received_total]
    and handed here (dropped when no hook is set). *)
val set_digest_hook : t -> (Smart_proto.Digest.t -> unit) option -> unit

(** Hook receiving every decoded [Sketch_db] payload — the federation
    root's intake of shard quantile sketches.  Like digests they never
    touch the mirror database; they are counted in
    [federation.sketches_received_total] and handed here (dropped when
    no hook is set). *)
val set_sketch_hook : t -> (Smart_proto.Sketch_msg.t -> unit) option -> unit

(** Feed raw stream bytes arriving from transmitter [from].  Corrupt
    stretches never stop the stream: the frame decoder resynchronises
    past them (metered by [receiver.resyncs_total] and
    [receiver.corrupt_bytes_total]) and every decodable frame is
    applied.  [Error] reports the first record-level decode failure of
    the batch, after the rest has still been applied. *)
val handle_stream : t -> from:string -> string -> (unit, string) result

(** Discard the stream state of source [from] (call when its connection
    closes): pending partial-frame bytes and the host-ownership record
    are dropped, and the [receiver.transmitters] gauge shrinks.  Drivers
    that tag sources per connection must call this or the per-source
    tables grow by one entry per push. *)
val forget_source : t -> from:string -> unit

(** Frames successfully applied to the mirror over the receiver's
    lifetime. *)
val frames_handled : t -> int

(** [Digest_db] frames decoded and handed to the digest hook. *)
val digests_handled : t -> int

(** [Sketch_db] frames decoded and handed to the sketch hook. *)
val sketches_handled : t -> int

(** Stream or record decode failures. *)
val decode_errors : t -> int

(** Stream corruption episodes survived by resynchronisation. *)
val resyncs : t -> int

(** Stream bytes discarded while resynchronising. *)
val corrupt_bytes : t -> int
