(* The network monitor (§3.3.3): measures (delay, bandwidth) along the
   paths from this monitor to its probing targets — peer monitors in a
   multi-group deployment, or the local servers directly in a
   single-group one — strictly one target at a time, as the thesis
   prescribes ("multiple probes should not run simultaneously").

   The actual measurement is injected: the simulation driver plugs in the
   one-way UDP stream estimator over the packet plane, the realnet driver
   a socket-based equivalent. *)

module Metrics = Smart_util.Metrics

type probe_result = { delay : float; bandwidth : float }

type prober = target:string -> probe_result option

type config = {
  monitor_name : string;
  targets : string list;  (* host names, probed in order *)
}

type t = {
  config : config;
  db : Status_db.t;
  trace : Smart_util.Tracelog.t;
  probes_total : Metrics.Counter.t;
  probe_failures_total : Metrics.Counter.t;
  rounds_total : Metrics.Counter.t;
  reachable : Metrics.Gauge.t;
}

let create ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) config db =
  {
    config;
    db;
    trace;
    probes_total =
      Metrics.counter metrics ~help:"path probes attempted"
        "netmon.probes_total";
    probe_failures_total =
      Metrics.counter metrics ~help:"path probes that returned nothing"
        "netmon.probe_failures_total";
    rounds_total =
      Metrics.counter metrics ~help:"full probe_all rounds completed"
        "netmon.rounds_total";
    reachable =
      Metrics.gauge metrics ~help:"targets answering in the last round"
        "netmon.reachable";
  }

(* Probe every target sequentially and publish the refreshed record. *)
let probe_all t ~now ~(prober : prober) =
  let round =
    Smart_util.Tracelog.start t.trace "netmon.round"
  in
  let parent = Smart_util.Tracelog.ctx_of round in
  let entries =
    List.filter_map
      (fun target ->
        Metrics.Counter.incr t.probes_total;
        let probe_span =
          Smart_util.Tracelog.start t.trace ~parent "netmon.probe"
        in
        Fun.protect ~finally:(fun () ->
            Smart_util.Tracelog.finish t.trace probe_span)
        @@ fun () ->
        match prober ~target with
        | Some { delay; bandwidth } ->
          Some
            {
              Smart_proto.Records.peer = target;
              delay;
              bandwidth;
              measured_at = now;
            }
        | None ->
          Metrics.Counter.incr t.probe_failures_total;
          None)
      t.config.targets
  in
  let record =
    { Smart_proto.Records.monitor = t.config.monitor_name; entries }
  in
  Status_db.update_net t.db record;
  Metrics.Counter.incr t.rounds_total;
  Metrics.Gauge.set t.reachable (float_of_int (List.length entries));
  Smart_util.Tracelog.finish t.trace round;
  record

(* Recommended probing interval for [n] groups: the number of paths grows
   as n(n-1), so the interval scales with it (§3.3.3). *)
let recommended_interval ~groups ~per_probe_cost =
  let paths = groups * (groups - 1) in
  Float.max 2.0 (float_of_int paths *. per_probe_cost *. 2.0)

let probes_run t = Metrics.Counter.value t.probes_total

let probe_failures t = Metrics.Counter.value t.probe_failures_total
