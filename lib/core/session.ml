(* The session plane (DESIGN.md §15): the client-side socket state
   machine that makes the smart socket actually smart.

   The paper's API (§3.6) hands the application a connected socket and
   forgets it.  Long-lived clients need the opposite: a bounded pool of
   per-peer connections (the socket-store pattern: every peer has one
   entry walking Connecting -> Established -> Draining -> Closed),
   keep-alive bookkeeping on the injected clock, LRU reuse with
   deterministic eviction, and mid-session *migration* — when a held
   server's status drops below the session's requirement, the driver
   re-asks the wizard, binds the replacement here, and the old
   connection drains its in-flight work before closing.

   Sans-IO like every core component: this module owns only the state
   machine, the metrics and the trace spans.  Drivers (the simulation's
   session workload, the realnet [Client_io] pool) perform the actual
   connects, sends and keep-alive probes, and report outcomes back.
   The clock is injected, every iteration over the connection table is
   sorted, and nothing here draws randomness — same-seed runs are
   byte-identical. *)

module Metrics = Smart_util.Metrics

type conn_state = Connecting | Established | Draining | Closed

let pp_conn_state ppf s =
  Fmt.string ppf
    (match s with
    | Connecting -> "connecting"
    | Established -> "established"
    | Draining -> "draining"
    | Closed -> "closed")

type conn = {
  host : string;
  mutable state : conn_state;
  mutable refs : int;        (* sessions currently bound to this conn *)
  mutable in_flight : int;   (* work items issued and not yet resolved *)
  mutable last_used : int;   (* monotonic stamp; LRU eviction order *)
  mutable last_activity : float;  (* clock time of last send/receive *)
  mutable misses : int;      (* consecutive unanswered keep-alives *)
}

type pool = {
  capacity : int;
  keepalive_interval : float;
  keepalive_limit : int;
  clock : unit -> float;
  on_evict : conn -> unit;
      (* driver hook: the pool decided to forget this entry (LRU
         eviction) — close the underlying socket *)
  trace : Smart_util.Tracelog.t;
  conns : (string, conn) Hashtbl.t;  (* peer host -> its one entry *)
  mutable stamp : int;
  (* instruments *)
  opened_total : Metrics.Counter.t;
  reused_total : Metrics.Counter.t;
  evicted_total : Metrics.Counter.t;
  size_gauge : Metrics.Gauge.t;
  keepalive_probes_total : Metrics.Counter.t;
  keepalive_failures_total : Metrics.Counter.t;
  sessions_gauge : Metrics.Gauge.t;
  migrations_total : Metrics.Counter.t;
  migration_failures_total : Metrics.Counter.t;
  migration_latency : Metrics.Histogram.t;
  work_issued_total : Metrics.Counter.t;
  work_completed_total : Metrics.Counter.t;
  work_requeued_total : Metrics.Counter.t;
  work_lost_total : Metrics.Counter.t;
}

let default_capacity = 16

let default_keepalive_interval = 5.0

let default_keepalive_limit = 3

let pool ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) ?(capacity = default_capacity)
    ?(keepalive_interval = default_keepalive_interval)
    ?(keepalive_limit = default_keepalive_limit) ?(on_evict = fun _ -> ())
    ~clock () =
  if capacity < 1 then invalid_arg "Session.pool: capacity must be positive";
  if keepalive_interval <= 0.0 then
    invalid_arg "Session.pool: keepalive_interval must be positive";
  if keepalive_limit < 1 then
    invalid_arg "Session.pool: keepalive_limit must be positive";
  {
    capacity;
    keepalive_interval;
    keepalive_limit;
    clock;
    on_evict;
    trace;
    conns = Hashtbl.create 16;
    stamp = 0;
    opened_total =
      Metrics.counter metrics ~help:"connections opened"
        "session.pool_opened_total";
    reused_total =
      Metrics.counter metrics ~help:"binds served by a pooled connection"
        "session.pool_reused_total";
    evicted_total =
      Metrics.counter metrics ~help:"idle connections evicted (LRU)"
        "session.pool_evicted_total";
    size_gauge =
      Metrics.gauge metrics ~help:"connections currently pooled"
        "session.pool_size";
    keepalive_probes_total =
      Metrics.counter metrics ~help:"keep-alive probes sent"
        "session.keepalive_probes_total";
    keepalive_failures_total =
      Metrics.counter metrics
        ~help:"connections closed after consecutive missed keep-alives"
        "session.keepalive_failures_total";
    sessions_gauge =
      Metrics.gauge metrics ~help:"sessions currently open" "session.sessions";
    migrations_total =
      Metrics.counter metrics ~help:"completed mid-session migrations"
        "session.migrations_total";
    migration_failures_total =
      Metrics.counter metrics
        ~help:"migration attempts abandoned (no replacement bound)"
        "session.migration_failures_total";
    migration_latency =
      Metrics.histogram metrics
        ~help:"seconds from migration start to replacement bound"
        "session.migration_latency_seconds";
    work_issued_total =
      Metrics.counter metrics ~help:"work items issued (re-issues included)"
        "session.work_issued_total";
    work_completed_total =
      Metrics.counter metrics ~help:"work items completed"
        "session.work_completed_total";
    work_requeued_total =
      Metrics.counter metrics
        ~help:"in-flight work items requeued off a failed connection"
        "session.work_requeued_total";
    work_lost_total =
      Metrics.counter metrics
        ~help:"work items abandoned (sessions torn down mid-flight)"
        "session.work_lost_total";
  }

let conn_host c = c.host

let conn_state c = c.state

let in_flight c = c.in_flight

let pool_size p = Hashtbl.length p.conns

let touch p c =
  p.stamp <- p.stamp + 1;
  c.last_used <- p.stamp;
  c.last_activity <- p.clock ()

let set_size p = Metrics.Gauge.set p.size_gauge (float_of_int (pool_size p))

let remove p c =
  (match Hashtbl.find_opt p.conns c.host with
  | Some current when current == c -> Hashtbl.remove p.conns c.host
  | Some _ | None -> ());
  c.state <- Closed;
  set_size p

(* Deterministic LRU eviction: among idle entries (no bound session, no
   in-flight work, fully established), drop the least recently used,
   ties broken by host name.  The table iteration is folded into a list
   and sorted, so the choice is a pure function of the pool state. *)
let evict_idle p =
  let candidates =
    Hashtbl.fold
      (fun _ c acc ->
        if c.refs = 0 && c.in_flight = 0 && c.state = Established then c :: acc
        else acc)
      p.conns []
  in
  let ordered =
    List.sort
      (fun a b ->
        match Int.compare a.last_used b.last_used with
        | 0 -> String.compare a.host b.host
        | c -> c)
      candidates
  in
  match ordered with
  | victim :: _ ->
    Metrics.Counter.incr p.evicted_total;
    Smart_util.Tracelog.instant p.trace "session.pool_evict";
    remove p victim;
    p.on_evict victim;
    Some victim.host
  | [] -> None

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type session_state = Idle | Selecting | Active | Migrating | Failed

let pp_session_state ppf s =
  Fmt.string ppf
    (match s with
    | Idle -> "idle"
    | Selecting -> "selecting"
    | Active -> "active"
    | Migrating -> "migrating"
    | Failed -> "failed")

type session = {
  name : string;
  mutable sstate : session_state;
  mutable conn : conn option;      (* the active binding *)
  mutable origin : Smart_util.Tracelog.ctx;
      (* context of the client.request span that selected the current
         server; migration spans parent here so a handover reads as part
         of the request that created the binding *)
  mutable migrate_span : Smart_util.Tracelog.span;
  mutable migrate_started : float;
  mutable migrations : int;
  mutable completed : int;
}

let session p ~name =
  Metrics.Gauge.add p.sessions_gauge 1.0;
  {
    name;
    sstate = Idle;
    conn = None;
    origin = Smart_util.Tracelog.root;
    migrate_span = Smart_util.Tracelog.none;
    migrate_started = 0.0;
    migrations = 0;
    completed = 0;
  }

let session_state s = s.sstate

let session_name s = s.name

let session_conn s = s.conn

let session_migrations s = s.migrations

let session_completed s = s.completed

let selecting s =
  (match s.sstate with
  | Idle | Selecting | Failed -> ()
  | Active | Migrating ->
    invalid_arg "Session.selecting: session already bound");
  s.sstate <- Selecting

(* Bind [host]: reuse the pooled entry when one is live, otherwise open
   a fresh Connecting entry (evicting an idle one first when the pool is
   full — a pool whose every entry is busy is allowed to overflow, the
   size gauge shows it).  A Draining or Closed leftover for the same
   peer is replaced. *)
let attach p ~host =
  let fresh () =
    (if Hashtbl.length p.conns >= p.capacity then ignore (evict_idle p));
    let c =
      {
        host;
        state = Connecting;
        refs = 0;
        in_flight = 0;
        last_used = 0;
        last_activity = p.clock ();
        misses = 0;
      }
    in
    Metrics.Counter.incr p.opened_total;
    Hashtbl.replace p.conns host c;
    set_size p;
    c
  in
  let c =
    match Hashtbl.find_opt p.conns host with
    | Some c when c.state = Connecting || c.state = Established ->
      Metrics.Counter.incr p.reused_total;
      c
    | Some stale ->
      remove p stale;
      fresh ()
    | None -> fresh ()
  in
  c.refs <- c.refs + 1;
  touch p c;
  c

(* Release one session's reference; an idle fully-drained entry stays
   pooled for reuse (that is the point of the pool). *)
let detach p c =
  if c.refs > 0 then c.refs <- c.refs - 1;
  if c.state = Draining && c.refs = 0 && c.in_flight = 0 then remove p c

(* Low-level pool entry points for drivers that manage their own
   transport state per connection (the realnet socket pool): the same
   reuse-or-open and reference accounting {!bind} uses, without a
   session. *)
let acquire p ~host = attach p ~host

let release p c = detach p c

let bind p s ~host ~origin =
  (match s.sstate with
  | Idle | Selecting -> ()
  | Active | Migrating | Failed ->
    invalid_arg "Session.bind: session already bound or failed");
  let c = attach p ~host in
  s.conn <- Some c;
  s.origin <- origin;
  s.sstate <- Active;
  c

let established p c =
  if c.state = Connecting then begin
    c.state <- Established;
    touch p c
  end

(* Hand the entry to the driver for closing and forget it.  In-flight
   counters on the forgotten record still resolve (the driver may hold
   work items issued on it); they just no longer affect the pool. *)
let close p c = remove p c

let drain p c =
  match c.state with
  | Closed | Draining -> ()
  | Connecting | Established ->
    if c.refs = 0 && c.in_flight = 0 then remove p c else c.state <- Draining

(* ------------------------------------------------------------------ *)
(* Work accounting                                                     *)
(* ------------------------------------------------------------------ *)

let work_started p s c =
  ignore s;
  Metrics.Counter.incr p.work_issued_total;
  c.in_flight <- c.in_flight + 1;
  touch p c

let settle_conn p c =
  if c.in_flight > 0 then c.in_flight <- c.in_flight - 1;
  if c.state = Draining && c.refs = 0 && c.in_flight = 0 then remove p c

let work_done p s c =
  Metrics.Counter.incr p.work_completed_total;
  s.completed <- s.completed + 1;
  touch p c;
  settle_conn p c

(* The item did not complete on this connection (server crashed,
   partition, drain cut-over): the driver keeps the item and re-issues
   it after migration — requeued, never lost. *)
let work_requeued p s c =
  ignore s;
  Metrics.Counter.incr p.work_requeued_total;
  settle_conn p c

let work_lost p ~count =
  if count > 0 then Metrics.Counter.incr ~by:count p.work_lost_total

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

let begin_migration p s =
  (match s.sstate with
  | Active -> ()
  | Idle | Selecting | Migrating | Failed ->
    invalid_arg "Session.begin_migration: session not active");
  s.sstate <- Migrating;
  s.migrate_started <- p.clock ();
  s.migrate_span <-
    Smart_util.Tracelog.start p.trace ~parent:s.origin "session.migrate"

(* The replacement is bound and the old connection starts draining: its
   in-flight work resolves (completed or requeued by the driver) before
   it closes.  The latency histogram measures decision-to-handover. *)
let complete_migration p s ~host ~origin =
  (match s.sstate with
  | Migrating -> ()
  | Idle | Selecting | Active | Failed ->
    invalid_arg "Session.complete_migration: no migration in progress");
  let old = s.conn in
  let c = attach p ~host in
  s.conn <- Some c;
  s.origin <- origin;
  s.sstate <- Active;
  s.migrations <- s.migrations + 1;
  Metrics.Counter.incr p.migrations_total;
  Metrics.Histogram.observe p.migration_latency
    (p.clock () -. s.migrate_started);
  Smart_util.Tracelog.finish p.trace s.migrate_span;
  s.migrate_span <- Smart_util.Tracelog.none;
  (match old with
  | Some o ->
    detach p o;
    (* a handover back to the same live entry (the server recovered and
       the wizard still ranks it first) must not drain what was just
       bound *)
    if not (o == c) then drain p o
  | None -> ());
  c

(* No replacement could be bound (wizard unreachable, admission shed the
   re-ask, nothing qualified): abandon the attempt, stay on the held
   server, and let the driver back off before trying again. *)
let abandon_migration p s ~reason =
  (match s.sstate with
  | Migrating -> ()
  | Idle | Selecting | Active | Failed ->
    invalid_arg "Session.abandon_migration: no migration in progress");
  ignore reason;
  s.sstate <- Active;
  Metrics.Counter.incr p.migration_failures_total;
  Smart_util.Tracelog.instant p.trace ~parent:s.origin
    "session.migrate_failed";
  Smart_util.Tracelog.finish p.trace s.migrate_span;
  s.migrate_span <- Smart_util.Tracelog.none

let retire p s =
  (match s.conn with
  | Some c ->
    detach p c;
    s.conn <- None
  | None -> ());
  (match s.sstate with
  | Migrating ->
    Smart_util.Tracelog.finish p.trace s.migrate_span;
    s.migrate_span <- Smart_util.Tracelog.none
  | Idle | Selecting | Active | Failed -> ());
  s.sstate <- Idle;
  Metrics.Gauge.add p.sessions_gauge (-1.0)

(* ------------------------------------------------------------------ *)
(* Keep-alive                                                          *)
(* ------------------------------------------------------------------ *)

(* Entries quiet for a full interval, sorted by host so probing order
   (and hence every downstream effect) is deterministic. *)
let keepalive_due p ~now =
  let due =
    Hashtbl.fold
      (fun _ c acc ->
        if
          c.state = Established
          && now -. c.last_activity >= p.keepalive_interval
        then c :: acc
        else acc)
      p.conns []
  in
  List.sort (fun a b -> String.compare a.host b.host) due

let keepalive_sent p c =
  ignore c;
  Metrics.Counter.incr p.keepalive_probes_total

let keepalive_ok p c =
  c.misses <- 0;
  touch p c

(* A missed probe; at the limit the peer is declared dead and the entry
   closed — sessions bound to it observe the Closed state and migrate. *)
let keepalive_miss p c =
  c.misses <- c.misses + 1;
  if c.misses >= p.keepalive_limit then begin
    Metrics.Counter.incr p.keepalive_failures_total;
    Smart_util.Tracelog.instant p.trace "session.keepalive_dead";
    remove p c
  end
