(** The server probe (§3.2.1): turns periodic /proc snapshots into status
    report datagrams for the system monitor.

    The component is sans-IO: [tick] returns the report and the datagram
    to send; simulated and real drivers both call it. *)

(** Report transport (Ch. 6 "UDP vs TCP"): [Udp] for minimal overhead,
    [Tcp] for long reports on lossy/congested networks. *)
type transport = Udp | Tcp

type config = {
  host : string;  (** logical name this server reports as *)
  ip : string;  (** address included in each report *)
  bogomips : float;  (** static CPU speed figure from /proc/cpuinfo *)
  monitor : Output.address;  (** system monitor endpoint reports go to *)
  iface : string;  (** interface whose counters are reported, e.g. "eth0" *)
  transport : transport;  (** how report datagrams travel *)
}

type t

(** [create ?metrics ?trace config] builds a probe.  [metrics] receives
    the [probe.*] instruments (see OBSERVABILITY.md); by default a
    private registry is used.  [trace] records [probe.tick] and
    [probe.build] spans; the tick span's context is embedded in the
    emitted report so downstream components continue the same trace.
    Defaults to {!Smart_util.Tracelog.disabled} (no recording, no
    context on the wire). *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  config ->
  t

(** One probe interval.  Rates (CPU fractions, disk and network per-second
    figures) are differentiated against the previous tick; the first tick
    reports zero rates and a fully idle CPU. *)
val tick :
  t ->
  now:float ->
  snapshot:Smart_host.Procfs.snapshot ->
  (Smart_proto.Report.t * Output.t list, string) result
