(** The server probe (§3.2.1): turns periodic /proc snapshots into status
    report datagrams for the system monitor.

    The component is sans-IO: [tick] returns the report and the datagram
    to send; simulated and real drivers both call it. *)

(** Report transport (Ch. 6 "UDP vs TCP"): [Udp] for minimal overhead,
    [Tcp] for long reports on lossy/congested networks. *)
type transport = Udp | Tcp

type config = {
  host : string;  (** logical name this server reports as *)
  ip : string;  (** address included in each report *)
  bogomips : float;  (** static CPU speed figure from /proc/cpuinfo *)
  monitor : Output.address;  (** system monitor endpoint reports go to *)
  iface : string;  (** interface whose counters are reported, e.g. "eth0" *)
  transport : transport;  (** how report datagrams travel *)
}

type t

(** Adaptive reporting (DESIGN.md §14): scale the report interval with
    the observed variability of the probe's load1 signal.  Each
    successful tick feeds load1 into a deterministic quantile sketch;
    once [min_samples] values are in, the effective interval becomes
    [base_interval] times a factor sliding linearly from [max_factor]
    (flat signal) down to [min_factor] (relative q10-q90 spread >= 1).
    [max_factor] must stay below the sysmon's [missed_intervals]
    (default 3) or a healthy, deliberately slow probe would be expired
    for silence.  Every interval change is metered
    ([probe.report_interval_seconds] gauge,
    [probe.interval_adaptations_total] counter) and traced as a
    [probe.adapt] instant. *)
type adaptive = {
  base_interval : float;  (** the driver's nominal period, seconds *)
  min_factor : float;  (** fastest cadence as a fraction of base *)
  max_factor : float;  (** slowest cadence as a multiple of base *)
  min_samples : int;  (** load1 observations before adapting *)
}

(** min_factor 0.5, max_factor 2.0, min_samples 8. *)
val default_adaptive : base_interval:float -> adaptive

(** [create ?metrics ?trace ?adaptive config] builds a probe.  [metrics] receives
    the [probe.*] instruments (see OBSERVABILITY.md); by default a
    private registry is used.  [trace] records [probe.tick] and
    [probe.build] spans; the tick span's context is embedded in the
    emitted report so downstream components continue the same trace.
    Defaults to {!Smart_util.Tracelog.disabled} (no recording, no
    context on the wire).  [adaptive] (default off) arms the adaptive
    report interval described at {!adaptive}; the sketch PRNG is seeded
    from [config.host], so same-seed runs stay byte-identical. *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  ?adaptive:adaptive ->
  config ->
  t

(** One probe interval.  Rates (CPU fractions, disk and network per-second
    figures) are differentiated against the previous tick; the first tick
    reports zero rates and a fully idle CPU. *)
val tick :
  t ->
  now:float ->
  snapshot:Smart_host.Procfs.snapshot ->
  (Smart_proto.Report.t * Output.t list, string) result

(** The effective report interval a self-scheduling driver should sleep
    before the next {!tick}: [base_interval] until the sketch has
    adapted it, [None] when the probe was built without [adaptive]
    (the driver keeps its own fixed cadence). *)
val report_interval : t -> float option

(** Adaptive interval changes applied so far. *)
val interval_adaptations : t -> int
