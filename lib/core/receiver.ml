(* The receiver (§3.5.2): reassembles transmitter frames from the stream
   and mirrors them into the wizard-side databases, so the wizard can use
   the contents "as if they were generated locally". *)

module Metrics = Smart_util.Metrics

(* Per-source stream state: the decoder plus the resync statistics we
   have already exported, so cumulative decoder counts turn into metric
   increments. *)
type source = {
  dec : Smart_proto.Frame.decoder;
  mutable seen_skipped : int;
  mutable seen_resyncs : int;
}

type t = {
  order : Smart_proto.Endian.order;
  db : Status_db.t;
  trace : Smart_util.Tracelog.t;
  decoders : (string, source) Hashtbl.t;
      (* one stream decoder per transmitter (keyed by source host) *)
  owned_hosts : (string, string list) Hashtbl.t;
      (* transmitter -> hosts its last Sys_db snapshot covered; hosts
         that disappear from a snapshot (expired on the monitor side)
         are dropped from the mirror *)
  mutable current_from : string;
  frames_total : Metrics.Counter.t;
  frames_bytes : Metrics.Counter.t;
  decode_errors_total : Metrics.Counter.t;
  resyncs_total : Metrics.Counter.t;
  corrupt_bytes_total : Metrics.Counter.t;
  transmitters : Metrics.Gauge.t;
  digests_total : Metrics.Counter.t;
  sketches_total : Metrics.Counter.t;
  mutable on_update : (Smart_proto.Frame.payload_type -> unit) option;
  mutable on_digest : (Smart_proto.Digest.t -> unit) option;
  mutable on_sketches : (Smart_proto.Sketch_msg.t -> unit) option;
}

let create ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) ~order db =
  {
    order;
    db;
    trace;
    decoders = Hashtbl.create 4;
    owned_hosts = Hashtbl.create 4;
    current_from = "";
    frames_total =
      Metrics.counter metrics ~help:"frames applied to the mirror"
        "receiver.frames_total";
    frames_bytes =
      Metrics.counter metrics ~help:"payload bytes of applied frames"
        "receiver.frames_bytes";
    decode_errors_total =
      Metrics.counter metrics ~help:"stream or record decode failures"
        "receiver.decode_errors_total";
    resyncs_total =
      Metrics.counter metrics
        ~help:"stream corruption episodes survived by resync"
        "receiver.resyncs_total";
    corrupt_bytes_total =
      Metrics.counter metrics
        ~help:"stream bytes discarded while resynchronising"
        "receiver.corrupt_bytes_total";
    transmitters =
      Metrics.gauge metrics ~help:"transmitter sources with live stream state"
        "receiver.transmitters";
    digests_total =
      Metrics.counter metrics
        ~help:"federation digest frames decoded and handed to the hook"
        "federation.digests_received_total";
    sketches_total =
      Metrics.counter metrics
        ~help:"federation sketch frames decoded and handed to the hook"
        "federation.sketches_received_total";
    on_update = None;
    on_digest = None;
    on_sketches = None;
  }

(* The wizard (distributed mode) registers here to learn when fresh data
   has landed. *)
let set_update_hook t hook = t.on_update <- hook

(* The federation root registers here to collect shard digests; the
   receiver itself never mirrors them into the database — a digest is a
   summary, not server records. *)
let set_digest_hook t hook = t.on_digest <- hook

(* Likewise for sketch batches: the root merges them into deployment-wide
   quantiles; the mirror never stores them. *)
let set_sketch_hook t hook = t.on_sketches <- hook

let decoder_for t ~from =
  match Hashtbl.find_opt t.decoders from with
  | Some s -> s
  | None ->
    let s =
      {
        dec = Smart_proto.Frame.decoder t.order;
        seen_skipped = 0;
        seen_resyncs = 0;
      }
    in
    Hashtbl.replace t.decoders from s;
    Metrics.Gauge.set t.transmitters (float_of_int (Hashtbl.length t.decoders));
    s

(* Frames from a traced push carry the push span's context; the frame
   span adopts it, tying this mirror write to the monitor-side trace
   across the TCP hop. *)
let apply_frame t (frame : Smart_proto.Frame.frame) =
  let frame_span =
    Smart_util.Tracelog.start t.trace
      ~parent:frame.Smart_proto.Frame.trace "receiver.frame"
  in
  let commit_parent = Smart_util.Tracelog.ctx_of frame_span in
  let result =
    match frame.Smart_proto.Frame.payload_type with
    | Smart_proto.Frame.Sys_db ->
      (* the payload is a concatenation of fixed-size sys records; hosts
         owned by this transmitter that are absent from the snapshot have
         expired on the monitor side and leave the mirror too.  The whole
         snapshot is committed as one batched write (one db generation),
         and the absence diff runs through a set, not nested lists. *)
      let data = frame.Smart_proto.Frame.data in
      let size = Smart_proto.Records.sys_record_size in
      let n = String.length data / size in
      let rec load i records =
        if i >= n then Ok (List.rev records)
        else
          match Smart_proto.Records.decode_sys t.order data ~pos:(i * size) with
          | Ok record -> load (i + 1) (record :: records)
          | Error m -> Error m
      in
      (match load 0 [] with
      | Error m -> Error m
      | Ok records ->
        let commit =
          Smart_util.Tracelog.start t.trace ~parent:commit_parent
            "receiver.commit"
        in
        Status_db.update_sys_many t.db records;
        Smart_util.Tracelog.finish t.trace commit;
        let hosts =
          List.map
            (fun (r : Smart_proto.Records.sys_record) ->
              r.Smart_proto.Records.report.Smart_proto.Report.host)
            records
        in
        let covered = Hashtbl.create (max 8 (List.length hosts)) in
        List.iter (fun h -> Hashtbl.replace covered h ()) hosts;
        let previous =
          Option.value ~default:[]
            (Hashtbl.find_opt t.owned_hosts t.current_from)
        in
        List.iter
          (fun host ->
            if not (Hashtbl.mem covered host) then
              Status_db.remove_sys t.db ~host)
          previous;
        Hashtbl.replace t.owned_hosts t.current_from hosts;
        Ok ())
    | Smart_proto.Frame.Net_db ->
      (match Smart_proto.Records.decode_net t.order frame.Smart_proto.Frame.data with
      | Ok record ->
        Status_db.update_net t.db record;
        Ok ()
      | Error m -> Error m)
    | Smart_proto.Frame.Sec_db ->
      (match Smart_proto.Records.decode_sec t.order frame.Smart_proto.Frame.data with
      | Ok record ->
        Status_db.replace_sec t.db record;
        Ok ()
      | Error m -> Error m)
    | Smart_proto.Frame.Digest_db ->
      (match Smart_proto.Digest.decode t.order frame.Smart_proto.Frame.data with
      | Ok digest ->
        Metrics.Counter.incr t.digests_total;
        (match t.on_digest with Some hook -> hook digest | None -> ());
        Ok ()
      | Error m -> Error m)
    | Smart_proto.Frame.Sketch_db ->
      (match
         Smart_proto.Sketch_msg.decode t.order frame.Smart_proto.Frame.data
       with
      | Ok batch ->
        Metrics.Counter.incr t.sketches_total;
        (match t.on_sketches with Some hook -> hook batch | None -> ());
        Ok ()
      | Error m -> Error m)
  in
  (match result with
  | Ok () ->
    Metrics.Counter.incr t.frames_total;
    Metrics.Counter.incr t.frames_bytes
      ~by:(String.length frame.Smart_proto.Frame.data);
    (match t.on_update with
    | Some hook -> hook frame.Smart_proto.Frame.payload_type
    | None -> ())
  | Error _ -> Metrics.Counter.incr t.decode_errors_total);
  Smart_util.Tracelog.finish t.trace frame_span;
  result

(* Feed raw stream bytes from a given transmitter.  Corruption never
   stops the stream: the decoder resyncs past damaged stretches (counted
   in [receiver.resyncs_total] / [receiver.corrupt_bytes_total]) and
   every frame that decodes is applied even when an earlier one in the
   same batch carried an undecodable record.  The result reports the
   first record-level failure, if any. *)
let handle_stream t ~from data =
  t.current_from <- from;
  let src = decoder_for t ~from in
  Smart_proto.Frame.feed src.dec data;
  let frames = Smart_proto.Frame.frames src.dec in
  let skipped = Smart_proto.Frame.skipped_bytes src.dec in
  let resyncs = Smart_proto.Frame.resyncs src.dec in
  if skipped > src.seen_skipped then
    Metrics.Counter.incr t.corrupt_bytes_total ~by:(skipped - src.seen_skipped);
  if resyncs > src.seen_resyncs then
    Metrics.Counter.incr t.resyncs_total ~by:(resyncs - src.seen_resyncs);
  src.seen_skipped <- skipped;
  src.seen_resyncs <- resyncs;
  List.fold_left
    (fun acc f ->
      match (apply_frame t f, acc) with
      | Ok (), _ | _, Error _ -> acc
      | (Error _ as e), Ok () -> e)
    (Ok ()) frames

(* A transmitter connection closed: drop its decoder (partial bytes
   would poison a later stream reusing the tag) and its ownership
   record.  Realnet drivers tag sources per connection, so without this
   the tables grow by one entry per push. *)
let forget_source t ~from =
  Hashtbl.remove t.decoders from;
  Hashtbl.remove t.owned_hosts from;
  Metrics.Gauge.set t.transmitters (float_of_int (Hashtbl.length t.decoders))

let frames_handled t = Metrics.Counter.value t.frames_total

let digests_handled t = Metrics.Counter.value t.digests_total

let sketches_handled t = Metrics.Counter.value t.sketches_total

let decode_errors t = Metrics.Counter.value t.decode_errors_total

let resyncs t = Metrics.Counter.value t.resyncs_total

let corrupt_bytes t = Metrics.Counter.value t.corrupt_bytes_total
