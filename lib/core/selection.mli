(** Pure server-selection algorithm of the wizard (§3.6.1, Fig 1.4):
    evaluate the requirement per server, exclude blacklisted hosts, order
    preferred hosts first, cut to the requested count.

    Extension (the paper's Ch. 6 "3 servers with largest memory"): a
    requirement assigning the temp variable [order_by] ranks the
    candidates by that expression's per-server value, descending, e.g.
    [order_by = host_memory_free]. *)

(** Name of the ranking variable: "order_by". *)
val order_by_variable : string

type server_view = {
  record : Smart_proto.Records.sys_record;  (** latest probe report *)
  net : Smart_proto.Records.net_entry option;
      (** network metrics toward this server *)
  security_level : int option;
      (** clearance from the security table, if any *)
}

(** Immutable view of the status plane at one database generation; the
    unit [select] consumes.  The wizard memoizes it per generation. *)
type snapshot

(** Build a snapshot from views in scan order.  [generation] tags the
    database version the views were derived from (0 for ad-hoc sets). *)
val snapshot : ?generation:int -> server_view list -> snapshot

(** Database generation the snapshot was built from. *)
val snapshot_generation : snapshot -> int

(** Number of server views in the snapshot. *)
val snapshot_size : snapshot -> int

(** The views, in the scan order they were given to [snapshot]. *)
val snapshot_views : snapshot -> server_view list

type verdict = {
  host : string;
  qualified : bool;
  denied : bool;
  preferred_rank : int option;
  order_key : float option;  (** per-server value of [order_by] *)
  faults : Smart_lang.Eval.fault list;
}

type result = {
  selected : string list;  (** best candidates first *)
  verdicts : verdict list; (** every server examined, in scan order *)
}

(** Requirement-variable binding for one server view (exposed for
    tests). *)
val binding_for : server_view -> string -> Smart_lang.Value.t option

(** Evaluate [requirement] against every view in [servers] and pick the
    best [wanted] candidates (denied hosts excluded, preferred hosts
    first, then [order_by] rank).  Pure: same snapshot and program give
    the same result. *)
val select :
  requirement:Smart_lang.Ast.program ->
  servers:snapshot ->
  wanted:int ->
  result

(** Reusable buffers for {!select_columns} (heaps and string buffers);
    one per wizard. *)
type scratch

val scratch : unit -> scratch

(** The bytecode twin of {!select}: evaluate the compiled requirement
    over the columnar snapshot in one pass and return the selected host
    names.  Produces exactly {!select}'s [selected] list for equivalent
    inputs (the test suite holds the two to a differential property);
    skips the per-server diagnostics. *)
val select_columns :
  scratch ->
  fast:Smart_lang.Requirement.fast ->
  view:Status_db.column_view ->
  wanted:int ->
  string list
