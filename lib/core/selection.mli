(** Pure server-selection algorithm of the wizard (§3.6.1, Fig 1.4):
    evaluate the requirement per server, exclude blacklisted hosts, order
    preferred hosts first, cut to the requested count.

    Extension (the paper's Ch. 6 "3 servers with largest memory"): a
    requirement assigning the temp variable [order_by] ranks the
    candidates by that expression's per-server value, descending, e.g.
    [order_by = host_memory_free]. *)

(** Name of the ranking variable: "order_by". *)
val order_by_variable : string

type server_view = {
  record : Smart_proto.Records.sys_record;  (** latest probe report *)
  net : Smart_proto.Records.net_entry option;
      (** network metrics toward this server *)
  security_level : int option;
      (** clearance from the security table, if any *)
}

(** Immutable view of the status plane at one database generation; the
    unit [select] consumes.  The wizard memoizes it per generation. *)
type snapshot

(** Build a snapshot from views in scan order.  [generation] tags the
    database version the views were derived from (0 for ad-hoc sets). *)
val snapshot : ?generation:int -> server_view list -> snapshot

(** Database generation the snapshot was built from. *)
val snapshot_generation : snapshot -> int

(** Number of server views in the snapshot. *)
val snapshot_size : snapshot -> int

(** The views, in the scan order they were given to [snapshot]. *)
val snapshot_views : snapshot -> server_view list

type verdict = {
  host : string;
  qualified : bool;
  denied : bool;
  preferred_rank : int option;
  order_key : float option;  (** per-server value of [order_by] *)
  faults : Smart_lang.Eval.fault list;
}

type result = {
  selected : string list;  (** best candidates first *)
  verdicts : verdict list; (** every server examined, in scan order *)
}

(** Requirement-variable binding for one server view (exposed for
    tests). *)
val binding_for : server_view -> string -> Smart_lang.Value.t option

(** Evaluate [requirement] against every view in [servers] and pick the
    best [wanted] candidates (denied hosts excluded, preferred hosts
    first, then [order_by] rank).  Pure: same snapshot and program give
    the same result. *)
val select :
  requirement:Smart_lang.Ast.program ->
  servers:snapshot ->
  wanted:int ->
  result

(** Reusable buffers for {!select_columns} (heaps and string buffers);
    one per wizard. *)
type scratch

val scratch : unit -> scratch

(** The bytecode twin of {!select}: evaluate the compiled requirement
    over the columnar snapshot in one pass and return the selected host
    names.  Produces exactly {!select}'s [selected] list for equivalent
    inputs (the test suite holds the two to a differential property);
    skips the per-server diagnostics. *)
val select_columns :
  scratch ->
  fast:Smart_lang.Requirement.fast ->
  view:Status_db.column_view ->
  wanted:int ->
  string list

(** {1 Federation}

    A regional (shard) wizard answers a root subquery with
    {!select_scored}: the same one-pass columnar scan as
    {!select_columns}, but each candidate carries the ordering
    information the root needs — the preference rank for preferred
    hosts, the [order_by] key for the rest (NaN when the ranking
    expression produced no comparable value, [neg_infinity] when the
    program has no [order_by] at all).  The root combines per-shard
    lists with {!merge_candidates}. *)

(** Shard-local scored selection: the best [wanted] candidates of this
    shard under the same total order {!select_columns} uses, with their
    merge keys.  The list is the shard-local prefix of the global
    candidate order, which is what makes {!merge_candidates} exact. *)
val select_scored :
  scratch ->
  fast:Smart_lang.Requirement.fast ->
  view:Status_db.column_view ->
  wanted:int ->
  Smart_proto.Fed_msg.candidate list

(** Total order on candidates replicating the flat wizard's ranking:
    preferred hosts first by rank ascending, then [order_by] key
    descending with NaN after every real key, host name breaking all
    remaining ties.  Exposed for tests. *)
val compare_candidates :
  Smart_proto.Fed_msg.candidate -> Smart_proto.Fed_msg.candidate -> int

(** [merge_candidates ~wanted shards] merges per-shard
    [(shard_name, candidates)] lists into the final ranked host list:
    the best [wanted] hosts under {!compare_candidates}, duplicates
    (possible only when shards overlap) keeping their best-ordered
    entry.  Deterministic in shard-reply arrival order: shards are
    sorted by name and every tie falls to the host name.  When the
    shards partition the server population, the result equals what a
    flat wizard over the union database selects (the test suite pins
    this with a differential property). *)
val merge_candidates :
  wanted:int ->
  (string * Smart_proto.Fed_msg.candidate list) list ->
  string list
