(* The system status monitor (§3.2.2): collects probe reports into the
   system database, stamping each record with its arrival time, and
   periodically sweeps out servers whose probe has gone quiet. *)

module Metrics = Smart_util.Metrics

type config = {
  probe_interval : float;  (* expected reporting period of the probes *)
  missed_intervals : int;  (* failures tolerated before expiry (3 in §4.1) *)
}

let default_config = { probe_interval = 5.0; missed_intervals = 3 }

type t = {
  config : config;
  db : Status_db.t;
  trace : Smart_util.Tracelog.t;
  reports_total : Metrics.Counter.t;
  parse_errors_total : Metrics.Counter.t;
  sweeps_total : Metrics.Counter.t;
  expired_total : Metrics.Counter.t;
  hosts : Metrics.Gauge.t;
}

let create ?(config = default_config) ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) db =
  {
    config;
    db;
    trace;
    reports_total =
      Metrics.counter metrics ~help:"probe reports ingested"
        "sysmon.reports_total";
    parse_errors_total =
      Metrics.counter metrics ~help:"malformed report datagrams dropped"
        "sysmon.parse_errors_total";
    sweeps_total =
      Metrics.counter metrics ~help:"expiry sweeps run" "sysmon.sweeps_total";
    expired_total =
      Metrics.counter metrics ~help:"servers expired for probe silence"
        "sysmon.expired_total";
    hosts =
      Metrics.gauge metrics ~help:"servers currently in the system database"
        "sysmon.hosts";
  }

let max_age t = t.config.probe_interval *. float_of_int t.config.missed_intervals

(* One incoming report datagram.  A traced report carries the probe's
   tick-span context: the ingest span adopts it as parent and is left in
   the database as the table's last writer, which is how the report
   pipeline's trace crosses from the probe machine into the monitor. *)
let handle_report t ~now data =
  match Smart_proto.Report.decode data with
  | Error e ->
    Metrics.Counter.incr t.parse_errors_total;
    Error e
  | Ok (report, ctx) ->
    let span =
      Smart_util.Tracelog.start t.trace ~parent:ctx "sysmon.ingest"
    in
    Metrics.Counter.incr t.reports_total;
    Status_db.update_sys t.db
      { Smart_proto.Records.report; updated_at = now };
    Status_db.set_last_trace t.db (Smart_util.Tracelog.ctx_of span);
    Metrics.Gauge.set t.hosts (float_of_int (Status_db.sys_count t.db));
    Smart_util.Tracelog.finish t.trace span;
    Ok report

(* Periodic expiry sweep; returns the number of expired servers. *)
let sweep t ~now =
  let span = Smart_util.Tracelog.start t.trace "sysmon.sweep" in
  let expired = Status_db.sweep_sys t.db ~now ~max_age:(max_age t) in
  Metrics.Counter.incr t.sweeps_total;
  Metrics.Counter.incr t.expired_total ~by:expired;
  Metrics.Gauge.set t.hosts (float_of_int (Status_db.sys_count t.db));
  Smart_util.Tracelog.finish t.trace span;
  expired

let reports_handled t = Metrics.Counter.value t.reports_total

let parse_errors t = Metrics.Counter.value t.parse_errors_total
