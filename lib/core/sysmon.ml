(* The system status monitor (§3.2.2): collects probe reports into the
   system database, stamping each record with its arrival time, and
   periodically sweeps out servers whose probe has gone quiet.

   Flap quarantine: a server that keeps expiring and re-registering (a
   crashing-and-restarting probe, a lossy path) whipsaws the wizard's
   candidate set.  After [flap_threshold] expiries the host is
   quarantined — its reports are counted but not inserted — until it has
   reported continuously for [clean_intervals] probe periods. *)

module Metrics = Smart_util.Metrics

type config = {
  probe_interval : float;  (* expected reporting period of the probes *)
  missed_intervals : int;  (* failures tolerated before expiry (3 in §4.1) *)
  flap_threshold : int;    (* expiries before quarantine; 0 disables *)
  clean_intervals : int;   (* clean probe periods before re-admission *)
}

let default_config =
  {
    probe_interval = 5.0;
    missed_intervals = 3;
    flap_threshold = 3;
    clean_intervals = 3;
  }

(* Adaptive quarantine (DESIGN.md §14): on a lossy network every host
   accumulates flap score, and the fixed threshold would quarantine the
   whole fleet.  Each expiry feeds the host's new flap score into a
   deterministic quantile sketch; once [min_samples] scores are in, the
   effective threshold becomes [factor] x the [quantile] of observed
   scores, clamped to [config.flap_threshold, max_threshold] — only the
   outliers relative to the fleet's own flap rate are quarantined. *)
type flap_policy = {
  factor : float;
  quantile : float;
  max_threshold : int;
  min_samples : int;
}

let default_flap_policy =
  { factor = 1.5; quantile = 0.9; max_threshold = 32; min_samples = 8 }

(* Clean-streak bookkeeping for a quarantined host.  A gap longer than
   1.5 probe intervals means the probe went quiet again: the streak
   restarts. *)
type quarantine = {
  mutable clean_since : float option;  (* start of the current streak *)
  mutable last_report : float;
}

type t = {
  config : config;
  flap_policy : flap_policy option;
  flap_sketch : Smart_util.Sketch.t;  (* flap scores observed at expiry *)
  mutable flap_threshold_now : int;  (* effective quarantine threshold *)
  db : Status_db.t;
  trace : Smart_util.Tracelog.t;
  flaps : (string, int) Hashtbl.t;  (* host -> expiries since last re-admit *)
  quarantined : (string, quarantine) Hashtbl.t;
  reports_total : Metrics.Counter.t;
  parse_errors_total : Metrics.Counter.t;
  sweeps_total : Metrics.Counter.t;
  expired_total : Metrics.Counter.t;
  quarantined_total : Metrics.Counter.t;
  quarantined_reports_total : Metrics.Counter.t;
  readmitted_total : Metrics.Counter.t;
  quarantined_gauge : Metrics.Gauge.t;
  hosts : Metrics.Gauge.t;
  flap_threshold_gauge : Metrics.Gauge.t;
  threshold_adaptations_total : Metrics.Counter.t;
}

let create ?(config = default_config) ?flap_policy
    ?(metrics = Metrics.create ()) ?(trace = Smart_util.Tracelog.disabled) db =
  (match flap_policy with
  | Some p ->
    if
      p.factor <= 0.0 || p.max_threshold < config.flap_threshold
      || not (p.quantile >= 0.0 && p.quantile <= 1.0)
    then invalid_arg "Sysmon.create: bad flap_policy"
  | None -> ());
  {
    config;
    flap_policy;
    flap_sketch =
      Smart_util.Sketch.create
        ~rng:
          (Smart_util.Prng.create
             ~seed:(Smart_util.Crc32.string "sysmon.flaps"))
        ();
    flap_threshold_now = config.flap_threshold;
    db;
    trace;
    flaps = Hashtbl.create 8;
    quarantined = Hashtbl.create 8;
    reports_total =
      Metrics.counter metrics ~help:"probe reports ingested"
        "sysmon.reports_total";
    parse_errors_total =
      Metrics.counter metrics ~help:"malformed report datagrams dropped"
        "sysmon.parse_errors_total";
    sweeps_total =
      Metrics.counter metrics ~help:"expiry sweeps run" "sysmon.sweeps_total";
    expired_total =
      Metrics.counter metrics ~help:"servers expired for probe silence"
        "sysmon.expired_total";
    quarantined_total =
      Metrics.counter metrics ~help:"flapping servers put in quarantine"
        "sysmon.quarantined_total";
    quarantined_reports_total =
      Metrics.counter metrics
        ~help:"reports from quarantined servers, counted but not inserted"
        "sysmon.quarantined_reports_total";
    readmitted_total =
      Metrics.counter metrics
        ~help:"quarantined servers re-admitted after a clean streak"
        "sysmon.readmitted_total";
    quarantined_gauge =
      Metrics.gauge metrics ~help:"servers currently quarantined"
        "sysmon.quarantined";
    hosts =
      Metrics.gauge metrics ~help:"servers currently in the system database"
        "sysmon.hosts";
    flap_threshold_gauge =
      Metrics.gauge metrics
        ~help:"effective flap-quarantine threshold (adaptive sysmon)"
        "sysmon.effective_flap_threshold";
    threshold_adaptations_total =
      Metrics.counter metrics
        ~help:"adaptive flap-threshold changes"
        "sysmon.threshold_adaptations_total";
  }

let max_age t = t.config.probe_interval *. float_of_int t.config.missed_intervals

(* A quarantined host reported.  Returns [true] when the clean streak
   just reached [clean_intervals] probe periods and the host may rejoin
   the database. *)
let quarantine_report t q ~now =
  (match q.clean_since with
  | Some _ when now -. q.last_report <= 1.5 *. t.config.probe_interval -> ()
  | Some _ | None -> q.clean_since <- Some now);
  q.last_report <- now;
  match q.clean_since with
  | Some since ->
    now -. since
    >= t.config.probe_interval *. float_of_int t.config.clean_intervals
  | None -> false

(* One incoming report datagram.  A traced report carries the probe's
   tick-span context: the ingest span adopts it as parent and is left in
   the database as the table's last writer, which is how the report
   pipeline's trace crosses from the probe machine into the monitor. *)
let handle_report t ~now data =
  match Smart_proto.Report.decode data with
  | Error e ->
    Metrics.Counter.incr t.parse_errors_total;
    Error e
  | Ok (report, ctx) ->
    let host = report.Smart_proto.Report.host in
    let admitted =
      match Hashtbl.find_opt t.quarantined host with
      | None -> true
      | Some q ->
        if quarantine_report t q ~now then begin
          Hashtbl.remove t.quarantined host;
          Hashtbl.remove t.flaps host;
          Metrics.Counter.incr t.readmitted_total;
          Metrics.Gauge.set t.quarantined_gauge
            (float_of_int (Hashtbl.length t.quarantined));
          Smart_util.Tracelog.instant t.trace "sysmon.readmit";
          true
        end
        else begin
          Metrics.Counter.incr t.quarantined_reports_total;
          false
        end
    in
    let span =
      Smart_util.Tracelog.start t.trace ~parent:ctx "sysmon.ingest"
    in
    Metrics.Counter.incr t.reports_total;
    if admitted then begin
      Status_db.update_sys t.db
        { Smart_proto.Records.report; updated_at = now };
      Status_db.set_last_trace t.db (Smart_util.Tracelog.ctx_of span)
    end;
    Metrics.Gauge.set t.hosts (float_of_int (Status_db.sys_count t.db));
    Smart_util.Tracelog.finish t.trace span;
    Ok report

(* The control decision: re-derive the effective quarantine threshold
   from the fleet's flap-score distribution.  Metered and traced as a
   [sysmon.tune] instant so same-seed runs stay byte-identical. *)
let tune t =
  match t.flap_policy with
  | None -> ()
  | Some p ->
    if Smart_util.Sketch.count t.flap_sketch >= p.min_samples then begin
      let q = Smart_util.Sketch.quantile t.flap_sketch p.quantile in
      let candidate =
        Int.max t.config.flap_threshold
          (Int.min p.max_threshold
             (int_of_float (Float.round (p.factor *. q))))
      in
      if candidate <> t.flap_threshold_now then begin
        t.flap_threshold_now <- candidate;
        Metrics.Gauge.set t.flap_threshold_gauge (float_of_int candidate);
        Metrics.Counter.incr t.threshold_adaptations_total;
        Smart_util.Tracelog.instant t.trace "sysmon.tune"
      end
    end

(* Periodic expiry sweep; returns the number of expired servers.  Each
   expiry counts against the host's flap score; crossing the threshold
   quarantines it until it reports cleanly for a while.  Under a flap
   policy each new score also feeds the flap sketch and the threshold is
   re-derived before the quarantine test. *)
let sweep t ~now =
  let span = Smart_util.Tracelog.start t.trace "sysmon.sweep" in
  let expired =
    Status_db.sweep_sys_expired t.db ~now ~max_age:(max_age t)
  in
  if t.config.flap_threshold > 0 then
    List.iter
      (fun host ->
        let flaps =
          1 + Option.value ~default:0 (Hashtbl.find_opt t.flaps host)
        in
        Hashtbl.replace t.flaps host flaps;
        (match t.flap_policy with
        | Some _ ->
          Smart_util.Sketch.observe t.flap_sketch (float_of_int flaps);
          tune t
        | None -> ());
        if flaps >= t.flap_threshold_now
           && not (Hashtbl.mem t.quarantined host)
        then begin
          Hashtbl.replace t.quarantined host
            { clean_since = None; last_report = now };
          Metrics.Counter.incr t.quarantined_total;
          Metrics.Gauge.set t.quarantined_gauge
            (float_of_int (Hashtbl.length t.quarantined));
          Smart_util.Tracelog.instant t.trace "sysmon.quarantine"
        end)
      expired;
  Metrics.Counter.incr t.sweeps_total;
  Metrics.Counter.incr t.expired_total ~by:(List.length expired);
  Metrics.Gauge.set t.hosts (float_of_int (Status_db.sys_count t.db));
  Smart_util.Tracelog.finish t.trace span;
  List.length expired

let reports_handled t = Metrics.Counter.value t.reports_total

let parse_errors t = Metrics.Counter.value t.parse_errors_total

let quarantined t = Hashtbl.length t.quarantined

let is_quarantined t ~host = Hashtbl.mem t.quarantined host

let effective_flap_threshold t = t.flap_threshold_now

let threshold_adaptations t =
  Metrics.Counter.value t.threshold_adaptations_total
