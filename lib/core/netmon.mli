(** The network monitor (§3.3.3): sequential (delay, bandwidth) probing
    of its targets, publishing a [net_record] to the status database. *)

(** One path measurement: one-way delay in seconds, bandwidth in
    bytes/second. *)
type probe_result = { delay : float; bandwidth : float }

(** Injected measurement backend (one-way UDP stream in both drivers). *)
type prober = target:string -> probe_result option

type config = {
  monitor_name : string;  (** name this monitor publishes records under *)
  targets : string list;  (** probed strictly in order, never in parallel *)
}

type t

(** [create ?metrics ?trace config db] builds a monitor publishing to
    [db].  [metrics] receives the [netmon.*] instruments (see
    OBSERVABILITY.md); by default a private registry is used.  [trace]
    records one [netmon.round] span per {!probe_all} with a child
    [netmon.probe] span per target; defaults to
    {!Smart_util.Tracelog.disabled}. *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  config ->
  Status_db.t ->
  t

(** Probe every target in order and publish the refreshed record. *)
val probe_all :
  t -> now:float -> prober:prober -> Smart_proto.Records.net_record

(** Probing interval scaling rule of §3.3.3: grows with the n(n-1) path
    count. *)
val recommended_interval : groups:int -> per_probe_cost:float -> float

(** Path probes attempted over the monitor's lifetime. *)
val probes_run : t -> int

(** Path probes whose prober returned nothing (unreachable target). *)
val probe_failures : t -> int
