(* The wizard's server-selection algorithm (§3.6.1, Fig 1.4).

   Pure function from the status databases and a compiled requirement to
   an ordered candidate list:

   1. every live server record is evaluated against the requirement, with
      the server-side variables bound from its system record, the
      monitor_* variables from the network metrics toward it, and
      host_security_level from the security database;
   2. servers named by user_denied_hostN (by name or IP) are excluded
      outright — the Fig 1.4 blacklist;
   3. qualified servers named by user_preferred_hostN come first, in
      preference order; the remaining qualified servers follow in
      database (scan) order — unless the requirement assigns the special
      temp variable [order_by], in which case they are ranked by that
      expression's per-server value, descending.  ("The wizard needs to
      be modified to check multiple server reports for one requirement",
      Ch. 6: `order_by = host_memory_free` expresses "the servers with
      the largest memory".)
   4. the list is cut to min(wanted, max_reply_servers). *)

let order_by_variable = "order_by"

type server_view = {
  record : Smart_proto.Records.sys_record;
  net : Smart_proto.Records.net_entry option;
  security_level : int option;
}

(* An immutable view of the status plane at one database generation.
   The wizard builds it once per generation and reuses it for every
   request until the data changes; [select] only reads it. *)
type snapshot = {
  generation : int;
  views : server_view array;  (* scan order: sorted by host *)
}

let snapshot ?(generation = 0) views =
  { generation; views = Array.of_list views }

let snapshot_generation s = s.generation

let snapshot_size s = Array.length s.views

let snapshot_views s = Array.to_list s.views

type verdict = {
  host : string;
  qualified : bool;
  denied : bool;
  preferred_rank : int option;  (* position in the preferred list *)
  order_key : float option;     (* value of the order_by expression *)
  faults : Smart_lang.Eval.fault list;
}

type result = {
  selected : string list;  (* host names, best first *)
  verdicts : verdict list; (* every server examined, in scan order *)
}

let binding_for (view : server_view) name : Smart_lang.Value.t option =
  let num f = Some (Smart_lang.Value.Num f) in
  match Smart_proto.Report.variable view.record.Smart_proto.Records.report name with
  | Some f -> num f
  | None ->
    (match name with
    | "monitor_network_delay" ->
      Option.map
        (fun e ->
          Smart_lang.Value.Num
            (Smart_util.Units.s_to_ms e.Smart_proto.Records.delay))
        view.net
    | "monitor_network_bw" ->
      Option.map
        (fun e ->
          Smart_lang.Value.Num
            (Smart_util.Units.bytes_per_sec_to_mbps
               e.Smart_proto.Records.bandwidth))
        view.net
    | "host_security_level" ->
      Option.map (fun l -> Smart_lang.Value.Num (float_of_int l))
        view.security_level
    | _ -> None)

(* A denied/preferred entry matches a server by host name or IP. *)
let matches (view : server_view) entry =
  let report = view.record.Smart_proto.Records.report in
  String.equal entry report.Smart_proto.Report.host
  || String.equal entry report.Smart_proto.Report.ip

let rank_in lst view =
  let rec go i = function
    | [] -> None
    | entry :: rest -> if matches view entry then Some i else go (i + 1) rest
  in
  go 0 lst

(* The per-server value of the requirement's last [order_by] assignment,
   read from the statement results. *)
let order_key_of (outcome : Smart_lang.Eval.outcome) (program : Smart_lang.Ast.program) =
  let is_order_by (st : Smart_lang.Ast.statement) =
    match st.Smart_lang.Ast.expr with
    | Smart_lang.Ast.Assign (name, _) -> String.equal name order_by_variable
    | Smart_lang.Ast.Number _ | Smart_lang.Ast.Netaddr _
    | Smart_lang.Ast.Var _ | Smart_lang.Ast.Arith _ | Smart_lang.Ast.Cmp _
    | Smart_lang.Ast.Logic _ | Smart_lang.Ast.Call _ | Smart_lang.Ast.Neg _
    | Smart_lang.Ast.Paren _ ->
      false
  in
  List.fold_left2
    (fun acc st (res : Smart_lang.Eval.statement_result) ->
      if is_order_by st then
        match res.Smart_lang.Eval.value with
        | Ok (Smart_lang.Value.Num f) -> Some f
        | Ok (Smart_lang.Value.Addr _) | Error _ -> acc
      else acc)
    None program outcome.Smart_lang.Eval.statements

let select ~(requirement : Smart_lang.Ast.program) ~(servers : snapshot)
    ~wanted =
  let verdicts =
    Array.to_list
      (Array.map
         (fun view ->
           let outcome =
             Smart_lang.Requirement.evaluate requirement
               ~lookup:(binding_for view)
           in
           let preferred, denied = Smart_lang.Requirement.host_lists outcome in
           {
             host =
               view.record.Smart_proto.Records.report.Smart_proto.Report.host;
             qualified = outcome.Smart_lang.Eval.qualified;
             denied = List.exists (matches view) denied;
             preferred_rank = rank_in preferred view;
             order_key = order_key_of outcome requirement;
             faults = outcome.Smart_lang.Eval.faults;
           })
         servers.views)
  in
  let eligible =
    List.filter (fun v -> v.qualified && not v.denied) verdicts
  in
  let preferred, others =
    List.partition (fun v -> v.preferred_rank <> None) eligible
  in
  let compare_rank a b =
    match (a.preferred_rank, b.preferred_rank) with
    | Some x, Some y -> Int.compare x y
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> 0
  in
  let preferred = List.sort compare_rank preferred in
  (* order_by ranks the non-preferred candidates, best (largest) first;
     List.stable_sort keeps scan order among ties and when no key *)
  let others =
    if List.exists (fun v -> v.order_key <> None) others then
      List.stable_sort
        (fun a b ->
          (* +. 0.0 collapses -0.0 onto 0.0, so keys IEEE-equal tie and
             scan order decides — the property the heap path relies on *)
          Float.compare
            (Option.value ~default:neg_infinity b.order_key +. 0.0)
            (Option.value ~default:neg_infinity a.order_key +. 0.0))
        others
    else others
  in
  let limit = min wanted Smart_proto.Ports.max_reply_servers in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x.host :: take (n - 1) rest
  in
  { selected = take limit (preferred @ others); verdicts }

(* ------------------------------------------------------------------ *)
(* Columnar fast path                                                   *)
(* ------------------------------------------------------------------ *)

module B = Smart_lang.Bytecode

(* Reusable buffers for [select_columns]: two rank heaps plus two
   growable string buffers.  One scratch per wizard; reusing it keeps
   the per-request allocation down to the heap tuples and the reply
   list itself. *)
type scratch = {
  pref : string Smart_util.Heap.t;
      (* eligible preferred hosts, keyed by preference rank *)
  ranked : string Smart_util.Heap.t;
      (* eligible others under order_by, keyed by negated order key *)
  mutable plain : string array;  (* eligible others, scan order *)
  mutable plain_len : int;
  mutable nans : string array;   (* NaN order keys, scan order *)
  mutable nan_len : int;
  mutable qbuf : Bytes.t;        (* sweep plan: per-server verdicts *)
  mutable obuf : float array;    (* sweep plan: per-server order keys *)
}

let scratch () =
  {
    pref = Smart_util.Heap.create ();
    ranked = Smart_util.Heap.create ();
    plain = Array.make 64 "";
    plain_len = 0;
    nans = Array.make 16 "";
    nan_len = 0;
    qbuf = Bytes.make 64 '\000';
    obuf = Array.make 64 0.0;
  }

let grown buf len =
  if len < Array.length buf then buf
  else begin
    let fresh = Array.make (2 * Array.length buf) "" in
    Array.blit buf 0 fresh 0 len;
    fresh
  end

(* The shared scan of the columnar fast path: evaluate the compiled
   requirement over every row and sort the eligible hosts into the
   scratch buffers.  Ordering replays the reference [select] exactly:

   - preferred hosts land in a rank-keyed min-heap whose insertion
     stamp breaks ties in scan order — [List.sort] on ranks is stable;
   - [order_by] candidates land in a min-heap keyed by the negated
     key (normalized by [+. 0.0] so -0.0 ties 0.0, as [Float.compare]
     does after the same normalization in [select]); NaN keys, which
     [Float.compare] orders below -infinity, stay in the [nans] stash
     (scan order) for the caller to emit after every real key;
   - without [order_by], eligible hosts fill [plain] in scan order. *)
let scan scratch ~(fast : Smart_lang.Requirement.fast)
    ~(view : Status_db.column_view) =
  let prog = fast.Smart_lang.Requirement.prog in
  let st = fast.Smart_lang.Requirement.state in
  let cols = view.Status_db.cols in
  Smart_util.Heap.clear scratch.pref;
  Smart_util.Heap.clear scratch.ranked;
  scratch.plain_len <- 0;
  scratch.nan_len <- 0;
  let emit_ordered host key =
    if Float.is_nan key then begin
      scratch.nans <- grown scratch.nans scratch.nan_len;
      scratch.nans.(scratch.nan_len) <- host;
      scratch.nan_len <- scratch.nan_len + 1
    end
    else Smart_util.Heap.push scratch.ranked ~key:(-.(key +. 0.0)) host
  in
  let emit_plain host =
    scratch.plain <- grown scratch.plain scratch.plain_len;
    scratch.plain.(scratch.plain_len) <- host;
    scratch.plain_len <- scratch.plain_len + 1
  in
  (match fast.Smart_lang.Requirement.sweep with
  | Some sw ->
    (* statement-major plan: all verdicts and order keys in one
       column-at-a-time pass, then a straight emit loop (the plan rules
       out user parameters, so no blacklist/preference scan) *)
    if Bytes.length scratch.qbuf < cols.B.n then begin
      scratch.qbuf <- Bytes.make (2 * cols.B.n) '\000';
      scratch.obuf <- Array.make (2 * cols.B.n) 0.0
    end;
    B.run_sweep sw cols ~qualified:scratch.qbuf ~order:scratch.obuf;
    let ordered = prog.B.has_order_by in
    for i = 0 to cols.B.n - 1 do
      if Bytes.get scratch.qbuf i <> '\000' then
        if ordered then
          emit_ordered view.Status_db.hosts.(i) scratch.obuf.(i)
        else emit_plain view.Status_db.hosts.(i)
    done
  | None ->
  for i = 0 to cols.B.n - 1 do
    B.run ~stop_unqualified:true prog st cols ~server:i;
    if B.qualified prog st then begin
      let host = view.Status_db.hosts.(i) in
      let ip = view.Status_db.ips.(i) in
      (* blacklist and preference rank, read off the uparam log: the
         denied/preferred lists are the Addr-valued user parameters in
         assignment order, an entry matching by host name or IP *)
      let denied = ref false in
      let rank = ref (-1) in
      let pcount = ref 0 in
      for k = 0 to st.B.ulog_len - 1 do
        let tag = st.B.ulog_tag.(k) in
        if tag >= 0 then begin
          let entry = prog.B.pool.(tag) in
          if st.B.ulog_slot.(k) < B.preferred_slots then begin
            if
              !rank < 0
              && (String.equal entry host || String.equal entry ip)
            then rank := !pcount;
            incr pcount
          end
          else if
            (not !denied)
            && (String.equal entry host || String.equal entry ip)
          then denied := true
        end
      done;
      if not !denied then
        if !rank >= 0 then
          Smart_util.Heap.push scratch.pref ~key:(float_of_int !rank) host
        else if prog.B.has_order_by then
          emit_ordered host
            (if st.B.order_found then st.B.order_val else neg_infinity)
        else emit_plain host
    end
  done)

(* The reference [take] only stops on exactly 0, so a negative [wanted]
   means "no cut" there; both drains replay that. *)
let cut_limit wanted =
  let limit = min wanted Smart_proto.Ports.max_reply_servers in
  if limit < 0 then max_int else limit

(* The bytecode twin of [select]: one pass over the columnar snapshot,
   same answer (the test suite pins the two against each other with a
   differential property).  NaN order keys are pushed after the scan
   with key +infinity so they pop after every real key — including real
   -infinity keys, whose earlier insertion stamps win the FIFO tie —
   still in scan order. *)
let select_columns scratch ~(fast : Smart_lang.Requirement.fast)
    ~(view : Status_db.column_view) ~wanted =
  let prog = fast.Smart_lang.Requirement.prog in
  scan scratch ~fast ~view;
  for k = 0 to scratch.nan_len - 1 do
    Smart_util.Heap.push scratch.ranked ~key:infinity scratch.nans.(k)
  done;
  let limit = cut_limit wanted in
  let selected = ref [] in
  let count = ref 0 in
  let take host =
    selected := host :: !selected;
    incr count
  in
  let rec drain heap =
    if !count < limit then
      match Smart_util.Heap.pop heap with
      | Some (_, host) ->
        take host;
        drain heap
      | None -> ()
  in
  drain scratch.pref;
  if prog.B.has_order_by then drain scratch.ranked
  else begin
    let k = ref 0 in
    while !count < limit && !k < scratch.plain_len do
      take scratch.plain.(!k);
      incr k
    done
  end;
  List.rev !selected

(* ------------------------------------------------------------------ *)
(* Federation: scored selection and deterministic cross-shard merge     *)
(* ------------------------------------------------------------------ *)

(* A shard wizard's answer to a root subquery: the same scan, but each
   candidate keeps the ordering information the root needs to merge
   per-shard lists into exactly the flat ranking — preference rank for
   preferred hosts, the order_by key for the rest.  The drain order is
   the shard-local selection order, i.e. the restriction of the global
   candidate order to this shard, which is what makes merging per-shard
   prefixes exact (see [merge_candidates]).

   Key recovery: the ranked heap stores the negated normalized key, so
   popping gives it back with [-0.0] already collapsed; NaN keys live in
   the scan-order stash and are emitted last with an honest NaN key so
   the root can order them after every real key, as [Float.compare]
   does. *)
let select_scored scratch ~(fast : Smart_lang.Requirement.fast)
    ~(view : Status_db.column_view) ~wanted =
  let prog = fast.Smart_lang.Requirement.prog in
  scan scratch ~fast ~view;
  let limit = cut_limit wanted in
  let out = ref [] in
  let count = ref 0 in
  let take c =
    out := c :: !out;
    incr count
  in
  let rec drain_pref () =
    if !count < limit then
      match Smart_util.Heap.pop scratch.pref with
      | Some (rank, host) ->
        take
          {
            Smart_proto.Fed_msg.host;
            rank = int_of_float rank;
            key = neg_infinity;
          };
        drain_pref ()
      | None -> ()
  in
  drain_pref ();
  if prog.B.has_order_by then begin
    let rec drain_ranked () =
      if !count < limit then
        match Smart_util.Heap.pop scratch.ranked with
        | Some (negkey, host) ->
          take { Smart_proto.Fed_msg.host; rank = -1; key = -.negkey };
          drain_ranked ()
        | None -> ()
    in
    drain_ranked ();
    let k = ref 0 in
    while !count < limit && !k < scratch.nan_len do
      take { Smart_proto.Fed_msg.host = scratch.nans.(!k); rank = -1;
             key = Float.nan };
      incr k
    done
  end
  else begin
    let k = ref 0 in
    while !count < limit && !k < scratch.plain_len do
      take { Smart_proto.Fed_msg.host = scratch.plain.(!k); rank = -1;
             key = neg_infinity };
      incr k
    done
  end;
  List.rev !out

(* Total order over candidates, identical to the flat wizard's ranking:
   preferred hosts first by preference rank, then the rest by order_by
   key descending with NaN after every real key ([Float.compare] orders
   NaN below -infinity; the [+. 0.0] normalization collapses -0.0 onto
   0.0 exactly as the reference sort does).  The host name breaks every
   remaining tie — scan order is host order, since status databases
   scan sorted by host — which is what keeps a cross-shard merge
   byte-deterministic regardless of reply arrival order. *)
let compare_candidates (a : Smart_proto.Fed_msg.candidate)
    (b : Smart_proto.Fed_msg.candidate) =
  match (a.Smart_proto.Fed_msg.rank >= 0, b.Smart_proto.Fed_msg.rank >= 0) with
  | true, false -> -1
  | false, true -> 1
  | true, true ->
    let c = Int.compare a.Smart_proto.Fed_msg.rank b.Smart_proto.Fed_msg.rank in
    if c <> 0 then c
    else
      String.compare a.Smart_proto.Fed_msg.host b.Smart_proto.Fed_msg.host
  | false, false ->
    let c =
      Float.compare
        (b.Smart_proto.Fed_msg.key +. 0.0)
        (a.Smart_proto.Fed_msg.key +. 0.0)
    in
    if c <> 0 then c
    else
      String.compare a.Smart_proto.Fed_msg.host b.Smart_proto.Fed_msg.host

(* Merge per-shard candidate lists into the final reply: the best
   [wanted] hosts under the global candidate order.

   Exactness: each shard list is the [select_scored] prefix of that
   shard's eligible servers under the same total order, and the order is
   total, so every member of the global top-k is inside its own shard's
   top-k — merging the prefixes and cutting to k loses nothing.  With
   shards partitioning the server set this returns exactly what a flat
   wizard over the union database would have selected.

   Determinism: shard lists are processed in shard-name order and the
   sort's remaining ties fall to the host name, so the result does not
   depend on reply arrival order.  A host reported by several shards
   (possible only when shards overlap) keeps its best-ordered candidate. *)
let merge_candidates ~wanted shards =
  let shards =
    List.sort (fun (a, _) (b, _) -> String.compare a b) shards
  in
  let all = List.concat_map snd shards in
  let sorted = List.stable_sort compare_candidates all in
  let limit = cut_limit wanted in
  let seen = Hashtbl.create 16 in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (c : Smart_proto.Fed_msg.candidate) :: rest ->
      if Hashtbl.mem seen c.Smart_proto.Fed_msg.host then take n rest
      else begin
        Hashtbl.replace seen c.Smart_proto.Fed_msg.host ();
        c.Smart_proto.Fed_msg.host :: take (n - 1) rest
      end
  in
  take limit sorted
