(* The wizard's server-selection algorithm (§3.6.1, Fig 1.4).

   Pure function from the status databases and a compiled requirement to
   an ordered candidate list:

   1. every live server record is evaluated against the requirement, with
      the server-side variables bound from its system record, the
      monitor_* variables from the network metrics toward it, and
      host_security_level from the security database;
   2. servers named by user_denied_hostN (by name or IP) are excluded
      outright — the Fig 1.4 blacklist;
   3. qualified servers named by user_preferred_hostN come first, in
      preference order; the remaining qualified servers follow in
      database (scan) order — unless the requirement assigns the special
      temp variable [order_by], in which case they are ranked by that
      expression's per-server value, descending.  ("The wizard needs to
      be modified to check multiple server reports for one requirement",
      Ch. 6: `order_by = host_memory_free` expresses "the servers with
      the largest memory".)
   4. the list is cut to min(wanted, max_reply_servers). *)

let order_by_variable = "order_by"

type server_view = {
  record : Smart_proto.Records.sys_record;
  net : Smart_proto.Records.net_entry option;
  security_level : int option;
}

(* An immutable view of the status plane at one database generation.
   The wizard builds it once per generation and reuses it for every
   request until the data changes; [select] only reads it. *)
type snapshot = {
  generation : int;
  views : server_view array;  (* scan order: sorted by host *)
}

let snapshot ?(generation = 0) views =
  { generation; views = Array.of_list views }

let snapshot_generation s = s.generation

let snapshot_size s = Array.length s.views

let snapshot_views s = Array.to_list s.views

type verdict = {
  host : string;
  qualified : bool;
  denied : bool;
  preferred_rank : int option;  (* position in the preferred list *)
  order_key : float option;     (* value of the order_by expression *)
  faults : Smart_lang.Eval.fault list;
}

type result = {
  selected : string list;  (* host names, best first *)
  verdicts : verdict list; (* every server examined, in scan order *)
}

let binding_for (view : server_view) name : Smart_lang.Value.t option =
  let num f = Some (Smart_lang.Value.Num f) in
  match Smart_proto.Report.variable view.record.Smart_proto.Records.report name with
  | Some f -> num f
  | None ->
    (match name with
    | "monitor_network_delay" ->
      Option.map
        (fun e ->
          Smart_lang.Value.Num
            (Smart_util.Units.s_to_ms e.Smart_proto.Records.delay))
        view.net
    | "monitor_network_bw" ->
      Option.map
        (fun e ->
          Smart_lang.Value.Num
            (Smart_util.Units.bytes_per_sec_to_mbps
               e.Smart_proto.Records.bandwidth))
        view.net
    | "host_security_level" ->
      Option.map (fun l -> Smart_lang.Value.Num (float_of_int l))
        view.security_level
    | _ -> None)

(* A denied/preferred entry matches a server by host name or IP. *)
let matches (view : server_view) entry =
  let report = view.record.Smart_proto.Records.report in
  String.equal entry report.Smart_proto.Report.host
  || String.equal entry report.Smart_proto.Report.ip

let rank_in lst view =
  let rec go i = function
    | [] -> None
    | entry :: rest -> if matches view entry then Some i else go (i + 1) rest
  in
  go 0 lst

(* The per-server value of the requirement's last [order_by] assignment,
   read from the statement results. *)
let order_key_of (outcome : Smart_lang.Eval.outcome) (program : Smart_lang.Ast.program) =
  let is_order_by (st : Smart_lang.Ast.statement) =
    match st.Smart_lang.Ast.expr with
    | Smart_lang.Ast.Assign (name, _) -> String.equal name order_by_variable
    | Smart_lang.Ast.Number _ | Smart_lang.Ast.Netaddr _
    | Smart_lang.Ast.Var _ | Smart_lang.Ast.Arith _ | Smart_lang.Ast.Cmp _
    | Smart_lang.Ast.Logic _ | Smart_lang.Ast.Call _ | Smart_lang.Ast.Neg _
    | Smart_lang.Ast.Paren _ ->
      false
  in
  List.fold_left2
    (fun acc st (res : Smart_lang.Eval.statement_result) ->
      if is_order_by st then
        match res.Smart_lang.Eval.value with
        | Ok (Smart_lang.Value.Num f) -> Some f
        | Ok (Smart_lang.Value.Addr _) | Error _ -> acc
      else acc)
    None program outcome.Smart_lang.Eval.statements

let select ~(requirement : Smart_lang.Ast.program) ~(servers : snapshot)
    ~wanted =
  let verdicts =
    Array.to_list
      (Array.map
         (fun view ->
           let outcome =
             Smart_lang.Requirement.evaluate requirement
               ~lookup:(binding_for view)
           in
           let preferred, denied = Smart_lang.Requirement.host_lists outcome in
           {
             host =
               view.record.Smart_proto.Records.report.Smart_proto.Report.host;
             qualified = outcome.Smart_lang.Eval.qualified;
             denied = List.exists (matches view) denied;
             preferred_rank = rank_in preferred view;
             order_key = order_key_of outcome requirement;
             faults = outcome.Smart_lang.Eval.faults;
           })
         servers.views)
  in
  let eligible =
    List.filter (fun v -> v.qualified && not v.denied) verdicts
  in
  let preferred, others =
    List.partition (fun v -> v.preferred_rank <> None) eligible
  in
  let compare_rank a b =
    match (a.preferred_rank, b.preferred_rank) with
    | Some x, Some y -> Int.compare x y
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> 0
  in
  let preferred = List.sort compare_rank preferred in
  (* order_by ranks the non-preferred candidates, best (largest) first;
     List.stable_sort keeps scan order among ties and when no key *)
  let others =
    if List.exists (fun v -> v.order_key <> None) others then
      List.stable_sort
        (fun a b ->
          Float.compare
            (Option.value ~default:neg_infinity b.order_key)
            (Option.value ~default:neg_infinity a.order_key))
        others
    else others
  in
  let limit = min wanted Smart_proto.Ports.max_reply_servers in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x.host :: take (n - 1) rest
  in
  { selected = take limit (preferred @ others); verdicts }
