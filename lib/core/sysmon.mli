(** The system status monitor (§3.2.2): ingests probe reports, expires
    servers after [missed_intervals] silent probe periods. *)

type config = {
  probe_interval : float;  (** expected reporting period of the probes *)
  missed_intervals : int;
      (** silent periods tolerated before a server expires (3 in §4.1) *)
  flap_threshold : int;
      (** expiries before a server is quarantined as flapping (its
          reports are counted but no longer inserted); 0 disables *)
  clean_intervals : int;
      (** continuous clean probe periods (no gap over 1.5 intervals)
          before a quarantined server is re-admitted *)
}

(** 5 s probe interval, 3 missed intervals (§4.1); quarantine after 3
    expiries, re-admit after 3 clean intervals. *)
val default_config : config

type t

(** [create ?config ?metrics ?trace db] builds a monitor writing to
    [db].  [metrics] receives the [sysmon.*] instruments (see
    OBSERVABILITY.md); by default a private registry is used.  [trace]
    records [sysmon.ingest] spans (parented on the trace context a
    traced report carries) and [sysmon.sweep] spans; defaults to
    {!Smart_util.Tracelog.disabled}. *)
val create :
  ?config:config ->
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  Status_db.t ->
  t

(** Age beyond which a record is considered stale. *)
val max_age : t -> float

(** Handle one report datagram; updates the database on success.  A
    quarantined host's report is decoded and counted
    ([sysmon.quarantined_reports_total]) but only re-enters the database
    once its clean streak spans [clean_intervals] probe periods. *)
val handle_report :
  t -> now:float -> string -> (Smart_proto.Report.t, string) result

(** Expiry sweep; returns the number of servers dropped.  Every expiry
    raises the host's flap score; at [flap_threshold] the host is
    quarantined ([sysmon.quarantined_total], [sysmon.quarantine] trace
    instant). *)
val sweep : t -> now:float -> int

(** Reports successfully ingested over the monitor's lifetime. *)
val reports_handled : t -> int

(** Malformed report datagrams dropped. *)
val parse_errors : t -> int

(** Servers currently quarantined as flapping. *)
val quarantined : t -> int

val is_quarantined : t -> host:string -> bool
