(** The system status monitor (§3.2.2): ingests probe reports, expires
    servers after [missed_intervals] silent probe periods. *)

type config = {
  probe_interval : float;  (** expected reporting period of the probes *)
  missed_intervals : int;
      (** silent periods tolerated before a server expires (3 in §4.1) *)
}

(** 5 s probe interval, 3 missed intervals (§4.1). *)
val default_config : config

type t

(** [create ?config ?metrics ?trace db] builds a monitor writing to
    [db].  [metrics] receives the [sysmon.*] instruments (see
    OBSERVABILITY.md); by default a private registry is used.  [trace]
    records [sysmon.ingest] spans (parented on the trace context a
    traced report carries) and [sysmon.sweep] spans; defaults to
    {!Smart_util.Tracelog.disabled}. *)
val create :
  ?config:config ->
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  Status_db.t ->
  t

(** Age beyond which a record is considered stale. *)
val max_age : t -> float

(** Handle one report datagram; updates the database on success. *)
val handle_report :
  t -> now:float -> string -> (Smart_proto.Report.t, string) result

(** Expiry sweep; returns the number of servers dropped. *)
val sweep : t -> now:float -> int

(** Reports successfully ingested over the monitor's lifetime. *)
val reports_handled : t -> int

(** Malformed report datagrams dropped. *)
val parse_errors : t -> int
