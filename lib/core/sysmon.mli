(** The system status monitor (§3.2.2): ingests probe reports, expires
    servers after [missed_intervals] silent probe periods. *)

type config = {
  probe_interval : float;  (** expected reporting period of the probes *)
  missed_intervals : int;
      (** silent periods tolerated before a server expires (3 in §4.1) *)
  flap_threshold : int;
      (** expiries before a server is quarantined as flapping (its
          reports are counted but no longer inserted); 0 disables *)
  clean_intervals : int;
      (** continuous clean probe periods (no gap over 1.5 intervals)
          before a quarantined server is re-admitted *)
}

(** 5 s probe interval, 3 missed intervals (§4.1); quarantine after 3
    expiries, re-admit after 3 clean intervals. *)
val default_config : config

(** Adaptive quarantine (DESIGN.md §14): on a lossy network every host
    accumulates flap score and the fixed [flap_threshold] would
    quarantine the whole fleet.  Each expiry feeds the host's new flap
    score into a deterministic quantile sketch ({!Smart_util.Sketch});
    once [min_samples] scores are in, the effective threshold becomes
    [factor] times the [quantile] of observed scores, clamped to
    [[flap_threshold, max_threshold]] — only outliers relative to the
    fleet's own flap rate are quarantined.  Every change is metered
    ([sysmon.effective_flap_threshold] gauge,
    [sysmon.threshold_adaptations_total] counter) and traced as a
    [sysmon.tune] instant. *)
type flap_policy = {
  factor : float;  (** threshold = [factor] x flap-score quantile *)
  quantile : float;  (** which flap-score quantile, in [0, 1] *)
  max_threshold : int;  (** upper clamp *)
  min_samples : int;  (** scores required before adapting *)
}

(** factor 1.5, quantile 0.9, max_threshold 32, min_samples 8. *)
val default_flap_policy : flap_policy

type t

(** [create ?config ?metrics ?trace db] builds a monitor writing to
    [db].  [metrics] receives the [sysmon.*] instruments (see
    OBSERVABILITY.md); by default a private registry is used.  [trace]
    records [sysmon.ingest] spans (parented on the trace context a
    traced report carries) and [sysmon.sweep] spans; defaults to
    {!Smart_util.Tracelog.disabled}.  [flap_policy] (default off) arms
    the adaptive quarantine threshold described at {!flap_policy}; its
    sketch PRNG is seeded from a fixed string, so same-seed runs stay
    byte-identical. *)
val create :
  ?config:config ->
  ?flap_policy:flap_policy ->
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  Status_db.t ->
  t

(** Age beyond which a record is considered stale. *)
val max_age : t -> float

(** Handle one report datagram; updates the database on success.  A
    quarantined host's report is decoded and counted
    ([sysmon.quarantined_reports_total]) but only re-enters the database
    once its clean streak spans [clean_intervals] probe periods. *)
val handle_report :
  t -> now:float -> string -> (Smart_proto.Report.t, string) result

(** Expiry sweep; returns the number of servers dropped.  Every expiry
    raises the host's flap score; at the effective threshold
    ({!effective_flap_threshold} — [flap_threshold] unless a
    {!flap_policy} adapted it) the host is quarantined
    ([sysmon.quarantined_total], [sysmon.quarantine] trace instant). *)
val sweep : t -> now:float -> int

(** Reports successfully ingested over the monitor's lifetime. *)
val reports_handled : t -> int

(** Malformed report datagrams dropped. *)
val parse_errors : t -> int

(** Servers currently quarantined as flapping. *)
val quarantined : t -> int

val is_quarantined : t -> host:string -> bool

(** The quarantine threshold {!sweep} currently applies — the configured
    [flap_threshold] until an armed {!flap_policy} adapts it. *)
val effective_flap_threshold : t -> int

(** Adaptive threshold changes applied so far. *)
val threshold_adaptations : t -> int
