(** The wizard (§3.6.1): decodes user requests, evaluates the requirement
    against the status databases, and replies with a candidate server
    list.  Distributed mode pulls fresh snapshots first. *)

(** Answering strategy: [Centralized] replies straight from the
    receiver-maintained mirror; [Distributed] first pulls fresh
    snapshots from every transmitter and parks the request until the
    data arrives or [freshness_timeout] passes. *)
type mode =
  | Centralized
  | Distributed of {
      transmitters : Output.address list;
      freshness_timeout : float;
    }

(** Multi-group deployments (Fig 3.8): map servers to their group
    monitor and bind monitor_network_* from the local group's mesh
    record toward that group.  Local-group servers get [local_entry]. *)
type groups = {
  local_monitor : string;  (** the wizard's own group's monitor *)
  group_of : string -> string option;
      (** server host -> its group's monitor, [None] when unknown *)
  local_entry : Smart_proto.Records.net_entry;
      (** network metrics assumed toward local-group servers *)
}

(** 0.1 ms, 100 Mbps — the §3.3.3 LAN assumption. *)
val default_local_entry : Smart_proto.Records.net_entry

type config = {
  mode : mode;  (** centralized or distributed answering *)
  groups : groups option;  (** [None] for flat single-group deployments *)
}

type t

(** Compiled requirements kept in the LRU compile cache (128). *)
val default_compile_cache_capacity : int

(** Receiver silence tolerated before replies are flagged degraded;
    the default ([infinity]) never degrades. *)
val default_staleness_threshold : float

(** Adaptive degraded mode (DESIGN.md §14): derive the staleness
    threshold from the observed inter-update gap distribution instead of
    the fixed [staleness_threshold].  Each {!note_update} feeds the gap
    since the previous update into a deterministic quantile sketch
    ({!Smart_util.Sketch}); once [min_samples] gaps have been seen, the
    effective threshold becomes [factor] times the sketch's [quantile],
    clamped to [[floor, cap]].  Every change of the effective threshold
    is metered ([wizard.staleness_threshold_seconds] gauge,
    [wizard.staleness_adaptations_total] counter) and traced as a
    [wizard.staleness_adapt] instant. *)
type staleness_policy = {
  factor : float;  (** threshold = [factor] x gap quantile *)
  quantile : float;  (** which gap quantile to track, in [0, 1] *)
  floor : float;  (** lower clamp, seconds *)
  cap : float;  (** upper clamp, seconds *)
  min_samples : int;  (** gaps required before adapting *)
}

(** factor 5.0, quantile 0.99, floor 0.1 s, cap 300 s, min_samples 8. *)
val default_staleness_policy : staleness_policy

(** Admission control (DESIGN.md §15): a per-client token bucket on the
    request port, so sustained overload sheds fairly instead of
    collapsing.  Each requesting host refills at [rate] requests/second
    with [burst] depth.  A request finding its bucket dry is parked until
    its tokens accrue when that wait is at most [max_delay] (released by
    {!tick}, counted in [wizard.admission_delayed_total]); beyond that it
    is rejected — the reply carries the
    {!Smart_proto.Wizard_msg.reply}[.rejected] flag, no tokens are
    consumed, and [wizard.admission_rejected_total] is bumped.
    [max_clients] bounds the bucket table (LRU). *)
type admission = {
  rate : float;  (** sustained requests per second per client, > 0 *)
  burst : float;  (** bucket depth in requests, >= 1 *)
  max_delay : float;  (** park at most this long before rejecting *)
  max_clients : int;  (** per-client buckets tracked, >= 1 *)
}

(** rate 50 req/s, burst 10, max_delay 0.25 s, max_clients 1024. *)
val default_admission : admission

(** [create ?compile_cache_capacity ?metrics ?clock config db] builds a
    wizard answering from [db].  [compile_cache_capacity] bounds the
    requirement compile cache; 0 disables it (every request
    recompiles).  [metrics] receives the [wizard.*] instruments,
    including the [wizard.request_latency_seconds] histogram (see
    OBSERVABILITY.md); by default a private registry is used.  [clock]
    supplies the time the latency histogram is measured with — the
    engine's virtual clock in simulation, [Unix.gettimeofday] in the
    realnet daemon.  The default is a constant clock (the histogram
    records zeros): this module is sans-IO and never reads real time
    itself.  [trace] records a [wizard.request] span per request
    (parented on the context the request datagram carries) with
    [wizard.parse] (compile-cache misses only), [wizard.snapshot]
    (rebuilds only), [wizard.select] and [wizard.reply] children;
    defaults to {!Smart_util.Tracelog.disabled}.

    [staleness_threshold] (seconds, default {!default_staleness_threshold})
    arms degraded mode: once the receiver feed has been quiet longer
    than this, replies still answer from the last good snapshot but
    carry the [degraded] flag, bump [wizard.degraded_replies_total] and
    record a [wizard.degraded] trace instant.  A database never fed
    through {!note_update} is not considered stale.

    [staleness_policy] (default off) switches degraded mode to the
    adaptive threshold described at {!staleness_policy}; the fixed
    [staleness_threshold] still applies until the policy has seen
    [min_samples] inter-update gaps.

    [shard_name] (default [""]) is this wizard's identity in a
    federation: it is stamped on every {!handle_subquery} reply so the
    root can attribute candidates and digests to the shard, and it
    seeds the wizard's sketch PRNGs so same-seed runs stay
    byte-identical.

    [admission] (default off) arms per-client token-bucket admission
    control on the request port; see {!admission}.  Federation
    subqueries ({!handle_subquery}) are never gated — the root is a
    trusted peer, not a client. *)
val create :
  ?compile_cache_capacity:int ->
  ?metrics:Smart_util.Metrics.t ->
  ?clock:(unit -> float) ->
  ?staleness_threshold:float ->
  ?staleness_policy:staleness_policy ->
  ?trace:Smart_util.Tracelog.t ->
  ?shard_name:string ->
  ?admission:admission ->
  config ->
  Status_db.t ->
  t

(** Called by the receiver for every applied frame. *)
val note_update : t -> unit

(** The network metrics this wizard binds [monitor_network_*] from for
    one server host (direct measurements in flat deployments,
    group-level ones in multi-group deployments).  A shard's digest
    uplink uses this as {!Status_db.summary}'s [net_for], so the
    advertised column ranges cover exactly the values selection
    compares. *)
val net_entry_for :
  t -> host:string -> Smart_proto.Records.net_entry option

(** Handle a request datagram from [from]; returns the reply (centralized)
    or the pull requests (distributed). *)
val handle_request :
  t -> now:float -> from:Output.address -> string -> Output.t list

(** Handle a federation subquery datagram ({!Smart_proto.Fed_msg.query})
    from the root wizard: compile through the shared cache (the root
    forwards the canonical requirement text, so any spelling already
    seen on the request port hits), run the scored columnar scan
    ({!Selection.select_scored}) and reply with this shard's ranked
    candidates, generation and degraded flag.  Counted in
    [federation.shard_subqueries_total]; the [wizard.subquery] span
    parents on the trace context carried in the query. *)
val handle_subquery : t -> from:Output.address -> string -> Output.t list

(** Release distributed-mode requests whose data is fresh or timed out. *)
val tick : t -> now:float -> Output.t list

(** Distributed-mode requests currently parked. *)
val pending_count : t -> int

(** Requests decoded and answered over the wizard's lifetime. *)
val requests_handled : t -> int

(** Requests whose requirement failed to compile (answered with an
    empty server list). *)
val compile_errors : t -> int

(** Requirement compile cache [(hits, misses)]. *)
val compile_cache_stats : t -> int * int

(** Selection result cache [(hits, misses)].  A hit means the reply was
    served without recompiling or rescanning anything; entries are
    invalidated wholesale by any database generation change. *)
val result_cache_stats : t -> int * int

(** How many times the columnar snapshot was rebuilt from scratch;
    stays flat across requests while the database generation is
    unchanged, and in-place system updates refresh rows instead (see
    {!snapshot_refreshes}). *)
val snapshot_rebuilds : t -> int

(** How many times the columnar snapshot was refreshed in place (only
    existing hosts' system rows rewritten, no rebuild). *)
val snapshot_refreshes : t -> int

(** Parked distributed-mode requests answered from the per-tick batch
    memo (one snapshot scan shared by identical requirements). *)
val batched_requests : t -> int

(** The [wizard.request_latency_seconds] histogram in one read:
    count/sum/min/max plus incremental p50/p95/p99 estimates. *)
val request_latency_summary : t -> Smart_util.Metrics.histogram_summary

(** Replies served with the degraded (stale snapshot) flag set. *)
val degraded_replies : t -> int

(** Requests shed by admission control (rejected reply sent). *)
val admission_rejected : t -> int

(** Requests parked by admission control until their tokens accrued. *)
val admission_delayed : t -> int

(** Admission-delayed requests currently parked (released by {!tick}). *)
val delayed_count : t -> int

(** Federation subqueries answered ({!handle_subquery} calls that
    decoded). *)
val subqueries_handled : t -> int

(** Server list of the most recent successful selection. *)
val last_result : t -> string list option

(** This wizard's private mergeable view of
    [wizard.request_latency_seconds]: every request and subquery latency
    observed by this instance (the registry histogram may be shared
    across shard wizards in simulation; this sketch never is).  Ship it
    up the federation uplink under {!Fed_root.latency_metric} via the
    transmitter's [sketches] callback. *)
val latency_sketch : t -> Smart_util.Sketch.t

(** The staleness threshold {!degraded_now} currently tests — the fixed
    [staleness_threshold] until an armed {!staleness_policy} adapts
    it. *)
val staleness_threshold_now : t -> float

(** Adaptive threshold changes applied so far. *)
val staleness_adaptations : t -> int
