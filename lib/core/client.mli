(** Protocol half of the client library (§3.6.2): request construction,
    reply validation, option semantics. *)

(** Why a request failed from the client's point of view. *)
type error =
  | Timeout  (** no reply before the driver's deadline *)
  | Wrong_seq of { expected : int; got : int }
      (** reply carried a stale or foreign sequence number *)
  | Not_enough of { wanted : int; got : int }
      (** wizard returned fewer servers than the option allows *)
  | Malformed of string  (** reply datagram failed to decode *)
  | Admission_rejected
      (** the wizard shed the request under overload (reply carried the
          rejected flag); back off before retrying — the wizard is
          alive, unlike [Timeout] *)
  | Migration_failed of string
      (** a session could not hand over to a replacement server (see
          {!Session}); carries a human-readable reason *)

(** Human-readable rendering of [error]. *)
val pp_error : Format.formatter -> error -> unit

type t

(** [create ?metrics ?trace ~rng ()] builds a client drawing sequence
    numbers from [rng].  [metrics] receives the [client.*] instruments
    (see OBSERVABILITY.md); by default a private registry is used.
    [trace] records a [client.request] span per request — opened by
    {!make_request}, whose context rides in the request datagram (making
    it the root of the request's cross-component trace), and closed when
    {!check_reply} sees the matching reply; defaults to
    {!Smart_util.Tracelog.disabled}. *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  rng:Smart_util.Prng.t ->
  unit ->
  t

(** Build a request with a fresh random sequence number.  Raises
    [Invalid_argument] when [wanted] is out of range. *)
val make_request :
  t ->
  wanted:int ->
  option:Smart_proto.Wizard_msg.option_flag ->
  requirement:string ->
  Smart_proto.Wizard_msg.request

(** The driver reports a retransmit of the outstanding request (same
    sequence number, fresh send after a per-attempt timeout): bumps
    [client.retries_total] and records a [client.retry] trace instant. *)
val note_retry : t -> unit

(** The driver reports how many sends a completed request took (1 = no
    retransmit); feeds the [client.request_attempts] histogram. *)
val note_attempts : t -> int -> unit

(** [is_duplicate_reply t data] is [true] when [data] decodes to a reply
    for a request already completed — a late answer to a retransmitted
    request the driver must drop (counted in
    [client.duplicate_replies_total]).  Undecodable data is not a
    duplicate; {!check_reply} reports the malformation. *)
val is_duplicate_reply : t -> string -> bool

(** Validate a reply datagram and apply the option semantics: [Strict]
    needs the full count back, [Accept_partial] any non-empty subset.
    An accepted reply's sequence number is remembered for
    {!is_duplicate_reply}. *)
val check_reply :
  t -> Smart_proto.Wizard_msg.request -> string -> (string list, error) result

(** Compile the requirement locally and report unbound variables (typo
    candidates) before anything is sent. *)
val lint_requirement : string -> (string list, string) result
