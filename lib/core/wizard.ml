(* The wizard (§3.6.1): a daemon answering user requests on its UDP
   service port.

   Centralized mode answers straight from the receiver-maintained
   databases.  Distributed mode first pulls fresh snapshots from every
   transmitter, parks the request, and answers when the data has arrived
   (or a freshness deadline passes).

   The request path runs on the columnar status snapshot and the
   requirement bytecode:

   - requirements compile (lex, parse, bytecode) into a bounded LRU
     keyed by the token-canonical source, so repeated requests skip the
     front end entirely and reuse one preallocated interpreter state;
   - the status databases maintain a structure-of-arrays snapshot
     ([Status_db.columns]) memoized on the generation — in-place system
     updates refresh single rows, only membership/network/security
     changes rebuild it;
   - selection is one bytecode pass over that snapshot
     ([Selection.select_columns]) reusing a per-wizard scratch;
   - whole selection results are memoized in a second LRU keyed by
     (requirement, wanted) and validated against the generation:
     selection is a pure function of the snapshot, so serving the
     memoized result while the generation is unchanged is exact, and a
     single status write invalidates everything at once;
   - distributed-mode ticks additionally share a per-tick batch memo,
     so a burst of parked requests carrying the same requirement is
     answered by a single scan even when the LRU has churned. *)

type mode =
  | Centralized
  | Distributed of {
      transmitters : Output.address list;
      freshness_timeout : float;
    }

(* Multi-group deployments (Fig 3.8): the network monitors probe peer
   monitors, not individual servers, so the wizard maps each server to
   its group and binds monitor_network_* from the local group's record
   toward that group.  Servers of the local group get [local_entry]
   ("in the local area network, the bandwidth and delay is sufficient",
   §3.3.3). *)
type groups = {
  local_monitor : string;
  group_of : string -> string option;  (* server host -> group monitor *)
  local_entry : Smart_proto.Records.net_entry;
}

let default_local_entry =
  {
    Smart_proto.Records.peer = "";
    delay = 1e-4;
    bandwidth = 100e6 /. 8.0;  (* nominal switched 100 Mbps Ethernet *)
    measured_at = 0.0;
  }

type config = { mode : mode; groups : groups option }

(* Receiver silence tolerated before replies are flagged degraded. *)
let default_staleness_threshold = infinity

(* Adaptive degraded mode (DESIGN.md §14): instead of the fixed
   threshold, tolerate receiver silence up to [factor] times the
   [quantile] of the observed inter-update gaps, clamped to
   [floor, cap].  Below [min_samples] observed gaps the fixed threshold
   still applies, so a cold wizard behaves exactly like a non-adaptive
   one. *)
type staleness_policy = {
  factor : float;
  quantile : float;
  floor : float;
  cap : float;
  min_samples : int;
}

let default_staleness_policy =
  { factor = 5.0; quantile = 0.99; floor = 0.1; cap = 300.0; min_samples = 8 }

let default_compile_cache_capacity = 128

(* Admission control (DESIGN.md §15): a per-client token bucket gates
   the request port so sustained overload sheds fairly instead of
   collapsing.  Each client host gets a bucket refilling at [rate]
   requests per second with [burst] depth; a request finding the bucket
   dry is parked until its tokens accrue when that wait is at most
   [max_delay], and rejected (reply carries the rejected flag, no
   tokens consumed) beyond that.  [max_clients] bounds the bucket
   table — the LRU forgets the least recently offending client, which
   merely refills its bucket. *)
type admission = {
  rate : float;        (* sustained requests per second per client *)
  burst : float;       (* bucket depth, in requests *)
  max_delay : float;   (* park at most this long before rejecting *)
  max_clients : int;   (* per-client buckets tracked *)
}

let default_admission =
  { rate = 50.0; burst = 10.0; max_delay = 0.25; max_clients = 1024 }

type pending = {
  from : Output.address;
  request : Smart_proto.Wizard_msg.request;
  deadline : float;
  target_updates : int;  (* value of [updates_seen] that releases it *)
}

type delayed = {
  d_from : Output.address;
  d_request : Smart_proto.Wizard_msg.request;
  release_at : float;  (* when the client's tokens have accrued *)
}

module Metrics = Smart_util.Metrics

type t = {
  config : config;
  shard_name : string;  (* identity stamped on federation subquery replies *)
  db : Status_db.t;
  pending : pending Queue.t;
  admission : admission option;
  buckets : Smart_net.Shaper.t Smart_util.Lru.t;
      (* per-client token buckets, keyed by the requester's host *)
  delayed : delayed Queue.t;
      (* admitted-late requests waiting for their tokens to accrue *)
  compile_cache :
    (Smart_lang.Requirement.fast, Smart_lang.Requirement.compile_error) result
    Smart_util.Lru.t;
  result_cache : (int * string list) Smart_util.Lru.t;
      (* (generation, servers); stale when the generation moved *)
  scratch : Selection.scratch;
  clock : unit -> float;  (* injected clock for the latency histogram *)
  staleness_threshold : float;
      (* receiver silence beyond this flags replies degraded *)
  staleness_policy : staleness_policy option;
      (* adaptive threshold from inter-update gap quantiles; [None]
         keeps the fixed threshold *)
  mutable staleness_now : float;
      (* the effective threshold [degraded_now] tests; equals
         [staleness_threshold] until the policy adapts it *)
  gap_sketch : Smart_util.Sketch.t;
      (* inter-update gaps observed by [note_update] *)
  latency_sketch : Smart_util.Sketch.t;
      (* per-instance mergeable view of request latency, shipped up the
         federation uplink.  Deliberately NOT the registry histogram's
         backing: shard wizards share one deployment registry, and the
         root must merge per-shard distributions, not one shared one. *)
  trace : Smart_util.Tracelog.t;
  requests_total : Metrics.Counter.t;
  compile_errors_total : Metrics.Counter.t;
  snapshot_rebuilds_total : Metrics.Counter.t;
  snapshot_refreshes_total : Metrics.Counter.t;
  batched_requests_total : Metrics.Counter.t;
  updates_total : Metrics.Counter.t;
  compile_cache_hits_total : Metrics.Counter.t;
  compile_cache_misses_total : Metrics.Counter.t;
  result_cache_hits_total : Metrics.Counter.t;
  result_cache_misses_total : Metrics.Counter.t;
  pending_gauge : Metrics.Gauge.t;
  admission_rejected_total : Metrics.Counter.t;
  admission_delayed_total : Metrics.Counter.t;
  degraded_replies_total : Metrics.Counter.t;
  subqueries_total : Metrics.Counter.t;
  request_latency : Metrics.Histogram.t;
  staleness_threshold_gauge : Metrics.Gauge.t;
  staleness_adaptations_total : Metrics.Counter.t;
  mutable subqueries_seen : int;
      (* this instance's subqueries, as [subqueries_total] aggregates
         across every shard wizard sharing the registry *)
  mutable updates_seen : int;
  mutable last_update_at : float option;
      (* clock time of the last receiver update; [None] until fed *)
  mutable last_result : string list option;
}

let create ?(compile_cache_capacity = default_compile_cache_capacity)
    ?(metrics = Metrics.create ()) ?(clock = fun () -> 0.)
    ?(staleness_threshold = default_staleness_threshold) ?staleness_policy
    ?(trace = Smart_util.Tracelog.disabled) ?(shard_name = "") ?admission
    config db =
  if staleness_threshold <= 0.0 then
    invalid_arg "Wizard.create: staleness_threshold must be positive";
  (match admission with
  | Some a ->
    if
      a.rate <= 0.0 || a.burst < 1.0 || a.max_delay < 0.0 || a.max_clients < 1
    then invalid_arg "Wizard.create: bad admission"
  | None -> ());
  (match staleness_policy with
  | Some p ->
    if
      p.factor <= 0.0 || p.floor <= 0.0 || p.cap < p.floor
      || not (p.quantile >= 0.0 && p.quantile <= 1.0)
    then invalid_arg "Wizard.create: bad staleness_policy"
  | None -> ());
  (* sketch PRNG seeds derive from the shard identity so same-seed runs
     are byte-identical and distinct shards use distinct streams *)
  let seeded tag =
    Smart_util.Sketch.create
      ~rng:
        (Smart_util.Prng.create
           ~seed:(Smart_util.Crc32.string (tag ^ ":" ^ shard_name)))
      ()
  in
  {
    staleness_threshold;
    staleness_policy;
    staleness_now = staleness_threshold;
    gap_sketch = seeded "wizard.staleness";
    latency_sketch = seeded "wizard.latency";
    config;
    shard_name;
    db;
    pending = Queue.create ();
    admission;
    buckets =
      Smart_util.Lru.create
        ~capacity:
          (match admission with Some a -> a.max_clients | None -> 0);
    delayed = Queue.create ();
    compile_cache = Smart_util.Lru.create ~capacity:compile_cache_capacity;
    result_cache = Smart_util.Lru.create ~capacity:compile_cache_capacity;
    scratch = Selection.scratch ();
    clock;
    trace;
    requests_total =
      Metrics.counter metrics ~help:"requests decoded and answered"
        "wizard.requests_total";
    compile_errors_total =
      Metrics.counter metrics ~help:"requests whose requirement failed to compile"
        "wizard.compile_errors_total";
    snapshot_rebuilds_total =
      Metrics.counter metrics ~help:"columnar snapshot full rebuilds"
        "wizard.snapshot_rebuilds_total";
    snapshot_refreshes_total =
      Metrics.counter metrics
        ~help:"columnar snapshot in-place row refreshes"
        "wizard.snapshot_refreshes_total";
    batched_requests_total =
      Metrics.counter metrics
        ~help:"parked requests answered from the per-tick batch memo"
        "wizard.batched_requests_total";
    updates_total =
      Metrics.counter metrics ~help:"receiver frames observed via the update hook"
        "wizard.updates_total";
    compile_cache_hits_total =
      Metrics.counter metrics ~help:"requirement compile cache hits"
        "wizard.compile_cache_hits_total";
    compile_cache_misses_total =
      Metrics.counter metrics ~help:"requirement compile cache misses"
        "wizard.compile_cache_misses_total";
    result_cache_hits_total =
      Metrics.counter metrics ~help:"selection results served from cache"
        "wizard.result_cache_hits_total";
    result_cache_misses_total =
      Metrics.counter metrics
        ~help:"selection results recomputed (cold or stale generation)"
        "wizard.result_cache_misses_total";
    pending_gauge =
      Metrics.gauge metrics ~help:"distributed-mode requests parked"
        "wizard.pending";
    admission_rejected_total =
      Metrics.counter metrics
        ~help:"requests shed by admission control (rejected reply sent)"
        "wizard.admission_rejected_total";
    admission_delayed_total =
      Metrics.counter metrics
        ~help:"requests parked by admission control until tokens accrued"
        "wizard.admission_delayed_total";
    degraded_replies_total =
      Metrics.counter metrics
        ~help:"replies served from a stale snapshot (receiver feed quiet)"
        "wizard.degraded_replies_total";
    subqueries_total =
      Metrics.counter metrics
        ~help:"federation subqueries answered by this shard wizard"
        "federation.shard_subqueries_total";
    request_latency =
      Metrics.histogram metrics
        ~help:"request processing wall time, seconds (decode to reply)"
        "wizard.request_latency_seconds";
    staleness_threshold_gauge =
      Metrics.gauge metrics
        ~help:"effective degraded-mode staleness threshold, seconds"
        "wizard.staleness_threshold_seconds";
    staleness_adaptations_total =
      Metrics.counter metrics
        ~help:"adaptive staleness-threshold changes"
        "wizard.staleness_adaptations_total";
    subqueries_seen = 0;
    updates_seen = 0;
    last_update_at = None;
    last_result = None;
  }

(* Receiver update hook: counts applied frames so distributed-mode
   requests know when every transmitter has re-reported.  Under a
   staleness policy each update also feeds the inter-update gap into
   the gap sketch and re-derives the effective threshold from its
   quantile — the control decision is metered
   ([wizard.staleness_threshold_seconds],
   [wizard.staleness_adaptations_total]) and traced as a
   [wizard.staleness_adapt] instant so same-seed runs stay
   byte-identical. *)
let note_update t =
  t.updates_seen <- t.updates_seen + 1;
  let now = t.clock () in
  (match (t.staleness_policy, t.last_update_at) with
  | Some policy, Some prev ->
    let gap = now -. prev in
    if Float.is_finite gap && gap >= 0.0 then
      Smart_util.Sketch.observe t.gap_sketch gap;
    if Smart_util.Sketch.count t.gap_sketch >= policy.min_samples then begin
      let q = Smart_util.Sketch.quantile t.gap_sketch policy.quantile in
      let candidate =
        Float.min policy.cap (Float.max policy.floor (policy.factor *. q))
      in
      if not (Float.equal candidate t.staleness_now) then begin
        t.staleness_now <- candidate;
        Metrics.Gauge.set t.staleness_threshold_gauge candidate;
        Metrics.Counter.incr t.staleness_adaptations_total;
        Smart_util.Tracelog.instant t.trace "wizard.staleness_adapt"
      end
    end
  | (Some _ | None), _ -> ());
  t.last_update_at <- Some now;
  Metrics.Counter.incr t.updates_total

(* Degraded mode: the receiver feed has been quiet longer than the
   staleness threshold, so the answer comes from the last good snapshot
   and says so.  A database that was never receiver-fed (centralized
   single-process setups, direct test population) is not stale — there
   is no feed to have gone quiet. *)
let degraded_now t =
  match t.last_update_at with
  | None -> false
  | Some ts -> t.clock () -. ts > t.staleness_now

let staleness_threshold_now t = t.staleness_now

(* Network metrics toward one server: direct measurements in flat
   deployments, group-level measurements (local monitor -> server's
   group monitor) in multi-group ones. *)
let net_for t ~host =
  match t.config.groups with
  | None -> Status_db.net_entry_for t.db ~target:host
  | Some { local_monitor; group_of; local_entry } ->
    (match group_of host with
    | None -> Status_db.net_entry_for t.db ~target:host
    | Some group when String.equal group local_monitor ->
      Some { local_entry with Smart_proto.Records.peer = host }
    | Some group ->
      (match Status_db.find_net t.db ~monitor:local_monitor with
      | None -> None
      | Some record ->
        List.find_opt
          (fun (e : Smart_proto.Records.net_entry) ->
            String.equal e.Smart_proto.Records.peer group)
          record.Smart_proto.Records.entries))

let net_lookup t host = net_for t ~host

(* Exposed so a shard's digest uplink summarizes the columnar snapshot
   with exactly the bindings this wizard selects with. *)
let net_entry_for t ~host = net_for t ~host

(* The columnar snapshot at the current generation.  [Status_db.columns]
   does the memoized/refresh/rebuild work; this wrapper adds the trace
   span (only when there is actual work to record) and the counters. *)
let server_columns t ~parent =
  if Status_db.columns_fresh t.db then
    Status_db.columns t.db ~net_for:(net_lookup t)
  else begin
    let span =
      Smart_util.Tracelog.start t.trace ~parent "wizard.snapshot"
    in
    let view = Status_db.columns t.db ~net_for:(net_lookup t) in
    (match Status_db.last_refresh t.db with
    | Status_db.Rebuilt -> Metrics.Counter.incr t.snapshot_rebuilds_total
    | Status_db.Refreshed _ ->
      Metrics.Counter.incr t.snapshot_refreshes_total
    | Status_db.Cached -> ());
    Smart_util.Tracelog.finish t.trace span;
    view
  end

let compile t ~parent ~key source =
  match Smart_util.Lru.find t.compile_cache key with
  | Some result ->
    Metrics.Counter.incr t.compile_cache_hits_total;
    result
  | None ->
    (* only an actual lex+parse+compile earns a parse span: cache hits
       do no front-end work worth a tree node *)
    let span = Smart_util.Tracelog.start t.trace ~parent "wizard.parse" in
    Metrics.Counter.incr t.compile_cache_misses_total;
    let result = Smart_lang.Requirement.compile_fast source in
    Smart_util.Lru.add t.compile_cache key result;
    Smart_util.Tracelog.finish t.trace span;
    result

let reply_to t (request : Smart_proto.Wizard_msg.request) ~parent ~at ~from
    ~servers =
  (* [at] is the request span's start timestamp, reused for the whole
     (µs-scale) reply span: a dedicated clock read would cost as much
     as the span body *)
  let span = Smart_util.Tracelog.start t.trace ~parent ?at "wizard.reply" in
  let degraded = degraded_now t in
  if degraded then begin
    Metrics.Counter.incr t.degraded_replies_total;
    Smart_util.Tracelog.instant t.trace ~parent "wizard.degraded"
  end;
  let reply =
    {
      Smart_proto.Wizard_msg.seq = request.Smart_proto.Wizard_msg.seq;
      servers;
      degraded;
      rejected = false;
    }
  in
  let outputs =
    [
      Output.udp ~host:from.Output.host ~port:from.Output.port
        (Smart_proto.Wizard_msg.encode_reply reply);
    ]
  in
  Smart_util.Tracelog.finish t.trace ?at span;
  outputs

(* The selected servers for (requirement, wanted) at the current
   generation — memoized because selection is a pure function of the
   snapshot, the program and the count.  [None] means the requirement
   did not compile.  [batch] is a per-tick memo shared by a burst of
   parked requests: unlike the LRU it cannot churn, so each distinct
   requirement is scanned at most once per tick. *)
(* The uncached scan: columnar snapshot + one bytecode pass. *)
let select_scan t ~parent ~fast ~wanted =
  let view = server_columns t ~parent in
  let span = Smart_util.Tracelog.start t.trace ~parent "wizard.select" in
  let servers = Selection.select_columns t.scratch ~fast ~view ~wanted in
  Smart_util.Tracelog.finish t.trace span;
  servers

(* An uncached compile still earns its parse span and miss count. *)
let compile_fresh t ~parent source =
  let span = Smart_util.Tracelog.start t.trace ~parent "wizard.parse" in
  Metrics.Counter.incr t.compile_cache_misses_total;
  let result = Smart_lang.Requirement.compile_fast source in
  Smart_util.Tracelog.finish t.trace span;
  result

let select_cached t ~parent ?batch ~source ~wanted () =
  match batch with
  | None when Smart_util.Lru.capacity t.result_cache = 0 ->
    (* caching disabled (capacity 0): the pre-cache request path is
       exactly compile + scan, so skip key derivation entirely — token
       canonicalization would cost more than the cache could save *)
    Metrics.Counter.incr t.result_cache_misses_total;
    (match compile_fresh t ~parent source with
    | Error _ -> None
    | Ok fast -> Some (select_scan t ~parent ~fast ~wanted))
  | _ ->
  let ckey = Smart_lang.Requirement.cache_key source in
  let key = string_of_int wanted ^ "\x00" ^ ckey in
  match
    (match batch with Some b -> Hashtbl.find_opt b key | None -> None)
  with
  | Some servers ->
    Metrics.Counter.incr t.batched_requests_total;
    servers
  | None ->
    let generation = Status_db.generation t.db in
    let servers =
      match Smart_util.Lru.find t.result_cache key with
      | Some (g, servers) when g = generation ->
        Metrics.Counter.incr t.result_cache_hits_total;
        Some servers
      | Some _ | None ->
        Metrics.Counter.incr t.result_cache_misses_total;
        (match compile t ~parent ~key:ckey source with
        | Error _ -> None
        | Ok fast ->
          let servers = select_scan t ~parent ~fast ~wanted in
          Smart_util.Lru.add t.result_cache key (generation, servers);
          Some servers)
    in
    (match batch with Some b -> Hashtbl.replace b key servers | None -> ());
    servers

(* The request span adopts the context carried in the request datagram,
   so the wizard's parse/snapshot/select/reply internals appear as
   children of the requesting client's span. *)
let process t ?batch (request : Smart_proto.Wizard_msg.request) ~from =
  Metrics.Counter.incr t.requests_total;
  let started = t.clock () in
  let span =
    Smart_util.Tracelog.start t.trace ~at:started
      ~parent:request.Smart_proto.Wizard_msg.trace "wizard.request"
  in
  let parent = Smart_util.Tracelog.ctx_of span in
  let at =
    if Smart_util.Tracelog.enabled t.trace then Some started else None
  in
  let outputs =
    match
      select_cached t ~parent ?batch
        ~source:request.Smart_proto.Wizard_msg.requirement
        ~wanted:request.Smart_proto.Wizard_msg.server_num ()
    with
    | None ->
      Metrics.Counter.incr t.compile_errors_total;
      reply_to t request ~parent ~at ~from ~servers:[]
    | Some servers ->
      t.last_result <- Some servers;
      reply_to t request ~parent ~at ~from ~servers
  in
  let finished = t.clock () in
  Smart_util.Tracelog.finish t.trace ~at:finished span;
  let elapsed = finished -. started in
  Metrics.Histogram.observe t.request_latency elapsed;
  if Float.is_finite elapsed then
    Smart_util.Sketch.observe t.latency_sketch elapsed;
  outputs

(* Dispatch an admitted request into the answering machinery. *)
let dispatch t ~now ~from request =
  match t.config.mode with
  | Centralized -> process t request ~from
  | Distributed { transmitters; freshness_timeout } ->
    (* one push = three frames per transmitter *)
    let target_updates = t.updates_seen + (3 * List.length transmitters) in
    Queue.add
      { from; request; deadline = now +. freshness_timeout; target_updates }
      t.pending;
    Metrics.Gauge.set t.pending_gauge (float_of_int (Queue.length t.pending));
    List.map
      (fun (addr : Output.address) ->
        Output.udp ~host:addr.Output.host ~port:addr.Output.port
          Transmitter.pull_request_magic)
      transmitters

(* The rejection reply: empty server list, rejected flag set, no tokens
   consumed.  The degraded flag stays clear — rejection means the wizard
   never looked at the snapshot. *)
let reject t (request : Smart_proto.Wizard_msg.request) ~from =
  Metrics.Counter.incr t.admission_rejected_total;
  Smart_util.Tracelog.instant t.trace
    ~parent:request.Smart_proto.Wizard_msg.trace "wizard.admission_reject";
  [
    Output.udp ~host:from.Output.host ~port:from.Output.port
      (Smart_proto.Wizard_msg.encode_reply
         {
           Smart_proto.Wizard_msg.seq = request.Smart_proto.Wizard_msg.seq;
           servers = [];
           degraded = false;
           rejected = true;
         });
  ]

let bucket_for t (a : admission) key =
  match Smart_util.Lru.find t.buckets key with
  | Some bucket -> bucket
  | None ->
    let bucket = Smart_net.Shaper.create ~burst:a.burst ~rate:a.rate () in
    Smart_util.Lru.add t.buckets key bucket;
    bucket

let handle_request t ~now ~from data =
  match Smart_proto.Wizard_msg.decode_request data with
  | Error _ -> []  (* garbage datagram: drop silently like a real daemon *)
  | Ok request ->
    (match t.admission with
    | None -> dispatch t ~now ~from request
    | Some a ->
      let bucket = bucket_for t a from.Output.host in
      (* peek first: a rejected request must not consume tokens, or shed
         clients would drive the bucket into debt and starve themselves
         (and the bucket) forever *)
      let departure = Smart_net.Shaper.peek bucket ~now ~size:1 in
      if departure <= now then begin
        ignore (Smart_net.Shaper.admit bucket ~now ~size:1);
        dispatch t ~now ~from request
      end
      else if departure -. now <= a.max_delay then begin
        ignore (Smart_net.Shaper.admit bucket ~now ~size:1);
        Metrics.Counter.incr t.admission_delayed_total;
        Smart_util.Tracelog.instant t.trace
          ~parent:request.Smart_proto.Wizard_msg.trace
          "wizard.admission_delay";
        Queue.add
          { d_from = from; d_request = request; release_at = departure }
          t.delayed;
        []
      end
      else reject t request ~from)

(* Federation subquery (regional wizard side): same compile cache, same
   columnar scan, but the answer keeps each candidate's merge key so the
   root can interleave shard lists into the flat ranking.  The root
   forwards the canonical requirement text, which is a fixpoint of
   [Requirement.cache_key] — so a subquery triggered by any spelling of
   a requirement this shard has already compiled hits the cache.  The
   subquery span parents on the context carried in the query, tying the
   shard-side work into the root's fan-out trace. *)
let handle_subquery t ~from data =
  match Smart_proto.Fed_msg.decode_query data with
  | Error _ -> []  (* garbage datagram: drop, like the request port *)
  | Ok query ->
    Metrics.Counter.incr t.subqueries_total;
    t.subqueries_seen <- t.subqueries_seen + 1;
    let started = t.clock () in
    let span =
      Smart_util.Tracelog.start t.trace ~at:started
        ~parent:query.Smart_proto.Fed_msg.trace "wizard.subquery"
    in
    let parent = Smart_util.Tracelog.ctx_of span in
    let source = query.Smart_proto.Fed_msg.requirement in
    let ckey = Smart_lang.Requirement.cache_key source in
    let candidates =
      match compile t ~parent ~key:ckey source with
      | Error _ ->
        Metrics.Counter.incr t.compile_errors_total;
        []
      | Ok fast ->
        let view = server_columns t ~parent in
        let sel =
          Smart_util.Tracelog.start t.trace ~parent "wizard.select"
        in
        let candidates =
          Selection.select_scored t.scratch ~fast ~view
            ~wanted:query.Smart_proto.Fed_msg.wanted
        in
        Smart_util.Tracelog.finish t.trace sel;
        candidates
    in
    let degraded = degraded_now t in
    if degraded then Metrics.Counter.incr t.degraded_replies_total;
    let reply =
      {
        Smart_proto.Fed_msg.seq = query.Smart_proto.Fed_msg.seq;
        shard = t.shard_name;
        generation = Status_db.generation t.db;
        degraded;
        candidates;
      }
    in
    let outputs =
      [
        Output.udp ~host:from.Output.host ~port:from.Output.port
          (Smart_proto.Fed_msg.encode_reply reply);
      ]
    in
    let finished = t.clock () in
    Smart_util.Tracelog.finish t.trace ~at:finished span;
    let elapsed = finished -. started in
    Metrics.Histogram.observe t.request_latency elapsed;
    if Float.is_finite elapsed then
      Smart_util.Sketch.observe t.latency_sketch elapsed;
    outputs

(* Flush distributed-mode requests whose data is fresh (all transmitters
   re-reported) or whose deadline passed.  Replies go out in arrival
   order; the shared batch memo means a burst of identical requirements
   costs one snapshot scan regardless of LRU churn. *)
let tick t ~now =
  (* admission-delayed requests whose tokens have accrued re-enter the
     ordinary dispatch (a distributed-mode wizard then parks them again,
     this time for freshness) in arrival order *)
  let released =
    if Queue.is_empty t.delayed then []
    else begin
      let held = List.of_seq (Queue.to_seq t.delayed) in
      Queue.clear t.delayed;
      let ready, waiting =
        List.partition (fun d -> now >= d.release_at) held
      in
      List.iter (fun d -> Queue.add d t.delayed) waiting;
      List.concat_map
        (fun d -> dispatch t ~now ~from:d.d_from d.d_request)
        ready
    end
  in
  let parked = List.of_seq (Queue.to_seq t.pending) in
  Queue.clear t.pending;
  let ready, waiting =
    List.partition
      (fun p -> t.updates_seen >= p.target_updates || now >= p.deadline)
      parked
  in
  List.iter (fun p -> Queue.add p t.pending) waiting;
  Metrics.Gauge.set t.pending_gauge (float_of_int (Queue.length t.pending));
  released
  @
  match ready with
  | [] -> []
  | ready ->
    let batch = Hashtbl.create 16 in
    List.concat_map (fun p -> process t ~batch p.request ~from:p.from) ready

let pending_count t = Queue.length t.pending

let requests_handled t = Metrics.Counter.value t.requests_total

let compile_errors t = Metrics.Counter.value t.compile_errors_total

(* Stats come from the wizard's own counters, not the LRU internals:
   the capacity-0 bypass never consults the LRU yet still counts its
   compiles as misses. *)
let compile_cache_stats t =
  ( Metrics.Counter.value t.compile_cache_hits_total,
    Metrics.Counter.value t.compile_cache_misses_total )

let result_cache_stats t =
  ( Metrics.Counter.value t.result_cache_hits_total,
    Metrics.Counter.value t.result_cache_misses_total )

let snapshot_rebuilds t = Metrics.Counter.value t.snapshot_rebuilds_total

let snapshot_refreshes t = Metrics.Counter.value t.snapshot_refreshes_total

let batched_requests t = Metrics.Counter.value t.batched_requests_total

let request_latency_summary t = Metrics.histogram_summary t.request_latency

let degraded_replies t = Metrics.Counter.value t.degraded_replies_total

let admission_rejected t = Metrics.Counter.value t.admission_rejected_total

let admission_delayed t = Metrics.Counter.value t.admission_delayed_total

let delayed_count t = Queue.length t.delayed

let subqueries_handled t = t.subqueries_seen

let latency_sketch t = t.latency_sketch

let staleness_adaptations t = Metrics.Counter.value t.staleness_adaptations_total

let last_result t = t.last_result
