(* The security monitor (§3.4): in this implementation it imports the
   dummy security log — (host, clearance level) pairs — into the security
   database.  The component boundary is deliberately thin so third-party
   agents (the thesis mentions Cisco NAC) can replace the log source. *)

module Metrics = Smart_util.Metrics

type t = {
  db : Status_db.t;
  trace : Smart_util.Tracelog.t;
  refreshes_total : Metrics.Counter.t;
  parse_errors_total : Metrics.Counter.t;
  hosts : Metrics.Gauge.t;
  mutable last_error : string option;
}

let create ?(metrics = Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) db =
  {
    db;
    trace;
    refreshes_total =
      Metrics.counter metrics ~help:"security table replacements"
        "secmon.refreshes_total";
    parse_errors_total =
      Metrics.counter metrics ~help:"security logs that failed to parse"
        "secmon.parse_errors_total";
    hosts =
      Metrics.gauge metrics ~help:"hosts with a clearance level"
        "secmon.hosts";
    last_error = None;
  }

let note_refresh t (record : Smart_proto.Records.sec_record) =
  Metrics.Counter.incr t.refreshes_total;
  Metrics.Gauge.set t.hosts
    (float_of_int (List.length record.Smart_proto.Records.entries))

(* Ingest a complete security log text. *)
let refresh_from_log t text =
  let span = Smart_util.Tracelog.start t.trace "secmon.refresh" in
  let result =
    match Smart_proto.Records.parse_security_log text with
    | Ok record ->
      Status_db.replace_sec t.db record;
      note_refresh t record;
      Ok record
    | Error e ->
      Metrics.Counter.incr t.parse_errors_total;
      t.last_error <- Some e;
      Error e
  in
  Smart_util.Tracelog.finish t.trace span;
  result

(* Direct injection for pluggable agents. *)
let refresh t record =
  let span = Smart_util.Tracelog.start t.trace "secmon.refresh" in
  Status_db.replace_sec t.db record;
  note_refresh t record;
  Smart_util.Tracelog.finish t.trace span

let refreshes t = Metrics.Counter.value t.refreshes_total

let last_error t = t.last_error
