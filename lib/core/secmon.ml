(* The security monitor (§3.4): in this implementation it imports the
   dummy security log — (host, clearance level) pairs — into the security
   database.  The component boundary is deliberately thin so third-party
   agents (the thesis mentions Cisco NAC) can replace the log source. *)

module Metrics = Smart_util.Metrics

type t = {
  db : Status_db.t;
  refreshes_total : Metrics.Counter.t;
  parse_errors_total : Metrics.Counter.t;
  hosts : Metrics.Gauge.t;
  mutable last_error : string option;
}

let create ?(metrics = Metrics.create ()) db =
  {
    db;
    refreshes_total =
      Metrics.counter metrics ~help:"security table replacements"
        "secmon.refreshes_total";
    parse_errors_total =
      Metrics.counter metrics ~help:"security logs that failed to parse"
        "secmon.parse_errors_total";
    hosts =
      Metrics.gauge metrics ~help:"hosts with a clearance level"
        "secmon.hosts";
    last_error = None;
  }

let note_refresh t (record : Smart_proto.Records.sec_record) =
  Metrics.Counter.incr t.refreshes_total;
  Metrics.Gauge.set t.hosts
    (float_of_int (List.length record.Smart_proto.Records.entries))

(* Ingest a complete security log text. *)
let refresh_from_log t text =
  match Smart_proto.Records.parse_security_log text with
  | Ok record ->
    Status_db.replace_sec t.db record;
    note_refresh t record;
    Ok record
  | Error e ->
    Metrics.Counter.incr t.parse_errors_total;
    t.last_error <- Some e;
    Error e

(* Direct injection for pluggable agents. *)
let refresh t record =
  Status_db.replace_sec t.db record;
  note_refresh t record

let refreshes t = Metrics.Counter.value t.refreshes_total

let last_error t = t.last_error
