(* The server probe (§3.2.1): samples the five /proc files, derives rates
   from the previous sample, and emits one ASCII report datagram to the
   system monitor per interval. *)

(* Ch. 6 "UDP vs TCP": UDP keeps the probing overhead minimal; TCP is
   for long reports on congested networks where datagram loss would make
   the status unusable. *)
type transport = Udp | Tcp

type config = {
  host : string;
  ip : string;
  bogomips : float;
  monitor : Output.address;       (* system monitor's endpoint *)
  iface : string;                 (* interface to report, e.g. "eth0" *)
  transport : transport;
}

(* Adaptive reporting (DESIGN.md §14): scale the report interval with
   the observed variability of the probe's headline signal (load1).  A
   steady host earns a slow cadence (up to [max_factor] x base), a noisy
   one reports fast (down to [min_factor] x base).  [max_factor] must
   stay below the sysmon's missed_intervals (3) or a healthy slow probe
   would be expired for silence. *)
type adaptive = {
  base_interval : float;  (* the driver's nominal period *)
  min_factor : float;
  max_factor : float;
  min_samples : int;      (* load1 observations before adapting *)
}

let default_adaptive ~base_interval =
  { base_interval; min_factor = 0.5; max_factor = 2.0; min_samples = 8 }

type sample = {
  at : float;
  cpu : Smart_host.Procfs.cpu_jiffies;
  disk : Smart_host.Procfs.disk_io;
  net : Smart_host.Procfs.netdev_stat;
}

type t = {
  config : config;
  adaptive : adaptive option;
  value_sketch : Smart_util.Sketch.t;  (* load1 observations *)
  mutable interval_now : float;  (* effective report interval, seconds *)
  mutable prev : sample option;
  trace : Smart_util.Tracelog.t;
  reports_total : Smart_util.Metrics.Counter.t;
  report_bytes_total : Smart_util.Metrics.Counter.t;
  errors_total : Smart_util.Metrics.Counter.t;
  interval_gauge : Smart_util.Metrics.Gauge.t;
  adaptations_total : Smart_util.Metrics.Counter.t;
}

let create ?(metrics = Smart_util.Metrics.create ())
    ?(trace = Smart_util.Tracelog.disabled) ?adaptive config =
  (match adaptive with
  | Some a ->
    if
      a.base_interval <= 0.0 || a.min_factor <= 0.0
      || a.max_factor < a.min_factor
    then invalid_arg "Probe.create: bad adaptive config"
  | None -> ());
  {
    config;
    adaptive;
    value_sketch =
      Smart_util.Sketch.create
        ~rng:
          (Smart_util.Prng.create
             ~seed:(Smart_util.Crc32.string ("probe.adapt:" ^ config.host)))
        ();
    interval_now =
      (match adaptive with Some a -> a.base_interval | None -> 0.0);
    prev = None;
    trace;
    reports_total =
      Smart_util.Metrics.counter metrics ~help:"report datagrams emitted"
        "probe.reports_total";
    report_bytes_total =
      Smart_util.Metrics.counter metrics ~help:"report payload bytes emitted"
        "probe.report_bytes_total";
    errors_total =
      Smart_util.Metrics.counter metrics
        ~help:"ticks lost to /proc parse or interface failures"
        "probe.errors_total";
    interval_gauge =
      Smart_util.Metrics.gauge metrics
        ~help:"effective report interval, seconds (adaptive probes)"
        "probe.report_interval_seconds";
    adaptations_total =
      Smart_util.Metrics.counter metrics
        ~help:"adaptive report-interval changes"
        "probe.interval_adaptations_total";
  }

let ( let* ) r f = Result.bind r f

let find_iface config stats =
  match
    List.find_opt
      (fun s -> String.equal s.Smart_host.Procfs.iface config.iface)
      stats
  with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "probe: no interface %s" config.iface)

(* Per-second rate of a counter between two samples. *)
let rate ~dt current previous = if dt <= 0.0 then 0.0 else (current -. previous) /. dt

let report_of t ~now ~(loadavg : Smart_host.Procfs.loadavg)
    ~(cpu : Smart_host.Procfs.cpu_jiffies) ~(mem : Smart_host.Procfs.meminfo)
    ~(disk : Smart_host.Procfs.disk_io) ~(net : Smart_host.Procfs.netdev_stat)
    =
  let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0) in
  let cpu_fracs, disk_rates, net_rates =
    match t.prev with
    | None ->
      (* first sample: no interval to differentiate over *)
      ((0.0, 0.0, 0.0, 1.0), (0.0, 0.0, 0.0, 0.0), (0.0, 0.0, 0.0, 0.0))
    | Some prev ->
      let dt = now -. prev.at in
      let du = cpu.Smart_host.Procfs.user -. prev.cpu.Smart_host.Procfs.user in
      let dn = cpu.Smart_host.Procfs.nice -. prev.cpu.Smart_host.Procfs.nice in
      let ds =
        cpu.Smart_host.Procfs.system -. prev.cpu.Smart_host.Procfs.system
      in
      let di = cpu.Smart_host.Procfs.idle -. prev.cpu.Smart_host.Procfs.idle in
      let total = du +. dn +. ds +. di in
      let frac x = if total <= 0.0 then 0.0 else x /. total in
      ( (frac du, frac dn, frac ds, frac di),
        ( rate ~dt disk.Smart_host.Procfs.rreq prev.disk.Smart_host.Procfs.rreq,
          rate ~dt disk.Smart_host.Procfs.rblocks
            prev.disk.Smart_host.Procfs.rblocks,
          rate ~dt disk.Smart_host.Procfs.wreq prev.disk.Smart_host.Procfs.wreq,
          rate ~dt disk.Smart_host.Procfs.wblocks
            prev.disk.Smart_host.Procfs.wblocks ),
        ( rate ~dt net.Smart_host.Procfs.rbytes prev.net.Smart_host.Procfs.rbytes,
          rate ~dt net.Smart_host.Procfs.rpackets
            prev.net.Smart_host.Procfs.rpackets,
          rate ~dt net.Smart_host.Procfs.tbytes prev.net.Smart_host.Procfs.tbytes,
          rate ~dt net.Smart_host.Procfs.tpackets
            prev.net.Smart_host.Procfs.tpackets ) )
  in
  let cpu_user, cpu_nice, cpu_system, cpu_free = cpu_fracs in
  let disk_rreq, disk_rblocks, disk_wreq, disk_wblocks = disk_rates in
  let net_rbytes, net_rpackets, net_tbytes, net_tpackets = net_rates in
  {
    Smart_proto.Report.host = t.config.host;
    ip = t.config.ip;
    load1 = loadavg.Smart_host.Procfs.l1;
    load5 = loadavg.Smart_host.Procfs.l5;
    load15 = loadavg.Smart_host.Procfs.l15;
    cpu_user;
    cpu_nice;
    cpu_system;
    cpu_free;
    bogomips = t.config.bogomips;
    mem_total = mb mem.Smart_host.Procfs.total;
    mem_used = mb mem.Smart_host.Procfs.used;
    mem_free = mb mem.Smart_host.Procfs.free;
    mem_buffers = mb mem.Smart_host.Procfs.buffers;
    mem_cached = mb mem.Smart_host.Procfs.cached;
    disk_rreq;
    disk_rblocks;
    disk_wreq;
    disk_wblocks;
    net_rbytes;
    net_rpackets;
    net_tbytes;
    net_tpackets;
  }

(* One probe interval: parse the /proc snapshot, build the report, emit
   the datagram.  The tick span is the root of the report pipeline's
   trace: its context rides inside the report payload so the monitor and
   receiver spans downstream join the same tree. *)
let tick_inner t ~tick_span ~now ~(snapshot : Smart_host.Procfs.snapshot) =
  let* loadavg =
    Smart_host.Procfs.parse_loadavg snapshot.Smart_host.Procfs.loadavg_text
  in
  let* cpu, disk =
    Smart_host.Procfs.parse_stat snapshot.Smart_host.Procfs.stat_text
  in
  let* mem =
    Smart_host.Procfs.parse_meminfo snapshot.Smart_host.Procfs.meminfo_text
  in
  let* netdevs =
    Smart_host.Procfs.parse_net_dev snapshot.Smart_host.Procfs.netdev_text
  in
  let* net = find_iface t.config netdevs in
  let build =
    Smart_util.Tracelog.start t.trace
      ~parent:(Smart_util.Tracelog.ctx_of tick_span) "probe.build"
  in
  let report = report_of t ~now ~loadavg ~cpu ~mem ~disk ~net in
  t.prev <- Some { at = now; cpu; disk; net };
  let send =
    match t.config.transport with
    | Udp -> Output.udp
    | Tcp -> Output.stream
  in
  let payload =
    Smart_proto.Report.to_string
      ~trace:(Smart_util.Tracelog.ctx_of tick_span) report
  in
  Smart_util.Tracelog.finish t.trace build;
  Ok
    ( report,
      [
        send ~host:t.config.monitor.Output.host
          ~port:t.config.monitor.Output.port payload;
      ],
      String.length payload )

(* The control decision: interval = base x a factor sliding linearly
   from [max_factor] (no spread: a flat signal tolerates slow reports)
   down to [min_factor] (relative inter-quantile spread >= 1).  Spread
   is (q90 - q10) / max(|median|, 0.1) over the load1 sketch — a
   bounded, deterministic dispersion measure that needs no running
   variance. *)
let adapt t report =
  match t.adaptive with
  | None -> ()
  | Some a ->
    let load1 = report.Smart_proto.Report.load1 in
    if Float.is_finite load1 then
      Smart_util.Sketch.observe t.value_sketch load1;
    if Smart_util.Sketch.count t.value_sketch >= a.min_samples then begin
      let q v = Smart_util.Sketch.quantile t.value_sketch v in
      let spread =
        (q 0.9 -. q 0.1) /. Float.max 0.1 (Float.abs (q 0.5))
      in
      let factor =
        Float.max a.min_factor
          (Float.min a.max_factor
             (a.max_factor -. (a.max_factor -. a.min_factor) *. Float.min 1.0 spread))
      in
      let interval = a.base_interval *. factor in
      if not (Float.equal interval t.interval_now) then begin
        t.interval_now <- interval;
        Smart_util.Metrics.Gauge.set t.interval_gauge interval;
        Smart_util.Metrics.Counter.incr t.adaptations_total;
        Smart_util.Tracelog.instant t.trace "probe.adapt"
      end
    end

let tick t ~now ~snapshot =
  let tick_span = Smart_util.Tracelog.start t.trace "probe.tick" in
  let result =
    match tick_inner t ~tick_span ~now ~snapshot with
    | Ok (report, outputs, bytes) ->
      Smart_util.Metrics.Counter.incr t.reports_total;
      Smart_util.Metrics.Counter.incr t.report_bytes_total ~by:bytes;
      adapt t report;
      Ok (report, outputs)
    | Error _ as e ->
      Smart_util.Metrics.Counter.incr t.errors_total;
      e
  in
  Smart_util.Tracelog.finish t.trace tick_span;
  result

let report_interval t =
  match t.adaptive with None -> None | Some _ -> Some t.interval_now

let interval_adaptations t =
  Smart_util.Metrics.Counter.value t.adaptations_total
