(** The security monitor (§3.4): imports (host, clearance level) records
    into the security database from the dummy security log or a pluggable
    agent. *)

type t

(** [create ?metrics ?trace db] builds a monitor writing to [db].
    [metrics] receives the [secmon.*] instruments (see
    OBSERVABILITY.md); by default a private registry is used.  [trace]
    records a [secmon.refresh] span per table replacement; defaults to
    {!Smart_util.Tracelog.disabled}. *)
val create :
  ?metrics:Smart_util.Metrics.t ->
  ?trace:Smart_util.Tracelog.t ->
  Status_db.t ->
  t

(** Parse and ingest a security log text ("host level" lines). *)
val refresh_from_log :
  t -> string -> (Smart_proto.Records.sec_record, string) result

(** Inject a pre-built record (third-party agent path). *)
val refresh : t -> Smart_proto.Records.sec_record -> unit

(** Successful security-table replacements over the monitor's
    lifetime. *)
val refreshes : t -> int

(** Most recent parse failure, if any. *)
val last_error : t -> string option
