(* Directional link channel: store-and-forward serialization at the
   residual rate, FIFO ordering via [busy_until], optional token-bucket
   shaper, background (cross-traffic) load and fluid flow load.

   The residual-rate service model is the fluid approximation described in
   DESIGN.md §2: probe bytes are served at (capacity - background - flows),
   so a probe stream of size S sees delay S/available-bandwidth, matching
   the paper's Formula (3.6). *)

type conf = {
  capacity : float;    (* bytes per second *)
  prop_delay : float;  (* seconds, one way *)
  jitter : float;      (* std-dev of per-packet delay noise, seconds *)
  loss : float;        (* independent per-fragment loss probability *)
}

let default_conf =
  { capacity = 100e6 /. 8.0; prop_delay = 50e-6; jitter = 0.0; loss = 0.0 }

type t = {
  id : int;
  src : int;
  dst : int;
  conf : conf;
  mutable busy_until : float;
  mutable cross_load : float;  (* bytes/s consumed by background traffic *)
  mutable flow_load : float;   (* bytes/s consumed by fluid flows *)
  mutable shaper : Shaper.t option;
  mutable bytes_carried : int;
  mutable packets_carried : int;
  mutable partitioned : bool;
  mutable packets_dropped : int;
}

let create ~id ~src ~dst conf =
  {
    id;
    src;
    dst;
    conf;
    busy_until = 0.0;
    cross_load = 0.0;
    flow_load = 0.0;
    shaper = None;
    bytes_carried = 0;
    packets_carried = 0;
    partitioned = false;
    packets_dropped = 0;
  }

let set_shaper t shaper = t.shaper <- shaper

let set_partitioned t on = t.partitioned <- on

let partitioned t = t.partitioned

let set_cross_load t load = t.cross_load <- Float.max 0.0 load

(* Physical capacity clamped by the shaper (the fluid view of the token
   bucket, used by the flow plane). *)
let effective_capacity t =
  match t.shaper with
  | None -> t.conf.capacity
  | Some s -> Float.min t.conf.capacity (Shaper.rate s)

(* Bandwidth left for foreground probe packets.  Deliberately *not*
   shaper-clamped: packets physically serialise at link speed and the
   token bucket itself delays them, so clamping here would double-count
   the shaping. *)
let residual_rate t =
  Float.max 1e3 (t.conf.capacity -. t.cross_load -. t.flow_load)

(* Capacity the fluid flow plane may share (background traffic has
   priority, probes are negligible). *)
let capacity_for_flows t = Float.max 0.0 (effective_capacity t -. t.cross_load)

(* Serialize [size] wire bytes arriving at this channel at [now].
   Returns the time the last bit reaches the far end, or [None] when the
   fragment is lost.  FIFO: a fragment cannot start before the previous
   one finished serialising. *)
let transmit t ~rng ~now ~size =
  if t.partitioned then begin
    t.packets_dropped <- t.packets_dropped + 1;
    None
  end
  else
  let now =
    match t.shaper with
    | None -> now
    | Some s -> Shaper.admit s ~now ~size
  in
  let start = Float.max now t.busy_until in
  let finish = start +. (float_of_int size /. residual_rate t) in
  t.busy_until <- finish;
  if t.conf.loss > 0.0 && Smart_util.Prng.float rng ~bound:1.0 < t.conf.loss then
    None
  else begin
    t.bytes_carried <- t.bytes_carried + size;
    t.packets_carried <- t.packets_carried + 1;
    let noise =
      if t.conf.jitter > 0.0 then
        Float.abs (Smart_util.Prng.gaussian rng ~mu:0.0 ~sigma:t.conf.jitter)
      else 0.0
    in
    Some (finish +. t.conf.prop_delay +. noise)
  end
