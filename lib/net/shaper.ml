(* Token-bucket rate limiter standing in for the paper's `rshaper` kernel
   module.  The packet plane consumes tokens per transmitted byte and is
   delayed when the bucket runs dry; the flow plane simply treats the
   shaper rate as a capacity clamp (fluid view of the same bucket). *)

type t = {
  rate : float;           (* bytes per second *)
  burst : float;          (* bucket depth in bytes *)
  mutable tokens : float;
  mutable last_refill : float;
}

let create ?(burst = 16.0 *. 1024.0) ~rate () =
  if rate <= 0.0 then invalid_arg "Shaper.create: rate must be positive";
  { rate; burst; tokens = burst; last_refill = 0.0 }

let rate t = t.rate

let refill t ~now =
  if now > t.last_refill then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last_refill) *. t.rate));
    t.last_refill <- now
  end

(* A drained bucket records its debt as [last_refill] pushed into the
   future: refill is a no-op until real time catches up, and further
   admissions queue behind that horizon rather than from [now]. *)
let horizon t ~now = Float.max now t.last_refill

(* Earliest time at which [size] bytes could leave, without consuming
   anything.  Admission control asks this first: a request it decides to
   reject must not sink the bucket into debt, or a rejected client could
   starve the bucket for everyone (including itself) forever. *)
let peek t ~now ~size =
  refill t ~now;
  let size = float_of_int size in
  if t.tokens >= size then now
  else horizon t ~now +. ((size -. t.tokens) /. t.rate)

(* Earliest time at which [size] bytes may leave, consuming the tokens.
   The bucket is allowed to go into debt, which serialises subsequent
   packets behind the backlog exactly like a real token bucket queue. *)
let admit t ~now ~size =
  refill t ~now;
  let size = float_of_int size in
  if t.tokens >= size then begin
    t.tokens <- t.tokens -. size;
    now
  end
  else begin
    let departure = horizon t ~now +. ((size -. t.tokens) /. t.rate) in
    t.tokens <- 0.0;
    t.last_refill <- departure;
    departure
  end
