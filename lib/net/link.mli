(** Directional link channel of the packet plane.

    Serves foreground packets at the residual rate (capacity minus
    background and flow load) with FIFO ordering, optional shaping, loss
    and jitter. *)

type conf = {
  capacity : float;    (** bytes per second *)
  prop_delay : float;  (** one-way propagation delay, seconds *)
  jitter : float;      (** std-dev of per-fragment delay noise, seconds *)
  loss : float;        (** independent per-fragment loss probability *)
}

(** 100 Mbps, 50 µs, no jitter, no loss. *)
val default_conf : conf

type t = {
  id : int;
  src : int;
  dst : int;
  conf : conf;
  mutable busy_until : float;
  mutable cross_load : float;
  mutable flow_load : float;
  mutable shaper : Shaper.t option;
  mutable bytes_carried : int;
  mutable packets_carried : int;
  mutable partitioned : bool;
  mutable packets_dropped : int;
}

val create : id:int -> src:int -> dst:int -> conf -> t

val set_shaper : t -> Shaper.t option -> unit

(** A partitioned channel drops every fragment (counted in
    [packets_dropped]) without consuming serialisation time; healing
    restores normal service.  Fault-injection uses this for link and
    host partitions. *)
val set_partitioned : t -> bool -> unit

val partitioned : t -> bool

(** Set background cross-traffic load in bytes/second (clamped at 0). *)
val set_cross_load : t -> float -> unit

(** Physical capacity clamped by the shaper, bytes/second. *)
val effective_capacity : t -> float

(** Bandwidth currently available to foreground packets, bytes/second. *)
val residual_rate : t -> float

(** Bandwidth the fluid flow plane may share, bytes/second. *)
val capacity_for_flows : t -> float

(** [transmit t ~rng ~now ~size] serialises a fragment of [size] wire
    bytes; returns the arrival time at the far end, or [None] if lost. *)
val transmit :
  t -> rng:Smart_util.Prng.t -> now:float -> size:int -> float option
