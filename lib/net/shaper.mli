(** Token-bucket traffic shaper (the simulation's `rshaper`). *)

type t

(** [create ~rate ()] makes a bucket refilling at [rate] bytes/second with
    an optional [burst] depth (default 16 KB). *)
val create : ?burst:float -> rate:float -> unit -> t

(** Configured rate in bytes/second. *)
val rate : t -> float

(** [peek t ~now ~size] is the departure time {!admit} would return,
    without consuming any tokens — the question admission control asks
    before deciding whether to accept, delay or reject.  Rejecting after
    a [peek] leaves the bucket untouched, so shed load cannot drive the
    bucket into unbounded debt. *)
val peek : t -> now:float -> size:int -> float

(** [admit t ~now ~size] returns the earliest departure time for [size]
    bytes and consumes the tokens.  Calls must have non-decreasing [now]. *)
val admit : t -> now:float -> size:int -> float
