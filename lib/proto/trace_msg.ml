(* Flight-recorder scrape datagrams, mirroring Metrics_msg: a magic
   string on an already-open daemon socket, answered with the daemon's
   recent span ring rendered as text or Chrome trace-event JSON. *)

type format = Text | Json

let request_magic = "SMART-TRACE"

let encode_request = function
  | Text -> request_magic ^ " text"
  | Json -> request_magic ^ " json"

let decode_request data =
  let magic_len = String.length request_magic in
  if
    String.length data < magic_len
    || not (String.equal (String.sub data 0 magic_len) request_magic)
  then None
  else
    match
      String.trim (String.sub data magic_len (String.length data - magic_len))
    with
    | "" | "text" -> Some Text
    | "json" -> Some Json
    | _ -> None

let encode_reply format tracelog =
  match format with
  | Text -> Smart_util.Tracelog.to_text tracelog
  | Json -> Smart_util.Tracelog.to_chrome_json tracelog
