(* The transmitter->receiver TCP framing of §3.5.1: [type, size, data].
   Type and size travel first so the receiver can allocate before the
   binary payload arrives.  An incremental decoder handles arbitrary TCP
   segmentation.

   Trace-context carriage: a frame whose push was traced uses type code
   [type_code + traced_code_offset] and inserts 8 bytes of context
   (trace id, span id, both u32) between the header and the payload.
   [size] still counts payload bytes only.

   Integrity carriage: a frame encoded with [~crc:true] uses type code
   [+ crc_code_offset] and appends a CRC-32 trailer computed over every
   byte before it (header, context if any, payload).  The decoder
   verifies the trailer and treats a mismatch as corruption.

   Untraced, un-CRC'd frames encode exactly as the original format, so
   old streams keep decoding.

   Corruption never poisons a stream: the decoder skips forward one byte
   at a time until a plausible frame header (and, for CRC'd frames, a
   matching trailer) lines up again, counting the bytes it had to
   discard.  A CRC'd stream therefore survives arbitrary bit damage at
   the cost of the damaged frame(s) only. *)

type payload_type = Sys_db | Net_db | Sec_db | Digest_db | Sketch_db

let type_code = function
  | Sys_db -> 1
  | Net_db -> 2
  | Sec_db -> 3
  | Digest_db -> 4
  | Sketch_db -> 5

let type_of_code = function
  | 1 -> Some Sys_db
  | 2 -> Some Net_db
  | 3 -> Some Sec_db
  | 4 -> Some Digest_db
  | 5 -> Some Sketch_db
  | _ -> None

let traced_code_offset = 16

let crc_code_offset = 32

let header_size = 8

let ctx_size = 8

let crc_size = 4

let max_frame_size = 16 * 1024 * 1024

type frame = {
  payload_type : payload_type;
  data : string;
  trace : Smart_util.Tracelog.ctx;
      (* context of the transmitter push that sent this frame;
         [Tracelog.root] means untraced and adds no bytes *)
}

type error =
  | Truncated of { need : int; have : int }
  | Unknown_code of int
  | Oversized of int
  | Crc_mismatch of { expected : int; got : int }

let pp_error ppf = function
  | Truncated { need; have } ->
    Fmt.pf ppf "frame: truncated (need %d bytes, have %d)" need have
  | Unknown_code code -> Fmt.pf ppf "frame: unknown type code %d" code
  | Oversized size -> Fmt.pf ppf "frame: oversized payload (%d bytes)" size
  | Crc_mismatch { expected; got } ->
    Fmt.pf ppf "frame: CRC mismatch (expected %08x, got %08x)" expected got

let error_to_string e = Fmt.str "%a" pp_error e

let encode ?(crc = false) order { payload_type; data; trace } =
  let traced = not (Smart_util.Tracelog.is_root trace) in
  let code =
    type_code payload_type
    + (if traced then traced_code_offset else 0)
    + if crc then crc_code_offset else 0
  in
  let pre = header_size + if traced then ctx_size else 0 in
  let total = pre + String.length data + if crc then crc_size else 0 in
  let b = Bytes.create total in
  Endian.set_u32 order b ~pos:0 code;
  Endian.set_u32 order b ~pos:4 (String.length data);
  if traced then begin
    Endian.set_u32 order b ~pos:8 (trace.Smart_util.Tracelog.trace_id land 0xFFFFFFFF);
    Endian.set_u32 order b ~pos:12 (trace.Smart_util.Tracelog.span_id land 0xFFFFFFFF)
  end;
  Bytes.blit_string data 0 b pre (String.length data);
  if crc then begin
    let covered = Bytes.sub_string b 0 (pre + String.length data) in
    Endian.set_u32 order b
      ~pos:(pre + String.length data)
      (Smart_util.Crc32.string covered)
  end;
  Bytes.to_string b

(* Decode the single frame starting at [pos]; on success also return how
   many bytes it occupied.  Never raises: malformed input comes back as a
   typed {!error}. *)
let decode_one order ?(pos = 0) s =
  let len = String.length s - pos in
  if pos < 0 || pos > String.length s then
    Error (Truncated { need = header_size; have = 0 })
  else if len < header_size then
    Error (Truncated { need = header_size; have = len })
  else begin
    let b = Bytes.unsafe_of_string s in
    let code = Endian.get_u32 order b ~pos in
    let size = Endian.get_u32 order b ~pos:(pos + 4) in
    let crc = code land crc_code_offset <> 0 in
    let traced = (code land lnot crc_code_offset) >= traced_code_offset in
    let base_code =
      code
      - (if traced then traced_code_offset else 0)
      - if crc then crc_code_offset else 0
    in
    match type_of_code base_code with
    | None -> Error (Unknown_code code)
    | Some _ when size > max_frame_size -> Error (Oversized size)
    | Some payload_type ->
      let pre = header_size + if traced then ctx_size else 0 in
      let total = pre + size + if crc then crc_size else 0 in
      if len < total then Error (Truncated { need = total; have = len })
      else begin
        let ok () =
          let trace =
            if traced then
              {
                Smart_util.Tracelog.trace_id =
                  Endian.get_u32 order b ~pos:(pos + 8);
                span_id = Endian.get_u32 order b ~pos:(pos + 12);
              }
            else Smart_util.Tracelog.root
          in
          let data = String.sub s (pos + pre) size in
          Ok ({ payload_type; data; trace }, total)
        in
        if not crc then ok ()
        else begin
          let expected =
            Smart_util.Crc32.substring s ~pos ~len:(pre + size)
          in
          let got = Endian.get_u32 order b ~pos:(pos + pre + size) in
          if expected = got then ok ()
          else Error (Crc_mismatch { expected; got })
        end
      end
  end

(* Incremental decoder: feed it chunks as they arrive; it emits complete
   frames in order and resynchronises over corrupt spans. *)
type decoder = {
  order : Endian.order;
  mutable pending : string;  (* bytes received but not yet consumed *)
  mutable skipped_bytes : int;
  mutable resyncs : int;
  mutable in_resync : bool;  (* consecutive skipped bytes count as one event *)
  mutable last_error : error option;
}

let decoder order =
  {
    order;
    pending = "";
    skipped_bytes = 0;
    resyncs = 0;
    in_resync = false;
    last_error = None;
  }

let feed dec chunk =
  if String.length chunk > 0 then
    dec.pending <-
      (if String.equal dec.pending "" then chunk else dec.pending ^ chunk)

let skipped_bytes dec = dec.skipped_bytes

let resyncs dec = dec.resyncs

let last_error dec = dec.last_error

let pending_bytes dec = String.length dec.pending

let frames dec =
  let s = dec.pending in
  let len = String.length s in
  let rec scan pos acc =
    if len - pos < header_size then (pos, acc)
    else
      match decode_one dec.order ~pos s with
      | Ok (frame, consumed) ->
        dec.in_resync <- false;
        scan (pos + consumed) (frame :: acc)
      | Error (Truncated _) ->
        (* an incomplete tail: wait for more bytes.  If the claimed frame
           is corrupt the eventual CRC check (or a later header scan)
           will recover; a truncated header can't be judged yet. *)
        (pos, acc)
      | Error e ->
        (* corrupt span: drop one byte and look for the next header *)
        dec.last_error <- Some e;
        if not dec.in_resync then begin
          dec.in_resync <- true;
          dec.resyncs <- dec.resyncs + 1
        end;
        dec.skipped_bytes <- dec.skipped_bytes + 1;
        scan (pos + 1) acc
  in
  let consumed, acc = scan 0 [] in
  dec.pending <- String.sub s consumed (len - consumed);
  List.rev acc
