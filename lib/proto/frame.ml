(* The transmitter->receiver TCP framing of §3.5.1: [type, size, data].
   Type and size travel first so the receiver can allocate before the
   binary payload arrives.  An incremental decoder handles arbitrary TCP
   segmentation.

   Trace-context carriage: a frame whose push was traced uses type code
   [type_code + traced_code_offset] and inserts 8 bytes of context
   (trace id, span id, both u32) between the header and the payload.
   [size] still counts payload bytes only.  An untraced frame encodes
   exactly as before, so old receivers keep working until they meet a
   traced stream. *)

type payload_type = Sys_db | Net_db | Sec_db

let type_code = function Sys_db -> 1 | Net_db -> 2 | Sec_db -> 3

let type_of_code = function
  | 1 -> Some Sys_db
  | 2 -> Some Net_db
  | 3 -> Some Sec_db
  | _ -> None

let traced_code_offset = 16

let header_size = 8

let ctx_size = 8

let max_frame_size = 16 * 1024 * 1024

type frame = {
  payload_type : payload_type;
  data : string;
  trace : Smart_util.Tracelog.ctx;
      (* context of the transmitter push that sent this frame;
         [Tracelog.root] means untraced and adds no bytes *)
}

let encode order { payload_type; data; trace } =
  let traced = not (Smart_util.Tracelog.is_root trace) in
  let code =
    type_code payload_type + if traced then traced_code_offset else 0
  in
  let pre = header_size + if traced then ctx_size else 0 in
  let b = Bytes.create (pre + String.length data) in
  Endian.set_u32 order b ~pos:0 code;
  Endian.set_u32 order b ~pos:4 (String.length data);
  if traced then begin
    Endian.set_u32 order b ~pos:8 (trace.Smart_util.Tracelog.trace_id land 0xFFFFFFFF);
    Endian.set_u32 order b ~pos:12 (trace.Smart_util.Tracelog.span_id land 0xFFFFFFFF)
  end;
  Bytes.blit_string data 0 b pre (String.length data);
  Bytes.to_string b

(* Incremental decoder: feed it chunks as they arrive; it emits complete
   frames in order. *)
type decoder = {
  order : Endian.order;
  buf : Buffer.t;
  mutable failed : string option;
}

let decoder order = { order; buf = Buffer.create 1024; failed = None }

let feed dec chunk =
  match dec.failed with
  | Some _ -> ()
  | None -> Buffer.add_string dec.buf chunk

let rec drain dec acc =
  match dec.failed with
  | Some m -> Error m
  | None ->
    let content = Buffer.contents dec.buf in
    let len = String.length content in
    if len < header_size then Ok (List.rev acc)
    else begin
      let b = Bytes.unsafe_of_string content in
      let code = Endian.get_u32 dec.order b ~pos:0 in
      let size = Endian.get_u32 dec.order b ~pos:4 in
      let traced = code >= traced_code_offset in
      let base_code =
        if traced then code - traced_code_offset else code
      in
      match type_of_code base_code with
      | None ->
        let m = Printf.sprintf "frame: unknown type code %d" code in
        dec.failed <- Some m;
        Error m
      | Some _ when size > max_frame_size ->
        let m = Printf.sprintf "frame: oversized payload (%d bytes)" size in
        dec.failed <- Some m;
        Error m
      | Some payload_type ->
        let pre = header_size + if traced then ctx_size else 0 in
        if len < pre + size then Ok (List.rev acc)
        else begin
          let trace =
            if traced then
              {
                Smart_util.Tracelog.trace_id =
                  Endian.get_u32 dec.order b ~pos:8;
                span_id = Endian.get_u32 dec.order b ~pos:12;
              }
            else Smart_util.Tracelog.root
          in
          let data = String.sub content pre size in
          Buffer.clear dec.buf;
          Buffer.add_substring dec.buf content (pre + size)
            (len - pre - size);
          drain dec ({ payload_type; data; trace } :: acc)
        end
    end

let frames dec = drain dec []
