(* Port and IPC-key assignments, verbatim from Tables 4.2 and 4.3. *)

(* monitor machine *)
let transmitter = 1110
let sysmon = 1111
let netmon = 1112
let secmon = 1113

(* wizard machine *)
let wizard = 1120
let receiver = 1121

(* federation plane (DESIGN.md §13): regional wizards answer root
   subqueries here, and the root sources its fan-out from the same port
   so shard results come straight back to it *)
let fed = 1122

(* the service each selected server offers compute/download on *)
let service = 1130

(* probe source port *)
let probe = 1109

(* System V shared-memory / semaphore keys of Table 4.3; kept for
   fidelity and used as shared-state identifiers by the realnet driver. *)
let shm_keys_monitor = [ ("system", 1234); ("network", 1235); ("security", 1236) ]

let shm_keys_wizard = [ ("system", 4321); ("network", 5321); ("security", 6321) ]

(* Maximum servers a wizard reply may carry (§3.6.1: the reply is a
   single UDP message, so the list is bounded). *)
let max_reply_servers = 60
