(* Metrics scrape datagrams.  Like the transmitter's pull request, a
   scrape is a magic string on an already-open daemon socket: no extra
   port, no framing, one request datagram in and one reply datagram out.
   The reply is the rendered dump itself — text for eyeballs, JSON for
   tooling. *)

type format = Text | Json

let request_magic = "SMART-METRICS"

let encode_request = function
  | Text -> request_magic ^ " text"
  | Json -> request_magic ^ " json"

let decode_request data =
  let magic_len = String.length request_magic in
  if
    String.length data < magic_len
    || not (String.equal (String.sub data 0 magic_len) request_magic)
  then None
  else
    match String.trim (String.sub data magic_len (String.length data - magic_len)) with
    | "" | "text" -> Some Text
    | "json" -> Some Json
    | _ -> None

let encode_reply format metrics =
  match format with
  | Text -> Smart_util.Metrics.to_text metrics
  | Json -> Smart_util.Metrics.to_json metrics
