(** Port assignments of Table 4.2 and the IPC keys of Table 4.3. *)

val transmitter : int
val sysmon : int
val netmon : int
val secmon : int
val wizard : int
val receiver : int

(** Federation subquery/result port (DESIGN.md §13): regional wizards
    listen for root subqueries here, and the root sends from the same
    port so shard results return to it directly. *)
val fed : int

(** TCP service port of every selected server. *)
val service : int

(** Probe source port / netmon echo port. *)
val probe : int

(** System V (type, key) pairs of Table 4.3, kept for fidelity. *)
val shm_keys_monitor : (string * int) list

val shm_keys_wizard : (string * int) list

(** Reply server-list bound (§3.6.1: one UDP datagram per reply). *)
val max_reply_servers : int
