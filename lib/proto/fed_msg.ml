(* Root <-> regional wizard messages of the federated status plane
   (DESIGN.md §13).

   A subquery fans a client requirement out from the root wizard to a
   regional (shard) wizard; the result carries the shard's ranked
   candidates back with enough ordering information — preference rank
   and order_by key — for the root to merge per-shard lists into exactly
   the list a single flat wizard would have produced.

   Both travel in single UDP datagrams on the federation port and,
   like the wizard messages, use fixed big-endian byte order; a 4-byte
   magic distinguishes the two directions on the shared port. *)

let order = Endian.Big

let query_magic = "SFQ1"

let result_magic = "SFR1"

(* flags *)
let ctx_flag = 1      (* query: an 8-byte trace context follows the header *)
let degraded_flag = 1 (* result: the shard answered from a stale snapshot *)

type query = {
  seq : int;
  wanted : int;
  requirement : string;
  trace : Smart_util.Tracelog.ctx;
}

let encode_query q =
  if q.wanted < 0 || q.wanted > 0xFFFF then
    invalid_arg "Fed_msg.encode_query: bad wanted";
  let traced = not (Smart_util.Tracelog.is_root q.trace) in
  let header = 12 + if traced then 8 else 0 in
  let b = Bytes.create (header + String.length q.requirement) in
  Bytes.blit_string query_magic 0 b 0 4;
  Endian.set_u32 order b ~pos:4 (q.seq land 0xFFFFFFFF);
  Endian.set_u16 order b ~pos:8 q.wanted;
  Endian.set_u16 order b ~pos:10 (if traced then ctx_flag else 0);
  if traced then begin
    Endian.set_u32 order b ~pos:12
      (q.trace.Smart_util.Tracelog.trace_id land 0xFFFFFFFF);
    Endian.set_u32 order b ~pos:16
      (q.trace.Smart_util.Tracelog.span_id land 0xFFFFFFFF)
  end;
  Bytes.blit_string q.requirement 0 b header (String.length q.requirement);
  Bytes.to_string b

let decode_query s =
  if String.length s < 12 then Error "fed query: truncated"
  else if not (String.equal (String.sub s 0 4) query_magic) then
    Error "fed query: bad magic"
  else begin
    let b = Bytes.of_string s in
    let seq = Endian.get_u32 order b ~pos:4 in
    let wanted = Endian.get_u16 order b ~pos:8 in
    let flags = Endian.get_u16 order b ~pos:10 in
    if flags land lnot ctx_flag <> 0 then Error "fed query: unknown flags"
    else begin
      let traced = flags land ctx_flag <> 0 in
      if traced && String.length s < 20 then
        Error "fed query: truncated trace context"
      else begin
        let trace =
          if traced then
            {
              Smart_util.Tracelog.trace_id = Endian.get_u32 order b ~pos:12;
              span_id = Endian.get_u32 order b ~pos:16;
            }
          else Smart_util.Tracelog.root
        in
        let header = 12 + if traced then 8 else 0 in
        Ok
          {
            seq;
            wanted;
            requirement = String.sub s header (String.length s - header);
            trace;
          }
      end
    end
  end

(* One ranked candidate.  [rank >= 0] marks a preferred server (its
   position in the user_preferred_host list); for the rest [key] is the
   order_by value — [neg_infinity] when the requirement has none (or the
   statement produced nothing) and possibly NaN, which sorts after every
   real key.  Both travel as raw IEEE bits, so NaN survives the wire. *)
type candidate = { host : string; rank : int; key : float }

let no_rank = 0xFFFF

type reply = {
  seq : int;
  shard : string;
  generation : int;
  degraded : bool;
  candidates : candidate list;
}

let encode_reply r =
  if List.length r.candidates > 0xFFFF then
    invalid_arg "Fed_msg.encode_reply: too many candidates";
  if String.length r.shard > 0xFF then
    invalid_arg "Fed_msg.encode_reply: shard name too long";
  let buf = Buffer.create 256 in
  let b = Bytes.create 14 in
  Bytes.blit_string result_magic 0 b 0 4;
  Endian.set_u32 order b ~pos:4 (r.seq land 0xFFFFFFFF);
  Endian.set_u16 order b ~pos:8 (if r.degraded then degraded_flag else 0);
  Endian.set_u32 order b ~pos:10 (r.generation land 0xFFFFFFFF);
  Buffer.add_bytes buf b;
  Buffer.add_char buf (Char.chr (String.length r.shard));
  Buffer.add_string buf r.shard;
  let cb = Bytes.create 2 in
  Endian.set_u16 order cb ~pos:0 (List.length r.candidates);
  Buffer.add_bytes buf cb;
  List.iter
    (fun c ->
      if String.length c.host > 0xFF then
        invalid_arg "Fed_msg.encode_reply: host name too long";
      if c.rank >= no_rank then
        invalid_arg "Fed_msg.encode_reply: rank out of range";
      Buffer.add_char buf (Char.chr (String.length c.host));
      Buffer.add_string buf c.host;
      let e = Bytes.create 10 in
      Endian.set_u16 order e ~pos:0 (if c.rank < 0 then no_rank else c.rank);
      Endian.set_f64 order e ~pos:2 c.key;
      Buffer.add_bytes buf e)
    r.candidates;
  Buffer.contents buf

let decode_reply s =
  if String.length s < 15 then Error "fed result: truncated"
  else if not (String.equal (String.sub s 0 4) result_magic) then
    Error "fed result: bad magic"
  else begin
    let b = Bytes.of_string s in
    let seq = Endian.get_u32 order b ~pos:4 in
    let flags = Endian.get_u16 order b ~pos:8 in
    if flags land lnot degraded_flag <> 0 then Error "fed result: unknown flags"
    else begin
      let degraded = flags land degraded_flag <> 0 in
      let generation = Endian.get_u32 order b ~pos:10 in
      let shard_len = Char.code s.[14] in
      if String.length s < 15 + shard_len + 2 then
        Error "fed result: truncated shard name"
      else begin
        let shard = String.sub s 15 shard_len in
        let count = Endian.get_u16 order b ~pos:(15 + shard_len) in
        let rec read pos n acc =
          if n = 0 then Ok (List.rev acc)
          else if pos >= String.length s then
            Error "fed result: truncated candidate list"
          else begin
            let len = Char.code s.[pos] in
            if pos + 1 + len + 10 > String.length s then
              Error "fed result: truncated candidate"
            else begin
              let host = String.sub s (pos + 1) len in
              let rank = Endian.get_u16 order b ~pos:(pos + 1 + len) in
              let key = Endian.get_f64 order b ~pos:(pos + 1 + len + 2) in
              read
                (pos + 1 + len + 10)
                (n - 1)
                ({ host; rank = (if rank = no_rank then -1 else rank); key }
                :: acc)
            end
          end
        in
        match read (15 + shard_len + 2) count [] with
        | Ok candidates -> Ok ({ seq; shard; generation; degraded; candidates } : reply)
        | Error _ as e -> e
      end
    end
  end
