(* Explicit-endianness primitives for the binary record codecs.

   The thesis transmits records "in binary format", which "requires that
   the two machines ... have the same hardware architecture in order to
   avoid the Endian issues" (§3.5.1).  We implement both byte orders so
   that tests can demonstrate exactly that failure mode. *)

type order = Little | Big

let set_u16 order b ~pos v =
  match order with
  | Little -> Bytes.set_uint16_le b pos v
  | Big -> Bytes.set_uint16_be b pos v

let get_u16 order b ~pos =
  match order with
  | Little -> Bytes.get_uint16_le b pos
  | Big -> Bytes.get_uint16_be b pos

let set_u32 order b ~pos v =
  match order with
  | Little -> Bytes.set_int32_le b pos (Int32.of_int v)
  | Big -> Bytes.set_int32_be b pos (Int32.of_int v)

let get_u32 order b ~pos =
  let v =
    match order with
    | Little -> Bytes.get_int32_le b pos
    | Big -> Bytes.get_int32_be b pos
  in
  Int32.to_int v land 0xFFFFFFFF

let set_i64 order b ~pos v =
  match order with
  | Little -> Bytes.set_int64_le b pos v
  | Big -> Bytes.set_int64_be b pos v

let get_i64 order b ~pos =
  match order with
  | Little -> Bytes.get_int64_le b pos
  | Big -> Bytes.get_int64_be b pos

let set_f64 order b ~pos v =
  let bits = Int64.bits_of_float v in
  match order with
  | Little -> Bytes.set_int64_le b pos bits
  | Big -> Bytes.set_int64_be b pos bits

let get_f64 order b ~pos =
  let bits =
    match order with
    | Little -> Bytes.get_int64_le b pos
    | Big -> Bytes.get_int64_be b pos
  in
  Int64.float_of_bits bits

(* Fixed-width, NUL-padded character field (C char[n] semantics). *)
let set_string b ~pos ~width s =
  let n = min (String.length s) (width - 1) in
  Bytes.fill b pos width '\000';
  Bytes.blit_string s 0 b pos n

let get_string b ~pos ~width =
  let raw = Bytes.sub_string b pos width in
  match String.index_opt raw '\000' with
  | Some i -> String.sub raw 0 i
  | None -> raw
