(* Sketch batch codec (Frame.Sketch_db payloads).

   Layout, all integers and floats in the frame's byte [order]:

     shard_len u16, shard bytes,
     count u16,
     count entries:
       name_len u16, name bytes,
       k u16, nlevels u16,
       err_weight i64, min f64, max f64, rng_state i64,
       nlevels levels: len u32, len x f64

   Decoding validates every length against the remaining bytes BEFORE
   allocating, caps levels and per-level sizes, and rebuilds through
   [Sketch.of_parts] so structural invariants (finite values inside
   [min, max], level cap, err_weight sign) are re-checked on the
   receiving side. *)

module Sketch = Smart_util.Sketch

type t = {
  shard : string;
  entries : (string * Sketch.t) list;
}

let max_level_items = 1 lsl 20

let fixed_entry_head = 2 + 2 + 8 + 8 + 8 + 8
(* k, nlevels, err_weight, min, max, rng_state — after the name *)

let encode order t =
  if String.length t.shard > 0xFFFF then
    invalid_arg "Sketch_msg.encode: shard name too long";
  if List.length t.entries > 0xFFFF then
    invalid_arg "Sketch_msg.encode: too many entries";
  let buf = Buffer.create 256 in
  let scratch = Bytes.create 8 in
  let u16 v = Endian.set_u16 order scratch ~pos:0 v;
    Buffer.add_subbytes buf scratch 0 2 in
  let u32 v = Endian.set_u32 order scratch ~pos:0 v;
    Buffer.add_subbytes buf scratch 0 4 in
  let i64 v = Endian.set_i64 order scratch ~pos:0 v;
    Buffer.add_subbytes buf scratch 0 8 in
  let f64 v = Endian.set_f64 order scratch ~pos:0 v;
    Buffer.add_subbytes buf scratch 0 8 in
  u16 (String.length t.shard);
  Buffer.add_string buf t.shard;
  u16 (List.length t.entries);
  List.iter
    (fun (name, s) ->
      if String.length name > 0xFFFF then
        invalid_arg "Sketch_msg.encode: metric name too long";
      let levels = Sketch.levels s in
      u16 (String.length name);
      Buffer.add_string buf name;
      u16 (Sketch.k s);
      u16 (List.length levels);
      i64 (Int64.of_int (Sketch.err_weight s));
      f64 (Sketch.min_value s);
      f64 (Sketch.max_value s);
      i64 (Sketch.rng_state s);
      List.iter
        (fun items ->
          if Array.length items > max_level_items then
            invalid_arg "Sketch_msg.encode: level too large";
          u32 (Array.length items);
          Array.iter f64 items)
        levels)
    t.entries;
  Buffer.contents buf

let decode order s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let pos = ref 0 in
  let error = ref None in
  let fail e = if Option.is_none !error then error := Some e in
  let need n =
    if Option.is_some !error || len - !pos < n then begin
      fail "sketch_msg: truncated";
      false
    end
    else true
  in
  let u16 () =
    if need 2 then begin
      let v = Endian.get_u16 order b ~pos:!pos in
      pos := !pos + 2;
      v
    end
    else 0
  in
  let u32 () =
    if need 4 then begin
      let v = Endian.get_u32 order b ~pos:!pos in
      pos := !pos + 4;
      v
    end
    else 0
  in
  let i64 () =
    if need 8 then begin
      let v = Endian.get_i64 order b ~pos:!pos in
      pos := !pos + 8;
      v
    end
    else 0L
  in
  let f64 () =
    if need 8 then begin
      let v = Endian.get_f64 order b ~pos:!pos in
      pos := !pos + 8;
      v
    end
    else 0.0
  in
  let str n =
    if need n then begin
      let v = String.sub s !pos n in
      pos := !pos + n;
      v
    end
    else ""
  in
  let shard = str (u16 ()) in
  let count = u16 () in
  let entries = ref [] in
  let i = ref 0 in
  while !i < count && Option.is_none !error do
    let name = str (u16 ()) in
    if need fixed_entry_head then begin
      let k = u16 () in
      let nlevels = u16 () in
      if nlevels > Sketch.max_levels then fail "sketch_msg: too many levels"
      else begin
        let err_weight = Int64.to_int (i64 ()) in
        let minv = f64 () in
        let maxv = f64 () in
        let rng_state = i64 () in
        let parts = ref [] in
        let l = ref 0 in
        while !l < nlevels && Option.is_none !error do
          let n = u32 () in
          if n > max_level_items then fail "sketch_msg: level too large"
          else if not (need (8 * n)) then ()
          else begin
            (* explicit loop: Array.init's evaluation order is
               unspecified and these reads advance [pos] *)
            let items = Array.make n 0.0 in
            for j = 0 to n - 1 do
              items.(j) <- f64 ()
            done;
            parts := items :: !parts
          end;
          incr l
        done;
        if Option.is_none !error then begin
          match
            Sketch.of_parts ~k ~err_weight ~min_value:minv ~max_value:maxv
              ~rng_state (List.rev !parts)
          with
          | Ok sk -> entries := (name, sk) :: !entries
          | Error e -> fail e
        end
      end
    end;
    incr i
  done;
  match !error with
  | Some e -> Error e
  | None ->
    if !pos <> len then Error "sketch_msg: trailing bytes"
    else Ok { shard; entries = List.rev !entries }
