(** Root <-> regional wizard messages of the federated status plane
    (DESIGN.md §13): the root's subquery fan-out and the shard's ranked
    candidate result.

    Both directions share the federation UDP port and are told apart by
    a 4-byte magic; like {!Wizard_msg} they use fixed big-endian byte
    order because they cross machines of arbitrary architecture. *)

(** Subquery, root -> shard: evaluate [requirement] and return the best
    [wanted] candidates. *)
type query = {
  seq : int;  (** root-chosen id echoed by the result *)
  wanted : int;  (** candidates requested from this shard *)
  requirement : string;
      (** canonical requirement source ({!Smart_lang} [Requirement.canonical]
          on the root), so every shard's compile cache keys agree *)
  trace : Smart_util.Tracelog.ctx;
      (** the root's fan-out span, parenting the shard's select spans;
          [Tracelog.root] travels as no bytes *)
}

val encode_query : query -> string

(** Never raises; rejects short input, bad magic and unknown flags. *)
val decode_query : string -> (query, string) result

(** One ranked candidate of a shard's local selection.  The fields carry
    exactly the ordering information the root's merge needs to reproduce
    a flat wizard's ranking (see [Selection.merge_candidates]). *)
type candidate = {
  host : string;
  rank : int;
      (** position in the user_preferred_host list, [-1] for
          non-preferred candidates *)
  key : float;
      (** order_by value for non-preferred candidates: [neg_infinity]
          when the requirement assigns none, NaN when the assignment
          faulted (sorts after every real key).  Travels as raw IEEE
          bits, so NaN survives the wire. *)
}

(** Reply, shard -> root: the shard's best candidates in its local
    selection order. *)
type reply = {
  seq : int;  (** echo of the subquery's [seq] *)
  shard : string;  (** responding shard's name *)
  generation : int;  (** shard database generation that answered *)
  degraded : bool;  (** the shard answered from a stale snapshot *)
  candidates : candidate list;
}

val encode_reply : reply -> string

(** Never raises; rejects short input, bad magic and unknown flags. *)
val decode_reply : string -> (reply, string) result
