(* The server probe's status report (§3.2.1).

   Values travel as a '|'-separated ASCII string — byte-order neutral, as
   the thesis argues, at the cost of a few extra bytes.  Rates are
   derived by the probe from consecutive /proc snapshots, so every field
   is directly bindable to a server-side requirement variable. *)

let version_tag = "SR1"

type t = {
  host : string;
  ip : string;
  (* /proc/loadavg *)
  load1 : float;
  load5 : float;
  load15 : float;
  (* /proc/stat cpu, fractions of the last interval *)
  cpu_user : float;
  cpu_nice : float;
  cpu_system : float;
  cpu_free : float;
  bogomips : float;
  (* /proc/meminfo, megabytes *)
  mem_total : float;
  mem_used : float;
  mem_free : float;
  mem_buffers : float;
  mem_cached : float;
  (* /proc/stat disk_io, per-second over the last interval *)
  disk_rreq : float;
  disk_rblocks : float;
  disk_wreq : float;
  disk_wblocks : float;
  (* /proc/net/dev, per-second over the last interval *)
  net_rbytes : float;
  net_rpackets : float;
  net_tbytes : float;
  net_tpackets : float;
}

let disk_allreq r = r.disk_rreq +. r.disk_wreq

let fields r =
  [
    r.load1; r.load5; r.load15;
    r.cpu_user; r.cpu_nice; r.cpu_system; r.cpu_free; r.bogomips;
    r.mem_total; r.mem_used; r.mem_free; r.mem_buffers; r.mem_cached;
    r.disk_rreq; r.disk_rblocks; r.disk_wreq; r.disk_wblocks;
    r.net_rbytes; r.net_rpackets; r.net_tbytes; r.net_tpackets;
  ]

let field_count = 21

(* Trace-context carriage: a traced report appends "|TR|<trace>|<span>".
   The suffix tag cannot be confused with a numeric field, the untraced
   rendering is byte-identical to the pre-trace format, and [decode]
   strips the suffix before the field parse so the 21-field check and
   variable binding never see it. *)
let trace_tag = "TR"

let to_string ?(trace = Smart_util.Tracelog.root) r =
  let base =
    String.concat "|"
      (version_tag :: r.host :: r.ip
      :: List.map (fun f -> Printf.sprintf "%.6g" f) (fields r))
  in
  if Smart_util.Tracelog.is_root trace then base
  else
    Printf.sprintf "%s|%s|%d|%d" base trace_tag
      trace.Smart_util.Tracelog.trace_id trace.Smart_util.Tracelog.span_id

let split_trace parts =
  (* Recognise a trailing [trace_tag; trace; span] triple. *)
  let rec last3 = function
    | [ a; b; c ] -> Some (a, b, c)
    | _ :: tl -> last3 tl
    | [] -> None
  in
  match last3 parts with
  | Some (tag, t, s) when String.equal tag trace_tag -> begin
    match (int_of_string_opt t, int_of_string_opt s) with
    | Some trace_id, Some span_id when trace_id >= 0 && span_id >= 0 ->
      let body =
        List.filteri (fun i _ -> i < List.length parts - 3) parts
      in
      (body, { Smart_util.Tracelog.trace_id; span_id })
    | _ -> (parts, Smart_util.Tracelog.root)
  end
  | _ -> (parts, Smart_util.Tracelog.root)

let decode s =
  let parts, ctx = split_trace (String.split_on_char '|' s) in
  match parts with
  | tag :: host :: ip :: rest when String.equal tag version_tag ->
    if List.length rest <> field_count then
      Error
        (Printf.sprintf "report: expected %d fields, got %d" field_count
           (List.length rest))
    else begin
      match List.map float_of_string_opt rest with
      | values when List.for_all Option.is_some values ->
        (match List.map Option.get values with
        | [ load1; load5; load15;
            cpu_user; cpu_nice; cpu_system; cpu_free; bogomips;
            mem_total; mem_used; mem_free; mem_buffers; mem_cached;
            disk_rreq; disk_rblocks; disk_wreq; disk_wblocks;
            net_rbytes; net_rpackets; net_tbytes; net_tpackets ] ->
          Ok
            ( {
                host; ip;
                load1; load5; load15;
                cpu_user; cpu_nice; cpu_system; cpu_free; bogomips;
                mem_total; mem_used; mem_free; mem_buffers; mem_cached;
                disk_rreq; disk_rblocks; disk_wreq; disk_wblocks;
                net_rbytes; net_rpackets; net_tbytes; net_tpackets;
              },
              ctx )
        | _ -> Error "report: field count mismatch")
      | _ -> Error "report: non-numeric field"
    end
  | tag :: _ when not (String.equal tag version_tag) ->
    Error (Printf.sprintf "report: unknown version tag %S" tag)
  | _ -> Error "report: malformed"

let of_string s = Result.map fst (decode s)

(* [variable] with the name resolved once: columnar row fills look the
   reader up per field at snapshot-build time instead of string-matching
   22 names for every row refresh. *)
let reader name : (t -> float) option =
  match name with
  | "host_system_load1" -> Some (fun r -> r.load1)
  | "host_system_load5" -> Some (fun r -> r.load5)
  | "host_system_load15" -> Some (fun r -> r.load15)
  | "host_cpu_user" -> Some (fun r -> r.cpu_user)
  | "host_cpu_nice" -> Some (fun r -> r.cpu_nice)
  | "host_cpu_system" -> Some (fun r -> r.cpu_system)
  | "host_cpu_free" -> Some (fun r -> r.cpu_free)
  | "host_cpu_bogomips" -> Some (fun r -> r.bogomips)
  | "host_memory_total" -> Some (fun r -> r.mem_total)
  | "host_memory_used" -> Some (fun r -> r.mem_used)
  | "host_memory_free" -> Some (fun r -> r.mem_free)
  | "host_memory_buffers" -> Some (fun r -> r.mem_buffers)
  | "host_memory_cached" -> Some (fun r -> r.mem_cached)
  | "host_disk_allreq" -> Some disk_allreq
  | "host_disk_rreq" -> Some (fun r -> r.disk_rreq)
  | "host_disk_rblocks" -> Some (fun r -> r.disk_rblocks)
  | "host_disk_wreq" -> Some (fun r -> r.disk_wreq)
  | "host_disk_wblocks" -> Some (fun r -> r.disk_wblocks)
  | "host_network_rbytesps" -> Some (fun r -> r.net_rbytes)
  | "host_network_rpacketsps" -> Some (fun r -> r.net_rpackets)
  | "host_network_tbytesps" -> Some (fun r -> r.net_tbytes)
  | "host_network_tpacketsps" -> Some (fun r -> r.net_tpackets)
  | _ -> None

(* Binding of the 22 server-side requirement variables to a report. *)
let variable r name =
  let v f = Some f in
  match name with
  | "host_system_load1" -> v r.load1
  | "host_system_load5" -> v r.load5
  | "host_system_load15" -> v r.load15
  | "host_cpu_user" -> v r.cpu_user
  | "host_cpu_nice" -> v r.cpu_nice
  | "host_cpu_system" -> v r.cpu_system
  | "host_cpu_free" -> v r.cpu_free
  | "host_cpu_bogomips" -> v r.bogomips
  | "host_memory_total" -> v r.mem_total
  | "host_memory_used" -> v r.mem_used
  | "host_memory_free" -> v r.mem_free
  | "host_memory_buffers" -> v r.mem_buffers
  | "host_memory_cached" -> v r.mem_cached
  | "host_disk_allreq" -> v (disk_allreq r)
  | "host_disk_rreq" -> v r.disk_rreq
  | "host_disk_rblocks" -> v r.disk_rblocks
  | "host_disk_wreq" -> v r.disk_wreq
  | "host_disk_wblocks" -> v r.disk_wblocks
  | "host_network_rbytesps" -> v r.net_rbytes
  | "host_network_rpacketsps" -> v r.net_rpackets
  | "host_network_tbytesps" -> v r.net_tbytes
  | "host_network_tpacketsps" -> v r.net_tpackets
  | _ -> None
