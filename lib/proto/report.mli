(** The server probe's periodic status report (Table 3.1), transmitted as
    a byte-order-neutral ASCII string under 200 bytes. *)

type t = {
  host : string;
  ip : string;
  load1 : float;
  load5 : float;
  load15 : float;
  cpu_user : float;    (** fraction of the last probe interval *)
  cpu_nice : float;
  cpu_system : float;
  cpu_free : float;
  bogomips : float;
  mem_total : float;   (** megabytes *)
  mem_used : float;
  mem_free : float;
  mem_buffers : float;
  mem_cached : float;
  disk_rreq : float;   (** per-second over the last interval *)
  disk_rblocks : float;
  disk_wreq : float;
  disk_wblocks : float;
  net_rbytes : float;
  net_rpackets : float;
  net_tbytes : float;
  net_tpackets : float;
}

(** Total disk requests per second (the thesis's [allreq]). *)
val disk_allreq : t -> float

(** [to_string ?trace r] renders the report.  A non-root [trace] appends
    a trace-context suffix; the default ({!Smart_util.Tracelog.root})
    keeps the rendering byte-identical to the pre-trace format. *)
val to_string : ?trace:Smart_util.Tracelog.ctx -> t -> string

(** Parse a report along with its trace context
    ({!Smart_util.Tracelog.root} when the suffix is absent). *)
val decode : string -> (t * Smart_util.Tracelog.ctx, string) result

(** {!decode}, discarding the trace context. *)
val of_string : string -> (t, string) result

(** Bind one of the 22 [host_*] requirement variables; [None] for names
    this report does not define. *)
val variable : t -> string -> float option

(** {!variable} with the name resolved once — the per-field reader used
    by columnar row fills.  [reader name] is [Some f] with
    [f r = Option.get (variable r name)] exactly when
    [variable r name] is defined. *)
val reader : string -> (t -> float) option
