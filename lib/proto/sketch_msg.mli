(** Wire codec for a shard's batch of mergeable quantile sketches — the
    federation's [Frame.Sketch_db] payload (type code 5).

    A shard periodically ships every mergeable histogram backing
    ({!Smart_util.Metrics.sketches}, plus the wizard's private request-
    latency sketch) up the same transmitter uplink that carries
    digests; the root merges same-named sketches across shards into
    deployment-wide quantiles (DESIGN.md §14, OBSERVABILITY.md).

    The encoding round-trips the sketch exactly, including its PRNG
    state, so a decode on the root continues the same deterministic
    stream.  {!decode} never raises: adversarial input comes back as
    [Error _], with allocation bounded before any buffer is trusted. *)

type t = {
  shard : string;  (** reporting shard, [""] for a non-federated node *)
  entries : (string * Smart_util.Sketch.t) list;
      (** metric name -> sketch, in shipping order *)
}

(** Raises [Invalid_argument] when a name exceeds the u16 length fields
    or a sketch exceeds {!max_level_items} retained items per level. *)
val encode : Endian.order -> t -> string

val decode : Endian.order -> string -> (t, string) result

(** Cap on retained items per level accepted by {!decode} (also the
    {!encode} limit, so the two agree): far above what an honest
    sketch retains, low enough that a hostile length field cannot
    force a giant allocation. *)
val max_level_items : int
