(* Binary status records exchanged between transmitter and receiver
   (Fig 3.10).  Fixed C-struct-like layouts with an explicit byte order:
   decoding with the wrong order yields garbage, the exact hazard §3.5.1
   warns about (tested in test_proto). *)

(* ------------------------------------------------------------------ *)
(* System status record: one per server, timestamped by the monitor     *)
(* ------------------------------------------------------------------ *)

type sys_record = {
  report : Report.t;
  updated_at : float;  (* monitor clock when last refreshed *)
}

let host_width = 40
let ip_width = 16
let sys_floats = 21  (* the numeric fields of Report.t, in order *)

(* host[40] ip[16] updated_at f64 values f64[21] *)
let sys_record_size = host_width + ip_width + 8 + (8 * sys_floats)

let encode_sys order (r : sys_record) =
  let b = Bytes.create sys_record_size in
  Endian.set_string b ~pos:0 ~width:host_width r.report.Report.host;
  Endian.set_string b ~pos:host_width ~width:ip_width r.report.Report.ip;
  Endian.set_f64 order b ~pos:(host_width + ip_width) r.updated_at;
  let base = host_width + ip_width + 8 in
  let rp = r.report in
  let values =
    [|
      rp.Report.load1; rp.Report.load5; rp.Report.load15;
      rp.Report.cpu_user; rp.Report.cpu_nice; rp.Report.cpu_system;
      rp.Report.cpu_free; rp.Report.bogomips;
      rp.Report.mem_total; rp.Report.mem_used; rp.Report.mem_free;
      rp.Report.mem_buffers; rp.Report.mem_cached;
      rp.Report.disk_rreq; rp.Report.disk_rblocks; rp.Report.disk_wreq;
      rp.Report.disk_wblocks;
      rp.Report.net_rbytes; rp.Report.net_rpackets; rp.Report.net_tbytes;
      rp.Report.net_tpackets;
    |]
  in
  Array.iteri (fun i v -> Endian.set_f64 order b ~pos:(base + (8 * i)) v) values;
  Bytes.to_string b

let decode_sys order s ~pos =
  if pos + sys_record_size > String.length s then
    Error "sys_record: truncated"
  else begin
    let b = Bytes.of_string s in
    let host = Endian.get_string b ~pos ~width:host_width in
    let ip = Endian.get_string b ~pos:(pos + host_width) ~width:ip_width in
    let updated_at = Endian.get_f64 order b ~pos:(pos + host_width + ip_width) in
    let base = pos + host_width + ip_width + 8 in
    let f i = Endian.get_f64 order b ~pos:(base + (8 * i)) in
    Ok
      {
        report =
          {
            Report.host; ip;
            load1 = f 0; load5 = f 1; load15 = f 2;
            cpu_user = f 3; cpu_nice = f 4; cpu_system = f 5;
            cpu_free = f 6; bogomips = f 7;
            mem_total = f 8; mem_used = f 9; mem_free = f 10;
            mem_buffers = f 11; mem_cached = f 12;
            disk_rreq = f 13; disk_rblocks = f 14; disk_wreq = f 15;
            disk_wblocks = f 16;
            net_rbytes = f 17; net_rpackets = f 18; net_tbytes = f 19;
            net_tpackets = f 20;
          };
        updated_at;
      }
  end

(* ------------------------------------------------------------------ *)
(* Network status record: (peer monitor, delay, bandwidth) rows         *)
(* ------------------------------------------------------------------ *)

type net_entry = {
  peer : string;       (* peer monitor host name *)
  delay : float;       (* seconds *)
  bandwidth : float;   (* bytes per second *)
  measured_at : float;
}

type net_record = { monitor : string; entries : net_entry list }

let net_entry_size = host_width + (8 * 3)

let encode_net order (r : net_record) =
  let n = List.length r.entries in
  let b = Bytes.create (host_width + 4 + (n * net_entry_size)) in
  Endian.set_string b ~pos:0 ~width:host_width r.monitor;
  Endian.set_u32 order b ~pos:host_width n;
  List.iteri
    (fun i e ->
      let base = host_width + 4 + (i * net_entry_size) in
      Endian.set_string b ~pos:base ~width:host_width e.peer;
      Endian.set_f64 order b ~pos:(base + host_width) e.delay;
      Endian.set_f64 order b ~pos:(base + host_width + 8) e.bandwidth;
      Endian.set_f64 order b ~pos:(base + host_width + 16) e.measured_at)
    r.entries;
  Bytes.to_string b

let decode_net order s =
  let len = String.length s in
  if len < host_width + 4 then Error "net_record: truncated header"
  else begin
    let b = Bytes.of_string s in
    let monitor = Endian.get_string b ~pos:0 ~width:host_width in
    let n = Endian.get_u32 order b ~pos:host_width in
    if len < host_width + 4 + (n * net_entry_size) then
      Error "net_record: truncated entries"
    else begin
      let entry i =
        let base = host_width + 4 + (i * net_entry_size) in
        {
          peer = Endian.get_string b ~pos:base ~width:host_width;
          delay = Endian.get_f64 order b ~pos:(base + host_width);
          bandwidth = Endian.get_f64 order b ~pos:(base + host_width + 8);
          measured_at = Endian.get_f64 order b ~pos:(base + host_width + 16);
        }
      in
      Ok { monitor; entries = List.init n entry }
    end
  end

(* ------------------------------------------------------------------ *)
(* Security record: (host, clearance level) rows (§3.4.1)               *)
(* ------------------------------------------------------------------ *)

type sec_entry = { host : string; level : int }

type sec_record = { entries : sec_entry list }

let sec_entry_size = host_width + 4

let encode_sec order (r : sec_record) =
  let n = List.length r.entries in
  let b = Bytes.create (4 + (n * sec_entry_size)) in
  Endian.set_u32 order b ~pos:0 n;
  List.iteri
    (fun i e ->
      let base = 4 + (i * sec_entry_size) in
      Endian.set_string b ~pos:base ~width:host_width e.host;
      Endian.set_u32 order b ~pos:(base + host_width) e.level)
    r.entries;
  Bytes.to_string b

let decode_sec order s =
  let len = String.length s in
  if len < 4 then Error "sec_record: truncated header"
  else begin
    let b = Bytes.of_string s in
    let n = Endian.get_u32 order b ~pos:0 in
    if len < 4 + (n * sec_entry_size) then Error "sec_record: truncated"
    else begin
      let entry i =
        let base = 4 + (i * sec_entry_size) in
        {
          host = Endian.get_string b ~pos:base ~width:host_width;
          level = Endian.get_u32 order b ~pos:(base + host_width);
        }
      in
      Ok { entries = List.init n entry }
    end
  end

(* Dummy security log parser (§3.4.1): "hostname level" per line,
   '#' comments. *)
let parse_security_log text =
  let parse_line line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun w -> not (String.equal w ""))
    with
    | [] -> None
    | [ host; level ] ->
      (match int_of_string_opt level with
      | Some level -> Some (Ok { host; level })
      | None -> Some (Error ("security log: bad level for " ^ host)))
    | _ -> Some (Error ("security log: malformed line " ^ line))
  in
  let rec collect acc = function
    | [] -> Ok { entries = List.rev acc }
    | line :: rest ->
      (match parse_line line with
      | None -> collect acc rest
      | Some (Ok e) -> collect (e :: acc) rest
      | Some (Error m) -> Error m)
  in
  collect [] (String.split_on_char '\n' text)
