(** Wizard request/reply messages (Tables 3.5 and 3.6), fixed network
    byte order, one UDP datagram each. *)

type option_flag =
  | Strict          (** fewer servers than requested is a failure *)
  | Accept_partial  (** take whatever qualified *)

type request = {
  seq : int;            (** random 32-bit id chosen by the client *)
  server_num : int;
  option : option_flag;
  requirement : string; (** meta-language source *)
  trace : Smart_util.Tracelog.ctx;
      (** trace context of the requesting span; [Tracelog.root] (the
          default for untraced clients) adds no bytes on the wire, and
          the encoding is then byte-identical to the pre-trace format *)
}

val encode_request : request -> string

val decode_request : string -> (request, string) result

type reply = {
  seq : int;
  servers : string list;  (** best candidates first *)
  degraded : bool;
      (** the wizard answered from a stale snapshot (its receiver feed
          had gone quiet); travels as bit 15 of the server-count word,
          so fresh replies encode byte-identically to the old format *)
  rejected : bool;
      (** admission control shed the request under overload (the server
          list is empty); travels as bit 14 of the server-count word,
          so unshed replies encode byte-identically to the old format.
          Clients should back off before retrying. *)
}

(** Raises [Invalid_argument] beyond [Ports.max_reply_servers] entries. *)
val encode_reply : reply -> string

val decode_reply : string -> (reply, string) result
