(* Wizard request and reply messages (Tables 3.5 and 3.6).

   Requests and replies travel in single UDP datagrams; both carry the
   client-chosen sequence number so the client library can match replies
   to outstanding requests.  These messages are exchanged between
   machines of arbitrary architecture, so unlike the transmitter frames
   they use a fixed (big-endian) network byte order. *)

let order = Endian.Big

(* §3.6.1 option field *)
type option_flag =
  | Strict           (* fewer servers than requested is a failure *)
  | Accept_partial   (* take whatever qualified *)

let option_code = function Strict -> 0 | Accept_partial -> 1

let option_of_code = function
  | 0 -> Some Strict
  | 1 -> Some Accept_partial
  | _ -> None

(* Bit 1 of the option field flags an appended trace context.  Untraced
   requests encode exactly as they always did, so old and new daemons
   interoperate and the golden byte-level tests stay valid. *)
let ctx_flag = 2

type request = {
  seq : int;            (* random 32-bit id chosen by the client *)
  server_num : int;     (* servers wanted, <= Ports.max_reply_servers *)
  option : option_flag;
  requirement : string; (* meta-language source text *)
  trace : Smart_util.Tracelog.ctx;
      (* the client's span, so the wizard's spans join its trace;
         [Tracelog.root] travels as no bytes at all *)
}

let encode_request r =
  if r.server_num < 0 || r.server_num > 0xFFFF then
    invalid_arg "Wizard_msg.encode_request: bad server_num";
  let traced = not (Smart_util.Tracelog.is_root r.trace) in
  let header = if traced then 16 else 8 in
  let b = Bytes.create (header + String.length r.requirement) in
  Endian.set_u32 order b ~pos:0 (r.seq land 0xFFFFFFFF);
  Endian.set_u16 order b ~pos:4 r.server_num;
  Endian.set_u16 order b ~pos:6
    (option_code r.option lor if traced then ctx_flag else 0);
  if traced then begin
    Endian.set_u32 order b ~pos:8 (r.trace.Smart_util.Tracelog.trace_id land 0xFFFFFFFF);
    Endian.set_u32 order b ~pos:12 (r.trace.Smart_util.Tracelog.span_id land 0xFFFFFFFF)
  end;
  Bytes.blit_string r.requirement 0 b header (String.length r.requirement);
  Bytes.to_string b

let decode_request s =
  if String.length s < 8 then Error "request: truncated"
  else begin
    let b = Bytes.of_string s in
    let seq = Endian.get_u32 order b ~pos:0 in
    let server_num = Endian.get_u16 order b ~pos:4 in
    let code = Endian.get_u16 order b ~pos:6 in
    let traced = code land ctx_flag <> 0 in
    if code land lnot (1 lor ctx_flag) <> 0 then
      Error "request: unknown option code"
    else if traced && String.length s < 16 then
      Error "request: truncated trace context"
    else
      match option_of_code (code land 1) with
      | None -> Error "request: unknown option code"
      | Some option ->
        let trace =
          if traced then
            {
              Smart_util.Tracelog.trace_id = Endian.get_u32 order b ~pos:8;
              span_id = Endian.get_u32 order b ~pos:12;
            }
          else Smart_util.Tracelog.root
        in
        let header = if traced then 16 else 8 in
        Ok
          {
            seq;
            server_num;
            option;
            requirement = String.sub s header (String.length s - header);
            trace;
          }
  end

(* Bit 15 of the reply's server-count word flags a degraded answer: the
   wizard served it from a stale snapshot because its receiver feed had
   gone quiet.  Bit 14 flags an admission rejection: the wizard shed the
   request under overload and the client should back off before asking
   again.  Unflagged replies encode exactly as they always did. *)
let degraded_flag = 0x8000

let rejected_flag = 0x4000

type reply = {
  seq : int;
  servers : string list;  (* host names or IPs, best first *)
  degraded : bool;        (* answered from a stale snapshot *)
  rejected : bool;        (* shed by admission control; back off *)
}

let encode_reply r =
  if List.length r.servers > Ports.max_reply_servers then
    invalid_arg "Wizard_msg.encode_reply: too many servers";
  let buf = Buffer.create 128 in
  let b = Bytes.create 6 in
  Endian.set_u32 order b ~pos:0 (r.seq land 0xFFFFFFFF);
  Endian.set_u16 order b ~pos:4
    (List.length r.servers
    lor (if r.degraded then degraded_flag else 0)
    lor if r.rejected then rejected_flag else 0);
  Buffer.add_bytes buf b;
  List.iter
    (fun server ->
      if String.length server > 0xFF then
        invalid_arg "Wizard_msg.encode_reply: server name too long";
      Buffer.add_char buf (Char.chr (String.length server));
      Buffer.add_string buf server)
    r.servers;
  Buffer.contents buf

let decode_reply s =
  if String.length s < 6 then Error "reply: truncated"
  else begin
    let b = Bytes.of_string s in
    let seq = Endian.get_u32 order b ~pos:0 in
    let word = Endian.get_u16 order b ~pos:4 in
    let degraded = word land degraded_flag <> 0 in
    let rejected = word land rejected_flag <> 0 in
    let count = word land lnot (degraded_flag lor rejected_flag) in
    let rec read pos n acc =
      if n = 0 then Ok (List.rev acc)
      else if pos >= String.length s then Error "reply: truncated server list"
      else begin
        let len = Char.code s.[pos] in
        if pos + 1 + len > String.length s then
          Error "reply: truncated server entry"
        else
          read (pos + 1 + len) (n - 1) (String.sub s (pos + 1) len :: acc)
      end
    in
    match read 6 count [] with
    | Ok servers -> Ok { seq; servers; degraded; rejected }
    | Error _ as e -> e
  end
