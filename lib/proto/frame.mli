(** [type, size, data] TCP framing between transmitter and receiver
    (§3.5.1), with an incremental decoder for stream reassembly.

    The wire type code carries two optional flags: [+
    traced_code_offset] for an 8-byte trace context between header and
    payload, and [+ crc_code_offset] for a CRC-32 trailer covering every
    preceding byte of the frame.  A frame with neither flag encodes
    byte-identically to the original format. *)

(** [Digest_db] (type code 4) carries a {!Digest} — the federation's
    per-shard summary shipped up the aggregation tree instead of whole
    databases; [Sketch_db] (type code 5) carries a {!Sketch_msg} batch
    of mergeable quantile sketches riding the same uplink; the first
    three codes are the original §3.5.1 payloads. *)
type payload_type = Sys_db | Net_db | Sec_db | Digest_db | Sketch_db

val type_code : payload_type -> int

val type_of_code : int -> payload_type option

(** A traced frame's wire type code is [type_code + traced_code_offset];
    it carries an 8-byte trace context between header and payload. *)
val traced_code_offset : int

(** A CRC'd frame's wire type code adds [crc_code_offset]; it carries a
    CRC-32 (IEEE) trailer over header, context and payload. *)
val crc_code_offset : int

val header_size : int

(** Bytes of the CRC trailer. *)
val crc_size : int

(** Upper bound on an accepted payload, guarding the receiver's
    pre-allocation against corrupt headers. *)
val max_frame_size : int

type frame = {
  payload_type : payload_type;
  data : string;
  trace : Smart_util.Tracelog.ctx;
      (** context of the push that produced this frame; [Tracelog.root]
          (untraced) encodes byte-identically to the pre-trace format *)
}

(** Why a stretch of bytes does not decode as a frame. *)
type error =
  | Truncated of { need : int; have : int }
      (** fewer bytes than the frame claims; wait for more *)
  | Unknown_code of int  (** type code matches no known frame kind *)
  | Oversized of int  (** size prefix beyond {!max_frame_size} *)
  | Crc_mismatch of { expected : int; got : int }
      (** the trailer disagrees with the received bytes *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** [encode ?crc order frame] serialises one frame; [~crc:true] appends
    the integrity trailer (default off, preserving the legacy bytes). *)
val encode : ?crc:bool -> Endian.order -> frame -> string

(** Decode the single frame starting at [pos] (default 0); returns the
    frame and the bytes it occupied.  Never raises — malformed and
    truncated input comes back as a typed {!error}. *)
val decode_one :
  Endian.order -> ?pos:int -> string -> (frame * int, error) result

type decoder

val decoder : Endian.order -> decoder

(** Append received bytes. *)
val feed : decoder -> string -> unit

(** Pop all complete frames accumulated so far.  Corruption (unknown
    code, impossible size, CRC mismatch) never poisons the stream: the
    decoder skips forward byte-by-byte until a valid frame lines up
    again, recording the damage in {!skipped_bytes} / {!resyncs}. *)
val frames : decoder -> frame list

(** Total bytes discarded while hunting for a frame boundary. *)
val skipped_bytes : decoder -> int

(** Corruption episodes survived (consecutive skipped bytes count
    once). *)
val resyncs : decoder -> int

(** The most recent corruption seen, if any. *)
val last_error : decoder -> error option

(** Bytes buffered awaiting a complete frame. *)
val pending_bytes : decoder -> int
