(** [type, size, data] TCP framing between transmitter and receiver
    (§3.5.1), with an incremental decoder for stream reassembly. *)

type payload_type = Sys_db | Net_db | Sec_db

val type_code : payload_type -> int

val type_of_code : int -> payload_type option

(** A traced frame's wire type code is [type_code + traced_code_offset];
    it carries an 8-byte trace context between header and payload. *)
val traced_code_offset : int

val header_size : int

(** Upper bound on an accepted payload, guarding the receiver's
    pre-allocation against corrupt headers. *)
val max_frame_size : int

type frame = {
  payload_type : payload_type;
  data : string;
  trace : Smart_util.Tracelog.ctx;
      (** context of the push that produced this frame; [Tracelog.root]
          (untraced) encodes byte-identically to the pre-trace format *)
}

val encode : Endian.order -> frame -> string

type decoder

val decoder : Endian.order -> decoder

(** Append received bytes (no-op once the stream is poisoned). *)
val feed : decoder -> string -> unit

(** Pop all complete frames accumulated so far; [Error] once the stream
    is unrecoverable (unknown type code or oversized payload). *)
val frames : decoder -> (frame list, string) result
