(** Explicit-endianness primitives for the binary record codecs.  Both
    byte orders are implemented so tests can demonstrate the §3.5.1
    same-architecture requirement. *)

type order = Little | Big

val set_u16 : order -> Bytes.t -> pos:int -> int -> unit
val get_u16 : order -> Bytes.t -> pos:int -> int

val set_u32 : order -> Bytes.t -> pos:int -> int -> unit
val get_u32 : order -> Bytes.t -> pos:int -> int

val set_i64 : order -> Bytes.t -> pos:int -> int64 -> unit
val get_i64 : order -> Bytes.t -> pos:int -> int64

val set_f64 : order -> Bytes.t -> pos:int -> float -> unit
val get_f64 : order -> Bytes.t -> pos:int -> float

(** Fixed-width NUL-padded character field (C [char\[n\]] semantics);
    values longer than [width - 1] are truncated. *)
val set_string : Bytes.t -> pos:int -> width:int -> string -> unit

val get_string : Bytes.t -> pos:int -> width:int -> string
