(** Flight-recorder scrape datagrams: the trace-plane twin of
    {!Metrics_msg}.  Every realnet daemon recognises the magic on its
    existing UDP socket and replies with its span ring. *)

(** [Text] is {!Smart_util.Tracelog.to_text}; [Json] the Chrome
    trace-event rendering ({!Smart_util.Tracelog.to_chrome_json},
    Perfetto-loadable). *)
type format = Text | Json

(** ["SMART-TRACE"] — the prefix every scrape request carries.  Distinct
    from [Metrics_msg.request_magic], so both scrapes share a socket. *)
val request_magic : string

val encode_request : format -> string

(** [Some format] when [data] is a trace scrape, [None] otherwise. *)
val decode_request : string -> format option

(** Render the flight recorder in [format] — the entire reply datagram.
    Daemons keep small rings (a few hundred spans), so dumps fit one
    64 KiB datagram. *)
val encode_reply : format -> Smart_util.Tracelog.t -> string
