(* Mergeable per-shard status summary — the federation's "digest" frame
   payload (DESIGN.md §13).

   A regional wizard summarizes its shard's columnar snapshot into one
   small record: for every status column, how many servers carry a value
   and the [lo, hi] range those values span.  Digests form a commutative
   monoid under {!merge} ({!empty_stat} is the identity per column), so
   any aggregation tree produces the same root summary regardless of
   shape or arrival order.

   The root wizard uses digests for query routing only — interval tests
   that prove "no server of this shard can qualify".  Ranges are
   conservative by construction, so a stale digest can only cost a
   wasted subquery, never a wrongly skipped shard (the shard re-checks
   every server anyway). *)

type stat = { present : int; lo : float; hi : float }

(* No observations: the identity of [merge_stat].  [lo > hi] encodes the
   empty interval without an option. *)
let empty_stat = { present = 0; lo = infinity; hi = neg_infinity }

let observe s v =
  {
    present = s.present + 1;
    lo = (if v < s.lo then v else s.lo);
    hi = (if v > s.hi then v else s.hi);
  }

let merge_stat a b =
  {
    present = a.present + b.present;
    lo = Float.min a.lo b.lo;
    hi = Float.max a.hi b.hi;
  }

type t = {
  shard : string;
  generation : int;
  servers : int;
  sys : stat array;
  net_delay : stat;
  net_bw : stat;
  sec_level : stat;
}

let empty ~shard ~sys_fields =
  if sys_fields < 0 then invalid_arg "Digest.empty: negative sys_fields";
  {
    shard;
    generation = 0;
    servers = 0;
    sys = Array.make sys_fields empty_stat;
    net_delay = empty_stat;
    net_bw = empty_stat;
    sec_level = empty_stat;
  }

let merge a b =
  if Array.length a.sys <> Array.length b.sys then
    invalid_arg "Digest.merge: column count mismatch";
  {
    shard = a.shard;
    generation = (if a.generation > b.generation then a.generation else b.generation);
    servers = a.servers + b.servers;
    sys = Array.map2 merge_stat a.sys b.sys;
    net_delay = merge_stat a.net_delay b.net_delay;
    net_bw = merge_stat a.net_bw b.net_bw;
    sec_level = merge_stat a.sec_level b.sec_level;
  }

(* Wire layout (within a [Frame.Digest_db] payload):

     shard_len u16, shard bytes,
     generation u32, servers u32, nsys u16,
     (nsys + 3) stats: present u32, lo f64, hi f64

   The three trailing stats are net_delay, net_bw, sec_level.  All
   integers and floats use the frame's byte [order]. *)

let stat_size = 4 + 8 + 8

let encode order d =
  if String.length d.shard > 0xFFFF then
    invalid_arg "Digest.encode: shard name too long";
  let nsys = Array.length d.sys in
  if nsys > 0xFFFF then invalid_arg "Digest.encode: too many columns";
  let head = 2 + String.length d.shard + 4 + 4 + 2 in
  let b = Bytes.create (head + ((nsys + 3) * stat_size)) in
  Endian.set_u16 order b ~pos:0 (String.length d.shard);
  Bytes.blit_string d.shard 0 b 2 (String.length d.shard);
  let pos = 2 + String.length d.shard in
  Endian.set_u32 order b ~pos (d.generation land 0xFFFFFFFF);
  Endian.set_u32 order b ~pos:(pos + 4) (d.servers land 0xFFFFFFFF);
  Endian.set_u16 order b ~pos:(pos + 8) nsys;
  let write i s =
    let pos = head + (i * stat_size) in
    Endian.set_u32 order b ~pos (s.present land 0xFFFFFFFF);
    Endian.set_f64 order b ~pos:(pos + 4) s.lo;
    Endian.set_f64 order b ~pos:(pos + 12) s.hi
  in
  Array.iteri write d.sys;
  write nsys d.net_delay;
  write (nsys + 1) d.net_bw;
  write (nsys + 2) d.sec_level;
  Bytes.to_string b

let decode order s =
  let len = String.length s in
  if len < 2 then Error "digest: truncated"
  else begin
    let b = Bytes.of_string s in
    let shard_len = Endian.get_u16 order b ~pos:0 in
    if len < 2 + shard_len + 10 then Error "digest: truncated header"
    else begin
      let shard = String.sub s 2 shard_len in
      let pos = 2 + shard_len in
      let generation = Endian.get_u32 order b ~pos in
      let servers = Endian.get_u32 order b ~pos:(pos + 4) in
      let nsys = Endian.get_u16 order b ~pos:(pos + 8) in
      let head = pos + 10 in
      if len <> head + ((nsys + 3) * stat_size) then
        Error "digest: truncated stats"
      else begin
        let read i =
          let pos = head + (i * stat_size) in
          {
            present = Endian.get_u32 order b ~pos;
            lo = Endian.get_f64 order b ~pos:(pos + 4);
            hi = Endian.get_f64 order b ~pos:(pos + 12);
          }
        in
        Ok
          {
            shard;
            generation;
            servers;
            sys = Array.init nsys read;
            net_delay = read nsys;
            net_bw = read (nsys + 1);
            sec_level = read (nsys + 2);
          }
      end
    end
  end
