(** Mergeable per-shard status summary — the payload of a
    [Frame.Digest_db] frame, and the unit of upward aggregation in the
    federated status plane (DESIGN.md §13).

    A digest carries, for every status column, the number of servers
    with a value and the closed interval those values span.  Digests
    form a commutative monoid under {!merge}, so an aggregation tree of
    any shape produces the same summary.  The root wizard consults them
    for query routing: a shard whose intervals rule out every
    conjunctive constraint of a requirement cannot contribute a
    candidate and is skipped.  Ranges only ever over-approximate, so a
    stale digest costs at most a wasted subquery. *)

(** Range summary of one status column over one shard. *)
type stat = {
  present : int;  (** servers carrying a value in this column *)
  lo : float;  (** smallest value observed *)
  hi : float;  (** largest value observed *)
}

(** The identity of {!merge_stat}: no observations, with the empty
    interval encoded as [lo = +inf > hi = -inf]. *)
val empty_stat : stat

(** Fold one value into a column summary. *)
val observe : stat -> float -> stat

(** Combine two column summaries: counts add, intervals union. *)
val merge_stat : stat -> stat -> stat

type t = {
  shard : string;  (** name of the regional wizard that built it *)
  generation : int;  (** shard database generation it summarizes *)
  servers : int;  (** rows of the shard's columnar snapshot *)
  sys : stat array;  (** per server-side variable, [Bytecode.sys_fields] order *)
  net_delay : stat;  (** monitor_network_delay, milliseconds *)
  net_bw : stat;  (** monitor_network_bw, Mbps *)
  sec_level : stat;  (** host_security_level *)
}

(** Digest of an empty shard with [sys_fields] system columns — the
    identity of {!merge} for that width. *)
val empty : shard:string -> sys_fields:int -> t

(** Elementwise {!merge_stat} over every column; server counts add, the
    generation takes the max, the shard name comes from the left
    argument.  Raises [Invalid_argument] when the operands disagree on
    the system column count. *)
val merge : t -> t -> t

(** Serialise for a [Frame.Digest_db] payload in byte order [order]. *)
val encode : Endian.order -> t -> string

(** Inverse of {!encode}; never raises — malformed input comes back as
    [Error]. *)
val decode : Endian.order -> string -> (t, string) result
