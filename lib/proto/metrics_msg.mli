(** Metrics scrape datagrams: a magic request answered with a registry
    dump.  Every realnet daemon recognises these on its existing UDP
    socket, so observing a deployment needs no extra ports. *)

(** Rendering of the reply: [Text] is the line-oriented human dump,
    [Json] an object keyed by metric name (see
    {!Smart_util.Metrics.to_text} / {!Smart_util.Metrics.to_json}). *)
type format = Text | Json

(** ["SMART-METRICS"] — the prefix every scrape request carries. *)
val request_magic : string

(** The scrape datagram for [format]. *)
val encode_request : format -> string

(** [Some format] when [data] is a scrape request, [None] otherwise
    (daemons fall through to their normal datagram handling). *)
val decode_request : string -> format option

(** Render a registry in [format] — the entire reply datagram.  Dumps fit
    comfortably in one 64 KiB datagram (a metric renders in well under
    128 bytes; a daemon registers a few dozen). *)
val encode_reply : format -> Smart_util.Metrics.t -> string
