(** SuperPI workload experiment: memory pressure before and after a run,
    as the probe would report it. *)

type report = {
  before : Smart_host.Procfs.meminfo;
  after : Smart_host.Procfs.meminfo;
}

val run : unit -> report

val print : report -> unit
