(** RTT-sweep experiments (Figs 3.3–3.5): payload-size sweeps whose RTT
    knee tracks the path MTU. *)

type sweep_report = {
  label : string;
  mtu : int;
  samples : Smart_measure.Rtt_probe.sample list;
  knee : Smart_measure.Rtt_probe.knee_analysis option;
  ping : float option;
  paper_ping : float option;
  lost : int;
}

(** sagit -> suna with the interface MTU at 1500, 1000 and 500 bytes. *)
val mtu_sweeps :
  ?mtus:int list -> ?max_size:int -> ?step:int -> unit -> sweep_report list

(** The fixture's representative paths at their native MTUs. *)
val sample_paths : ?max_size:int -> ?step:int -> unit -> sweep_report list

val print_sweep : sweep_report -> unit
