(** Ablation studies for the measurement plane: probe-train sizing,
    packet-pair spacing, transmitter modes, and staleness detection. *)

(** One NIC kind's bandwidth estimate below and above the MTU knee. *)
type init_row = {
  nic_kind : string;
  sub_mtu_bw : float;   (** Mbps measured with 100~1000 B probes *)
  super_mtu_bw : float; (** Mbps measured with 1600~2900 B probes *)
  knee_significant : bool;
}

val init_speed_ablation : ?trials:int -> unit -> init_row list

val print_init_speed : init_row list -> unit

(** Packet-pair spacing sensitivity against a known link speed. *)
type spacing_row = {
  spacing : string;
  measured_mbps : float;
  truth_mbps : float;
}

val spacing_ablation : ?truth:float -> unit -> spacing_row list

val print_spacing : spacing_row list -> unit

(** Standing bandwidth and request latency per transmitter mode. *)
type mode_row = {
  mode : string;
  standing_kBps : float;       (** transmitter bytes over an idle minute *)
  request_latency_ms : float;  (** request round trip, virtual time *)
}

val mode_ablation : unit -> mode_row list

val print_modes : mode_row list -> unit

(** Failure-detection delay vs. spurious expiries per expiry threshold. *)
type staleness_row = {
  missed_intervals : int;
  detection_s : float;     (** time to expire a really dead server *)
  false_expiries : int;    (** spurious expiries under report loss *)
}

val staleness_ablation :
  ?loss:float ->
  ?interval:float ->
  ?fail_at:float ->
  ?horizon:float ->
  unit ->
  staleness_row list

val print_staleness : staleness_row list -> unit
