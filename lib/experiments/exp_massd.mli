(** The massive-download experiment (§5.3): smart server sets vs. random
    ones on the shaped two-group testbed. *)

(** The two shaped host groups of the massive-download testbed. *)
val group1 : string list

val group2 : string list

(** One shaper calibration point: requested vs. achieved rate. *)
type calibration_sample = {
  data_kb : int;
  blk_kb : int;
  set_kBps : float;
  achieved_kBps : float;
}

val calibration : ?samples:int -> unit -> calibration_sample list

val print_calibration : calibration_sample list -> unit

(** One download run: the server set used and the rate it achieved. *)
type run_row = {
  label : string;
  servers : string list;
  kBps : float;
  paper_kBps : float option;
}

type table = {
  title : string;
  group1_mbps : float;
  group2_mbps : float;
  requirement : string;
  rows : run_row list;  (** random sets then the smart set, smart last *)
}

(** One shaping scenario from the thesis, with its paper numbers. *)
type setup = {
  title : string;
  g1_mbps : float;
  g2_mbps : float;
  wanted : int;
  requirement : string;
  random_sets : (string * string list * float option) list;
  paper_smart : float option;
}

val setups : setup list

val run_setup : ?data_kb:int -> ?blk_kb:int -> setup -> table

val run_all : ?data_kb:int -> ?blk_kb:int -> unit -> table list

val print_table : table -> unit
