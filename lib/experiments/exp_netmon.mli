(** Network-monitor experiment: the Table 3.4 monitor mesh measured over
    a simulated topology with known link truth. *)

type report = {
  records : Smart_proto.Records.net_record list;
  link_truth : (string * string * float * float) list;
      (** a, b, capacity Mbps, one-way delay s *)
}

val run : ?trials:int -> unit -> report

val print : report -> unit
