(* Table 3.4: the network monitor mesh.  Three server-group monitors
   probe one another sequentially; each publishes a (delay, bandwidth)
   row per peer.  The three inter-group links are given distinct
   capacities and delays so the mesh is visibly asymmetric. *)

type report = {
  records : Smart_proto.Records.net_record list;
  link_truth : (string * string * float * float) list;
      (* a, b, capacity Mbps, one-way delay s *)
}

let host name ip =
  {
    Smart_host.Machine.name;
    ip;
    cpu_model = "P4 2.4GHz";
    cpu_mhz = 2400.0;
    bogomips = 4771.02;
    ram_bytes = 512 * 1024 * 1024;
    os = "Redhat Linux 8.0";
    matmul_rate = 30e6;
    disk_rate = 8000.0;
  }

let conf ~mbps ~delay =
  {
    Smart_net.Link.capacity = mbps *. 1e6 /. 8.0;
    prop_delay = delay;
    jitter = delay /. 400.0;
    loss = 0.0;
  }

let run ?(trials = 8) () =
  let c = Smart_host.Cluster.create ~seed:11 () in
  let m1 = Smart_host.Cluster.add_machine c (host "netmon-1" "10.1.0.1") in
  let m2 = Smart_host.Cluster.add_machine c (host "netmon-2" "10.2.0.1") in
  let m3 = Smart_host.Cluster.add_machine c (host "netmon-3" "10.3.0.1") in
  let truth =
    [
      (m1, m2, 45.0, 4e-3, "netmon-1", "netmon-2");
      (m1, m3, 20.0, 11e-3, "netmon-1", "netmon-3");
      (m2, m3, 80.0, 2e-3, "netmon-2", "netmon-3");
    ]
  in
  List.iter
    (fun (a, b, mbps, delay, _, _) ->
      ignore (Smart_host.Cluster.link c ~a ~b (conf ~mbps ~delay)))
    truth;
  let stack = Smart_host.Cluster.stack c in
  let monitors =
    [ ("netmon-1", m1); ("netmon-2", m2); ("netmon-3", m3) ]
  in
  let db = Smart_core.Status_db.create () in
  let records =
    List.map
      (fun (name, node) ->
        let targets =
          List.filter_map
            (fun (peer, _) ->
              if String.equal peer name then None else Some peer)
            monitors
        in
        let netmon =
          Smart_core.Netmon.create
            { Smart_core.Netmon.monitor_name = name; targets }
            db
        in
        let prober ~target =
          let dst = List.assoc target monitors in
          let delay =
            Smart_measure.Rtt_probe.ping ~count:3 stack ~src:node ~dst ()
          in
          let bw =
            Smart_measure.Udp_stream.measure ~trials stack ~src:node ~dst ()
          in
          match (delay, bw) with
          | Some d, Some b ->
            Some
              {
                Smart_core.Netmon.delay = d /. 2.0;
                bandwidth = b.Smart_measure.Udp_stream.avg_bw;
              }
          | _ -> None
        in
        Smart_core.Netmon.probe_all netmon
          ~now:(Smart_host.Cluster.now c)
          ~prober)
      monitors
  in
  {
    records;
    link_truth =
      List.map (fun (_, _, mbps, delay, a, b) -> (a, b, mbps, delay)) truth;
  }

let print (r : report) =
  let tab =
    Smart_util.Tabular.create
      ~title:"Table 3.4: network monitor records (delay, bandwidth)"
      ~header:[ "Net Monitor"; "peer"; "delay (ms)"; "bw (Mbps)" ]
  in
  List.iter
    (fun (rec_ : Smart_proto.Records.net_record) ->
      List.iter
        (fun (e : Smart_proto.Records.net_entry) ->
          Smart_util.Tabular.add_row tab
            [
              rec_.Smart_proto.Records.monitor;
              e.Smart_proto.Records.peer;
              Fmt.str "%.2f"
                (Smart_util.Units.s_to_ms e.Smart_proto.Records.delay);
              Fmt.str "%.1f"
                (Smart_util.Units.bytes_per_sec_to_mbps
                   e.Smart_proto.Records.bandwidth);
            ])
        rec_.Smart_proto.Records.entries)
    r.records;
  Smart_util.Tabular.print tab;
  let truth =
    Smart_util.Tabular.create ~title:"ground truth links"
      ~header:[ "link"; "capacity (Mbps)"; "one-way delay (ms)" ]
  in
  List.iter
    (fun (a, b, mbps, delay) ->
      Smart_util.Tabular.add_row truth
        [
          a ^ " <-> " ^ b;
          Fmt.str "%.0f" mbps;
          Fmt.str "%.1f" (Smart_util.Units.s_to_ms delay);
        ])
    r.link_truth;
  Smart_util.Tabular.print truth
