(** Resource-footprint experiment (Table 5.1): CPU, memory, and standing
    bandwidth of each component over a simulated deployment. *)

type row = {
  component : string;
  cpu_pct : float;
  memory_bytes : int;
  bandwidth_kBps : float;
  paper : string;  (** the thesis's figures for the same cell *)
}

type report = { rows : row list; duration : float; probes : int }

val run : ?duration:float -> unit -> report

val print : report -> unit
