(* Ablations of the design choices DESIGN.md §5 calls out:

   1. interface-initialisation cost (Speed_init): with it, sub-MTU
      probes under-estimate and the RTT knee exists; without it (virtual
      interface), both effects disappear — validating Formula (3.6)'s
      explanation of Fig 3.7;
   2. probe spacing through a shaper: back-to-back pairs start with
      unequal token buckets and mis-read the bandwidth, spaced pairs
      read the shaped rate — the constant-overhead assumption behind
      Formula (3.5);
   3. transmitter mode: centralized push keeps the wizard fresh at a
      standing network cost, distributed pull trades standing bytes for
      request latency (§3.5.1's motivation);
   4. staleness threshold (3 missed intervals in §4.1): smaller
      thresholds detect failures faster but falsely expire servers when
      report datagrams are lost. *)

let mbps = Smart_util.Units.bytes_per_sec_to_mbps

(* ------------------------------------------------------------------ *)
(* 1. Speed_init ablation                                               *)
(* ------------------------------------------------------------------ *)

type init_row = {
  nic_kind : string;
  sub_mtu_bw : float;   (* Mbps measured with 100~1000 probes *)
  super_mtu_bw : float; (* Mbps measured with 1600~2900 probes *)
  knee_significant : bool;
}

let init_speed_ablation ?(trials = 6) () =
  List.map
    (fun (nic_kind, sagit_virtual) ->
      let f = Smart_host.Testbed.paths ~sagit_virtual () in
      let stack = Smart_host.Cluster.stack f.Smart_host.Testbed.cluster in
      let src = f.Smart_host.Testbed.sagit in
      let dst = f.Smart_host.Testbed.suna in
      let measure s1 s2 =
        match
          Smart_measure.Udp_stream.measure ~s1 ~s2 ~trials stack ~src ~dst ()
        with
        | Some r -> mbps r.Smart_measure.Udp_stream.avg_bw
        | None -> nan
      in
      let sweep =
        Smart_measure.Rtt_probe.sweep ~min_size:100 ~max_size:4500 ~step:100
          stack ~src ~dst ()
      in
      let knee = Smart_measure.Rtt_probe.analyze sweep in
      {
        nic_kind;
        sub_mtu_bw = measure 100 1000;
        super_mtu_bw = measure 1600 2900;
        knee_significant = knee.Smart_measure.Rtt_probe.significant;
      })
    [
      ("physical (Speed_init = 25 Mbps)", false);
      ("virtual (no init cost)", true);
    ]

let print_init_speed rows =
  let tab =
    Smart_util.Tabular.create
      ~title:"ablation 1: interface initialisation cost"
      ~header:
        [ "interface"; "100~1000 probes (Mbps)"; "1600~2900 (Mbps)"; "knee?" ]
  in
  List.iter
    (fun r ->
      Smart_util.Tabular.add_row tab
        [
          r.nic_kind;
          Fmt.str "%.1f" r.sub_mtu_bw;
          Fmt.str "%.1f" r.super_mtu_bw;
          (if r.knee_significant then "yes" else "no");
        ])
    rows;
  Smart_util.Tabular.print tab;
  Fmt.pr
    "  note: removing the init cost recovers much of the sub-MTU estimate;\n\
    \  the residue is store-and-forward per hop, which single-fragment\n\
    \  probes pay on every link while multi-fragment streams pipeline —\n\
    \  a second reason to probe with S > MTU that Formula (3.6) absorbs\n\
    \  into Overhead_net.@.@."

(* ------------------------------------------------------------------ *)
(* 2. probe spacing through a shaper                                    *)
(* ------------------------------------------------------------------ *)

type spacing_row = {
  spacing : string;
  measured_mbps : float;
  truth_mbps : float;
}

let spacing_ablation ?(truth = 2.0) () =
  List.map
    (fun (spacing, gap, inter_trial_gap) ->
      let f = Smart_host.Testbed.paths () in
      let c = f.Smart_host.Testbed.cluster in
      ignore
        (Smart_host.Cluster.shape_access c ~node:f.Smart_host.Testbed.suna
           ~rate_bytes_per_sec:
             (Some (Smart_util.Units.mbps_to_bytes_per_sec truth)));
      let stack = Smart_host.Cluster.stack c in
      let engine = Smart_host.Cluster.engine c in
      let results = ref [] in
      for _ = 1 to 6 do
        (match
           Smart_measure.Udp_stream.probe_pair ~gap stack
             ~src:f.Smart_host.Testbed.sagit ~dst:f.Smart_host.Testbed.suna
             ~s1:1600 ~s2:2900 ()
         with
        | Some tr -> results := tr.Smart_measure.Udp_stream.bw :: !results
        | None -> ());
        Smart_sim.Engine.run engine
          ~until:(Smart_sim.Engine.now engine +. inter_trial_gap)
      done;
      let measured =
        match !results with
        | [] -> nan
        | bws -> Smart_util.Stats.mean (Array.of_list bws)
      in
      { spacing; measured_mbps = mbps measured; truth_mbps = truth })
    [
      ("back-to-back (no settle)", 0.0, 0.0);
      ("spaced (50 ms + 300 ms settle)", 0.05, 0.3);
    ]

let print_spacing rows =
  let tab =
    Smart_util.Tabular.create
      ~title:"ablation 2: probe spacing through a 2 Mbps shaper"
      ~header:[ "spacing"; "measured (Mbps)"; "truth (Mbps)" ]
  in
  List.iter
    (fun r ->
      Smart_util.Tabular.add_row tab
        [ r.spacing; Fmt.str "%.2f" r.measured_mbps; Fmt.str "%.2f" r.truth_mbps ])
    rows;
  Smart_util.Tabular.print tab

(* ------------------------------------------------------------------ *)
(* 3. transmitter mode                                                  *)
(* ------------------------------------------------------------------ *)

type mode_row = {
  mode : string;
  standing_kBps : float;       (* transmitter bytes over an idle minute *)
  request_latency_ms : float;  (* request round trip, virtual time *)
}

let mode_ablation () =
  List.map
    (fun (mode_name, mode) ->
      let c = Smart_host.Testbed.icpp2005 () in
      let d =
        Smart_core.Simdriver.deploy
          ~config:{ Smart_core.Simdriver.default_config with Smart_core.Simdriver.mode }
          c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
          ~servers:Smart_host.Testbed.machine_names
      in
      Smart_core.Simdriver.settle ~duration:4.0 d;
      let _, bytes0 = Smart_core.Simdriver.traffic_stats d "transmitter" in
      let t0 = Smart_host.Cluster.now c in
      Smart_core.Simdriver.settle ~duration:60.0 d;
      let _, bytes1 = Smart_core.Simdriver.traffic_stats d "transmitter" in
      let standing_kBps =
        float_of_int (bytes1 - bytes0)
        /. 1024.0
        /. (Smart_host.Cluster.now c -. t0)
      in
      let before = Smart_host.Cluster.now c in
      (match
         Smart_core.Simdriver.request d ~client:"sagit" ~wanted:2
           ~requirement:"host_cpu_bogomips > 4000\n"
       with
      | Ok _ -> ()
      | Error e ->
        failwith (Fmt.str "mode ablation request: %a" Smart_core.Client.pp_error e));
      let latency = Smart_host.Cluster.now c -. before in
      {
        mode = mode_name;
        standing_kBps;
        request_latency_ms = Smart_util.Units.s_to_ms latency;
      })
    [
      ("centralized (push)", Smart_core.Transmitter.Centralized);
      ("distributed (pull)", Smart_core.Transmitter.Distributed);
    ]

let print_modes rows =
  let tab =
    Smart_util.Tabular.create
      ~title:"ablation 3: centralized push vs distributed pull"
      ~header:[ "mode"; "standing transmitter KB/s"; "request latency (ms)" ]
  in
  List.iter
    (fun r ->
      Smart_util.Tabular.add_row tab
        [
          r.mode;
          Fmt.str "%.2f" r.standing_kBps;
          Fmt.str "%.1f" r.request_latency_ms;
        ])
    rows;
  Smart_util.Tabular.print tab

(* ------------------------------------------------------------------ *)
(* 4. staleness threshold                                               *)
(* ------------------------------------------------------------------ *)

type staleness_row = {
  missed_intervals : int;
  detection_s : float;     (* time to expire a really dead server *)
  false_expiries : int;    (* spurious expiries under 15% report loss *)
}

(* Drive a sysmon directly: one probe reporting every [interval] with
   per-report loss, failing for good at [fail_at].  Measures how long the
   monitor takes to notice the real failure and how often it falsely
   expires the live server beforehand. *)
let staleness_ablation ?(loss = 0.15) ?(interval = 2.0) ?(fail_at = 600.0)
    ?(horizon = 700.0) () =
  let report =
    Smart_proto.Report.to_string
      {
        Smart_proto.Report.host = "srv";
        ip = "10.0.0.1";
        load1 = 0.0; load5 = 0.0; load15 = 0.0;
        cpu_user = 0.0; cpu_nice = 0.0; cpu_system = 0.0; cpu_free = 1.0;
        bogomips = 1000.0;
        mem_total = 128.0; mem_used = 64.0; mem_free = 64.0;
        mem_buffers = 8.0; mem_cached = 16.0;
        disk_rreq = 0.0; disk_rblocks = 0.0; disk_wreq = 0.0;
        disk_wblocks = 0.0;
        net_rbytes = 0.0; net_rpackets = 0.0; net_tbytes = 0.0;
        net_tpackets = 0.0;
      }
  in
  List.map
    (fun missed_intervals ->
      let rng = Smart_util.Prng.create ~seed:(1000 + missed_intervals) in
      let db = Smart_core.Status_db.create () in
      let sysmon =
        Smart_core.Sysmon.create
          ~config:
            {
              Smart_core.Sysmon.default_config with
              probe_interval = interval;
              missed_intervals;
            }
          db
      in
      let false_expiries = ref 0 in
      let was_present = ref false in
      let detection = ref infinity in
      let t = ref 0.0 in
      while !t < horizon do
        (* the probe reports (when alive and the datagram survives) *)
        if !t < fail_at && Smart_util.Prng.float rng ~bound:1.0 >= loss then
          ignore (Smart_core.Sysmon.handle_report sysmon ~now:!t report);
        (* the monitor sweeps once per interval *)
        ignore (Smart_core.Sysmon.sweep sysmon ~now:!t);
        let present = Smart_core.Status_db.find_sys db ~host:"srv" <> None in
        if !t < fail_at then begin
          if !was_present && not present then incr false_expiries
        end
        else if (not present) && !detection = infinity then
          detection := !t -. fail_at;
        was_present := present;
        t := !t +. interval
      done;
      {
        missed_intervals;
        detection_s = !detection;
        false_expiries = !false_expiries;
      })
    [ 1; 2; 3; 5; 10 ]

let print_staleness rows =
  let tab =
    Smart_util.Tabular.create
      ~title:
        "ablation 4: staleness threshold under 15% report loss (2 s interval)"
      ~header:
        [ "missed intervals"; "failure detection (s)"; "false expiries / 10 min" ]
  in
  List.iter
    (fun r ->
      Smart_util.Tabular.add_row tab
        [
          string_of_int r.missed_intervals;
          Fmt.str "%.1f" r.detection_s;
          string_of_int r.false_expiries;
        ])
    rows;
  Smart_util.Tabular.print tab
