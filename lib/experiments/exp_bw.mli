(** Bandwidth-measurement experiment (Table 3.3): packet-pair estimates
    per probe-size group, against pipechar/pathload reference points. *)

type group_row = {
  label : string;
  s1 : int;
  s2 : int;
  min_bw : float;  (** Mbps *)
  max_bw : float;
  avg_bw : float;
  paper_avg : float option;  (** Mbps, Table 3.3 *)
}

type report = {
  groups : group_row list;
  pipechar_bw : float option;  (** Mbps *)
  pipechar_reliability : float option;
  pathload_low : float;  (** Mbps *)
  pathload_high : float;
}

val run : ?trials:int -> unit -> report

val print : report -> unit
