(** The matrix-multiplication experiment (§5.2): smart vs. random worker
    selection under background SuperPI load. *)

type comparison = {
  title : string;
  matrix : string;
  requirement : string;
  workloads : string list;  (** hosts running SuperPI during the run *)
  random_servers : string list;
  smart_servers : string list;
  random_time : float;
  smart_time : float;
  paper_random : float;
  paper_smart : float;
}

(** Percent improvement of the smart run over the random one. *)
val improvement : comparison -> float

(** Fig 5.2: single-machine benchmark rows. *)
type benchmark_row = { host : string; cpu : string; seconds : float }

val benchmark : ?n:int -> unit -> benchmark_row list

val print_benchmark : benchmark_row list -> unit

(** One thesis scenario: pool, workloads, and the paper's timings. *)
type setup = {
  title : string;
  n : int;
  blk : int;
  wanted : int;
  requirement : string;
  pool : string list;
  workloads : string list;
  paper_random_servers : string list;
  paper_random : float;
  paper_smart : float;
}

val setups : setup list

val run_setup : setup -> comparison

val run_all : unit -> comparison list

val print_comparison : comparison -> unit
