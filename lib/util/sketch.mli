(** Deterministic mergeable quantile sketch (MRL/KLL-style compacting
    buffers).

    The P² histograms ({!Metrics.Histogram}) are per-process and cannot
    be combined, so a federated deployment cannot answer "what is the
    deployment-wide p99?".  This sketch can: it keeps a bounded number
    of retained observations organised in levels, where level [l] holds
    items that each stand for [2^l] original observations, and
    {!merge} is an exact commutative monoid over sketches.

    {2 Structure}

    Level 0 is a plain buffer of raw observations.  When a level fills
    past its capacity [k] it is {e compacted}: the buffer is sorted, a
    starting offset in [{0, 1}] is drawn from the sketch's injected
    PRNG, every other element of the even prefix is promoted to the
    next level (doubling its weight) and at most one leftover item
    stays behind.  Memory on the observe path is therefore bounded by
    [k * levels] with [levels <= log2 (n / k) + 1].

    {2 Merge is an exact monoid}

    [merge a b] is the levelwise sorted multiset union of the retained
    items — no compaction happens during a merge, and the PRNG states
    combine by XOR — so merge is {e exactly} associative and
    commutative, and a fresh sketch is an identity, under {!equal}
    (observable state; PRNG state excluded).  The price is that a merge
    is size-additive: a root merging [s] shards holds at most [s * k *
    levels] items.  Subsequent {!observe} calls re-compact through the
    normal cascade.

    {2 Error bound}

    Every compaction at level [l] perturbs the rank of any value by at
    most [2^l] (the standard compactor argument: in a sorted buffer at
    most one promoted pair straddles a given threshold).  The sketch
    accumulates these worst cases in {!err_weight}; merge adds them.
    {!quantile}[ t p] returns a retained {e observed} value whose true
    rank in the observed multiset lies within [err_weight t] of
    [ceil (p * n)] — the self-documented bound that the federation
    acceptance test pins.

    Determinism: the only stochastic choice (compaction offset) draws
    from the injected PRNG, so same-seed runs are byte-identical.  Wall
    clocks are never consulted. *)

type t

(** [create ?k ?rng ()] returns an empty sketch.  [k] is the per-level
    compaction capacity (default 256); it must be even and [>= 8].
    [rng] seeds the tie-breaking PRNG (default seed 0); pass a
    deterministically derived generator to keep runs reproducible.
    Raises [Invalid_argument] on a bad [k]. *)
val create : ?k:int -> ?rng:Prng.t -> unit -> t

(** Independent deep copy (including PRNG state). *)
val copy : t -> t

(** [observe t v] folds one observation in.  Amortised O(log k).
    Raises [Invalid_argument] if [v] is not finite. *)
val observe : t -> float -> unit

(** Exact commutative-monoid union: a fresh sketch holding the retained
    items of both inputs (levelwise, re-sorted), summed counts and
    error weights, exact min/max, and XOR-combined PRNG state.  Inputs
    are not mutated.  Raises [Invalid_argument] when both inputs are
    non-empty with different [k]; an empty side adopts the other's
    [k]. *)
val merge : t -> t -> t

(** Observable-state equality: [k], count, error weight, min/max and
    the per-level retained multisets (order-insensitive).  PRNG state
    is deliberately excluded so the monoid laws hold exactly. *)
val equal : t -> t -> bool

(** Total observed weight: the number of {!observe} calls folded in,
    across all merged inputs. *)
val count : t -> int

(** Exact running extremes; [Float.nan] while empty. *)
val min_value : t -> float

val max_value : t -> float

(** Worst-case rank perturbation accumulated by compactions (see the
    module doc); 0 until the first compaction. *)
val err_weight : t -> int

(** [err_weight t /. count t] — the documented relative rank-error
    bound; 0 while empty. *)
val rank_error_bound : t -> float

(** [quantile t p] for [p] in [[0, 1]]: a retained observed value whose
    true rank is within [err_weight t] of [ceil (p *. count t)]
    (nearest-rank semantics on the weighted retained items).
    [Float.nan] while empty; raises [Invalid_argument] outside
    [[0, 1]]. *)
val quantile : t -> float -> float

(** Estimated weighted rank of [v]: the summed weight of retained items
    [<= v].  Mostly for tests and diagnostics. *)
val rank : t -> float -> int

(** {2 Structural access (wire codecs, tests)} *)

(** Per-level capacity. *)
val k : t -> int

(** Retained items per level, level 0 first, trailing empty levels
    trimmed.  The arrays are copies, in storage order (level buffers
    are only guaranteed sorted after a merge). *)
val levels : t -> float array list

(** Current PRNG state, for exact wire round-trips. *)
val rng_state : t -> int64

(** Rebuild a sketch from its structural parts (the decode side of a
    wire codec).  Validates: [k] even and [>= 8], [err_weight >= 0], at
    most {!max_levels} levels, every retained value finite and inside
    [[min_value, max_value]] when non-empty.  The count is derived as
    the weighted sum of level sizes.  Returns [Error _] instead of
    raising so adversarial input is safe. *)
val of_parts :
  k:int ->
  err_weight:int ->
  min_value:float ->
  max_value:float ->
  rng_state:int64 ->
  float array list ->
  (t, string) result

(** Hard cap on the number of levels accepted by {!of_parts} (48 —
    unreachable by honest sketches, which need [2^48] observations). *)
val max_levels : int
