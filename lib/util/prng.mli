(** Deterministic splittable pseudo-random generator (splitmix64).

    Every stochastic element of the simulation (cross traffic, jitter,
    random server selection) draws from an explicitly threaded [t] so that
    experiment runs are reproducible bit-for-bit from their seed. *)

type t

(** [create ~seed] returns a fresh generator.  Equal seeds give equal
    streams. *)
val create : seed:int -> t

(** Independent copy: the copy and the original produce the same stream. *)
val copy : t -> t

(** Raw 64-bit internal state, for codecs and state-combining merges
    (e.g. {!Sketch.merge} XORs the two states). *)
val state : t -> int64

(** Generator resuming from a raw state previously read with {!state}. *)
val of_state : int64 -> t

(** [split t] returns a statistically independent child generator and
    advances [t]. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** Uniform float in [\[0, bound)]. *)
val float : t -> bound:float -> float

(** Uniform int in [\[0, bound)]; [bound] must be positive. *)
val int : t -> bound:int -> int

(** Fair coin. *)
val bool : t -> bool

(** Uniform float in [\[lo, hi)]. *)
val range : t -> lo:float -> hi:float -> float

(** Normal variate (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

(** Exponential variate with the given mean. *)
val exponential : t -> mean:float -> float

(** Uniformly chosen array element; the array must be non-empty. *)
val pick : t -> 'a array -> 'a

(** Fisher-Yates shuffle of a copy; the input is untouched. *)
val shuffle : t -> 'a array -> 'a array

(** [sample t ~k arr] draws [k] distinct elements uniformly. *)
val sample : t -> k:int -> 'a array -> 'a array
