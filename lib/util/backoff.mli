(** Truncated exponential retry backoff with deterministic jitter.

    One policy type shared by every retry loop in the system — client
    request retransmits, transmitter reconnects, realnet connect loops —
    so retry behaviour is tuned in one place.  Jitter draws from an
    injected {!Prng}, keeping same-seed runs byte-identical. *)

type policy = {
  base : float;        (** first delay, seconds *)
  multiplier : float;  (** growth factor per attempt, [>= 1] *)
  max_delay : float;   (** ceiling the delays saturate at *)
  jitter : float;      (** fraction of each delay randomised away, [0, 1) *)
}

(** 200 ms base, doubling, 5 s cap, 25% jitter. *)
val default : policy

(** Validating constructor; unspecified fields come from {!default}.
    Raises [Invalid_argument] on nonsensical parameters. *)
val policy :
  ?base:float ->
  ?multiplier:float ->
  ?max_delay:float ->
  ?jitter:float ->
  unit ->
  policy

type t

(** A fresh backoff state at attempt 0.  Without [rng] the schedule is
    the fixed nominal one (no jitter). *)
val create : ?rng:Prng.t -> policy -> t

(** Delays handed out so far. *)
val attempt : t -> int

(** Back to attempt 0 (call after a success). *)
val reset : t -> unit

(** The undithered delay of a given 0-based attempt:
    [min max_delay (base * multiplier^attempt)]. *)
val nominal : policy -> attempt:int -> float

(** The next delay, advancing the attempt counter.  Jitter (if an [rng]
    was supplied) only shortens delays, so {!nominal} is the worst
    case. *)
val next : t -> float
