(* Small statistics toolkit used by the measurement modules and the
   experiment reports: summary moments, percentiles and least-squares
   fits (the bandwidth estimators are slope estimators). *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = Float.sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

(* Nearest-rank percentile on a sorted copy; [p] in [0,100]. *)
let percentile xs ~p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

let median xs = percentile xs ~p:50.0

type linear_fit = { slope : float; intercept : float; r2 : float }

let linear_fit ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let fx = mean xs and fy = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. fx and dy = ys.(i) -. fy in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: degenerate xs";
  let slope = !sxy /. !sxx in
  let intercept = fy -. (slope *. fx) in
  let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

(* Fit the two-segment model of Formula (3.6): one slope below the break,
   another above it.  We try every candidate breakpoint on a grid and keep
   the one minimising total squared error.  Returns the break x and the two
   fits.  Used to detect the MTU knee in RTT curves. *)
type knee_fit = { break_x : float; below : linear_fit; above : linear_fit }

let knee_fit ~xs ~ys =
  let n = Array.length xs in
  if n < 8 then invalid_arg "Stats.knee_fit: need at least 8 points";
  let sq_error fit sub_xs sub_ys =
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        let e = sub_ys.(i) -. ((fit.slope *. x) +. fit.intercept) in
        acc := !acc +. (e *. e))
      sub_xs;
    !acc
  in
  let best = ref None in
  (* keep >=4 points in each segment *)
  for k = 3 to n - 5 do
    let xs_lo = Array.sub xs 0 (k + 1) and ys_lo = Array.sub ys 0 (k + 1) in
    let xs_hi = Array.sub xs (k + 1) (n - k - 1)
    and ys_hi = Array.sub ys (k + 1) (n - k - 1) in
    let f_lo = linear_fit ~xs:xs_lo ~ys:ys_lo in
    let f_hi = linear_fit ~xs:xs_hi ~ys:ys_hi in
    let err = sq_error f_lo xs_lo ys_lo +. sq_error f_hi xs_hi ys_hi in
    match !best with
    | Some (best_err, _) when best_err <= err -> ()
    | _ -> best := Some (err, { break_x = xs.(k); below = f_lo; above = f_hi })
  done;
  match !best with
  | Some (_, fit) -> fit
  | None -> invalid_arg "Stats.knee_fit: no candidate breakpoint"

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let summarize xs =
  let lo, hi = min_max xs in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = lo;
    max = hi;
    p50 = median xs;
    p95 = percentile xs ~p:95.0;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max
