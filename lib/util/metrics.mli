(** Self-instrumentation registry for the monitoring system itself:
    named counters, gauges and bounded histograms with incremental
    quantile estimates (p50/p95/p99, the P² algorithm — O(1) memory per
    tracked quantile).

    Every sans-IO component registers its instruments against a registry
    handed in at creation time, so the same instrumentation is read
    deterministically by the simulation driver and scraped over UDP by
    the realnet daemons (see OBSERVABILITY.md for the full namespace).

    Registration is get-or-create: asking twice for the same name
    returns the same instrument, which is how components deployed many
    times against one registry (e.g. every probe of a simulated
    cluster) aggregate into a single metric. *)

type t

(** A fresh, empty registry. *)
val create : unit -> t

(** Monotonically increasing event count. *)
module Counter : sig
  type t

  (** [incr ?by c] adds [by] (default 1, must be [>= 0]) to the count. *)
  val incr : ?by:int -> t -> unit

  val value : t -> int
end

(** A value that can move both ways (queue depths, table sizes). *)
module Gauge : sig
  type t

  val set : t -> float -> unit

  val add : t -> float -> unit

  val value : t -> float
end

(** Bounded-memory distribution tracker: count, sum, min, max, and three
    P² quantile estimators (p50, p95, p99).  With five or fewer
    observations the quantiles are exact (linear interpolation on the
    sorted sample, matching {!Stats.percentile}); beyond that the P²
    markers take over. *)
module Histogram : sig
  type t

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float

  (** Estimate for [p] in {0.5, 0.95, 0.99}; [Float.nan] while empty.
      Raises [Invalid_argument] for any other [p]. *)
  val quantile : t -> float -> float

  (** The mergeable backing, when the histogram was registered with
      [~mergeable:true].  Non-finite observations are skipped by the
      sketch (the P² view still folds them in). *)
  val sketch : t -> Sketch.t option
end

(** Everything a histogram exposes, in one read. *)
type histogram_summary = {
  count : int;
  sum : float;
  min : float;  (** [Float.nan] while empty *)
  max : float;  (** [Float.nan] while empty *)
  p50 : float;
  p95 : float;
  p99 : float;
}

val histogram_summary : Histogram.t -> histogram_summary

(** One metric's current reading. *)
type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

type sample = { name : string; help : string; value : value }

(** [counter t name] returns the counter registered under [name],
    creating it on first use.  [help] is kept from the first
    registration.  Raises [Invalid_argument] if [name] is already
    registered as a different kind. *)
val counter : t -> ?help:string -> string -> Counter.t

val gauge : t -> ?help:string -> string -> Gauge.t

(** [histogram t ?mergeable name]: with [~mergeable:true] the histogram
    also feeds a {!Sketch} (deterministically seeded from [name] via
    CRC-32), the backing a federated root can {!Sketch.merge} across
    processes; the P² markers remain the cheap local view.  If any
    registration of [name] asks for a mergeable backing the histogram
    keeps one from that point on. *)
val histogram : t -> ?help:string -> ?mergeable:bool -> string -> Histogram.t

(** Every histogram's mergeable backing, sorted by metric name — what a
    shard ships up its uplink (see {!Sketch}). *)
val sketches : t -> (string * Sketch.t) list

(** Current readings of every registered metric, sorted by name — the
    stable view tests and experiments assert on. *)
val snapshot : t -> sample list

(** Reading of one metric by name. *)
val find : t -> string -> value option

(** Convenience for tests: the counter's value, or 0 when [name] is
    absent or not a counter. *)
val counter_value : t -> string -> int

(** Gauge reading, or 0 when absent or not a gauge. *)
val gauge_value : t -> string -> float

(** One line per metric:
    [<name> counter <n>],
    [<name> gauge <v>], or
    [<name> histogram count=.. sum=.. min=.. p50=.. p95=.. p99=.. max=..]. *)
val to_text : t -> string

(** The same readings as a JSON object keyed by metric name; histogram
    quantiles of an empty histogram render as [null]. *)
val to_json : t -> string

(** The string escaping {!to_json} (and {!Tracelog.to_chrome_json})
    applies to names — an alias of the shared {!Json.escape}, kept here
    for API stability. *)
val json_escape : string -> string
