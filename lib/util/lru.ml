(* Bounded LRU map with string keys: a hashtable over an intrusive
   doubly-linked recency list.  All operations are O(1); the wizard uses
   it to cache compiled requirement programs. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward most-recent *)
  mutable next : 'a node option;  (* toward least-recent *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity;
    table = Hashtbl.create (max 8 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

let mem t key = Hashtbl.mem t.table key

let add t key value =
  if t.capacity = 0 then ()
  else
    match Hashtbl.find_opt t.table key with
    | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node
    | None ->
      if Hashtbl.length t.table >= t.capacity then (
        match t.tail with
        | Some lru ->
          unlink t lru;
          Hashtbl.remove t.table lru.key
        | None -> ());
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node

let length t = Hashtbl.length t.table

let capacity t = t.capacity

let hits t = t.hits

let misses t = t.misses

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
