(* Self-instrumentation registry: counters, gauges and bounded
   histograms with P² incremental quantile estimates (Jain & Chlamtac,
   CACM 1985) — O(1) memory per tracked quantile, no sample buffer, so
   a component can observe every request forever.

   The registry is deliberately dependency-free and driver-agnostic:
   the simulation driver reads it synchronously, the realnet daemons
   dump it into a UDP reply, the bench writes it to JSON. *)

(* ------------------------------------------------------------------ *)
(* P² single-quantile estimator                                         *)
(* ------------------------------------------------------------------ *)

(* Five markers track the running min, the p/2, p and (1+p)/2 quantile
   estimates and the running max; marker heights are nudged toward
   their desired positions with a piecewise-parabolic interpolation.
   The caller seeds it with the first five observations sorted. *)
module P2 = struct
  type t = {
    q : float array;        (* marker heights *)
    pos : int array;        (* actual marker positions, 1-based *)
    desired : float array;  (* desired marker positions *)
    inc : float array;      (* desired-position increments *)
  }

  let create p =
    {
      q = Array.make 5 0.0;
      pos = [| 1; 2; 3; 4; 5 |];
      desired = [| 1.0; 1.0 +. (2.0 *. p); 1.0 +. (4.0 *. p);
                   3.0 +. (2.0 *. p); 5.0 |];
      inc = [| 0.0; p /. 2.0; p; (1.0 +. p) /. 2.0; 1.0 |];
    }

  let init t sorted5 = Array.blit sorted5 0 t.q 0 5

  let parabolic t i s =
    let q = t.q and pos = t.pos in
    let fp i = float_of_int pos.(i) in
    q.(i)
    +. s /. (fp (i + 1) -. fp (i - 1))
       *. (((fp i -. fp (i - 1) +. s) *. (q.(i + 1) -. q.(i))
            /. (fp (i + 1) -. fp i))
           +. ((fp (i + 1) -. fp i -. s) *. (q.(i) -. q.(i - 1))
               /. (fp i -. fp (i - 1))))

  let linear t i s =
    let q = t.q and pos = t.pos in
    q.(i) +. (float_of_int s *. (q.(i + s) -. q.(i))
              /. float_of_int (pos.(i + s) - pos.(i)))

  (* One observation past the first five. *)
  let observe t x =
    let q = t.q and pos = t.pos in
    let cell =
      if x < q.(0) then begin
        q.(0) <- x;
        0
      end
      else if x >= q.(4) then begin
        q.(4) <- x;
        3
      end
      else begin
        let rec find i = if x < q.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = cell + 1 to 4 do
      pos.(i) <- pos.(i) + 1
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.inc.(i)
    done;
    for i = 1 to 3 do
      let d = t.desired.(i) -. float_of_int pos.(i) in
      if
        (d >= 1.0 && pos.(i + 1) - pos.(i) > 1)
        || (d <= -1.0 && pos.(i - 1) - pos.(i) < -1)
      then begin
        let s = if d >= 0.0 then 1 else -1 in
        let candidate = parabolic t i (float_of_int s) in
        if q.(i - 1) < candidate && candidate < q.(i + 1) then
          q.(i) <- candidate
        else q.(i) <- linear t i s;
        pos.(i) <- pos.(i) + s
      end
    done

  let estimate t = t.q.(2)
end

(* ------------------------------------------------------------------ *)
(* Instruments                                                          *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { mutable count : int }

  let make () = { count = 0 }

  let incr ?(by = 1) t =
    if by < 0 then invalid_arg "Metrics.Counter.incr: negative increment";
    t.count <- t.count + by

  let value t = t.count
end

module Gauge = struct
  type t = { mutable v : float }

  let make () = { v = 0.0 }

  let set t v = t.v <- v

  let add t dv = t.v <- t.v +. dv

  let value t = t.v
end

(* Linear interpolation on the sorted sample, matching
   [Stats.percentile] so the "exact while small" regime agrees with the
   offline toolkit. *)
let percentile_of_sorted sorted ~p =
  let n = Array.length sorted in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

module Histogram = struct
  type t = {
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
    first : float array;  (* the first five observations, unsorted *)
    q50 : P2.t;
    q95 : P2.t;
    q99 : P2.t;
    mutable sketch : Sketch.t option;
        (* mergeable backing for federated aggregation; the P² markers
           above stay the cheap local view *)
  }

  let make ?sketch () =
    {
      n = 0;
      sum = 0.0;
      minv = Float.nan;
      maxv = Float.nan;
      first = Array.make 5 0.0;
      q50 = P2.create 0.5;
      q95 = P2.create 0.95;
      q99 = P2.create 0.99;
      sketch;
    }

  let sketch t = t.sketch

  let observe t x =
    if t.n < 5 then t.first.(t.n) <- x;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.minv <- (if t.n = 1 then x else Float.min t.minv x);
    t.maxv <- (if t.n = 1 then x else Float.max t.maxv x);
    (match t.sketch with
    | Some s when Float.is_finite x -> Sketch.observe s x
    | Some _ | None -> ());
    if t.n = 5 then begin
      let sorted = Array.copy t.first in
      Array.sort Float.compare sorted;
      P2.init t.q50 sorted;
      P2.init t.q95 sorted;
      P2.init t.q99 sorted
    end
    else if t.n > 5 then begin
      P2.observe t.q50 x;
      P2.observe t.q95 x;
      P2.observe t.q99 x
    end

  let count t = t.n

  let sum t = t.sum

  let quantile t p =
    let estimator =
      if p = 0.5 then t.q50
      else if p = 0.95 then t.q95
      else if p = 0.99 then t.q99
      else invalid_arg "Metrics.Histogram.quantile: tracked p are 0.5/0.95/0.99"
    in
    if t.n = 0 then Float.nan
    else if t.n <= 5 then begin
      let sorted = Array.sub t.first 0 t.n in
      Array.sort Float.compare sorted;
      percentile_of_sorted sorted ~p
    end
    else P2.estimate estimator
end

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let histogram_summary (h : Histogram.t) =
  {
    count = h.Histogram.n;
    sum = h.Histogram.sum;
    min = h.Histogram.minv;
    max = h.Histogram.maxv;
    p50 = Histogram.quantile h 0.5;
    p95 = Histogram.quantile h 0.95;
    p99 = Histogram.quantile h 0.99;
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

type entry = { help : string; metric : metric }

type t = { table : (string, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

let register t ?(help = "") name ~make ~extract ~wanted =
  match Hashtbl.find_opt t.table name with
  | Some { metric; _ } ->
    (match extract metric with
    | Some instrument -> instrument
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s, wanted %s"
           name (kind_name metric) wanted))
  | None ->
    let instrument, metric = make () in
    Hashtbl.replace t.table name { help; metric };
    instrument

let counter t ?help name =
  register t ?help name ~wanted:"counter"
    ~make:(fun () ->
      let c = Counter.make () in
      (c, Counter_m c))
    ~extract:(function Counter_m c -> Some c | Gauge_m _ | Histogram_m _ -> None)

let gauge t ?help name =
  register t ?help name ~wanted:"gauge"
    ~make:(fun () ->
      let g = Gauge.make () in
      (g, Gauge_m g))
    ~extract:(function Gauge_m g -> Some g | Counter_m _ | Histogram_m _ -> None)

(* The sketch PRNG seed derives from the metric name via CRC-32 so it is
   deterministic and registration-order independent (stdlib
   [Hashtbl.hash] is banned by the determinism lint). *)
let sketch_for name = Sketch.create ~rng:(Prng.create ~seed:(Crc32.string name)) ()

let histogram t ?help ?(mergeable = false) name =
  let h =
    register t ?help name ~wanted:"histogram"
      ~make:(fun () ->
        let sketch = if mergeable then Some (sketch_for name) else None in
        let h = Histogram.make ?sketch () in
        (h, Histogram_m h))
      ~extract:(function
        | Histogram_m h -> Some h
        | Counter_m _ | Gauge_m _ -> None)
  in
  (* get-or-create upgrade: if any registration asks for a mergeable
     backing the histogram keeps one from that point on, so the outcome
     does not depend on which component registered first *)
  (match Histogram.sketch h with
  | None when mergeable -> h.Histogram.sketch <- Some (sketch_for name)
  | Some _ | None -> ());
  h

let sketches t =
  Hashtbl.fold
    (fun name { metric; _ } acc ->
      match metric with
      | Histogram_m h ->
        (match Histogram.sketch h with
        | Some s -> (name, s) :: acc
        | None -> acc)
      | Counter_m _ | Gauge_m _ -> acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

type sample = { name : string; help : string; value : value }

let read = function
  | Counter_m c -> Counter (Counter.value c)
  | Gauge_m g -> Gauge (Gauge.value g)
  | Histogram_m h -> Histogram (histogram_summary h)

let snapshot t =
  Hashtbl.fold
    (fun name { help; metric } acc -> { name; help; value = read metric } :: acc)
    t.table []
  |> List.sort (fun a b -> String.compare a.name b.name)

let find t name =
  Option.map (fun { metric; _ } -> read metric) (Hashtbl.find_opt t.table name)

let counter_value t name =
  match find t name with Some (Counter n) -> n | Some _ | None -> 0

let gauge_value t name =
  match find t name with Some (Gauge v) -> v | Some _ | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let to_text t =
  let buf = Buffer.create 512 in
  List.iter
    (fun { name; value; _ } ->
      (match value with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "%s counter %d" name n)
      | Gauge v -> Buffer.add_string buf (Printf.sprintf "%s gauge %.6g" name v)
      | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf
             "%s histogram count=%d sum=%.6g min=%.6g p50=%.6g p95=%.6g \
              p99=%.6g max=%.6g"
             name h.count h.sum h.min h.p50 h.p95 h.p99 h.max));
      Buffer.add_char buf '\n')
    (snapshot t);
  Buffer.contents buf

(* Both re-exported from the shared {!Json} helper so every JSON
   emitter in the tree escapes identically. *)
let json_escape = Json.escape

let json_float = Json.number

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i { name; value; _ } ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n  \"%s\": " (json_escape name));
      (match value with
      | Counter n ->
        Buffer.add_string buf
          (Printf.sprintf "{\"type\": \"counter\", \"value\": %d}" n)
      | Gauge v ->
        Buffer.add_string buf
          (Printf.sprintf "{\"type\": \"gauge\", \"value\": %s}" (json_float v))
      | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"type\": \"histogram\", \"count\": %d, \"sum\": %s, \"min\": \
              %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \"max\": %s}"
             h.count (json_float h.sum) (json_float h.min) (json_float h.p50)
             (json_float h.p95) (json_float h.p99) (json_float h.max))))
    (snapshot t);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
