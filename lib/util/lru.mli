(** Bounded least-recently-used map with string keys.  O(1) find/add;
    inserting into a full cache evicts the least recently used entry.
    A zero-capacity cache accepts nothing (every [find] misses), which
    callers use to disable caching without a separate code path. *)

type 'a t

val create : capacity:int -> 'a t

(** Lookup; a hit promotes the entry to most-recently-used. *)
val find : 'a t -> string -> 'a option

(** Membership test without promoting or counting. *)
val mem : 'a t -> string -> bool

(** Insert or replace; either way the entry becomes most-recently-used. *)
val add : 'a t -> string -> 'a -> unit

val length : 'a t -> int

val capacity : 'a t -> int

(** Lifetime [find] hit / miss counters. *)
val hits : 'a t -> int

val misses : 'a t -> int

val clear : 'a t -> unit
