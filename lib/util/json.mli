(** The one JSON string/number renderer every hand-rolled JSON emitter
    in the tree shares ({!Metrics.to_json}, {!Tracelog.to_chrome_json},
    smartlint's diagnostic reports, the bench writers).  There used to
    be three copies with subtly different escape tables; this is the
    merged one. *)

(** JSON string escaping: double quote and backslash are
    backslash-escaped; newline, tab and carriage return use their short
    escapes ([\n], [\t], [\r]); every other byte below 0x20 becomes a
    [\uNNNN] escape; all remaining bytes — including non-ASCII — pass
    through untouched (the emitters treat strings as raw bytes). *)
val escape : string -> string

(** A float as a JSON number with [%.9g] precision; non-finite values
    (empty-histogram min/quantiles, 0/0 ratios) render as [null], which
    JSON can represent and NaN/inf literals cannot. *)
val number : float -> string
