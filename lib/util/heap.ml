(* Array-backed binary min-heap.  The event queue of the simulator and
   the wizard's selection scratch sit on this, so [push]/[pop] are the
   hot path: the three fields live in parallel arrays (the key column a
   flat float array, so keys stay unboxed) and [push] allocates nothing
   once the arrays have grown to working size. *)

type 'a t = {
  mutable keys : float array;
  mutable stamps : int array;  (* monotonic insertion order, breaks ties *)
  mutable vals : 'a array;
  mutable size : int;
  mutable stamp : int;
}

let create () = { keys = [||]; stamps = [||]; vals = [||]; size = 0; stamp = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* [seed] fills the value slots of a fresh allocation (['a] has no
   default); only live slots are ever read back. *)
let ensure_capacity t seed =
  let cap = Array.length t.keys in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let keys = Array.make ncap 0.0 in
    let stamps = Array.make ncap 0 in
    let vals = Array.make ncap seed in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.stamps 0 stamps 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.stamps <- stamps;
    t.vals <- vals
  end

(* Sifts move a hole instead of swapping — one write per level across
   the three arrays, not six.  The ordering is the tuple heap's:
   smaller key first, equal keys in insertion (stamp) order.  A freshly
   pushed element carries the largest stamp yet, so on the way up only
   [key] can decide. *)
let push t ~key v =
  ensure_capacity t v;
  let stamp = t.stamp in
  t.stamp <- stamp + 1;
  let keys = t.keys and stamps = t.stamps and vals = t.vals in
  let i = ref t.size in
  t.size <- t.size + 1;
  let sifting = ref true in
  while !sifting && !i > 0 do
    let parent = (!i - 1) / 2 in
    if keys.(parent) > key then begin
      keys.(!i) <- keys.(parent);
      stamps.(!i) <- stamps.(parent);
      vals.(!i) <- vals.(parent);
      i := parent
    end
    else sifting := false
  done;
  keys.(!i) <- key;
  stamps.(!i) <- stamp;
  vals.(!i) <- v

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.vals.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and v = t.vals.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      (* re-insert the last element down a hole from the root *)
      let keys = t.keys and stamps = t.stamps and vals = t.vals in
      let mk = keys.(n) and ms = stamps.(n) and mv = vals.(n) in
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 in
        if l >= n then sifting := false
        else begin
          let r = l + 1 in
          let c =
            if
              r < n
              && (keys.(r) < keys.(l)
                 || (keys.(r) = keys.(l) && stamps.(r) < stamps.(l)))
            then r
            else l
          in
          if keys.(c) < mk || (keys.(c) = mk && stamps.(c) < ms) then begin
            keys.(!i) <- keys.(c);
            stamps.(!i) <- stamps.(c);
            vals.(!i) <- vals.(c);
            i := c
          end
          else sifting := false
        end
      done;
      keys.(!i) <- mk;
      stamps.(!i) <- ms;
      vals.(!i) <- mv
    end;
    Some (key, v)
  end

let clear t = t.size <- 0

let to_sorted_list t =
  let copy =
    {
      keys = Array.copy t.keys;
      stamps = Array.copy t.stamps;
      vals = Array.copy t.vals;
      size = t.size;
      stamp = t.stamp;
    }
  in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some (key, v) -> drain ((key, v) :: acc)
  in
  drain []
