(* Array-backed binary min-heap.  The event queue of the simulator sits on
   this, so [push]/[pop] are the hot path; we keep the representation flat
   and grow geometrically. *)

type 'a t = {
  mutable data : (float * int * 'a) array;  (* (key, tiebreak, value) *)
  mutable size : int;
  mutable stamp : int;  (* monotonically increasing insertion counter *)
}

let create () = { data = [||]; size = 0; stamp = 0 }

let length t = t.size

let is_empty t = t.size = 0

let lt ((k1 : float), (s1 : int), _) ((k2 : float), (s2 : int), _) =
  k1 < k2 || (k1 = k2 && s1 < s2)

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let fresh = Array.make ncap t.data.(0) in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~key v =
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 (key, t.stamp, v);
  ensure_capacity t;
  t.data.(t.size) <- (key, t.stamp, v);
  t.stamp <- t.stamp + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let key, _, v = t.data.(0) in
    Some (key, v)

let pop t =
  if t.size = 0 then None
  else begin
    let key, _, v = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    if t.size > 0 then sift_down t 0;
    Some (key, v)
  end

let clear t = t.size <- 0

let to_sorted_list t =
  let copy = { data = Array.copy t.data; size = t.size; stamp = t.stamp } in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some (key, v) -> drain ((key, v) :: acc)
  in
  drain []
