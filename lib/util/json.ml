(* Shared JSON string escaping and float rendering.  Kept dependency-
   free (Buffer + Printf only) so every layer — metrics, tracelog,
   smartlint, bench — can use it without dragging anything else in. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null"
