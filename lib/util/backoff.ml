(* Shared retry-delay policy: truncated exponential backoff with
   deterministic jitter.

   Every retry loop of the system (client request retransmit, transmitter
   reconnect, realnet connect loops) draws its delays from one of these,
   so retry behaviour is tuned in one place and stays reproducible: the
   jitter source is an injected {!Prng}, never wall-clock entropy. *)

type policy = {
  base : float;        (* first delay, seconds *)
  multiplier : float;  (* growth factor per attempt *)
  max_delay : float;   (* ceiling the delays saturate at *)
  jitter : float;      (* fraction of the delay drawn uniformly at random *)
}

let default =
  { base = 0.2; multiplier = 2.0; max_delay = 5.0; jitter = 0.25 }

let policy ?(base = default.base) ?(multiplier = default.multiplier)
    ?(max_delay = default.max_delay) ?(jitter = default.jitter) () =
  if base <= 0.0 then invalid_arg "Backoff.policy: base must be positive";
  if multiplier < 1.0 then
    invalid_arg "Backoff.policy: multiplier must be >= 1";
  if max_delay < base then invalid_arg "Backoff.policy: max_delay < base";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Backoff.policy: jitter must be in [0, 1)";
  { base; multiplier; max_delay; jitter }

type t = {
  p : policy;
  rng : Prng.t option;  (* no rng -> no jitter: fully fixed schedule *)
  mutable attempt : int;
}

let create ?rng p = { p; rng; attempt = 0 }

let attempt t = t.attempt

let reset t = t.attempt <- 0

(* The undithered delay of attempt [n] (0-based). *)
let nominal p ~attempt =
  let d = p.base *. (p.multiplier ** float_of_int attempt) in
  Float.min p.max_delay d

let next t =
  let d = nominal t.p ~attempt:t.attempt in
  t.attempt <- t.attempt + 1;
  match t.rng with
  | None -> d
  | Some rng when t.p.jitter > 0.0 ->
    (* spread the delay over [(1-jitter) * d, d]: jitter only ever pulls
       retries earlier, so the nominal schedule is also the worst case *)
    d -. Prng.float rng ~bound:(t.p.jitter *. d)
  | Some _ -> d
