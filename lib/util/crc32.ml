(* CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

   Guards the transmitter->receiver frames against corruption in transit;
   kept dependency-free so both the sans-IO components and the realnet
   daemons share the same implementation. *)

let polynomial = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := polynomial lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)

let substring s ~pos ~len = update 0 s ~pos ~len
