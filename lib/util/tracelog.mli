(** Substrate-neutral span/event recorder — the trace plane.

    Where {!Metrics} answers "how much / how fast on aggregate", a
    tracelog answers "what did {e this} request touch, in what order,
    and where did the time go": components record named spans with
    parent links, and a trace context carried through the message plane
    ties the spans of one client request (or one status report) into a
    single tree across components and machines.

    The recorder is a bounded ring, like {!Smart_sim.Trace}: old spans
    fall off, recording never allocates unboundedly, and a realnet
    daemon can keep one as a flight recorder answered over UDP.  The
    clock is injected (the engine's virtual clock in simulation,
    [Unix.gettimeofday] in the realnet daemons) so recording stays
    deterministic under the determinism lint — this module never reads
    real time itself.

    The ring's span records are preallocated at {!create} and reused in
    place, so recording on an enabled recorder allocates nothing.  The
    price is that a span handle is the ring slot itself: if [capacity]
    further spans open between a {!start} and its {!finish}, the stamp
    lands on whichever span now occupies the slot.  Close spans promptly
    relative to the ring depth (all in-tree drivers do).

    Recording through a disabled recorder costs one branch and no
    allocation; {!disabled} is the shared always-off recorder components
    default to. *)

type t

(** The propagated half of a span: enough to parent a remote child.
    [trace_id] groups every span of one causal tree; [span_id] names the
    parent span within it. *)
type ctx = { trace_id : int; span_id : int }

(** The empty context (0, 0): "no caller".  Spans started under [root]
    open a fresh trace. *)
val root : ctx

val is_root : ctx -> bool

(** Handle of an open span; pass it back to {!finish}. *)
type span

(** The inert span handle returned by a disabled recorder; finishing it
    is a no-op and its context is {!root}. *)
val none : span

(** [create ()] builds a recorder retaining the most recent [capacity]
    entries (default 4096).  [clock] supplies span timestamps (default: a
    constant 0 — inject the engine's virtual clock or the daemon's wall
    clock).  [enabled] defaults to [true]. *)
val create : ?capacity:int -> ?clock:(unit -> float) -> ?enabled:bool -> unit -> t

(** The shared always-disabled recorder — the default [?trace] argument
    of every component.  Do not enable it. *)
val disabled : t

val set_enabled : t -> bool -> unit

val enabled : t -> bool

(** Replace the injected clock (drivers that learn their clock after
    construction). *)
val set_clock : t -> (unit -> float) -> unit

(** [start t ?parent ?at name] opens a span.  Under a [parent] the span
    joins the parent's trace; without one (or under {!root}) it opens a
    fresh trace whose id is the span's own id.  [at] supplies the start
    timestamp, defaulting to one clock read — callers recording several
    spans at one instant share a single read.  Returns {!none} when the
    recorder is disabled. *)
val start : t -> ?parent:ctx -> ?at:float -> string -> span

(** Close the span, stamping its duration ([at] defaulting to a clock
    read, as in {!start}).  No-op on {!none} and on spans of a recorder
    that was disabled meanwhile. *)
val finish : t -> ?at:float -> span -> unit

(** Record a zero-duration point event. *)
val instant : t -> ?parent:ctx -> ?at:float -> string -> unit

(** The span's propagable context ({!root} for {!none}). *)
val ctx_of : span -> ctx

type kind = Span | Instant

type entry = {
  name : string;
  kind : kind;
  trace_id : int;
  span_id : int;
  parent_id : int;  (** 0 when the span opened its own trace *)
  start_time : float;
  duration : float;  (** [Float.nan] while the span is still open *)
}

(** Retained entries, oldest first. *)
val entries : t -> entry list

(** Entries ever recorded, including those the ring has dropped. *)
val total_recorded : t -> int

val dropped : t -> int

val clear : t -> unit

(** One line per entry:
    [<start> <kind> trace=<t> span=<s> parent=<p> dur=<d> <name>]. *)
val to_text : t -> string

(** Chrome trace-event JSON (load in Perfetto / chrome://tracing).
    Spans become ["ph":"X"] complete events (µs timestamps, one pid per
    component — the dot-prefix of the span name — and tid = trace id);
    open spans render with duration 0.  [instants] lets a driver merge
    foreign [(time, category, message)] point events (e.g.
    {!Smart_sim.Trace} packet events) into the same timeline as
    ["ph":"i"] instants.  Output is deterministic: same recorded
    entries, same bytes. *)
val to_chrome_json : ?instants:(float * string * string) list -> t -> string

(** Indented rendering of one trace's span tree (children ordered by
    start time, then id) — the demo's stdout view. *)
val render_tree : t -> trace_id:int -> string
