(* Mergeable quantile sketch: equal-capacity compacting buffers in the
   MRL/KLL family.  Level l holds items of weight 2^l; observing
   appends to level 0 and full levels compact upward (sort, keep every
   other element of the even prefix at double weight, at most one
   leftover stays).  The compaction offset is the only random choice
   and draws from the injected PRNG.

   [merge] deliberately does NOT compact: it is the levelwise sorted
   multiset union with summed counters and XOR-combined PRNG states,
   which makes it an exact commutative monoid (see the .mli).  The
   error bound is self-reported: every compaction at level l adds 2^l
   to [err_weight], and any rank query is off by at most that total. *)

let max_levels = 48

type buf = { mutable data : float array; mutable len : int }

type t = {
  k : int;
  mutable levels : buf array;  (* allocated levels; tail may be empty *)
  mutable n : int;             (* total observed weight *)
  mutable minv : float;        (* nan while empty *)
  mutable maxv : float;
  mutable err_weight : int;
  rng : Prng.t;
}

let buf_make () = { data = [||]; len = 0 }

let buf_push b v =
  if b.len = Array.length b.data then begin
    let cap = if b.len = 0 then 8 else 2 * b.len in
    let data = Array.make cap 0.0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- v;
  b.len <- b.len + 1

let check_k k =
  if k < 8 || k mod 2 <> 0 then
    invalid_arg "Sketch.create: k must be even and >= 8"

let create ?(k = 256) ?rng () =
  check_k k;
  let rng = match rng with Some r -> Prng.copy r | None -> Prng.create ~seed:0 in
  { k; levels = [| buf_make () |]; n = 0; minv = Float.nan;
    maxv = Float.nan; err_weight = 0; rng }

let copy t =
  {
    t with
    rng = Prng.copy t.rng;
    levels =
      Array.map
        (fun b -> { data = Array.sub b.data 0 b.len; len = b.len })
        t.levels;
  }

let level t l =
  if l >= Array.length t.levels then begin
    if l >= max_levels then invalid_arg "Sketch: level overflow";
    let levels = Array.init (l + 1) (fun _ -> buf_make ()) in
    Array.blit t.levels 0 levels 0 (Array.length t.levels);
    t.levels <- levels
  end;
  t.levels.(l)

(* Compact level [l]: promote half of the even prefix, keep at most one
   leftover, cascade if the next level fills past k in turn. *)
let rec compact t l =
  let b = t.levels.(l) in
  let sorted = Array.sub b.data 0 b.len in
  Array.sort Float.compare sorted;
  let pairs = b.len land lnot 1 in
  let offset = if Prng.bool t.rng then 1 else 0 in
  let next = level t (l + 1) in
  let i = ref offset in
  while !i < pairs do
    buf_push next sorted.(!i);
    i := !i + 2
  done;
  if b.len land 1 = 1 then begin
    b.data.(0) <- sorted.(b.len - 1);
    b.len <- 1
  end
  else b.len <- 0;
  t.err_weight <- t.err_weight + (1 lsl l);
  if next.len >= t.k then compact t (l + 1)

let observe t v =
  if not (Float.is_finite v) then
    invalid_arg "Sketch.observe: non-finite value";
  buf_push t.levels.(0) v;
  t.n <- t.n + 1;
  t.minv <- (if t.n = 1 then v else Float.min t.minv v);
  t.maxv <- (if t.n = 1 then v else Float.max t.maxv v);
  if t.levels.(0).len >= t.k then compact t 0

let nlevels_live t =
  let l = ref (Array.length t.levels) in
  while !l > 0 && t.levels.(!l - 1).len = 0 do
    decr l
  done;
  !l

let merge a b =
  if a.n > 0 && b.n > 0 && a.k <> b.k then
    invalid_arg "Sketch.merge: incompatible k";
  let k = if a.n = 0 && b.n = 0 then max a.k b.k
          else if a.n = 0 then b.k else a.k in
  let depth = max 1 (max (nlevels_live a) (nlevels_live b)) in
  let levels =
    Array.init depth (fun l ->
        let take t =
          if l < Array.length t.levels then
            Array.sub t.levels.(l).data 0 t.levels.(l).len
          else [||]
        in
        let data = Array.append (take a) (take b) in
        Array.sort Float.compare data;
        { data; len = Array.length data })
  in
  let join f x y =
    if Float.is_nan x then y else if Float.is_nan y then x else f x y
  in
  {
    k;
    levels;
    n = a.n + b.n;
    minv = join Float.min a.minv b.minv;
    maxv = join Float.max a.maxv b.maxv;
    err_weight = a.err_weight + b.err_weight;
    rng = Prng.of_state (Int64.logxor (Prng.state a.rng) (Prng.state b.rng));
  }

let sorted_level t l =
  let b = t.levels.(l) in
  let a = Array.sub b.data 0 b.len in
  Array.sort Float.compare a;
  a

let equal a b =
  let fl_eq x y = (Float.is_nan x && Float.is_nan y) || Float.equal x y in
  a.k = b.k && a.n = b.n
  && a.err_weight = b.err_weight
  && fl_eq a.minv b.minv && fl_eq a.maxv b.maxv
  && nlevels_live a = nlevels_live b
  &&
  let rec levels_eq l =
    if l >= nlevels_live a then true
    else
      let xa = sorted_level a l and xb = sorted_level b l in
      Array.length xa = Array.length xb
      && Array.for_all2 Float.equal xa xb
      && levels_eq (l + 1)
  in
  levels_eq 0

let count t = t.n

let min_value t = t.minv

let max_value t = t.maxv

let err_weight t = t.err_weight

let rank_error_bound t =
  if t.n = 0 then 0.0 else float_of_int t.err_weight /. float_of_int t.n

(* All retained items as a value-sorted (value, weight) sequence. *)
let weighted_items t =
  let total = Array.fold_left (fun a b -> a + b.len) 0 t.levels in
  let vals = Array.make (max 1 total) 0.0 in
  let weights = Array.make (max 1 total) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun l b ->
      for i = 0 to b.len - 1 do
        vals.(!pos) <- b.data.(i);
        weights.(!pos) <- 1 lsl l;
        incr pos
      done)
    t.levels;
  let idx = Array.init total (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Float.compare vals.(i) vals.(j) in
      if c <> 0 then c else Int.compare weights.(i) weights.(j))
    idx;
  (total, Array.map (fun i -> vals.(i)) idx,
   Array.map (fun i -> weights.(i)) idx)

let quantile t p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Sketch.quantile: p outside [0, 1]";
  if t.n = 0 then Float.nan
  else begin
    let total, vals, weights = weighted_items t in
    let target =
      min t.n (max 1 (int_of_float (Float.ceil (p *. float_of_int t.n))))
    in
    let rec walk i cum =
      if i >= total - 1 then vals.(total - 1)
      else
        let cum = cum + weights.(i) in
        if cum >= target then vals.(i) else walk (i + 1) cum
    in
    walk 0 0
  end

let rank t v =
  let r = ref 0 in
  Array.iteri
    (fun l b ->
      for i = 0 to b.len - 1 do
        if b.data.(i) <= v then r := !r + (1 lsl l)
      done)
    t.levels;
  !r

let k t = t.k

let levels t =
  let live = nlevels_live t in
  List.init live (fun l -> Array.sub t.levels.(l).data 0 t.levels.(l).len)

let rng_state t = Prng.state t.rng

let of_parts ~k ~err_weight ~min_value ~max_value ~rng_state parts =
  let nlevels = List.length parts in
  if k < 8 || k mod 2 <> 0 then Error "sketch: bad k"
  else if err_weight < 0 then Error "sketch: negative err_weight"
  else if nlevels > max_levels then Error "sketch: too many levels"
  else begin
    let n = ref 0 in
    let bad = ref None in
    List.iteri
      (fun l items ->
        n := !n + (Array.length items lsl l);
        Array.iter
          (fun v ->
            if not (Float.is_finite v) then
              bad := Some "sketch: non-finite retained value")
          items)
      parts;
    match !bad with
    | Some e -> Error e
    | None ->
      if !n = 0 then
        if err_weight <> 0 then Error "sketch: empty with nonzero err_weight"
        else
          Ok
            {
              k;
              levels = [| buf_make () |];
              n = 0;
              minv = Float.nan;
              maxv = Float.nan;
              err_weight = 0;
              rng = Prng.of_state rng_state;
            }
      else if not (Float.is_finite min_value && Float.is_finite max_value)
      then Error "sketch: non-finite extremes"
      else if min_value > max_value then Error "sketch: min above max"
      else if
        List.exists
          (fun items ->
            Array.exists (fun v -> v < min_value || v > max_value) items)
          parts
      then Error "sketch: retained value outside [min, max]"
      else
        let levels =
          Array.of_list
            (List.map
               (fun items ->
                 { data = Array.copy items; len = Array.length items })
               parts)
        in
        Ok
          {
            k;
            levels;
            n = !n;
            minv = min_value;
            maxv = max_value;
            err_weight;
            rng = Prng.of_state rng_state;
          }
  end
