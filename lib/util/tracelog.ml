(* Span/event recorder behind the trace plane: a bounded ring of spans
   with parent links and an injected clock, exported as text or Chrome
   trace-event JSON.

   The ring's span records are preallocated at [create] and reused in
   place, so recording a span on an enabled recorder allocates nothing:
   [start] claims the next slot and overwrites its fields, [finish]
   stamps the duration through the handle (which *is* the slot).  A
   handle whose slot the ring has lapped (capacity spans opened between
   its [start] and [finish]) stamps whatever span now occupies the slot
   — a bounded inaccuracy accepted for the zero-allocation hot path,
   and impossible in the drivers, which close spans promptly against a
   4096-deep ring.  Ids come from one per-recorder counter, so a trace
   id is simply the id of the span that opened the trace. *)

type ctx = { trace_id : int; span_id : int }

let root = { trace_id = 0; span_id = 0 }

let is_root c = c.span_id = 0 && c.trace_id = 0

type kind = Span | Instant

(* One mutable record serves as both the span handle and the ring
   entry.  [sp_id = 0] marks the inert [none] handle and never-used
   ring slots. *)
type span = {
  mutable sp_name : string;
  mutable sp_kind : kind;
  mutable sp_trace : int;
  mutable sp_id : int;
  mutable sp_parent : int;
  mutable sp_start : float;
  mutable sp_dur : float;  (* nan while open *)
}

let fresh_slot () =
  {
    sp_name = "";
    sp_kind = Span;
    sp_trace = 0;
    sp_id = 0;
    sp_parent = 0;
    sp_start = 0.0;
    sp_dur = Float.nan;
  }

let none = fresh_slot ()

type t = {
  capacity : int;
  ring : span array;    (* preallocated records, reused in place *)
  mutable next : int;   (* next write position *)
  mutable count : int;  (* spans ever recorded *)
  mutable next_id : int;
  mutable clock : unit -> float;
  mutable on : bool;
}

let create ?(capacity = 4096) ?(clock = fun () -> 0.0) ?(enabled = true) () =
  if capacity <= 0 then invalid_arg "Tracelog.create: capacity must be positive";
  {
    capacity;
    ring = Array.init capacity (fun _ -> fresh_slot ());
    next = 0;
    count = 0;
    next_id = 1;
    clock;
    on = enabled;
  }

let disabled = create ~capacity:1 ~enabled:false ()

let set_enabled t enabled =
  if t == disabled then
    invalid_arg "Tracelog.set_enabled: the shared disabled recorder";
  t.on <- enabled

let enabled t = t.on

let set_clock t clock = t.clock <- clock

let open_span t ~parent ~kind ~dur ~at name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let span = t.ring.(t.next) in
  span.sp_name <- name;
  span.sp_kind <- kind;
  span.sp_trace <- (if parent.span_id = 0 then id else parent.trace_id);
  span.sp_id <- id;
  span.sp_parent <- parent.span_id;
  span.sp_start <- at;
  span.sp_dur <- dur;
  (* [next] is always in range, so wrap with a compare instead of the
     integer division a [mod] would cost on every record *)
  let n = t.next + 1 in
  t.next <- (if n = t.capacity then 0 else n);
  t.count <- t.count + 1;
  span

let start t ?(parent = root) ?at name =
  if not t.on then none
  else
    let at = match at with Some a -> a | None -> t.clock () in
    open_span t ~parent ~kind:Span ~dur:Float.nan ~at name

let finish t ?at span =
  if span.sp_id <> 0 && t.on then
    let at = match at with Some a -> a | None -> t.clock () in
    span.sp_dur <- at -. span.sp_start

let instant t ?(parent = root) ?at name =
  if t.on then
    let at = match at with Some a -> a | None -> t.clock () in
    ignore (open_span t ~parent ~kind:Instant ~dur:0.0 ~at name)

let ctx_of span =
  if span.sp_id = 0 then root
  else { trace_id = span.sp_trace; span_id = span.sp_id }

type entry = {
  name : string;
  kind : kind;
  trace_id : int;
  span_id : int;
  parent_id : int;
  start_time : float;
  duration : float;
}

let entry_of (s : span) =
  {
    name = s.sp_name;
    kind = s.sp_kind;
    trace_id = s.sp_trace;
    span_id = s.sp_id;
    parent_id = s.sp_parent;
    start_time = s.sp_start;
    duration = s.sp_dur;
  }

let total_recorded t = t.count

let dropped t = max 0 (t.count - t.capacity)

(* Oldest-first snapshot.  Slots are read defensively (never-written
   slots, [sp_id = 0], are skipped, not asserted away): a realnet flight
   recorder is written from daemon threads without a lock, and a torn
   ring is acceptable there where a crash is not. *)
let entries t =
  let stored = min t.count t.capacity in
  let start = (t.next - stored + t.capacity) mod t.capacity in
  List.filter_map
    (fun i ->
      let s = t.ring.((start + i) mod t.capacity) in
      if s.sp_id = 0 then None else Some (entry_of s))
    (List.init stored (fun i -> i))

let clear t =
  Array.iter (fun s -> s.sp_id <- 0) t.ring;
  t.next <- 0;
  t.count <- 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let kind_tag = function Span -> "span" | Instant -> "instant"

let to_text t =
  let buf = Buffer.create 512 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%.9f %s trace=%d span=%d parent=%d dur=%s %s\n"
           e.start_time (kind_tag e.kind) e.trace_id e.span_id e.parent_id
           (if Float.is_nan e.duration then "open"
            else Printf.sprintf "%.9f" e.duration)
           e.name))
    (entries t);
  if dropped t > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(... %d earlier entries dropped)\n" (dropped t));
  Buffer.contents buf

(* The Chrome trace-event "process" of an entry: the dot-prefix of its
   name ("wizard.parse" -> "wizard"), which groups each component's
   spans into its own track in Perfetto. *)
let process_of name =
  match String.index_opt name '.' with
  | Some i when i > 0 -> String.sub name 0 i
  | Some _ | None -> name

let microseconds seconds = Printf.sprintf "%.3f" (seconds *. 1e6)

let to_chrome_json ?(instants = []) t =
  let es = entries t in
  let processes =
    List.sort_uniq String.compare
      (List.map (fun (e : entry) -> process_of e.name) es
      @ List.map (fun (_, category, _) -> process_of category) instants)
  in
  let pid name =
    let rec find i = function
      | [] -> 0
      | p :: rest -> if String.equal p name then i else find (i + 1) rest
    in
    find 1 processes
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let event line =
    if !first then first := false else Buffer.add_string buf ",";
    Buffer.add_string buf "\n";
    Buffer.add_string buf line
  in
  List.iteri
    (fun i p ->
      event
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
           (i + 1) (Json.escape p)))
    processes;
  List.iter
    (fun (e : entry) ->
      match e.kind with
      | Span ->
        event
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":\"%s\",\"args\":{\"span\":%d,\"parent\":%d%s}}"
             (pid (process_of e.name))
             e.trace_id
             (microseconds e.start_time)
             (if Float.is_nan e.duration then "0.000"
              else microseconds e.duration)
             (Json.escape e.name) e.span_id e.parent_id
             (if Float.is_nan e.duration then ",\"open\":true" else ""))
      | Instant ->
        event
          (Printf.sprintf
             "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"s\":\"g\",\"name\":\"%s\",\"args\":{\"span\":%d,\"parent\":%d}}"
             (pid (process_of e.name))
             e.trace_id
             (microseconds e.start_time)
             (Json.escape e.name) e.span_id e.parent_id))
    es;
  List.iter
    (fun (time, category, message) ->
      event
        (Printf.sprintf
           "{\"ph\":\"i\",\"pid\":%d,\"tid\":0,\"ts\":%s,\"s\":\"g\",\"cat\":\"%s\",\"name\":\"%s\"}"
           (pid (process_of category))
           (microseconds time)
           (Json.escape category)
           (Json.escape message)))
    instants;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let render_tree t ~trace_id =
  let es =
    List.filter (fun (e : entry) -> e.trace_id = trace_id) (entries t)
  in
  let in_trace id = List.exists (fun (e : entry) -> e.span_id = id) es in
  let children parent =
    List.sort
      (fun (a : entry) b ->
        match Float.compare a.start_time b.start_time with
        | 0 -> compare a.span_id b.span_id
        | c -> c)
      (List.filter (fun (e : entry) -> e.parent_id = parent) es)
  in
  let buf = Buffer.create 256 in
  let rec render depth (e : entry) =
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s\n"
         (String.make (2 * depth) ' ')
         e.name
         (match e.kind with
         | Instant -> " (instant)"
         | Span ->
           if Float.is_nan e.duration then " (open)"
           else Printf.sprintf " [%.1f us]" (e.duration *. 1e6)));
    List.iter (render (depth + 1)) (children e.span_id)
  in
  (* roots: spans whose parent is 0 or fell off the ring / lives on
     another recorder *)
  List.iter
    (fun (e : entry) ->
      if e.parent_id = 0 || not (in_trace e.parent_id) then render 0 e)
    es;
  Buffer.contents buf
