(* Deterministic splittable PRNG (splitmix64).  The simulator must give
   bit-identical runs across OCaml releases, so we do not rely on the
   stdlib [Random] implementation. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state

let of_state state = { state }

(* Core splitmix64 step: advance the counter and scramble it. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }

let bits53 t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)

let float t ~bound =
  assert (bound >= 0.0);
  bits53 t /. 9007199254740992.0 *. bound

(* Uniform integer in [0, bound) without modulo bias for the bound sizes we
   use (bound <= 2^53 always in this project). *)
let int t ~bound =
  assert (bound > 0);
  int_of_float (float t ~bound:(float_of_int bound))

let bool t = Int64.equal (Int64.logand (next_int64 t) 1L) 1L

let range t ~lo ~hi =
  assert (hi >= lo);
  lo +. float t ~bound:(hi -. lo)

(* Box-Muller transform; we draw two uniforms per call and discard the
   second variate to keep the generator state consumption predictable. *)
let gaussian t ~mu ~sigma =
  let u1 = Float.max 1e-12 (float t ~bound:1.0) in
  let u2 = float t ~bound:1.0 in
  let r = Float.sqrt (-2.0 *. Float.log u1) in
  mu +. (sigma *. r *. Float.cos (2.0 *. Float.pi *. u2))

let exponential t ~mean =
  assert (mean > 0.0);
  let u = Float.max 1e-12 (float t ~bound:1.0) in
  -.mean *. Float.log u

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t ~bound:(Array.length arr))

let shuffle t arr =
  let a = Array.copy arr in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let sample t ~k arr =
  assert (k <= Array.length arr);
  Array.sub (shuffle t arr) 0 k
