(** CRC-32 (IEEE 802.3 / zlib polynomial) over strings.

    Integrity check for the transmitter->receiver frames; values fit in
    32 bits and are returned as non-negative [int]s. *)

(** CRC of a whole string. *)
val string : string -> int

(** CRC of [len] bytes starting at [pos].  Raises [Invalid_argument] on
    out-of-bounds ranges. *)
val substring : string -> pos:int -> len:int -> int

(** Streaming update: extend a previous CRC with more bytes.  The empty
    CRC is [0], and [update 0 s ~pos:0 ~len:(String.length s) =
    string s]. *)
val update : int -> string -> pos:int -> len:int -> int
