(* Tests for the core components: status databases, probe, monitors,
   transmitter/receiver, selection, wizard, client, and the deployed
   simulation driver (end-to-end flows, staleness, failure injection,
   centralized vs distributed modes). *)

module C = Smart_core
module P = Smart_proto
module H = Smart_host

let report ?(host = "helene") ?(ip = "192.168.2.3") ?(cpu_free = 0.9)
    ?(load1 = 0.1) ?(mem_free = 100.0) ?(bogomips = 3394.76) () =
  {
    P.Report.host;
    ip;
    load1;
    load5 = load1;
    load15 = load1;
    cpu_user = 1.0 -. cpu_free;
    cpu_nice = 0.0;
    cpu_system = 0.0;
    cpu_free;
    bogomips;
    mem_total = 256.0;
    mem_used = 256.0 -. mem_free;
    mem_free;
    mem_buffers = 10.0;
    mem_cached = 10.0;
    disk_rreq = 0.0;
    disk_rblocks = 0.0;
    disk_wreq = 0.0;
    disk_wblocks = 0.0;
    net_rbytes = 0.0;
    net_rpackets = 0.0;
    net_tbytes = 0.0;
    net_tpackets = 0.0;
  }

let sys_record ?host ?ip ?cpu_free ?load1 ?mem_free ?bogomips ~at () =
  {
    P.Records.report = report ?host ?ip ?cpu_free ?load1 ?mem_free ?bogomips ();
    updated_at = at;
  }

(* ------------------------------------------------------------------ *)
(* Status_db                                                            *)
(* ------------------------------------------------------------------ *)

let test_db_sys_update_and_replace () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~at:1.0 ());
  C.Status_db.update_sys db (sys_record ~at:2.0 ());
  Alcotest.(check int) "replaced, not duplicated" 1 (C.Status_db.sys_count db);
  match C.Status_db.find_sys db ~host:"helene" with
  | Some r -> Alcotest.(check (float 1e-9)) "latest wins" 2.0 r.P.Records.updated_at
  | None -> Alcotest.fail "record missing"

let test_db_sweep () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"old" ~ip:"1.1.1.1" ~at:0.0 ());
  C.Status_db.update_sys db (sys_record ~host:"new" ~ip:"1.1.1.2" ~at:9.0 ());
  Alcotest.(check int) "one dropped" 1
    (C.Status_db.sweep_sys db ~now:10.0 ~max_age:6.0);
  Alcotest.(check bool) "old gone" true
    (C.Status_db.find_sys db ~host:"old" = None);
  Alcotest.(check bool) "new kept" true
    (C.Status_db.find_sys db ~host:"new" <> None)

let test_db_net_entry_for () =
  let db = C.Status_db.create () in
  C.Status_db.update_net db
    {
      P.Records.monitor = "mon";
      entries =
        [ { P.Records.peer = "helene"; delay = 0.001; bandwidth = 1e6;
            measured_at = 0.0 } ];
    };
  (match C.Status_db.net_entry_for db ~target:"helene" with
  | Some e -> Alcotest.(check (float 1e-9)) "bw" 1e6 e.P.Records.bandwidth
  | None -> Alcotest.fail "entry missing");
  Alcotest.(check bool) "unknown target" true
    (C.Status_db.net_entry_for db ~target:"x" = None)

let test_db_sec () =
  let db = C.Status_db.create () in
  C.Status_db.replace_sec db
    { P.Records.entries = [ { P.Records.host = "a"; level = 4 } ] };
  Alcotest.(check (option int)) "level" (Some 4)
    (C.Status_db.security_level db ~host:"a");
  C.Status_db.replace_sec db
    { P.Records.entries = [ { P.Records.host = "b"; level = 1 } ] };
  Alcotest.(check (option int)) "replaced wholesale" None
    (C.Status_db.security_level db ~host:"a")

let net_entry ?(delay = 0.001) ?(bandwidth = 1e6) ?(measured_at = 0.0) peer =
  { P.Records.peer; delay; bandwidth; measured_at }

let test_db_generation () =
  let db = C.Status_db.create () in
  let g0 = C.Status_db.generation db in
  C.Status_db.update_sys db (sys_record ~at:1.0 ());
  Alcotest.(check bool) "sys write bumps" true (C.Status_db.generation db > g0);
  let g1 = C.Status_db.generation db in
  C.Status_db.update_net db
    { P.Records.monitor = "mon"; entries = [ net_entry "helene" ] };
  Alcotest.(check bool) "net write bumps" true (C.Status_db.generation db > g1);
  let g2 = C.Status_db.generation db in
  C.Status_db.replace_sec db
    { P.Records.entries = [ { P.Records.host = "a"; level = 1 } ] };
  Alcotest.(check bool) "sec write bumps" true (C.Status_db.generation db > g2);
  let g3 = C.Status_db.generation db in
  (* removing an absent host must not move the generation *)
  C.Status_db.remove_sys db ~host:"nobody";
  Alcotest.(check int) "no-op remove keeps generation" g3
    (C.Status_db.generation db);
  C.Status_db.remove_sys db ~host:"helene";
  Alcotest.(check bool) "real remove bumps" true
    (C.Status_db.generation db > g3);
  (* batched writes cost a single generation *)
  let g4 = C.Status_db.generation db in
  C.Status_db.update_sys_many db
    [
      sys_record ~host:"x" ~ip:"1.1.1.1" ~at:2.0 ();
      sys_record ~host:"y" ~ip:"1.1.1.2" ~at:2.0 ();
    ];
  Alcotest.(check int) "batch = one bump" (g4 + 1) (C.Status_db.generation db);
  C.Status_db.update_sys_many db [];
  Alcotest.(check int) "empty batch = no bump" (g4 + 1)
    (C.Status_db.generation db)

let test_db_sweep_generation () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"old" ~ip:"1.1.1.1" ~at:0.0 ());
  C.Status_db.update_sys db (sys_record ~host:"new" ~ip:"1.1.1.2" ~at:9.0 ());
  let g = C.Status_db.generation db in
  Alcotest.(check int) "idle sweep removes nothing" 0
    (C.Status_db.sweep_sys db ~now:10.0 ~max_age:60.0);
  Alcotest.(check int) "idle sweep keeps generation" g
    (C.Status_db.generation db);
  Alcotest.(check int) "real sweep removes" 1
    (C.Status_db.sweep_sys db ~now:10.0 ~max_age:6.0);
  Alcotest.(check bool) "real sweep bumps" true (C.Status_db.generation db > g)

let test_db_sys_records_cached () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"b" ~ip:"1.1.1.2" ~at:1.0 ());
  C.Status_db.update_sys db (sys_record ~host:"a" ~ip:"1.1.1.1" ~at:1.0 ());
  let first = C.Status_db.sys_records db in
  Alcotest.(check (list string)) "sorted by host" [ "a"; "b" ]
    (List.map (fun r -> r.P.Records.report.P.Report.host) first);
  Alcotest.(check bool) "same generation reuses the snapshot" true
    (first == C.Status_db.sys_records db);
  C.Status_db.update_sys db (sys_record ~host:"c" ~ip:"1.1.1.3" ~at:1.0 ());
  let second = C.Status_db.sys_records db in
  Alcotest.(check bool) "write invalidates" false (first == second);
  Alcotest.(check int) "rebuilt view sees the write" 3 (List.length second)

(* The winner among several monitors reporting the same peer must not
   depend on hashtable iteration or insertion order: freshest
   measured_at first, lowest monitor name on ties. *)
let test_db_net_entry_deterministic () =
  let records =
    [
      { P.Records.monitor = "mz";
        entries = [ net_entry ~bandwidth:1e6 ~measured_at:5.0 "peer" ] };
      { P.Records.monitor = "ma";
        entries = [ net_entry ~bandwidth:2e6 ~measured_at:9.0 "peer" ] };
      { P.Records.monitor = "mb";
        entries = [ net_entry ~bandwidth:3e6 ~measured_at:9.0 "peer" ] };
    ]
  in
  let winner_with order =
    let db = C.Status_db.create () in
    List.iter (fun i -> C.Status_db.update_net db (List.nth records i)) order;
    match C.Status_db.net_entry_for db ~target:"peer" with
    | Some e -> e.P.Records.bandwidth
    | None -> Alcotest.fail "entry missing"
  in
  (* all six insertion orders agree: ma wins (measured_at 9.0, "ma" < "mb") *)
  List.iter
    (fun order ->
      Alcotest.(check (float 1e-9)) "insertion-order independent" 2e6
        (winner_with order))
    [ [0;1;2]; [0;2;1]; [1;0;2]; [1;2;0]; [2;0;1]; [2;1;0] ];
  (* re-reporting replaces the old index entries instead of stacking *)
  let db = C.Status_db.create () in
  C.Status_db.update_net db
    { P.Records.monitor = "m";
      entries = [ net_entry ~bandwidth:1e6 ~measured_at:1.0 "peer" ] };
  C.Status_db.update_net db
    { P.Records.monitor = "m";
      entries = [ net_entry ~bandwidth:7e6 ~measured_at:2.0 "peer" ] };
  (match C.Status_db.net_entry_for db ~target:"peer" with
  | Some e ->
    Alcotest.(check (float 1e-9)) "replaced, not stacked" 7e6
      e.P.Records.bandwidth
  | None -> Alcotest.fail "entry missing");
  (* a record dropping a peer removes it from the index *)
  C.Status_db.update_net db { P.Records.monitor = "m"; entries = [] };
  Alcotest.(check bool) "dropped peer unindexed" true
    (C.Status_db.net_entry_for db ~target:"peer" = None)

(* ------------------------------------------------------------------ *)
(* Probe                                                                *)
(* ------------------------------------------------------------------ *)

let probe_config =
  {
    C.Probe.host = "helene";
    ip = "192.168.2.3";
    bogomips = 3394.76;
    monitor = { C.Output.host = "mon"; port = P.Ports.sysmon };
    iface = "eth0";
    transport = C.Probe.Udp;
  }

let snapshot_of machine ~now = H.Procfs.snapshot_of_machine machine ~now

let test_probe_first_tick () =
  let machine = H.Machine.create (H.Testbed.spec_of_name "helene") in
  let probe = C.Probe.create probe_config in
  match C.Probe.tick probe ~now:0.0 ~snapshot:(snapshot_of machine ~now:0.0) with
  | Ok (r, outputs) ->
    Alcotest.(check string) "host" "helene" r.P.Report.host;
    Alcotest.(check (float 1e-9)) "first tick idle" 1.0 r.P.Report.cpu_free;
    Alcotest.(check (float 1e-9)) "no rates yet" 0.0 r.P.Report.net_tbytes;
    Alcotest.(check int) "one datagram" 1 (List.length outputs);
    (match outputs with
    | [ C.Output.Udp { dst; data } ] ->
      Alcotest.(check string) "to monitor" "mon" dst.C.Output.host;
      Alcotest.(check int) "sysmon port" P.Ports.sysmon dst.C.Output.port;
      Alcotest.(check bool) "parseable" true
        (Result.is_ok (P.Report.of_string data))
    | _ -> Alcotest.fail "expected one UDP output")
  | Error e -> Alcotest.failf "tick failed: %s" e

let test_probe_rates_from_deltas () =
  let machine = H.Machine.create (H.Testbed.spec_of_name "helene") in
  let probe = C.Probe.create probe_config in
  ignore (C.Probe.tick probe ~now:0.0 ~snapshot:(snapshot_of machine ~now:0.0));
  (* between the ticks: half-loaded CPU, 10 KB/s transmitted *)
  ignore (H.Machine.add_workload machine ~now:0.0 (H.Machine.cpu_hog ~demand:0.5));
  H.Machine.count_tx machine ~bytes:100_000.0;
  match
    C.Probe.tick probe ~now:10.0 ~snapshot:(snapshot_of machine ~now:10.0)
  with
  | Ok (r, _) ->
    Alcotest.(check (float 0.02)) "cpu busy fraction" 0.5 r.P.Report.cpu_user;
    Alcotest.(check (float 0.02)) "cpu free fraction" 0.5 r.P.Report.cpu_free;
    Alcotest.(check (float 100.0)) "tx rate" 10_000.0 r.P.Report.net_tbytes
  | Error e -> Alcotest.failf "tick failed: %s" e

let test_probe_bad_snapshot () =
  let probe = C.Probe.create probe_config in
  let bad =
    {
      H.Procfs.loadavg_text = "garbage";
      stat_text = "";
      meminfo_text = "";
      netdev_text = "";
    }
  in
  Alcotest.(check bool) "error surfaces" true
    (Result.is_error (C.Probe.tick probe ~now:0.0 ~snapshot:bad))

let test_probe_missing_iface () =
  let machine = H.Machine.create (H.Testbed.spec_of_name "helene") in
  let probe = C.Probe.create { probe_config with C.Probe.iface = "eth7" } in
  Alcotest.(check bool) "missing iface reported" true
    (Result.is_error
       (C.Probe.tick probe ~now:0.0 ~snapshot:(snapshot_of machine ~now:0.0)))

(* ------------------------------------------------------------------ *)
(* Sysmon                                                               *)
(* ------------------------------------------------------------------ *)

let test_sysmon_ingest_and_expire () =
  let db = C.Status_db.create () in
  let sysmon =
    C.Sysmon.create
      ~config:
        { C.Sysmon.default_config with probe_interval = 2.0; missed_intervals = 3 }
      db
  in
  Alcotest.(check (float 1e-9)) "max age = 3 intervals" 6.0
    (C.Sysmon.max_age sysmon);
  let data = P.Report.to_string (report ()) in
  (match C.Sysmon.handle_report sysmon ~now:1.0 data with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ingest failed: %s" e);
  Alcotest.(check int) "stored" 1 (C.Status_db.sys_count db);
  Alcotest.(check int) "no expiry yet" 0 (C.Sysmon.sweep sysmon ~now:6.9);
  Alcotest.(check int) "expired after 3 intervals" 1
    (C.Sysmon.sweep sysmon ~now:7.1);
  Alcotest.(check int) "gone" 0 (C.Status_db.sys_count db);
  Alcotest.(check bool) "garbage counted" true
    (Result.is_error (C.Sysmon.handle_report sysmon ~now:8.0 "junk"));
  Alcotest.(check int) "parse errors" 1 (C.Sysmon.parse_errors sysmon);
  Alcotest.(check int) "handled count" 1 (C.Sysmon.reports_handled sysmon)

(* ------------------------------------------------------------------ *)
(* Netmon / Secmon                                                      *)
(* ------------------------------------------------------------------ *)

let test_netmon_sequential_probing () =
  let db = C.Status_db.create () in
  let netmon =
    C.Netmon.create
      { C.Netmon.monitor_name = "mon"; targets = [ "a"; "b"; "c" ] }
      db
  in
  let order = ref [] in
  let prober ~target =
    order := target :: !order;
    if target = "b" then None
    else Some { C.Netmon.delay = 0.001; bandwidth = 1e6 }
  in
  let record = C.Netmon.probe_all netmon ~now:5.0 ~prober in
  Alcotest.(check (list string)) "strict order" [ "a"; "b"; "c" ]
    (List.rev !order);
  Alcotest.(check int) "failed target dropped" 2
    (List.length record.P.Records.entries);
  Alcotest.(check int) "failures counted" 1 (C.Netmon.probe_failures netmon);
  Alcotest.(check bool) "published" true
    (C.Status_db.net_entry_for db ~target:"c" <> None)

let test_netmon_interval_scaling () =
  let i3 = C.Netmon.recommended_interval ~groups:3 ~per_probe_cost:0.5 in
  let i10 = C.Netmon.recommended_interval ~groups:10 ~per_probe_cost:0.5 in
  Alcotest.(check bool) "more groups, longer interval" true (i10 > i3)

let test_secmon () =
  let db = C.Status_db.create () in
  let secmon = C.Secmon.create db in
  (match C.Secmon.refresh_from_log secmon "a 5\nb 2\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "refresh failed: %s" e);
  Alcotest.(check (option int)) "level" (Some 5)
    (C.Status_db.security_level db ~host:"a");
  Alcotest.(check bool) "bad log errors" true
    (Result.is_error (C.Secmon.refresh_from_log secmon "a x\n"));
  Alcotest.(check (option string)) "error remembered"
    (Some "security log: bad level for a") (C.Secmon.last_error secmon)

(* ------------------------------------------------------------------ *)
(* Transmitter / Receiver                                               *)
(* ------------------------------------------------------------------ *)

let test_transmitter_receiver_roundtrip () =
  let db_mon = C.Status_db.create () in
  C.Status_db.update_sys db_mon (sys_record ~at:1.0 ());
  C.Status_db.update_net db_mon
    {
      P.Records.monitor = "mon";
      entries =
        [ { P.Records.peer = "helene"; delay = 0.002; bandwidth = 2e6;
            measured_at = 1.0 } ];
    };
  C.Status_db.replace_sec db_mon
    { P.Records.entries = [ { P.Records.host = "helene"; level = 3 } ] };
  let tx =
    C.Transmitter.create ~monitor_name:"mon"
      {
        C.Transmitter.mode = C.Transmitter.Centralized;
        order = P.Endian.Little;
        receiver = { C.Output.host = "wiz"; port = P.Ports.receiver };
      }
      db_mon
  in
  let db_wiz = C.Status_db.create () in
  let rx = C.Receiver.create ~order:P.Endian.Little db_wiz in
  (match C.Transmitter.tick tx ~now:0.0 with
  | [ C.Output.Stream { dst; data } ] ->
    Alcotest.(check int) "receiver port" P.Ports.receiver dst.C.Output.port;
    (* feed in two arbitrary chunks to exercise reassembly *)
    let half = String.length data / 2 in
    (match C.Receiver.handle_stream rx ~from:"mon" (String.sub data 0 half) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "first chunk: %s" e);
    (match
       C.Receiver.handle_stream rx ~from:"mon"
         (String.sub data half (String.length data - half))
     with
    | Ok () -> ()
    | Error e -> Alcotest.failf "second chunk: %s" e)
  | _ -> Alcotest.fail "expected one stream output");
  Alcotest.(check int) "three frames" 3 (C.Receiver.frames_handled rx);
  Alcotest.(check bool) "sys mirrored" true
    (C.Status_db.find_sys db_wiz ~host:"helene" <> None);
  (match C.Status_db.net_entry_for db_wiz ~target:"helene" with
  | Some e -> Alcotest.(check (float 1e-9)) "net mirrored" 2e6 e.P.Records.bandwidth
  | None -> Alcotest.fail "net entry missing");
  Alcotest.(check (option int)) "sec mirrored" (Some 3)
    (C.Status_db.security_level db_wiz ~host:"helene")

let test_transmitter_modes () =
  let db = C.Status_db.create () in
  let mk mode =
    C.Transmitter.create ~monitor_name:"mon"
      {
        C.Transmitter.mode;
        order = P.Endian.Little;
        receiver = { C.Output.host = "wiz"; port = P.Ports.receiver };
      }
      db
  in
  let active = mk C.Transmitter.Centralized in
  Alcotest.(check int) "centralized pushes on tick" 1
    (List.length (C.Transmitter.tick active ~now:0.0));
  Alcotest.(check int) "centralized ignores pulls" 0
    (List.length
       (C.Transmitter.handle_pull active ~data:C.Transmitter.pull_request_magic));
  let passive = mk C.Transmitter.Distributed in
  Alcotest.(check int) "distributed silent on tick" 0
    (List.length (C.Transmitter.tick passive ~now:0.0));
  Alcotest.(check int) "distributed answers pulls" 1
    (List.length
       (C.Transmitter.handle_pull passive ~data:C.Transmitter.pull_request_magic));
  Alcotest.(check int) "bad magic ignored" 0
    (List.length (C.Transmitter.handle_pull passive ~data:"nope"))

let test_receiver_update_hook () =
  let db = C.Status_db.create () in
  let rx = C.Receiver.create ~order:P.Endian.Little db in
  let count = ref 0 in
  C.Receiver.set_update_hook rx (Some (fun _ -> incr count));
  let frame =
    P.Frame.encode P.Endian.Little
      {
        P.Frame.payload_type = P.Frame.Sec_db;
        data = P.Records.encode_sec P.Endian.Little { P.Records.entries = [] };
        trace = Smart_util.Tracelog.root;
      }
  in
  (match C.Receiver.handle_stream rx ~from:"m" frame with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stream: %s" e);
  Alcotest.(check int) "hook fired" 1 !count

(* ------------------------------------------------------------------ *)
(* Selection                                                            *)
(* ------------------------------------------------------------------ *)

let view ?host ?ip ?cpu_free ?load1 ?mem_free ?bogomips ?net ?security_level ()
    =
  {
    C.Selection.record =
      sys_record ?host ?ip ?cpu_free ?load1 ?mem_free ?bogomips ~at:0.0 ();
    net;
    security_level;
  }

let compile src =
  match Smart_lang.Requirement.compile src with
  | Ok p -> p
  | Error e ->
    Alcotest.failf "compile: %a" Smart_lang.Requirement.pp_compile_error e

(* Selection consumes immutable snapshots; wrap ad-hoc view lists. *)
let select ~requirement ~servers ~wanted =
  C.Selection.select ~requirement
    ~servers:(C.Selection.snapshot servers)
    ~wanted

let test_selection_filters () =
  let servers =
    [
      view ~host:"fast" ~ip:"1.0.0.1" ~cpu_free:0.95 ();
      view ~host:"busy" ~ip:"1.0.0.2" ~cpu_free:0.2 ();
      view ~host:"idle" ~ip:"1.0.0.3" ~cpu_free:0.99 ();
    ]
  in
  let r =
    select ~requirement:(compile "host_cpu_free > 0.9\n") ~servers
      ~wanted:10
  in
  Alcotest.(check (list string)) "only qualified, scan order"
    [ "fast"; "idle" ] r.C.Selection.selected;
  Alcotest.(check int) "verdicts for all" 3 (List.length r.C.Selection.verdicts)

let test_selection_wanted_limit () =
  let servers =
    List.init 5 (fun i ->
        view
          ~host:(Printf.sprintf "s%d" i)
          ~ip:(Printf.sprintf "1.0.0.%d" i)
          ())
  in
  let r =
    select ~requirement:(compile "100 > 0\n") ~servers ~wanted:2
  in
  Alcotest.(check int) "cut to wanted" 2 (List.length r.C.Selection.selected)

let test_selection_denied () =
  let servers =
    [
      view ~host:"a" ~ip:"1.0.0.1" ();
      view ~host:"b" ~ip:"1.0.0.2" ();
    ]
  in
  let r =
    select
      ~requirement:(compile "user_denied_host1 = a\n100 > 0\n")
      ~servers ~wanted:10
  in
  Alcotest.(check (list string)) "blacklist by name" [ "b" ]
    r.C.Selection.selected;
  (* denial also matches by IP *)
  let r2 =
    select
      ~requirement:(compile "user_denied_host1 = 1.0.0.2\n100 > 0\n")
      ~servers ~wanted:10
  in
  Alcotest.(check (list string)) "blacklist by ip" [ "a" ]
    r2.C.Selection.selected

let test_selection_preferred_order () =
  let servers =
    [
      view ~host:"a" ~ip:"1.0.0.1" ();
      view ~host:"b" ~ip:"1.0.0.2" ();
      view ~host:"c" ~ip:"1.0.0.3" ();
    ]
  in
  let r =
    select
      ~requirement:
        (compile "user_preferred_host1 = c\nuser_preferred_host2 = b\n100 > 0\n")
      ~servers ~wanted:10
  in
  Alcotest.(check (list string)) "preferred first, in order"
    [ "c"; "b"; "a" ] r.C.Selection.selected

let test_selection_preferred_must_qualify () =
  let servers =
    [
      view ~host:"a" ~ip:"1.0.0.1" ~cpu_free:0.95 ();
      view ~host:"slowpref" ~ip:"1.0.0.2" ~cpu_free:0.1 ();
    ]
  in
  let r =
    select
      ~requirement:
        (compile "user_preferred_host1 = slowpref\nhost_cpu_free > 0.9\n")
      ~servers ~wanted:10
  in
  Alcotest.(check (list string)) "unqualified preferred excluded" [ "a" ]
    r.C.Selection.selected

let test_selection_monitor_bindings () =
  let net bw =
    Some { P.Records.peer = "x"; delay = 0.01; bandwidth = bw; measured_at = 0.0 }
  in
  let servers =
    [
      view ~host:"fat" ~ip:"1.0.0.1" ?net:(Some (Option.get (net (Smart_util.Units.mbps_to_bytes_per_sec 8.0)))) ();
      view ~host:"thin" ~ip:"1.0.0.2" ?net:(Some (Option.get (net (Smart_util.Units.mbps_to_bytes_per_sec 2.0)))) ();
      view ~host:"unmeasured" ~ip:"1.0.0.3" ();
    ]
  in
  let r =
    select ~requirement:(compile "monitor_network_bw > 6\n")
      ~servers ~wanted:10
  in
  (* unmeasured servers fail the bandwidth requirement (unbound -> false) *)
  Alcotest.(check (list string)) "bandwidth filter" [ "fat" ]
    r.C.Selection.selected

let test_selection_security_binding () =
  let servers =
    [
      view ~host:"sec5" ~ip:"1.0.0.1" ~security_level:5 ();
      view ~host:"sec1" ~ip:"1.0.0.2" ~security_level:1 ();
    ]
  in
  let r =
    select ~requirement:(compile "host_security_level >= 3\n")
      ~servers ~wanted:10
  in
  Alcotest.(check (list string)) "clearance filter" [ "sec5" ]
    r.C.Selection.selected

let test_selection_order_by () =
  (* the Ch. 6 extension: "3 servers with largest memory" *)
  let servers =
    [
      view ~host:"small" ~ip:"1.0.0.1" ~mem_free:10.0 ();
      view ~host:"large" ~ip:"1.0.0.2" ~mem_free:200.0 ();
      view ~host:"medium" ~ip:"1.0.0.3" ~mem_free:100.0 ();
      view ~host:"tiny" ~ip:"1.0.0.4" ~mem_free:1.0 ();
    ]
  in
  let r =
    select
      ~requirement:(compile "order_by = host_memory_free\n100 > 0\n")
      ~servers ~wanted:3
  in
  Alcotest.(check (list string)) "largest memory first"
    [ "large"; "medium"; "small" ]
    r.C.Selection.selected;
  (* order_by composes with qualification and arbitrary expressions *)
  let r2 =
    select
      ~requirement:
        (compile "host_memory_free > 5\norder_by = 0 - host_memory_free\n")
      ~servers ~wanted:2
  in
  Alcotest.(check (list string)) "smallest qualified first"
    [ "small"; "medium" ]
    r2.C.Selection.selected;
  (* preferred hosts still outrank the order_by key *)
  let r3 =
    select
      ~requirement:
        (compile
           "order_by = host_memory_free\nuser_preferred_host1 = tiny\n100 > 0\n")
      ~servers ~wanted:2
  in
  Alcotest.(check (list string)) "preferred beats ranking"
    [ "tiny"; "large" ]
    r3.C.Selection.selected;
  (* without order_by, scan order is preserved (no behaviour change) *)
  let r4 =
    select ~requirement:(compile "100 > 0\n") ~servers ~wanted:4
  in
  Alcotest.(check (list string)) "scan order without order_by"
    [ "small"; "large"; "medium"; "tiny" ]
    r4.C.Selection.selected

let test_selection_fig14_scenario () =
  (* Fig 1.4: 12 servers in 4 networks with delays 100/5/10/15 ms; the
     user wants 3 servers with delay < 20 ms, cpu < 10%, 100 MB free
     memory, and hacker.some.net blacklisted *)
  let mk name ip delay_ms cpu_free mem_free =
    view ~host:name ~ip ~cpu_free ~mem_free
      ?net:(Some
              {
                P.Records.peer = name;
                delay = delay_ms /. 1000.0;
                bandwidth = 12.5e6;
                measured_at = 0.0;
              })
      ()
  in
  let servers =
    [
      mk "a1" "10.0.1.1" 100.0 0.95 200.0;
      mk "a2" "10.0.1.2" 100.0 0.95 200.0;
      mk "a3" "10.0.1.3" 100.0 0.95 200.0;
      mk "b1" "10.0.2.1" 5.0 0.5 200.0;   (* busy *)
      mk "b2" "10.0.2.2" 5.0 0.95 200.0;
      mk "b3" "10.0.2.3" 5.0 0.95 50.0;   (* low memory *)
      mk "c1" "10.0.3.1" 10.0 0.95 200.0;
      mk "hacker.some.net" "10.0.3.2" 10.0 0.95 200.0;
      mk "d1" "10.0.4.1" 15.0 0.95 200.0;
      mk "d2" "10.0.4.2" 15.0 0.8 200.0;  (* cpu too busy *)
    ]
  in
  let requirement =
    "monitor_network_delay < 20\n\
     host_cpu_free > 0.9\n\
     host_memory_free >= 100\n\
     user_denied_host1 = hacker.some.net\n"
  in
  let r =
    select ~requirement:(compile requirement) ~servers ~wanted:3
  in
  Alcotest.(check (list string)) "B2, C1, D1 as in Fig 1.4"
    [ "b2"; "c1"; "d1" ] r.C.Selection.selected

let test_selection_empty_and_limits () =
  (* no servers at all *)
  let r =
    select ~requirement:(compile "100 > 0\n") ~servers:[] ~wanted:5
  in
  Alcotest.(check (list string)) "empty pool" [] r.C.Selection.selected;
  (* more qualified servers than the 60-server reply bound *)
  let servers =
    List.init 70 (fun i ->
        view
          ~host:(Printf.sprintf "s%02d" i)
          ~ip:(Printf.sprintf "10.0.%d.%d" (i / 250) (i mod 250))
          ())
  in
  let r2 =
    select ~requirement:(compile "100 > 0\n") ~servers ~wanted:100
  in
  Alcotest.(check int) "capped at the Table 3.6 bound"
    P.Ports.max_reply_servers
    (List.length r2.C.Selection.selected)

(* ------------------------------------------------------------------ *)
(* Differential: select_columns vs the reference select                 *)
(* ------------------------------------------------------------------ *)

(* Random status databases and requirement texts: the columnar
   selection must reproduce the reference [select]'s chosen hosts
   exactly, across both the statement-major sweep shape (plain
   column-vs-constant conjunctions) and the general interpreter path
   (temps, arithmetic order keys, preferred/denied parameters). *)

type diff_server = {
  ds_cpu_free : float;
  ds_load1 : float;
  ds_mem_free : float;
  ds_bogomips : float;
  ds_net : (float * float) option;  (* delay s, bandwidth B/s *)
  ds_sec : int option;
}

let gen_diff_server =
  QCheck.Gen.(
    let* k = int_range 0 4 in
    let* load1 = map float_of_int (int_range 0 2) in
    let* mem_free = map (fun m -> float_of_int (50 * m)) (int_range 0 4) in
    let* bogomips = map (fun b -> float_of_int (1000 * b)) (int_range 1 4) in
    let* net =
      opt
        (map2
           (fun d b -> (float_of_int d /. 1000.0, float_of_int b *. 125000.0))
           (int_range 1 30) (int_range 0 8))
    in
    let* sec = opt (int_range 0 4) in
    return
      {
        ds_cpu_free = float_of_int k /. 4.0;
        ds_load1 = load1;
        ds_mem_free = mem_free;
        ds_bogomips = bogomips;
        ds_net = net;
        ds_sec = sec;
      })

let gen_diff_requirement =
  QCheck.Gen.(
    let cmp_line =
      map3
        (fun v op c -> Printf.sprintf "%s %s %s" v op c)
        (oneofl
           [
             "host_cpu_free";
             "host_memory_free";
             "host_system_load1";
             "monitor_network_bw";
             "host_security_level";
           ])
        (oneofl [ ">"; ">="; "<"; "<="; "=="; "!=" ])
        (oneofl [ "0"; "0.5"; "1"; "2"; "100" ])
    in
    let order_line =
      oneofl
        [
          "order_by = host_memory_free";
          "order_by = host_cpu_bogomips";
          "order_by = monitor_network_delay";
          "order_by = host_memory_free + 4 * host_cpu_free";
        ]
    in
    let param_line =
      map2
        (fun which ip -> Printf.sprintf "%s = %s" which ip)
        (oneofl
           [ "user_preferred_host1"; "user_preferred_host2"; "user_denied_host1" ])
        (oneofl [ "10.0.0.1"; "10.0.0.2"; "10.0.0.3"; "10.0.0.9" ])
    in
    let chunk =
      frequency
        [
          (4, cmp_line);
          (1, order_line);
          (1, param_line);
          (1, return "t = host_cpu_free * 2\nt > 0.5");
          (1, return "100 > 0");
        ]
    in
    map
      (fun chunks -> String.concat "\n" chunks ^ "\n")
      (list_size (int_range 1 4) chunk))

let arbitrary_selection_case =
  QCheck.make
    ~print:(fun (servers, source, wanted) ->
      Printf.sprintf "%d servers, wanted %d:\n%s" (Array.length servers) wanted
        source)
    QCheck.Gen.(
      triple
        (array_size (int_range 1 6) gen_diff_server)
        gen_diff_requirement (int_range (-1) 5))

let prop_select_columns_matches_select =
  QCheck.Test.make
    ~name:"select_columns agrees with the reference select" ~count:400
    arbitrary_selection_case
    (fun (servers, source, wanted) ->
      let db = C.Status_db.create () in
      Array.iteri
        (fun i s ->
          C.Status_db.update_sys db
            (sys_record
               ~host:(Printf.sprintf "s%d" (i + 1))
               ~ip:(Printf.sprintf "10.0.0.%d" (i + 1))
               ~cpu_free:s.ds_cpu_free ~load1:s.ds_load1
               ~mem_free:s.ds_mem_free ~bogomips:s.ds_bogomips ~at:1.0 ()))
        servers;
      let net_entries =
        List.concat
          (List.mapi
             (fun i s ->
               match s.ds_net with
               | Some (delay, bandwidth) ->
                 [
                   {
                     P.Records.peer = Printf.sprintf "s%d" (i + 1);
                     delay;
                     bandwidth;
                     measured_at = 1.0;
                   };
                 ]
               | None -> [])
             (Array.to_list servers))
      in
      if net_entries <> [] then
        C.Status_db.update_net db
          { P.Records.monitor = "mon"; entries = net_entries };
      let sec_entries =
        List.concat
          (List.mapi
             (fun i s ->
               match s.ds_sec with
               | Some level ->
                 [ { P.Records.host = Printf.sprintf "s%d" (i + 1); level } ]
               | None -> [])
             (Array.to_list servers))
      in
      if sec_entries <> [] then
        C.Status_db.replace_sec db { P.Records.entries = sec_entries };
      let net_for host = C.Status_db.net_entry_for db ~target:host in
      let reference =
        let views =
          List.map
            (fun (r : P.Records.sys_record) ->
              let host = r.P.Records.report.P.Report.host in
              {
                C.Selection.record = r;
                net = net_for host;
                security_level = C.Status_db.security_level db ~host;
              })
            (C.Status_db.sys_records db)
        in
        C.Selection.select ~requirement:(compile source)
          ~servers:(C.Selection.snapshot views)
          ~wanted
      in
      match Smart_lang.Requirement.compile_fast source with
      | Error _ -> false
      | Ok fast ->
        let view = C.Status_db.columns db ~net_for in
        let got =
          C.Selection.select_columns (C.Selection.scratch ()) ~fast ~view
            ~wanted
        in
        List.equal String.equal reference.C.Selection.selected got)

(* A second transmitter's snapshot must not clobber the first's servers
   on the mirror (per-transmitter ownership). *)
let test_receiver_multi_transmitter_ownership () =
  let db = C.Status_db.create () in
  let rx = C.Receiver.create ~order:P.Endian.Little db in
  let frame_for hosts =
    P.Frame.encode P.Endian.Little
      {
        P.Frame.payload_type = P.Frame.Sys_db;
        data =
          String.concat ""
            (List.map
               (fun (h, ip) ->
                 P.Records.encode_sys P.Endian.Little
                   (sys_record ~host:h ~ip ~at:1.0 ()))
               hosts);
        trace = Smart_util.Tracelog.root;
      }
  in
  let ok = function Ok () -> () | Error e -> Alcotest.failf "stream: %s" e in
  ok (C.Receiver.handle_stream rx ~from:"monA" (frame_for [ ("a1", "1.1.1.1"); ("a2", "1.1.1.2") ]));
  ok (C.Receiver.handle_stream rx ~from:"monB" (frame_for [ ("b1", "2.1.1.1") ]));
  Alcotest.(check int) "three mirrored" 3 (C.Status_db.sys_count db);
  (* monA's next snapshot lost a2: only a2 disappears *)
  ok (C.Receiver.handle_stream rx ~from:"monA" (frame_for [ ("a1", "1.1.1.1") ]));
  Alcotest.(check int) "a2 dropped, b1 kept" 2 (C.Status_db.sys_count db);
  Alcotest.(check bool) "b1 still present" true
    (C.Status_db.find_sys db ~host:"b1" <> None);
  Alcotest.(check bool) "a2 gone" true
    (C.Status_db.find_sys db ~host:"a2" = None)

(* ------------------------------------------------------------------ *)
(* Wizard + Client protocol (no network)                                *)
(* ------------------------------------------------------------------ *)

let fresh_client ?(seed = 4) () =
  C.Client.create ~rng:(Smart_util.Prng.create ~seed) ()

let client_request ?(wanted = 2) ?(option = P.Wizard_msg.Accept_partial)
    requirement =
  C.Client.make_request (fresh_client ()) ~wanted ~option ~requirement

let test_wizard_centralized_reply () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"a" ~ip:"1.0.0.1" ~at:0.0 ());
  C.Status_db.update_sys db
    (sys_record ~host:"b" ~ip:"1.0.0.2" ~cpu_free:0.1 ~at:0.0 ());
  let wizard =
    C.Wizard.create { C.Wizard.mode = C.Wizard.Centralized; groups = None } db
  in
  let request = client_request "host_cpu_free > 0.5\n" in
  let from = { C.Output.host = "client"; port = 4567 } in
  (match
     C.Wizard.handle_request wizard ~now:1.0 ~from
       (P.Wizard_msg.encode_request request)
   with
  | [ C.Output.Udp { dst; data } ] ->
    Alcotest.(check string) "reply to requester" "client" dst.C.Output.host;
    Alcotest.(check int) "reply to requester port" 4567 dst.C.Output.port;
    (match C.Client.check_reply (fresh_client ()) request data with
    | Ok servers -> Alcotest.(check (list string)) "servers" [ "a" ] servers
    | Error e -> Alcotest.failf "reply rejected: %a" C.Client.pp_error e)
  | _ -> Alcotest.fail "expected one reply datagram");
  Alcotest.(check int) "handled" 1 (C.Wizard.requests_handled wizard)

let test_wizard_bad_requirement () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~at:0.0 ());
  let wizard =
    C.Wizard.create { C.Wizard.mode = C.Wizard.Centralized; groups = None } db
  in
  let request = client_request "1 +\n" in
  (match
     C.Wizard.handle_request wizard ~now:1.0
       ~from:{ C.Output.host = "c"; port = 1 }
       (P.Wizard_msg.encode_request request)
   with
  | [ C.Output.Udp { data; _ } ] ->
    (match P.Wizard_msg.decode_reply data with
    | Ok reply ->
      Alcotest.(check (list string)) "empty on compile error" []
        reply.P.Wizard_msg.servers
    | Error e -> Alcotest.failf "reply: %s" e)
  | _ -> Alcotest.fail "expected reply");
  Alcotest.(check int) "compile error counted" 1 (C.Wizard.compile_errors wizard)

let test_wizard_garbage_dropped () =
  let db = C.Status_db.create () in
  let wizard =
    C.Wizard.create { C.Wizard.mode = C.Wizard.Centralized; groups = None } db
  in
  Alcotest.(check int) "garbage dropped silently" 0
    (List.length
       (C.Wizard.handle_request wizard ~now:1.0
          ~from:{ C.Output.host = "c"; port = 1 }
          "xx"))

let test_wizard_distributed_pull_flow () =
  let db = C.Status_db.create () in
  let wizard =
    C.Wizard.create
      {
        C.Wizard.mode =
          C.Wizard.Distributed
            {
              transmitters = [ { C.Output.host = "mon"; port = P.Ports.transmitter } ];
              freshness_timeout = 2.0;
            };
        groups = None;
      }
      db
  in
  let request = client_request "100 > 0\n" in
  let from = { C.Output.host = "client"; port = 9 } in
  (* request triggers pulls, no immediate reply *)
  (match
     C.Wizard.handle_request wizard ~now:1.0 ~from
       (P.Wizard_msg.encode_request request)
   with
  | [ C.Output.Udp { dst; data } ] ->
    Alcotest.(check string) "pull to transmitter" "mon" dst.C.Output.host;
    Alcotest.(check string) "magic" C.Transmitter.pull_request_magic data
  | _ -> Alcotest.fail "expected one pull");
  Alcotest.(check int) "pending" 1 (C.Wizard.pending_count wizard);
  Alcotest.(check int) "no release yet" 0
    (List.length (C.Wizard.tick wizard ~now:1.1));
  (* fresh data lands: three frames *)
  C.Status_db.update_sys db (sys_record ~host:"a" ~ip:"1.0.0.1" ~at:1.2 ());
  C.Wizard.note_update wizard;
  C.Wizard.note_update wizard;
  C.Wizard.note_update wizard;
  (match C.Wizard.tick wizard ~now:1.3 with
  | [ C.Output.Udp { data; _ } ] ->
    (match C.Client.check_reply (fresh_client ()) request data with
    | Ok servers -> Alcotest.(check (list string)) "served after pull" [ "a" ] servers
    | Error e -> Alcotest.failf "reply: %a" C.Client.pp_error e)
  | _ -> Alcotest.fail "expected deferred reply");
  Alcotest.(check int) "pending drained" 0 (C.Wizard.pending_count wizard)

let test_wizard_distributed_deadline () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"stale" ~ip:"1.0.0.1" ~at:0.0 ());
  let wizard =
    C.Wizard.create
      {
        C.Wizard.mode =
          C.Wizard.Distributed
            {
              transmitters = [ { C.Output.host = "mon"; port = P.Ports.transmitter } ];
              freshness_timeout = 2.0;
            };
        groups = None;
      }
      db
  in
  let request = client_request "100 > 0\n" in
  ignore
    (C.Wizard.handle_request wizard ~now:1.0
       ~from:{ C.Output.host = "c"; port = 9 }
       (P.Wizard_msg.encode_request request));
  (* no transmitter answers; the deadline releases the request with
     whatever (stale) data exists *)
  Alcotest.(check int) "released at deadline" 1
    (List.length (C.Wizard.tick wizard ~now:3.5))

let ask wizard ~wanted requirement =
  match
    C.Wizard.handle_request wizard ~now:1.0
      ~from:{ C.Output.host = "c"; port = 1 }
      (P.Wizard_msg.encode_request (client_request ~wanted requirement))
  with
  | [ C.Output.Udp { data; _ } ] ->
    (match P.Wizard_msg.decode_reply data with
    | Ok reply -> reply.P.Wizard_msg.servers
    | Error e -> Alcotest.failf "reply: %s" e)
  | _ -> Alcotest.fail "expected one reply"

let test_wizard_compile_cache () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"a" ~ip:"1.0.0.1" ~at:0.0 ());
  let wizard =
    C.Wizard.create { C.Wizard.mode = C.Wizard.Centralized; groups = None } db
  in
  (* distinct [wanted] values are distinct result-cache keys, so the
     second request exercises the compile cache on its own *)
  Alcotest.(check (list string)) "wanted 1" [ "a" ]
    (ask wizard ~wanted:1 "host_cpu_free > 0.1\n");
  Alcotest.(check (list string)) "wanted 2, same source" [ "a" ]
    (ask wizard ~wanted:2 "host_cpu_free > 0.1\n");
  Alcotest.(check (pair int int)) "compiled once" (1, 1)
    (C.Wizard.compile_cache_stats wizard);
  (* cache keys are whitespace-trimmed: a re-sent requirement with
     padding still hits *)
  ignore (ask wizard ~wanted:3 "  host_cpu_free > 0.1\n  ");
  Alcotest.(check (pair int int)) "trimmed key hits" (2, 1)
    (C.Wizard.compile_cache_stats wizard);
  (* a disabled cache (capacity 0) still answers correctly *)
  let uncached =
    C.Wizard.create ~compile_cache_capacity:0
      { C.Wizard.mode = C.Wizard.Centralized; groups = None }
      db
  in
  ignore (ask uncached ~wanted:1 "host_cpu_free > 0.1\n");
  ignore (ask uncached ~wanted:1 "host_cpu_free > 0.1\n");
  Alcotest.(check (pair int int)) "capacity 0 never hits" (0, 2)
    (C.Wizard.compile_cache_stats uncached)

let test_wizard_result_cache_and_snapshot () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"a" ~ip:"1.0.0.1" ~at:0.0 ());
  C.Status_db.update_sys db
    (sys_record ~host:"b" ~ip:"1.0.0.2" ~cpu_free:0.1 ~at:0.0 ());
  let wizard =
    C.Wizard.create { C.Wizard.mode = C.Wizard.Centralized; groups = None } db
  in
  let requirement = "host_cpu_free > 0.5\n" in
  Alcotest.(check (list string)) "first answer" [ "a" ]
    (ask wizard ~wanted:2 requirement);
  ignore (ask wizard ~wanted:2 requirement);
  ignore (ask wizard ~wanted:2 requirement);
  (let hits, _ = C.Wizard.result_cache_stats wizard in
   Alcotest.(check int) "repeats served from the result cache" 2 hits);
  Alcotest.(check int) "one snapshot for the whole burst" 1
    (C.Wizard.snapshot_rebuilds wizard);
  (* a write moves the generation: the memoized result must NOT be
     served, and the snapshot is rebuilt exactly once more *)
  C.Status_db.update_sys db
    (sys_record ~host:"c" ~ip:"1.0.0.3" ~at:0.5 ());
  Alcotest.(check (list string)) "write invalidates the cached result"
    [ "a"; "c" ]
    (ask wizard ~wanted:2 requirement);
  Alcotest.(check int) "rebuilt once after the write" 2
    (C.Wizard.snapshot_rebuilds wizard);
  ignore (ask wizard ~wanted:2 requirement);
  Alcotest.(check int) "then memoized again" 2
    (C.Wizard.snapshot_rebuilds wizard)

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

let test_client_seq_matching () =
  let request = client_request "x > 0\n" in
  let reply seq =
    P.Wizard_msg.encode_reply
      { P.Wizard_msg.seq; servers = [ "a"; "b" ]; degraded = false;
        rejected = false }
  in
  (match C.Client.check_reply (fresh_client ()) request (reply request.P.Wizard_msg.seq) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "own seq rejected: %a" C.Client.pp_error e);
  match C.Client.check_reply (fresh_client ()) request (reply (request.P.Wizard_msg.seq + 1)) with
  | Error (C.Client.Wrong_seq _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "foreign seq accepted"

let test_client_option_semantics () =
  let strict = client_request ~wanted:3 ~option:P.Wizard_msg.Strict "x > 0\n" in
  let partial =
    client_request ~wanted:3 ~option:P.Wizard_msg.Accept_partial "x > 0\n"
  in
  let reply (request : P.Wizard_msg.request) n =
    P.Wizard_msg.encode_reply
      {
        P.Wizard_msg.seq = request.P.Wizard_msg.seq;
        servers = List.init n string_of_int;
        degraded = false;
        rejected = false;
      }
  in
  (match C.Client.check_reply (fresh_client ()) strict (reply strict 2) with
  | Error (C.Client.Not_enough { wanted = 3; got = 2 }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "strict must reject shortfall");
  (match C.Client.check_reply (fresh_client ()) partial (reply partial 2) with
  | Ok servers -> Alcotest.(check int) "partial accepts" 2 (List.length servers)
  | Error e -> Alcotest.failf "partial rejected: %a" C.Client.pp_error e);
  match C.Client.check_reply (fresh_client ()) partial (reply partial 0) with
  | Error (C.Client.Not_enough _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty reply must fail even partial"

let test_client_request_validation () =
  let client = C.Client.create ~rng:(Smart_util.Prng.create ~seed:1) () in
  Alcotest.(check bool) "zero wanted" true
    (try
       ignore
         (C.Client.make_request client ~wanted:0
            ~option:P.Wizard_msg.Accept_partial ~requirement:"");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "over limit" true
    (try
       ignore
         (C.Client.make_request client ~wanted:61
            ~option:P.Wizard_msg.Accept_partial ~requirement:"");
       false
     with Invalid_argument _ -> true)

let test_client_lint () =
  (match C.Client.lint_requirement "host_cpu_free > 0.5\ntypo_var > 1\n" with
  | Ok unknown -> Alcotest.(check (list string)) "typo found" [ "typo_var" ] unknown
  | Error e -> Alcotest.failf "lint: %s" e);
  Alcotest.(check bool) "syntax error" true
    (Result.is_error (C.Client.lint_requirement "1 +\n"))

(* ------------------------------------------------------------------ *)
(* Simdriver end-to-end                                                 *)
(* ------------------------------------------------------------------ *)

let deploy ?config () =
  let c = H.Testbed.icpp2005 () in
  let d =
    C.Simdriver.deploy ?config c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:H.Testbed.machine_names
  in
  (c, d)

let test_sim_end_to_end () =
  let _, d = deploy () in
  C.Simdriver.settle ~duration:8.0 d;
  Alcotest.(check int) "all 11 on wizard side" 11
    (C.Status_db.sys_count (C.Simdriver.db_wizard d));
  match
    C.Simdriver.request d ~client:"sagit" ~wanted:2
      ~requirement:"host_cpu_bogomips > 4000\n"
  with
  | Ok servers ->
    Alcotest.(check (list string)) "P4-2.4 pair" [ "dalmatian"; "dione" ]
      (List.sort compare servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e

let test_sim_failure_expiry () =
  let _, d = deploy () in
  C.Simdriver.settle ~duration:8.0 d;
  C.Simdriver.fail_machine d ~host:"dione";
  (* 3 missed 2-second intervals plus slack *)
  C.Simdriver.settle ~duration:10.0 d;
  Alcotest.(check int) "failed server expired" 10
    (C.Status_db.sys_count (C.Simdriver.db_wizard d));
  (match
     C.Simdriver.request d ~client:"sagit" ~wanted:2
       ~requirement:"host_cpu_bogomips > 4000\n"
   with
  | Ok servers ->
    Alcotest.(check (list string)) "only dalmatian remains" [ "dalmatian" ]
      servers
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e);
  (* revival brings it back *)
  C.Simdriver.revive_machine d ~host:"dione";
  C.Simdriver.settle ~duration:6.0 d;
  Alcotest.(check int) "revived" 11
    (C.Status_db.sys_count (C.Simdriver.db_wizard d))

let test_sim_distributed_mode () =
  let config =
    { C.Simdriver.default_config with C.Simdriver.mode = C.Transmitter.Distributed }
  in
  let _, d = deploy ~config () in
  C.Simdriver.settle ~duration:8.0 d;
  (* no standing transmissions in distributed mode... *)
  Alcotest.(check int) "wizard db empty until a request" 0
    (C.Status_db.sys_count (C.Simdriver.db_wizard d));
  (* ...but a request pulls fresh data and gets answered *)
  match
    C.Simdriver.request d ~client:"sagit" ~wanted:2
      ~requirement:"host_cpu_bogomips > 4000\n"
  with
  | Ok servers -> Alcotest.(check int) "answered after pull" 2 (List.length servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e

let test_sim_workload_visible_to_wizard () =
  let c, d = deploy () in
  (* SuperPI on helene: the wizard must see the load and avoid it *)
  let node = H.Cluster.resolve_exn c "helene" in
  ignore
    (H.Machine.add_workload (H.Cluster.machine c node) ~now:(H.Cluster.now c)
       H.Machine.superpi);
  C.Simdriver.settle ~duration:120.0 d;
  match
    C.Simdriver.request d ~client:"sagit" ~wanted:20
      ~requirement:"host_system_load1 < 0.5\nhost_cpu_free > 0.9\n"
  with
  | Ok servers ->
    Alcotest.(check bool) "busy helene excluded" false
      (List.mem "helene" servers);
    Alcotest.(check int) "the other ten qualify" 10 (List.length servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e

let test_probe_tcp_transport () =
  let machine = H.Machine.create (H.Testbed.spec_of_name "helene") in
  let probe =
    C.Probe.create { probe_config with C.Probe.transport = C.Probe.Tcp }
  in
  match C.Probe.tick probe ~now:0.0 ~snapshot:(snapshot_of machine ~now:0.0) with
  | Ok (_, [ C.Output.Stream { dst; data } ]) ->
    Alcotest.(check string) "to monitor" "mon" dst.C.Output.host;
    Alcotest.(check bool) "same report format" true
      (Result.is_ok (P.Report.of_string data))
  | Ok _ -> Alcotest.fail "expected one stream output"
  | Error e -> Alcotest.failf "tick failed: %s" e

(* Two server groups joined by a slow WAN link (Fig 3.8): the wizard on
   group A binds monitor_network_* per group from the monitor mesh. *)
let two_group_world () =
  let c = H.Cluster.create ~seed:31 () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let mon_a = add "mon-a" "10.1.0.1" in
  let a1 = add "a1" "10.1.0.2" in
  let a2 = add "a2" "10.1.0.3" in
  let mon_b = add "mon-b" "10.2.0.1" in
  let b1 = add "b1" "10.2.0.2" in
  let b2 = add "b2" "10.2.0.3" in
  let sw_a = H.Cluster.add_switch c ~name:"sw-a" ~ip:"10.1.0.254" in
  let sw_b = H.Cluster.add_switch c ~name:"sw-b" ~ip:"10.2.0.254" in
  let lan = H.Testbed.lan_conf in
  List.iter (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw_a lan)) [ mon_a; a1; a2 ];
  List.iter (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw_b lan)) [ mon_b; b1; b2 ];
  (* 8 Mbps, 20 ms inter-group WAN link *)
  ignore
    (H.Cluster.link c ~a:sw_a ~b:sw_b
       {
         Smart_net.Link.capacity = 8e6 /. 8.0;
         prop_delay = 10e-3;
         jitter = 50e-6;
         loss = 0.0;
       });
  let d =
    C.Simdriver.deploy_groups c ~wizard_host:"mon-a"
      ~groups:
        [ ("mon-a", [ "a1"; "a2" ]); ("mon-b", [ "b1"; "b2" ]) ]
  in
  (c, d)

let test_sim_multigroup () =
  let _, d = two_group_world () in
  Alcotest.(check int) "two groups" 2 (C.Simdriver.group_count d);
  C.Simdriver.settle ~duration:8.0 d;
  Alcotest.(check int) "all four servers mirrored" 4
    (C.Status_db.sys_count (C.Simdriver.db_wizard d));
  ignore (C.Simdriver.refresh_netmon ~trials:3 d);
  (* the mesh: each monitor published one record about its peer *)
  let records = C.Simdriver.all_netmon_records d in
  Alcotest.(check int) "mesh records from both monitors" 2
    (List.length records);
  List.iter
    (fun (r : P.Records.net_record) ->
      Alcotest.(check int) "one peer each" 1 (List.length r.P.Records.entries))
    records;
  (* high-bandwidth requirement: only the local group qualifies, because
     group B sits behind the 8 Mbps WAN link *)
  (match
     C.Simdriver.request d ~client:"a1" ~wanted:4
       ~requirement:"monitor_network_bw > 50\n"
   with
  | Ok servers ->
    Alcotest.(check (list string)) "local group only" [ "a1"; "a2" ]
      (List.sort compare servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e);
  (* low threshold: everyone qualifies *)
  (match
     C.Simdriver.request d ~client:"a1" ~wanted:4
       ~requirement:"monitor_network_bw > 5\n"
   with
  | Ok servers -> Alcotest.(check int) "all four" 4 (List.length servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e);
  (* delay requirement: the 20 ms WAN RTT excludes group B *)
  match
    C.Simdriver.request d ~client:"a1" ~wanted:4
      ~requirement:"monitor_network_delay < 5\n"
  with
  | Ok servers ->
    Alcotest.(check (list string)) "delay filter" [ "a1"; "a2" ]
      (List.sort compare servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e

let test_sim_tcp_probe_transport () =
  let c = H.Testbed.icpp2005 () in
  let config =
    { C.Simdriver.default_config with
      C.Simdriver.probe_transport = C.Probe.Tcp }
  in
  let d =
    C.Simdriver.deploy ~config c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:H.Testbed.machine_names
  in
  C.Simdriver.settle ~duration:8.0 d;
  Alcotest.(check int) "reports flow over the stream transport" 11
    (C.Status_db.sys_count (C.Simdriver.db_wizard d))

let test_sim_traffic_stats () =
  let _, d = deploy () in
  C.Simdriver.settle ~duration:8.0 d;
  let probe_msgs, probe_bytes = C.Simdriver.traffic_stats d "probe" in
  Alcotest.(check bool) "probes reported" true (probe_msgs >= 11 * 3);
  Alcotest.(check bool) "report size < 256 B" true
    (probe_bytes / probe_msgs < 256);
  let tx_msgs, _ = C.Simdriver.traffic_stats d "transmitter" in
  Alcotest.(check bool) "transmitter pushed" true (tx_msgs > 0)

(* The deployment-wide metrics registry, asserted end-to-end: counters
   move in lockstep with the simulated traffic, and draining the
   deployment (probes silenced, packets delivered) makes sender-side and
   receiver-side counts agree exactly. *)
let test_sim_metrics_end_to_end () =
  let _, d = deploy () in
  C.Simdriver.settle ~duration:8.0 d;
  let m = C.Simdriver.metrics d in
  let cv = Smart_util.Metrics.counter_value m in
  let gv = Smart_util.Metrics.gauge_value m in
  (* one sequential netmon round over the 11 servers *)
  ignore (C.Simdriver.refresh_netmon ~trials:1 d);
  Alcotest.(check int) "one netmon round" 1 (cv "netmon.rounds_total");
  Alcotest.(check int) "11 netmon probes" 11 (cv "netmon.probes_total");
  Alcotest.(check int) "no probe failures" 0 (cv "netmon.probe_failures_total");
  Alcotest.(check (float 1e-9)) "all reachable" 11.0 (gv "netmon.reachable");
  (* three requests: wizard and client counters move in lockstep *)
  for _ = 1 to 3 do
    match
      C.Simdriver.request d ~client:"sagit" ~wanted:2
        ~requirement:"host_cpu_bogomips > 4000\n"
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e
  done;
  Alcotest.(check int) "wizard handled 3" 3 (cv "wizard.requests_total");
  Alcotest.(check int) "client built 3" 3 (cv "client.requests_total");
  Alcotest.(check int) "3 replies accepted" 3 (cv "client.replies_ok_total");
  Alcotest.(check int) "no replies rejected" 0 (cv "client.reply_errors_total");
  (match Smart_util.Metrics.find m "wizard.request_latency_seconds" with
  | Some (Smart_util.Metrics.Histogram h) ->
    Alcotest.(check int) "one latency observation per request" 3
      h.Smart_util.Metrics.count
  | _ -> Alcotest.fail "wizard.request_latency_seconds missing");
  (* receiver-side sanity while traffic flows *)
  Alcotest.(check bool) "frames mirrored" true (cv "receiver.frames_total" > 0);
  Alcotest.(check int) "no decode errors" 0 (cv "receiver.decode_errors_total");
  Alcotest.(check (float 1e-9)) "one transmitter stream" 1.0
    (gv "receiver.transmitters");
  (* silence every probe, let in-flight datagrams land: sender-side and
     monitor-side report counts must then agree exactly *)
  List.iter
    (fun h -> C.Simdriver.fail_machine d ~host:h)
    H.Testbed.machine_names;
  C.Simdriver.settle ~duration:1.0 d;
  Alcotest.(check bool) "probes reported" true (cv "probe.reports_total" > 0);
  Alcotest.(check int) "every probe report reached the sysmon"
    (cv "probe.reports_total")
    (cv "sysmon.reports_total");
  Alcotest.(check int) "no probe errors" 0 (cv "probe.errors_total");
  Alcotest.(check int) "no report parse errors" 0
    (cv "sysmon.parse_errors_total");
  (* three missed intervals later the sweep expires all 11, exactly once *)
  C.Simdriver.settle ~duration:10.0 d;
  Alcotest.(check int) "all 11 expired exactly once" 11
    (cv "sysmon.expired_total");
  Alcotest.(check (float 1e-9)) "hosts gauge drained" 0.0 (gv "sysmon.hosts")

(* Golden equivalence: reply sequences captured from the seed wizard
   (before the status-plane refactor) on the ICPP-2005 testbed.  The
   requests run in this exact order — each one advances virtual time —
   and every list is compared byte-for-byte, order included.  A diff
   here means the refactor changed behaviour, not just structure. *)
let test_sim_golden_selection () =
  let _, d = deploy () in
  C.Simdriver.settle ~duration:8.0 d;
  ignore (C.Simdriver.refresh_netmon ~trials:3 d);
  let req name ~wanted ~expect requirement =
    match C.Simdriver.request d ~client:"sagit" ~wanted ~requirement with
    | Ok servers -> Alcotest.(check (list string)) name expect servers
    | Error e -> Alcotest.failf "%s failed: %a" name C.Client.pp_error e
  in
  req "g1" ~wanted:5 ~expect:[ "dalmatian"; "dione" ]
    "host_cpu_bogomips > 4000\n";
  req "g2" ~wanted:4 ~expect:[ "dalmatian"; "dione"; "calypso"; "helene" ]
    "order_by = host_memory_free\n100 > 0\n";
  req "g3" ~wanted:3 ~expect:[ "calypso"; "dalmatian"; "dione" ]
    "host_cpu_free > 0.5\nuser_preferred_host1 = suna\n";
  req "g4" ~wanted:10
    ~expect:
      [ "calypso"; "dalmatian"; "dione"; "helene"; "lhost"; "mimas";
        "pandora-x"; "phoebe"; "sagit"; "telesto" ]
    "monitor_network_delay < 20\nhost_memory_free >= 50\n";
  req "g5" ~wanted:6
    ~expect:[ "dalmatian"; "pandora-x"; "calypso"; "helene"; "phoebe"; "titan-x" ]
    "order_by = host_cpu_bogomips\nhost_memory_free > 100\nuser_denied_host1 = dione\n";
  (* the scenario is stable across further virtual time *)
  C.Simdriver.settle ~duration:2.0 d;
  req "g1b" ~wanted:5 ~expect:[ "dalmatian"; "dione" ]
    "host_cpu_bogomips > 4000\n"

(* The trace plane end-to-end: one client request must yield one
   connected span tree (client -> wizard and its phases), and the
   standing report traffic must yield the pipeline tree
   (probe -> sysmon -> transmitter -> receiver -> commit), each tree
   tied together across components by nothing but propagated contexts. *)
let test_sim_trace_trees () =
  let module T = Smart_util.Tracelog in
  let _, d = deploy () in
  C.Simdriver.settle ~duration:8.0 d;
  (match
     C.Simdriver.request d ~client:"sagit" ~wanted:2
       ~requirement:"host_cpu_bogomips > 4000\n"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e);
  let entries = T.entries (C.Simdriver.tracelog d) in
  Alcotest.(check bool) "spans recorded" true (entries <> []);
  let by_span = Hashtbl.create 256 in
  List.iter (fun (e : T.entry) -> Hashtbl.replace by_span e.T.span_id e) entries;
  let parent_of (e : T.entry) = Hashtbl.find_opt by_span e.T.parent_id in
  let named name = List.filter (fun (e : T.entry) -> e.T.name = name) entries in
  let the name =
    match named name with
    | [ e ] -> e
    | l -> Alcotest.failf "expected exactly one %s span, got %d" name (List.length l)
  in
  (* --- the client request tree --- *)
  let client = the "client.request" in
  Alcotest.(check bool) "client span opens its own trace" true
    (client.T.trace_id = client.T.span_id);
  let wizard = the "wizard.request" in
  Alcotest.(check int) "wizard joins the client trace" client.T.trace_id
    wizard.T.trace_id;
  Alcotest.(check int) "wizard parented on the client span" client.T.span_id
    wizard.T.parent_id;
  List.iter
    (fun phase ->
      let e = the phase in
      Alcotest.(check int)
        (phase ^ " in the client trace")
        client.T.trace_id e.T.trace_id;
      Alcotest.(check int)
        (phase ^ " parented on wizard.request")
        wizard.T.span_id e.T.parent_id)
    [ "wizard.parse"; "wizard.snapshot"; "wizard.select"; "wizard.reply" ];
  (* every span of the request trace is closed with a real duration *)
  List.iter
    (fun (e : T.entry) ->
      if e.T.trace_id = client.T.trace_id then
        Alcotest.(check bool) (e.T.name ^ " closed") false
          (Float.is_nan e.T.duration))
    entries;
  (* --- the report pipeline tree --- *)
  let commits = named "receiver.commit" in
  Alcotest.(check bool) "commits recorded" true (commits <> []);
  let commit = List.nth commits (List.length commits - 1) in
  let step name entry =
    match parent_of entry with
    | Some p ->
      Alcotest.(check string) ("parent is " ^ name) name p.T.name;
      Alcotest.(check int) (name ^ " in the same trace") entry.T.trace_id
        p.T.trace_id;
      p
    | None -> Alcotest.failf "%s has no retained parent" entry.T.name
  in
  let frame = step "receiver.frame" commit in
  let push = step "transmitter.push" frame in
  let ingest = step "sysmon.ingest" push in
  let tick = step "probe.tick" ingest in
  Alcotest.(check bool) "probe.tick is the root" true
    (tick.T.trace_id = tick.T.span_id && tick.T.parent_id = 0);
  (* the two trees are distinct traces *)
  Alcotest.(check bool) "request and report traces distinct" true
    (client.T.trace_id <> tick.T.trace_id)

(* ------------------------------------------------------------------ *)
(* Failure recovery                                                     *)
(* ------------------------------------------------------------------ *)

let test_transmitter_resend_backoff () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~at:0.0 ());
  let m = Smart_util.Metrics.create () in
  let tx =
    C.Transmitter.create ~metrics:m ~monitor_name:"mon" ~resend_capacity:2
      ~backoff:
        (Smart_util.Backoff.policy ~base:1.0 ~multiplier:2.0 ~max_delay:8.0
           ~jitter:0.0 ())
      {
        C.Transmitter.mode = C.Transmitter.Centralized;
        order = P.Endian.Little;
        receiver = { C.Output.host = "wiz"; port = P.Ports.receiver };
      }
      db
  in
  (* a failed push lands in the resend queue and arms the backoff *)
  C.Transmitter.note_send_failure tx ~now:0.0 ~data:"frame-1";
  Alcotest.(check int) "queued" 1 (C.Transmitter.resend_queue_length tx);
  Alcotest.(check bool) "backing off" true
    (C.Transmitter.backing_off tx ~now:0.5);
  Alcotest.(check int) "tick muted during backoff" 0
    (List.length (C.Transmitter.tick tx ~now:0.5));
  (* past the delay: the queued frame leads the next tick's outputs *)
  (match C.Transmitter.tick tx ~now:1.5 with
  | C.Output.Stream { data; _ } :: _ ->
    Alcotest.(check string) "resent first" "frame-1" data
  | _ -> Alcotest.fail "expected the resend stream first");
  Alcotest.(check int) "resend counted" 1 (C.Transmitter.resends tx);
  Alcotest.(check int) "queue drained" 0 (C.Transmitter.resend_queue_length tx);
  (* the queue is bounded: oldest frames are dropped, and metered *)
  C.Transmitter.note_send_failure tx ~now:2.0 ~data:"a";
  C.Transmitter.note_send_failure tx ~now:2.0 ~data:"b";
  C.Transmitter.note_send_failure tx ~now:2.0 ~data:"c";
  Alcotest.(check int) "capacity bound" 2 (C.Transmitter.resend_queue_length tx);
  Alcotest.(check int) "failures metered" 4
    (Smart_util.Metrics.counter_value m "transmitter.send_failures_total");
  Alcotest.(check int) "drop metered" 1
    (Smart_util.Metrics.counter_value m "transmitter.resend_dropped_total");
  (* a successful send resets the schedule *)
  C.Transmitter.note_send_ok tx;
  Alcotest.(check bool) "reset after success" false
    (C.Transmitter.backing_off tx ~now:2.1)

let test_client_duplicate_suppression () =
  let m = Smart_util.Metrics.create () in
  let client =
    C.Client.create ~metrics:m ~rng:(Smart_util.Prng.create ~seed:5) ()
  in
  let request =
    C.Client.make_request client ~wanted:1
      ~option:P.Wizard_msg.Accept_partial ~requirement:"host_cpu_free > 0\n"
  in
  let reply =
    P.Wizard_msg.encode_reply
      {
        P.Wizard_msg.seq = request.P.Wizard_msg.seq;
        servers = [ "a" ];
        degraded = false;
        rejected = false;
      }
  in
  Alcotest.(check bool) "first reply is fresh" false
    (C.Client.is_duplicate_reply client reply);
  (match C.Client.check_reply client request reply with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reply rejected: %a" C.Client.pp_error e);
  (* a retransmitted request's late second answer is now recognised *)
  Alcotest.(check bool) "late duplicate flagged" true
    (C.Client.is_duplicate_reply client reply);
  Alcotest.(check int) "duplicate metered" 1
    (Smart_util.Metrics.counter_value m "client.duplicate_replies_total");
  Alcotest.(check bool) "garbage is not a duplicate" false
    (C.Client.is_duplicate_reply client "junk")

let test_wizard_degraded_mode () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"a" ~ip:"1.0.0.1" ~at:0.0 ());
  let now = ref 0.0 in
  let m = Smart_util.Metrics.create () in
  let wizard =
    C.Wizard.create ~metrics:m
      ~clock:(fun () -> !now)
      ~staleness_threshold:5.0
      { C.Wizard.mode = C.Wizard.Centralized; groups = None }
      db
  in
  let ask () =
    let request = client_request "host_cpu_free > 0.5\n" in
    match
      C.Wizard.handle_request wizard ~now:!now
        ~from:{ C.Output.host = "c"; port = 1 }
        (P.Wizard_msg.encode_request request)
    with
    | [ C.Output.Udp { data; _ } ] ->
      (match P.Wizard_msg.decode_reply data with
      | Ok r -> r
      | Error e -> Alcotest.failf "reply: %s" e)
    | _ -> Alcotest.fail "expected one reply"
  in
  (* a database never fed through the receiver is not stale *)
  now := 100.0;
  Alcotest.(check bool) "never fed, not degraded" false
    (ask ()).P.Wizard_msg.degraded;
  C.Wizard.note_update wizard;
  now := 103.0;
  Alcotest.(check bool) "fresh feed" false (ask ()).P.Wizard_msg.degraded;
  (* feed quiet past the threshold: still answered, flagged stale *)
  now := 106.0;
  let r = ask () in
  Alcotest.(check bool) "stale feed degrades" true r.P.Wizard_msg.degraded;
  Alcotest.(check (list string)) "still answers from the last snapshot"
    [ "a" ] r.P.Wizard_msg.servers;
  Alcotest.(check int) "degraded metered" 1
    (Smart_util.Metrics.counter_value m "wizard.degraded_replies_total");
  C.Wizard.note_update wizard;
  Alcotest.(check bool) "recovers when the feed resumes" false
    (ask ()).P.Wizard_msg.degraded

let test_sysmon_quarantine_flapping () =
  let db = C.Status_db.create () in
  let m = Smart_util.Metrics.create () in
  let sysmon =
    C.Sysmon.create ~metrics:m
      ~config:
        {
          C.Sysmon.probe_interval = 1.0;
          missed_intervals = 1;
          flap_threshold = 2;
          clean_intervals = 3;
        }
      db
  in
  let data = P.Report.to_string (report ()) in
  let ingest now =
    match C.Sysmon.handle_report sysmon ~now data with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "report rejected: %s" e
  in
  (* two expire/re-register whipsaws reach the flap threshold *)
  ingest 0.0;
  Alcotest.(check int) "first expiry" 1 (C.Sysmon.sweep sysmon ~now:3.0);
  ingest 3.5;
  Alcotest.(check int) "second expiry" 1 (C.Sysmon.sweep sysmon ~now:7.0);
  Alcotest.(check bool) "quarantined" true
    (C.Sysmon.is_quarantined sysmon ~host:"helene");
  Alcotest.(check int) "quarantine metered" 1
    (Smart_util.Metrics.counter_value m "sysmon.quarantined_total");
  (* while quarantined, reports are counted but not inserted *)
  ingest 8.0;
  ingest 9.0;
  ingest 10.0;
  Alcotest.(check int) "db stays empty" 0 (C.Status_db.sys_count db);
  Alcotest.(check int) "quarantined reports metered" 3
    (Smart_util.Metrics.counter_value m "sysmon.quarantined_reports_total");
  (* a clean streak spanning clean_intervals probe periods re-admits *)
  ingest 11.0;
  Alcotest.(check bool) "re-admitted" false
    (C.Sysmon.is_quarantined sysmon ~host:"helene");
  Alcotest.(check int) "back in the database" 1 (C.Status_db.sys_count db);
  Alcotest.(check int) "re-admission metered" 1
    (Smart_util.Metrics.counter_value m "sysmon.readmitted_total")

(* Satellite: the §4.1 three-missed-intervals expiry under a lossy
   substrate — reports ride 5%-loss links, the server goes silent, is
   expired, and re-registers once the silence lifts. *)
let test_sim_lossy_expiry_and_rereg () =
  let c = H.Cluster.create ~seed:77 () in
  let add name = H.Cluster.add_machine c (H.Testbed.spec_of_name name) in
  let sagit = add "sagit" in
  let mon = add "dalmatian" in
  let helene = add "helene" in
  let dione = add "dione" in
  let lossy = { H.Testbed.lan_conf with Smart_net.Link.loss = 0.05 } in
  ignore (H.Cluster.link c ~a:sagit ~b:mon H.Testbed.lan_conf);
  ignore (H.Cluster.link c ~a:mon ~b:helene lossy);
  ignore (H.Cluster.link c ~a:mon ~b:dione lossy);
  let d =
    C.Simdriver.deploy c ~monitor:"dalmatian" ~wizard_host:"dalmatian"
      ~servers:[ "helene"; "dione" ]
  in
  C.Simdriver.settle ~duration:8.0 d;
  Alcotest.(check int) "both registered despite loss" 2
    (C.Status_db.sys_count (C.Simdriver.db_wizard d));
  (* total silence: three missed 2 s probe intervals expire the server *)
  C.Simdriver.set_host_partitioned d ~host:"helene" true;
  C.Simdriver.settle ~duration:10.0 d;
  Alcotest.(check int) "expired after 3 missed intervals" 1
    (C.Status_db.sys_count (C.Simdriver.db_wizard d));
  Alcotest.(check bool) "expiry metered" true
    (Smart_util.Metrics.counter_value (C.Simdriver.metrics d)
       "sysmon.expired_total"
    >= 1);
  (* the silence lifts: the next surviving report re-registers it *)
  C.Simdriver.set_host_partitioned d ~host:"helene" false;
  C.Simdriver.settle ~duration:8.0 d;
  Alcotest.(check int) "re-registered" 2
    (C.Status_db.sys_count (C.Simdriver.db_wizard d))

(* The acceptance chaos scenario: crash the wizard-feed transmitter
   mid-stream, partition the other group's monitor (overlapping, so the
   wizard's feed goes fully quiet and degraded mode engages), 2% frame
   corruption throughout — while a client fires 100 requests.  Both
   same-seed runs must produce byte-identical metrics and traces. *)
let chaos_world seed =
  let c = H.Cluster.create ~seed () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let wiz = add "wiz" "10.0.0.1" in
  let cli = add "cli" "10.0.0.2" in
  let mon_a = add "mon-a" "10.1.0.1" in
  let a1 = add "a1" "10.1.0.2" in
  let a2 = add "a2" "10.1.0.3" in
  let mon_b = add "mon-b" "10.2.0.1" in
  let b1 = add "b1" "10.2.0.2" in
  let b2 = add "b2" "10.2.0.3" in
  let sw_a = H.Cluster.add_switch c ~name:"sw-a" ~ip:"10.1.0.254" in
  let sw_b = H.Cluster.add_switch c ~name:"sw-b" ~ip:"10.2.0.254" in
  let lan = H.Testbed.lan_conf in
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw_a lan))
    [ wiz; cli; mon_a; a1; a2 ];
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw_b lan))
    [ mon_b; b1; b2 ];
  ignore (H.Cluster.link c ~a:sw_a ~b:sw_b lan);
  let config =
    {
      C.Simdriver.default_config with
      C.Simdriver.transmit_interval = 0.5;
      frame_crc = true;
      wizard_staleness = 3.0;
    }
  in
  let d =
    C.Simdriver.deploy_groups ~config c ~wizard_host:"wiz"
      ~groups:[ ("mon-a", [ "a1"; "a2" ]); ("mon-b", [ "b1"; "b2" ]) ]
  in
  (c, d)

let run_chaos seed =
  let c, d = chaos_world seed in
  C.Simdriver.settle ~duration:8.0 d;
  let base = H.Cluster.now c in
  let module F = Smart_sim.Faults in
  ignore
    (C.Simdriver.install_faults d
       [
         { F.at = base +. 0.1; action = F.Corrupt_frames 0.02 };
         { F.at = base +. 5.0; action = F.Crash_node "mon-a" };
         { F.at = base +. 8.0; action = F.Partition_host "mon-b" };
         { F.at = base +. 18.0; action = F.Restart_node "mon-a" };
         { F.at = base +. 22.0; action = F.Heal_host "mon-b" };
       ]);
  let ok = ref 0 and total = 100 in
  for _ = 1 to total do
    C.Simdriver.settle ~duration:0.4 d;
    match
      C.Simdriver.request d ~client:"cli" ~wanted:2
        ~requirement:"host_cpu_free > 0.1\n"
    with
    | Ok _ -> incr ok
    | Error _ -> ()
  done;
  C.Simdriver.settle ~duration:10.0 d;
  let m = C.Simdriver.metrics d in
  let db = C.Simdriver.db_wizard d in
  (!ok, total, m, db, Smart_util.Metrics.to_text m, C.Simdriver.trace_json d)

let test_sim_chaos_acceptance () =
  let ok, total, m, db, metrics_text, trace_json = run_chaos 3 in
  Alcotest.(check bool)
    (Printf.sprintf "at least 99%% requests answered (%d/%d)" ok total)
    true
    (float_of_int ok >= 0.99 *. float_of_int total);
  let cv name = Smart_util.Metrics.counter_value m name in
  (* corruption was really injected and really survived: frames were
     damaged in flight, the receiver resynced past them, nothing died *)
  Alcotest.(check bool) "frames corrupted in flight" true
    (cv "faults.corrupted_messages_total" >= 1);
  Alcotest.(check bool) "receiver resynced past damage" true
    (cv "receiver.resyncs_total" >= 1);
  Alcotest.(check int) "no record-level decode failures" 0
    (cv "receiver.decode_errors_total");
  Alcotest.(check bool) "degraded replies while the feed was dark" true
    (cv "wizard.degraded_replies_total" >= 1);
  Alcotest.(check bool) "faults all fired" true (cv "faults.injected_total" >= 5);
  Alcotest.(check int) "mirror recovered after heal" 4
    (C.Status_db.sys_count db);
  (* same seed, same chaos: the whole observable surface is identical *)
  let ok2, _, _, _, metrics_text2, trace_json2 = run_chaos 3 in
  Alcotest.(check int) "same successes" ok ok2;
  Alcotest.(check string) "metrics byte-identical" metrics_text metrics_text2;
  Alcotest.(check string) "trace byte-identical" trace_json trace_json2

(* ------------------------------------------------------------------ *)
(* Federation                                                           *)
(* ------------------------------------------------------------------ *)

(* Populate a status database with a slice of the diff-server pool
   (hosts s<i+1> for the given indices), mirroring exactly what the
   flat differential property above feeds the reference. *)
let build_diff_db ~monitor servers indices =
  let db = C.Status_db.create () in
  List.iter
    (fun i ->
      let s = servers.(i) in
      C.Status_db.update_sys db
        (sys_record
           ~host:(Printf.sprintf "s%d" (i + 1))
           ~ip:(Printf.sprintf "10.0.0.%d" (i + 1))
           ~cpu_free:s.ds_cpu_free ~load1:s.ds_load1 ~mem_free:s.ds_mem_free
           ~bogomips:s.ds_bogomips ~at:1.0 ()))
    indices;
  let net_entries =
    List.concat_map
      (fun i ->
        match servers.(i).ds_net with
        | Some (delay, bandwidth) ->
          [
            {
              P.Records.peer = Printf.sprintf "s%d" (i + 1);
              delay;
              bandwidth;
              measured_at = 1.0;
            };
          ]
        | None -> [])
      indices
  in
  if net_entries <> [] then
    C.Status_db.update_net db { P.Records.monitor; entries = net_entries };
  let sec_entries =
    List.concat_map
      (fun i ->
        match servers.(i).ds_sec with
        | Some level ->
          [ { P.Records.host = Printf.sprintf "s%d" (i + 1); level } ]
        | None -> [])
      indices
  in
  if sec_entries <> [] then
    C.Status_db.replace_sec db { P.Records.entries = sec_entries };
  db

(* The federation's core claim: partition the servers into shards, run
   the scored selection per shard, merge — and you get exactly the flat
   columnar selection over the union, regardless of shard count and of
   the order the shard replies are merged in. *)
let prop_fed_merge_matches_flat =
  QCheck.Test.make ~name:"shard fan-out + merge equals flat selection"
    ~count:400
    (QCheck.pair arbitrary_selection_case (QCheck.int_range 1 3))
    (fun ((servers, source, wanted), nshards) ->
      match Smart_lang.Requirement.compile_fast source with
      | Error _ -> false
      | Ok fast ->
        let n = Array.length servers in
        let all = List.init n (fun i -> i) in
        let flat_db = build_diff_db ~monitor:"mon" servers all in
        let flat_view =
          C.Status_db.columns flat_db ~net_for:(fun host ->
              C.Status_db.net_entry_for flat_db ~target:host)
        in
        let flat =
          C.Selection.select_columns (C.Selection.scratch ()) ~fast
            ~view:flat_view ~wanted
        in
        let shard_lists =
          List.init nshards (fun k ->
              let indices = List.filter (fun i -> i mod nshards = k) all in
              let db =
                build_diff_db ~monitor:(Printf.sprintf "mon-%d" k) servers
                  indices
              in
              let view =
                C.Status_db.columns db ~net_for:(fun host ->
                    C.Status_db.net_entry_for db ~target:host)
              in
              (* a fresh scratch and compile per shard, as each regional
                 wizard has its own *)
              match Smart_lang.Requirement.compile_fast source with
              | Error _ -> assert false
              | Ok fast ->
                ( Printf.sprintf "shard-%d" k,
                  C.Selection.select_scored (C.Selection.scratch ()) ~fast
                    ~view ~wanted ))
        in
        let merged = C.Selection.merge_candidates ~wanted shard_lists in
        let merged_rev =
          C.Selection.merge_candidates ~wanted (List.rev shard_lists)
        in
        List.equal String.equal flat merged
        && List.equal String.equal flat merged_rev)

(* A shard wizard answering a subquery: the reply carries the scored
   candidates of its local selection, stamped with shard name and
   generation. *)
let test_wizard_subquery () =
  let db = C.Status_db.create () in
  List.iter
    (fun (host, ip, mem) ->
      C.Status_db.update_sys db
        (sys_record ~host ~ip ~mem_free:mem ~at:1.0 ()))
    [ ("s1", "10.0.0.1", 50.0); ("s2", "10.0.0.2", 150.0);
      ("s3", "10.0.0.3", 100.0) ];
  let wizard =
    C.Wizard.create ~shard_name:"region-a"
      { C.Wizard.mode = C.Wizard.Centralized; groups = None }
      db
  in
  let query =
    {
      P.Fed_msg.seq = 9;
      wanted = 2;
      requirement = "order_by = host_memory_free\n";
      trace = Smart_util.Tracelog.root;
    }
  in
  let from = { C.Output.host = "root"; port = P.Ports.fed } in
  match
    C.Wizard.handle_subquery wizard ~from (P.Fed_msg.encode_query query)
  with
  | [ C.Output.Udp { dst; data } ] ->
    Alcotest.(check string) "reply to the root" "root" dst.C.Output.host;
    Alcotest.(check int) "on the fed port" P.Ports.fed dst.C.Output.port;
    (match P.Fed_msg.decode_reply data with
    | Error e -> Alcotest.failf "reply decode failed: %s" e
    | Ok reply ->
      Alcotest.(check int) "seq echoed" 9 reply.P.Fed_msg.seq;
      Alcotest.(check string) "shard stamped" "region-a" reply.P.Fed_msg.shard;
      Alcotest.(check bool) "fresh" false reply.P.Fed_msg.degraded;
      Alcotest.(check (list string)) "best two by memory" [ "s2"; "s3" ]
        (List.map (fun (c : P.Fed_msg.candidate) -> c.P.Fed_msg.host)
           reply.P.Fed_msg.candidates);
      List.iter
        (fun (c : P.Fed_msg.candidate) ->
          Alcotest.(check int) "non-preferred" (-1) c.P.Fed_msg.rank)
        reply.P.Fed_msg.candidates;
      Alcotest.(check (list (float 1e-9))) "order keys carried" [ 150.0; 100.0 ]
        (List.map (fun (c : P.Fed_msg.candidate) -> c.P.Fed_msg.key)
           reply.P.Fed_msg.candidates);
      Alcotest.(check int) "counted" 1 (C.Wizard.subqueries_handled wizard))
  | _ -> Alcotest.fail "expected one UDP reply"

(* The root forwards canonical requirement text, so any client spelling
   of a requirement the shard has already compiled hits the shard-side
   compile cache — the regression the canonicalization fix pins. *)
let test_wizard_subquery_cache_key () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"s1" ~ip:"10.0.0.1" ~at:1.0 ());
  let wizard =
    C.Wizard.create ~shard_name:"region-a"
      { C.Wizard.mode = C.Wizard.Centralized; groups = None }
      db
  in
  let subquery source =
    let query =
      {
        P.Fed_msg.seq = 1;
        wanted = 1;
        requirement = Smart_lang.Requirement.canonical source;
        trace = Smart_util.Tracelog.root;
      }
    in
    ignore
      (C.Wizard.handle_subquery wizard
         ~from:{ C.Output.host = "root"; port = P.Ports.fed }
         (P.Fed_msg.encode_query query))
  in
  (* two formatting variants of one requirement, canonicalized as the
     root does before fanning out *)
  subquery "host_cpu_free>0.50000\n";
  subquery "host_cpu_free   >   0.5\n";
  let hits, misses = C.Wizard.compile_cache_stats wizard in
  Alcotest.(check int) "one compile" 1 misses;
  Alcotest.(check int) "variant spelling hits" 1 hits

(* Federated world: two shards of three servers each, a root above
   them.  All machines are helene-class, so every server answers a
   cpu_free requirement identically. *)
let fed_world ?(config = C.Simdriver.default_config) seed =
  let c = H.Cluster.create ~seed () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let root = add "root" "10.0.0.1" in
  let cli = add "cli" "10.0.0.2" in
  let shard_a = add "shard-a" "10.1.0.1" in
  let mon_a = add "mon-a" "10.1.0.2" in
  let a1 = add "a1" "10.1.0.3" in
  let a2 = add "a2" "10.1.0.4" in
  let a3 = add "a3" "10.1.0.5" in
  let shard_b = add "shard-b" "10.2.0.1" in
  let mon_b = add "mon-b" "10.2.0.2" in
  let b1 = add "b1" "10.2.0.3" in
  let b2 = add "b2" "10.2.0.4" in
  let b3 = add "b3" "10.2.0.5" in
  let sw = H.Cluster.add_switch c ~name:"sw" ~ip:"10.0.0.254" in
  let lan = H.Testbed.lan_conf in
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw lan))
    [ root; cli; shard_a; mon_a; a1; a2; a3; shard_b; mon_b; b1; b2; b3 ];
  let d =
    C.Simdriver.deploy_federation ~config c ~root_host:"root"
      ~shards:
        [
          ("shard-a", [ ("mon-a", [ "a1"; "a2"; "a3" ]) ]);
          ("shard-b", [ ("mon-b", [ "b1"; "b2"; "b3" ]) ]);
        ]
  in
  (c, d)

let test_sim_federation_end_to_end () =
  let _, d = fed_world 11 in
  C.Simdriver.settle ~duration:8.0 d;
  let fed =
    match C.Simdriver.federation d with
    | Some f -> f
    | None -> Alcotest.fail "federation state missing"
  in
  (* each shard mirrors its own servers; the root database holds none *)
  List.iter
    (fun (s : C.Simdriver.fed_shard) ->
      Alcotest.(check int)
        (s.C.Simdriver.shard_host ^ " mirrors its three servers") 3
        (C.Status_db.sys_count s.C.Simdriver.shard_db))
    fed.C.Simdriver.fed_shards;
  Alcotest.(check int) "root mirrors no raw records" 0
    (C.Status_db.sys_count (C.Simdriver.db_wizard d));
  (* digest uplinks reached the root *)
  Alcotest.(check int) "digests from both shards" 2
    (C.Fed_root.digest_count fed.C.Simdriver.root);
  Alcotest.(check bool) "digest frames counted" true
    (C.Receiver.digests_handled (C.Simdriver.receiver_component d) >= 2);
  (* a client request is fanned out, merged, and covers both shards *)
  (match
     C.Simdriver.request d ~client:"cli" ~wanted:6
       ~requirement:"host_cpu_free > 0.1\n"
   with
  | Ok servers ->
    Alcotest.(check (list string)) "all six servers, merged in host order"
      [ "a1"; "a2"; "a3"; "b1"; "b2"; "b3" ]
      servers
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e);
  Alcotest.(check int) "one subquery per shard"
    2
    (C.Fed_root.subqueries_sent fed.C.Simdriver.root);
  Alcotest.(check int) "both shards replied" 2
    (C.Fed_root.shard_replies fed.C.Simdriver.root);
  Alcotest.(check int) "no timeouts" 0 (C.Fed_root.timeouts fed.C.Simdriver.root);
  List.iter
    (fun (s : C.Simdriver.fed_shard) ->
      Alcotest.(check int)
        (s.C.Simdriver.shard_host ^ " answered one subquery") 1
        (C.Wizard.subqueries_handled s.C.Simdriver.shard_wizard))
    fed.C.Simdriver.fed_shards;
  (* an order_by requirement merges by key across shards *)
  match
    C.Simdriver.request d ~client:"cli" ~wanted:4
      ~requirement:"host_cpu_free > 0.1\norder_by = host_memory_free\n"
  with
  | Ok servers -> Alcotest.(check int) "ranked four" 4 (List.length servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e

(* Digest routing: a requirement no shard can satisfy is answered at
   the root without any fan-out. *)
let test_sim_federation_routing () =
  let _, d = fed_world 12 in
  C.Simdriver.settle ~duration:8.0 d;
  let fed =
    match C.Simdriver.federation d with
    | Some f -> f
    | None -> Alcotest.fail "federation state missing"
  in
  (* helene-class bogomips is ~3394: provably unsatisfiable everywhere.
     The root answers empty without fanning out, and the client reports
     the shortfall. *)
  (match
     C.Simdriver.request d ~option:P.Wizard_msg.Accept_partial ~client:"cli"
       ~wanted:2 ~requirement:"host_cpu_bogomips > 100000\n"
   with
  | Ok servers ->
    Alcotest.failf "expected an empty answer, got %d servers"
      (List.length servers)
  | Error (C.Client.Not_enough { got; _ }) ->
    Alcotest.(check int) "empty answer" 0 got
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e);
  Alcotest.(check int) "both shards skipped, no subqueries" 0
    (C.Fed_root.subqueries_sent fed.C.Simdriver.root);
  Alcotest.(check int) "skips counted" 2
    (C.Fed_root.shards_skipped fed.C.Simdriver.root);
  (* a satisfiable requirement still fans out to both *)
  (match
     C.Simdriver.request d ~client:"cli" ~wanted:6
       ~requirement:"host_cpu_bogomips > 1000\n"
   with
  | Ok servers -> Alcotest.(check int) "all six" 6 (List.length servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e);
  Alcotest.(check int) "fan-out resumed" 2
    (C.Fed_root.subqueries_sent fed.C.Simdriver.root)

(* A shard cut off mid-request: the fan-out deadline releases a partial
   merge, flagged degraded, instead of stalling the client. *)
let test_sim_federation_partial () =
  let _, d = fed_world 13 in
  C.Simdriver.settle ~duration:8.0 d;
  let fed =
    match C.Simdriver.federation d with
    | Some f -> f
    | None -> Alcotest.fail "federation state missing"
  in
  C.Simdriver.set_host_partitioned d ~host:"shard-b" true;
  (match
     C.Simdriver.request d ~client:"cli" ~wanted:6
       ~requirement:"host_cpu_free > 0.1\n"
   with
  | Ok servers ->
    Alcotest.(check (list string)) "shard-a's servers still answered"
      [ "a1"; "a2"; "a3" ] servers
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e);
  Alcotest.(check int) "deadline released the merge" 1
    (C.Fed_root.timeouts fed.C.Simdriver.root);
  Alcotest.(check bool) "reply flagged degraded" true
    (C.Fed_root.degraded_replies fed.C.Simdriver.root >= 1);
  (* heal: the next request is whole again *)
  C.Simdriver.set_host_partitioned d ~host:"shard-b" false;
  C.Simdriver.settle ~duration:4.0 d;
  match
    C.Simdriver.request d ~client:"cli" ~wanted:6
      ~requirement:"host_cpu_free > 0.1\n"
  with
  | Ok servers -> Alcotest.(check int) "all six back" 6 (List.length servers)
  | Error e -> Alcotest.failf "request failed: %a" C.Client.pp_error e

(* Same seed, same federated world: the whole observable surface —
   metrics text and trace JSON — must be byte-identical. *)
let run_federation_determinism seed =
  let _, d = fed_world seed in
  C.Simdriver.settle ~duration:8.0 d;
  let reqs =
    List.map
      (fun requirement ->
        match C.Simdriver.request d ~client:"cli" ~wanted:4 ~requirement with
        | Ok servers -> servers
        | Error _ -> [])
      [
        "host_cpu_free > 0.1\n";
        "order_by = host_memory_free\n";
        "host_cpu_bogomips > 100000\n";
      ]
  in
  C.Simdriver.settle ~duration:2.0 d;
  ( reqs,
    Smart_util.Metrics.to_text (C.Simdriver.metrics d),
    C.Simdriver.trace_json d )

let test_sim_federation_determinism () =
  let r1, m1, t1 = run_federation_determinism 17 in
  let r2, m2, t2 = run_federation_determinism 17 in
  Alcotest.(check (list (list string))) "same answers" r1 r2;
  Alcotest.(check string) "metrics byte-identical" m1 m2;
  Alcotest.(check string) "trace byte-identical" t1 t2

(* ------------------------------------------------------------------ *)
(* Sketch plane and control loops (DESIGN.md §14)                       *)
(* ------------------------------------------------------------------ *)

module Sk = Smart_util.Sketch

(* The documented acceptance bound: the value the merged sketch returns
   for [p] must have a true rank in the exact sorted union within the
   sketch's [err_weight] of the nearest-rank target. *)
let rank_within union s p =
  let arr = Array.of_list union in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 0 then true
  else begin
    let v = Sk.quantile s p in
    let err = Sk.err_weight s in
    let target =
      let r = int_of_float (Float.ceil (p *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let below = ref 0 and upto = ref 0 in
    Array.iter
      (fun x ->
        if Float.compare x v < 0 then incr below;
        if Float.compare x v <= 0 then incr upto)
      arr;
    (* ranks occupied by [v] overlap [target - err, target + err] *)
    !below + 1 <= target + err && target - err <= !upto
  end

let sketch_root ~metrics shard_names =
  C.Fed_root.create ~metrics
    {
      C.Fed_root.shards =
        List.map
          (fun name ->
            { C.Fed_root.name;
              addr = { C.Output.host = name; port = P.Ports.fed } })
          shard_names;
      fanout_timeout = 1.0;
      routing = false;
    }

let shard_sketch_of ~seed values =
  let s = Sk.create ~k:32 ~rng:(Smart_util.Prng.create ~seed) () in
  List.iter (Sk.observe s) values;
  s

(* The ISSUE acceptance pin: a root merging >= 4 shards answers p99 (and
   the other served quantiles) within the merged sketch's rank-error
   bound of the exact percentile over the union of all shards' streams,
   and the [federation.fed_latency_*] gauges mirror the merged sketch. *)
let prop_fed_root_quantiles_track_union =
  QCheck.Test.make
    ~name:"root quantiles over four shards track the union"
    ~count:150
    QCheck.(
      quad
        (list_of_size Gen.(int_range 1 250) (float_range 0.0 10.0))
        (list_of_size Gen.(int_range 1 250) (float_range 0.0 10.0))
        (list_of_size Gen.(int_range 0 250) (float_range 0.0 10.0))
        (list_of_size Gen.(int_range 0 250) (float_range 0.0 10.0)))
    (fun (xs, ys, zs, ws) ->
      let m = Smart_util.Metrics.create () in
      let root = sketch_root ~metrics:m [ "s1"; "s2"; "s3"; "s4" ] in
      List.iteri
        (fun i values ->
          C.Fed_root.note_sketches root
            {
              P.Sketch_msg.shard = Printf.sprintf "s%d" (i + 1);
              entries =
                [ (C.Fed_root.latency_metric,
                   shard_sketch_of ~seed:(i + 1) values) ];
            })
        [ xs; ys; zs; ws ];
      match C.Fed_root.merged_sketch root C.Fed_root.latency_metric with
      | None -> false
      | Some merged ->
        let union = xs @ ys @ zs @ ws in
        Sk.count merged = List.length union
        && C.Fed_root.sketch_shard_count root = 4
        && List.for_all (rank_within union merged) [ 0.5; 0.95; 0.99 ]
        && Float.compare
             (Smart_util.Metrics.gauge_value m "federation.fed_latency_p99_s")
             (Sk.quantile merged 0.99)
           = 0
        && Float.compare
             (Smart_util.Metrics.gauge_value m "federation.fed_latency_p50_s")
             (Sk.quantile merged 0.5)
           = 0)

let test_fed_root_latest_batch_wins () =
  let m = Smart_util.Metrics.create () in
  let root = sketch_root ~metrics:m [ "s1"; "s2" ] in
  let batch shard values seed =
    C.Fed_root.note_sketches root
      {
        P.Sketch_msg.shard;
        entries = [ (C.Fed_root.latency_metric, shard_sketch_of ~seed values) ];
      }
  in
  batch "s1" [ 1.0; 2.0; 3.0 ] 1;
  batch "s2" [ 10.0 ] 2;
  batch "s1" [ 4.0 ] 3;
  (* the second s1 batch replaced the first: 1 + 1 observations *)
  (match C.Fed_root.merged_sketch root C.Fed_root.latency_metric with
  | Some merged ->
    Alcotest.(check int) "latest batch per shard wins" 2 (Sk.count merged);
    Alcotest.(check (float 1e-9)) "max from both shards" 10.0
      (Sk.max_value merged)
  | None -> Alcotest.fail "merged sketch missing");
  Alcotest.(check int) "two shards reporting" 2
    (C.Fed_root.sketch_shard_count root);
  Alcotest.(check int) "updates metered" 3
    (Smart_util.Metrics.counter_value m "federation.sketch_updates_total")

let test_probe_adaptive_interval () =
  let machine = H.Machine.create (H.Testbed.spec_of_name "helene") in
  let plain = C.Probe.create probe_config in
  Alcotest.(check bool) "non-adaptive probe has no interval" true
    (C.Probe.report_interval plain = None);
  let m = Smart_util.Metrics.create () in
  let probe =
    C.Probe.create ~metrics:m
      ~adaptive:
        { C.Probe.base_interval = 1.0; min_factor = 0.5; max_factor = 2.0;
          min_samples = 3 }
      probe_config
  in
  for i = 0 to 5 do
    let now = float_of_int i in
    ignore (C.Probe.tick probe ~now ~snapshot:(snapshot_of machine ~now))
  done;
  (match C.Probe.report_interval probe with
  | None -> Alcotest.fail "adaptive probe lost its interval"
  | Some interval ->
    (* an idle machine's load1 is flat: zero spread slides the factor
       all the way to max_factor *)
    Alcotest.(check (float 1e-9)) "flat signal relaxes to slowest cadence"
      2.0 interval;
    Alcotest.(check (float 1e-9)) "gauge mirrors the interval" interval
      (Smart_util.Metrics.gauge_value m "probe.report_interval_seconds"));
  Alcotest.(check bool) "adaptation counted" true
    (C.Probe.interval_adaptations probe >= 1);
  Alcotest.(check int) "counter mirrors adaptations"
    (C.Probe.interval_adaptations probe)
    (Smart_util.Metrics.counter_value m "probe.interval_adaptations_total");
  Alcotest.(check bool) "bad adaptive config rejected" true
    (try
       ignore
         (C.Probe.create
            ~adaptive:
              { C.Probe.base_interval = 1.0; min_factor = 0.8;
                max_factor = 0.5; min_samples = 3 }
            probe_config);
       false
     with Invalid_argument _ -> true)

let test_sysmon_adaptive_threshold () =
  let db = C.Status_db.create () in
  let m = Smart_util.Metrics.create () in
  let sysmon =
    C.Sysmon.create ~metrics:m
      ~config:
        {
          C.Sysmon.probe_interval = 1.0;
          missed_intervals = 1;
          flap_threshold = 2;
          clean_intervals = 3;
        }
      ~flap_policy:
        { C.Sysmon.factor = 3.0; quantile = 0.5; max_threshold = 10;
          min_samples = 2 }
      db
  in
  let data = P.Report.to_string (report ()) in
  let ingest now =
    match C.Sysmon.handle_report sysmon ~now data with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "report rejected: %s" e
  in
  Alcotest.(check int) "starts at the configured threshold" 2
    (C.Sysmon.effective_flap_threshold sysmon);
  (* first expiry: one flap score is below min_samples, no tuning *)
  ingest 0.0;
  Alcotest.(check int) "first expiry" 1 (C.Sysmon.sweep sysmon ~now:3.0);
  Alcotest.(check int) "too few samples to tune" 2
    (C.Sysmon.effective_flap_threshold sysmon);
  (* second expiry: scores {1, 2}, median 1, threshold 3 x 1 = 3 — the
     fixed config would quarantine at 2 flaps, the tuned one does not *)
  ingest 3.5;
  Alcotest.(check int) "second expiry" 1 (C.Sysmon.sweep sysmon ~now:7.0);
  Alcotest.(check int) "tuned from the flap distribution" 3
    (C.Sysmon.effective_flap_threshold sysmon);
  Alcotest.(check bool) "tuned threshold defers quarantine" false
    (C.Sysmon.is_quarantined sysmon ~host:"helene");
  (* third expiry: scores {1, 2, 3}, median 2, threshold 6 *)
  ingest 7.5;
  Alcotest.(check int) "third expiry" 1 (C.Sysmon.sweep sysmon ~now:11.0);
  Alcotest.(check int) "threshold follows the fleet" 6
    (C.Sysmon.effective_flap_threshold sysmon);
  Alcotest.(check bool) "still not an outlier" false
    (C.Sysmon.is_quarantined sysmon ~host:"helene");
  Alcotest.(check int) "adaptations counted" 2
    (C.Sysmon.threshold_adaptations sysmon);
  Alcotest.(check int) "counter mirrors adaptations" 2
    (Smart_util.Metrics.counter_value m "sysmon.threshold_adaptations_total");
  Alcotest.(check (float 1e-9)) "gauge mirrors the threshold" 6.0
    (Smart_util.Metrics.gauge_value m "sysmon.effective_flap_threshold")

let test_wizard_adaptive_staleness () =
  let db = C.Status_db.create () in
  let now = ref 0.0 in
  let m = Smart_util.Metrics.create () in
  let wizard =
    C.Wizard.create ~metrics:m
      ~clock:(fun () -> !now)
      ~staleness_threshold:42.0
      ~staleness_policy:
        { C.Wizard.factor = 5.0; quantile = 0.99; floor = 0.1; cap = 300.0;
          min_samples = 4 }
      { C.Wizard.mode = C.Wizard.Centralized; groups = None }
      db
  in
  Alcotest.(check (float 1e-9)) "fixed threshold until samples arrive" 42.0
    (C.Wizard.staleness_threshold_now wizard);
  (* five 1 s gaps: q99 = 1 s, threshold 5 x 1 = 5 s *)
  for i = 1 to 6 do
    now := float_of_int i;
    C.Wizard.note_update wizard
  done;
  Alcotest.(check (float 1e-9)) "derived from the gap distribution" 5.0
    (C.Wizard.staleness_threshold_now wizard);
  (* one 100 s outage gap: q99 = 100 s, 5 x 100 clamps at the cap *)
  now := !now +. 100.0;
  C.Wizard.note_update wizard;
  Alcotest.(check (float 1e-9)) "outage gap clamps at the cap" 300.0
    (C.Wizard.staleness_threshold_now wizard);
  Alcotest.(check int) "two adaptations" 2
    (C.Wizard.staleness_adaptations wizard);
  Alcotest.(check int) "counter mirrors adaptations" 2
    (Smart_util.Metrics.counter_value m "wizard.staleness_adaptations_total");
  Alcotest.(check (float 1e-9)) "gauge mirrors the threshold" 300.0
    (Smart_util.Metrics.gauge_value m "wizard.staleness_threshold_seconds");
  (* the private latency sketch sees every answered request *)
  C.Status_db.update_sys db
    (sys_record ~host:"a" ~ip:"1.0.0.1" ~cpu_free:0.9 ~at:!now ());
  ignore
    (C.Wizard.handle_request wizard ~now:!now
       ~from:{ C.Output.host = "c"; port = 1 }
       (P.Wizard_msg.encode_request (client_request "host_cpu_free > 0.5\n")));
  Alcotest.(check int) "latency sketch fed per request" 1
    (Sk.count (C.Wizard.latency_sketch wizard))

(* Same seed, all three control loops armed: the closed loops must not
   cost determinism — metrics text and trace JSON stay byte-identical.
   (examples/control_demo.ml and the control-determinism CI job exercise
   the same property under a fault plan.) *)
let run_control_determinism seed =
  let config =
    {
      C.Simdriver.default_config with
      C.Simdriver.probe_interval = 1.0;
      transmit_interval = 0.5;
      adaptive_probes = true;
      adaptive_quarantine = true;
      adaptive_staleness = true;
    }
  in
  let _, d = fed_world ~config seed in
  C.Simdriver.settle ~duration:12.0 d;
  let reqs =
    List.map
      (fun requirement ->
        match C.Simdriver.request d ~client:"cli" ~wanted:4 ~requirement with
        | Ok servers -> servers
        | Error _ -> [])
      [ "host_cpu_free > 0.1\n"; "order_by = host_memory_free\n" ]
  in
  C.Simdriver.settle ~duration:5.0 d;
  ( reqs,
    Smart_util.Metrics.to_text (C.Simdriver.metrics d),
    C.Simdriver.trace_json d )

let test_sim_control_loops_deterministic () =
  let r1, m1, t1 = run_control_determinism 23 in
  let r2, m2, t2 = run_control_determinism 23 in
  Alcotest.(check (list (list string))) "same answers" r1 r2;
  Alcotest.(check string) "metrics byte-identical" m1 m2;
  Alcotest.(check string) "trace byte-identical" t1 t2;
  let contains line =
    List.exists
      (fun l -> String.length l >= String.length line
                && String.equal (String.sub l 0 (String.length line)) line)
      (String.split_on_char '\n' m1)
  in
  (* the sketch plane ran: shard uplinks reached the root and the
     deployment-wide gauges are being served *)
  Alcotest.(check bool) "sketch batches reached the root" true
    (contains "federation.sketches_received_total counter");
  Alcotest.(check bool) "fed p99 gauge served" true
    (contains "federation.fed_latency_p99_s gauge");
  Alcotest.(check bool) "probe loop armed" true
    (contains "probe.report_interval_seconds gauge")

(* ------------------------------------------------------------------ *)
(* The session plane (DESIGN.md §15)                                   *)
(* ------------------------------------------------------------------ *)

let test_session_pool_lifecycle () =
  let clock = ref 0.0 in
  let evicted = ref [] in
  let m = Smart_util.Metrics.create () in
  let pool =
    C.Session.pool ~metrics:m ~capacity:2 ~keepalive_interval:5.0
      ~keepalive_limit:2
      ~on_evict:(fun c -> evicted := C.Session.conn_host c :: !evicted)
      ~clock:(fun () -> !clock)
      ()
  in
  let s1 = C.Session.session pool ~name:"s1" in
  C.Session.selecting s1;
  let ca = C.Session.bind pool s1 ~host:"a" ~origin:Smart_util.Tracelog.root in
  Alcotest.(check bool) "fresh bind connects" true
    (C.Session.conn_state ca = C.Session.Connecting);
  C.Session.established pool ca;
  (* a second session binding the same host shares the entry *)
  let s2 = C.Session.session pool ~name:"s2" in
  C.Session.selecting s2;
  let ca' = C.Session.bind pool s2 ~host:"a" ~origin:Smart_util.Tracelog.root in
  Alcotest.(check bool) "same entry" true (ca == ca');
  Alcotest.(check int) "reuse metered" 1
    (Smart_util.Metrics.counter_value m "session.pool_reused_total");
  C.Session.retire pool s2;
  C.Session.retire pool s1;
  Alcotest.(check int) "idle entry stays pooled" 1 (C.Session.pool_size pool);
  (* fill past capacity: the idle LRU entry is evicted, busy ones kept *)
  clock := 1.0;
  let cb = C.Session.acquire pool ~host:"b" in
  C.Session.established pool cb;
  let cc = C.Session.acquire pool ~host:"c" in
  C.Session.established pool cc;
  Alcotest.(check (list string)) "idle LRU evicted" [ "a" ] !evicted;
  Alcotest.(check bool) "evictee closed" true
    (C.Session.conn_state ca = C.Session.Closed);
  (* draining closes only once the in-flight work resolves *)
  let s3 = C.Session.session pool ~name:"s3" in
  C.Session.selecting s3;
  let cb' = C.Session.bind pool s3 ~host:"b" ~origin:Smart_util.Tracelog.root in
  Alcotest.(check bool) "pooled entry reused" true (cb == cb');
  C.Session.work_started pool s3 cb';
  C.Session.release pool cb;  (* the plain acquire's reference *)
  C.Session.retire pool s3;   (* the session's reference *)
  C.Session.drain pool cb';
  Alcotest.(check bool) "draining while busy" true
    (C.Session.conn_state cb' = C.Session.Draining);
  C.Session.work_done pool s3 cb';
  Alcotest.(check bool) "closed once empty" true
    (C.Session.conn_state cb' = C.Session.Closed);
  (* keep-alive: due entries come sorted, misses at the limit kill *)
  clock := 7.0;
  (match C.Session.keepalive_due pool ~now:!clock with
  | [ due ] ->
    Alcotest.(check string) "c is due" "c" (C.Session.conn_host due);
    C.Session.keepalive_sent pool due;
    C.Session.keepalive_miss pool due;
    C.Session.keepalive_sent pool due;
    C.Session.keepalive_miss pool due;
    Alcotest.(check bool) "declared dead at the limit" true
      (C.Session.conn_state due = C.Session.Closed)
  | l -> Alcotest.failf "expected one due entry, got %d" (List.length l));
  Alcotest.(check int) "keepalive failure metered" 1
    (Smart_util.Metrics.counter_value m "session.keepalive_failures_total")

let test_session_migration_states () =
  let clock = ref 0.0 in
  let m = Smart_util.Metrics.create () in
  let pool = C.Session.pool ~metrics:m ~clock:(fun () -> !clock) () in
  let s = C.Session.session pool ~name:"s" in
  C.Session.selecting s;
  let c1 = C.Session.bind pool s ~host:"a" ~origin:Smart_util.Tracelog.root in
  C.Session.established pool c1;
  (* an abandoned attempt returns to Active on the held server *)
  C.Session.begin_migration pool s;
  Alcotest.(check bool) "migrating" true
    (C.Session.session_state s = C.Session.Migrating);
  C.Session.abandon_migration pool s ~reason:"nothing qualified";
  Alcotest.(check bool) "back to active" true
    (C.Session.session_state s = C.Session.Active);
  Alcotest.(check int) "failure metered" 1
    (Smart_util.Metrics.counter_value m "session.migration_failures_total");
  (* a completed handover binds the replacement and drains the old *)
  clock := 1.0;
  C.Session.begin_migration pool s;
  clock := 1.5;
  let c2 =
    C.Session.complete_migration pool s ~host:"b"
      ~origin:Smart_util.Tracelog.root
  in
  Alcotest.(check string) "bound to replacement" "b" (C.Session.conn_host c2);
  Alcotest.(check int) "migration counted" 1 (C.Session.session_migrations s);
  Alcotest.(check bool) "old connection gone" true
    (C.Session.conn_state c1 = C.Session.Closed);
  (match Smart_util.Metrics.find m "session.migration_latency_seconds" with
  | Some (Smart_util.Metrics.Histogram h) ->
    Alcotest.(check bool) "latency observed" true
      (h.Smart_util.Metrics.count = 1 && h.Smart_util.Metrics.sum > 0.49)
  | _ -> Alcotest.fail "migration latency histogram missing");
  (* same-host handover after the server recovers: the fresh bind must
     survive (the old record is not the one drained) *)
  C.Session.close pool c2;
  C.Session.begin_migration pool s;
  let c3 =
    C.Session.complete_migration pool s ~host:"b"
      ~origin:Smart_util.Tracelog.root
  in
  C.Session.established pool c3;
  Alcotest.(check bool) "rebound fresh to same host" true
    (not (c3 == c2) && C.Session.conn_state c3 = C.Session.Established)

let admission_request ~seq =
  P.Wizard_msg.encode_request
    {
      P.Wizard_msg.seq;
      server_num = 1;
      option = P.Wizard_msg.Accept_partial;
      requirement = "host_cpu_free >= 0\n";
      trace = Smart_util.Tracelog.root;
    }

let test_wizard_admission_gate () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"s1" ~ip:"10.0.0.1" ~at:0.0 ());
  let now = ref 0.0 in
  let wizard =
    C.Wizard.create
      ~clock:(fun () -> !now)
      ~admission:
        { C.Wizard.rate = 10.0; burst = 2.0; max_delay = 0.2; max_clients = 8 }
      { C.Wizard.mode = C.Wizard.Centralized; groups = None }
      db
  in
  let from = { C.Output.host = "cli"; port = 4001 } in
  let ask seq = C.Wizard.handle_request wizard ~now:!now ~from
      (admission_request ~seq) in
  let decode = function
    | [ C.Output.Udp { data; _ } ] ->
      (match P.Wizard_msg.decode_reply data with
      | Ok r -> r
      | Error e -> Alcotest.failf "reply decode failed: %s" e)
    | l -> Alcotest.failf "expected one reply, got %d outputs" (List.length l)
  in
  (* the burst is answered immediately *)
  Alcotest.(check bool) "1st immediate" false
    (decode (ask 1)).P.Wizard_msg.rejected;
  Alcotest.(check bool) "2nd immediate" false
    (decode (ask 2)).P.Wizard_msg.rejected;
  (* the next two wait 0.1 s and 0.2 s <= max_delay: parked, no reply *)
  Alcotest.(check int) "3rd parked" 0 (List.length (ask 3));
  Alcotest.(check int) "4th parked" 0 (List.length (ask 4));
  Alcotest.(check int) "two waiting" 2 (C.Wizard.delayed_count wizard);
  (* the fifth would wait 0.3 s > max_delay: shed *)
  let shed = decode (ask 5) in
  Alcotest.(check bool) "5th rejected" true shed.P.Wizard_msg.rejected;
  Alcotest.(check (list string)) "rejection carries no servers" []
    shed.P.Wizard_msg.servers;
  (* other clients have their own bucket: unaffected *)
  let other =
    C.Wizard.handle_request wizard ~now:!now
      ~from:{ C.Output.host = "other"; port = 4002 }
      (admission_request ~seq:6)
  in
  Alcotest.(check bool) "other client immediate" false
    (decode other).P.Wizard_msg.rejected;
  (* tokens accrue: the tick releases the parked requests in order *)
  now := 0.25;
  let released = C.Wizard.tick wizard ~now:!now in
  Alcotest.(check int) "both released" 2 (List.length released);
  (match released with
  | [ C.Output.Udp { data = d3; _ }; C.Output.Udp { data = d4; _ } ] ->
    (match (P.Wizard_msg.decode_reply d3, P.Wizard_msg.decode_reply d4) with
    | Ok r3, Ok r4 ->
      Alcotest.(check int) "arrival order kept" 3 r3.P.Wizard_msg.seq;
      Alcotest.(check int) "second in line" 4 r4.P.Wizard_msg.seq;
      Alcotest.(check bool) "released not flagged" false
        (r3.P.Wizard_msg.rejected || r4.P.Wizard_msg.rejected)
    | _ -> Alcotest.fail "released replies must decode")
  | _ -> Alcotest.fail "expected two released replies");
  Alcotest.(check int) "rejection metered" 1
    (C.Wizard.admission_rejected wizard);
  Alcotest.(check int) "delays metered" 2 (C.Wizard.admission_delayed wizard)

(* Rejections must not consume tokens: a client shed at the deadline is
   served normally once real time covers its backlog, rather than being
   driven ever deeper into debt by its own rejected retries. *)
let test_wizard_admission_reject_consumes_nothing () =
  let db = C.Status_db.create () in
  C.Status_db.update_sys db (sys_record ~host:"s1" ~ip:"10.0.0.1" ~at:0.0 ());
  let now = ref 0.0 in
  let wizard =
    C.Wizard.create
      ~clock:(fun () -> !now)
      ~admission:
        { C.Wizard.rate = 10.0; burst = 1.0; max_delay = 0.05; max_clients = 8 }
      { C.Wizard.mode = C.Wizard.Centralized; groups = None }
      db
  in
  let from = { C.Output.host = "cli"; port = 4001 } in
  let ask seq = C.Wizard.handle_request wizard ~now:!now ~from
      (admission_request ~seq) in
  ignore (ask 1);
  (* burst spent: a hammering client is shed over and over *)
  for seq = 2 to 20 do
    ignore (ask seq)
  done;
  Alcotest.(check int) "hammering shed" 19 (C.Wizard.admission_rejected wizard);
  (* one refill interval later the client is served again — the 19
     rejections left no debt behind *)
  now := 0.11;
  match ask 21 with
  | [ C.Output.Udp { data; _ } ] ->
    (match P.Wizard_msg.decode_reply data with
    | Ok r -> Alcotest.(check bool) "served after backoff" false
        r.P.Wizard_msg.rejected
    | Error e -> Alcotest.failf "reply decode failed: %s" e)
  | l -> Alcotest.failf "expected one reply, got %d outputs" (List.length l)

(* Overload sheds evenly: identical clients offering the same 2x-rate
   pattern are admitted the same number of times — the Jain fairness
   index over admitted counts stays at 1 and nobody is starved. *)
let prop_admission_fairness =
  QCheck.Test.make ~name:"admission under overload sheds fairly" ~count:30
    (QCheck.pair (QCheck.int_range 2 6) (QCheck.int_range 2 4))
    (fun (nclients, overload) ->
      let db = C.Status_db.create () in
      C.Status_db.update_sys db
        (sys_record ~host:"s1" ~ip:"10.0.0.1" ~at:0.0 ());
      let admission =
        { C.Wizard.rate = 20.0; burst = 4.0; max_delay = 0.1; max_clients = 64 }
      in
      let now = ref 0.0 in
      let wizard =
        C.Wizard.create
          ~clock:(fun () -> !now)
          ~admission
          { C.Wizard.mode = C.Wizard.Centralized; groups = None }
          db
      in
      let admitted = Array.make nclients 0 in
      let count outputs =
        List.iter
          (fun output ->
            match output with
            | C.Output.Udp { dst; data } ->
              (match P.Wizard_msg.decode_reply data with
              | Ok r when not r.P.Wizard_msg.rejected ->
                let i = dst.C.Output.port - 4000 in
                if i >= 0 && i < nclients then admitted.(i) <- admitted.(i) + 1
              | Ok _ | Error _ -> ())
            | C.Output.Stream _ -> ())
          outputs
      in
      let dt = 1.0 /. (admission.C.Wizard.rate *. float_of_int overload) in
      let steps = int_of_float (1.0 /. dt) in
      let seq = ref 0 in
      for _ = 1 to steps do
        for i = 0 to nclients - 1 do
          incr seq;
          count
            (C.Wizard.handle_request wizard ~now:!now
               ~from:{ C.Output.host = Printf.sprintf "c%d" i;
                       port = 4000 + i }
               (admission_request ~seq:!seq))
        done;
        count (C.Wizard.tick wizard ~now:!now);
        now := !now +. dt
      done;
      now := !now +. admission.C.Wizard.max_delay +. 0.05;
      count (C.Wizard.tick wizard ~now:!now);
      let xs = Array.map float_of_int admitted in
      let sum = Array.fold_left ( +. ) 0.0 xs in
      let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
      let jain = sum *. sum /. (float_of_int nclients *. sumsq) in
      Array.for_all (fun n -> n > 0) admitted && jain >= 0.95)

(* Differential check of the pool's determinism against a reference LRU
   model: eviction picks exactly the least-recently-used idle entry
   (ties by host) and the keep-alive due list comes back host-sorted —
   the pool's behaviour is a pure function of the operation sequence,
   never of hash-table order. *)
let prop_session_pool_determinism =
  QCheck.Test.make ~name:"pool eviction follows the LRU model" ~count:60
    (QCheck.int_bound 0xFFFF)
    (fun seed ->
      let capacity = 3 in
      let clock = ref 0.0 in
      let evicted = ref [] in
      let pool =
        C.Session.pool ~capacity ~keepalive_interval:2.0 ~keepalive_limit:2
          ~on_evict:(fun c -> evicted := C.Session.conn_host c :: !evicted)
          ~clock:(fun () -> !clock)
          ()
      in
      (* reference model: host -> (last_used stamp, refs).  Acquire of a
         fresh entry touches twice (attach, then Connecting ->
         Established); a reuse touches once; release never touches. *)
      let model : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
      let stamp = ref 0 in
      let expected = ref [] in
      let model_victim () =
        Hashtbl.fold
          (fun host (st, refs) best ->
            if refs > 0 then best
            else
              match best with
              | None -> Some (host, st)
              | Some (_, bst) when st < bst -> Some (host, st)
              | Some (bhost, bst) when st = bst && host < bhost ->
                Some (host, st)
              | Some _ -> best)
          model None
      in
      let rng = Smart_util.Prng.create ~seed in
      let held = ref [] in
      let sorted_ok = ref true in
      for _ = 1 to 80 do
        clock := !clock +. 0.3;
        match Smart_util.Prng.int rng ~bound:3 with
        | 0 ->
          let host = Printf.sprintf "h%d" (Smart_util.Prng.int rng ~bound:6) in
          (match Hashtbl.find_opt model host with
          | Some (_, refs) ->
            incr stamp;
            Hashtbl.replace model host (!stamp, refs + 1)
          | None ->
            if Hashtbl.length model >= capacity then (
              match model_victim () with
              | Some (victim, _) ->
                Hashtbl.remove model victim;
                expected := victim :: !expected
              | None -> ());
            stamp := !stamp + 2;
            Hashtbl.replace model host (!stamp, 1));
          let c = C.Session.acquire pool ~host in
          C.Session.established pool c;
          held := c :: !held
        | 1 ->
          (match !held with
          | c :: rest ->
            C.Session.release pool c;
            held := rest;
            let host = C.Session.conn_host c in
            (match Hashtbl.find_opt model host with
            | Some (st, refs) -> Hashtbl.replace model host (st, refs - 1)
            | None -> ())
          | [] -> ())
        | _ ->
          let due = C.Session.keepalive_due pool ~now:!clock in
          let hosts = List.map C.Session.conn_host due in
          if hosts <> List.sort String.compare hosts then sorted_ok := false
      done;
      !sorted_ok && !evicted = !expected)

(* ------------------------------------------------------------------ *)
(* Session chaos acceptance (the DESIGN.md §15 gate)                   *)
(* ------------------------------------------------------------------ *)

(* The bench's churn world in miniature: four servers behind a switch,
   crash + partition mid-run, both healed before the drain. *)
let session_churn_world seed =
  let c = H.Cluster.create ~seed () in
  let spec name ip =
    { (H.Testbed.spec_of_name "helene") with H.Machine.name; ip }
  in
  let add name ip = H.Cluster.add_machine c (spec name ip) in
  let wiz = add "wiz" "10.0.0.1" in
  let cli = add "cli" "10.0.0.2" in
  let mon = add "mon" "10.0.0.3" in
  let servers =
    List.init 4 (fun i ->
        add (Printf.sprintf "s%d" (i + 1)) (Printf.sprintf "10.0.1.%d" (i + 1)))
  in
  let sw = H.Cluster.add_switch c ~name:"sw" ~ip:"10.0.0.254" in
  List.iter
    (fun n -> ignore (H.Cluster.link c ~a:n ~b:sw H.Testbed.lan_conf))
    (wiz :: cli :: mon :: servers);
  let config =
    {
      C.Simdriver.default_config with
      C.Simdriver.transmit_interval = 0.5;
      frame_crc = true;
      wizard_staleness = 3.0;
    }
  in
  let d =
    C.Simdriver.deploy ~config c ~monitor:"mon" ~wizard_host:"wiz"
      ~servers:[ "s1"; "s2"; "s3"; "s4" ]
  in
  (c, d)

let run_session_chaos seed =
  let c, d = session_churn_world seed in
  C.Simdriver.settle ~duration:8.0 d;
  let base = H.Cluster.now c in
  let module F = Smart_sim.Faults in
  ignore
    (C.Simdriver.install_faults d
       [
         { F.at = base +. 4.3; action = F.Crash_node "s1" };
         { F.at = base +. 8.1; action = F.Partition_host "s2" };
         { F.at = base +. 14.2; action = F.Restart_node "s1" };
         { F.at = base +. 18.1; action = F.Heal_host "s2" };
       ]);
  let report =
    C.Simdriver.run_sessions d
      ~clients:[ ("cli", 6) ]
      ~requirement:"host_cpu_free > 0.05\norder_by = host_memory_free\n"
      ~work_interval:0.5 ~duration:20.0
  in
  ( report,
    Smart_util.Metrics.to_text (C.Simdriver.metrics d),
    C.Simdriver.trace_json d )

let test_sim_session_chaos () =
  let r, mtext, tjson = run_session_chaos 11 in
  Alcotest.(check int) "every session survived" r.C.Simdriver.sessions
    r.C.Simdriver.survived;
  Alcotest.(check bool) "sessions migrated through the churn" true
    (r.C.Simdriver.migrations >= 1);
  Alcotest.(check int) "zero in-flight items lost" 0 r.C.Simdriver.work_lost;
  Alcotest.(check bool) "requeue path exercised" true
    (r.C.Simdriver.work_requeued >= 1);
  (* the ledger closes: everything issued either completed or requeued *)
  Alcotest.(check int) "work ledger closes" r.C.Simdriver.work_completed
    (r.C.Simdriver.work_issued - r.C.Simdriver.work_requeued);
  (* same seed, same churn: the observable surface is byte-identical *)
  let r2, mtext2, tjson2 = run_session_chaos 11 in
  Alcotest.(check int) "same migrations" r.C.Simdriver.migrations
    r2.C.Simdriver.migrations;
  Alcotest.(check string) "metrics byte-identical" mtext mtext2;
  Alcotest.(check string) "trace byte-identical" tjson tjson2

let () =
  Alcotest.run "smart_core"
    [
      ( "status_db",
        [
          Alcotest.test_case "update/replace" `Quick test_db_sys_update_and_replace;
          Alcotest.test_case "sweep" `Quick test_db_sweep;
          Alcotest.test_case "net entry lookup" `Quick test_db_net_entry_for;
          Alcotest.test_case "security" `Quick test_db_sec;
          Alcotest.test_case "generation semantics" `Quick test_db_generation;
          Alcotest.test_case "sweep bumps only on removal" `Quick
            test_db_sweep_generation;
          Alcotest.test_case "sys_records memoized" `Quick
            test_db_sys_records_cached;
          Alcotest.test_case "net entry determinism" `Quick
            test_db_net_entry_deterministic;
        ] );
      ( "probe",
        [
          Alcotest.test_case "first tick" `Quick test_probe_first_tick;
          Alcotest.test_case "rates from deltas" `Quick
            test_probe_rates_from_deltas;
          Alcotest.test_case "bad snapshot" `Quick test_probe_bad_snapshot;
          Alcotest.test_case "missing iface" `Quick test_probe_missing_iface;
        ] );
      ( "sysmon",
        [
          Alcotest.test_case "ingest and expire" `Quick
            test_sysmon_ingest_and_expire;
          Alcotest.test_case "quarantine flapping server" `Quick
            test_sysmon_quarantine_flapping;
        ] );
      ( "netmon/secmon",
        [
          Alcotest.test_case "sequential probing" `Quick
            test_netmon_sequential_probing;
          Alcotest.test_case "interval scaling" `Quick
            test_netmon_interval_scaling;
          Alcotest.test_case "secmon" `Quick test_secmon;
        ] );
      ( "transmitter/receiver",
        [
          Alcotest.test_case "round trip" `Quick
            test_transmitter_receiver_roundtrip;
          Alcotest.test_case "modes" `Quick test_transmitter_modes;
          Alcotest.test_case "update hook" `Quick test_receiver_update_hook;
          Alcotest.test_case "multi-transmitter ownership" `Quick
            test_receiver_multi_transmitter_ownership;
          Alcotest.test_case "resend queue + backoff" `Quick
            test_transmitter_resend_backoff;
        ] );
      ( "selection",
        [
          Alcotest.test_case "qualification filter" `Quick test_selection_filters;
          Alcotest.test_case "wanted limit" `Quick test_selection_wanted_limit;
          Alcotest.test_case "blacklist" `Quick test_selection_denied;
          Alcotest.test_case "preferred order" `Quick
            test_selection_preferred_order;
          Alcotest.test_case "preferred must qualify" `Quick
            test_selection_preferred_must_qualify;
          Alcotest.test_case "monitor bindings" `Quick
            test_selection_monitor_bindings;
          Alcotest.test_case "security binding" `Quick
            test_selection_security_binding;
          Alcotest.test_case "order_by ranking" `Quick test_selection_order_by;
          Alcotest.test_case "empty pool and 60-cap" `Quick
            test_selection_empty_and_limits;
          Alcotest.test_case "Fig 1.4 scenario" `Quick
            test_selection_fig14_scenario;
          QCheck_alcotest.to_alcotest prop_select_columns_matches_select;
        ] );
      ( "wizard",
        [
          Alcotest.test_case "centralized reply" `Quick
            test_wizard_centralized_reply;
          Alcotest.test_case "bad requirement" `Quick test_wizard_bad_requirement;
          Alcotest.test_case "garbage dropped" `Quick test_wizard_garbage_dropped;
          Alcotest.test_case "distributed pull flow" `Quick
            test_wizard_distributed_pull_flow;
          Alcotest.test_case "compile cache" `Quick test_wizard_compile_cache;
          Alcotest.test_case "result cache + snapshot" `Quick
            test_wizard_result_cache_and_snapshot;
          Alcotest.test_case "distributed deadline" `Quick
            test_wizard_distributed_deadline;
          Alcotest.test_case "degraded mode" `Quick test_wizard_degraded_mode;
        ] );
      ( "client",
        [
          Alcotest.test_case "sequence matching" `Quick test_client_seq_matching;
          Alcotest.test_case "option semantics" `Quick
            test_client_option_semantics;
          Alcotest.test_case "request validation" `Quick
            test_client_request_validation;
          Alcotest.test_case "requirement lint" `Quick test_client_lint;
          Alcotest.test_case "duplicate reply suppression" `Quick
            test_client_duplicate_suppression;
        ] );
      ( "simdriver",
        [
          Alcotest.test_case "end to end" `Quick test_sim_end_to_end;
          Alcotest.test_case "failure expiry and revival" `Quick
            test_sim_failure_expiry;
          Alcotest.test_case "distributed mode" `Quick test_sim_distributed_mode;
          Alcotest.test_case "workload visible" `Quick
            test_sim_workload_visible_to_wizard;
          Alcotest.test_case "TCP probe transport" `Quick
            test_probe_tcp_transport;
          Alcotest.test_case "multi-group deployment" `Quick
            test_sim_multigroup;
          Alcotest.test_case "TCP reports end-to-end" `Quick
            test_sim_tcp_probe_transport;
          Alcotest.test_case "traffic stats" `Quick test_sim_traffic_stats;
          Alcotest.test_case "metrics end to end" `Quick
            test_sim_metrics_end_to_end;
          Alcotest.test_case "golden selection equivalence" `Quick
            test_sim_golden_selection;
          Alcotest.test_case "trace span trees" `Quick test_sim_trace_trees;
          Alcotest.test_case "lossy expiry and re-register" `Quick
            test_sim_lossy_expiry_and_rereg;
          Alcotest.test_case "chaos acceptance" `Slow test_sim_chaos_acceptance;
        ] );
      ( "federation",
        [
          QCheck_alcotest.to_alcotest prop_fed_merge_matches_flat;
          Alcotest.test_case "shard subquery reply" `Quick test_wizard_subquery;
          Alcotest.test_case "canonical spelling hits shard cache" `Quick
            test_wizard_subquery_cache_key;
          Alcotest.test_case "end to end" `Quick test_sim_federation_end_to_end;
          Alcotest.test_case "digest routing" `Quick test_sim_federation_routing;
          Alcotest.test_case "partial merge on shard loss" `Quick
            test_sim_federation_partial;
          Alcotest.test_case "same-seed determinism" `Slow
            test_sim_federation_determinism;
          QCheck_alcotest.to_alcotest prop_fed_root_quantiles_track_union;
          Alcotest.test_case "latest sketch batch wins" `Quick
            test_fed_root_latest_batch_wins;
        ] );
      ( "control loops",
        [
          Alcotest.test_case "probe adapts its interval" `Quick
            test_probe_adaptive_interval;
          Alcotest.test_case "sysmon tunes its flap threshold" `Quick
            test_sysmon_adaptive_threshold;
          Alcotest.test_case "wizard derives staleness" `Quick
            test_wizard_adaptive_staleness;
          Alcotest.test_case "loops stay deterministic" `Slow
            test_sim_control_loops_deterministic;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "pool lifecycle" `Quick
            test_session_pool_lifecycle;
          Alcotest.test_case "migration states" `Quick
            test_session_migration_states;
          Alcotest.test_case "wizard admission gate" `Quick
            test_wizard_admission_gate;
          Alcotest.test_case "rejections consume no tokens" `Quick
            test_wizard_admission_reject_consumes_nothing;
          QCheck_alcotest.to_alcotest prop_admission_fairness;
          QCheck_alcotest.to_alcotest prop_session_pool_determinism;
          Alcotest.test_case "session chaos acceptance" `Slow
            test_sim_session_chaos;
        ] );
    ]
