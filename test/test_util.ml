(* Unit and property tests for smart_util: PRNG, heap, statistics,
   units, table rendering. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Smart_util.Prng.create ~seed:42 in
  let b = Smart_util.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same stream" (Smart_util.Prng.next_int64 a)
      (Smart_util.Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Smart_util.Prng.create ~seed:1 in
  let b = Smart_util.Prng.create ~seed:2 in
  Alcotest.(check bool)
    "different seeds differ" true
    (Smart_util.Prng.next_int64 a <> Smart_util.Prng.next_int64 b)

let test_prng_copy () =
  let a = Smart_util.Prng.create ~seed:7 in
  ignore (Smart_util.Prng.next_int64 a);
  let b = Smart_util.Prng.copy a in
  Alcotest.(check int64)
    "copy continues identically" (Smart_util.Prng.next_int64 a)
    (Smart_util.Prng.next_int64 b)

let test_prng_split_independent () =
  let a = Smart_util.Prng.create ~seed:7 in
  let child = Smart_util.Prng.split a in
  Alcotest.(check bool)
    "child differs from parent" true
    (Smart_util.Prng.next_int64 child <> Smart_util.Prng.next_int64 a)

let test_prng_float_range () =
  let rng = Smart_util.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let f = Smart_util.Prng.float rng ~bound:3.5 in
    Alcotest.(check bool) "in [0, 3.5)" true (f >= 0.0 && f < 3.5)
  done

let test_prng_int_range () =
  let rng = Smart_util.Prng.create ~seed:5 in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    let i = Smart_util.Prng.int rng ~bound:10 in
    Alcotest.(check bool) "in [0, 10)" true (i >= 0 && i < 10);
    seen.(i) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_gaussian_moments () =
  let rng = Smart_util.Prng.create ~seed:13 in
  let n = 20000 in
  let xs =
    Array.init n (fun _ -> Smart_util.Prng.gaussian rng ~mu:3.0 ~sigma:2.0)
  in
  let mean = Smart_util.Stats.mean xs in
  let sd = Smart_util.Stats.stddev xs in
  Alcotest.(check bool) "mean ~ 3" true (Float.abs (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "sd ~ 2" true (Float.abs (sd -. 2.0) < 0.1)

let test_prng_exponential_mean () =
  let rng = Smart_util.Prng.create ~seed:17 in
  let xs =
    Array.init 20000 (fun _ -> Smart_util.Prng.exponential rng ~mean:0.5)
  in
  Alcotest.(check bool)
    "mean ~ 0.5" true
    (Float.abs (Smart_util.Stats.mean xs -. 0.5) < 0.02)

let test_prng_shuffle_permutation () =
  let rng = Smart_util.Prng.create ~seed:3 in
  let arr = Array.init 50 Fun.id in
  let shuffled = Smart_util.Prng.shuffle rng arr in
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" arr sorted;
  Alcotest.(check (array int)) "input untouched" (Array.init 50 Fun.id) arr

let test_prng_sample_distinct () =
  let rng = Smart_util.Prng.create ~seed:3 in
  let arr = Array.init 20 Fun.id in
  let s = Smart_util.Prng.sample rng ~k:5 arr in
  Alcotest.(check int) "k elements" 5 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 4 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

(* ------------------------------------------------------------------ *)
(* Heap                                                                 *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Smart_util.Heap.create () in
  Alcotest.(check bool) "empty" true (Smart_util.Heap.is_empty h);
  Smart_util.Heap.push h ~key:2.0 "b";
  Smart_util.Heap.push h ~key:1.0 "a";
  Smart_util.Heap.push h ~key:3.0 "c";
  Alcotest.(check int) "length" 3 (Smart_util.Heap.length h);
  (match Smart_util.Heap.peek h with
  | Some (k, v) ->
    check_float "peek key" 1.0 k;
    Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "peek on non-empty");
  Alcotest.(check int) "peek does not pop" 3 (Smart_util.Heap.length h);
  let order = List.map snd (Smart_util.Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "sorted drain" [ "a"; "b"; "c" ] order

let test_heap_fifo_ties () =
  let h = Smart_util.Heap.create () in
  List.iter (fun v -> Smart_util.Heap.push h ~key:1.0 v) [ 1; 2; 3; 4; 5 ];
  let order = List.map snd (Smart_util.Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "ties pop FIFO" [ 1; 2; 3; 4; 5 ] order

let test_heap_clear () =
  let h = Smart_util.Heap.create () in
  Smart_util.Heap.push h ~key:1.0 1;
  Smart_util.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Smart_util.Heap.is_empty h);
  Alcotest.(check bool) "pop on empty" true (Smart_util.Heap.pop h = None)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains keys in sorted order" ~count:200
    QCheck.(list (pair (float_range 0.0 1000.0) small_int))
    (fun items ->
      let h = Smart_util.Heap.create () in
      List.iter (fun (key, v) -> Smart_util.Heap.push h ~key v) items;
      let rec drain acc =
        match Smart_util.Heap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let keys = drain [] in
      List.sort compare (List.map fst items) = keys)

let prop_heap_length =
  QCheck.Test.make ~name:"heap length tracks pushes and pops" ~count:200
    QCheck.(list (float_range 0.0 10.0))
    (fun keys ->
      let h = Smart_util.Heap.create () in
      List.iteri (fun i key -> Smart_util.Heap.push h ~key i) keys;
      let n = List.length keys in
      let ok1 = Smart_util.Heap.length h = n in
      (match Smart_util.Heap.pop h with
      | Some _ -> ()
      | None -> ());
      ok1 && Smart_util.Heap.length h = max 0 (n - 1))

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_stats_mean_var () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Smart_util.Stats.mean xs);
  check_float "variance" (5.0 /. 3.0) (Smart_util.Stats.variance xs);
  check_float "single variance" 0.0 (Smart_util.Stats.variance [| 5.0 |])

let test_stats_empty_mean () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Smart_util.Stats.mean [||]))

let test_stats_percentiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0; 5.0 |] in
  check_float "median" 3.0 (Smart_util.Stats.median xs);
  check_float "p0" 1.0 (Smart_util.Stats.percentile xs ~p:0.0);
  check_float "p100" 5.0 (Smart_util.Stats.percentile xs ~p:100.0);
  check_float "p25 interpolates" 2.0 (Smart_util.Stats.percentile xs ~p:25.0)

let test_stats_min_max () =
  let lo, hi = Smart_util.Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_stats_linear_fit_exact () =
  let xs = Array.init 10 float_of_int in
  let ys = Array.map (fun x -> (2.5 *. x) +. 1.0) xs in
  let fit = Smart_util.Stats.linear_fit ~xs ~ys in
  check_float "slope" 2.5 fit.Smart_util.Stats.slope;
  check_float "intercept" 1.0 fit.Smart_util.Stats.intercept;
  check_float "r2" 1.0 fit.Smart_util.Stats.r2

let test_stats_knee_fit () =
  (* synthetic Formula (3.6) curve: slope 3 below 1500, slope 1 above *)
  let xs = Array.init 60 (fun i -> float_of_int ((i + 1) * 50)) in
  let ys =
    Array.map
      (fun x -> if x <= 1500.0 then 3.0 *. x else (1.0 *. x) +. 3000.0)
      xs
  in
  let knee = Smart_util.Stats.knee_fit ~xs ~ys in
  Alcotest.(check bool)
    "break near 1500" true
    (Float.abs (knee.Smart_util.Stats.break_x -. 1500.0) <= 100.0);
  Alcotest.(check bool)
    "slopes ordered" true
    (knee.Smart_util.Stats.below.Smart_util.Stats.slope
    > knee.Smart_util.Stats.above.Smart_util.Stats.slope)

let test_stats_summary () =
  let s = Smart_util.Stats.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.Smart_util.Stats.n;
  check_float "mean" 2.0 s.Smart_util.Stats.mean;
  check_float "min" 1.0 s.Smart_util.Stats.min;
  check_float "max" 3.0 s.Smart_util.Stats.max

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.)) (float_range 0.0 100.0))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Smart_util.Stats.percentile arr ~p in
      let lo, hi = Smart_util.Stats.min_max arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Units                                                                *)
(* ------------------------------------------------------------------ *)

let test_units_roundtrip () =
  check_float "mbps" 95.0
    (Smart_util.Units.bytes_per_sec_to_mbps
       (Smart_util.Units.mbps_to_bytes_per_sec 95.0));
  check_float "100 Mbps in B/s" 12.5e6
    (Smart_util.Units.mbps_to_bytes_per_sec 100.0);
  check_float "KB/s" 1.0 (Smart_util.Units.bytes_per_sec_to_kBps 1024.0);
  check_float "ms" 1.5 (Smart_util.Units.s_to_ms (Smart_util.Units.ms_to_s 1.5))

(* ------------------------------------------------------------------ *)
(* Tabular                                                              *)
(* ------------------------------------------------------------------ *)

let test_tabular_render () =
  let t = Smart_util.Tabular.create ~title:"t" ~header:[ "a"; "bb" ] in
  Smart_util.Tabular.add_row t [ "xxx"; "y" ];
  Smart_util.Tabular.add_row t [ "z"; "wwww" ];
  let rendered = Smart_util.Tabular.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "title + header + rule + 2 rows" 5 (List.length lines);
  (* rows render in insertion order *)
  (match lines with
  | [ _; _; _; row1; row2 ] ->
    Alcotest.(check bool) "first row first" true
      (String.length row1 >= 3 && String.sub row1 0 3 = "xxx");
    Alcotest.(check bool) "second row second" true
      (String.length row2 >= 1 && row2.[0] = 'z')
  | _ -> Alcotest.fail "unexpected line count");
  (* aligned columns: header 'bb' starts at same column as 'y' and 'wwww' *)
  Alcotest.(check bool) "no trailing spaces" true
    (List.for_all
       (fun l -> l = "" || l.[String.length l - 1] <> ' ')
       lines)

let test_heap_sorted_list_nondestructive () =
  let h = Smart_util.Heap.create () in
  List.iter (fun k -> Smart_util.Heap.push h ~key:(float_of_int k) k) [ 3; 1; 2 ];
  ignore (Smart_util.Heap.to_sorted_list h);
  Alcotest.(check int) "heap untouched" 3 (Smart_util.Heap.length h)

let test_stats_knee_needs_points () =
  Alcotest.(check bool) "too few points rejected" true
    (try
       ignore
         (Smart_util.Stats.knee_fit ~xs:[| 1.0; 2.0; 3.0 |]
            ~ys:[| 1.0; 2.0; 3.0 |]);
       false
     with Invalid_argument _ -> true)

let test_stats_linear_fit_degenerate () =
  Alcotest.(check bool) "constant xs rejected" true
    (try
       ignore
         (Smart_util.Stats.linear_fit ~xs:[| 2.0; 2.0; 2.0 |]
            ~ys:[| 1.0; 2.0; 3.0 |]);
       false
     with Invalid_argument _ -> true)

let test_tabular_extra_cells_dropped () =
  let t = Smart_util.Tabular.create ~title:"t" ~header:[ "one" ] in
  Smart_util.Tabular.add_row t [ "a"; "overflow"; "more" ];
  let rendered = Smart_util.Tabular.render t in
  Alcotest.(check bool) "cells beyond header dropped" false
    (let re = "overflow" in
     let n = String.length rendered and m = String.length re in
     let rec search i =
       i + m <= n && (String.sub rendered i m = re || search (i + 1))
     in
     search 0)

(* ------------------------------------------------------------------ *)
(* Lru                                                                  *)
(* ------------------------------------------------------------------ *)

let test_lru_basics () =
  let l = Smart_util.Lru.create ~capacity:2 in
  Smart_util.Lru.add l "a" 1;
  Smart_util.Lru.add l "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Smart_util.Lru.find l "a");
  Alcotest.(check (option int)) "miss c" None (Smart_util.Lru.find l "c");
  Alcotest.(check int) "hits" 1 (Smart_util.Lru.hits l);
  Alcotest.(check int) "misses" 1 (Smart_util.Lru.misses l);
  (* "a" was just used, so inserting "c" evicts "b" *)
  Smart_util.Lru.add l "c" 3;
  Alcotest.(check int) "bounded" 2 (Smart_util.Lru.length l);
  Alcotest.(check (option int)) "b evicted" None (Smart_util.Lru.find l "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Smart_util.Lru.find l "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Smart_util.Lru.find l "c")

let test_lru_replace_and_clear () =
  let l = Smart_util.Lru.create ~capacity:3 in
  Smart_util.Lru.add l "k" 1;
  Smart_util.Lru.add l "k" 2;
  Alcotest.(check int) "replace keeps one entry" 1 (Smart_util.Lru.length l);
  Alcotest.(check (option int)) "replaced value" (Some 2)
    (Smart_util.Lru.find l "k");
  Smart_util.Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Smart_util.Lru.length l);
  Alcotest.(check (option int)) "empty after clear" None
    (Smart_util.Lru.find l "k")

let test_lru_zero_capacity () =
  let l = Smart_util.Lru.create ~capacity:0 in
  Smart_util.Lru.add l "a" 1;
  Alcotest.(check int) "accepts nothing" 0 (Smart_util.Lru.length l);
  Alcotest.(check (option int)) "always misses" None (Smart_util.Lru.find l "a")

let test_lru_eviction_order () =
  let l = Smart_util.Lru.create ~capacity:3 in
  List.iter (fun (k, v) -> Smart_util.Lru.add l k v)
    [ ("a", 1); ("b", 2); ("c", 3) ];
  (* touch in reverse so "a" is most recent, then overflow twice *)
  ignore (Smart_util.Lru.find l "b");
  ignore (Smart_util.Lru.find l "a");
  Smart_util.Lru.add l "d" 4;
  Smart_util.Lru.add l "e" 5;
  Alcotest.(check bool) "c evicted first" false (Smart_util.Lru.mem l "c");
  Alcotest.(check bool) "b evicted second" false (Smart_util.Lru.mem l "b");
  Alcotest.(check bool) "a kept" true (Smart_util.Lru.mem l "a");
  Alcotest.(check bool) "d kept" true (Smart_util.Lru.mem l "d");
  Alcotest.(check bool) "e kept" true (Smart_util.Lru.mem l "e")

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

module M = Smart_util.Metrics

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_metrics_counter_gauge () =
  let r = M.create () in
  let c = M.counter r ~help:"events" "x.events_total" in
  M.Counter.incr c;
  M.Counter.incr c ~by:4;
  Alcotest.(check int) "counter value" 5 (M.Counter.value c);
  Alcotest.(check int) "counter_value by name" 5
    (M.counter_value r "x.events_total");
  Alcotest.(check int) "absent counter reads 0" 0 (M.counter_value r "nope");
  let g = M.gauge r "x.depth" in
  M.Gauge.set g 3.0;
  M.Gauge.add g (-1.0);
  check_float "gauge value" 2.0 (M.Gauge.value g);
  check_float "gauge_value by name" 2.0 (M.gauge_value r "x.depth")

let test_metrics_get_or_create () =
  let r = M.create () in
  let a = M.counter r "shared_total" in
  let b = M.counter r "shared_total" in
  M.Counter.incr a;
  M.Counter.incr b;
  (* two registrations, one instrument: increments aggregate *)
  Alcotest.(check int) "same underlying counter" 2 (M.Counter.value a);
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (M.gauge r "shared_total");
       false
     with Invalid_argument _ -> true)

let test_metrics_histogram_exact_small () =
  let r = M.create () in
  let h = M.histogram r "lat" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (M.Histogram.quantile h 0.5));
  List.iter (M.Histogram.observe h) [ 4.0; 1.0; 3.0; 2.0 ];
  (* n <= 5: exact linear interpolation, identical to Stats.percentile *)
  check_float "p50 exact"
    (Smart_util.Stats.percentile [| 1.; 2.; 3.; 4. |] ~p:50.0)
    (M.Histogram.quantile h 0.5);
  check_float "p95 exact"
    (Smart_util.Stats.percentile [| 1.; 2.; 3.; 4. |] ~p:95.0)
    (M.Histogram.quantile h 0.95);
  Alcotest.(check int) "count" 4 (M.Histogram.count h);
  check_float "sum" 10.0 (M.Histogram.sum h);
  Alcotest.(check bool) "other p rejected" true
    (try
       ignore (M.Histogram.quantile h 0.25);
       false
     with Invalid_argument _ -> true)

let test_metrics_histogram_p2_estimates () =
  let r = M.create () in
  let h = M.histogram r "lat" in
  (* a deterministic non-monotone pass over 1..1000: the P² markers must
     land near the true quantiles of the uniform sample *)
  let n = 1000 in
  for i = 0 to n - 1 do
    M.Histogram.observe h (float_of_int (((i * 617) mod n) + 1))
  done;
  let s = M.histogram_summary h in
  Alcotest.(check int) "count" n s.M.count;
  check_float "min" 1.0 s.M.min;
  check_float "max" (float_of_int n) s.M.max;
  let within name expected tolerance got =
    Alcotest.(check bool)
      (Printf.sprintf "%s: |%g - %g| <= %g" name got expected tolerance)
      true
      (Float.abs (got -. expected) <= tolerance)
  in
  within "p50" 500.5 25.0 s.M.p50;
  within "p95" 950.95 25.0 s.M.p95;
  within "p99" 990.99 25.0 s.M.p99

let test_metrics_snapshot_and_render () =
  let r = M.create () in
  M.Counter.incr (M.counter r ~help:"h" "b.count_total") ~by:3;
  M.Gauge.set (M.gauge r "a.depth") 1.5;
  M.Histogram.observe (M.histogram r "c.lat") 2.0;
  (match M.snapshot r with
  | [ a; b; c ] ->
    (* sorted by name *)
    Alcotest.(check string) "first" "a.depth" a.M.name;
    Alcotest.(check string) "second" "b.count_total" b.M.name;
    Alcotest.(check string) "third" "c.lat" c.M.name;
    (match (a.M.value, b.M.value, c.M.value) with
    | M.Gauge g, M.Counter n, M.Histogram hs ->
      check_float "gauge sample" 1.5 g;
      Alcotest.(check int) "counter sample" 3 n;
      Alcotest.(check int) "histogram sample" 1 hs.M.count
    | _ -> Alcotest.fail "sample kinds wrong")
  | other ->
    Alcotest.failf "expected 3 samples, got %d" (List.length other));
  let text = M.to_text r in
  Alcotest.(check bool) "text has counter line" true
    (contains ~affix:"b.count_total counter 3" text);
  let json = M.to_json r in
  Alcotest.(check bool) "json mentions every metric" true
    (List.for_all
       (fun name -> contains ~affix:(Printf.sprintf "%S" name) json)
       [ "a.depth"; "b.count_total"; "c.lat" ])

(* Adversarial instrument names: the JSON dump must stay parseable and
   the text dump must keep one instrument per line regardless of what
   the caller names things. *)
let test_metrics_json_escape () =
  let e = M.json_escape in
  Alcotest.(check string) "plain untouched" "a.depth" (e "a.depth");
  Alcotest.(check string) "quote" "say \\\"hi\\\"" (e "say \"hi\"");
  Alcotest.(check string) "backslash" "a\\\\b" (e "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (e "a\nb");
  Alcotest.(check string) "tab short escape" "a\\tb" (e "a\tb");
  Alcotest.(check string) "carriage return short escape" "a\\rb" (e "a\rb");
  Alcotest.(check string) "nul byte" "\\u0000" (e "\x00");
  Alcotest.(check string) "last control" "\\u001f" (e "\x1f");
  Alcotest.(check string) "first printable kept" " " (e " ");
  (* multi-byte UTF-8 passes through byte-for-byte *)
  Alcotest.(check string) "non-ascii untouched" "caf\xc3\xa9" (e "caf\xc3\xa9");
  Alcotest.(check string) "mixed"
    "\\\"\\\\\\n\\u0001x" (e "\"\\\n\x01x")

let test_metrics_adversarial_names () =
  let r = M.create () in
  let hostile = "evil\"name\\with\nnasties" in
  M.Counter.incr (M.counter r hostile) ~by:1;
  M.Gauge.set (M.gauge r "quote\"gauge") 2.0;
  let json = M.to_json r in
  Alcotest.(check bool) "json escapes the counter name" true
    (contains ~affix:"evil\\\"name\\\\with\\nnasties" json);
  Alcotest.(check bool) "json escapes the gauge name" true
    (contains ~affix:"quote\\\"gauge" json);
  Alcotest.(check bool) "no raw quote-in-string survives" false
    (contains ~affix:"evil\"name" json);
  (* the text dump is line-oriented: names render raw, values intact *)
  let text = M.to_text r in
  Alcotest.(check bool) "text keeps the raw name" true
    (contains ~affix:"counter 1" text);
  Alcotest.(check bool) "gauge rendered" true (contains ~affix:"2" text)

(* ------------------------------------------------------------------ *)
(* Tracelog                                                            *)
(* ------------------------------------------------------------------ *)

module T = Smart_util.Tracelog

(* A hand-cranked clock so spans get pinned, distinct timestamps. *)
let ticking_clock () =
  let now = ref 0.0 in
  ((fun () -> now := !now +. 1.0; !now), now)

let test_tracelog_span_tree () =
  let clock, _ = ticking_clock () in
  let t = T.create ~clock () in
  let parent = T.start t "wizard.request" in
  let child = T.start t ~parent:(T.ctx_of parent) "wizard.select" in
  T.finish t child;
  T.finish t parent;
  match T.entries t with
  | [ p; c ] ->
    Alcotest.(check string) "parent name" "wizard.request" p.T.name;
    Alcotest.(check string) "child name" "wizard.select" c.T.name;
    Alcotest.(check bool) "root span opens its own trace" true
      (p.T.trace_id = p.T.span_id);
    Alcotest.(check int) "root span has no parent" 0 p.T.parent_id;
    Alcotest.(check int) "child joins the trace" p.T.trace_id c.T.trace_id;
    Alcotest.(check int) "child parented on the span" p.T.span_id c.T.parent_id;
    Alcotest.(check bool) "ids distinct" true (p.T.span_id <> c.T.span_id);
    Alcotest.(check (float 1e-9)) "parent start" 1.0 p.T.start_time;
    Alcotest.(check (float 1e-9)) "child start" 2.0 c.T.start_time;
    Alcotest.(check (float 1e-9)) "child closed first" 1.0 c.T.duration;
    Alcotest.(check (float 1e-9)) "parent spans the child" 3.0 p.T.duration
  | other -> Alcotest.failf "expected 2 entries, got %d" (List.length other)

let test_tracelog_disabled () =
  Alcotest.(check bool) "shared recorder off" false (T.enabled T.disabled);
  let span = T.start T.disabled "never" in
  T.finish T.disabled span;
  T.instant T.disabled "nor this";
  Alcotest.(check bool) "no span ctx" true (T.is_root (T.ctx_of span));
  Alcotest.(check int) "nothing recorded" 0 (T.total_recorded T.disabled);
  Alcotest.(check int) "no entries" 0 (List.length (T.entries T.disabled));
  Alcotest.(check bool) "cannot enable the shared recorder" true
    (try T.set_enabled T.disabled true; false
     with Invalid_argument _ -> true)

let test_tracelog_ring_bounded () =
  let clock, _ = ticking_clock () in
  let t = T.create ~capacity:4 ~clock () in
  for i = 1 to 10 do
    T.instant t (Printf.sprintf "event%d" i)
  done;
  let names = List.map (fun (e : T.entry) -> e.T.name) (T.entries t) in
  Alcotest.(check (list string)) "oldest first, newest kept"
    [ "event7"; "event8"; "event9"; "event10" ] names;
  Alcotest.(check int) "total counts drops" 10 (T.total_recorded t);
  Alcotest.(check int) "dropped" 6 (T.dropped t);
  T.clear t;
  Alcotest.(check int) "clear resets" 0 (T.total_recorded t)

let test_tracelog_chrome_json () =
  let clock, _ = ticking_clock () in
  let t = T.create ~clock () in
  let span = T.start t "probe.tick" in
  T.finish t span;
  let open_span = T.start t "probe.build \"quoted\"" in
  ignore open_span;
  let json =
    T.to_chrome_json ~instants:[ (0.5, "net", "packet \"x\" sent") ] t
  in
  Alcotest.(check bool) "complete event" true (contains ~affix:"\"ph\":\"X\"" json);
  Alcotest.(check bool) "instant event" true (contains ~affix:"\"ph\":\"i\"" json);
  Alcotest.(check bool) "process metadata" true (contains ~affix:"\"ph\":\"M\"" json);
  Alcotest.(check bool) "component from dot-prefix" true
    (contains ~affix:"probe" json);
  Alcotest.(check bool) "hostile span name escaped" true
    (contains ~affix:"\\\"quoted\\\"" json);
  Alcotest.(check bool) "hostile instant escaped" true
    (contains ~affix:"packet \\\"x\\\" sent" json);
  let again =
    T.to_chrome_json ~instants:[ (0.5, "net", "packet \"x\" sent") ] t
  in
  Alcotest.(check string) "export deterministic" json again

let test_tracelog_render_tree () =
  let clock, _ = ticking_clock () in
  let t = T.create ~clock () in
  let req = T.start t "client.request" in
  let wiz = T.start t ~parent:(T.ctx_of req) "wizard.request" in
  let sel = T.start t ~parent:(T.ctx_of wiz) "wizard.select" in
  T.finish t sel;
  T.finish t wiz;
  T.finish t req;
  let other = T.start t "probe.tick" in
  T.finish t other;
  let tree = T.render_tree t ~trace_id:(T.ctx_of req).T.trace_id in
  Alcotest.(check bool) "root present" true (contains ~affix:"client.request" tree);
  Alcotest.(check bool) "grandchild present" true
    (contains ~affix:"wizard.select" tree);
  Alcotest.(check bool) "foreign trace excluded" false
    (contains ~affix:"probe.tick" tree)

(* ------------------------------------------------------------------ *)
(* Backoff                                                              *)
(* ------------------------------------------------------------------ *)

let test_backoff_nominal_schedule () =
  let p =
    Smart_util.Backoff.policy ~base:0.2 ~multiplier:2.0 ~max_delay:1.0
      ~jitter:0.0 ()
  in
  check_float "attempt 0" 0.2 (Smart_util.Backoff.nominal p ~attempt:0);
  check_float "attempt 1" 0.4 (Smart_util.Backoff.nominal p ~attempt:1);
  check_float "attempt 2" 0.8 (Smart_util.Backoff.nominal p ~attempt:2);
  check_float "saturates" 1.0 (Smart_util.Backoff.nominal p ~attempt:3);
  check_float "stays saturated" 1.0 (Smart_util.Backoff.nominal p ~attempt:50);
  let b = Smart_util.Backoff.create p in
  (* no rng: next follows the nominal schedule exactly *)
  check_float "next 0" 0.2 (Smart_util.Backoff.next b);
  check_float "next 1" 0.4 (Smart_util.Backoff.next b);
  Alcotest.(check int) "attempt counter" 2 (Smart_util.Backoff.attempt b);
  Smart_util.Backoff.reset b;
  Alcotest.(check int) "reset to 0" 0 (Smart_util.Backoff.attempt b);
  check_float "schedule restarts" 0.2 (Smart_util.Backoff.next b)

let test_backoff_jitter_bounded_deterministic () =
  let p = Smart_util.Backoff.policy ~jitter:0.5 () in
  let delays rng_seed =
    let b =
      Smart_util.Backoff.create
        ~rng:(Smart_util.Prng.create ~seed:rng_seed)
        p
    in
    List.init 8 (fun _ -> Smart_util.Backoff.next b)
  in
  let one = delays 11 in
  (* jitter only shortens: nominal is the worst case, and at most half
     of it is randomised away here *)
  List.iteri
    (fun i d ->
      let n = Smart_util.Backoff.nominal p ~attempt:i in
      Alcotest.(check bool) "under nominal" true (d <= n);
      Alcotest.(check bool) "over jitter floor" true (d >= n *. 0.5))
    one;
  (* same seed, same schedule — byte-identical retries across runs *)
  List.iter2 (check_float "same seed, same delays") one (delays 11)

let test_backoff_rejects_nonsense () =
  let invalid f = Alcotest.(check bool) "rejected" true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  invalid (fun () -> Smart_util.Backoff.policy ~base:0.0 ());
  invalid (fun () -> Smart_util.Backoff.policy ~multiplier:0.9 ());
  invalid (fun () -> Smart_util.Backoff.policy ~max_delay:0.0 ());
  invalid (fun () -> Smart_util.Backoff.policy ~jitter:1.0 ());
  invalid (fun () -> Smart_util.Backoff.policy ~jitter:(-0.1) ())

(* ------------------------------------------------------------------ *)
(* Crc32                                                                *)
(* ------------------------------------------------------------------ *)

let test_crc32_known_vectors () =
  (* IEEE 802.3 / zlib polynomial reference values *)
  Alcotest.(check int) "empty" 0 (Smart_util.Crc32.string "");
  Alcotest.(check int) "check vector" 0xCBF43926
    (Smart_util.Crc32.string "123456789");
  Alcotest.(check int) "'a'" 0xE8B7BE43 (Smart_util.Crc32.string "a")

let test_crc32_streaming_and_substring () =
  let s = "the quick brown fox" in
  let whole = Smart_util.Crc32.string s in
  Alcotest.(check int) "substring of whole" whole
    (Smart_util.Crc32.substring s ~pos:0 ~len:(String.length s));
  let mid = Smart_util.Crc32.update 0 s ~pos:0 ~len:9 in
  Alcotest.(check int) "streaming in two parts" whole
    (Smart_util.Crc32.update mid s ~pos:9 ~len:(String.length s - 9));
  Alcotest.(check bool) "out of bounds rejected" true
    (try
       ignore (Smart_util.Crc32.substring s ~pos:0 ~len:(String.length s + 1));
       false
     with Invalid_argument _ -> true)

let prop_crc32_detects_byte_flips =
  QCheck.Test.make ~name:"crc32 detects any single byte flip" ~count:300
    QCheck.(
      triple
        (string_gen_of_size Gen.(int_range 1 64) Gen.char)
        (int_bound 1000) (int_range 1 255))
    (fun (s, pos, delta) ->
      let pos = pos mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor delta));
      Smart_util.Crc32.string s <> Smart_util.Crc32.string (Bytes.to_string b))

(* ------------------------------------------------------------------ *)
(* Sketch: mergeable quantile sketches                                  *)
(* ------------------------------------------------------------------ *)

module Sk = Smart_util.Sketch

let sketch_of ?(k = 16) ~seed values =
  let s = Sk.create ~k ~rng:(Smart_util.Prng.create ~seed) () in
  List.iter (Sk.observe s) values;
  s

(* The documented bound, checked against the exact sorted stream: the
   sketch's answer for [p] is an observed value whose true rank lies
   within [err_weight] of the nearest-rank target.  Ranks are counted
   directly (not read back through {!Smart_util.Stats.percentile},
   whose interpolated rank arithmetic is epsilon-off integral ranks). *)
let sketch_rank_ok values s p =
  let arr = Array.of_list values in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 0 then true
  else begin
    let v = Sk.quantile s p in
    let err = Sk.err_weight s in
    let target =
      let r = int_of_float (Float.ceil (p *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let below = ref 0 and upto = ref 0 in
    Array.iter
      (fun x ->
        if Float.compare x v < 0 then incr below;
        if Float.compare x v <= 0 then incr upto)
      arr;
    (* [v] is observed, and its rank interval overlaps target +- err *)
    List.exists (fun x -> Float.compare x v = 0) values
    && !below + 1 <= target + err
    && target - err <= !upto
  end

let test_sketch_exact_when_small () =
  (* default k = 256: a few hundred observations never compact, so the
     sketch is the exact nearest-rank statistic *)
  let values = List.init 100 (fun i -> float_of_int (100 - i)) in
  let s = Sk.create ~rng:(Smart_util.Prng.create ~seed:3) () in
  List.iter (Sk.observe s) values;
  Alcotest.(check int) "count" 100 (Sk.count s);
  Alcotest.(check int) "no compaction, no error" 0 (Sk.err_weight s);
  check_float "rank error bound" 0.0 (Sk.rank_error_bound s);
  check_float "min" 1.0 (Sk.min_value s);
  check_float "max" 100.0 (Sk.max_value s);
  check_float "p0 is the minimum" 1.0 (Sk.quantile s 0.0);
  check_float "p50 nearest rank" 50.0 (Sk.quantile s 0.5);
  check_float "p99 nearest rank" 99.0 (Sk.quantile s 0.99);
  check_float "p100 is the maximum" 100.0 (Sk.quantile s 1.0);
  let arr = Array.of_list values in
  check_float "agrees with Stats.percentile at p0"
    (Smart_util.Stats.percentile arr ~p:0.0)
    (Sk.quantile s 0.0);
  check_float "agrees with Stats.percentile at p100"
    (Smart_util.Stats.percentile arr ~p:100.0)
    (Sk.quantile s 1.0);
  Alcotest.(check int) "rank of 50" 50 (Sk.rank s 50.0)

let test_sketch_compaction_bounds () =
  let n = 5000 in
  let values = List.init n (fun i -> float_of_int ((i * 37) mod n)) in
  let s = sketch_of ~k:32 ~seed:11 values in
  Alcotest.(check int) "count survives compaction" n (Sk.count s);
  Alcotest.(check bool) "compaction happened" true (Sk.err_weight s > 0);
  let retained = List.fold_left (fun a l -> a + Array.length l) 0 (Sk.levels s) in
  Alcotest.(check bool) "memory stays bounded" true
    (retained <= 32 * List.length (Sk.levels s) && retained < n / 4);
  Alcotest.(check bool) "bound is sub-half" true (Sk.rank_error_bound s < 0.5);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within rank bound" (100.0 *. p))
        true
        (sketch_rank_ok values s p))
    [ 0.05; 0.25; 0.5; 0.75; 0.95; 0.99 ]

let test_sketch_rejects () =
  let expect_invalid name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "odd k" (fun () -> Sk.create ~k:9 ());
  expect_invalid "tiny k" (fun () -> Sk.create ~k:4 ());
  let s = Sk.create () in
  expect_invalid "nan observation" (fun () -> Sk.observe s Float.nan);
  expect_invalid "infinite observation" (fun () ->
      Sk.observe s Float.infinity);
  expect_invalid "quantile above 1" (fun () -> Sk.quantile s 1.5);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Sk.quantile s 0.5));
  Alcotest.(check bool) "empty min is nan" true (Float.is_nan (Sk.min_value s))

let test_sketch_of_parts () =
  let s = sketch_of ~k:8 ~seed:5 (List.init 300 (fun i -> float_of_int i)) in
  (match
     Sk.of_parts ~k:(Sk.k s) ~err_weight:(Sk.err_weight s)
       ~min_value:(Sk.min_value s) ~max_value:(Sk.max_value s)
       ~rng_state:(Sk.rng_state s) (Sk.levels s)
   with
  | Ok s' ->
    Alcotest.(check bool) "structural rebuild equal" true (Sk.equal s s');
    Alcotest.(check int64) "prng state carried" (Sk.rng_state s)
      (Sk.rng_state s')
  | Error e -> Alcotest.failf "rebuild rejected: %s" e);
  let bad name parts = Alcotest.(check bool) name true (Result.is_error parts) in
  bad "odd k rejected"
    (Sk.of_parts ~k:7 ~err_weight:0 ~min_value:0.0 ~max_value:1.0
       ~rng_state:0L [ [| 0.5 |] ]);
  bad "negative error rejected"
    (Sk.of_parts ~k:8 ~err_weight:(-1) ~min_value:0.0 ~max_value:1.0
       ~rng_state:0L [ [| 0.5 |] ]);
  bad "too many levels rejected"
    (Sk.of_parts ~k:8 ~err_weight:0 ~min_value:0.0 ~max_value:1.0
       ~rng_state:0L
       (List.init (Sk.max_levels + 1) (fun _ -> [| 0.5 |])));
  bad "non-finite item rejected"
    (Sk.of_parts ~k:8 ~err_weight:0 ~min_value:0.0 ~max_value:1.0
       ~rng_state:0L [ [| Float.nan |] ]);
  bad "item outside min/max rejected"
    (Sk.of_parts ~k:8 ~err_weight:0 ~min_value:0.0 ~max_value:1.0
       ~rng_state:0L [ [| 2.0 |] ])

let test_metrics_mergeable_histogram () =
  let m = M.create () in
  let plain = M.histogram m "wizard.plain_seconds" in
  let merge =
    M.histogram m ~mergeable:true "wizard.request_latency_seconds"
  in
  for i = 1 to 20 do
    M.Histogram.observe plain 1.0;
    M.Histogram.observe merge (float_of_int i)
  done;
  Alcotest.(check bool) "plain histogram has no sketch" true
    (Option.is_none (M.Histogram.sketch plain));
  (match M.sketches m with
  | [ (name, s) ] ->
    Alcotest.(check string) "only the mergeable one is listed"
      "wizard.request_latency_seconds" name;
    Alcotest.(check int) "sketch saw every observation" 20 (Sk.count s)
  | l -> Alcotest.failf "expected one mergeable backing, got %d" (List.length l));
  (* re-requesting the same histogram as mergeable keeps one backing *)
  let again =
    M.histogram m ~mergeable:true "wizard.request_latency_seconds"
  in
  M.Histogram.observe again 99.0;
  match M.sketches m with
  | [ (_, s) ] -> Alcotest.(check int) "still one backing" 21 (Sk.count s)
  | l -> Alcotest.failf "expected one backing, got %d" (List.length l)

let sketch_values_arb =
  QCheck.(list_of_size Gen.(int_range 0 300) (float_range (-1e3) 1e3))

let prop_sketch_merge_commutes =
  QCheck.Test.make ~name:"sketch merge commutes (observable state)"
    ~count:200
    QCheck.(pair sketch_values_arb sketch_values_arb)
    (fun (xs, ys) ->
      let a = sketch_of ~seed:1 xs and b = sketch_of ~seed:2 ys in
      Sk.equal (Sk.merge a b) (Sk.merge b a))

let prop_sketch_merge_associates =
  QCheck.Test.make ~name:"sketch merge associates (observable state)"
    ~count:200
    QCheck.(triple sketch_values_arb sketch_values_arb sketch_values_arb)
    (fun (xs, ys, zs) ->
      let a = sketch_of ~seed:1 xs
      and b = sketch_of ~seed:2 ys
      and c = sketch_of ~seed:3 zs in
      Sk.equal (Sk.merge (Sk.merge a b) c) (Sk.merge a (Sk.merge b c)))

let prop_sketch_merge_identity =
  QCheck.Test.make ~name:"fresh sketch is a merge identity" ~count:200
    sketch_values_arb
    (fun xs ->
      let a = sketch_of ~seed:4 xs in
      let e () = Sk.create ~k:16 ~rng:(Smart_util.Prng.create ~seed:9) () in
      Sk.equal (Sk.merge a (e ())) a && Sk.equal (Sk.merge (e ()) a) a)

let prop_sketch_merge_matches_union =
  QCheck.Test.make
    ~name:"merged quantiles track the union within the rank bound"
    ~count:200
    QCheck.(pair sketch_values_arb sketch_values_arb)
    (fun (xs, ys) ->
      let merged = Sk.merge (sketch_of ~seed:5 xs) (sketch_of ~seed:6 ys) in
      let union = xs @ ys in
      List.for_all (sketch_rank_ok union merged) [ 0.1; 0.5; 0.9; 0.99 ])

let prop_sketch_tracks_exact_percentile =
  QCheck.Test.make
    ~name:"compacted sketch stays within rank bound of Stats.percentile"
    ~count:1000
    QCheck.(list_of_size Gen.(int_range 1 1000) (float_range (-1e6) 1e6))
    (fun values ->
      let s = sketch_of ~k:8 ~seed:8 values in
      List.for_all (sketch_rank_ok values s) [ 0.1; 0.5; 0.9; 0.99 ])

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_heap_sorted; prop_heap_length; prop_percentile_bounds;
      prop_crc32_detects_byte_flips;
      prop_sketch_merge_commutes; prop_sketch_merge_associates;
      prop_sketch_merge_identity; prop_sketch_merge_matches_union;
      prop_sketch_tracks_exact_percentile ]

let () =
  Alcotest.run "smart_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independent;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick
            test_prng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_prng_sample_distinct;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "nominal schedule" `Quick
            test_backoff_nominal_schedule;
          Alcotest.test_case "jitter bounded and deterministic" `Quick
            test_backoff_jitter_bounded_deterministic;
          Alcotest.test_case "rejects nonsense" `Quick
            test_backoff_rejects_nonsense;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_known_vectors;
          Alcotest.test_case "streaming and substring" `Quick
            test_crc32_streaming_and_substring;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic ordering" `Quick test_heap_basic;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_var;
          Alcotest.test_case "empty mean raises" `Quick test_stats_empty_mean;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "min/max" `Quick test_stats_min_max;
          Alcotest.test_case "linear fit exact" `Quick test_stats_linear_fit_exact;
          Alcotest.test_case "knee fit" `Quick test_stats_knee_fit;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ("units", [ Alcotest.test_case "round trips" `Quick test_units_roundtrip ]);
      ( "tabular",
        [
          Alcotest.test_case "render" `Quick test_tabular_render;
          Alcotest.test_case "extra cells dropped" `Quick
            test_tabular_extra_cells_dropped;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "sorted list nondestructive" `Quick
            test_heap_sorted_list_nondestructive;
          Alcotest.test_case "knee needs points" `Quick
            test_stats_knee_needs_points;
          Alcotest.test_case "degenerate linear fit" `Quick
            test_stats_linear_fit_degenerate;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "replace and clear" `Quick
            test_lru_replace_and_clear;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick
            test_metrics_counter_gauge;
          Alcotest.test_case "get-or-create aggregation" `Quick
            test_metrics_get_or_create;
          Alcotest.test_case "histogram exact below 6" `Quick
            test_metrics_histogram_exact_small;
          Alcotest.test_case "histogram P2 estimates" `Quick
            test_metrics_histogram_p2_estimates;
          Alcotest.test_case "snapshot and rendering" `Quick
            test_metrics_snapshot_and_render;
          Alcotest.test_case "json escaping" `Quick test_metrics_json_escape;
          Alcotest.test_case "adversarial instrument names" `Quick
            test_metrics_adversarial_names;
        ] );
      ( "tracelog",
        [
          Alcotest.test_case "span tree" `Quick test_tracelog_span_tree;
          Alcotest.test_case "disabled recorder" `Quick test_tracelog_disabled;
          Alcotest.test_case "bounded ring" `Quick test_tracelog_ring_bounded;
          Alcotest.test_case "chrome export" `Quick test_tracelog_chrome_json;
          Alcotest.test_case "render tree" `Quick test_tracelog_render_tree;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "exact while small" `Quick
            test_sketch_exact_when_small;
          Alcotest.test_case "compaction bounds" `Quick
            test_sketch_compaction_bounds;
          Alcotest.test_case "rejects bad input" `Quick test_sketch_rejects;
          Alcotest.test_case "of_parts validation" `Quick test_sketch_of_parts;
          Alcotest.test_case "mergeable histogram backing" `Quick
            test_metrics_mergeable_histogram;
        ] );
      ("properties", qsuite);
    ]
