(* Tests for the requirement meta-language: lexer (Fig 4.1), parser and
   evaluator (Fig 4.2), variable taxonomy, and the thesis's documented
   semantics (logic flag, conjunction of logical statements, faults). *)

module L = Smart_lang

let tokens_of src =
  match L.Lexer.tokenize src with
  | Ok toks -> List.map (fun t -> t.L.Token.token) toks
  | Error e -> Alcotest.failf "lex error: %a" L.Lexer.pp_error e

let compile src =
  match L.Requirement.compile src with
  | Ok p -> p
  | Error e ->
    Alcotest.failf "compile error: %a" L.Requirement.pp_compile_error e

let eval ?(lookup = fun _ -> None) src = L.Eval.run ~lookup (compile src)

let qualified ?lookup src = (eval ?lookup src).L.Eval.qualified

let num_lookup bindings name =
  Option.map (fun f -> L.Value.Num f) (List.assoc_opt name bindings)

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let test_lex_numbers () =
  Alcotest.(check bool)
    "integer" true
    (tokens_of "42" = [ L.Token.Number 42.0; L.Token.Eof ]);
  Alcotest.(check bool)
    "decimal" true
    (tokens_of "3.25" = [ L.Token.Number 3.25; L.Token.Eof ])

let test_lex_netaddr_quad () =
  Alcotest.(check bool)
    "dotted quad" true
    (tokens_of "137.132.90.182"
    = [ L.Token.Netaddr "137.132.90.182"; L.Token.Eof ])

let test_lex_netaddr_hostname () =
  Alcotest.(check bool)
    "dotted host" true
    (tokens_of "sagit.ddns.comp.nus.edu.sg"
    = [ L.Token.Netaddr "sagit.ddns.comp.nus.edu.sg"; L.Token.Eof ]);
  Alcotest.(check bool)
    "hyphen allowed when dotted" true
    (tokens_of "titan-x.lab.net"
    = [ L.Token.Netaddr "titan-x.lab.net"; L.Token.Eof ])

let test_lex_hyphen_identifier_rejected () =
  match L.Lexer.tokenize "titan-x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare hyphenated identifier must not lex"

let test_lex_identifier_vs_subtraction () =
  Alcotest.(check bool)
    "a - b is subtraction" true
    (tokens_of "a - b"
    = [ L.Token.Ident "a"; L.Token.Minus; L.Token.Ident "b"; L.Token.Eof ])

let test_lex_comments_and_whitespace () =
  Alcotest.(check bool)
    "comment to EOL" true
    (tokens_of "1 # the rest is ignored ><&\n2"
    = [ L.Token.Number 1.0; L.Token.Newline; L.Token.Number 2.0; L.Token.Eof ])

let test_lex_operators () =
  Alcotest.(check bool)
    "all operators" true
    (tokens_of ">= <= == != && || > < = + - * / ^ ( )"
    = L.Token.
        [
          Ge; Le; Eq; Ne; And; Or; Gt; Lt; Assign; Plus; Minus; Star; Slash;
          Caret; Lparen; Rparen; Eof;
        ])

let test_lex_bad_ampersand () =
  match L.Lexer.tokenize "a & b" with
  | Error e -> Alcotest.(check int) "column of &" 3 e.L.Lexer.col
  | Ok _ -> Alcotest.fail "single & must not lex"

let test_lex_malformed_quad () =
  match L.Lexer.tokenize "1.2.3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "1.2.3 is neither number nor address"

let test_lex_positions () =
  match L.Lexer.tokenize "a\n  b" with
  | Ok [ _a; _nl; b; _eof ] ->
    Alcotest.(check int) "line" 2 b.L.Token.line;
    Alcotest.(check int) "col" 3 b.L.Token.col
  | Ok _ | Error _ -> Alcotest.fail "unexpected lex result"

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let eval_expr src =
  match (eval src).L.Eval.statements with
  | [ { L.Eval.value = Ok (L.Value.Num f); _ } ] -> f
  | [ { L.Eval.value = Error m; _ } ] -> Alcotest.failf "eval fault: %s" m
  | _ -> Alcotest.fail "expected one numeric statement"

let check_eval name expected src =
  Alcotest.(check (float 1e-9)) name expected (eval_expr src)

let test_parse_precedence () =
  check_eval "mul before add" 7.0 "1 + 2 * 3";
  check_eval "parens" 9.0 "(1 + 2) * 3";
  check_eval "left assoc sub" 0.0 "5 - 3 - 2";
  check_eval "div" 2.5 "5 / 2";
  check_eval "pow right assoc" 512.0 "2 ^ 3 ^ 2";
  check_eval "pow before mul" 18.0 "2 * 3 ^ 2";
  check_eval "unary minus" (-4.0) "-4";
  check_eval "cmp after arith" 1.0 "1 + 1 == 2";
  check_eval "and after cmp" 1.0 "1 < 2 && 2 < 3";
  check_eval "or after and" 1.0 "0 && 0 || 1"

let test_parse_builtin_call () =
  check_eval "sqrt" 3.0 "sqrt(9)";
  check_eval "log10" 2.0 "log10(100)";
  check_eval "nested" 1.0 "cos(sin(0))";
  check_eval "exp(0)" 1.0 "exp(0)";
  check_eval "abs" 4.5 "abs(0 - 4.5)";
  check_eval "int truncates" 3.0 "int(3.9)"

let test_parse_error_reported () =
  match L.Requirement.compile "1 + * 2\n" with
  | Error e -> Alcotest.(check int) "error line" 1 e.L.Requirement.line
  | Ok _ -> Alcotest.fail "must not parse"

let test_parse_unbalanced_paren () =
  match L.Requirement.compile "(1 + 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must not parse"

let test_parse_multiline () =
  let p = compile "1 < 2\n\n# comment line\n3 < 4\n" in
  Alcotest.(check int) "two statements" 2 (List.length p)

let test_parse_statement_lines () =
  let p = compile "1 < 2\nx = 3\nx > 1\n" in
  Alcotest.(check (list int))
    "line numbers" [ 1; 2; 3 ]
    (List.map (fun (s : L.Ast.statement) -> s.L.Ast.line) p)

(* ------------------------------------------------------------------ *)
(* is_logical — the yacc logic flag                                     *)
(* ------------------------------------------------------------------ *)

let is_logical src =
  match compile src with
  | [ st ] -> L.Ast.is_logical st.L.Ast.expr
  | _ -> Alcotest.fail "expected one statement"

let test_logic_flag () =
  (* the two examples of §3.6.1 *)
  Alcotest.(check bool) "(a+b)<=b is logical" true (is_logical "(a + b) <= b");
  Alcotest.(check bool) "a+(b<c) is not" false (is_logical "a + (b < c)");
  Alcotest.(check bool) "parens transparent" true (is_logical "((1 < 2))");
  Alcotest.(check bool) "assignment not logical" false (is_logical "x = 1 < 2");
  Alcotest.(check bool) "builtin not logical" false (is_logical "sin(1)");
  Alcotest.(check bool) "and is logical" true (is_logical "a && b")

(* ------------------------------------------------------------------ *)
(* Evaluator semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_qualification_conjunction () =
  Alcotest.(check bool) "all true" true (qualified "1 < 2\n3 < 4\n");
  Alcotest.(check bool) "one false kills" false (qualified "1 < 2\n4 < 3\n");
  Alcotest.(check bool) "non-logical ignored" true (qualified "5 + 5\n1 < 2\n")

let test_empty_program_qualifies () =
  Alcotest.(check bool) "empty qualifies" true (qualified "")

let test_temp_variables () =
  Alcotest.(check bool)
    "temp var flows" true
    (qualified "threshold = 10 * 2\n15 < threshold\n");
  Alcotest.(check bool)
    "reassignment" true
    (qualified "x = 1\nx = x + 1\nx == 2\n")

let test_undefined_in_logical_is_false () =
  (* §3.6.1: uninitialized variable in a logical statement -> false *)
  Alcotest.(check bool)
    "undefined var falsifies" false
    (qualified "no_such_thing < 10\n")

let test_undefined_fault_recorded () =
  let o = eval "no_such_thing < 10\n" in
  Alcotest.(check int) "fault recorded" 1 (List.length o.L.Eval.faults)

let test_division_by_zero () =
  Alcotest.(check bool)
    "div by zero falsifies logical" false
    (qualified "1 / 0 < 5\n");
  let o = eval "x = 1 / 0\n" in
  Alcotest.(check bool)
    "non-logical fault does not disqualify" true o.L.Eval.qualified;
  Alcotest.(check int) "but is recorded" 1 (List.length o.L.Eval.faults)

let test_assign_to_server_var_fault () =
  let o = eval "host_cpu_free = 1\n" in
  Alcotest.(check int) "read-only server vars" 1 (List.length o.L.Eval.faults)

let test_server_binding () =
  let lookup =
    num_lookup [ ("host_cpu_free", 0.95); ("host_memory_free", 100.0) ]
  in
  Alcotest.(check bool)
    "bound vars" true
    (qualified ~lookup "host_cpu_free > 0.9 && host_memory_free > 5\n");
  Alcotest.(check bool)
    "fails threshold" false
    (qualified ~lookup "host_cpu_free > 0.99\n")

let test_no_short_circuit () =
  (* the yacc actions evaluate both sides: a fault on the right of || is
     a fault even when the left is true *)
  Alcotest.(check bool)
    "|| does not shield faults" false
    (qualified "1 == 1 || no_such_thing > 0\n")

let test_uparams_collected () =
  let o =
    eval
      "user_denied_host1 = 137.132.90.182\n\
       user_preferred_host1 = sagit.ddns.comp.nus.edu.sg\n"
  in
  let preferred, denied = L.Requirement.host_lists o in
  Alcotest.(check (list string))
    "preferred" [ "sagit.ddns.comp.nus.edu.sg" ] preferred;
  Alcotest.(check (list string)) "denied" [ "137.132.90.182" ] denied

let test_uparam_bare_hostname () =
  (* Table 5.5 style: a bare identifier names a host in address context *)
  let o = eval "user_denied_host1 = telesto\n" in
  let _, denied = L.Requirement.host_lists o in
  Alcotest.(check (list string)) "bare name becomes address" [ "telesto" ]
    denied

let test_uparam_assignment_inside_conjunction () =
  (* Table 5.5 writes (user_denied_host1 = telesto) && ... ; the
     assignment is truthy so it must not block qualification *)
  let o = eval "(user_denied_host1 = telesto) && (1 < 2)\n" in
  Alcotest.(check bool) "qualifies" true o.L.Eval.qualified;
  let _, denied = L.Requirement.host_lists o in
  Alcotest.(check (list string)) "denied collected" [ "telesto" ] denied

let test_address_comparisons () =
  Alcotest.(check bool) "equal addresses" true (qualified "1.2.3.4 == 1.2.3.4\n");
  Alcotest.(check bool)
    "unequal addresses" false
    (qualified "1.2.3.4 == 1.2.3.5\n");
  Alcotest.(check bool) "address != number" true (qualified "1.2.3.4 != 5\n");
  Alcotest.(check bool)
    "ordering addresses faults" false
    (qualified "1.2.3.4 < 1.2.3.5\n")

let test_thesis_sample_requirement () =
  (* the full example of §3.6.2 *)
  let src =
    "host_system_load1 < 1\n\
     host_memory_used <= 250*1024*1024\n\
     host_cpu_free >= 0.9\n\
     #ldjfaldjfalsjff #akldjfaldfj\n\
     #some comments\n\
     host_network_tbytesps < 1024*1024  # for network IO\n\
     # comments\n\
     user_denied_host1 = 137.132.90.182\n\
     user_preferred_host1 = sagit.ddns.comp.nus.edu.sg\n\
     #\n"
  in
  let lookup =
    num_lookup
      [
        ("host_system_load1", 0.2);
        ("host_memory_used", 120.0);
        ("host_cpu_free", 0.95);
        ("host_network_tbytesps", 2048.0);
      ]
  in
  let o = L.Eval.run ~lookup (compile src) in
  Alcotest.(check bool) "qualifies" true o.L.Eval.qualified;
  let preferred, denied = L.Requirement.host_lists o in
  Alcotest.(check int) "one preferred" 1 (List.length preferred);
  Alcotest.(check int) "one denied" 1 (List.length denied)

let test_meaningless_statement () =
  (* "a meaningless statement like 100 > 0 will make any server
     qualified" *)
  Alcotest.(check bool) "100 > 0 qualifies anything" true (qualified "100 > 0\n")

(* ------------------------------------------------------------------ *)
(* Vars / builtins                                                      *)
(* ------------------------------------------------------------------ *)

let test_vars_counts () =
  Alcotest.(check int)
    "22 server-side variables" 22
    (List.length L.Vars.server_side);
  Alcotest.(check int) "10 user-side variables" 10 (List.length L.Vars.user_side)

let test_vars_classification () =
  Alcotest.(check bool) "server side" true (L.Vars.is_server_side "host_cpu_free");
  Alcotest.(check bool)
    "monitor side counts as server side" true
    (L.Vars.is_server_side "monitor_network_bw");
  Alcotest.(check bool) "user side" true (L.Vars.is_user_side "user_denied_host3");
  Alcotest.(check bool)
    "temp is neither" false
    (L.Vars.is_server_side "my_temp" || L.Vars.is_user_side "my_temp");
  Alcotest.(check bool)
    "preferred prefix" true
    (L.Vars.is_preferred_param "user_preferred_host2");
  Alcotest.(check bool)
    "denied prefix" true
    (L.Vars.is_denied_param "user_denied_host5")

let test_builtins_present () =
  List.iter
    (fun name -> Alcotest.(check bool) name true (L.Builtins.is_builtin name))
    [ "sin"; "cos"; "exp"; "log10"; "sqrt"; "abs"; "int" ];
  Alcotest.(check bool) "unknown" false (L.Builtins.is_builtin "frobnicate")

let test_builtin_domain_fault () =
  Alcotest.(check bool)
    "sqrt(-1) falsifies" false
    (qualified "sqrt(0-1) < 99\n")

let test_unbound_variables () =
  let p = compile "host_cpu_free > 0.5\nx = 1\nx < typo_here\nsin(2) > 0\n" in
  Alcotest.(check (list string))
    "typos found" [ "typo_here" ]
    (L.Requirement.unbound_variables p)

(* ------------------------------------------------------------------ *)
(* Edge cases                                                           *)
(* ------------------------------------------------------------------ *)

let test_edge_numbers () =
  check_eval "leading-zero decimal" 0.5 "0.5";
  (match L.Lexer.tokenize ".5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail ".5 must not lex (no leading digit)");
  check_eval "big product" (250.0 *. 1024.0 *. 1024.0) "250*1024*1024"

let test_edge_assignment_chain () =
  (* yacc: asgn is an expr, so a = b = 3 assigns both *)
  let o = eval "a = b = 3\na == 3 && b == 3\n" in
  Alcotest.(check bool) "chained assignment" true o.L.Eval.qualified

let test_edge_assign_to_builtin () =
  let o = eval "sin = 4\n" in
  Alcotest.(check int) "builtins are not assignable" 1
    (List.length o.L.Eval.faults)

let test_edge_uparam_numeric_value_ignored () =
  (* assigning a number to a host parameter stores it, but host_lists
     only extracts addresses *)
  let o = eval "user_denied_host1 = 42\n" in
  let preferred, denied = L.Requirement.host_lists o in
  Alcotest.(check (list string)) "no bogus hosts" [] (preferred @ denied)

let test_edge_deep_nesting () =
  let deep = String.concat "" (List.init 40 (fun _ -> "(")) ^ "7"
             ^ String.concat "" (List.init 40 (fun _ -> ")")) in
  check_eval "40 levels of parens" 7.0 deep

let test_edge_long_program () =
  let lines = List.init 200 (fun i -> Printf.sprintf "v%d = %d" i i) in
  let src = String.concat "\n" (lines @ [ "v199 == 199"; "" ]) in
  Alcotest.(check bool) "200 statements" true (qualified src)

let test_edge_crlf_and_trailing () =
  (* \r is whitespace; a final line without newline still parses *)
  Alcotest.(check bool) "crlf" true (qualified "1 < 2\r\n3 < 4");
  Alcotest.(check int) "statement count" 2
    (List.length (compile "1 < 2\r\n3 < 4"))

let test_edge_comparison_chain () =
  (* left-assoc: (1 < 2) < 3  ->  1 < 3  -> true *)
  check_eval "chained comparison is left-assoc" 1.0 "1 < 2 < 3";
  (* and the counterintuitive case that falls out of it *)
  check_eval "(1 > 2) > 1 is false" 0.0 "1 > 2 > 1"

let test_edge_netaddr_in_arith_faults () =
  Alcotest.(check bool) "address + number faults" false
    (qualified "1.2.3.4 + 1 < 99\n")

(* ------------------------------------------------------------------ *)
(* Property tests                                                       *)
(* ------------------------------------------------------------------ *)

(* generator for random well-formed numeric expressions *)
let gen_expr =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             map (fun f -> L.Ast.Number (float_of_int f)) (int_range 0 100)
           else
             frequency
               [
                 ( 2,
                   map
                     (fun f -> L.Ast.Number (float_of_int f))
                     (int_range 0 100) );
                 ( 3,
                   map3
                     (fun op a b -> L.Ast.Arith (op, a, b))
                     (oneofl [ L.Ast.Add; L.Ast.Sub; L.Ast.Mul ])
                     (self (n / 2)) (self (n / 2)) );
                 ( 1,
                   map2
                     (fun a b -> L.Ast.Cmp (L.Ast.Le, a, b))
                     (self (n / 2)) (self (n / 2)) );
                 (1, map (fun a -> L.Ast.Paren a) (self (n - 1)));
                 (1, map (fun a -> L.Ast.Neg a) (self (n - 1)));
               ]))

let arbitrary_expr = QCheck.make ~print:(Fmt.str "%a" L.Ast.pp_expr) gen_expr

let eval_value expr =
  match (L.Eval.run [ { L.Ast.line = 1; expr } ]).L.Eval.statements with
  | [ { L.Eval.value; _ } ] -> value
  | _ -> Error "no statement"

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pretty-print then parse preserves evaluation"
    ~count:300 arbitrary_expr (fun expr ->
      let printed = Fmt.str "%a" L.Ast.pp_expr expr in
      match L.Requirement.compile (printed ^ "\n") with
      | Error _ -> false
      | Ok [ st ] -> eval_value st.L.Ast.expr = eval_value expr
      | Ok _ -> false)

(* Canonicalization (Requirement.canonical / cache_key): the canonical
   form must be a fixpoint — it re-lexes to the same token stream — so a
   federation root can forward it to shard wizards and every compile
   cache in the tree keys the requirement identically. *)
let prop_canonical_fixpoint =
  QCheck.Test.make ~name:"canonical requirement text is a fixpoint"
    ~count:300 arbitrary_expr (fun expr ->
      let printed = Fmt.str "%a" L.Ast.pp_expr expr in
      let c = L.Requirement.canonical printed in
      String.equal c (L.Requirement.canonical c)
      && String.equal c (L.Requirement.cache_key printed))

let test_canonical_relexable () =
  let check_fix src =
    let c = L.Requirement.canonical src in
    Alcotest.(check string) ("fixpoint of " ^ String.escaped src) c
      (L.Requirement.canonical c)
  in
  List.iter check_fix
    [
      "host_cpu_free > 0.5";
      "host_cpu_free   >    0.50000";
      "x = 0.1\n\n# comment\ny = 123456789123456789123";
      "x = 3.14159265358979312";
      "x = 1" ^ String.make 400 '0' (* literal overflows to infinity *);
      "order_by = host_memory_free / 1024.000";
    ];
  (* formatting variants collapse to one key, and numbers render
     re-lexably (the old hex-float rendering was not) *)
  Alcotest.(check string) "whitespace and trailing zeros share a key"
    (L.Requirement.cache_key "host_cpu_free > 0.5")
    (L.Requirement.cache_key "host_cpu_free   >    0.50000");
  Alcotest.(check string) "canonical text"
    "host_cpu_free > 0.5"
    (L.Requirement.canonical "host_cpu_free>0.50000")

let test_canonical_compiles () =
  let src = "host_bogomips >= 250.250\norder_by = host_memory_free" in
  let c = L.Requirement.canonical src in
  (match L.Requirement.compile c with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "canonical form does not compile: %a"
      L.Requirement.pp_compile_error e);
  Alcotest.(check string) "same key either way"
    (L.Requirement.cache_key src)
    (L.Requirement.cache_key c)

let prop_logic_flag_stable_under_parens =
  QCheck.Test.make ~name:"wrapping in parens never changes is_logical"
    ~count:300 arbitrary_expr (fun expr ->
      L.Ast.is_logical (L.Ast.Paren expr) = L.Ast.is_logical expr)

let prop_lexer_never_crashes =
  QCheck.Test.make ~name:"lexer totality on printable strings" ~count:500
    QCheck.(string_gen Gen.printable)
    (fun s -> match L.Lexer.tokenize s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Differential: bytecode interpreter vs the reference evaluator        *)
(* ------------------------------------------------------------------ *)

(* One server's worth of status data, as both sides see it: the
   bytecode gets it as a 1-server columnar snapshot, [Eval] as a
   variable binding.  Values are small integers so comparisons tie and
   divisions hit zero often. *)
type diff_env = {
  sys_vals : float array;  (* the 22 server-side columns *)
  net : (float * float) option;  (* delay, bandwidth (requirement units) *)
  sec : float option;
}

let gen_env =
  QCheck.Gen.(
    let small = map float_of_int (int_range (-2) 4) in
    map3
      (fun sys_vals net sec -> { sys_vals; net; sec })
      (array_repeat L.Bytecode.sys_field_count small)
      (opt (pair small small))
      (opt small))

let columns_of_env env =
  let cols = L.Bytecode.create_columns 1 in
  Array.iteri
    (fun field v -> Bigarray.Array2.set cols.L.Bytecode.sys field 0 v)
    env.sys_vals;
  (match env.net with
  | Some (delay, bw) ->
    Bigarray.Array1.set cols.L.Bytecode.has_net 0 1;
    Bigarray.Array1.set cols.L.Bytecode.net_delay 0 delay;
    Bigarray.Array1.set cols.L.Bytecode.net_bw 0 bw
  | None ->
    Bigarray.Array1.set cols.L.Bytecode.has_net 0 0;
    Bigarray.Array1.set cols.L.Bytecode.net_delay 0 0.0;
    Bigarray.Array1.set cols.L.Bytecode.net_bw 0 0.0);
  (match env.sec with
  | Some level ->
    Bigarray.Array1.set cols.L.Bytecode.has_sec 0 1;
    Bigarray.Array1.set cols.L.Bytecode.sec_level 0 level
  | None ->
    Bigarray.Array1.set cols.L.Bytecode.has_sec 0 0;
    Bigarray.Array1.set cols.L.Bytecode.sec_level 0 0.0);
  cols

(* The [Eval] binding equivalent to [columns_of_env]. *)
let lookup_of_env env name =
  match L.Bytecode.column_of_var name with
  | None -> None
  | Some c ->
    if c < L.Bytecode.sys_field_count then
      Some (L.Value.Num env.sys_vals.(c))
    else if c = L.Bytecode.col_net_delay then
      Option.map (fun (d, _) -> L.Value.Num d) env.net
    else if c = L.Bytecode.col_net_bw then
      Option.map (fun (_, b) -> L.Value.Num b) env.net
    else Option.map (fun s -> L.Value.Num s) env.sec

(* Expression generator exercising every construct the compiler
   translates: column variables (sometimes absent net/sec ones), temps
   that may be read before assignment, user parameters, addresses in
   arithmetic, faulting divisions, builtins, and assignments to
   read-only names — every fault path has to match byte-for-byte. *)
let diff_vars =
  [|
    "host_cpu_free";
    "host_memory_free";
    "host_system_load1";
    "host_disk_allreq";
    "monitor_network_delay";
    "monitor_network_bw";
    "host_security_level";
  |]

let gen_diff_expr =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             frequency
               [
                 ( 3,
                   map
                     (fun f -> L.Ast.Number (float_of_int f))
                     (int_range (-2) 4) );
                 (3, map (fun v -> L.Ast.Var v) (oneofa diff_vars));
                 (1, return (L.Ast.Var "t1"));
                 (1, return (L.Ast.Var "scratch"));
                 (1, return (L.Ast.Netaddr "10.0.0.7"));
                 (1, return (L.Ast.Var "user_preferred_host1"));
               ]
           in
           if n <= 0 then leaf
           else
             frequency
               [
                 (2, leaf);
                 ( 4,
                   map3
                     (fun op a b -> L.Ast.Arith (op, a, b))
                     (oneofl
                        [ L.Ast.Add; L.Ast.Sub; L.Ast.Mul; L.Ast.Div; L.Ast.Pow ])
                     (self (n / 2)) (self (n / 2)) );
                 ( 3,
                   map3
                     (fun op a b -> L.Ast.Cmp (op, a, b))
                     (oneofl
                        [ L.Ast.Lt; L.Ast.Le; L.Ast.Gt; L.Ast.Ge; L.Ast.Eq; L.Ast.Ne ])
                     (self (n / 2)) (self (n / 2)) );
                 ( 2,
                   map3
                     (fun op a b -> L.Ast.Logic (op, a, b))
                     (oneofl [ L.Ast.And; L.Ast.Or ])
                     (self (n / 2)) (self (n / 2)) );
                 ( 1,
                   map2
                     (fun f a -> L.Ast.Call (f, a))
                     (oneofl [ "sqrt"; "log"; "abs"; "int" ])
                     (self (n - 1)) );
                 (1, map (fun a -> L.Ast.Neg a) (self (n - 1)));
                 (1, map (fun a -> L.Ast.Paren a) (self (n - 1)));
                 ( 2,
                   map2
                     (fun v a -> L.Ast.Assign (v, a))
                     (oneofl
                        [
                          "t1";
                          "scratch";
                          "order_by";
                          "user_preferred_host2";
                          "user_denied_host1";
                          "host_cpu_free";
                        ])
                     (self (n - 1)) );
               ]))

let gen_diff_program =
  QCheck.Gen.(
    map
      (List.mapi (fun i expr -> { L.Ast.line = i + 1; expr }))
      (list_size (int_range 1 5) gen_diff_expr))

let arbitrary_diff_case =
  QCheck.make
    ~print:(fun (prog, env) ->
      Fmt.str "%s@.sys=%a net=%a sec=%a" (L.Ast.program_to_string prog)
        Fmt.(array ~sep:comma float)
        env.sys_vals
        Fmt.(option (pair float float))
        env.net
        Fmt.(option float)
        env.sec)
    QCheck.Gen.(pair gen_diff_program gen_env)

(* Equality over outcomes that treats NaN as equal to itself (both
   evaluators compute with the same OCaml floats, so NaN payloads never
   diverge in any way [=] could see). *)
let float_eq a b = (Float.is_nan a && Float.is_nan b) || a = b

let value_eq a b =
  match (a, b) with
  | L.Value.Num x, L.Value.Num y -> float_eq x y
  | L.Value.Addr x, L.Value.Addr y -> String.equal x y
  | _ -> false

let result_eq a b =
  match (a, b) with
  | Ok x, Ok y -> value_eq x y
  | Error x, Error y -> String.equal x y
  | _ -> false

let outcome_eq (a : L.Eval.outcome) (b : L.Eval.outcome) =
  a.qualified = b.qualified
  && List.length a.statements = List.length b.statements
  && List.for_all2
       (fun (x : L.Eval.statement_result) (y : L.Eval.statement_result) ->
         x.line = y.line && x.logical = y.logical && result_eq x.value y.value)
       a.statements b.statements
  && List.length a.uparams = List.length b.uparams
  && List.for_all2
       (fun (n, v) (m, w) -> String.equal n m && value_eq v w)
       a.uparams b.uparams
  && List.length a.faults = List.length b.faults
  && List.for_all2
       (fun (x : L.Eval.fault) (y : L.Eval.fault) ->
         x.line = y.line && String.equal x.message y.message)
       a.faults b.faults

let prop_bytecode_matches_eval =
  QCheck.Test.make
    ~name:"bytecode run agrees with Eval on random programs" ~count:1000
    arbitrary_diff_case
    (fun (prog_ast, env) ->
      let reference = L.Eval.run ~lookup:(lookup_of_env env) prog_ast in
      let prog = L.Compile.program prog_ast in
      let state = L.Bytecode.make_state prog in
      L.Bytecode.run prog state (columns_of_env env) ~server:0;
      outcome_eq reference (L.Bytecode.to_outcome prog state))

(* The statement-major sweep plan against the scalar interpreter, over
   multi-server snapshots: qualification verdicts and order keys must
   agree on every server, including servers whose net/sec columns have
   no data. *)
let sweep_cols =
  [|
    "host_cpu_free";
    "host_memory_free";
    "host_system_load1";
    "monitor_network_delay";
    "monitor_network_bw";
    "host_security_level";
  |]

let gen_sweep_program =
  QCheck.Gen.(
    let cmp_stmt =
      map3
        (fun op v c -> L.Ast.Cmp (op, L.Ast.Var v, L.Ast.Number (float_of_int c)))
        (oneofl [ L.Ast.Lt; L.Ast.Le; L.Ast.Gt; L.Ast.Ge; L.Ast.Eq; L.Ast.Ne ])
        (oneofa sweep_cols) (int_range (-1) 3)
    in
    let order_stmt =
      map (fun v -> L.Ast.Assign ("order_by", L.Ast.Var v)) (oneofa sweep_cols)
    in
    map2
      (fun cmps order ->
        List.mapi
          (fun i expr -> { L.Ast.line = i + 1; expr })
          (cmps @ Option.to_list order))
      (list_size (int_range 1 4) cmp_stmt)
      (opt order_stmt))

let columns_of_envs envs =
  let n = Array.length envs in
  let cols = L.Bytecode.create_columns n in
  Array.iteri
    (fun s env ->
      Array.iteri
        (fun field v -> Bigarray.Array2.set cols.L.Bytecode.sys field s v)
        env.sys_vals;
      (match env.net with
      | Some (delay, bw) ->
        Bigarray.Array1.set cols.L.Bytecode.has_net s 1;
        Bigarray.Array1.set cols.L.Bytecode.net_delay s delay;
        Bigarray.Array1.set cols.L.Bytecode.net_bw s bw
      | None ->
        Bigarray.Array1.set cols.L.Bytecode.has_net s 0;
        Bigarray.Array1.set cols.L.Bytecode.net_delay s 0.0;
        Bigarray.Array1.set cols.L.Bytecode.net_bw s 0.0);
      match env.sec with
      | Some level ->
        Bigarray.Array1.set cols.L.Bytecode.has_sec s 1;
        Bigarray.Array1.set cols.L.Bytecode.sec_level s level
      | None ->
        Bigarray.Array1.set cols.L.Bytecode.has_sec s 0;
        Bigarray.Array1.set cols.L.Bytecode.sec_level s 0.0)
    envs;
  cols

let arbitrary_sweep_case =
  QCheck.make
    ~print:(fun (prog, envs) ->
      Fmt.str "%s@.%d servers" (L.Ast.program_to_string prog)
        (Array.length envs))
    QCheck.Gen.(
      pair gen_sweep_program (array_size (int_range 1 8) gen_env))

let prop_sweep_matches_run =
  QCheck.Test.make
    ~name:"sweep plan agrees with the interpreter on every server"
    ~count:500 arbitrary_sweep_case
    (fun (prog_ast, envs) ->
      let prog = L.Compile.program prog_ast in
      match L.Bytecode.sweep_of prog with
      | None ->
        QCheck.Test.fail_report "sweep-shaped program produced no plan"
      | Some sw ->
        let n = Array.length envs in
        let cols = columns_of_envs envs in
        let qualified = Bytes.make n '\000' in
        let order = Array.make n 0.0 in
        L.Bytecode.run_sweep sw cols ~qualified ~order;
        let state = L.Bytecode.make_state prog in
        let agree s =
          L.Bytecode.run prog state cols ~server:s;
          let ref_ok = L.Bytecode.qualified prog state in
          let ref_key =
            if state.L.Bytecode.order_found then state.L.Bytecode.order_val
            else Float.neg_infinity
          in
          ref_ok = (Bytes.get qualified s <> '\000')
          && ((not prog.L.Bytecode.has_order_by) || float_eq ref_key order.(s))
        in
        let ok = ref true in
        for s = 0 to n - 1 do
          ok := !ok && agree s
        done;
        !ok)

(* The bytecode verifier against the compiler: every compiled program
   must verify (soundness of NUMCHK elision, register allocation and
   fault-path dead code included), and corrupting any single code cell
   must be caught (every operand domain is far below the smash value,
   and an opcode cell becomes an unknown opcode). *)
let prop_verify_accepts_compiled =
  QCheck.Test.make
    ~name:"Bytecode.verify accepts every compiled program" ~count:1000
    (QCheck.make ~print:L.Ast.program_to_string gen_diff_program)
    (fun prog_ast ->
      (* [~verify:true] runs the verifier inside Compile and raises on a
         rejection; the explicit call pins the [result] API too. *)
      let p = L.Compile.program ~verify:true prog_ast in
      match L.Bytecode.verify p with
      | Ok () -> true
      | Error e ->
        QCheck.Test.fail_reportf "compiled program rejected: %s"
          (L.Bytecode.verify_error_to_string e))

let prop_verify_rejects_smashed =
  QCheck.Test.make
    ~name:"Bytecode.verify rejects any smashed code cell" ~count:500
    (QCheck.make
       ~print:(fun (prog, i) ->
         Fmt.str "%s@.cell seed %d" (L.Ast.program_to_string prog) i)
       QCheck.Gen.(pair gen_diff_program (int_bound 10_000)))
    (fun (prog_ast, i) ->
      let p = L.Compile.program prog_ast in
      let code = Array.copy p.L.Bytecode.code in
      let cell = i mod Array.length code in
      code.(cell) <- 10_000_000;
      match L.Bytecode.verify { p with L.Bytecode.code } with
      | Error _ -> true
      | Ok () ->
        QCheck.Test.fail_reportf "smashed cell %d went unnoticed" cell)

(* Hand-built single-statement programs hitting each verifier judgment
   the generator cannot reach (Compile never emits these shapes). *)
let mk_broken_prog ?(nregs = 3) ?(consts = [| 1.0 |]) ?(pool = [||])
    ?(ntemps = 0) ?(nulog = 0) ?(has_uparams = false) ?(stmt_reg = 0) code =
  {
    L.Bytecode.code;
    stmt_start = [| 0 |];
    stmt_stop = [| Array.length code |];
    stmt_reg = [| stmt_reg |];
    stmt_line = [| 1 |];
    stmt_logical = [| true |];
    stmt_order_by = [| false |];
    consts;
    pool;
    fns = [||];
    nregs;
    ntemps;
    nulog;
    has_uparams;
    has_order_by = false;
  }

let expect_reject name p =
  match L.Bytecode.verify p with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: verifier accepted a corrupt program" name

let test_verify_rejects_handmade () =
  (* CONST r0; ADD r2 <- r0 + r1 with r1's init dropped *)
  expect_reject "dropped init"
    (mk_broken_prog ~stmt_reg:2 [| 0; 0; 0; 4; 2; 0; 1 |]);
  (* ADDR r0; NEG r1 <- -r0: an address into arithmetic, no NUMCHK *)
  expect_reject "missing numchk"
    (mk_broken_prog ~pool:[| "10.0.0.7" |] ~stmt_reg:1 [| 1; 0; 0; 9; 1; 0 |]);
  (* CONST r0 but the statement's declared result register is r2 *)
  expect_reject "unwritten result"
    (mk_broken_prog ~stmt_reg:2 [| 0; 0; 0 |]);
  (* SETU with has_uparams = false: the per-run uset reset would be
     skipped and parameters would leak across servers *)
  expect_reject "setu without uparams"
    (mk_broken_prog ~nulog:1 ~stmt_reg:0 [| 0; 0; 0; 17; 0; 0 |]);
  (* constant index past the pool *)
  expect_reject "operand bounds" (mk_broken_prog ~stmt_reg:0 [| 0; 0; 5 |]);
  (* and the minimal well-formed slice is accepted *)
  match L.Bytecode.verify (mk_broken_prog ~stmt_reg:0 [| 0; 0; 0 |]) with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "well-formed program rejected: %s"
      (L.Bytecode.verify_error_to_string e)

let () =
  Alcotest.run "smart_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "dotted quad" `Quick test_lex_netaddr_quad;
          Alcotest.test_case "dotted hostname" `Quick test_lex_netaddr_hostname;
          Alcotest.test_case "hyphen identifier rejected" `Quick
            test_lex_hyphen_identifier_rejected;
          Alcotest.test_case "subtraction" `Quick
            test_lex_identifier_vs_subtraction;
          Alcotest.test_case "comments/whitespace" `Quick
            test_lex_comments_and_whitespace;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "bad ampersand" `Quick test_lex_bad_ampersand;
          Alcotest.test_case "malformed quad" `Quick test_lex_malformed_quad;
          Alcotest.test_case "positions" `Quick test_lex_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "builtin calls" `Quick test_parse_builtin_call;
          Alcotest.test_case "error position" `Quick test_parse_error_reported;
          Alcotest.test_case "unbalanced paren" `Quick
            test_parse_unbalanced_paren;
          Alcotest.test_case "multi-line programs" `Quick test_parse_multiline;
          Alcotest.test_case "statement lines" `Quick test_parse_statement_lines;
        ] );
      ("logic flag", [ Alcotest.test_case "yacc semantics" `Quick test_logic_flag ]);
      ( "evaluator",
        [
          Alcotest.test_case "conjunction" `Quick test_qualification_conjunction;
          Alcotest.test_case "empty program" `Quick test_empty_program_qualifies;
          Alcotest.test_case "temp variables" `Quick test_temp_variables;
          Alcotest.test_case "undefined in logical" `Quick
            test_undefined_in_logical_is_false;
          Alcotest.test_case "fault recorded" `Quick
            test_undefined_fault_recorded;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "server vars read-only" `Quick
            test_assign_to_server_var_fault;
          Alcotest.test_case "server bindings" `Quick test_server_binding;
          Alcotest.test_case "no short circuit" `Quick test_no_short_circuit;
          Alcotest.test_case "user params collected" `Quick
            test_uparams_collected;
          Alcotest.test_case "bare hostname param" `Quick
            test_uparam_bare_hostname;
          Alcotest.test_case "assignment in conjunction" `Quick
            test_uparam_assignment_inside_conjunction;
          Alcotest.test_case "address comparisons" `Quick
            test_address_comparisons;
          Alcotest.test_case "thesis sample requirement" `Quick
            test_thesis_sample_requirement;
          Alcotest.test_case "meaningless statement" `Quick
            test_meaningless_statement;
        ] );
      ( "vars/builtins",
        [
          Alcotest.test_case "counts" `Quick test_vars_counts;
          Alcotest.test_case "classification" `Quick test_vars_classification;
          Alcotest.test_case "builtins" `Quick test_builtins_present;
          Alcotest.test_case "domain fault" `Quick test_builtin_domain_fault;
          Alcotest.test_case "unbound variables" `Quick test_unbound_variables;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "numbers" `Quick test_edge_numbers;
          Alcotest.test_case "assignment chain" `Quick
            test_edge_assignment_chain;
          Alcotest.test_case "assign to builtin" `Quick
            test_edge_assign_to_builtin;
          Alcotest.test_case "numeric host param ignored" `Quick
            test_edge_uparam_numeric_value_ignored;
          Alcotest.test_case "deep nesting" `Quick test_edge_deep_nesting;
          Alcotest.test_case "long program" `Quick test_edge_long_program;
          Alcotest.test_case "CRLF / trailing line" `Quick
            test_edge_crlf_and_trailing;
          Alcotest.test_case "comparison chain" `Quick
            test_edge_comparison_chain;
          Alcotest.test_case "address arithmetic faults" `Quick
            test_edge_netaddr_in_arith_faults;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "re-lexable fixpoint" `Quick
            test_canonical_relexable;
          Alcotest.test_case "compiles and shares keys" `Quick
            test_canonical_compiles;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "rejects hand-corrupted programs" `Quick
            test_verify_rejects_handmade;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pp_parse_roundtrip;
            prop_canonical_fixpoint;
            prop_logic_flag_stable_under_parens;
            prop_lexer_never_crashes;
            prop_bytecode_matches_eval;
            prop_sweep_matches_run;
            prop_verify_accepts_compiled;
            prop_verify_rejects_smashed;
          ] );
    ]
