(* Tests for the discrete-event engine: ordering, cancellation, periodic
   processes, time monotonicity. *)

module Engine = Smart_sim.Engine

let test_event_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule_at e ~time:3.0 (note "c"));
  ignore (Engine.schedule_at e ~time:1.0 (note "a"));
  ignore (Engine.schedule_at e ~time:2.0 (note "b"));
  Engine.run e ~until:10.0;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at until" 10.0 (Engine.now e)

let test_simultaneous_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule_at e ~time:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e ~until:2.0;
  Alcotest.(check (list int))
    "scheduling order preserved"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_run_partial () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule_at e ~time:1.0 (fun () -> incr fired));
  ignore (Engine.schedule_at e ~time:5.0 (fun () -> incr fired));
  Engine.run e ~until:2.0;
  Alcotest.(check int) "only due events" 1 !fired;
  Engine.run e ~until:6.0;
  Alcotest.(check int) "rest later" 2 !fired

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e ~time:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Alcotest.(check bool) "flag set" true (Engine.is_cancelled h);
  Engine.run e ~until:2.0;
  Alcotest.(check bool) "cancelled not fired" false !fired;
  Alcotest.(check int) "not counted" 0 (Engine.executed_events e)

let test_schedule_during_event () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule_at e ~time:1.0 (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_after e ~delay:0.5 (fun () ->
                log := "inner" :: !log))));
  Engine.run e ~until:2.0;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_time_reversal () =
  let e = Engine.create () in
  Engine.run e ~until:5.0;
  (try
     ignore (Engine.schedule_at e ~time:1.0 (fun () -> ()));
     Alcotest.fail "expected Time_reversal"
   with Engine.Time_reversal { now; requested } ->
     Alcotest.(check (float 1e-9)) "now" 5.0 now;
     Alcotest.(check (float 1e-9)) "requested" 1.0 requested);
  try
    Engine.run e ~until:1.0;
    Alcotest.fail "expected Time_reversal on run"
  with Engine.Time_reversal _ -> ()

let test_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      ignore (Engine.schedule_after e ~delay:(-1.0) (fun () -> ())))

let test_periodic () =
  let e = Engine.create () in
  let times = ref [] in
  let proc =
    Engine.every e ~period:1.0 ~start:0.5 (fun now -> times := now :: !times)
  in
  Engine.run e ~until:4.0;
  Alcotest.(check (list (float 1e-9)))
    "fires at start + k*period" [ 0.5; 1.5; 2.5; 3.5 ] (List.rev !times);
  Engine.stop_periodic proc;
  Engine.run e ~until:10.0;
  Alcotest.(check int) "stopped" 4 (List.length !times)

let test_periodic_stop_within_callback () =
  let e = Engine.create () in
  let count = ref 0 in
  let proc_ref = ref None in
  let proc =
    Engine.every e ~period:1.0 ~start:1.0 (fun _ ->
        incr count;
        if !count = 2 then
          match !proc_ref with
          | Some p -> Engine.stop_periodic p
          | None -> ())
  in
  proc_ref := Some proc;
  Engine.run e ~until:10.0;
  Alcotest.(check int) "stopped from inside" 2 !count

let test_periodic_jitter () =
  let e = Engine.create () in
  let rng = Smart_util.Prng.create ~seed:1 in
  let times = ref [] in
  ignore
    (Engine.every e ~jitter:0.2 ~rng ~period:1.0 ~start:0.0 (fun now ->
         times := now :: !times));
  Engine.run e ~until:10.0;
  let times = List.rev !times in
  Alcotest.(check bool)
    "about 9-10 firings" true
    (List.length times >= 8 && List.length times <= 11);
  List.iteri
    (fun i t ->
      if i > 0 then begin
        let prev = List.nth times (i - 1) in
        let gap = t -. prev in
        Alcotest.(check bool)
          "gap in [period, period+jitter]" true
          (gap >= 1.0 -. 1e-9 && gap <= 1.2 +. 1e-9)
      end)
    times

let test_run_until_idle () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore
    (Engine.schedule_at e ~time:100.0 (fun () ->
         incr fired;
         ignore (Engine.schedule_after e ~delay:50.0 (fun () -> incr fired))));
  Engine.run_until_idle e;
  Alcotest.(check int) "all chased down" 2 !fired;
  Alcotest.(check int) "queue empty" 0 (Engine.pending_events e)

(* ------------------------------------------------------------------ *)
(* Trace                                                                *)
(* ------------------------------------------------------------------ *)

module Trace = Smart_sim.Trace

let test_trace_basic () =
  let t = Trace.create ~capacity:10 () in
  Trace.record t ~now:1.0 ~category:"net" "first";
  Trace.recordf t ~now:2.0 ~category:"flow" "answer %d" 42;
  Alcotest.(check int) "two entries" 2 (Trace.total_recorded t);
  (match Trace.entries t with
  | [ a; b ] ->
    Alcotest.(check string) "first message" "first" a.Trace.message;
    Alcotest.(check string) "formatted" "answer 42" b.Trace.message;
    Alcotest.(check (float 1e-9)) "timestamp" 2.0 b.Trace.time
  | _ -> Alcotest.fail "expected two entries");
  Alcotest.(check int) "category filter" 1
    (List.length (Trace.filter t ~category:"net"))

let test_trace_ring_overflow () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record t ~now:(float_of_int i) ~category:"c" (string_of_int i)
  done;
  Alcotest.(check int) "dropped oldest" 6 (Trace.dropped t);
  Alcotest.(check (list string)) "latest four, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.message) (Trace.entries t))

let test_trace_disable () =
  let t = Trace.create () in
  Trace.set_enabled t false;
  Trace.record t ~now:0.0 ~category:"c" "ignored";
  Trace.recordf t ~now:0.0 ~category:"c" "also %s" "ignored";
  Alcotest.(check int) "nothing recorded" 0 (Trace.total_recorded t);
  Trace.set_enabled t true;
  Trace.record t ~now:0.0 ~category:"c" "kept";
  Alcotest.(check int) "recording resumed" 1 (Trace.total_recorded t);
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.total_recorded t)

let test_trace_captures_network_events () =
  let trace = Trace.create () in
  let c = Smart_host.Cluster.create ~trace () in
  let spec = Smart_host.Testbed.spec_of_name "helene" in
  let a = Smart_host.Cluster.add_machine c spec in
  let b =
    Smart_host.Cluster.add_machine c
      { spec with Smart_host.Machine.name = "x"; ip = "10.0.0.9" }
  in
  ignore (Smart_host.Cluster.link c ~a ~b Smart_host.Testbed.lan_conf);
  let done_ = ref false in
  ignore
    (Smart_net.Flow.start (Smart_host.Cluster.flows c) ~src:a ~dst:b
       ~bytes:100_000 ~on_complete:(fun _ -> done_ := true));
  Engine.run_until_idle (Smart_host.Cluster.engine c);
  Alcotest.(check bool) "flow completed" true !done_;
  let flow_events = Trace.filter trace ~category:"flow" in
  Alcotest.(check int) "start + complete" 2 (List.length flow_events)

let prop_ordering =
  QCheck.Test.make ~name:"random schedules execute in key order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0.0 100.0))
    (fun times ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t ->
          ignore
            (Engine.schedule_at e ~time:t (fun () ->
                 fired := Engine.now e :: !fired)))
        times;
      Engine.run e ~until:101.0;
      let seen = List.rev !fired in
      List.sort compare times = seen)

(* ------------------------------------------------------------------ *)
(* Fault-injection plane                                                *)
(* ------------------------------------------------------------------ *)

module Faults = Smart_sim.Faults

let test_faults_fire_in_order () =
  let e = Engine.create () in
  let applied = ref [] in
  let plan =
    Faults.sort_plan
      [
        { Faults.at = 3.0; action = Faults.Restart_node "a" };
        { Faults.at = 1.0; action = Faults.Crash_node "a" };
        { Faults.at = 2.0; action = Faults.Partition_link ("a", "b") };
      ]
  in
  let f =
    Faults.install ~engine:e
      ~apply:(fun a -> applied := Faults.action_kind a :: !applied)
      plan
  in
  Alcotest.(check int) "all pending" 3 (Faults.pending f);
  Engine.run e ~until:2.5;
  Alcotest.(check (list string)) "time order"
    [ "crash_node"; "partition_link" ]
    (List.rev !applied);
  Alcotest.(check int) "two injected" 2 (Faults.injected f);
  Alcotest.(check int) "one pending" 1 (Faults.pending f);
  Engine.run e ~until:10.0;
  Alcotest.(check int) "all injected" 3 (Faults.injected f)

let test_faults_metered () =
  let e = Engine.create () in
  let m = Smart_util.Metrics.create () in
  let plan =
    [
      { Faults.at = 1.0; action = Faults.Crash_node "x" };
      { Faults.at = 2.0; action = Faults.Crash_node "y" };
      { Faults.at = 3.0; action = Faults.Corrupt_frames 0.02 };
    ]
  in
  ignore (Faults.install ~metrics:m ~engine:e ~apply:(fun _ -> ()) plan);
  Engine.run e ~until:10.0;
  let cv name =
    match Smart_util.Metrics.find m name with
    | Some (Smart_util.Metrics.Counter c) -> c
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "total" 3 (cv "faults.injected_total");
  Alcotest.(check int) "crashes" 2 (cv "faults.crash_node_total");
  Alcotest.(check int) "corruptions" 1 (cv "faults.corrupt_frames_total")

let test_faults_random_plan_deterministic () =
  let mk seed =
    Faults.random_plan ~episodes:5 ~corruption:0.02
      ~rng:(Smart_util.Prng.create ~seed)
      ~hosts:[ "a"; "b"; "c" ] ~monitors:[ "mon" ] ~duration:60.0 ()
  in
  let render plan =
    String.concat ";"
      (List.map
         (fun { Faults.at; action } ->
           Printf.sprintf "%.6f:%s" at (Faults.action_kind action))
         plan)
  in
  Alcotest.(check string) "same seed, same plan" (render (mk 9))
    (render (mk 9));
  Alcotest.(check bool) "different seed, different plan" true
    (not (String.equal (render (mk 9)) (render (mk 10))));
  (* structure: sorted by time, every fault repaired, inside the window *)
  let plan = mk 9 in
  Alcotest.(check bool) "sorted" true
    (String.equal (render plan) (render (Faults.sort_plan plan)));
  let count pred = List.length (List.filter pred plan) in
  let faults =
    count (fun ev ->
        match ev.Faults.action with
        | Faults.Crash_node _ | Faults.Partition_host _
        | Faults.Monitor_outage _ -> true
        | _ -> false)
  in
  let repairs =
    count (fun ev ->
        match ev.Faults.action with
        | Faults.Restart_node _ | Faults.Heal_host _ | Faults.Monitor_restore _
          -> true
        | _ -> false)
  in
  Alcotest.(check int) "five faults" 5 faults;
  Alcotest.(check int) "every fault repaired" faults repairs;
  List.iter
    (fun ev ->
      Alcotest.(check bool) "within the run" true
        (ev.Faults.at >= 0.0 && ev.Faults.at <= 60.0))
    plan

let test_faults_past_event_rejected () =
  let e = Engine.create () in
  Engine.run e ~until:5.0;
  Alcotest.(check bool) "time reversal rejected" true
    (try
       ignore
         (Faults.install ~engine:e ~apply:(fun _ -> ())
            [ { Faults.at = 1.0; action = Faults.Crash_node "x" } ]);
       false
     with Engine.Time_reversal _ -> true)

let () =
  Alcotest.run "smart_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event ordering" `Quick test_event_ordering;
          Alcotest.test_case "simultaneous FIFO" `Quick test_simultaneous_fifo;
          Alcotest.test_case "partial run" `Quick test_run_partial;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "schedule during event" `Quick
            test_schedule_during_event;
          Alcotest.test_case "time reversal" `Quick test_time_reversal;
          Alcotest.test_case "negative delay" `Quick test_negative_delay;
          Alcotest.test_case "run until idle" `Quick test_run_until_idle;
        ] );
      ( "periodic",
        [
          Alcotest.test_case "regular firings" `Quick test_periodic;
          Alcotest.test_case "stop within callback" `Quick
            test_periodic_stop_within_callback;
          Alcotest.test_case "jitter bounds" `Quick test_periodic_jitter;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record and filter" `Quick test_trace_basic;
          Alcotest.test_case "ring overflow" `Quick test_trace_ring_overflow;
          Alcotest.test_case "disable/clear" `Quick test_trace_disable;
          Alcotest.test_case "captures network events" `Quick
            test_trace_captures_network_events;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fire in order" `Quick test_faults_fire_in_order;
          Alcotest.test_case "metered" `Quick test_faults_metered;
          Alcotest.test_case "random plan deterministic" `Quick
            test_faults_random_plan_deterministic;
          Alcotest.test_case "past event rejected" `Quick
            test_faults_past_event_rejected;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_ordering ]);
    ]
