(* Tests for the wire protocols: ASCII probe reports, binary status
   records (both byte orders, incl. the §3.5.1 endian-mismatch hazard),
   [type,size,data] framing with incremental decoding, and the wizard
   request/reply messages. *)

module P = Smart_proto

let sample_report =
  {
    P.Report.host = "helene";
    ip = "192.168.2.3";
    load1 = 0.42;
    load5 = 0.21;
    load15 = 0.08;
    cpu_user = 0.31;
    cpu_nice = 0.0;
    cpu_system = 0.04;
    cpu_free = 0.65;
    bogomips = 3394.76;
    mem_total = 256.0;
    mem_used = 120.5;
    mem_free = 135.5;
    mem_buffers = 18.0;
    mem_cached = 80.25;
    disk_rreq = 12.0;
    disk_rblocks = 96.0;
    disk_wreq = 5.5;
    disk_wblocks = 44.0;
    net_rbytes = 20480.0;
    net_rpackets = 22.0;
    net_tbytes = 10240.0;
    net_tpackets = 11.0;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                               *)
(* ------------------------------------------------------------------ *)

let test_report_roundtrip () =
  let s = P.Report.to_string sample_report in
  match P.Report.of_string s with
  | Ok r ->
    Alcotest.(check string) "host" "helene" r.P.Report.host;
    Alcotest.(check string) "ip" "192.168.2.3" r.P.Report.ip;
    Alcotest.(check (float 1e-6)) "load1" 0.42 r.P.Report.load1;
    Alcotest.(check (float 1e-6)) "bogomips" 3394.76 r.P.Report.bogomips;
    Alcotest.(check (float 1e-6)) "cached" 80.25 r.P.Report.mem_cached;
    Alcotest.(check (float 1e-6)) "tpackets" 11.0 r.P.Report.net_tpackets
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_report_size_budget () =
  (* §3.2.1: the report stays a small datagram (thesis: < 200 bytes) *)
  let s = P.Report.to_string sample_report in
  Alcotest.(check bool) "under 256 bytes" true (String.length s <= 256)

let test_report_bad_inputs () =
  let is_err s =
    match P.Report.of_string s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "wrong tag" true (is_err "XX|a|b|1");
  Alcotest.(check bool) "short" true (is_err "SR1|a|b|1|2");
  Alcotest.(check bool) "non-numeric" true
    (is_err
       (String.concat "|"
          ("SR1" :: "h" :: "i" :: List.init 21 (fun _ -> "oops"))))

let test_report_variable_binding () =
  let v name = P.Report.variable sample_report name in
  Alcotest.(check (option (float 1e-6))) "load1" (Some 0.42)
    (v "host_system_load1");
  Alcotest.(check (option (float 1e-6))) "cpu_free" (Some 0.65)
    (v "host_cpu_free");
  Alcotest.(check (option (float 1e-6))) "allreq = r+w" (Some 17.5)
    (v "host_disk_allreq");
  Alcotest.(check (option (float 1e-6))) "tbytesps" (Some 10240.0)
    (v "host_network_tbytesps");
  Alcotest.(check (option (float 1e-6))) "unknown" None (v "host_cpu_mhz");
  (* every server-side variable except the monitor ones binds *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " binds") true (v name <> None))
    Smart_lang.Vars.server_side

(* ------------------------------------------------------------------ *)
(* Binary records                                                       *)
(* ------------------------------------------------------------------ *)

let sys_record = { P.Records.report = sample_report; updated_at = 123.456 }

let test_sys_record_roundtrip order =
  let s = P.Records.encode_sys order sys_record in
  Alcotest.(check int) "declared size" P.Records.sys_record_size
    (String.length s);
  match P.Records.decode_sys order s ~pos:0 with
  | Ok r ->
    Alcotest.(check string) "host" "helene"
      r.P.Records.report.P.Report.host;
    Alcotest.(check (float 1e-9)) "timestamp" 123.456 r.P.Records.updated_at;
    Alcotest.(check (float 1e-9)) "bogomips" 3394.76
      r.P.Records.report.P.Report.bogomips
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_sys_record_le () = test_sys_record_roundtrip P.Endian.Little
let test_sys_record_be () = test_sys_record_roundtrip P.Endian.Big

let test_sys_record_endian_mismatch () =
  (* §3.5.1: decoding with the wrong byte order yields garbage *)
  let s = P.Records.encode_sys P.Endian.Little sys_record in
  match P.Records.decode_sys P.Endian.Big s ~pos:0 with
  | Ok r ->
    Alcotest.(check bool) "values scrambled" true
      (Float.abs (r.P.Records.report.P.Report.bogomips -. 3394.76) > 1.0
      || Float.is_nan r.P.Records.report.P.Report.bogomips)
  | Error _ -> ()  (* also acceptable: mismatch detected *)

let test_sys_record_truncated () =
  let s = P.Records.encode_sys P.Endian.Little sys_record in
  match
    P.Records.decode_sys P.Endian.Little (String.sub s 0 10) ~pos:0
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated record must not decode"

let test_sys_record_concatenation () =
  let s =
    P.Records.encode_sys P.Endian.Little sys_record
    ^ P.Records.encode_sys P.Endian.Little
        {
          sys_record with
          P.Records.report = { sample_report with P.Report.host = "phoebe" };
        }
  in
  match
    P.Records.decode_sys P.Endian.Little s ~pos:P.Records.sys_record_size
  with
  | Ok r ->
    Alcotest.(check string) "second record" "phoebe"
      r.P.Records.report.P.Report.host
  | Error e -> Alcotest.failf "decode failed: %s" e

let net_record =
  {
    P.Records.monitor = "netmon-1";
    entries =
      [
        { P.Records.peer = "netmon-2"; delay = 0.004; bandwidth = 5.5e6;
          measured_at = 10.0 };
        { P.Records.peer = "netmon-3"; delay = 0.011; bandwidth = 2.1e6;
          measured_at = 11.0 };
      ];
  }

let test_net_record_roundtrip () =
  List.iter
    (fun order ->
      let s = P.Records.encode_net order net_record in
      match P.Records.decode_net order s with
      | Ok r ->
        Alcotest.(check string) "monitor" "netmon-1" r.P.Records.monitor;
        Alcotest.(check int) "entries" 2 (List.length r.P.Records.entries);
        let e2 = List.nth r.P.Records.entries 1 in
        Alcotest.(check string) "peer" "netmon-3" e2.P.Records.peer;
        Alcotest.(check (float 1e-9)) "delay" 0.011 e2.P.Records.delay
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [ P.Endian.Little; P.Endian.Big ]

let test_net_record_empty () =
  let s =
    P.Records.encode_net P.Endian.Little
      { P.Records.monitor = "m"; entries = [] }
  in
  match P.Records.decode_net P.Endian.Little s with
  | Ok r -> Alcotest.(check int) "no entries" 0 (List.length r.P.Records.entries)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_sec_record_roundtrip () =
  let record =
    {
      P.Records.entries =
        [
          { P.Records.host = "alpha"; level = 5 };
          { P.Records.host = "beta"; level = 0 };
        ];
    }
  in
  let s = P.Records.encode_sec P.Endian.Little record in
  match P.Records.decode_sec P.Endian.Little s with
  | Ok r ->
    Alcotest.(check int) "entries" 2 (List.length r.P.Records.entries);
    Alcotest.(check int) "level" 5
      (List.hd r.P.Records.entries).P.Records.level
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_security_log_parsing () =
  let log = "# comment\nalpha 5\n\nbeta 3   # trailing comment\n" in
  match P.Records.parse_security_log log with
  | Ok r ->
    Alcotest.(check int) "two entries" 2 (List.length r.P.Records.entries);
    Alcotest.(check int) "beta level" 3
      (List.nth r.P.Records.entries 1).P.Records.level
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_security_log_bad () =
  match P.Records.parse_security_log "alpha notanumber\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad level must not parse"

(* ------------------------------------------------------------------ *)
(* Frames                                                               *)
(* ------------------------------------------------------------------ *)

let frames_eq expected actual =
  List.length expected = List.length actual
  && List.for_all2
       (fun (a : P.Frame.frame) (b : P.Frame.frame) ->
         a.P.Frame.payload_type = b.P.Frame.payload_type
         && String.equal a.P.Frame.data b.P.Frame.data)
       expected actual

let test_frame_roundtrip () =
  let fs =
    [
      { P.Frame.payload_type = P.Frame.Sys_db; data = "sysdata"; trace = Smart_util.Tracelog.root };
      { P.Frame.payload_type = P.Frame.Net_db; data = ""; trace = Smart_util.Tracelog.root };
      { P.Frame.payload_type = P.Frame.Sec_db; data = String.make 1000 'x'; trace = Smart_util.Tracelog.root };
    ]
  in
  let wire = String.concat "" (List.map (P.Frame.encode P.Endian.Little) fs) in
  let dec = P.Frame.decoder P.Endian.Little in
  P.Frame.feed dec wire;
  Alcotest.(check bool) "all frames" true (frames_eq fs (P.Frame.frames dec));
  Alcotest.(check int) "nothing skipped" 0 (P.Frame.skipped_bytes dec)

let test_frame_incremental () =
  (* feed the stream one byte at a time: TCP segmentation must not
     matter *)
  let fs =
    [
      { P.Frame.payload_type = P.Frame.Sys_db; data = "hello"; trace = Smart_util.Tracelog.root };
      { P.Frame.payload_type = P.Frame.Sec_db; data = "world!"; trace = Smart_util.Tracelog.root };
    ]
  in
  let wire = String.concat "" (List.map (P.Frame.encode P.Endian.Little) fs) in
  let dec = P.Frame.decoder P.Endian.Little in
  let got = ref [] in
  String.iter
    (fun c ->
      P.Frame.feed dec (String.make 1 c);
      got := !got @ P.Frame.frames dec)
    wire;
  Alcotest.(check bool) "reassembled" true (frames_eq fs !got)

let test_frame_unknown_type_resyncs () =
  (* garbage bytes before a valid frame: the decoder skips past them and
     still delivers the frame, recording one corruption episode *)
  let dec = P.Frame.decoder P.Endian.Little in
  let b = Bytes.make 8 '\000' in
  Bytes.set_int32_le b 0 99l;
  P.Frame.feed dec (Bytes.to_string b);
  Alcotest.(check (list unit)) "no frame from garbage" []
    (List.map ignore (P.Frame.frames dec));
  (match P.Frame.last_error dec with
  | Some (P.Frame.Unknown_code 99) -> ()
  | _ -> Alcotest.fail "expected Unknown_code 99");
  let f =
    { P.Frame.payload_type = P.Frame.Sys_db; data = "after"; trace = Smart_util.Tracelog.root }
  in
  P.Frame.feed dec (P.Frame.encode P.Endian.Little f);
  Alcotest.(check bool) "frame after garbage decodes" true
    (frames_eq [ f ] (P.Frame.frames dec));
  Alcotest.(check int) "one resync episode" 1 (P.Frame.resyncs dec);
  Alcotest.(check int) "garbage skipped" 8 (P.Frame.skipped_bytes dec)

let test_frame_oversized_resyncs () =
  let dec = P.Frame.decoder P.Endian.Little in
  let b = Bytes.make 8 '\000' in
  Bytes.set_int32_le b 0 1l;
  Bytes.set_int32_le b 4 (Int32.of_int (P.Frame.max_frame_size + 1));
  P.Frame.feed dec (Bytes.to_string b);
  Alcotest.(check int) "no frame from oversized header" 0
    (List.length (P.Frame.frames dec));
  (match P.Frame.last_error dec with
  | Some (P.Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "expected Oversized");
  Alcotest.(check bool) "skipping began" true (P.Frame.skipped_bytes dec > 0)

let test_frame_truncated_waits () =
  (* a short size prefix is not corruption: the decoder waits for the
     rest instead of raising or skipping *)
  let f =
    { P.Frame.payload_type = P.Frame.Net_db; data = "payload"; trace = Smart_util.Tracelog.root }
  in
  let wire = P.Frame.encode P.Endian.Big f in
  let dec = P.Frame.decoder P.Endian.Big in
  P.Frame.feed dec (String.sub wire 0 6);
  Alcotest.(check int) "nothing yet" 0 (List.length (P.Frame.frames dec));
  Alcotest.(check int) "no bytes skipped" 0 (P.Frame.skipped_bytes dec);
  Alcotest.(check int) "six pending" 6 (P.Frame.pending_bytes dec);
  P.Frame.feed dec (String.sub wire 6 (String.length wire - 6));
  Alcotest.(check bool) "completes" true (frames_eq [ f ] (P.Frame.frames dec))

let test_frame_decode_one_truncated () =
  (* decode_one returns typed errors for truncated prefixes at every
     cut point — never raises *)
  let f =
    { P.Frame.payload_type = P.Frame.Sys_db; data = "abcdef"; trace = Smart_util.Tracelog.root }
  in
  let wire = P.Frame.encode ~crc:true P.Endian.Little f in
  for cut = 0 to String.length wire - 1 do
    match P.Frame.decode_one P.Endian.Little (String.sub wire 0 cut) with
    | Error (P.Frame.Truncated { need; have }) ->
      Alcotest.(check bool) "need > have" true (need > have)
    | Error e ->
      Alcotest.failf "cut %d: unexpected %s" cut (P.Frame.error_to_string e)
    | Ok _ -> Alcotest.failf "cut %d: truncated input decoded" cut
  done;
  match P.Frame.decode_one P.Endian.Little wire with
  | Ok (got, used) ->
    Alcotest.(check bool) "full roundtrip" true (frames_eq [ f ] [ got ]);
    Alcotest.(check int) "all bytes used" (String.length wire) used
  | Error e -> Alcotest.failf "full frame: %s" (P.Frame.error_to_string e)

let test_frame_crc_detects_flip () =
  (* CRC trailer: any single-byte flip is detected, and the decoder
     resyncs onto the next clean frame *)
  let f data =
    { P.Frame.payload_type = P.Frame.Sec_db; data; trace = Smart_util.Tracelog.root }
  in
  let first = P.Frame.encode ~crc:true P.Endian.Little (f "corrupt-me") in
  let second = f "survivor" in
  let flipped = Bytes.of_string first in
  Bytes.set flipped 9 (Char.chr (Char.code (Bytes.get flipped 9) lxor 0x5A));
  (* the flip is caught as a CRC mismatch, not a silent bad payload *)
  (match P.Frame.decode_one P.Endian.Little (Bytes.to_string flipped) with
  | Error (P.Frame.Crc_mismatch _) -> ()
  | Error e -> Alcotest.failf "unexpected %s" (P.Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "flipped byte slipped past the CRC");
  let dec = P.Frame.decoder P.Endian.Little in
  P.Frame.feed dec (Bytes.to_string flipped);
  P.Frame.feed dec (P.Frame.encode ~crc:true P.Endian.Little second);
  Alcotest.(check bool) "only the clean frame survives" true
    (frames_eq [ second ] (P.Frame.frames dec));
  Alcotest.(check int) "one resync" 1 (P.Frame.resyncs dec);
  Alcotest.(check bool) "damage metered" true (P.Frame.skipped_bytes dec > 0)

let test_frame_crc_roundtrip_plain_compat () =
  (* a CRC'd stream decodes, and a plain frame still encodes to the
     legacy bytes (no trailer, no flags) *)
  let f =
    { P.Frame.payload_type = P.Frame.Sys_db; data = "x"; trace = Smart_util.Tracelog.root }
  in
  let plain = P.Frame.encode P.Endian.Little f in
  let crcd = P.Frame.encode ~crc:true P.Endian.Little f in
  Alcotest.(check int) "plain has no trailer" (P.Frame.header_size + 1)
    (String.length plain);
  Alcotest.(check int) "crc adds exactly the trailer"
    (String.length plain + P.Frame.crc_size)
    (String.length crcd);
  let dec = P.Frame.decoder P.Endian.Little in
  P.Frame.feed dec (plain ^ crcd);
  Alcotest.(check bool) "both decode" true
    (frames_eq [ f; f ] (P.Frame.frames dec))

let prop_frame_resync_recovers =
  QCheck.Test.make ~name:"decoder resyncs after arbitrary garbage" ~count:200
    QCheck.(
      pair
        (string_gen_of_size Gen.(int_range 1 40) Gen.char)
        (string_gen_of_size Gen.(int_range 0 50) Gen.printable))
    (fun (garbage, payload) ->
      (* strip NULs so no garbage offset can fake a valid (small) type
         code and stall the decoder waiting for a phantom payload *)
      let garbage =
        String.map (fun c -> if Char.equal c '\000' then '\001' else c) garbage
      in
      let f =
        { P.Frame.payload_type = P.Frame.Sys_db; data = payload; trace = Smart_util.Tracelog.root }
      in
      let dec = P.Frame.decoder P.Endian.Little in
      P.Frame.feed dec garbage;
      let before = P.Frame.frames dec in
      P.Frame.feed dec (P.Frame.encode ~crc:true P.Endian.Little f);
      let after = P.Frame.frames dec in
      frames_eq [] before && frames_eq [ f ] after && P.Frame.resyncs dec >= 1)

let prop_frame_split_anywhere =
  QCheck.Test.make ~name:"frame decoding independent of chunking" ~count:200
    QCheck.(pair (small_list (string_gen_of_size Gen.(int_range 0 50) Gen.printable)) (int_range 1 64))
    (fun (payloads, chunk) ->
      let fs =
        List.map
          (fun data -> { P.Frame.payload_type = P.Frame.Sys_db; data; trace = Smart_util.Tracelog.root })
          payloads
      in
      let wire =
        String.concat "" (List.map (P.Frame.encode P.Endian.Big) fs)
      in
      let dec = P.Frame.decoder P.Endian.Big in
      let got = ref [] in
      let n = String.length wire in
      let rec feed off =
        if off < n then begin
          let len = min chunk (n - off) in
          P.Frame.feed dec (String.sub wire off len);
          got := !got @ P.Frame.frames dec;
          feed (off + len)
        end
      in
      feed 0;
      frames_eq fs !got)

(* ------------------------------------------------------------------ *)
(* Wizard messages                                                      *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  let r =
    {
      P.Wizard_msg.seq = 0x12345678;
      server_num = 6;
      option = P.Wizard_msg.Strict;
      requirement = "host_cpu_free > 0.9\n";
      trace = Smart_util.Tracelog.root;
    }
  in
  match P.Wizard_msg.decode_request (P.Wizard_msg.encode_request r) with
  | Ok d ->
    Alcotest.(check int) "seq" 0x12345678 d.P.Wizard_msg.seq;
    Alcotest.(check int) "server_num" 6 d.P.Wizard_msg.server_num;
    Alcotest.(check bool) "option" true
      (d.P.Wizard_msg.option = P.Wizard_msg.Strict);
    Alcotest.(check string) "requirement" "host_cpu_free > 0.9\n"
      d.P.Wizard_msg.requirement
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_request_empty_requirement () =
  let r =
    {
      P.Wizard_msg.seq = 1;
      server_num = 1;
      option = P.Wizard_msg.Accept_partial;
      requirement = "";
      trace = Smart_util.Tracelog.root;
    }
  in
  match P.Wizard_msg.decode_request (P.Wizard_msg.encode_request r) with
  | Ok d -> Alcotest.(check string) "empty" "" d.P.Wizard_msg.requirement
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_request_truncated () =
  match P.Wizard_msg.decode_request "abc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated request must not decode"

let test_reply_roundtrip () =
  let r =
    {
      P.Wizard_msg.seq = 77;
      servers = [ "dalmatian"; "dione"; "192.168.1.2" ];
      degraded = false;
      rejected = false;
    }
  in
  match P.Wizard_msg.decode_reply (P.Wizard_msg.encode_reply r) with
  | Ok d ->
    Alcotest.(check int) "seq" 77 d.P.Wizard_msg.seq;
    Alcotest.(check (list string)) "servers"
      [ "dalmatian"; "dione"; "192.168.1.2" ]
      d.P.Wizard_msg.servers;
    Alcotest.(check bool) "fresh" false d.P.Wizard_msg.degraded
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_reply_degraded_flag () =
  (* the degraded bit survives the roundtrip without disturbing seq or
     the server list, and a fresh reply's bytes match the legacy layout *)
  let fresh =
    { P.Wizard_msg.seq = 9; servers = [ "a"; "b" ]; degraded = false;
      rejected = false }
  in
  let stale = { fresh with P.Wizard_msg.degraded = true } in
  let fresh_wire = P.Wizard_msg.encode_reply fresh in
  let stale_wire = P.Wizard_msg.encode_reply stale in
  Alcotest.(check int) "same length" (String.length fresh_wire)
    (String.length stale_wire);
  (match P.Wizard_msg.decode_reply stale_wire with
  | Ok d ->
    Alcotest.(check bool) "degraded" true d.P.Wizard_msg.degraded;
    Alcotest.(check int) "seq intact" 9 d.P.Wizard_msg.seq;
    Alcotest.(check (list string)) "servers intact" [ "a"; "b" ]
      d.P.Wizard_msg.servers
  | Error e -> Alcotest.failf "decode failed: %s" e);
  match P.Wizard_msg.decode_reply fresh_wire with
  | Ok d -> Alcotest.(check bool) "fresh" false d.P.Wizard_msg.degraded
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_reply_rejected_flag () =
  (* bit 14 of the count word carries the admission verdict, independent
     of the degraded bit 15, without disturbing seq or the list; an
     accepted reply's bytes match the legacy layout *)
  let accepted =
    { P.Wizard_msg.seq = 21; servers = []; degraded = false;
      rejected = false }
  in
  let shed = { accepted with P.Wizard_msg.rejected = true } in
  let both = { shed with P.Wizard_msg.degraded = true } in
  let accepted_wire = P.Wizard_msg.encode_reply accepted in
  let shed_wire = P.Wizard_msg.encode_reply shed in
  Alcotest.(check int) "same length" (String.length accepted_wire)
    (String.length shed_wire);
  (* the flag flips exactly one bit (0x40) of one count-word byte *)
  let diffs = ref [] in
  String.iteri
    (fun i ch ->
      let x = Char.code ch lxor Char.code accepted_wire.[i] in
      if x <> 0 then diffs := (i, x) :: !diffs)
    shed_wire;
  (match !diffs with
  | [ (pos, x) ] ->
    Alcotest.(check bool) "inside count word" true (pos = 4 || pos = 5);
    Alcotest.(check int) "bit 14" 0x40 x
  | _ -> Alcotest.fail "rejected flag must flip exactly one byte");
  (match P.Wizard_msg.decode_reply shed_wire with
  | Ok d ->
    Alcotest.(check bool) "rejected" true d.P.Wizard_msg.rejected;
    Alcotest.(check bool) "not degraded" false d.P.Wizard_msg.degraded;
    Alcotest.(check int) "seq intact" 21 d.P.Wizard_msg.seq;
    Alcotest.(check (list string)) "empty list" [] d.P.Wizard_msg.servers
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (match P.Wizard_msg.decode_reply (P.Wizard_msg.encode_reply both) with
  | Ok d ->
    Alcotest.(check bool) "both: rejected" true d.P.Wizard_msg.rejected;
    Alcotest.(check bool) "both: degraded" true d.P.Wizard_msg.degraded
  | Error e -> Alcotest.failf "decode failed: %s" e);
  match P.Wizard_msg.decode_reply accepted_wire with
  | Ok d -> Alcotest.(check bool) "accepted" false d.P.Wizard_msg.rejected
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_reply_empty () =
  let r = { P.Wizard_msg.seq = 1; servers = []; degraded = false; rejected = false } in
  match P.Wizard_msg.decode_reply (P.Wizard_msg.encode_reply r) with
  | Ok d -> Alcotest.(check (list string)) "no servers" [] d.P.Wizard_msg.servers
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_reply_limit () =
  let servers = List.init (P.Ports.max_reply_servers + 1) string_of_int in
  Alcotest.(check bool) "over 60 rejected" true
    (try
       ignore
         (P.Wizard_msg.encode_reply
            { P.Wizard_msg.seq = 1; servers; degraded = false; rejected = false });
       false
     with Invalid_argument _ -> true)

let test_reply_truncated_list () =
  let r = { P.Wizard_msg.seq = 5; servers = [ "abc"; "def" ]; degraded = false;
      rejected = false } in
  let wire = P.Wizard_msg.encode_reply r in
  match P.Wizard_msg.decode_reply (String.sub wire 0 (String.length wire - 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated list must not decode"

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode round trip" ~count:300
    QCheck.(
      quad (int_bound 0x3FFFFFFF) (int_bound 60) bool
        (string_gen_of_size Gen.(int_range 0 200) Gen.printable))
    (fun (seq, server_num, strict, requirement) ->
      let r =
        {
          P.Wizard_msg.seq;
          server_num;
          option =
            (if strict then P.Wizard_msg.Strict else P.Wizard_msg.Accept_partial);
          requirement;
          trace = Smart_util.Tracelog.root;
        }
      in
      match P.Wizard_msg.decode_request (P.Wizard_msg.encode_request r) with
      | Ok d -> d = r
      | Error _ -> false)

let prop_report_roundtrip =
  QCheck.Test.make ~name:"report survives format/parse for random values"
    ~count:300
    QCheck.(array_of_size (Gen.return 21) (float_range 0.0 1e6))
    (fun values ->
      let v i = values.(i) in
      let r =
        {
          P.Report.host = "h";
          ip = "1.2.3.4";
          load1 = v 0; load5 = v 1; load15 = v 2;
          cpu_user = v 3; cpu_nice = v 4; cpu_system = v 5; cpu_free = v 6;
          bogomips = v 7;
          mem_total = v 8; mem_used = v 9; mem_free = v 10;
          mem_buffers = v 11; mem_cached = v 12;
          disk_rreq = v 13; disk_rblocks = v 14; disk_wreq = v 15;
          disk_wblocks = v 16;
          net_rbytes = v 17; net_rpackets = v 18; net_tbytes = v 19;
          net_tpackets = v 20;
        }
      in
      match P.Report.of_string (P.Report.to_string r) with
      | Ok d ->
        (* %.6g costs precision; require 6 significant digits *)
        Float.abs (d.P.Report.load1 -. r.P.Report.load1)
        <= Float.abs r.P.Report.load1 *. 1e-5 +. 1e-5
        && Float.abs (d.P.Report.net_tpackets -. r.P.Report.net_tpackets)
           <= Float.abs r.P.Report.net_tpackets *. 1e-5 +. 1e-5
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace-context propagation on the wire                                *)
(* ------------------------------------------------------------------ *)

let ctx = { Smart_util.Tracelog.trace_id = 0xDEAD; span_id = 0x42 }

let test_request_traced_roundtrip () =
  let r =
    {
      P.Wizard_msg.seq = 9;
      server_num = 3;
      option = P.Wizard_msg.Accept_partial;
      requirement = "host_cpu_free > 0.5\n";
      trace = ctx;
    }
  in
  let wire = P.Wizard_msg.encode_request r in
  (* traced header is 16 bytes; untraced stays the original 8 *)
  Alcotest.(check int) "traced header size"
    (16 + String.length r.P.Wizard_msg.requirement)
    (String.length wire);
  let untraced =
    P.Wizard_msg.encode_request { r with P.Wizard_msg.trace = Smart_util.Tracelog.root }
  in
  Alcotest.(check int) "untraced header unchanged"
    (8 + String.length r.P.Wizard_msg.requirement)
    (String.length untraced);
  match P.Wizard_msg.decode_request wire with
  | Ok d ->
    Alcotest.(check int) "trace id" 0xDEAD d.P.Wizard_msg.trace.Smart_util.Tracelog.trace_id;
    Alcotest.(check int) "span id" 0x42 d.P.Wizard_msg.trace.Smart_util.Tracelog.span_id;
    Alcotest.(check int) "seq" 9 d.P.Wizard_msg.seq;
    Alcotest.(check string) "requirement" r.P.Wizard_msg.requirement
      d.P.Wizard_msg.requirement
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_request_traced_malformed () =
  let r =
    {
      P.Wizard_msg.seq = 9;
      server_num = 3;
      option = P.Wizard_msg.Strict;
      requirement = "x\n";
      trace = ctx;
    }
  in
  let wire = P.Wizard_msg.encode_request r in
  (* cut inside the trace context: must be rejected, not misparsed *)
  (match P.Wizard_msg.decode_request (String.sub wire 0 12) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated trace context must not decode");
  (* an unknown option-word bit is a decode error, traced or not *)
  let b = Bytes.of_string wire in
  Bytes.set_uint16_be b 6 (Char.code (Bytes.get b 7) lor 4);
  match P.Wizard_msg.decode_request (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown option bit must not decode"

let test_frame_traced_roundtrip () =
  let fs =
    [
      { P.Frame.payload_type = P.Frame.Sys_db; data = "sysdata"; trace = ctx };
      { P.Frame.payload_type = P.Frame.Net_db; data = ""; trace = ctx };
      {
        P.Frame.payload_type = P.Frame.Sec_db;
        data = "mixed";
        trace = Smart_util.Tracelog.root;
      };
    ]
  in
  let wire = String.concat "" (List.map (P.Frame.encode P.Endian.Big) fs) in
  (* feed byte-by-byte so the ctx bytes cross segment boundaries *)
  let dec = P.Frame.decoder P.Endian.Big in
  let got = ref [] in
  String.iter
    (fun c ->
      P.Frame.feed dec (String.make 1 c);
      got := !got @ P.Frame.frames dec)
    wire;
  Alcotest.(check bool) "payloads survive" true (frames_eq fs !got);
  match !got with
  | [ a; b; c ] ->
    Alcotest.(check int) "frame 1 trace id" 0xDEAD
      a.P.Frame.trace.Smart_util.Tracelog.trace_id;
    Alcotest.(check int) "frame 1 span id" 0x42
      a.P.Frame.trace.Smart_util.Tracelog.span_id;
    Alcotest.(check int) "frame 2 trace id" 0xDEAD
      b.P.Frame.trace.Smart_util.Tracelog.trace_id;
    Alcotest.(check bool) "untraced frame decodes to root" true
      (Smart_util.Tracelog.is_root c.P.Frame.trace)
  | other -> Alcotest.failf "expected 3 frames, got %d" (List.length other)

let test_frame_untraced_bytes_unchanged () =
  (* the traced encoding is strictly additive: without a ctx the wire
     bytes are the pre-trace [type,size,data] format *)
  let f =
    { P.Frame.payload_type = P.Frame.Sys_db; data = "abc";
      trace = Smart_util.Tracelog.root }
  in
  let wire = P.Frame.encode P.Endian.Little f in
  Alcotest.(check int) "8-byte header only" (8 + 3) (String.length wire);
  let b = Bytes.of_string wire in
  Alcotest.(check int32) "plain type code" 1l (Bytes.get_int32_le b 0);
  let traced = P.Frame.encode P.Endian.Little { f with P.Frame.trace = ctx } in
  Alcotest.(check int) "traced adds exactly 8 bytes" (16 + 3)
    (String.length traced);
  Alcotest.(check int32) "offset type code"
    (Int32.of_int (1 + P.Frame.traced_code_offset))
    (Bytes.get_int32_le (Bytes.of_string traced) 0)

let test_report_trace_suffix () =
  let untraced = P.Report.to_string sample_report in
  let traced = P.Report.to_string ~trace:ctx sample_report in
  Alcotest.(check string) "traced = untraced + suffix"
    (Printf.sprintf "%s|TR|%d|%d" untraced 0xDEAD 0x42)
    traced;
  (match P.Report.decode traced with
  | Ok (r, c) ->
    Alcotest.(check string) "host survives" "helene" r.P.Report.host;
    Alcotest.(check int) "trace id" 0xDEAD c.Smart_util.Tracelog.trace_id;
    Alcotest.(check int) "span id" 0x42 c.Smart_util.Tracelog.span_id
  | Error e -> Alcotest.failf "traced decode failed: %s" e);
  (match P.Report.decode untraced with
  | Ok (r, c) ->
    Alcotest.(check string) "untraced host" "helene" r.P.Report.host;
    Alcotest.(check bool) "untraced ctx is root" true
      (Smart_util.Tracelog.is_root c)
  | Error e -> Alcotest.failf "untraced decode failed: %s" e);
  (* of_string is decode minus the context *)
  match P.Report.of_string traced with
  | Ok r -> Alcotest.(check string) "of_string strips suffix" "helene" r.P.Report.host
  | Error e -> Alcotest.failf "of_string failed: %s" e

let test_trace_msg_roundtrip () =
  Alcotest.(check string) "text request" "SMART-TRACE text"
    (P.Trace_msg.encode_request P.Trace_msg.Text);
  Alcotest.(check string) "json request" "SMART-TRACE json"
    (P.Trace_msg.encode_request P.Trace_msg.Json);
  let dec s = P.Trace_msg.decode_request s in
  Alcotest.(check bool) "text decodes" true (dec "SMART-TRACE text" = Some P.Trace_msg.Text);
  Alcotest.(check bool) "bare magic means text" true
    (dec "SMART-TRACE" = Some P.Trace_msg.Text);
  Alcotest.(check bool) "json decodes" true (dec "SMART-TRACE json" = Some P.Trace_msg.Json);
  Alcotest.(check bool) "garbage suffix refused" true (dec "SMART-TRACE xml" = None);
  Alcotest.(check bool) "metrics magic refused" true (dec "SMART-METRICS" = None);
  Alcotest.(check bool) "prefix-only refused" true (dec "SMART-TRAC" = None);
  let log = Smart_util.Tracelog.create ~clock:(fun () -> 1.0) () in
  let span = Smart_util.Tracelog.start log "probe.tick" in
  Smart_util.Tracelog.finish log span;
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "text reply names the span" true
    (contains ~affix:"probe.tick" (P.Trace_msg.encode_reply P.Trace_msg.Text log));
  Alcotest.(check bool) "json reply is a chrome trace" true
    (contains ~affix:"\"ph\":\"X\"" (P.Trace_msg.encode_reply P.Trace_msg.Json log))

let prop_traced_request_roundtrip =
  QCheck.Test.make ~name:"traced request round trips any context" ~count:200
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (trace_id, span_id) ->
      let r =
        {
          P.Wizard_msg.seq = 5;
          server_num = 2;
          option = P.Wizard_msg.Accept_partial;
          requirement = "r\n";
          trace = { Smart_util.Tracelog.trace_id; span_id };
        }
      in
      match P.Wizard_msg.decode_request (P.Wizard_msg.encode_request r) with
      | Ok d -> d = r
      | Error _ -> false)

let prop_sys_record_roundtrip_both_orders =
  QCheck.Test.make ~name:"sys record round trips in both byte orders"
    ~count:200
    QCheck.(pair bool (float_range 0.0 1e9))
    (fun (big, ts) ->
      let order = if big then P.Endian.Big else P.Endian.Little in
      let r = { P.Records.report = sample_report; updated_at = ts } in
      match P.Records.decode_sys order (P.Records.encode_sys order r) ~pos:0 with
      | Ok d -> Float.abs (d.P.Records.updated_at -. ts) < 1e-9
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Federation: digests and root <-> shard messages                      *)
(* ------------------------------------------------------------------ *)

let sample_digest =
  let nsys = Smart_lang.Bytecode.sys_field_count in
  let d = P.Digest.empty ~shard:"shard-a" ~sys_fields:nsys in
  let sys =
    Array.mapi
      (fun i stat ->
        if i mod 3 = 0 then stat  (* leave a few columns empty *)
        else
          P.Digest.observe
            (P.Digest.observe stat (float_of_int i *. 1.5))
            (float_of_int i *. -0.25))
      d.P.Digest.sys
  in
  {
    d with
    P.Digest.generation = 42;
    servers = 7;
    sys;
    net_delay = { P.Digest.present = 3; lo = 0.2; hi = 8.0 };
    sec_level = { P.Digest.present = 7; lo = 1.0; hi = 5.0 };
  }

let check_stat msg (a : P.Digest.stat) (b : P.Digest.stat) =
  Alcotest.(check int) (msg ^ " present") a.P.Digest.present b.P.Digest.present;
  Alcotest.(check bool)
    (msg ^ " lo") true
    (Float.compare a.P.Digest.lo b.P.Digest.lo = 0);
  Alcotest.(check bool)
    (msg ^ " hi") true
    (Float.compare a.P.Digest.hi b.P.Digest.hi = 0)

let test_digest_roundtrip () =
  List.iter
    (fun order ->
      match P.Digest.decode order (P.Digest.encode order sample_digest) with
      | Error e -> Alcotest.failf "digest decode failed: %s" e
      | Ok d ->
        Alcotest.(check string) "shard" "shard-a" d.P.Digest.shard;
        Alcotest.(check int) "generation" 42 d.P.Digest.generation;
        Alcotest.(check int) "servers" 7 d.P.Digest.servers;
        Array.iteri
          (fun i stat -> check_stat (Printf.sprintf "sys.%d" i)
              sample_digest.P.Digest.sys.(i) stat)
          d.P.Digest.sys;
        check_stat "net_delay" sample_digest.P.Digest.net_delay
          d.P.Digest.net_delay;
        check_stat "net_bw" sample_digest.P.Digest.net_bw d.P.Digest.net_bw;
        check_stat "sec_level" sample_digest.P.Digest.sec_level
          d.P.Digest.sec_level)
    [ P.Endian.Little; P.Endian.Big ]

let test_digest_truncated () =
  let s = P.Digest.encode P.Endian.Big sample_digest in
  for cut = 0 to min 40 (String.length s - 1) do
    match P.Digest.decode P.Endian.Big (String.sub s 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated digest (%d bytes) decoded" cut
  done

(* The digest is a commutative monoid under [merge]: the uplink can
   combine partial summaries in any order and the root sees one range
   per column either way. *)
let digest_stat_arb =
  QCheck.map
    (fun (vals : float list) ->
      List.fold_left P.Digest.observe P.Digest.empty_stat vals)
    QCheck.(small_list (float_range (-1e6) 1e6))

let digest_arb =
  let nsys = Smart_lang.Bytecode.sys_field_count in
  QCheck.map
    (fun (gen, stats) ->
      let d = P.Digest.empty ~shard:"s" ~sys_fields:nsys in
      let sys =
        Array.init nsys (fun i ->
            match List.nth_opt stats (i mod max 1 (List.length stats)) with
            | Some s -> s
            | None -> P.Digest.empty_stat)
      in
      { d with P.Digest.generation = gen; servers = gen mod 97; sys })
    QCheck.(pair small_nat (small_list digest_stat_arb))

let stat_equal (a : P.Digest.stat) (b : P.Digest.stat) =
  a.P.Digest.present = b.P.Digest.present
  && Float.compare a.P.Digest.lo b.P.Digest.lo = 0
  && Float.compare a.P.Digest.hi b.P.Digest.hi = 0

let digest_equal (a : P.Digest.t) (b : P.Digest.t) =
  a.P.Digest.generation = b.P.Digest.generation
  && a.P.Digest.servers = b.P.Digest.servers
  && Array.for_all2 stat_equal a.P.Digest.sys b.P.Digest.sys
  && stat_equal a.P.Digest.net_delay b.P.Digest.net_delay
  && stat_equal a.P.Digest.net_bw b.P.Digest.net_bw
  && stat_equal a.P.Digest.sec_level b.P.Digest.sec_level

let prop_digest_merge_commutes =
  QCheck.Test.make ~name:"digest merge commutes and has an identity"
    ~count:200
    QCheck.(pair digest_arb digest_arb)
    (fun (a, b) ->
      let nsys = Smart_lang.Bytecode.sys_field_count in
      let empty = P.Digest.empty ~shard:"s" ~sys_fields:nsys in
      digest_equal (P.Digest.merge a b) (P.Digest.merge b a)
      && digest_equal (P.Digest.merge a empty) a)

let prop_digest_roundtrip =
  QCheck.Test.make ~name:"digest round trips in both byte orders" ~count:200
    QCheck.(pair bool digest_arb)
    (fun (big, d) ->
      let order = if big then P.Endian.Big else P.Endian.Little in
      match P.Digest.decode order (P.Digest.encode order d) with
      | Ok d' -> digest_equal d d'
      | Error _ -> false)

let test_fed_query_roundtrip () =
  let q =
    {
      P.Fed_msg.seq = 0xDEAD;
      wanted = 12;
      requirement = "host_cpu_free > 0.5\n";
      trace = Smart_util.Tracelog.root;
    }
  in
  (match P.Fed_msg.decode_query (P.Fed_msg.encode_query q) with
  | Ok d -> Alcotest.(check bool) "untraced query" true (d = q)
  | Error e -> Alcotest.failf "query decode failed: %s" e);
  let traced =
    { q with P.Fed_msg.trace = { Smart_util.Tracelog.trace_id = 7; span_id = 9 } }
  in
  match P.Fed_msg.decode_query (P.Fed_msg.encode_query traced) with
  | Ok d -> Alcotest.(check bool) "traced query" true (d = traced)
  | Error e -> Alcotest.failf "traced query decode failed: %s" e

let test_fed_query_rejects () =
  let is_err s =
    match P.Fed_msg.decode_query s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "bad magic" true (is_err "SFX1aaaaaaaaaa");
  Alcotest.(check bool) "reply magic" true
    (is_err (P.Fed_msg.encode_reply
       { P.Fed_msg.seq = 1; shard = "s"; generation = 0; degraded = false;
         candidates = [] }));
  let q =
    {
      P.Fed_msg.seq = 1;
      wanted = 1;
      requirement = "r\n";
      trace = Smart_util.Tracelog.root;
    }
  in
  (* the requirement is the datagram tail, so only header cuts are
     detectable as truncation *)
  let enc = P.Fed_msg.encode_query q in
  Alcotest.(check bool) "header truncated" true (is_err (String.sub enc 0 8))

let test_fed_reply_roundtrip () =
  let r =
    {
      P.Fed_msg.seq = 77;
      shard = "region-b";
      generation = 1234;
      degraded = true;
      candidates =
        [
          { P.Fed_msg.host = "alpha"; rank = 0; key = neg_infinity };
          { P.Fed_msg.host = "beta"; rank = -1; key = 3.5 };
          { P.Fed_msg.host = "gamma"; rank = -1; key = Float.nan };
        ];
    }
  in
  match P.Fed_msg.decode_reply (P.Fed_msg.encode_reply r) with
  | Error e -> Alcotest.failf "reply decode failed: %s" e
  | Ok d ->
    Alcotest.(check int) "seq" 77 d.P.Fed_msg.seq;
    Alcotest.(check string) "shard" "region-b" d.P.Fed_msg.shard;
    Alcotest.(check int) "generation" 1234 d.P.Fed_msg.generation;
    Alcotest.(check bool) "degraded" true d.P.Fed_msg.degraded;
    (match d.P.Fed_msg.candidates with
    | [ a; b; c ] ->
      Alcotest.(check string) "a host" "alpha" a.P.Fed_msg.host;
      Alcotest.(check int) "a rank" 0 a.P.Fed_msg.rank;
      Alcotest.(check bool) "a key" true
        (Float.compare a.P.Fed_msg.key neg_infinity = 0);
      Alcotest.(check int) "b rank" (-1) b.P.Fed_msg.rank;
      Alcotest.(check (float 1e-9)) "b key" 3.5 b.P.Fed_msg.key;
      (* NaN must survive the wire: it is how a faulted order_by sorts
         after every real key at the root *)
      Alcotest.(check bool) "c key NaN" true (Float.is_nan c.P.Fed_msg.key)
    | l -> Alcotest.failf "expected 3 candidates, got %d" (List.length l))

let fed_candidate_arb =
  QCheck.map
    (fun (host, rank, key_choice, key) ->
      {
        P.Fed_msg.host = (if host = "" then "h" else host);
        rank = (if rank >= 0 then rank mod 0xFFFF else -1);
        key =
          (match key_choice mod 3 with
          | 0 -> key
          | 1 -> neg_infinity
          | _ -> Float.nan);
      })
    QCheck.(quad small_printable_string small_signed_int small_nat
              (float_range (-1e9) 1e9))

let prop_fed_reply_roundtrip =
  QCheck.Test.make ~name:"fed reply round trips any candidate list"
    ~count:200
    QCheck.(quad small_nat small_printable_string bool
              (small_list fed_candidate_arb))
    (fun (seq, shard, degraded, candidates) ->
      let r = { P.Fed_msg.seq; shard; generation = seq * 3; degraded;
                candidates } in
      match P.Fed_msg.decode_reply (P.Fed_msg.encode_reply r) with
      | Error _ -> false
      | Ok d ->
        d.P.Fed_msg.seq = r.P.Fed_msg.seq
        && String.equal d.P.Fed_msg.shard r.P.Fed_msg.shard
        && d.P.Fed_msg.degraded = degraded
        && List.for_all2
             (fun (a : P.Fed_msg.candidate) (b : P.Fed_msg.candidate) ->
               String.equal a.P.Fed_msg.host b.P.Fed_msg.host
               && a.P.Fed_msg.rank = b.P.Fed_msg.rank
               && (Float.is_nan a.P.Fed_msg.key = Float.is_nan b.P.Fed_msg.key)
               && (Float.is_nan a.P.Fed_msg.key
                  || Float.compare a.P.Fed_msg.key b.P.Fed_msg.key = 0))
             r.P.Fed_msg.candidates d.P.Fed_msg.candidates)

(* ------------------------------------------------------------------ *)
(* Federation: sketch batches (Sketch_db, type code 5)                  *)
(* ------------------------------------------------------------------ *)

module Sk = Smart_util.Sketch

let sketch_with ~seed ?(k = 16) values =
  let s = Sk.create ~k ~rng:(Smart_util.Prng.create ~seed) () in
  List.iter (Sk.observe s) values;
  s

let sample_sketch_batch =
  {
    P.Sketch_msg.shard = "region-a";
    entries =
      [
        ( "wizard.request_latency_seconds",
          sketch_with ~seed:1 (List.init 100 (fun i -> float_of_int i /. 7.0))
        );
        (* compacted: several levels and a non-zero error weight ride
           the wire too *)
        ("probe.load1", sketch_with ~seed:2 ~k:8
           (List.init 400 (fun i -> float_of_int (i mod 17))));
        ("empty.metric", sketch_with ~seed:3 []);
      ];
  }

let check_sketch_batch_eq msg (a : P.Sketch_msg.t) (b : P.Sketch_msg.t) =
  Alcotest.(check string) (msg ^ " shard") a.P.Sketch_msg.shard
    b.P.Sketch_msg.shard;
  Alcotest.(check (list string))
    (msg ^ " names")
    (List.map fst a.P.Sketch_msg.entries)
    (List.map fst b.P.Sketch_msg.entries);
  List.iter2
    (fun (name, sa) (_, sb) ->
      Alcotest.(check bool) (msg ^ " sketch " ^ name) true (Sk.equal sa sb);
      Alcotest.(check int64)
        (msg ^ " prng state " ^ name)
        (Sk.rng_state sa) (Sk.rng_state sb))
    a.P.Sketch_msg.entries b.P.Sketch_msg.entries

let test_sketch_msg_roundtrip () =
  List.iter
    (fun order ->
      let wire = P.Sketch_msg.encode order sample_sketch_batch in
      match P.Sketch_msg.decode order wire with
      | Error e -> Alcotest.failf "sketch batch decode failed: %s" e
      | Ok d ->
        check_sketch_batch_eq "roundtrip" sample_sketch_batch d;
        (* the PRNG state rides the wire, so a re-encode is the exact
           same bytes — the root continues the shard's stream *)
        Alcotest.(check string) "re-encode byte-identical" wire
          (P.Sketch_msg.encode order d))
    [ P.Endian.Little; P.Endian.Big ]

let test_sketch_msg_truncated () =
  let wire = P.Sketch_msg.encode P.Endian.Little sample_sketch_batch in
  for cut = 0 to String.length wire - 1 do
    match P.Sketch_msg.decode P.Endian.Little (String.sub wire 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated batch (%d bytes) decoded" cut
  done

(* Hand-built minimal batch (shard "s", one entry named "m") so field
   offsets are known: shard_len@0, 's'@2, count@3, name_len@5, 'm'@7,
   k@8, nlevels@10, err@12, min@20, max@28, rng@36, level len@44. *)
let test_sketch_msg_adversarial () =
  let batch =
    { P.Sketch_msg.shard = "s";
      entries = [ ("m", sketch_with ~seed:4 [ 1.0; 2.0; 3.0 ]) ] }
  in
  let wire = P.Sketch_msg.encode P.Endian.Little batch in
  let is_err s =
    match P.Sketch_msg.decode P.Endian.Little s with
    | Error _ -> true
    | Ok _ -> false
  in
  let tampered pos bytes =
    let b = Bytes.of_string wire in
    List.iteri (fun i c -> Bytes.set b (pos + i) c) bytes;
    Bytes.to_string b
  in
  Alcotest.(check bool) "odd k rejected" true
    (is_err (tampered 8 [ '\x07'; '\x00' ]));
  Alcotest.(check bool) "hostile level count rejected" true
    (is_err (tampered 10 [ '\xFF'; '\xFF' ]));
  Alcotest.(check bool) "hostile level length rejected" true
    (is_err (tampered 44 [ '\xFF'; '\xFF'; '\xFF'; '\xFF' ]));
  Alcotest.(check bool) "trailing bytes rejected" true (is_err (wire ^ "Z"));
  Alcotest.(check bool) "intact wire still decodes" true (not (is_err wire))

let test_frame_carries_sketch_db () =
  Alcotest.(check int) "type code 5" 5 (P.Frame.type_code P.Frame.Sketch_db);
  let data = P.Sketch_msg.encode P.Endian.Little sample_sketch_batch in
  let check_variant name ~crc trace =
    let f = { P.Frame.payload_type = P.Frame.Sketch_db; data; trace } in
    match P.Frame.decode_one P.Endian.Little (P.Frame.encode ~crc P.Endian.Little f) with
    | Ok (g, _) ->
      Alcotest.(check bool) (name ^ " type survives") true
        (g.P.Frame.payload_type = P.Frame.Sketch_db);
      Alcotest.(check string) (name ^ " payload survives") data g.P.Frame.data;
      Alcotest.(check bool) (name ^ " trace survives") true
        (g.P.Frame.trace = trace);
      (match P.Sketch_msg.decode P.Endian.Little g.P.Frame.data with
      | Ok d -> check_sketch_batch_eq name sample_sketch_batch d
      | Error e -> Alcotest.failf "%s: inner decode failed: %s" name e)
    | Error e ->
      Alcotest.failf "%s: frame decode failed: %s" name
        (P.Frame.error_to_string e)
  in
  check_variant "plain" ~crc:false Smart_util.Tracelog.root;
  check_variant "crc" ~crc:true Smart_util.Tracelog.root;
  check_variant "traced" ~crc:false
    { Smart_util.Tracelog.trace_id = 11; span_id = 13 };
  check_variant "traced+crc" ~crc:true
    { Smart_util.Tracelog.trace_id = 17; span_id = 19 }

let prop_sketch_msg_roundtrip =
  QCheck.Test.make ~name:"sketch batch round trips in both byte orders"
    ~count:200
    QCheck.(
      triple bool small_printable_string
        (pair
           (list_of_size Gen.(int_range 0 200) (float_range (-1e6) 1e6))
           (list_of_size Gen.(int_range 0 200) (float_range (-1e6) 1e6))))
    (fun (big, shard, (xs, ys)) ->
      let order = if big then P.Endian.Big else P.Endian.Little in
      let batch =
        { P.Sketch_msg.shard;
          entries =
            [ ("a", sketch_with ~seed:5 ~k:8 xs);
              ("b", sketch_with ~seed:6 ys) ] }
      in
      let wire = P.Sketch_msg.encode order batch in
      match P.Sketch_msg.decode order wire with
      | Error _ -> false
      | Ok d ->
        String.equal d.P.Sketch_msg.shard shard
        && List.for_all2
             (fun (na, sa) (nb, sb) ->
               String.equal na nb && Sk.equal sa sb
               && Int64.equal (Sk.rng_state sa) (Sk.rng_state sb))
             batch.P.Sketch_msg.entries d.P.Sketch_msg.entries
        && String.equal wire (P.Sketch_msg.encode order d))

let () =
  Alcotest.run "smart_proto"
    [
      ( "report",
        [
          Alcotest.test_case "round trip" `Quick test_report_roundtrip;
          Alcotest.test_case "size budget" `Quick test_report_size_budget;
          Alcotest.test_case "bad inputs" `Quick test_report_bad_inputs;
          Alcotest.test_case "variable binding" `Quick
            test_report_variable_binding;
        ] );
      ( "records",
        [
          Alcotest.test_case "sys LE round trip" `Quick test_sys_record_le;
          Alcotest.test_case "sys BE round trip" `Quick test_sys_record_be;
          Alcotest.test_case "endian mismatch garbles" `Quick
            test_sys_record_endian_mismatch;
          Alcotest.test_case "truncated" `Quick test_sys_record_truncated;
          Alcotest.test_case "concatenated records" `Quick
            test_sys_record_concatenation;
          Alcotest.test_case "net round trip" `Quick test_net_record_roundtrip;
          Alcotest.test_case "net empty" `Quick test_net_record_empty;
          Alcotest.test_case "sec round trip" `Quick test_sec_record_roundtrip;
          Alcotest.test_case "security log" `Quick test_security_log_parsing;
          Alcotest.test_case "security log bad" `Quick test_security_log_bad;
        ] );
      ( "frames",
        [
          Alcotest.test_case "round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "incremental" `Quick test_frame_incremental;
          Alcotest.test_case "unknown type resyncs" `Quick
            test_frame_unknown_type_resyncs;
          Alcotest.test_case "oversized resyncs" `Quick
            test_frame_oversized_resyncs;
          Alcotest.test_case "truncated waits" `Quick test_frame_truncated_waits;
          Alcotest.test_case "decode_one truncated" `Quick
            test_frame_decode_one_truncated;
          Alcotest.test_case "crc detects flip" `Quick test_frame_crc_detects_flip;
          Alcotest.test_case "crc roundtrip, plain compat" `Quick
            test_frame_crc_roundtrip_plain_compat;
        ] );
      ( "wizard messages",
        [
          Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "empty requirement" `Quick
            test_request_empty_requirement;
          Alcotest.test_case "request truncated" `Quick test_request_truncated;
          Alcotest.test_case "reply round trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "reply empty" `Quick test_reply_empty;
          Alcotest.test_case "reply limit" `Quick test_reply_limit;
          Alcotest.test_case "reply truncated" `Quick test_reply_truncated_list;
          Alcotest.test_case "reply degraded flag" `Quick
            test_reply_degraded_flag;
          Alcotest.test_case "reply rejected flag" `Quick
            test_reply_rejected_flag;
        ] );
      ( "trace plane",
        [
          Alcotest.test_case "traced request round trip" `Quick
            test_request_traced_roundtrip;
          Alcotest.test_case "traced request malformed" `Quick
            test_request_traced_malformed;
          Alcotest.test_case "traced frame round trip" `Quick
            test_frame_traced_roundtrip;
          Alcotest.test_case "untraced frame bytes unchanged" `Quick
            test_frame_untraced_bytes_unchanged;
          Alcotest.test_case "report trace suffix" `Quick
            test_report_trace_suffix;
          Alcotest.test_case "trace scrape messages" `Quick
            test_trace_msg_roundtrip;
        ] );
      ( "federation",
        [
          Alcotest.test_case "digest round trip" `Quick test_digest_roundtrip;
          Alcotest.test_case "digest truncated" `Quick test_digest_truncated;
          Alcotest.test_case "query round trip" `Quick test_fed_query_roundtrip;
          Alcotest.test_case "query rejects" `Quick test_fed_query_rejects;
          Alcotest.test_case "reply round trip" `Quick test_fed_reply_roundtrip;
          Alcotest.test_case "sketch batch round trip" `Quick
            test_sketch_msg_roundtrip;
          Alcotest.test_case "sketch batch truncated" `Quick
            test_sketch_msg_truncated;
          Alcotest.test_case "sketch batch adversarial" `Quick
            test_sketch_msg_adversarial;
          Alcotest.test_case "frame carries Sketch_db" `Quick
            test_frame_carries_sketch_db;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_frame_split_anywhere;
            prop_frame_resync_recovers;
            prop_request_roundtrip;
            prop_report_roundtrip;
            prop_sys_record_roundtrip_both_orders;
            prop_traced_request_roundtrip;
            prop_digest_merge_commutes;
            prop_digest_roundtrip;
            prop_fed_reply_roundtrip;
            prop_sketch_msg_roundtrip;
          ] );
    ]
