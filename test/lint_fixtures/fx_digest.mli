val fingerprint : string -> string
