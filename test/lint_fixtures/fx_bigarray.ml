(* Lint fixture: unchecked indexing outside the bytecode interpreter. *)

let ba_read (a : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) =
  Bigarray.Array1.unsafe_get a 0

let arr_read (a : float array) = Array.unsafe_get a 0
