(* Lint fixture: a wall clock hidden inside a span recorder.  The real
   Tracelog takes its clock by injection; this one reaches for the
   ambient clock in both the start and finish paths, and the
   determinism rule must flag each call site. *)

type span = { name : string; mutable started : float; mutable ended : float }

let spans : span list ref = ref []

let start name =
  let span = { name; started = Sys.time (); ended = Float.nan } in
  spans := span :: !spans;
  span

let finish span = span.ended <- Sys.time ()
