(* Lint fixture: unsafe-surface violations. *)

let cast v = Obj.magic v
let blob v = Marshal.to_string v []

let decode = function 0 -> "ok" | _ -> assert false
