type pair = { a : int; b : string }

val eq_name : pair -> pair -> bool
val order : pair -> pair -> int
val close : float -> float -> bool
val is_some : 'a option -> bool
