(* Lint fixture: the helper that actually touches the wall clock. *)

let hidden_now () = Sys.time ()
