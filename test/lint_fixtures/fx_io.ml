(* Lint fixture: io-purity violations. *)

let pid () = Unix.getpid ()
let slurp path = open_in path
