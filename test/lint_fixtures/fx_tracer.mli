type span = { name : string; mutable started : float; mutable ended : float }

val spans : span list ref
val start : string -> span
val finish : span -> unit
