(* Lint fixture: poly-compare violations and one exempt comparison. *)

type pair = { a : int; b : string }

let eq_name (x : pair) (y : pair) = x.b = y.b
let order (x : pair) (y : pair) = compare x y
let close (a : float) (b : float) = a < b
let is_some (x : 'a option) = x <> None
