val entry : unit -> float
val stamp : unit -> float
val entry2 : unit -> float
val sample : ?clock:(unit -> float) -> unit -> float
