val pid : unit -> int
val slurp : string -> in_channel
