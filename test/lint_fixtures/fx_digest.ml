(* Lint fixture: representation-dependent digest in a sans-IO layer. *)

let fingerprint x = Digest.string (Digest.to_hex x)
