val ba_read :
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t -> float

val arr_read : float array -> float
