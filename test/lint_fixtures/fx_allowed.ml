(* Lint fixture: violation suppressed by fixtures.allow. *)

let same (x : string) (y : string) = x = y
