(* Lint fixture: process-ambient input in a sans-IO layer. *)

let home () = Sys.getenv "HOME"

let first_arg () = Sys.argv.(0)
