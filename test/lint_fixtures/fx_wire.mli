type payload = Alpha | Beta | Gamma | Delta

val type_code : payload -> int
val traced_code_offset : int
val crc_code_offset : int

type option_kind = Strict | Loose

val option_code : option_kind -> int
val ctx_flag : int
val query_magic : string
val result_magic : string
