(* Lint fixture: wire-registry violations.  Beta and Gamma collide on
   payload code 3, Delta escapes the base range, the CRC offset is not a
   flag bit and overlaps the traced range, an option code collides with
   the ctx_flag bit, and both magics spell the same bytes. *)

type payload = Alpha | Beta | Gamma | Delta

let type_code = function
  | Alpha -> 1
  | Beta -> 3
  | Gamma -> 3
  | Delta -> 16

let traced_code_offset = 16

let crc_code_offset = 24

type option_kind = Strict | Loose

let option_code = function
  | Strict -> 0
  | Loose -> 2

let ctx_flag = 2

let query_magic = "XWQ1"

let result_magic = "XWQ1"
