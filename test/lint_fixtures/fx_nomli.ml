(* Lint fixture: module shipped without an interface. *)

let answer = 42
