val cast : 'a -> 'b
val blob : 'a -> string
val decode : int -> string
