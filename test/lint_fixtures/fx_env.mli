val home : unit -> string
val first_arg : unit -> string
