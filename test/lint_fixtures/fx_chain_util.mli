val hidden_now : unit -> float
