(* Lint fixture: nondeterminism laundered through calls.  No line here
   references a clock directly — only the effects pass sees these. *)

let entry () = Fx_chain_util.hidden_now () +. 1.0

let stamp = Fx_chain_util.hidden_now

let entry2 () = stamp () *. 2.0

let sample ?(clock = Fx_chain_util.hidden_now) () = clock ()
