val roll : int -> int
val stamp : unit -> float
val keys : ('a, 'b) Hashtbl.t -> 'a list
