(* Lint fixture: determinism violations. *)

let roll n = Random.int n
let stamp () = Sys.time ()

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
