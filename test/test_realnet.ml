(* Integration tests of the real-socket driver on 127.0.0.1: the full
   probe -> monitor -> transmitter -> receiver -> wizard -> client ->
   TCP-service chain with real UDP/TCP sockets and the host's real
   /proc, plus unit tests of the address book and proc reader. *)

module R = Smart_realnet

let test_addr_book () =
  let book = R.Addr_book.create () in
  let shift_a = R.Addr_book.register_loopback book ~host:"a" in
  let shift_b = R.Addr_book.register_loopback book ~host:"b" in
  Alcotest.(check bool) "distinct shifts" true (shift_a <> shift_b);
  (match R.Addr_book.resolve book ~host:"a" ~port:1000 with
  | Some (Unix.ADDR_INET (addr, port)) ->
    Alcotest.(check string) "loopback" "127.0.0.1"
      (Unix.string_of_inet_addr addr);
    Alcotest.(check int) "shifted port" (1000 + shift_a) port
  | _ -> Alcotest.fail "resolve failed");
  Alcotest.(check int) "unknown host shift 0" 0
    (R.Addr_book.port_shift book ~host:"zzz");
  (* system resolver fallback *)
  match R.Addr_book.resolve book ~host:"127.0.0.1" ~port:80 with
  | Some (Unix.ADDR_INET (_, 80)) -> ()
  | _ -> Alcotest.fail "fallback resolve failed"

let test_proc_reader () =
  if Sys.file_exists "/proc/loadavg" then begin
    let t = R.Proc_reader.default in
    (match R.Proc_reader.snapshot t with
    | Ok s ->
      Alcotest.(check bool) "loadavg text" true
        (String.length s.Smart_host.Procfs.loadavg_text > 0)
    | Error e -> Alcotest.failf "snapshot: %s" e);
    match R.Proc_reader.default_iface t with
    | Some iface -> Alcotest.(check bool) "iface named" true (iface <> "")
    | None -> Alcotest.fail "no interface found"
  end

let test_proc_reader_missing_files () =
  let t =
    {
      R.Proc_reader.loadavg_path = "/nonexistent/loadavg";
      stat_path = "/nonexistent/stat";
      meminfo_path = "/nonexistent/meminfo";
      netdev_path = "/nonexistent/netdev";
      cpuinfo_path = "/nonexistent/cpuinfo";
    }
  in
  Alcotest.(check bool) "missing files error" true
    (Result.is_error (R.Proc_reader.snapshot t));
  Alcotest.(check bool) "no bogomips" true (R.Proc_reader.bogomips t = None)

let test_udp_io_roundtrip () =
  let server = R.Udp_io.bind_port 0 in
  let got = ref None in
  R.Udp_io.start server (fun ~from:_ data -> if data <> "" then got := Some data);
  let client = R.Udp_io.bind_port 0 in
  let to_ =
    Unix.ADDR_INET (Unix.inet_addr_loopback, R.Udp_io.port server)
  in
  Alcotest.(check bool) "send ok" true (R.Udp_io.send client ~to_ "ping!");
  let deadline = Unix.gettimeofday () +. 2.0 in
  while !got = None && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check (option string)) "delivered" (Some "ping!") !got;
  R.Udp_io.stop client;
  R.Udp_io.stop server

let test_addr_book_reverse () =
  let book = R.Addr_book.create () in
  let shift = R.Addr_book.register_loopback book ~host:"rev" in
  let sockaddr =
    Unix.ADDR_INET (Unix.inet_addr_loopback, shift + 42)
  in
  Alcotest.(check (option string)) "reverse lookup" (Some "rev")
    (R.Addr_book.host_of_sockaddr book sockaddr);
  Alcotest.(check (option string)) "outside any shift" None
    (R.Addr_book.host_of_sockaddr book
       (Unix.ADDR_INET (Unix.inet_addr_loopback, 7)))

let test_service_protocol () =
  let book = R.Addr_book.create () in
  ignore (R.Addr_book.register_loopback book ~host:"svc");
  let service = R.Service.create book ~name:"svc" in
  R.Service.start service;
  Fun.protect
    ~finally:(fun () -> R.Service.stop service)
    (fun () ->
      match R.Client_io.connect_service book ~host:"svc" with
      | None -> Alcotest.fail "connect failed"
      | Some conn ->
        let fd = conn.R.Client_io.socket in
        R.Service.write_line fd "WHO";
        Alcotest.(check (option string)) "WHO" (Some "svc")
          (R.Service.read_line_opt fd);
        R.Service.write_line fd "nonsense";
        Alcotest.(check (option string)) "unknown command"
          (Some "ERR unknown command")
          (R.Service.read_line_opt fd);
        R.Service.write_line fd "GET -3";
        Alcotest.(check (option string)) "bad size" (Some "ERR bad size")
          (R.Service.read_line_opt fd);
        R.Service.write_line fd "GET 5";
        let buf = Bytes.create 5 in
        Alcotest.(check bool) "blob delivered" true
          (R.Client_io.read_exact fd buf 5);
        R.Service.write_line fd "BYE";
        Unix.close fd;
        Alcotest.(check bool) "connection counted" true
          (R.Service.connections service >= 1))

let test_udp_io_recv_timeout () =
  let s = R.Udp_io.bind_port 0 in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check bool) "times out empty" true
    (R.Udp_io.recv_timeout s ~timeout:0.1 = None);
  Alcotest.(check bool) "waited about the timeout" true
    (Unix.gettimeofday () -. t0 < 1.0);
  R.Udp_io.stop s

(* ------------------------------------------------------------------ *)
(* Full loopback deployment                                             *)
(* ------------------------------------------------------------------ *)

type world = {
  book : R.Addr_book.t;
  wizard : R.Wizard_daemon.t;
  monitor : R.Monitor_daemon.t;
  probes : R.Probe_daemon.t list;
  services : R.Service.t list;
}

let start_world ?(mode = Smart_core.Transmitter.Centralized)
    ?(wizard_mode = Smart_core.Wizard.Centralized) ?(seclog = "") () =
  let book = R.Addr_book.create () in
  List.iter
    (fun h -> ignore (R.Addr_book.register_loopback book ~host:h))
    [ "mon"; "wiz"; "alpha"; "beta"; "gamma" ];
  let wizard =
    R.Wizard_daemon.create book
      {
        R.Wizard_daemon.host = "wiz";
        mode = wizard_mode;
        staleness_threshold = infinity;
        admission = None;
      }
  in
  R.Wizard_daemon.start wizard;
  let monitor =
    R.Monitor_daemon.create book
      {
        R.Monitor_daemon.host = "mon";
        wizard_host = "wiz";
        mode;
        probe_interval = 0.2;
        transmit_interval = 0.2;
        netmon_targets = [ "alpha"; "beta" ];
        security_log = seclog;
      }
  in
  R.Monitor_daemon.start monitor;
  let probes =
    List.mapi
      (fun i host ->
        let p =
          R.Probe_daemon.create book
            {
              R.Probe_daemon.host;
              ip = Printf.sprintf "10.9.0.%d" (i + 1);
              monitor_host = "mon";
              interval = 0.2;
              proc = R.Proc_reader.default;
              iface = None;
            }
        in
        R.Probe_daemon.start p;
        p)
      [ "alpha"; "beta"; "gamma" ]
  in
  let services =
    List.map
      (fun host ->
        let s = R.Service.create book ~name:host in
        R.Service.start s;
        s)
      [ "alpha"; "beta"; "gamma" ]
  in
  { book; wizard; monitor; probes; services }

let stop_world w =
  List.iter R.Probe_daemon.stop w.probes;
  List.iter R.Service.stop w.services;
  R.Monitor_daemon.stop w.monitor;
  R.Wizard_daemon.stop w.wizard

let await_reports w ~count ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let db = R.Wizard_daemon.db w.wizard in
  while
    Smart_core.Status_db.sys_count db < count
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.05
  done

let test_end_to_end_request_sockets () =
  let w = start_world () in
  Fun.protect
    ~finally:(fun () -> stop_world w)
    (fun () ->
      await_reports w ~count:3 ~timeout:10.0;
      Alcotest.(check int) "all three servers visible" 3
        (Smart_core.Status_db.sys_count (R.Wizard_daemon.db w.wizard));
      match
        R.Client_io.request_sockets w.book ~wizard_host:"wiz" ~wanted:2
          ~requirement:"host_memory_total > 1\n" ()
      with
      | Error e -> Alcotest.failf "request failed: %a" Smart_core.Client.pp_error e
      | Ok connected ->
        Alcotest.(check int) "two sockets" 2 (List.length connected);
        List.iter
          (fun (s : R.Client_io.connected_server) ->
            R.Service.write_line s.R.Client_io.socket
              ("ECHO " ^ s.R.Client_io.host);
            match R.Service.read_line_opt s.R.Client_io.socket with
            | Some line ->
              Alcotest.(check string) "echo through the socket"
                s.R.Client_io.host line
            | None -> Alcotest.fail "no echo")
          connected;
        R.Client_io.close_all connected)

let test_security_filter_real () =
  let w = start_world ~seclog:"alpha 5\nbeta 4\ngamma 1\n" () in
  Fun.protect
    ~finally:(fun () -> stop_world w)
    (fun () ->
      await_reports w ~count:3 ~timeout:10.0;
      match
        R.Client_io.request_servers w.book ~wizard_host:"wiz" ~wanted:3
          ~requirement:"host_security_level >= 3\n" ()
      with
      | Error e -> Alcotest.failf "request failed: %a" Smart_core.Client.pp_error e
      | Ok servers ->
        Alcotest.(check (list string)) "gamma filtered out"
          [ "alpha"; "beta" ]
          (List.sort compare servers))

let test_strict_option_real () =
  let w = start_world () in
  Fun.protect
    ~finally:(fun () -> stop_world w)
    (fun () ->
      await_reports w ~count:3 ~timeout:10.0;
      (* impossible requirement + strict: must fail with Not_enough *)
      match
        R.Client_io.request_servers w.book
          ~option:Smart_proto.Wizard_msg.Strict ~wizard_host:"wiz" ~wanted:2
          ~requirement:"host_memory_total < 0\n" ()
      with
      | Error (Smart_core.Client.Not_enough _) -> ()
      | Error e -> Alcotest.failf "unexpected error: %a" Smart_core.Client.pp_error e
      | Ok _ -> Alcotest.fail "strict must fail on an impossible requirement")

let test_netmon_real_probing () =
  let w = start_world () in
  Fun.protect
    ~finally:(fun () -> stop_world w)
    (fun () ->
      await_reports w ~count:3 ~timeout:10.0;
      let record = R.Monitor_daemon.refresh_netmon w.monitor in
      (* both echo responders answered, loopback delay is tiny *)
      Alcotest.(check int) "two targets measured" 2
        (List.length record.Smart_proto.Records.entries);
      List.iter
        (fun (e : Smart_proto.Records.net_entry) ->
          Alcotest.(check bool) "sub-millisecond local delay" true
            (e.Smart_proto.Records.delay < 0.05))
        record.Smart_proto.Records.entries)

let test_download_real () =
  (* massd over real sockets: request, connect, parallel block fetch *)
  let w = start_world () in
  Fun.protect
    ~finally:(fun () -> stop_world w)
    (fun () ->
      await_reports w ~count:3 ~timeout:10.0;
      match
        R.Client_io.request_sockets w.book ~wizard_host:"wiz" ~wanted:3
          ~requirement:"host_memory_total > 1\n" ()
      with
      | Error e -> Alcotest.failf "request failed: %a" Smart_core.Client.pp_error e
      | Ok connected ->
        Alcotest.(check int) "three servers" 3 (List.length connected);
        let stats =
          R.Client_io.download ~connected ~data_kb:2048 ~blk_kb:128
        in
        Alcotest.(check int) "all bytes" (2048 * 1024)
          stats.R.Client_io.total_bytes;
        let blocks =
          List.fold_left (fun acc (_, b) -> acc + b) 0
            stats.R.Client_io.per_server
        in
        Alcotest.(check int) "16 blocks fetched" 16 blocks;
        Alcotest.(check bool) "positive throughput" true
          (stats.R.Client_io.throughput > 0.0);
        R.Client_io.close_all connected)

(* The daemons all run in this process and the monitor dials the wizard
   for every transmit, so a single /proc/self/fd sample can catch a
   short-lived socket mid-flight.  Transient fds only ever inflate the
   count; the minimum over spaced samples is the steady state. *)
let open_fd_count () =
  let sample () = Array.length (Sys.readdir "/proc/self/fd") in
  let best = ref (sample ()) in
  for _ = 1 to 9 do
    Thread.delay 0.05;
    let n = sample () in
    if n < !best then best := n
  done;
  !best

let test_fd_leak_regression () =
  (* every socket the client opens is closed again — including the
     candidates it dials but then skips (refused connects, trimmed
     surplus) and everything the session pool held.  Counting
     /proc/self/fd before and after catches any regression of the
     cleanup paths. *)
  if not (Sys.file_exists "/proc/self/fd") then ()
  else
    let w = start_world () in
    Fun.protect
      ~finally:(fun () -> stop_world w)
      (fun () ->
        await_reports w ~count:3 ~timeout:10.0;
        (* kill one advertised server so its connect is refused: the
           dialing loop must discard that socket, not leak it *)
        (match w.services with
        | _ :: _ :: gamma :: _ -> R.Service.stop gamma
        | _ -> Alcotest.fail "expected three services");
        let before = open_fd_count () in
        for _ = 1 to 5 do
          match
            R.Client_io.request_sockets w.book ~wizard_host:"wiz" ~wanted:3
              ~requirement:"host_memory_total > 1\n" ()
          with
          | Ok connected -> R.Client_io.close_all connected
          | Error _ -> ()
        done;
        (* the pooled path: reuse must hand back the same socket, and
           pool_close must drop every fd the pool held *)
        let pool = R.Client_io.create_pool w.book in
        (match R.Client_io.pool_acquire pool ~host:"alpha" with
        | Some p1 ->
          let fd1 = p1.R.Client_io.server.R.Client_io.socket in
          R.Service.write_line fd1 "ECHO alpha";
          (match R.Service.read_line_opt fd1 with
          | Some line -> Alcotest.(check string) "pooled echo" "alpha" line
          | None -> Alcotest.fail "no echo through pooled socket");
          R.Client_io.pool_release pool p1;
          (match R.Client_io.pool_acquire pool ~host:"alpha" with
          | Some p2 ->
            Alcotest.(check bool) "socket reused" true
              (p2.R.Client_io.server.R.Client_io.socket == fd1);
            R.Client_io.pool_release pool p2
          | None -> Alcotest.fail "pooled reacquire failed")
        | None -> Alcotest.fail "pool acquire failed");
        Alcotest.(check int) "pool holds one socket" 1
          (R.Client_io.pool_open_count pool);
        R.Client_io.pool_close pool;
        Alcotest.(check int) "pool emptied" 0
          (R.Client_io.pool_open_count pool);
        let after = open_fd_count () in
        Alcotest.(check int) "no file descriptors leaked" before after)

let test_distributed_mode_real () =
  let w =
    start_world ~mode:Smart_core.Transmitter.Distributed
      ~wizard_mode:
        (Smart_core.Wizard.Distributed
           {
             transmitters =
               [
                 {
                   Smart_core.Output.host = "mon";
                   port = Smart_proto.Ports.transmitter;
                 };
               ];
             freshness_timeout = 3.0;
           })
      ()
  in
  Fun.protect
    ~finally:(fun () -> stop_world w)
    (fun () ->
      (* give the probes a moment to populate the monitor side *)
      Thread.delay 1.0;
      match
        R.Client_io.request_servers w.book ~timeout:5.0 ~wizard_host:"wiz"
          ~wanted:1 ~requirement:"host_memory_total > 1\n" ()
      with
      | Ok servers ->
        Alcotest.(check bool) "answered after pull" true (servers <> [])
      | Error e ->
        Alcotest.failf "distributed request failed: %a"
          Smart_core.Client.pp_error e)

(* One daemon of each kind answers the SMART-METRICS magic on its
   existing socket (wizard request port, transmitter pull port, probe
   echo port) with its own registry dump. *)
let test_metrics_scrape_real () =
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let w = start_world () in
  Fun.protect
    ~finally:(fun () -> stop_world w)
    (fun () ->
      await_reports w ~count:3 ~timeout:10.0;
      (* move the wizard-side counters before scraping *)
      (match
         R.Client_io.request_servers w.book ~timeout:5.0 ~wizard_host:"wiz"
           ~wanted:1 ~requirement:"host_memory_total > 1\n" ()
       with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "request before scrape failed: %a"
          Smart_core.Client.pp_error e);
      let scrape ?format host port =
        match R.Client_io.scrape_metrics ?format w.book ~host ~port () with
        | Ok dump -> dump
        | Error reason -> Alcotest.failf "scrape %s failed: %s" host reason
      in
      let wiz = scrape "wiz" Smart_proto.Ports.wizard in
      Alcotest.(check bool) "wizard requests counted" true
        (contains ~affix:"wizard.requests_total counter 1" wiz);
      Alcotest.(check bool) "receiver frames in wizard dump" true
        (contains ~affix:"receiver.frames_total" wiz);
      Alcotest.(check bool) "latency histogram in wizard dump" true
        (contains ~affix:"wizard.request_latency_seconds" wiz);
      let mon = scrape "mon" Smart_proto.Ports.transmitter in
      Alcotest.(check bool) "sysmon reports in monitor dump" true
        (contains ~affix:"sysmon.reports_total" mon);
      Alcotest.(check bool) "transmitter frames in monitor dump" true
        (contains ~affix:"transmitter.frames_total" mon);
      let probe = scrape "alpha" Smart_proto.Ports.probe in
      Alcotest.(check bool) "probe reports in probe dump" true
        (contains ~affix:"probe.reports_total" probe);
      let wiz_json =
        scrape ~format:Smart_proto.Metrics_msg.Json "wiz"
          Smart_proto.Ports.wizard
      in
      Alcotest.(check bool) "json dump quotes metric names" true
        (contains ~affix:"\"wizard.requests_total\"" wiz_json))

(* Each daemon's flight recorder answers the SMART-TRACE magic on the
   same sockets: after live traffic, all three dumps are non-empty and
   name the spans their components record. *)
let test_trace_scrape_real () =
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    n = 0 || go 0
  in
  let w = start_world () in
  Fun.protect
    ~finally:(fun () -> stop_world w)
    (fun () ->
      await_reports w ~count:3 ~timeout:10.0;
      (* drive the request path so the wizard ring has a span tree *)
      (match
         R.Client_io.request_servers w.book ~timeout:5.0 ~wizard_host:"wiz"
           ~wanted:1 ~requirement:"host_memory_total > 1\n" ()
       with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "request before scrape failed: %a"
          Smart_core.Client.pp_error e);
      let scrape ?format host port =
        match R.Client_io.scrape_trace ?format w.book ~host ~port () with
        | Ok dump -> dump
        | Error reason -> Alcotest.failf "trace scrape %s failed: %s" host reason
      in
      let wiz = scrape "wiz" Smart_proto.Ports.wizard in
      Alcotest.(check bool) "wizard dump non-empty" true (String.length wiz > 0);
      Alcotest.(check bool) "wizard.request span recorded" true
        (contains ~affix:"wizard.request" wiz);
      Alcotest.(check bool) "receiver.commit span recorded" true
        (contains ~affix:"receiver.commit" wiz);
      let mon = scrape "mon" Smart_proto.Ports.transmitter in
      Alcotest.(check bool) "monitor dump non-empty" true (String.length mon > 0);
      Alcotest.(check bool) "sysmon.ingest span recorded" true
        (contains ~affix:"sysmon.ingest" mon);
      Alcotest.(check bool) "transmitter.push span recorded" true
        (contains ~affix:"transmitter.push" mon);
      let probe = scrape "alpha" Smart_proto.Ports.probe in
      Alcotest.(check bool) "probe dump non-empty" true (String.length probe > 0);
      Alcotest.(check bool) "probe.tick span recorded" true
        (contains ~affix:"probe.tick" probe);
      let wiz_json =
        scrape ~format:Smart_proto.Trace_msg.Json "wiz" Smart_proto.Ports.wizard
      in
      Alcotest.(check bool) "json dump is a chrome trace" true
        (contains ~affix:"\"ph\":\"X\"" wiz_json);
      Alcotest.(check bool) "json dump names the span" true
        (contains ~affix:"wizard.request" wiz_json))

let () =
  Alcotest.run "smart_realnet"
    [
      ( "units",
        [
          Alcotest.test_case "addr book" `Quick test_addr_book;
          Alcotest.test_case "proc reader" `Quick test_proc_reader;
          Alcotest.test_case "proc reader missing" `Quick
            test_proc_reader_missing_files;
          Alcotest.test_case "addr book reverse" `Quick test_addr_book_reverse;
          Alcotest.test_case "service protocol" `Quick test_service_protocol;
          Alcotest.test_case "udp io round trip" `Quick test_udp_io_roundtrip;
          Alcotest.test_case "udp io timeout" `Quick test_udp_io_recv_timeout;
        ] );
      ( "integration",
        [
          Alcotest.test_case "request sockets end-to-end" `Slow
            test_end_to_end_request_sockets;
          Alcotest.test_case "security filter" `Slow test_security_filter_real;
          Alcotest.test_case "strict option" `Slow test_strict_option_real;
          Alcotest.test_case "netmon echo probing" `Slow
            test_netmon_real_probing;
          Alcotest.test_case "massd download" `Slow test_download_real;
          Alcotest.test_case "fd leak regression" `Slow
            test_fd_leak_regression;
          Alcotest.test_case "distributed mode" `Slow test_distributed_mode_real;
          Alcotest.test_case "metrics scrape" `Slow test_metrics_scrape_real;
          Alcotest.test_case "trace scrape" `Slow test_trace_scrape_real;
        ] );
    ]
